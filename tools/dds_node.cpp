// dds_node — one node of a real-socket deployment (ISSUE 9 tentpole 3).
//
// Runs the infinite-window protocol (Algorithms 1 & 2) with each node in
// its own OS process, talking over real UDP or TCP sockets on
// 127.0.0.1. One process per node:
//
//   dds_node --coordinator --transport udp --num-sites 2 --seed 7
//            --sample-size 8 --port-file /tmp/coord.port --out /tmp/sample
//   dds_node --site 0 --transport udp --num-sites 2 --seed 7
//            --sample-size 8 --elements 500 --port-file /tmp/coord.port
//   dds_node --site 1 ... (same flags, different --site)
//
// The coordinator binds first (ephemeral port unless --port) and
// publishes its actual port via --port-file (written atomically); sites
// poll for that file, connect, stream their elements through the real
// protocol, and the run ends with the kFin exchange:
//
//   site:  feed elements -> finish() (all data acked) -> send kFin
//          -> wait for the coordinator's kFin -> linger briefly -> exit
//   coord: pump until every site's kFin arrived (per-link FIFO order
//          means all data precedes it) -> finish() -> kFin to each site
//          -> finish() (fins acked) -> write the sample -> exit
//
// Each site generates its own workload deterministically from the
// shared seed (util::derive_seed(seed, 0xF00D + site)), so a test can
// replay the identical element streams through an in-process deployment
// and compare samples — the spawn smoke test in tests/socket_test.cpp
// does exactly that.
#include <sys/stat.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/infinite_coordinator.h"
#include "core/infinite_site.h"
#include "hash/hash_function.h"
#include "net/socket_transport.h"
#include "net/tcp_transport.h"
#include "net/udp_transport.h"
#include "util/rng.h"

namespace {

using namespace dds;

struct Args {
  bool coordinator = false;
  std::uint32_t site = 0;
  bool has_site = false;
  std::string transport = "udp";
  std::uint32_t num_sites = 2;
  std::uint64_t seed = 1;
  std::size_t sample_size = 8;
  std::uint64_t elements = 500;   ///< per-site workload length
  std::uint64_t domain = 1000;    ///< element values in [1, domain]
  std::uint16_t port = 0;         ///< coordinator listen port (0=ephemeral)
  std::string port_file;          ///< coordinator publishes / sites read
  std::string out;                ///< coordinator writes the sample here
  double timeout = 30.0;          ///< overall give-up, seconds
};

[[noreturn]] void usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0 << " (--coordinator | --site I) [options]\n"
      << "  --transport udp|tcp   wire (default udp)\n"
      << "  --num-sites K         total sites (default 2)\n"
      << "  --seed S              shared seed (default 1)\n"
      << "  --sample-size s       bottom-s size (default 8)\n"
      << "  --elements N          per-site element count (default 500)\n"
      << "  --domain D            element values in [1, D] (default 1000)\n"
      << "  --port P              coordinator port (default ephemeral)\n"
      << "  --port-file PATH      coordinator writes its port here;\n"
      << "                        sites poll it to find the coordinator\n"
      << "  --out PATH            coordinator writes sorted sample here\n"
      << "  --timeout SECONDS     give up after this long (default 30)\n";
  std::exit(2);
}

Args parse_args(int argc, char** argv) {
  Args args;
  auto next_value = [&](int& i) -> const char* {
    if (i + 1 >= argc) usage(argv[0]);
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--coordinator") {
      args.coordinator = true;
    } else if (flag == "--site") {
      args.has_site = true;
      args.site = static_cast<std::uint32_t>(std::stoul(next_value(i)));
    } else if (flag == "--transport") {
      args.transport = next_value(i);
    } else if (flag == "--num-sites") {
      args.num_sites = static_cast<std::uint32_t>(std::stoul(next_value(i)));
    } else if (flag == "--seed") {
      args.seed = std::stoull(next_value(i));
    } else if (flag == "--sample-size") {
      args.sample_size = std::stoul(next_value(i));
    } else if (flag == "--elements") {
      args.elements = std::stoull(next_value(i));
    } else if (flag == "--domain") {
      args.domain = std::stoull(next_value(i));
    } else if (flag == "--port") {
      args.port = static_cast<std::uint16_t>(std::stoul(next_value(i)));
    } else if (flag == "--port-file") {
      args.port_file = next_value(i);
    } else if (flag == "--out") {
      args.out = next_value(i);
    } else if (flag == "--timeout") {
      args.timeout = std::stod(next_value(i));
    } else {
      usage(argv[0]);
    }
  }
  if (args.coordinator == args.has_site) usage(argv[0]);  // exactly one role
  if (!args.coordinator && args.site >= args.num_sites) usage(argv[0]);
  if (args.transport != "udp" && args.transport != "tcp") usage(argv[0]);
  return args;
}

void write_atomically(const std::string& path, const std::string& contents) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    out << contents;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::cerr << "dds_node: cannot write " << path << "\n";
    std::exit(1);
  }
}

std::uint16_t poll_port_file(const std::string& path, double timeout) {
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::milliseconds(static_cast<long>(timeout * 1000));
  for (;;) {
    std::ifstream in(path);
    unsigned port = 0;
    if (in && (in >> port) && port != 0) {
      return static_cast<std::uint16_t>(port);
    }
    if (std::chrono::steady_clock::now() > deadline) {
      std::cerr << "dds_node: timed out waiting for " << path << "\n";
      std::exit(1);
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
}

std::unique_ptr<net::SocketTransport> make_node_transport(
    const Args& args, const net::SocketTopology& topology) {
  net::NetworkConfig config;
  config.seed = args.seed;
  if (args.transport == "tcp") {
    return std::make_unique<net::TcpTransport>(args.num_sites, config,
                                               /*num_coordinators=*/1,
                                               topology);
  }
  return std::make_unique<net::UdpTransport>(args.num_sites, config,
                                             /*num_coordinators=*/1,
                                             topology);
}

std::uint16_t bound_port(const net::SocketTransport& transport,
                         const Args& args, sim::NodeId coordinator_id) {
  if (args.transport == "tcp") {
    return static_cast<const net::TcpTransport&>(transport).listen_port_of(0);
  }
  return static_cast<const net::UdpTransport&>(transport).port_of(
      coordinator_id);
}

/// Pumps until `done()` or the deadline; exits loudly on timeout.
template <typename Done>
void pump_until(net::SocketTransport& transport, double timeout, Done done,
                const char* what) {
  const double deadline = transport.now_seconds() + timeout;
  while (!done()) {
    transport.pump();
    if (transport.now_seconds() > deadline) {
      std::cerr << "dds_node: timed out waiting for " << what << "\n";
      std::exit(1);
    }
  }
}

int run_coordinator(const Args& args) {
  const sim::NodeId coordinator_id = args.num_sites;
  net::SocketTopology topology;
  topology.local_nodes = {coordinator_id};
  topology.listen_port = args.port;
  auto transport = make_node_transport(args, topology);

  core::InfiniteWindowCoordinator coordinator(coordinator_id,
                                              args.sample_size);
  transport->attach(coordinator_id, &coordinator);

  if (!args.port_file.empty()) {
    write_atomically(args.port_file,
                     std::to_string(bound_port(*transport, args,
                                               coordinator_id)) +
                         "\n");
  }

  // All sites done: per-link FIFO order means every report preceded its
  // sender's kFin.
  pump_until(*transport, args.timeout,
             [&] { return transport->fins().size() >= args.num_sites; },
             "site fins");
  transport->finish();  // outstanding replies acked

  for (std::uint32_t i = 0; i < args.num_sites; ++i) {
    transport->send_fin(coordinator_id, i, 0);
  }
  transport->finish();  // the fins themselves acked / written

  const auto sample = coordinator.sample();
  std::string lines;
  for (const stream::Element element : sample.elements()) {
    lines += std::to_string(element);
    lines += '\n';
  }
  if (!args.out.empty()) {
    write_atomically(args.out, lines);
  } else {
    std::cout << lines;
  }
  return 0;
}

int run_site(const Args& args) {
  const sim::NodeId coordinator_id = args.num_sites;
  std::uint16_t coordinator_port = args.port;
  if (!args.port_file.empty()) {
    coordinator_port = poll_port_file(args.port_file, args.timeout);
  }
  if (coordinator_port == 0) {
    std::cerr << "dds_node: need --port or --port-file to find the "
                 "coordinator\n";
    return 2;
  }

  net::SocketTopology topology;
  topology.local_nodes = {args.site};
  topology.coordinator_addrs = {{"127.0.0.1", coordinator_port}};
  auto transport = make_node_transport(args, topology);

  core::InfiniteWindowSite site(
      args.site, coordinator_id,
      hash::HashFunction(hash::HashKind::kMurmur2,
                         util::derive_seed(args.seed, 0xA5)));
  transport->attach(args.site, &site);

  // The deterministic per-site workload the smoke test replays.
  util::Xoshiro256StarStar rng(util::derive_seed(args.seed, 0xF00D + args.site));
  for (std::uint64_t n = 0; n < args.elements; ++n) {
    site.on_element(1 + rng.next_below(args.domain), /*t=*/0, *transport);
    transport->pump();  // let replies interleave with the stream
  }

  transport->finish();  // every report delivered and acked
  transport->send_fin(args.site, coordinator_id,
                      transport->logical_counters().site_to_coordinator);
  // Wait for the coordinator's end-of-run fin, then linger briefly so
  // our ack of it (and any retransmit of ours it still needs) lands.
  pump_until(*transport, args.timeout,
             [&] { return !transport->fins().empty(); }, "coordinator fin");
  const double linger_until = transport->now_seconds() + 0.2;
  while (transport->now_seconds() < linger_until) transport->pump();
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = parse_args(argc, argv);
  try {
    return args.coordinator ? run_coordinator(args) : run_site(args);
  } catch (const std::exception& e) {
    std::cerr << "dds_node: " << e.what() << "\n";
    return 1;
  }
}
