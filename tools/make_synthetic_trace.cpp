// make_synthetic_trace — materialize one of the calibrated synthetic
// datasets (or a custom Zipf/uniform/churn stream) to a text file that
// trace_stats and stream::FileStream can read back. Lets users archive
// the exact workload a result was produced on, or feed it to another
// system for comparison.
//
//   ./build/tools/make_synthetic_trace --dataset enron --scale 0.01
//       --out /tmp/enron_synth.txt
#include <cstdio>
#include <fstream>

#include "stream/churn.h"
#include "stream/generators.h"
#include "stream/trace_synth.h"
#include "util/cli.h"

int main(int argc, char** argv) {
  using namespace dds;
  util::Cli cli;
  cli.flag("dataset", "oc48 | enron | zipf | uniform | churn", "enron");
  cli.flag("scale", "scale for oc48/enron", "0.01");
  cli.flag("n", "elements for zipf/uniform/churn", "100000");
  cli.flag("domain", "domain for zipf/uniform", "10000");
  cli.flag("alpha", "zipf exponent", "1.0");
  cli.flag("fresh", "churn fresh fraction", "0.5");
  cli.flag("seed", "seed", "1");
  cli.flag("out", "output file", "synthetic_trace.txt");
  if (!cli.parse(argc, argv)) return 1;

  const std::string kind = cli.get("dataset");
  const auto seed = cli.get_uint("seed");
  std::unique_ptr<stream::ElementStream> s;
  if (kind == "oc48" || kind == "enron") {
    s = stream::make_trace(stream::parse_dataset(kind),
                           cli.get_double("scale"), seed);
  } else if (kind == "zipf") {
    s = std::make_unique<stream::ZipfStream>(
        cli.get_uint("n"), cli.get_uint("domain"), cli.get_double("alpha"),
        seed);
  } else if (kind == "uniform") {
    s = std::make_unique<stream::UniformStream>(cli.get_uint("n"),
                                                cli.get_uint("domain"), seed);
  } else if (kind == "churn") {
    s = std::make_unique<stream::ChurnStream>(
        cli.get_uint("n"), cli.get_double("fresh"), 1000, seed);
  } else {
    std::fprintf(stderr, "unknown dataset kind: %s\n", kind.c_str());
    return 1;
  }

  const std::string out_path = cli.get("out");
  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }
  std::uint64_t written = 0;
  while (auto e = s->next()) {
    out << *e << '\n';
    ++written;
  }
  std::printf("wrote %llu elements to %s\n",
              static_cast<unsigned long long>(written), out_path.c_str());
  return 0;
}
