// trace_stats — inspect a trace file (one element per line; decimal ids
// or arbitrary tokens) the way Table 5.1 describes a dataset: element
// count, distinct count, duplication ratio, and the head of the
// frequency distribution. Useful before replaying a real trace through
// the samplers with stream::FileStream.
//
//   ./build/tools/trace_stats --file my_trace.txt [--top 10]
#include <algorithm>
#include <cstdio>
#include <unordered_map>
#include <vector>

#include "stream/file_stream.h"
#include "util/cli.h"

int main(int argc, char** argv) {
  using namespace dds;
  util::Cli cli;
  cli.flag("file", "trace file: one element per line", "");
  cli.flag("top", "how many top frequencies to print", "10");
  if (!cli.parse(argc, argv)) return 1;
  const std::string path = cli.get("file");
  if (path.empty()) {
    std::fprintf(stderr, "--file is required\n");
    return 1;
  }

  stream::FileStream trace(path);
  std::unordered_map<stream::Element, std::uint64_t> freq;
  std::uint64_t total = 0;
  {
    stream::FileStream again(path);
    while (auto e = again.next()) {
      ++freq[*e];
      ++total;
    }
  }
  std::printf("file:      %s\n", path.c_str());
  std::printf("elements:  %llu (%llu numeric lines, %llu token lines)\n",
              static_cast<unsigned long long>(total),
              static_cast<unsigned long long>(trace.numeric_lines()),
              static_cast<unsigned long long>(trace.token_lines()));
  std::printf("distinct:  %zu\n", freq.size());
  if (!freq.empty()) {
    std::printf("dup ratio: %.3f elements per distinct\n",
                static_cast<double>(total) / static_cast<double>(freq.size()));
  }

  std::vector<std::pair<std::uint64_t, stream::Element>> by_count;
  by_count.reserve(freq.size());
  for (const auto& [e, c] : freq) by_count.emplace_back(c, e);
  std::sort(by_count.rbegin(), by_count.rend());
  const auto top = std::min<std::size_t>(cli.get_uint("top"), by_count.size());
  std::printf("top %zu frequencies:\n", top);
  for (std::size_t i = 0; i < top; ++i) {
    std::printf("  #%zu: element %llu x %llu (%.2f%%)\n", i + 1,
                static_cast<unsigned long long>(by_count[i].second),
                static_cast<unsigned long long>(by_count[i].first),
                100.0 * static_cast<double>(by_count[i].first) /
                    static_cast<double>(total));
  }
  return 0;
}
