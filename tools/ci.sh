#!/usr/bin/env bash
# Tier-1 verify + a smoke run of the network ablation.
#
#   tools/ci.sh [build-dir]
#
# Mirrors the checks CI runs: configure, build, ctest, then exercise the
# event-driven transport end-to-end with tiny parameters.
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="${1:-$repo/build}"

cmake -B "$build" -S "$repo"
cmake --build "$build" -j
ctest --test-dir "$build" --output-on-failure -j

# Smoke: the network ablation and the lossy-network walkthrough must run
# end-to-end and emit their tables.
"$build/abl10_network" --runs 1 --n 4000 --domain 800 --slots 150 \
  --latencies 0,2 --drops 0,10 --batches 0,5 \
  --outdir "$build/bench_results"
"$build/lossy_network" >/dev/null

echo "ci: OK"
