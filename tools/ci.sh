#!/usr/bin/env bash
# Tier-1 verify + smoke runs: network ablation and bench-JSON emission.
#
#   tools/ci.sh [build-dir]
#
# Mirrors the checks CI runs: configure, build, ctest, exercise the
# event-driven transport end-to-end with tiny parameters, then run the
# micro benches briefly and emit the bench-JSON perf artifact.
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="${1:-$repo/build}"

cmake -B "$build" -S "$repo" -DDDS_BUILD_BENCHES=ON
cmake --build "$build" -j
ctest --test-dir "$build" --output-on-failure -j

# Smoke: the network ablation and the lossy-network walkthrough must run
# end-to-end and emit their tables (JSON mirrors included).
"$build/abl10_network" --runs 1 --n 4000 --domain 800 --slots 150 \
  --latencies 0,2 --drops 0,10 --batches 0,5 \
  --outdir "$build/bench_results" --json
"$build/lossy_network" >/dev/null

# Sharding smoke: the execution-engine ablation across a small
# threads x shards grid, plus the sharded-sliding-over-the-wire ablation
# (the determinism suites themselves run under ctest; `ctest -L
# sharding` is the targeted sub-2-minute loop for engine work).
"$build/abl11_sharding" --runs 1 --n 20000 --sites 8 \
  --thread-list 1,4 --shard-list 1,2 --wakeup-ablation \
  --outdir "$build/bench_results" --json
"$build/abl12_sliding_sharding" --runs 1 --slots 120 --shard-list 1,2 \
  --threads 4 \
  --outdir "$build/bench_results" --json
"$build/sharded_sliding_lossy" >/dev/null

# Chaos smoke: the scripted failover walkthrough (kill + corrupted
# restore transfer + resync on a lossy wire) must run end-to-end, and —
# because every fault is seeded — two runs with the same seed must emit
# bit-identical observability artifacts (the replayability contract the
# chaos layer promises).
chaos_dir="$build/chaos_smoke"
mkdir -p "$chaos_dir"
for run in a b; do
  "$build/chaos_failover" --metrics "$chaos_dir/$run.prom" \
    --json "$chaos_dir/$run.json" --trace "$chaos_dir/$run.trace" >/dev/null
done
cmp "$chaos_dir/a.prom" "$chaos_dir/b.prom"
cmp "$chaos_dir/a.json" "$chaos_dir/b.json"
cmp "$chaos_dir/a.trace" "$chaos_dir/b.trace"
grep -q "dds_chaos_kills 1" "$chaos_dir/a.prom"
grep -q "dds_supervisor_recoveries 1" "$chaos_dir/a.prom"
echo "ci: chaos smoke replayed bit-identically"

# Observability smoke: the lossy sharded walkthrough with metrics +
# tracing on must emit a parseable Chrome trace and a Prometheus
# snapshot that round-trips through the parser (obs_report --check).
obs_dir="$build/obs_smoke"
mkdir -p "$obs_dir"
"$build/sharded_sliding_lossy" --metrics "$obs_dir/snapshot.prom" \
  --json "$obs_dir/snapshot.json" --trace "$obs_dir/trace.json" >/dev/null
"$build/obs_report" --prom "$obs_dir/snapshot.prom" --check >/dev/null
python3 - "$obs_dir/trace.json" "$obs_dir/snapshot.json" <<'PY'
import json, sys
trace = json.load(open(sys.argv[1]))
events = trace["traceEvents"]
assert events, "trace has no events"
assert all("ph" in e and "ts" in e for e in events), "malformed event"
snapshot = json.load(open(sys.argv[2]))
assert snapshot["counters"].get("net.wire.msgs", 0) > 0, "no wire traffic"
print(f"obs smoke: {len(events)} trace events, "
      f"{len(snapshot['counters'])} counters")
PY

# Socket smoke: the infinite-window protocol over real UDP sockets,
# one OS process per node (coordinator + 2 sites via tools/dds_node).
# Two identical runs must produce bit-identical samples — the
# multi-process deployment is deterministic in the seed. (The in-depth
# differential harness against Bus/SimNetwork runs under `ctest -L
# socket` above.)
socket_dir="$build/socket_smoke"
mkdir -p "$socket_dir"
for run in a b; do
  rm -f "$socket_dir/coord.port"
  "$build/dds_node" --coordinator --transport udp --num-sites 2 \
    --seed 7 --sample-size 8 --port-file "$socket_dir/coord.port" \
    --out "$socket_dir/sample_$run.txt" &
  coord_pid=$!
  "$build/dds_node" --site 0 --transport udp --num-sites 2 --seed 7 \
    --sample-size 8 --elements 500 --port-file "$socket_dir/coord.port" &
  site0_pid=$!
  "$build/dds_node" --site 1 --transport udp --num-sites 2 --seed 7 \
    --sample-size 8 --elements 500 --port-file "$socket_dir/coord.port" &
  site1_pid=$!
  wait "$coord_pid" "$site0_pid" "$site1_pid"
done
cmp "$socket_dir/sample_a.txt" "$socket_dir/sample_b.txt"
[[ -s "$socket_dir/sample_a.txt" ]]
echo "ci: socket smoke (3-process UDP) replayed bit-identically"

# Multi-tenant smoke: the dashboard example drives the shared
# TenantRegistry against per-tenant naive samplers and exits nonzero
# unless every checked tenant answer is bit-identical.
"$build/multi_tenant_dashboard" --slots 800 >/dev/null
echo "ci: multi-tenant dashboard agreed with naive samplers"

# Bench smoke: short micro-bench run, JSON into bench_results/ — the
# per-commit point on the perf trajectory (archived by CI).
# min_time 0.25: the measured floor below which same-build runs trip
# the 25% compare threshold (see bench_compare.py's noise-floor note).
"$repo/tools/bench_json.sh" "$build" "$build/bench_results" 0.25

# Perf tripwire (SOFT): when a baseline snapshot of bench_results exists
# (CI restores the previous run's artifact into bench_baseline/), diff
# the trajectories and warn — never block — past the noise threshold.
if [[ -d "$build/bench_baseline" ]]; then
  python3 "$repo/tools/bench_compare.py" "$build/bench_results" \
    "$build/bench_baseline" --threshold 0.25 \
    || echo "ci: WARNING: bench_compare flagged a perf regression (soft)"
else
  echo "ci: no bench_baseline/ snapshot; skipping perf compare"
fi

# Ratio gates (HARD): hardware-independent table columns — abl14's
# batched-over-single throughput ratio and abl17's speculative wave
# length over the lockstep baseline — must clear their floors even on a
# noisy box. Unlike the timing tripwire above, a failure here blocks:
# these ratios measure algorithmic effects, not wall clock. The baseline
# dir is optional (per-file regression check applies when it exists).
python3 "$repo/tools/bench_compare.py" "$build/bench_results" \
  "$build/bench_baseline" --threshold 0.25 --gates-only \
  --gate-table "abl14_batch_ingest.json:xB/x1:1.2" \
  --gate-table "abl17_speculation.json:wave x lockstep:8"

echo "ci: OK"
