#!/usr/bin/env python3
"""Compare two bench_results/ directories and flag perf regressions.

Usage:
    tools/bench_compare.py CURRENT_DIR BASELINE_DIR [--threshold 0.25]
                           [--metric real_time] [--verbose]

Both directories hold the artifacts tools/bench_json.sh emits:

  * Google-Benchmark JSON ({"benchmarks": [...]}) — the timing record.
    Each benchmark present in BOTH files is compared on --metric
    (default real_time); a benchmark is a regression when
        current > baseline * (1 + threshold).
  * Table-bench JSON mirrors (arrays of row objects) — compared
    informationally (printed with --verbose) by default: their columns
    mix counts, rates, and identifiers, and the message-cost invariants
    they record are asserted by the benches themselves.

HARD ratio gates (--gate-table FILE:COLUMN:MIN, repeatable): some table
columns are hardware-independent ratios (abl14's batched-over-single
"xB/x1", abl17's speculative-over-lockstep "wave x lockstep") and CAN be
gated hard even on a noisy box. For each spec the maximum value of
COLUMN across FILE's rows must be >= MIN, and — when a baseline copy of
FILE exists — must not fall below the baseline maximum by more than
--threshold. With --gates-only the timing comparison is skipped
entirely and the exit status reflects the gates alone; tools/ci.sh runs
the timing compare SOFT and the gate invocation HARD.

Exit status: 0 when no timing regression exceeds the threshold (missing
baseline files or benchmarks are reported but not fatal — the trajectory
grows new points), 1 when at least one does, 2 on usage/IO errors.

The default threshold is deliberately loose (25%): CI machines are
noisy, and this check is wired into tools/ci.sh as a SOFT failure — a
tripwire that turns silent drift into a visible warning, not a merge
blocker. Tighten it when comparing runs from the same quiet machine.

Measured noise floor (single-core container, back-to-back identical
builds through tools/bench_json.sh): at --benchmark_min_time=0.05 the
micro suites swing up to +180% between runs (the 25% threshold is
useless); at 0.25 the worst same-build delta is ~±13%, giving the 25%
default about 2x margin. bench_json.sh therefore defaults min_time to
0.25 — do not lower it below that when the output feeds this compare.
"""

import argparse
import json
import os
import sys


def load_json(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as err:
        print(f"bench_compare: cannot read {path}: {err}", file=sys.stderr)
        return None


def benchmark_map(doc, metric):
    """name -> metric value for a Google-Benchmark JSON document."""
    out = {}
    for bench in doc.get("benchmarks", []):
        name = bench.get("name")
        value = bench.get(metric)
        # Skip aggregate rows (mean/median/stddev) — compare raw runs.
        if bench.get("run_type") == "aggregate":
            continue
        if isinstance(name, str) and isinstance(value, (int, float)):
            out[name] = float(value)
    return out


def compare_google_benchmark(name, current, baseline, args):
    """Returns the list of regression description strings."""
    cur = benchmark_map(current, args.metric)
    base = benchmark_map(baseline, args.metric)
    regressions = []
    for bench, base_value in sorted(base.items()):
        if bench not in cur:
            print(f"  [gone]    {bench} (present only in baseline)")
            continue
        cur_value = cur[bench]
        if base_value <= 0:
            continue
        ratio = cur_value / base_value
        delta = 100.0 * (ratio - 1.0)
        tag = "ok"
        if ratio > 1.0 + args.threshold:
            tag = "REGRESSION"
            regressions.append(
                f"{name}: {bench}: {args.metric} {base_value:.1f} -> "
                f"{cur_value:.1f} ({delta:+.1f}%, threshold "
                f"{100.0 * args.threshold:.0f}%)"
            )
        elif ratio < 1.0 - args.threshold:
            tag = "improved"
        if args.verbose or tag != "ok":
            print(f"  [{tag}] {bench}: {base_value:.1f} -> {cur_value:.1f} "
                  f"({delta:+.1f}%)")
    for bench in sorted(set(cur) - set(base)):
        print(f"  [new]     {bench}")
    return regressions


def describe_rows(name, current, baseline, verbose):
    """Informational diff for list-of-row-objects table mirrors."""
    if not verbose:
        return
    n_cur = len(current) if isinstance(current, list) else 0
    n_base = len(baseline) if isinstance(baseline, list) else 0
    print(f"  table mirror: {n_base} -> {n_cur} rows (not gated)")


def parse_gate_spec(spec):
    """FILE:COLUMN:MIN -> (file, column, minimum); None on bad syntax."""
    parts = spec.rsplit(":", 1)
    if len(parts) != 2:
        return None
    head, min_text = parts
    parts = head.split(":", 1)
    if len(parts) != 2:
        return None
    fname, column = parts
    try:
        return fname, column, float(min_text)
    except ValueError:
        return None


def column_max(rows, column):
    """Maximum numeric value of `column` over a table mirror's rows."""
    best = None
    for row in rows if isinstance(rows, list) else []:
        value = row.get(column) if isinstance(row, dict) else None
        if isinstance(value, (int, float)):
            best = value if best is None else max(best, float(value))
    return best


def run_table_gates(args):
    """Evaluates --gate-table specs; returns the failure descriptions."""
    failures = []
    for spec in args.gate_table:
        parsed = parse_gate_spec(spec)
        if parsed is None:
            failures.append(f"bad --gate-table spec: {spec!r} "
                            "(want FILE:COLUMN:MIN)")
            continue
        fname, column, minimum = parsed
        doc = load_json(os.path.join(args.current, fname))
        if doc is None:
            failures.append(f"{fname}: gated artifact missing or unreadable")
            continue
        best = column_max(doc, column)
        if best is None:
            failures.append(
                f"{fname}: gated column {column!r} missing or non-numeric")
            continue
        if best < minimum:
            failures.append(f"{fname}: max {column!r} = {best:g} "
                            f"below the floor {minimum:g}")
        else:
            print(f"gate ok: {fname}: max {column!r} = {best:g} "
                  f">= {minimum:g}")
        base_path = os.path.join(args.baseline, fname)
        if os.path.exists(base_path):
            base_doc = load_json(base_path)
            base_best = column_max(base_doc, column) if base_doc else None
            if (base_best is not None and base_best > 0
                    and best < base_best * (1.0 - args.threshold)):
                failures.append(
                    f"{fname}: max {column!r} regressed {base_best:g} -> "
                    f"{best:g} (past {100.0 * args.threshold:.0f}%)")
    return failures


def main():
    parser = argparse.ArgumentParser(
        description="diff bench_results directories, exit 1 on regression")
    parser.add_argument("current", help="current bench_results directory")
    parser.add_argument("baseline", help="baseline bench_results directory")
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="relative slowdown that counts as a "
                             "regression (default 0.25 = 25%%)")
    parser.add_argument("--metric", default="real_time",
                        help="Google-Benchmark field to compare "
                             "(default real_time)")
    parser.add_argument("--verbose", action="store_true",
                        help="print every comparison, not just changes")
    parser.add_argument("--gate-table", action="append", default=[],
                        metavar="FILE:COLUMN:MIN",
                        help="HARD gate: max of COLUMN in table mirror "
                             "FILE must be >= MIN (and must not regress "
                             "past --threshold vs the baseline copy); "
                             "repeatable")
    parser.add_argument("--gates-only", action="store_true",
                        help="evaluate --gate-table specs only; skip the "
                             "timing comparison (baseline dir may be "
                             "missing)")
    args = parser.parse_args()

    if args.gates_only:
        if not args.gate_table:
            print("bench_compare: --gates-only without --gate-table",
                  file=sys.stderr)
            return 2
        if not os.path.isdir(args.current):
            print(f"bench_compare: not a directory: {args.current}",
                  file=sys.stderr)
            return 2
        failures = run_table_gates(args)
        if failures:
            print(f"\nbench_compare: {len(failures)} gate failure(s):")
            for f in failures:
                print(f"  {f}")
            return 1
        print("\nbench_compare: all table gates satisfied")
        return 0

    for d in (args.current, args.baseline):
        if not os.path.isdir(d):
            print(f"bench_compare: not a directory: {d}", file=sys.stderr)
            return 2

    current_files = sorted(
        f for f in os.listdir(args.current) if f.endswith(".json"))
    if not current_files:
        print(f"bench_compare: no .json artifacts in {args.current}",
              file=sys.stderr)
        return 2

    regressions = []
    compared = 0
    for fname in current_files:
        cur_path = os.path.join(args.current, fname)
        base_path = os.path.join(args.baseline, fname)
        if not os.path.exists(base_path):
            print(f"{fname}: no baseline (new artifact)")
            continue
        current = load_json(cur_path)
        baseline = load_json(base_path)
        if current is None or baseline is None:
            return 2
        print(f"{fname}:")
        if isinstance(current, dict) and "benchmarks" in current:
            regressions += compare_google_benchmark(
                fname, current, baseline, args)
            compared += 1
        else:
            describe_rows(fname, current, baseline, args.verbose)

    if args.gate_table:
        regressions += run_table_gates(args)
    if compared == 0 and not args.gate_table:
        print("bench_compare: no Google-Benchmark artifacts shared with "
              "the baseline; nothing gated")
        return 0
    if regressions:
        print(f"\nbench_compare: {len(regressions)} regression(s) past "
              f"{100.0 * args.threshold:.0f}%:")
        for r in regressions:
            print(f"  {r}")
        return 1
    print("\nbench_compare: no regressions past threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
