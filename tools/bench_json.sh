#!/usr/bin/env bash
# Emit the bench-JSON perf trajectory for this checkout.
#
#   tools/bench_json.sh [build-dir] [outdir] [min-time-seconds]
#
# Runs the Google-Benchmark micro suites (micro_substrates, abl4_treap)
# with JSON output into <outdir>/BENCH_<name>.json. These files are the
# per-PR perf record: CI archives them as artifacts so the trajectory of
# the hot paths is comparable across commits. The figure/ablation
# binaries emit the same machine-readable form via their --json flag
# (tables mirrored to <outdir>/*.json next to the CSVs).
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="${1:-$repo/build}"
outdir="${2:-$build/bench_results}"
min_time="${3:-0.05}"

mkdir -p "$outdir"

ran=0
for micro in micro_substrates abl4_treap; do
  bin="$build/$micro"
  if [[ ! -x "$bin" ]]; then
    echo "bench_json: $micro not built (Google Benchmark missing?); skipping"
    continue
  fi
  # Note: the min_time flag takes a plain double (no 's' suffix) on the
  # benchmark versions we support.
  "$bin" --benchmark_min_time="$min_time" \
         --benchmark_format=console \
         --benchmark_out_format=json \
         --benchmark_out="$outdir/BENCH_${micro}.json"
  echo "bench_json: wrote $outdir/BENCH_${micro}.json"
  ran=$((ran + 1))
done

if [[ "$ran" -eq 0 ]]; then
  echo "bench_json: no micro benches available" >&2
  exit 1
fi

# Execution-engine trajectory: the sharding ablation's JSON mirror
# records throughput and message cost per (threads, shards) point.
if [[ -x "$build/abl11_sharding" ]]; then
  "$build/abl11_sharding" --runs 2 --n 100000 --outdir "$outdir" --json \
    > /dev/null
  echo "bench_json: wrote $outdir/abl11_sharding_*.json"
fi

# Substrate trajectory: abl7's A7b table records the order-statistic
# SDominanceSet's swept-tuples-per-update and ns/update vs |T| — the
# "bottom-s update cost sublinear in |T|" record.
if [[ -x "$build/abl7_bottom_s_window" ]]; then
  "$build/abl7_bottom_s_window" --runs 1 --outdir "$outdir" --json \
    > /dev/null
  echo "bench_json: wrote $outdir/abl7_order_stats.json"
fi
