#!/usr/bin/env bash
# Emit the bench-JSON perf trajectory for this checkout.
#
#   tools/bench_json.sh [build-dir] [outdir] [min-time-seconds]
#
# Runs the Google-Benchmark micro suites (micro_substrates, abl4_treap)
# with JSON output into <outdir>/BENCH_<name>.json, then the table
# benches whose --json mirrors belong in the trajectory (abl11 sharding,
# abl12 sliding sharding over wires, abl7 order statistics). These files
# are the per-PR perf record: CI archives them as artifacts so the
# trajectory of the hot paths is comparable across commits.
#
# Failure policy: any required bench that is missing or exits nonzero
# fails this script LOUDLY (a silently dropped point would read as "no
# regression" in the trajectory). Only the Google-Benchmark micros may
# be skipped, since the library is an optional dependency — and even
# then at least one must run.
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="${1:-$repo/build}"
outdir="${2:-$build/bench_results}"
# 0.25s floor: at 0.05 back-to-back identical runs differ by up to
# +180% on this class of 1-core CI box; at 0.25 the worst same-build
# delta is ~±13%, inside bench_compare.py's 25% default threshold.
min_time="${3:-0.25}"

mkdir -p "$outdir"

fail() {
  echo "bench_json: ERROR: $*" >&2
  exit 1
}

ran=0
for micro in micro_substrates abl4_treap; do
  bin="$build/$micro"
  if [[ ! -x "$bin" ]]; then
    echo "bench_json: $micro not built (Google Benchmark missing?); skipping"
    continue
  fi
  # Note: the min_time flag takes a plain double (no 's' suffix) on the
  # benchmark versions we support.
  "$bin" --benchmark_min_time="$min_time" \
         --benchmark_format=console \
         --benchmark_out_format=json \
         --benchmark_out="$outdir/BENCH_${micro}.json" \
    || fail "$micro exited nonzero"
  echo "bench_json: wrote $outdir/BENCH_${micro}.json"
  ran=$((ran + 1))
done

if [[ "$ran" -eq 0 ]]; then
  fail "no micro benches available"
fi

# A table bench in the trajectory: must exist and must succeed.
run_table_bench() {
  local name="$1"
  shift
  local bin="$build/$name"
  [[ -x "$bin" ]] || fail "required bench binary $name is not built"
  "$bin" "$@" --outdir "$outdir" --json > /dev/null \
    || fail "$name exited nonzero"
  echo "bench_json: wrote $outdir/${name%%_*}*.json ($name)"
}

# Execution-engine trajectory: the sharding ablation's JSON mirror
# records throughput, message cost, wakeup-coalescing before/after, and
# route-cache hit rate per (threads, shards) point.
run_table_bench abl11_sharding --runs 2 --n 100000 --wakeup-ablation

# Sharded sliding windows over realistic wires: merged-query agreement
# (the exact protocol must stay at 100), message cost vs shards, and
# lockstep throughput.
run_table_bench abl12_sliding_sharding --runs 1 --slots 250 --threads 2

# Fault-tolerance trajectory: abl13's table records checkpoint
# bandwidth (bytes/slot vs cadence vs shards) and recovery latency in
# slots under a deterministic kill schedule — with the agree% column
# pinning the exact protocol at 100 through every recovery.
run_table_bench abl13_recovery --runs 1 --slots 200 \
  --shard-list 2,3 --cadence-list 8,16

# Substrate trajectory: abl7's A7b table records the order-statistic
# SDominanceSet's swept-tuples-per-update and ns/update vs |T| — the
# "bottom-s update cost sublinear in |T|" record.
run_table_bench abl7_bottom_s_window --runs 1

# Batched-ingest trajectory: abl14's xB/x1 column is the
# hardware-independent batched-over-single throughput ratio per layer
# (sampler = combined dominance sweep; deployment = per-element wire
# contract preserved). Bit-identity is pinned by the test suite; this
# records only the price.
run_table_bench abl14_batch_ingest --runs 1 --slots 4000

# Multi-tenant serving trajectory: abl15 pins agree% at 100 (shared
# structure vs dedicated per-tenant samplers; the binary exits nonzero
# on any disagreement) and records the sub-linear memory and ingest
# ratios vs tenant count.
run_table_bench abl15_multitenant --runs 1 --slots 2000

# Speculative-lockstep trajectory: abl17's "wave x lockstep" column is
# the hardware-independent mean-wave-length ratio over the
# delivery-horizon baseline, with the rollback rate and snapshot
# bytes/slot as the price. The binary exits nonzero when the sub-slot
# wire's ratio drops below 8x (its --gate-ratio), and ci.sh additionally
# hard-gates the column via bench_compare.py --gate-table.
run_table_bench abl17_speculation --runs 1 --n 30000
