// obs_report — render an observability snapshot as tables.
//
// Two input modes:
//   --prom FILE   parse a Prometheus text exposition (what a deployment
//                 writes via Observability::prometheus(), e.g. the
//                 --metrics flag of examples/sharded_sliding_lossy) and
//                 print counters/gauges and histogram summaries as
//                 Markdown tables. With --check, exit nonzero when the
//                 file does not parse — the CI smoke's format gate.
//   --demo        run a small sliding-window deployment with metrics
//                 (and optionally tracing: --trace PATH) enabled, then
//                 print its live snapshot the same way. With --check,
//                 also run the Prometheus round-trip self-test.
//
//   ./build/tools/obs_report --prom snapshot.prom
//   ./build/tools/obs_report --demo --trace demo_trace.json --check
#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "core/system.h"
#include "obs/export.h"
#include "obs/observability.h"
#include "stream/generators.h"
#include "stream/partitioner.h"
#include "util/cli.h"
#include "util/table.h"

namespace {

using namespace dds;

// Groups parsed samples back into scalar metrics and histogram
// triplets (name_bucket/_sum/_count) for table rendering.
struct GroupedSamples {
  std::map<std::string, double> scalars;
  struct Hist {
    std::vector<std::pair<std::string, double>> buckets;  // (le, cum count)
    double sum = 0.0;
    double count = 0.0;
  };
  std::map<std::string, Hist> histograms;
};

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

GroupedSamples group(const std::vector<obs::PromSample>& samples) {
  GroupedSamples out;
  for (const obs::PromSample& s : samples) {
    if (ends_with(s.name, "_bucket")) {
      auto& hist = out.histograms[s.name.substr(0, s.name.size() - 7)];
      const auto le = s.labels.find("le");
      hist.buckets.emplace_back(le == s.labels.end() ? "?" : le->second,
                                s.value);
    } else if (ends_with(s.name, "_sum") &&
               out.histograms.count(s.name.substr(0, s.name.size() - 4))) {
      out.histograms[s.name.substr(0, s.name.size() - 4)].sum = s.value;
    } else if (ends_with(s.name, "_count") &&
               out.histograms.count(s.name.substr(0, s.name.size() - 6))) {
      out.histograms[s.name.substr(0, s.name.size() - 6)].count = s.value;
    } else {
      out.scalars[s.name] = s.value;
    }
  }
  return out;
}

void print_tables(const GroupedSamples& grouped) {
  util::Table scalars({"metric", "value"});
  for (const auto& [name, value] : grouped.scalars) {
    scalars.add_row({name, util::fmt(value)});
  }
  scalars.print(std::cout, "metrics");

  if (!grouped.histograms.empty()) {
    util::Table hists({"histogram", "count", "sum", "mean", "buckets"});
    for (const auto& [name, h] : grouped.histograms) {
      std::ostringstream buckets;
      for (std::size_t i = 0; i + 1 < h.buckets.size(); ++i) {
        if (i) buckets << " ";
        buckets << "le" << h.buckets[i].first << ":"
                << util::fmt(h.buckets[i].second);
      }
      hists.add_row({name, util::fmt(h.count), util::fmt(h.sum),
                     util::fmt(h.count == 0.0 ? 0.0 : h.sum / h.count),
                     buckets.str()});
    }
    hists.print(std::cout, "histograms");
  }
}

int report_prom_file(const std::string& path, bool check) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "obs_report: cannot open %s\n", path.c_str());
    return 1;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const auto samples = obs::parse_prometheus(buf.str());
  if (!samples) {
    std::fprintf(stderr,
                 "obs_report: %s is not valid Prometheus exposition\n",
                 path.c_str());
    return check ? 2 : 1;
  }
  print_tables(group(*samples));
  std::printf("\n%zu samples parsed from %s\n", samples->size(),
              path.c_str());
  return 0;
}

int run_demo(const std::string& trace_path, bool check) {
  core::SlidingSystemConfig config;
  config.num_sites = 8;
  config.sample_size = 4;
  config.window = 64;
  config.observability.metrics = true;
  config.observability.tracing = true;
  core::SlidingSystem system(config);

  stream::UniformStream elements(/*n=*/256 * 16, /*domain_size=*/512,
                                 /*seed=*/7);
  stream::SlottedFeeder source(elements, config.num_sites,
                               /*per_slot=*/16, /*seed=*/11);
  system.run(source);
  system.observability().sample_counters(
      static_cast<double>(system.engine().current_slot()));

  const obs::MetricsSnapshot snapshot = system.observability().snapshot();
  const auto samples = obs::parse_prometheus(obs::to_prometheus(snapshot));
  if (!samples) {
    std::fprintf(stderr, "obs_report: demo exposition failed to parse\n");
    return 2;
  }
  print_tables(group(*samples));

  if (!trace_path.empty()) {
    system.observability().write_trace(trace_path);
    std::printf("\ntrace written to %s (%zu events)\n", trace_path.c_str(),
                system.observability().tracer()->size());
  }
  if (check) {
    const std::string err = obs::prometheus_round_trip_error(snapshot);
    if (!err.empty()) {
      std::fprintf(stderr, "obs_report: round-trip check failed: %s\n",
                   err.c_str());
      return 2;
    }
    std::printf("round-trip check passed (%zu samples)\n", samples->size());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  dds::util::Cli cli;
  cli.flag("prom", "Prometheus text file to render", "");
  cli.boolean("demo", "run a small instrumented deployment and report it");
  cli.flag("trace", "with --demo: write the Chrome trace here", "");
  cli.boolean("check", "exit nonzero on parse/round-trip failure");
  if (!cli.parse(argc, argv)) return 1;

  const std::string prom = cli.get("prom");
  if (!prom.empty()) return report_prom_file(prom, cli.get_bool("check"));
  if (cli.get_bool("demo")) {
    return run_demo(cli.get("trace"), cli.get_bool("check"));
  }
  std::fprintf(stderr, "obs_report: pass --prom FILE or --demo (see --help)\n");
  return 1;
}
