// Ablation A15 — multi-tenant multi-width serving from one shared
// candidate structure (query::TenantRegistry) vs the naive
// one-sampler-per-tenant deployment.
//
// Sweep over tenant counts M (widths spread geometrically up to W):
//
//   * agree%    — fraction of (tenant, query-slot) answers bit-identical
//                 to the dedicated width-w sampler; MUST print 100 (the
//                 exactness contract; also pinned in
//                 tests/tenant_service_test.cpp).
//   * memory    — tuples retained, shared vs the naive sum, and the
//                 bytes ratio: shared ingest keeps ONE structure keyed
//                 at W while naive pays per tenant, so shared memory is
//                 flat (sub-linear) in M.
//   * queries/s — serve_all throughput over all M standing queries
//                 (expiry-threshold walks of the order-statistic treap,
//                 O(log n + s) each).
//   * ingest x  — arrivals/s, shared (hashed + inserted once) over
//                 naive (once per tenant): the serving-side ingest win.
#include "bench_common.h"

#include "core/windowed_bottom_s.h"
#include "query/service.h"

namespace {

using namespace dds;

struct RunOut {
  double agree = 0.0;
  double shared_tuples = 0.0;
  double naive_tuples = 0.0;
  double bytes_ratio = 0.0;
  double queries_per_s = 0.0;
  double ingest_ratio = 0.0;
};

RunOut run_point(std::size_t tenants, sim::Slot max_width, std::size_t s,
                 sim::Slot slots, std::uint64_t seed) {
  query::TenantRegistry registry(s, max_width, 1, hash::HashKind::kMurmur2,
                                 seed);
  std::vector<core::WindowedBottomSSampler> naive;
  std::vector<sim::Slot> widths;
  for (std::size_t i = 0; i < tenants; ++i) {
    const auto w = std::max<sim::Slot>(
        1, (max_width * static_cast<sim::Slot>(i + 1)) /
               static_cast<sim::Slot>(tenants));
    widths.push_back(w);
    registry.register_tenant(w);
    naive.emplace_back(s, w, hash::HashFunction(hash::HashKind::kMurmur2, seed),
                       util::derive_seed(seed, 0xAB15 + i));
  }

  util::Xoshiro256StarStar rng(seed ^ 0x15);
  std::vector<std::vector<std::uint64_t>> bursts;
  for (sim::Slot t = 0; t < slots; ++t) {
    auto& burst = bursts.emplace_back();
    const std::uint64_t count = rng.next_below(100) < 10 ? 24 : 4;
    for (std::uint64_t i = 0; i < count; ++i) {
      burst.push_back(util::mix64(1 + rng.next_below(50000)));
    }
  }

  RunOut out;
  std::uint64_t arrivals = 0;
  // Shared ingest (batched) ...
  util::Timer shared_timer;
  for (sim::Slot t = 0; t < slots; ++t) {
    registry.update_batch(0, bursts[static_cast<std::size_t>(t)], t);
    arrivals += bursts[static_cast<std::size_t>(t)].size();
  }
  const double shared_ingest = shared_timer.elapsed_seconds();
  // ... vs naive: every tenant's sampler pays the full stream.
  util::Timer naive_timer;
  for (sim::Slot t = 0; t < slots; ++t) {
    for (auto& sampler : naive) {
      for (const auto e : bursts[static_cast<std::size_t>(t)]) {
        sampler.observe(e, t);
      }
    }
  }
  const double naive_ingest = naive_timer.elapsed_seconds();
  out.ingest_ratio =
      naive_ingest / std::max(shared_ingest, 1e-9);

  // Agreement sweep at the final window of slots.
  std::vector<treap::Candidate> want;
  std::uint64_t agree = 0, checked = 0;
  const sim::Slot now = slots - 1;
  const auto& answers = registry.serve_all(now);
  for (std::size_t i = 0; i < tenants; ++i) {
    naive[i].sample_into(now, want);
    ++checked;
    agree += answers[i] == want ? 1 : 0;
  }
  out.agree = 100.0 * static_cast<double>(agree) /
              static_cast<double>(checked);

  out.shared_tuples = static_cast<double>(registry.state_size());
  std::size_t naive_tuples = 0, naive_bytes = 0;
  for (const auto& sampler : naive) {
    naive_tuples += sampler.state_size();
    naive_bytes += sampler.footprint_bytes();
  }
  out.naive_tuples = static_cast<double>(naive_tuples);
  out.bytes_ratio = static_cast<double>(naive_bytes) /
                    static_cast<double>(std::max<std::size_t>(
                        registry.footprint_bytes(), 1));

  // Serving throughput: all M standing queries, repeatedly.
  constexpr int kServeRounds = 200;
  util::Timer serve_timer;
  for (int r = 0; r < kServeRounds; ++r) registry.serve_all(now);
  out.queries_per_s = static_cast<double>(kServeRounds) *
                      static_cast<double>(tenants) /
                      serve_timer.elapsed_seconds();
  (void)arrivals;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli;
  bench::register_common(cli);
  cli.flag("slots", "slots per run", "4000");
  cli.flag("max-width", "widest tenant window W", "1024");
  cli.flag("sample-size", "per-tenant bottom-s size", "16");
  if (!cli.parse(argc, argv)) return 1;
  const auto args = bench::read_common(cli);
  const auto slots = static_cast<sim::Slot>(cli.get_uint("slots"));
  const auto max_width = static_cast<sim::Slot>(cli.get_uint("max-width"));
  const auto s = static_cast<std::size_t>(cli.get_uint("sample-size"));
  bench::banner("Ablation A15: multi-tenant serving, shared vs naive", args);

  util::Table table({"tenants", "agree%", "shared tuples", "naive tuples",
                     "naive/shared bytes", "queries/s", "ingest x"});
  for (const std::size_t tenants : {1, 2, 4, 8, 16, 32}) {
    util::RunningStat agree, shared_tuples, naive_tuples, bytes_ratio,
        queries, ingest;
    for (std::uint64_t run = 0; run < args.runs; ++run) {
      const auto out = run_point(tenants, max_width, s, slots,
                                 bench::run_seed(args, tenants, run));
      agree.add(out.agree);
      shared_tuples.add(out.shared_tuples);
      naive_tuples.add(out.naive_tuples);
      bytes_ratio.add(out.bytes_ratio);
      queries.add(out.queries_per_s);
      ingest.add(out.ingest_ratio);
    }
    table.add_row({util::fmt(static_cast<std::uint64_t>(tenants)),
                   util::fmt_fixed(agree.mean(), 1),
                   util::fmt(shared_tuples.mean(), 4),
                   util::fmt(naive_tuples.mean(), 4),
                   util::fmt(bytes_ratio.mean(), 3),
                   util::fmt(queries.mean(), 6), util::fmt(ingest.mean(), 3)});
    if (agree.mean() < 100.0) {
      std::cerr << "A15: AGREEMENT VIOLATION at tenants=" << tenants
                << " (answers must be bit-identical to dedicated samplers)\n";
      return 1;
    }
  }
  bench::emit(table,
              "A15: M tenant widths served from one shared structure "
              "(agree% must be 100; W=" + std::to_string(max_width) +
                  ", s=" + std::to_string(s) + ")",
              "abl15_multitenant.csv", args);
  return 0;
}
