// Figure 5.9 — sliding windows: per-site memory consumption as a
// function of the number of sites. Paper setup: window size w = 100,
// 5 elements per timestep to random sites, k swept.
//
// Expected shape (paper): more sites => fewer elements per site =>
// lower per-site memory.
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace dds;
  util::Cli cli;
  bench::register_common(cli);
  cli.flag("window", "window size w", "100");
  cli.flag("sites", "comma-separated k sweep", "5,10,20,30,40,50");
  cli.flag("per-slot", "elements per timestep", "5");
  if (!cli.parse(argc, argv)) return 1;
  auto args = bench::read_common(cli);
  const auto w = static_cast<sim::Slot>(cli.get_uint("window"));
  const auto sweep = cli.get_uint_list("sites");
  const auto per_slot = static_cast<std::uint32_t>(cli.get_uint("per-slot"));
  bench::banner("Figure 5.9: sliding windows, per-site memory vs sites", args);

  for (auto dataset : {stream::Dataset::kOc48, stream::Dataset::kEnron}) {
    sim::SeriesBundle bundle("k");
    for (std::size_t pi = 0; pi < sweep.size(); ++pi) {
      const auto k = static_cast<std::uint32_t>(sweep[pi]);
      for (std::uint64_t run = 0; run < args.runs; ++run) {
        const auto seed = bench::run_seed(args, 6000 + pi, run);
        const auto stats =
            bench::run_sliding_once(k, w, dataset, args, seed, per_slot);
        bundle.series("mean per-site tuples").add(
            static_cast<double>(k), stats.mean_per_site_memory);
        bundle.series("max per-site tuples").add(
            static_cast<double>(k), stats.max_per_site_memory);
      }
    }
    const auto& spec = stream::trace_spec(dataset);
    bench::emit(bundle.to_table(),
                "Figure 5.9 (" + spec.name + "): per-site memory vs k, w=" +
                    std::to_string(w),
                "fig5_09_" + stream::to_string(dataset) + ".csv", args);
  }
  return 0;
}
