// Ablation A7 — two ways to get a window sample of size s > 1.
//
// The thesis prescribes s parallel copies of the single-sample protocol
// (a with-replacement sample; core/multi_sliding.h). The alternative
// built in this library is an exact without-replacement bottom-s via
// per-site s-dominance sets and full synchronization
// (baseline/fullsync_bottom_s.h). This bench sweeps s and reports the
// message and per-site memory cost of each — the parallel-copies scheme
// pays roughly s independent single-sample protocols; the full-sync
// scheme pays per local bottom-s change but needs no replies.
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace dds;
  util::Cli cli;
  bench::register_common(cli);
  cli.flag("sites", "number of sites k", "10");
  cli.flag("window", "window size w", "500");
  cli.flag("sample-sizes", "comma-separated s sweep", "1,2,4,8,16");
  if (!cli.parse(argc, argv)) return 1;
  const auto args = bench::read_common(cli);
  const auto k = static_cast<std::uint32_t>(cli.get_uint("sites"));
  const auto w = static_cast<sim::Slot>(cli.get_uint("window"));
  const auto sweep = cli.get_uint_list("sample-sizes");
  bench::banner("Ablation A7: window sample size s — parallel copies vs "
                "exact bottom-s",
                args);

  util::Table table({"s", "copies msgs", "copies mem/site", "bottom-s msgs",
                     "bottom-s mem/site"});
  for (std::size_t pi = 0; pi < sweep.size(); ++pi) {
    const auto s = static_cast<std::size_t>(sweep[pi]);
    util::RunningStat copies_msgs, copies_mem, exact_msgs, exact_mem;
    for (std::uint64_t run = 0; run < args.runs; ++run) {
      const auto seed = bench::run_seed(args, pi, run);
      core::SlidingSystemConfig config;
      config.num_sites = k;
      config.window = w;
      config.sample_size = s;
      config.hash_kind = args.hash_kind;
      config.seed = seed;
      {
        core::SlidingSystem system(config);
        auto input = stream::make_trace(stream::Dataset::kEnron,
                                        args.scale(stream::Dataset::kEnron),
                                        seed + 1);
        stream::SlottedFeeder source(*input, k, 5, seed + 2);
        system.run(source);
        copies_msgs.add(static_cast<double>(system.bus().counters().total));
        copies_mem.add(static_cast<double>(system.total_site_state()) / k);
      }
      {
        baseline::BottomSSlidingSystem system(config);
        auto input = stream::make_trace(stream::Dataset::kEnron,
                                        args.scale(stream::Dataset::kEnron),
                                        seed + 1);
        stream::SlottedFeeder source(*input, k, 5, seed + 2);
        system.run(source);
        exact_msgs.add(static_cast<double>(system.bus().counters().total));
        exact_mem.add(static_cast<double>(system.total_site_state()) / k);
      }
    }
    table.add_row({util::fmt(sweep[pi]), util::fmt(copies_msgs.mean(), 6),
                   util::fmt(copies_mem.mean(), 4),
                   util::fmt(exact_msgs.mean(), 6),
                   util::fmt(exact_mem.mean(), 4)});
  }
  bench::emit(table,
              "A7: Enron synthetic, k=" + std::to_string(k) + ", w=" +
                  std::to_string(w),
              "abl7_bottom_s_window.csv", args);

  // A7b: the order-statistic SDominanceSet substrate in isolation —
  // per-update cost vs the retained set size |T|. An all-distinct
  // stream maximizes |T| (~ s(1 + ln(w/s)), the bottom-s Lemma 10), and
  // the window sweep grows it; the "swept/update" column is the mean
  // number of stored tuples the dominance sweep examined per observe
  // (the early-exit working-set walk), which must stay roughly flat —
  // i.e. update cost sublinear in |T| — for the substrate to beat the
  // old O(|T|)-scan flat vector.
  util::Table t2({"s", "window", "mean |T|", "swept/update", "ns/update",
                  "bottom-s ns"});
  std::uint64_t element = 1;
  for (const std::size_t s : {4, 16}) {
    for (const sim::Slot win : {1000, 10000, 100000}) {
      treap::SDominanceSet set(s, args.seed);
      hash::HashFunction h(args.hash_kind, args.seed + 7);
      sim::Slot t = 0;
      for (; t < win; ++t) {  // warm to steady state
        set.expire(t);
        set.observe(element, h(element), t + win);
        ++element;
      }
      const std::uint64_t swept0 = set.swept_tuples();
      const std::uint64_t updates0 = set.updates();
      util::RunningStat size_stat;
      util::Timer timer;
      for (const sim::Slot end = 2 * win; t < end; ++t) {
        set.expire(t);
        set.observe(element, h(element), t + win);
        ++element;
        if ((t & 63) == 0) size_stat.add(static_cast<double>(set.size()));
      }
      const double ns_per_update =
          timer.elapsed_seconds() * 1e9 / static_cast<double>(win);
      const double swept_per_update =
          static_cast<double>(set.swept_tuples() - swept0) /
          static_cast<double>(set.updates() - updates0);
      std::vector<treap::Candidate> bottom;
      util::Timer bottom_timer;
      constexpr int kBottomCalls = 20000;
      for (int i = 0; i < kBottomCalls; ++i) {
        set.bottom_s_into(bottom);
      }
      const double bottom_ns =
          bottom_timer.elapsed_seconds() * 1e9 / kBottomCalls;
      t2.add_row({util::fmt(static_cast<std::uint64_t>(s)),
                  util::fmt(static_cast<std::uint64_t>(win)),
                  util::fmt(size_stat.mean(), 4),
                  util::fmt(swept_per_update, 4),
                  util::fmt(ns_per_update, 4), util::fmt(bottom_ns, 4)});
    }
  }
  bench::emit(t2,
              "A7b: order-statistic SDominanceSet — update cost vs |T| "
              "(all-distinct stream)",
              "abl7_order_stats.csv", args);
  return 0;
}
