// Ablation A7 — two ways to get a window sample of size s > 1.
//
// The thesis prescribes s parallel copies of the single-sample protocol
// (a with-replacement sample; core/multi_sliding.h). The alternative
// built in this library is an exact without-replacement bottom-s via
// per-site s-dominance sets and full synchronization
// (baseline/fullsync_bottom_s.h). This bench sweeps s and reports the
// message and per-site memory cost of each — the parallel-copies scheme
// pays roughly s independent single-sample protocols; the full-sync
// scheme pays per local bottom-s change but needs no replies.
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace dds;
  util::Cli cli;
  bench::register_common(cli);
  cli.flag("sites", "number of sites k", "10");
  cli.flag("window", "window size w", "500");
  cli.flag("sample-sizes", "comma-separated s sweep", "1,2,4,8,16");
  if (!cli.parse(argc, argv)) return 1;
  const auto args = bench::read_common(cli);
  const auto k = static_cast<std::uint32_t>(cli.get_uint("sites"));
  const auto w = static_cast<sim::Slot>(cli.get_uint("window"));
  const auto sweep = cli.get_uint_list("sample-sizes");
  bench::banner("Ablation A7: window sample size s — parallel copies vs "
                "exact bottom-s",
                args);

  util::Table table({"s", "copies msgs", "copies mem/site", "bottom-s msgs",
                     "bottom-s mem/site"});
  for (std::size_t pi = 0; pi < sweep.size(); ++pi) {
    const auto s = static_cast<std::size_t>(sweep[pi]);
    util::RunningStat copies_msgs, copies_mem, exact_msgs, exact_mem;
    for (std::uint64_t run = 0; run < args.runs; ++run) {
      const auto seed = bench::run_seed(args, pi, run);
      core::SlidingSystemConfig config;
      config.num_sites = k;
      config.window = w;
      config.sample_size = s;
      config.hash_kind = args.hash_kind;
      config.seed = seed;
      {
        core::SlidingSystem system(config);
        auto input = stream::make_trace(stream::Dataset::kEnron,
                                        args.scale(stream::Dataset::kEnron),
                                        seed + 1);
        stream::SlottedFeeder source(*input, k, 5, seed + 2);
        system.run(source);
        copies_msgs.add(static_cast<double>(system.bus().counters().total));
        copies_mem.add(static_cast<double>(system.total_site_state()) / k);
      }
      {
        baseline::BottomSSlidingSystem system(config);
        auto input = stream::make_trace(stream::Dataset::kEnron,
                                        args.scale(stream::Dataset::kEnron),
                                        seed + 1);
        stream::SlottedFeeder source(*input, k, 5, seed + 2);
        system.run(source);
        exact_msgs.add(static_cast<double>(system.bus().counters().total));
        exact_mem.add(static_cast<double>(system.total_site_state()) / k);
      }
    }
    table.add_row({util::fmt(sweep[pi]), util::fmt(copies_msgs.mean(), 6),
                   util::fmt(copies_mem.mean(), 4),
                   util::fmt(exact_msgs.mean(), 6),
                   util::fmt(exact_mem.mean(), 4)});
  }
  bench::emit(table,
              "A7: Enron synthetic, k=" + std::to_string(k) + ", w=" +
                  std::to_string(w),
              "abl7_bottom_s_window.csv", args);
  return 0;
}
