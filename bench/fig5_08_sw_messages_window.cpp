// Figure 5.8 — sliding windows: number of messages vs window size.
// Paper setup (Section 5.3): k = 10 sites, 5 elements per timestep to
// random sites.
//
// Expected shape (paper): unlike memory, the communication cost
// DECREASES as the window grows — more distinct elements per window
// means a lower probability that the sample changes on an arrival or an
// expiry.
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace dds;
  util::Cli cli;
  bench::register_common(cli);
  cli.flag("sites", "number of sites k", "10");
  cli.flag("windows", "comma-separated window sizes",
           "100,200,500,1000,2000,5000");
  cli.flag("per-slot", "elements per timestep", "5");
  if (!cli.parse(argc, argv)) return 1;
  auto args = bench::read_common(cli);
  const auto sites = static_cast<std::uint32_t>(cli.get_uint("sites"));
  const auto windows = cli.get_uint_list("windows");
  const auto per_slot = static_cast<std::uint32_t>(cli.get_uint("per-slot"));
  bench::banner("Figure 5.8: sliding windows, messages vs window size", args);

  for (auto dataset : {stream::Dataset::kOc48, stream::Dataset::kEnron}) {
    sim::SeriesBundle bundle("window");
    for (std::size_t pi = 0; pi < windows.size(); ++pi) {
      const auto w = static_cast<sim::Slot>(windows[pi]);
      for (std::uint64_t run = 0; run < args.runs; ++run) {
        const auto seed = bench::run_seed(args, 5000 + pi, run);
        const auto stats =
            bench::run_sliding_once(sites, w, dataset, args, seed, per_slot);
        bundle.series("messages").add(static_cast<double>(w),
                                      static_cast<double>(stats.messages));
      }
    }
    const auto& spec = stream::trace_spec(dataset);
    bench::emit(bundle.to_table(),
                "Figure 5.8 (" + spec.name +
                    "): total messages vs window size, k=" +
                    std::to_string(sites),
                "fig5_08_" + stream::to_string(dataset) + ".csv", args);
  }
  return 0;
}
