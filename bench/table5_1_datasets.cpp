// Table 5.1 — "The number of elements and distinct elements in OC48 IP
// and Enron e-mail datasets".
//
// We cannot redistribute the real traces (DESIGN.md §3), so this bench
// regenerates the table from the calibrated synthetic equivalents: under
// --full it measures the full-scale streams and prints achieved counts
// next to the paper's; in quick mode it reports the scaled streams the
// other benches use by default.
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace dds;
  util::Cli cli;
  bench::register_common(cli);
  if (!cli.parse(argc, argv)) return 1;
  const auto args = bench::read_common(cli);
  bench::banner("Table 5.1: dataset sizes (synthetic equivalents)", args);

  util::Table table({"dataset", "scale", "# elements", "# distinct",
                     "paper # elements", "paper # distinct",
                     "distinct ratio vs paper"});
  for (auto dataset : {stream::Dataset::kOc48, stream::Dataset::kEnron}) {
    const auto& spec = stream::trace_spec(dataset);
    const double scale = args.scale(dataset);
    auto input = stream::make_trace(dataset, scale, args.seed);
    const auto stats = stream::measure(*input);
    const double ratio = scale == 1.0
                             ? static_cast<double>(stats.distinct) /
                                   static_cast<double>(spec.paper_distinct)
                             : 0.0;
    table.add_row({spec.name, util::fmt(scale, 4), util::fmt(stats.elements),
                   util::fmt(stats.distinct), util::fmt(spec.paper_elements),
                   util::fmt(spec.paper_distinct),
                   scale == 1.0 ? util::fmt(ratio, 4) : "n/a (scaled)"});
  }
  bench::emit(table, "Table 5.1 — dataset summary", "table5_1.csv", args);
  return 0;
}
