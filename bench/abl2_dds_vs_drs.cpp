// Ablation A2 — distinct sampling (DDS) vs frequency-weighted random
// sampling (DRS), the Chapter 1 contrast.
//
// Workload: d distinct elements, each appearing ~ r times (uniform
// draws, n = d*r). Two views:
//   * total messages — DDS converges once the distinct universe is
//     exhausted; DRS keeps paying ~ s ln(n) because every occurrence
//     draws a fresh tag;
//   * steady-state messages (second half of the stream, where almost no
//     new distinct elements appear) — DDS goes silent, DRS does not.
// DDS runs with duplicate suppression so its silence is exact
// (see infinite_site.h).
#include "bench_common.h"

namespace {

struct PhaseCounts {
  std::uint64_t total = 0;
  std::uint64_t second_half = 0;
};

template <typename System>
PhaseCounts run_phases(System& system, dds::stream::ElementStream& input,
                       std::uint32_t k, std::uint64_t seed) {
  using namespace dds;
  const std::uint64_t n = input.length();
  stream::RandomPartitioner source(input, k, seed);
  std::uint64_t at_half = 0;
  system.runner().set_observer(
      std::max<std::uint64_t>(1, n / 2),
      [&](const sim::Progress& p) {
        if (!p.final_snapshot && p.elements_processed <= n / 2 + 1) {
          at_half = system.bus().counters().total;
        }
      });
  system.run(source);
  PhaseCounts out;
  out.total = system.bus().counters().total;
  out.second_half = out.total - at_half;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dds;
  util::Cli cli;
  bench::register_common(cli);
  cli.flag("sites", "number of sites k", "10");
  cli.flag("sample-size", "sample size s", "10");
  cli.flag("distinct", "number of distinct elements d", "20000");
  cli.flag("repeat-factors", "comma-separated duplicate densities r",
           "1,4,16,64,256");
  if (!cli.parse(argc, argv)) return 1;
  const auto args = bench::read_common(cli);
  const auto k = static_cast<std::uint32_t>(cli.get_uint("sites"));
  const auto s = static_cast<std::size_t>(cli.get_uint("sample-size"));
  const auto d = cli.get_uint("distinct");
  const auto factors = cli.get_uint_list("repeat-factors");
  bench::banner("Ablation A2: DDS vs DRS message cost vs duplicate density",
                args);

  util::Table table({"repeat factor r", "DDS total", "DRS total",
                     "DDS 2nd-half", "DRS 2nd-half"});
  for (std::size_t pi = 0; pi < factors.size(); ++pi) {
    const std::uint64_t r = factors[pi];
    util::RunningStat dds_total, drs_total, dds_late, drs_late;
    for (std::uint64_t run = 0; run < args.runs; ++run) {
      const auto seed = bench::run_seed(args, pi, run);
      core::SystemConfig config{k, s, args.hash_kind, seed};
      {
        core::InfiniteSystem dds(config, /*eager_threshold=*/false,
                                 /*suppress_duplicates=*/true);
        stream::UniformStream input(d * r, d, seed + 1);
        const auto counts = run_phases(dds, input, k, seed + 2);
        dds_total.add(static_cast<double>(counts.total));
        dds_late.add(static_cast<double>(counts.second_half));
      }
      {
        baseline::DrsSystem drs(config);
        stream::UniformStream input(d * r, d, seed + 1);
        const auto counts = run_phases(drs, input, k, seed + 2);
        drs_total.add(static_cast<double>(counts.total));
        drs_late.add(static_cast<double>(counts.second_half));
      }
    }
    table.add_row({util::fmt(r), util::fmt(dds_total.mean(), 6),
                   util::fmt(drs_total.mean(), 6),
                   util::fmt(dds_late.mean(), 6),
                   util::fmt(drs_late.mean(), 6)});
  }
  bench::emit(table,
              "A2: DDS vs DRS, k=" + std::to_string(k) + ", s=" +
                  std::to_string(s) + ", d=" + std::to_string(d),
              "abl2_dds_vs_drs.csv", args);
  return 0;
}
