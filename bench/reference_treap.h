// Bench-only snapshot of the pre-pool treap implementation (owning
// unique_ptr nodes, recursive split/merge/erase, one malloc per
// insert). Kept verbatim so micro_substrates / abl4 can quote
// pooled-vs-seed numbers; NOT part of the library — production code
// uses treap/treap.h.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <utility>

#include "util/rng.h"

namespace dds::bench::seed {

/// The seed's pointer-based treap: one heap allocation per insert,
/// recursive structural operations.
template <typename K, typename V, typename Compare = std::less<K>>
class ReferenceTreap {
 public:
  explicit ReferenceTreap(std::uint64_t seed = 0x7265617021ULL) : rng_(seed) {}

  std::size_t size() const noexcept { return size_of(root_.get()); }
  bool empty() const noexcept { return root_ == nullptr; }

  bool insert(const K& key, const V& value) {
    if (contains(key)) return false;
    auto node = std::make_unique<Node>(key, value, rng_.next());
    auto [left, right] = split(std::move(root_), key);
    root_ = merge(merge(std::move(left), std::move(node)), std::move(right));
    return true;
  }

  bool erase(const K& key) {
    bool removed = false;
    root_ = erase_rec(std::move(root_), key, removed);
    return removed;
  }

  bool contains(const K& key) const {
    const Node* cur = root_.get();
    while (cur != nullptr) {
      if (cmp_(key, cur->key)) {
        cur = cur->left.get();
      } else if (cmp_(cur->key, key)) {
        cur = cur->right.get();
      } else {
        return true;
      }
    }
    return false;
  }

  std::optional<std::pair<K, V>> front() const {
    const Node* cur = root_.get();
    if (cur == nullptr) return std::nullopt;
    while (cur->left) cur = cur->left.get();
    return std::make_pair(cur->key, cur->value);
  }

  template <typename Pred, typename Sink>
  void remove_prefix_while(Pred pred, Sink sink) {
    auto [taken, rest] = split_prefix(std::move(root_), pred);
    root_ = std::move(rest);
    drain_in_order(std::move(taken), sink);
  }

 private:
  struct Node {
    Node(const K& k, const V& v, std::uint64_t prio)
        : key(k), value(v), priority(prio) {}
    K key;
    V value;
    std::uint64_t priority;
    std::size_t size = 1;
    std::unique_ptr<Node> left;
    std::unique_ptr<Node> right;
  };
  using NodePtr = std::unique_ptr<Node>;

  static std::size_t size_of(const Node* n) noexcept {
    return n == nullptr ? 0 : n->size;
  }

  static void update(Node* n) noexcept {
    if (n != nullptr) {
      n->size = 1 + size_of(n->left.get()) + size_of(n->right.get());
    }
  }

  std::pair<NodePtr, NodePtr> split(NodePtr node, const K& key) {
    if (node == nullptr) return {nullptr, nullptr};
    if (cmp_(node->key, key)) {
      auto [mid, right] = split(std::move(node->right), key);
      node->right = std::move(mid);
      update(node.get());
      return {std::move(node), std::move(right)};
    }
    auto [left, mid] = split(std::move(node->left), key);
    node->left = std::move(mid);
    update(node.get());
    return {std::move(left), std::move(node)};
  }

  template <typename Pred>
  std::pair<NodePtr, NodePtr> split_prefix(NodePtr node, Pred pred) {
    if (node == nullptr) return {nullptr, nullptr};
    if (pred(node->key, node->value)) {
      auto [taken, rest] = split_prefix(std::move(node->right), pred);
      node->right = std::move(taken);
      update(node.get());
      return {std::move(node), std::move(rest)};
    }
    auto [taken, rest] = split_prefix(std::move(node->left), pred);
    node->left = std::move(rest);
    update(node.get());
    return {std::move(taken), std::move(node)};
  }

  NodePtr merge(NodePtr a, NodePtr b) {
    if (a == nullptr) return b;
    if (b == nullptr) return a;
    if (a->priority >= b->priority) {
      a->right = merge(std::move(a->right), std::move(b));
      update(a.get());
      return a;
    }
    b->left = merge(std::move(a), std::move(b->left));
    update(b.get());
    return b;
  }

  NodePtr erase_rec(NodePtr node, const K& key, bool& removed) {
    if (node == nullptr) return nullptr;
    if (cmp_(key, node->key)) {
      node->left = erase_rec(std::move(node->left), key, removed);
    } else if (cmp_(node->key, key)) {
      node->right = erase_rec(std::move(node->right), key, removed);
    } else {
      removed = true;
      return merge(std::move(node->left), std::move(node->right));
    }
    update(node.get());
    return node;
  }

  template <typename Sink>
  static void drain_in_order(NodePtr node, Sink& sink) {
    if (node == nullptr) return;
    drain_in_order(std::move(node->left), sink);
    sink(node->key, node->value);
    drain_in_order(std::move(node->right), sink);
  }

  NodePtr root_;
  util::Xoshiro256StarStar rng_;
  Compare cmp_{};
};

}  // namespace dds::bench::seed
