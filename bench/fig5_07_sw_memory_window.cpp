// Figure 5.7 — sliding windows: per-site memory consumption vs window
// size. Paper setup (Section 5.3): k = 10 sites; each timestep assigns
// 5 elements to randomly chosen sites; memory recorded per timestep.
//
// Expected shape (paper): memory grows with the window size but the
// rate of increase falls — a logarithmic dependence (Lemma 10).
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace dds;
  util::Cli cli;
  bench::register_common(cli);
  cli.flag("sites", "number of sites k", "10");
  cli.flag("windows", "comma-separated window sizes",
           "100,200,500,1000,2000,5000");
  cli.flag("per-slot", "elements per timestep", "5");
  if (!cli.parse(argc, argv)) return 1;
  auto args = bench::read_common(cli);
  const auto sites = static_cast<std::uint32_t>(cli.get_uint("sites"));
  const auto windows = cli.get_uint_list("windows");
  const auto per_slot = static_cast<std::uint32_t>(cli.get_uint("per-slot"));
  bench::banner("Figure 5.7: sliding windows, per-site memory vs window size",
                args);

  for (auto dataset : {stream::Dataset::kOc48, stream::Dataset::kEnron}) {
    sim::SeriesBundle bundle("window");
    for (std::size_t pi = 0; pi < windows.size(); ++pi) {
      const auto w = static_cast<sim::Slot>(windows[pi]);
      for (std::uint64_t run = 0; run < args.runs; ++run) {
        const auto seed = bench::run_seed(args, 4000 + pi, run);
        const auto stats =
            bench::run_sliding_once(sites, w, dataset, args, seed, per_slot);
        bundle.series("mean per-site tuples").add(
            static_cast<double>(w), stats.mean_per_site_memory);
        bundle.series("max per-site tuples").add(
            static_cast<double>(w), stats.max_per_site_memory);
      }
    }
    const auto& spec = stream::trace_spec(dataset);
    bench::emit(bundle.to_table(),
                "Figure 5.7 (" + spec.name +
                    "): per-site memory vs window size, k=" +
                    std::to_string(sites),
                "fig5_07_" + stream::to_string(dataset) + ".csv", args);
  }
  return 0;
}
