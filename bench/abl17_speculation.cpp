// Ablation A17 — speculative lockstep: playout-delay waves with
// per-site rollback.
//
// On realistic wires the sharded engine's plain lockstep mode sizes
// every wave by the transport's delivery horizon: with sub-slot latency
// the horizon certificate collapses waves to ~1 slot each, and the
// wave handshake dominates. Speculation (EngineConfig::
// speculation_window) lets waves run up to W slots past the horizon,
// defers mid-wave deliveries into a playout queue, and rolls individual
// sites back from wave-start snapshots when a delivery lands inside a
// slot range they already executed — outputs stay bit-identical to the
// serial engine (tests/speculation_test.cpp pins that).
//
// This bench records the HARDWARE-INDEPENDENT effect: mean wave length
// in slots vs the delivery_horizon baseline (the "wave x lockstep"
// ratio), the mis-speculation price (rollback rate over deferred
// deliveries, re-executed arrivals), and the snapshot cost in bytes per
// slot. The win metric — mean wave length >= 8x the lockstep baseline
// on the sub-slot-latency wire — is asserted: the binary exits nonzero
// below --gate-ratio. Wall-clock thread speedup from the longer waves
// additionally needs physical cores; on a single-core container the
// Marr/s column only shows that speculation does not add overhead.
#include "bench_common.h"

#include "sim/sharded_engine.h"

namespace {

class VectorSource final : public dds::sim::ArrivalSource {
 public:
  explicit VectorSource(const std::vector<dds::sim::Arrival>& arrivals)
      : arrivals_(arrivals) {}
  std::optional<dds::sim::Arrival> next() override {
    if (pos_ >= arrivals_.size()) return std::nullopt;
    return arrivals_[pos_++];
  }

 private:
  const std::vector<dds::sim::Arrival>& arrivals_;
  std::size_t pos_ = 0;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace dds;
  util::Cli cli;
  bench::register_common(cli);
  cli.flag("sites", "number of sites k", "16");
  cli.flag("n", "arrivals per run (slot per arrival)", "60000");
  cli.flag("domain", "distinct-element domain", "10000");
  cli.flag("sample-size", "sample size s", "16");
  cli.flag("latency-list", "comma-separated wire latencies x100 "
           "(25 = 0.25 slots)", "25,50,150");
  cli.flag("window-list", "comma-separated speculation windows W "
           "(0 = plain lockstep)", "0,8,32");
  cli.flag("bench-threads", "worker threads for every row", "4");
  cli.flag("gate-ratio", "minimum sub-slot wave-length ratio "
           "(0 disables the gate)", "8");
  if (!cli.parse(argc, argv)) return 1;
  const auto args = bench::read_common(cli);
  const auto k = static_cast<std::uint32_t>(cli.get_uint("sites"));
  const std::uint64_t n = cli.get_uint("n") * (args.full ? 10 : 1);
  const std::uint64_t domain = cli.get_uint("domain");
  const auto s = static_cast<std::size_t>(cli.get_uint("sample-size"));
  const auto latency_sweep = cli.get_uint_list("latency-list");
  const auto window_sweep = cli.get_uint_list("window-list");
  const auto threads = static_cast<std::uint32_t>(cli.get_uint("bench-threads"));
  const double gate_ratio = static_cast<double>(cli.get_uint("gate-ratio"));
  bench::banner("Ablation A17: speculative lockstep waves", args);
  std::cout << "k=" << k << ", n=" << n << ", domain=" << domain
            << ", s=" << s << ", threads=" << threads
            << " (wave-length ratios are hardware-independent; wall-clock "
               "thread speedup additionally needs physical cores)\n";

  std::vector<sim::Arrival> arrivals;
  arrivals.reserve(n);
  {
    util::SplitMix64 gen(util::derive_seed(args.seed, 0xAB17));
    for (std::uint64_t i = 0; i < n; ++i) {
      arrivals.push_back(sim::Arrival{static_cast<sim::Slot>(i),
                                      static_cast<sim::NodeId>(gen.next() % k),
                                      1 + gen.next() % domain});
    }
  }

  util::Table table({"latency", "W", "Marr/s", "waves", "wave slots",
                     "wave x lockstep", "deferred", "rollbacks",
                     "rollback%", "replayed", "snap B/slot", "mode"});
  bool gate_satisfied = false;
  bool gate_applicable = false;
  for (const std::uint64_t latency100 : latency_sweep) {
    const double latency = static_cast<double>(latency100) / 100.0;
    double lockstep_wave = 0.0;  // window 0 baseline at this latency
    for (const std::uint64_t window : window_sweep) {
      core::SystemConfig config{k, s, args.hash_kind, args.seed};
      config.num_threads = threads;
      config.speculation_window = static_cast<std::uint32_t>(window);
      config.network.link.latency = latency;
      double best_seconds = 0.0;
      std::uint64_t waves = 0, wave_slots = 0, deferred = 0, rollbacks = 0,
                     replayed = 0, snap_bytes = 0;
      const char* mode = "?";
      for (std::uint64_t run = 0; run < args.runs; ++run) {
        core::InfiniteSystem system(config);
        mode = system.runner().mode_reason();
        VectorSource source(arrivals);
        util::Timer timer;
        system.run(source);
        const double seconds = timer.elapsed_seconds();
        if (run == 0 || seconds < best_seconds) best_seconds = seconds;
        if (const auto* engine =
                dynamic_cast<const sim::ShardedEngine*>(&system.engine())) {
          waves = engine->waves();
          wave_slots = engine->wave_slots_total();
          deferred = engine->deferred_deliveries();
          rollbacks = engine->rollbacks();
          replayed = engine->replayed_items();
          snap_bytes = engine->snapshot_bytes();
        }
      }
      const double mean_wave =
          waves == 0 ? 0.0
                     : static_cast<double>(wave_slots) /
                           static_cast<double>(waves);
      if (window == 0) lockstep_wave = mean_wave;
      const double ratio =
          lockstep_wave == 0.0 ? 0.0 : mean_wave / lockstep_wave;
      const double rollback_pct =
          deferred == 0 ? 0.0
                        : 100.0 * static_cast<double>(rollbacks) /
                              static_cast<double>(deferred);
      const double snap_per_slot =
          static_cast<double>(snap_bytes) / static_cast<double>(n);
      // The win metric rides on the sub-slot wire at the largest window.
      if (latency < 1.0 && window == window_sweep.back() && window > 0) {
        gate_applicable = true;
        if (ratio >= gate_ratio) gate_satisfied = true;
      }
      table.add_row({util::fmt(latency, 3), util::fmt(window),
                     util::fmt(static_cast<double>(n) / best_seconds / 1e6, 3),
                     util::fmt(waves), util::fmt(mean_wave, 4),
                     util::fmt(ratio, 4), util::fmt(deferred),
                     util::fmt(rollbacks), util::fmt_fixed(rollback_pct, 1),
                     util::fmt(replayed), util::fmt(snap_per_slot, 3), mode});
    }
  }
  bench::emit(table,
              "A17: speculative lockstep (wave x lockstep is the "
              "hardware-independent wave-length ratio vs the "
              "delivery-horizon baseline at the same latency; "
              "bit-identity pinned by tests/speculation_test.cpp)",
              "abl17_speculation.csv", args);
  if (gate_ratio > 0.0 && gate_applicable && !gate_satisfied) {
    std::cerr << "abl17: FAIL: sub-slot wave-length ratio below "
              << gate_ratio << "x\n";
    return 1;
  }
  return 0;
}
