// Ablation A5 — sampling with replacement vs without replacement.
//
// The paper (end of Chapter 3) implements with-replacement sampling as s
// parallel single-element samplers, costing O(sk ln(d e)) messages vs
// O(ks ln(de/s)) for the bottom-s (without-replacement) scheme. The gap
// is the missing 1/s inside the log — visible as a mildly higher cost
// for the parallel-copies scheme at equal s, growing with s.
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace dds;
  util::Cli cli;
  bench::register_common(cli);
  cli.flag("sites", "number of sites k", "10");
  cli.flag("sample-sizes", "comma-separated s sweep", "5,10,20,40,80");
  if (!cli.parse(argc, argv)) return 1;
  const auto args = bench::read_common(cli);
  const auto k = static_cast<std::uint32_t>(cli.get_uint("sites"));
  const auto sweep = cli.get_uint_list("sample-sizes");
  bench::banner("Ablation A5: with vs without replacement", args);

  sim::SeriesBundle bundle("s");
  for (std::size_t pi = 0; pi < sweep.size(); ++pi) {
    const auto s = static_cast<std::size_t>(sweep[pi]);
    for (std::uint64_t run = 0; run < args.runs; ++run) {
      const auto seed = bench::run_seed(args, pi, run);
      core::SystemConfig config{k, s, args.hash_kind, seed};
      {
        core::InfiniteSystem system(config, /*eager_threshold=*/false,
                                    args.suppress_duplicates);
        auto input =
            stream::make_trace(stream::Dataset::kEnron,
                               args.scale(stream::Dataset::kEnron), seed + 1);
        stream::RandomPartitioner source(*input, k, seed + 2);
        system.run(source);
        bundle.series("without replacement (bottom-s)").add(
            static_cast<double>(s),
            static_cast<double>(system.bus().counters().total));
      }
      {
        core::WithReplacementSystem system(config);
        auto input =
            stream::make_trace(stream::Dataset::kEnron,
                               args.scale(stream::Dataset::kEnron), seed + 1);
        stream::RandomPartitioner source(*input, k, seed + 2);
        system.run(source);
        bundle.series("with replacement (s copies)").add(
            static_cast<double>(s),
            static_cast<double>(system.bus().counters().total));
      }
    }
  }
  bench::emit(bundle.to_table(),
              "A5: messages vs s, Enron synthetic, k=" + std::to_string(k),
              "abl5_replacement.csv", args);
  return 0;
}
