// Ablation A9 — sliding-window message cost vs churn (Lemma 12).
//
// Lemma 12 bounds the expected sliding-window message count by
// O(kT b/M): b = peak per-slot newest-occurrence arrivals, M = distinct
// elements per window. ChurnStream dials b/M via its fresh fraction:
// at fraction f, roughly f*per_slot fresh identities arrive per slot
// against a window holding ~ f*per_slot*w distinct — the bound predicts
// messages/slot ~ 2k*b/M independent of f, while the sample-change rate
// (and hence the real cost) falls as the window's distinct count grows.
// The table prints measured messages/slot next to the Lemma 12 bound.
#include "bench_common.h"

#include <unordered_map>

#include "stream/churn.h"

int main(int argc, char** argv) {
  using namespace dds;
  util::Cli cli;
  bench::register_common(cli);
  cli.flag("sites", "number of sites k", "10");
  cli.flag("window", "window size w", "200");
  cli.flag("per-slot", "elements per slot", "5");
  cli.flag("slots", "slots to simulate", "20000");
  cli.flag("fresh", "comma-separated fresh percentages", "5,20,50,80,100");
  if (!cli.parse(argc, argv)) return 1;
  const auto args = bench::read_common(cli);
  const auto k = static_cast<std::uint32_t>(cli.get_uint("sites"));
  const auto w = static_cast<sim::Slot>(cli.get_uint("window"));
  const auto per_slot = static_cast<std::uint32_t>(cli.get_uint("per-slot"));
  const auto slots = cli.get_uint("slots");
  const auto fresh = cli.get_uint_list("fresh");
  bench::banner("Ablation A9: sliding-window messages vs churn (Lemma 12)",
                args);

  util::Table table({"fresh %", "messages/slot", "ci95", "window distinct M",
                     "Lemma12 ref/slot", "measured/ref"});
  for (std::size_t pi = 0; pi < fresh.size(); ++pi) {
    const double f = static_cast<double>(fresh[pi]) / 100.0;
    util::RunningStat per_slot_msgs, window_distinct;
    for (std::uint64_t run = 0; run < args.runs; ++run) {
      const auto seed = bench::run_seed(args, pi, run);
      core::SlidingSystemConfig config;
      config.num_sites = k;
      config.window = w;
      config.sample_size = 1;
      config.hash_kind = args.hash_kind;
      config.seed = seed;
      core::SlidingSystem system(config);
      stream::ChurnStream input(slots * per_slot, f,
                                static_cast<std::size_t>(w) * per_slot,
                                seed + 1);
      stream::SlottedFeeder source(input, k, per_slot, seed + 2);

      // Measure the true window-distinct count M alongside the run.
      std::unordered_map<stream::Element, sim::Slot> last_arrival;
      util::RunningStat m_stat;
      system.runner().set_observer(
          per_slot, [&](const sim::Progress& p) {
            if (p.final_snapshot) return;
            std::erase_if(last_arrival, [&](const auto& kv) {
              return kv.second + w <= p.slot;
            });
            if (p.slot > w) {
              m_stat.add(static_cast<double>(last_arrival.size()));
            }
          });
      // Tap arrivals through a recording wrapper.
      class Recording final : public sim::ArrivalSource {
       public:
        Recording(sim::ArrivalSource& inner,
                  std::unordered_map<stream::Element, sim::Slot>& map)
            : inner_(inner), map_(map) {}
        std::optional<sim::Arrival> next() override {
          auto a = inner_.next();
          if (a) map_[a->element] = a->slot;
          return a;
        }

       private:
        sim::ArrivalSource& inner_;
        std::unordered_map<stream::Element, sim::Slot>& map_;
      };
      Recording recorded(source, last_arrival);
      system.run(recorded);
      per_slot_msgs.add(static_cast<double>(system.bus().counters().total) /
                        static_cast<double>(slots));
      window_distinct.add(m_stat.mean());
    }
    // Lemma 12 shape reference (unit constant): per slot, each site pays
    // ~ 2 b_i / M_i with b_i ~ per_slot/k arrivals and M_i ~ M/k distinct
    // per site, so the total is ~ 2 * per_slot * k / M. The measured
    // cost should track this within a small constant (fallback re-offers
    // after a global expiry add ~ one extra k-round, see
    // sliding_coordinator.h).
    const double bound = 2.0 * per_slot * k / std::max(1.0, window_distinct.mean());
    table.add_row({util::fmt(fresh[pi]), util::fmt(per_slot_msgs.mean(), 5),
                   util::fmt(per_slot_msgs.ci95_halfwidth(), 3),
                   util::fmt(window_distinct.mean(), 5),
                   util::fmt(bound, 4),
                   util::fmt(per_slot_msgs.mean() / bound, 3)});
  }
  bench::emit(table,
              "A9: churn sweep, k=" + std::to_string(k) + ", w=" +
                  std::to_string(w),
              "abl9_churn.csv", args);
  return 0;
}
