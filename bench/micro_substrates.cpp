// Micro-benchmarks (google-benchmark) for the substrates on the
// per-element hot path: hash evaluation, bottom-s sample offers, site
// element processing, and treap updates.
#include <benchmark/benchmark.h>

#include "core/bottom_s_sample.h"
#include "core/system.h"
#include "hash/hash_function.h"
#include "stream/generators.h"
#include "stream/partitioner.h"
#include "treap/treap.h"
#include "util/rng.h"

namespace {

using namespace dds;

void BM_Hash(benchmark::State& state) {
  const auto kind = static_cast<hash::HashKind>(state.range(0));
  hash::HashFunction h(kind, 42);
  std::uint64_t key = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(h(++key));
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(hash::to_string(kind));
}

void BM_BottomSOffer(benchmark::State& state) {
  const auto s = static_cast<std::size_t>(state.range(0));
  hash::HashFunction h(hash::HashKind::kMurmur2, 1);
  std::uint64_t e = 0;
  core::BottomSSample sample(s);
  for (auto _ : state) {
    ++e;
    benchmark::DoNotOptimize(sample.offer(e, h(e)));
  }
  state.SetItemsProcessed(state.iterations());
}

/// End-to-end per-element cost of the infinite-window deployment.
void BM_InfiniteSystemElement(benchmark::State& state) {
  const auto k = static_cast<std::uint32_t>(state.range(0));
  core::SystemConfig config{k, 10, hash::HashKind::kMurmur2, 5};
  core::InfiniteSystem system(config);
  util::Xoshiro256StarStar rng(9);

  // Pre-warm with 100k distinct elements so u is realistic.
  {
    stream::AllDistinctStream warm(100000, 3);
    stream::RandomPartitioner source(warm, k, 4);
    system.run(source);
  }
  class OneShot final : public sim::ArrivalSource {
   public:
    OneShot(sim::Slot slot, sim::NodeId site, std::uint64_t e)
        : a_{slot, site, e} {}
    std::optional<sim::Arrival> next() override {
      if (done_) return std::nullopt;
      done_ = true;
      return a_;
    }

   private:
    sim::Arrival a_;
    bool done_ = false;
  };
  sim::Slot t = 1 << 20;
  for (auto _ : state) {
    OneShot src(++t, static_cast<sim::NodeId>(rng.next_below(k)), rng.next());
    system.run(src);
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_TreapInsertErase(benchmark::State& state) {
  treap::Treap<std::uint64_t, std::uint64_t> t(11);
  const auto n = static_cast<std::uint64_t>(state.range(0));
  for (std::uint64_t i = 0; i < n; ++i) t.insert(i * 2, i);
  util::Xoshiro256StarStar rng(12);
  for (auto _ : state) {
    const std::uint64_t key = rng.next_below(2 * n) | 1;  // odd: new key
    t.insert(key, key);
    t.erase(key);
  }
  state.SetItemsProcessed(state.iterations() * 2);
}

void BM_ZipfDraw(benchmark::State& state) {
  stream::ZipfStream s(~0ULL, 1'000'000, 1.0, 17);
  for (auto _ : state) {
    benchmark::DoNotOptimize(s.next_rank());
  }
  state.SetItemsProcessed(state.iterations());
}

}  // namespace

BENCHMARK(BM_Hash)->DenseRange(0, 3);
BENCHMARK(BM_BottomSOffer)->Arg(10)->Arg(100)->Arg(1000);
BENCHMARK(BM_InfiniteSystemElement)->Arg(5)->Arg(100);
BENCHMARK(BM_TreapInsertErase)->Arg(64)->Arg(4096)->Arg(262144);
BENCHMARK(BM_ZipfDraw);

BENCHMARK_MAIN();
