// Micro-benchmarks (google-benchmark) for the substrates on the
// per-element hot path: hash evaluation, bottom-s sample offers, site
// element processing, and treap updates. The treap benches compare the
// pooled index-based implementation (treap/treap.h) against the seed's
// unique_ptr implementation (reference_treap.h) and std::map.
#include <benchmark/benchmark.h>

#include <map>

#include "core/bottom_s_sample.h"
#include "core/system.h"
#include "hash/hash_function.h"
#include "reference_dominance.h"
#include "reference_treap.h"
#include "stream/generators.h"
#include "stream/partitioner.h"
#include "treap/dominance_set.h"
#include "treap/treap.h"
#include "util/rng.h"

namespace {

using namespace dds;

void BM_Hash(benchmark::State& state) {
  const auto kind = static_cast<hash::HashKind>(state.range(0));
  hash::HashFunction h(kind, 42);
  std::uint64_t key = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(h(++key));
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(hash::to_string(kind));
}

void BM_BottomSOffer(benchmark::State& state) {
  const auto s = static_cast<std::size_t>(state.range(0));
  hash::HashFunction h(hash::HashKind::kMurmur2, 1);
  std::uint64_t e = 0;
  core::BottomSSample sample(s);
  for (auto _ : state) {
    ++e;
    benchmark::DoNotOptimize(sample.offer(e, h(e)));
  }
  state.SetItemsProcessed(state.iterations());
}

/// End-to-end per-element cost of the infinite-window deployment.
void BM_InfiniteSystemElement(benchmark::State& state) {
  const auto k = static_cast<std::uint32_t>(state.range(0));
  core::SystemConfig config{k, 10, hash::HashKind::kMurmur2, 5};
  core::InfiniteSystem system(config);
  util::Xoshiro256StarStar rng(9);

  // Pre-warm with 100k distinct elements so u is realistic.
  {
    stream::AllDistinctStream warm(100000, 3);
    stream::RandomPartitioner source(warm, k, 4);
    system.run(source);
  }
  class OneShot final : public sim::ArrivalSource {
   public:
    OneShot(sim::Slot slot, sim::NodeId site, std::uint64_t e)
        : a_{slot, site, e} {}
    std::optional<sim::Arrival> next() override {
      if (done_) return std::nullopt;
      done_ = true;
      return a_;
    }

   private:
    sim::Arrival a_;
    bool done_ = false;
  };
  sim::Slot t = 1 << 20;
  for (auto _ : state) {
    OneShot src(++t, static_cast<sim::NodeId>(rng.next_below(k)), rng.next());
    system.run(src);
  }
  state.SetItemsProcessed(state.iterations());
}

/// Steady-state insert/erase churn around a resident set of n keys.
/// Shared driver so pooled treap / seed treap / std::map run the exact
/// same key sequence.
template <typename SetLike>
void treap_churn(benchmark::State& state, SetLike& t) {
  const auto n = static_cast<std::uint64_t>(state.range(0));
  for (std::uint64_t i = 0; i < n; ++i) t.insert(i * 2, i);
  util::Xoshiro256StarStar rng(12);
  for (auto _ : state) {
    const std::uint64_t key = rng.next_below(2 * n) | 1;  // odd: new key
    t.insert(key, key);
    t.erase(key);
  }
  state.SetItemsProcessed(state.iterations() * 2);
}

void BM_TreapInsertErase(benchmark::State& state) {
  treap::Treap<std::uint64_t, std::uint64_t> t(11);
  treap_churn(state, t);
}

void BM_TreapInsertEraseSeed(benchmark::State& state) {
  bench::seed::ReferenceTreap<std::uint64_t, std::uint64_t> t(11);
  treap_churn(state, t);
}

void BM_StdMapInsertErase(benchmark::State& state) {
  // std::map with the treap driver's interface.
  struct MapAdapter {
    std::map<std::uint64_t, std::uint64_t> m;
    bool insert(std::uint64_t k, std::uint64_t v) {
      return m.emplace(k, v).second;
    }
    bool erase(std::uint64_t k) { return m.erase(k) > 0; }
  } t;
  treap_churn(state, t);
}

/// The dominance-set hot path end to end: expire + observe + min_hash
/// per slot, i.e. what every sliding-window site pays per arrival.
void BM_DominanceSetSlot(benchmark::State& state) {
  const auto domain = static_cast<std::uint64_t>(state.range(0));
  const std::int64_t window = state.range(1);
  treap::DominanceSet set(42);
  hash::HashFunction h(hash::HashKind::kMurmur2, 7);
  util::Xoshiro256StarStar rng(13);
  std::int64_t t = 0;
  // Warm up to steady state so the pool's freelist is the common path.
  for (; t < window; ++t) {
    set.expire(t);
    const std::uint64_t e = 1 + rng.next_below(domain);
    set.observe(e, h(e), t + window);
  }
  for (auto _ : state) {
    ++t;
    set.expire(t);
    const std::uint64_t e = 1 + rng.next_below(domain);
    set.observe(e, h(e), t + window);
    benchmark::DoNotOptimize(set.min_hash());
  }
  state.SetItemsProcessed(state.iterations());
}

/// Steady-state dominance-set churn at a CONTROLLED size n — the
/// substrate-crossover bench. A resident "staircase" of n tuples
/// (rising hashes, consecutive expiries) is held in equilibrium: every
/// iteration retires the front, appends at the tail, performs one
/// duplicate-refresh lookup of a random resident (the per-arrival
/// element-index path), and every 4th iteration lands a
/// coordinator-style insert in the middle of the staircase (hash and
/// expiry between its neighbours, so nothing is dominated either way).
/// The same op sequence drives every substrate: the flat ring pays
/// O(n) on the lookup and the middle shift, the treap pays O(log n)
/// everywhere plus pointer-chasing constants — the crossover between
/// them is what HybridConfig's thresholds encode.
template <typename Set>
void staircase_churn(benchmark::State& state, Set& set) {
  const auto n = static_cast<std::uint64_t>(state.range(0));
  constexpr std::uint64_t kStep = 1000;
  std::uint64_t t = 0;
  for (; t < n; ++t) set.observe(t, (t + 1) * kStep, t + n);
  util::Xoshiro256StarStar rng(42);
  std::uint64_t fresh = 1ULL << 40;
  for (auto _ : state) {
    ++t;
    set.expire(t);
    set.observe(t, (t + 1) * kStep, t + n);
    // No-op refresh: same element, same expiry — pure lookup cost.
    const std::uint64_t mid = t - 1 - rng.next_below(n / 2 + 1);
    set.observe(mid, (mid + 1) * kStep, mid + n);
    if ((t & 3) == 0) {
      // Mid-staircase insert: strictly between resident p's and p+1's
      // hashes, sharing p's expiry — no prunes in either direction.
      const std::uint64_t p = t - 1 - rng.next_below(n / 2 + 1);
      set.insert(fresh++, (p + 1) * kStep + 1 + rng.next_below(kStep / 2),
                 p + n);
    }
    benchmark::DoNotOptimize(set.min_hash());
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_DominanceChurnHybrid(benchmark::State& state) {
  treap::DominanceSet set(7);  // default thresholds
  staircase_churn(state, set);
}

void BM_DominanceChurnFlat(benchmark::State& state) {
  treap::DominanceSet set(7, treap::HybridConfig{0xFFFFFFFFu, 0});
  staircase_churn(state, set);
}

void BM_DominanceChurnTreap(benchmark::State& state) {
  treap::DominanceSet set(7, treap::HybridConfig{0, 0});
  staircase_churn(state, set);
}

void BM_DominanceChurnPR2(benchmark::State& state) {
  bench::pr2::MapIndexDominanceSet set(7);
  staircase_churn(state, set);
}

/// Hybrid threshold sweep: the same staircase churn at size n with
/// migrate_up swept across it. Below n the set promotes (treap mode),
/// above n it stays flat — the sweep exposes the crossover the default
/// HybridConfig hard-codes.
void BM_HybridThresholdSweep(benchmark::State& state) {
  const auto up = static_cast<std::uint32_t>(state.range(1));
  treap::DominanceSet set(7, treap::HybridConfig{up, up / 4});
  staircase_churn(state, set);
  state.SetLabel(set.is_flat() ? "flat-mode" : "treap-mode");
}

/// Observability cost on the end-to-end sliding-window hot path: the
/// same per-element workload with the instruments off (0), the metrics
/// registry bound (1), and registry + tracer (2). Mode 0 vs an
/// uninstrumented build is the <2%-overhead budget the layer is held
/// to; mode 1 vs 0 isolates the pull-based registry (bind-time-only
/// work, so the delta should be noise); mode 2 adds the per-delivery
/// trace emission, the one genuinely per-message cost.
void BM_ObsOverhead(benchmark::State& state) {
  const auto mode = static_cast<int>(state.range(0));
  core::SlidingSystemConfig config;
  config.num_sites = 8;
  config.sample_size = 4;
  config.window = 256;
  config.seed = 5;
  config.observability.metrics = mode >= 1;
  config.observability.tracing = mode >= 2;
  core::SlidingSystem system(config);
  util::Xoshiro256StarStar rng(9);

  class OneShot final : public sim::ArrivalSource {
   public:
    OneShot(sim::Slot slot, sim::NodeId site, std::uint64_t e)
        : a_{slot, site, e} {}
    std::optional<sim::Arrival> next() override {
      if (done_) return std::nullopt;
      done_ = true;
      return a_;
    }

   private:
    sim::Arrival a_;
    bool done_ = false;
  };
  // Warm a full window so expiry is on the steady-state path.
  sim::Slot t = 0;
  for (; t < 256; ++t) {
    OneShot src(t, static_cast<sim::NodeId>(rng.next_below(8)),
                1 + rng.next_below(100000));
    system.run(src);
  }
  for (auto _ : state) {
    OneShot src(++t, static_cast<sim::NodeId>(rng.next_below(8)),
                1 + rng.next_below(100000));
    system.run(src);
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(mode == 0 ? "obs-off"
                           : (mode == 1 ? "metrics" : "metrics+tracing"));
}

void BM_ZipfDraw(benchmark::State& state) {
  stream::ZipfStream s(~0ULL, 1'000'000, 1.0, 17);
  for (auto _ : state) {
    benchmark::DoNotOptimize(s.next_rank());
  }
  state.SetItemsProcessed(state.iterations());
}

}  // namespace

BENCHMARK(BM_Hash)->DenseRange(0, 3);
BENCHMARK(BM_BottomSOffer)->Arg(10)->Arg(100)->Arg(1000);
BENCHMARK(BM_InfiniteSystemElement)->Arg(5)->Arg(100);
BENCHMARK(BM_TreapInsertErase)->Arg(64)->Arg(4096)->Arg(262144);
BENCHMARK(BM_TreapInsertEraseSeed)->Arg(64)->Arg(4096)->Arg(262144);
BENCHMARK(BM_StdMapInsertErase)->Arg(64)->Arg(4096)->Arg(262144);
BENCHMARK(BM_DominanceSetSlot)->Args({1000, 100})->Args({1000000, 10000});
BENCHMARK(BM_DominanceChurnHybrid)
    ->Arg(10)->Arg(64)->Arg(1024)->Arg(4096)->Arg(16384);
BENCHMARK(BM_DominanceChurnFlat)
    ->Arg(10)->Arg(64)->Arg(1024)->Arg(4096)->Arg(16384);
BENCHMARK(BM_DominanceChurnTreap)
    ->Arg(10)->Arg(64)->Arg(1024)->Arg(4096)->Arg(16384);
BENCHMARK(BM_DominanceChurnPR2)
    ->Arg(10)->Arg(64)->Arg(1024)->Arg(4096)->Arg(16384);
BENCHMARK(BM_HybridThresholdSweep)
    ->Args({48, 16})->Args({48, 32})->Args({48, 64})->Args({48, 128})
    ->Args({192, 64})->Args({192, 128})->Args({192, 256});
BENCHMARK(BM_ObsOverhead)->Arg(0)->Arg(1)->Arg(2);
BENCHMARK(BM_ZipfDraw);

BENCHMARK_MAIN();
