// Micro-benchmarks (google-benchmark) for the substrates on the
// per-element hot path: hash evaluation, bottom-s sample offers, site
// element processing, and treap updates. The treap benches compare the
// pooled index-based implementation (treap/treap.h) against the seed's
// unique_ptr implementation (reference_treap.h) and std::map.
#include <benchmark/benchmark.h>

#include <map>

#include "core/bottom_s_sample.h"
#include "core/system.h"
#include "hash/hash_function.h"
#include "reference_treap.h"
#include "stream/generators.h"
#include "stream/partitioner.h"
#include "treap/dominance_set.h"
#include "treap/treap.h"
#include "util/rng.h"

namespace {

using namespace dds;

void BM_Hash(benchmark::State& state) {
  const auto kind = static_cast<hash::HashKind>(state.range(0));
  hash::HashFunction h(kind, 42);
  std::uint64_t key = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(h(++key));
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(hash::to_string(kind));
}

void BM_BottomSOffer(benchmark::State& state) {
  const auto s = static_cast<std::size_t>(state.range(0));
  hash::HashFunction h(hash::HashKind::kMurmur2, 1);
  std::uint64_t e = 0;
  core::BottomSSample sample(s);
  for (auto _ : state) {
    ++e;
    benchmark::DoNotOptimize(sample.offer(e, h(e)));
  }
  state.SetItemsProcessed(state.iterations());
}

/// End-to-end per-element cost of the infinite-window deployment.
void BM_InfiniteSystemElement(benchmark::State& state) {
  const auto k = static_cast<std::uint32_t>(state.range(0));
  core::SystemConfig config{k, 10, hash::HashKind::kMurmur2, 5};
  core::InfiniteSystem system(config);
  util::Xoshiro256StarStar rng(9);

  // Pre-warm with 100k distinct elements so u is realistic.
  {
    stream::AllDistinctStream warm(100000, 3);
    stream::RandomPartitioner source(warm, k, 4);
    system.run(source);
  }
  class OneShot final : public sim::ArrivalSource {
   public:
    OneShot(sim::Slot slot, sim::NodeId site, std::uint64_t e)
        : a_{slot, site, e} {}
    std::optional<sim::Arrival> next() override {
      if (done_) return std::nullopt;
      done_ = true;
      return a_;
    }

   private:
    sim::Arrival a_;
    bool done_ = false;
  };
  sim::Slot t = 1 << 20;
  for (auto _ : state) {
    OneShot src(++t, static_cast<sim::NodeId>(rng.next_below(k)), rng.next());
    system.run(src);
  }
  state.SetItemsProcessed(state.iterations());
}

/// Steady-state insert/erase churn around a resident set of n keys.
/// Shared driver so pooled treap / seed treap / std::map run the exact
/// same key sequence.
template <typename SetLike>
void treap_churn(benchmark::State& state, SetLike& t) {
  const auto n = static_cast<std::uint64_t>(state.range(0));
  for (std::uint64_t i = 0; i < n; ++i) t.insert(i * 2, i);
  util::Xoshiro256StarStar rng(12);
  for (auto _ : state) {
    const std::uint64_t key = rng.next_below(2 * n) | 1;  // odd: new key
    t.insert(key, key);
    t.erase(key);
  }
  state.SetItemsProcessed(state.iterations() * 2);
}

void BM_TreapInsertErase(benchmark::State& state) {
  treap::Treap<std::uint64_t, std::uint64_t> t(11);
  treap_churn(state, t);
}

void BM_TreapInsertEraseSeed(benchmark::State& state) {
  bench::seed::ReferenceTreap<std::uint64_t, std::uint64_t> t(11);
  treap_churn(state, t);
}

void BM_StdMapInsertErase(benchmark::State& state) {
  // std::map with the treap driver's interface.
  struct MapAdapter {
    std::map<std::uint64_t, std::uint64_t> m;
    bool insert(std::uint64_t k, std::uint64_t v) {
      return m.emplace(k, v).second;
    }
    bool erase(std::uint64_t k) { return m.erase(k) > 0; }
  } t;
  treap_churn(state, t);
}

/// The dominance-set hot path end to end: expire + observe + min_hash
/// per slot, i.e. what every sliding-window site pays per arrival.
void BM_DominanceSetSlot(benchmark::State& state) {
  const auto domain = static_cast<std::uint64_t>(state.range(0));
  const std::int64_t window = state.range(1);
  treap::DominanceSet set(42);
  hash::HashFunction h(hash::HashKind::kMurmur2, 7);
  util::Xoshiro256StarStar rng(13);
  std::int64_t t = 0;
  // Warm up to steady state so the pool's freelist is the common path.
  for (; t < window; ++t) {
    set.expire(t);
    const std::uint64_t e = 1 + rng.next_below(domain);
    set.observe(e, h(e), t + window);
  }
  for (auto _ : state) {
    ++t;
    set.expire(t);
    const std::uint64_t e = 1 + rng.next_below(domain);
    set.observe(e, h(e), t + window);
    benchmark::DoNotOptimize(set.min_hash());
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_ZipfDraw(benchmark::State& state) {
  stream::ZipfStream s(~0ULL, 1'000'000, 1.0, 17);
  for (auto _ : state) {
    benchmark::DoNotOptimize(s.next_rank());
  }
  state.SetItemsProcessed(state.iterations());
}

}  // namespace

BENCHMARK(BM_Hash)->DenseRange(0, 3);
BENCHMARK(BM_BottomSOffer)->Arg(10)->Arg(100)->Arg(1000);
BENCHMARK(BM_InfiniteSystemElement)->Arg(5)->Arg(100);
BENCHMARK(BM_TreapInsertErase)->Arg(64)->Arg(4096)->Arg(262144);
BENCHMARK(BM_TreapInsertEraseSeed)->Arg(64)->Arg(4096)->Arg(262144);
BENCHMARK(BM_StdMapInsertErase)->Arg(64)->Arg(4096)->Arg(262144);
BENCHMARK(BM_DominanceSetSlot)->Args({1000, 100})->Args({1000000, 10000});
BENCHMARK(BM_ZipfDraw);

BENCHMARK_MAIN();
