// Ablation A1 — empirical message cost vs the analytic bounds.
//
// Runs the infinite-window algorithm on the Lemma-9 adversarial input
// (every round delivers one brand-new element to all k sites) and
// compares the measured message count against:
//   lower bound  (ks/2)(H_d - H_s + 1)   [Lemma 9 — for ANY algorithm]
//   upper bound  2ks + 2ks(H_d - H_s)    [Lemma 4 — for this algorithm]
// The paper's headline claim is message optimality within a factor of
// four; the table prints measured/LB so the claim can be read off.
#include "core/adversary.h"

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace dds;
  util::Cli cli;
  bench::register_common(cli);
  cli.flag("sites", "number of sites k", "10");
  cli.flag("sample-size", "sample size s", "10");
  cli.flag("rounds", "comma-separated d sweep (adversary rounds)",
           "1000,5000,20000,100000");
  if (!cli.parse(argc, argv)) return 1;
  const auto args = bench::read_common(cli);
  const auto k = static_cast<std::uint32_t>(cli.get_uint("sites"));
  const auto s = static_cast<std::size_t>(cli.get_uint("sample-size"));
  const auto rounds = cli.get_uint_list("rounds");
  bench::banner("Ablation A1: measured cost vs Lemma 4 / Lemma 9 bounds",
                args);

  util::Table table({"d", "measured (mean)", "ci95", "lower bound",
                     "upper bound", "measured/LB", "measured/UB"});
  for (std::size_t pi = 0; pi < rounds.size(); ++pi) {
    const std::uint64_t d = rounds[pi];
    util::RunningStat measured;
    for (std::uint64_t run = 0; run < args.runs; ++run) {
      const auto seed = bench::run_seed(args, pi, run);
      core::SystemConfig config{k, s, args.hash_kind, seed};
      core::InfiniteSystem system(config);
      core::AdversarialInput input(d, k, seed + 1);
      system.run(input);
      measured.add(static_cast<double>(system.bus().counters().total));
    }
    const double lb = util::infinite_window_lower_bound(k, s, d);
    const double ub = util::infinite_window_upper_bound(k, s, d);
    table.add_row({util::fmt(d), util::fmt(measured.mean(), 7),
                   util::fmt(measured.ci95_halfwidth(), 3), util::fmt(lb, 7),
                   util::fmt(ub, 7), util::fmt(measured.mean() / lb, 3),
                   util::fmt(measured.mean() / ub, 3)});
  }
  bench::emit(table,
              "A1: adversarial input, k=" + std::to_string(k) + ", s=" +
                  std::to_string(s),
              "abl1_bounds.csv", args);
  return 0;
}
