// Figure 5.3 — number of messages as a function of the number of sites
// k. Paper parameters: s = 10, k swept, both datasets.
//
// Expected shape (paper): under flooding messages grow linearly in k;
// under random distribution they are much smaller and almost flat in k.
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace dds;
  util::Cli cli;
  bench::register_common(cli);
  cli.flag("sample-size", "sample size s", "10");
  cli.flag("sites", "comma-separated k sweep", "5,10,20,30,40,50");
  if (!cli.parse(argc, argv)) return 1;
  const auto args = bench::read_common(cli);
  const auto s = static_cast<std::size_t>(cli.get_uint("sample-size"));
  const auto sweep = cli.get_uint_list("sites");
  bench::banner("Figure 5.3: messages vs number of sites", args);

  for (auto dataset : {stream::Dataset::kOc48, stream::Dataset::kEnron}) {
    sim::SeriesBundle bundle("k");
    for (auto distribution :
         {stream::Distribution::kFlooding, stream::Distribution::kRandom,
          stream::Distribution::kRoundRobin}) {
      auto& series = bundle.series(stream::to_string(distribution));
      for (std::size_t pi = 0; pi < sweep.size(); ++pi) {
        const auto k = static_cast<std::uint32_t>(sweep[pi]);
        for (std::uint64_t run = 0; run < args.runs; ++run) {
          const auto seed = bench::run_seed(
              args, 2000 * static_cast<std::uint64_t>(distribution) + pi, run);
          series.add(static_cast<double>(k),
                     static_cast<double>(bench::run_infinite_once(
                         k, s, distribution, dataset, args, seed)));
        }
      }
    }
    const auto& spec = stream::trace_spec(dataset);
    bench::emit(bundle.to_table(),
                "Figure 5.3 (" + spec.name + "): messages vs k, s=" +
                    std::to_string(s),
                "fig5_03_" + stream::to_string(dataset) + ".csv", args);
  }
  return 0;
}
