// Ablation A12 — sharded sliding-window sampling over realistic wires:
// the end-to-end scenario PR 5 unlocks (validity-aware query merge +
// ShardRouter-partitioned sliding coordinators + the ShardedEngine's
// lockstep mode on net::SimNetwork).
//
// The workload is Section 5.3's slotted construction (per-slot arrivals
// to uniformly random sites). For each (protocol, wire, shards) point
// the sharded deployment runs next to an unsharded reference on the
// SAME wire and stream; at every slot both are queried through the
// merge layer and compared. Reported per row:
//   * throughput (sharded run only, best of --runs) and messages —
//     message cost GROWS with shards (per-shard thresholds tighten only
//     from their own partition), the price of coordinator scale-out;
//   * agree% — slots where the merged answer equals the unsharded one.
//     The exact bottom-s protocol must print 100.0 on every wire and
//     shard count (its sharding exactness proof lives in
//     tests/sliding_shard_test.cpp; this column demonstrates it at
//     bench scale). The lazy s-copy protocol's per-shard transients
//     make it slightly lower;
//   * the RoutedSite ring-lookup cache hit rate and the per-shard
//     message balance.
//
// With --threads > 1 the sharded rows exercise lockstep waves on the
// lossy wire (traces stay bit-identical to serial; the determinism
// suite enforces that — here it just changes wall clock).
#include "bench_common.h"

#include <set>

#include "sim/sources.h"

namespace {

using dds::sim::SlotSource;

struct Wire {
  const char* name;
  dds::net::NetworkConfig config;
};

struct PointResult {
  double seconds = 0.0;
  std::uint64_t msgs = 0;
  double agree = 100.0;
  double route_hit = -1.0;
  double balance = 1.0;
  const char* engine = "?";
  const char* mode = "?";  ///< Engine::mode_reason of the sharded run
};

}  // namespace

int main(int argc, char** argv) {
  using namespace dds;
  util::Cli cli;
  bench::register_common(cli);
  cli.flag("sites", "number of sites k", "8");
  cli.flag("slots", "stream length in slots", "400");
  cli.flag("per-slot", "arrivals per slot", "6");
  cli.flag("window", "window length w in slots", "40");
  cli.flag("domain", "distinct-element domain", "500");
  cli.flag("sample-size", "window sample size s", "3");
  cli.flag("shard-list", "comma-separated coordinator-shard sweep", "1,2,4");
  if (!cli.parse(argc, argv)) return 1;
  const auto args = bench::read_common(cli);
  const auto k = static_cast<std::uint32_t>(cli.get_uint("sites"));
  const auto slots =
      static_cast<sim::Slot>(cli.get_uint("slots") * (args.full ? 10 : 1));
  const auto per_slot = static_cast<std::uint32_t>(cli.get_uint("per-slot"));
  const auto window = static_cast<sim::Slot>(cli.get_uint("window"));
  const std::uint64_t domain = cli.get_uint("domain");
  const auto s = static_cast<std::size_t>(cli.get_uint("sample-size"));
  const auto shards_sweep = cli.get_uint_list("shard-list");
  const std::uint64_t n = static_cast<std::uint64_t>(slots) * per_slot;
  bench::banner("Ablation A12: sharded sliding windows over the wire", args);
  std::cout << "k=" << k << ", slots=" << slots << ", per-slot=" << per_slot
            << ", w=" << window << ", domain=" << domain << ", s=" << s
            << ", threads=" << args.num_threads << "\n";

  // One fixed slotted stream: every grid point replays it exactly.
  std::vector<std::vector<std::pair<sim::NodeId, std::uint64_t>>> stream;
  stream.reserve(static_cast<std::size_t>(slots));
  {
    util::SplitMix64 gen(util::derive_seed(args.seed, 0xAB12));
    for (sim::Slot t = 0; t < slots; ++t) {
      auto& xs = stream.emplace_back();
      xs.reserve(per_slot);
      for (std::uint32_t a = 0; a < per_slot; ++a) {
        xs.emplace_back(static_cast<sim::NodeId>(gen.next() % k),
                        1 + gen.next() % domain);
      }
    }
  }

  Wire wires[3];
  wires[0].name = "ideal";
  wires[1].name = "lossy";
  wires[1].config.link.latency = 1.5;
  wires[1].config.link.jitter = 0.5;
  wires[1].config.link.drop_rate = 0.05;
  wires[1].config.link.retransmit = true;
  wires[2].name = "lossy+batch";
  wires[2].config = wires[1].config;
  wires[2].config.batch_interval = 3;
  wires[2].config.batch_max_msgs = 16;

  auto make_config = [&](const Wire& wire, std::uint32_t num_shards) {
    core::SlidingSystemConfig config;
    config.num_sites = k;
    config.window = window;
    config.sample_size = s;
    config.hash_kind = args.hash_kind;
    config.seed = args.seed;
    config.network = wire.config;
    config.num_shards = num_shards;
    config.num_threads = num_shards > 1 ? args.num_threads : 1;
    return config;
  };

  // Drives a sharded deployment next to its unsharded twin on the same
  // wire, comparing merged queries every slot.
  auto run_point = [&](auto make_system, const Wire& wire,
                       std::uint32_t num_shards) {
    PointResult result;
    for (std::uint64_t run = 0; run < args.runs; ++run) {
      auto reference = make_system(make_config(wire, 1));
      auto sharded = make_system(make_config(wire, num_shards));
      result.engine = sharded->runner().name();
      result.mode = sharded->runner().mode_reason();
      std::uint64_t agree = 0;
      double seconds = 0.0;
      for (sim::Slot t = 0; t < slots; ++t) {
        {
          SlotSource src(t, stream[static_cast<std::size_t>(t)]);
          reference->run(src);
        }
        {
          SlotSource src(t, stream[static_cast<std::size_t>(t)]);
          util::Timer timer;
          sharded->run(src);
          seconds += timer.elapsed_seconds();
        }
        if (reference->sample(t) == sharded->sample(t)) ++agree;
      }
      if (run == 0 || seconds < result.seconds) result.seconds = seconds;
      result.agree = 100.0 * static_cast<double>(agree) /
                     static_cast<double>(slots);
      result.msgs = sharded->bus().counters().total;
      if (sharded->route_cache_lookups() > 0) {
        result.route_hit = 100.0 *
                           static_cast<double>(sharded->route_cache_hits()) /
                           static_cast<double>(sharded->route_cache_lookups());
      }
      std::uint64_t mx = 0, mn = ~0ULL;
      for (std::uint32_t j = 0; j < sharded->bus().num_coordinators(); ++j) {
        const std::uint64_t total =
            sharded->bus().coordinator_counters(j).total;
        mx = std::max(mx, total);
        mn = std::min(mn, total);
      }
      result.balance =
          mn == 0 ? 0.0 : static_cast<double>(mx) / static_cast<double>(mn);
    }
    return result;
  };

  struct Protocol {
    const char* name;
    const char* csv;
    bool exact;
  };
  const Protocol protocols[] = {
      {"lazy s-copy (Algorithms 3&4 x s)", "abl12_sliding_sharding_lazy.csv",
       false},
      {"exact bottom-s (full-sync)", "abl12_sliding_sharding_bottoms.csv",
       true},
  };

  for (const Protocol& protocol : protocols) {
    util::Table table({"wire", "shards", "engine", "Marr/s", "msgs",
                       "msgs/arrival", "agree%", "route hit%",
                       "shard max/min"});
    std::set<std::string> modes;  // make_engine decisions seen this sweep
    for (const Wire& wire : wires) {
      for (const std::uint64_t num_shards : shards_sweep) {
        PointResult r;
        if (protocol.exact) {
          r = run_point(
              [](const core::SlidingSystemConfig& config) {
                return std::make_unique<baseline::BottomSSlidingSystem>(
                    config);
              },
              wire, static_cast<std::uint32_t>(num_shards));
        } else {
          r = run_point(
              [](const core::SlidingSystemConfig& config) {
                return std::make_unique<core::SlidingSystem>(config);
              },
              wire, static_cast<std::uint32_t>(num_shards));
        }
        modes.insert(r.mode);
        table.add_row(
            {wire.name, std::to_string(num_shards), r.engine,
             util::fmt(static_cast<double>(n) / r.seconds / 1e6, 3),
             std::to_string(r.msgs),
             util::fmt(static_cast<double>(r.msgs) / static_cast<double>(n),
                       4),
             util::fmt_fixed(r.agree, 1),
             r.route_hit < 0.0 ? "-" : util::fmt_fixed(r.route_hit, 1),
             util::fmt(r.balance, 3)});
      }
    }
    bench::emit(table,
                std::string("A12: ") + protocol.name + ", k=" +
                    std::to_string(k) + ", w=" + std::to_string(window) +
                    ", s=" + std::to_string(s),
                protocol.csv, args);
    // Why every row landed on its engine (Engine::mode_reason) — makes
    // a silent serial fallback visible in the bench log.
    for (const std::string& mode : modes) {
      std::cout << "engine mode: " << mode << "\n";
    }
  }
  return 0;
}
