// The PR 2 dominance set, preserved verbatim for the substrate
// ablation: the pooled treap of treap/treap.h with a SEPARATE
// std::unordered_map element->key side-index (one extra hash lookup and
// one bucket-node allocation per refresh — exactly what the SlotIndex
// fold in the current DominanceSet eliminates) and no flat-ring mode.
// Reference only; semantics identical to treap::DominanceSet.
#pragma once

#include <cstdint>
#include <limits>
#include <optional>
#include <unordered_map>
#include <vector>

#include "treap/dominance_set.h"
#include "treap/treap.h"

namespace dds::bench::pr2 {

class MapIndexDominanceSet {
 public:
  explicit MapIndexDominanceSet(std::uint64_t seed = 0x646f6dULL)
      : tree_(seed) {}

  void observe(std::uint64_t element, std::uint64_t hash,
               sim::Slot expiry) {
    auto it = index_.find(element);
    if (it != index_.end()) {
      if (it->second.expiry >= expiry) return;
      tree_.erase(it->second);
      index_.erase(it);
      invalidate_front();
    }
    prune_dominated_by(hash, expiry);
    const Key key{expiry, hash, element};
    tree_.insert(key, 0);
    index_.emplace(element, key);
    invalidate_front();
  }

  void insert(std::uint64_t element, std::uint64_t hash, sim::Slot expiry) {
    auto it = index_.find(element);
    if (it != index_.end()) {
      if (it->second.expiry >= expiry) return;
      tree_.erase(it->second);
      index_.erase(it);
      invalidate_front();
    }
    if (is_dominated(hash, expiry)) return;
    prune_dominated_by(hash, expiry);
    const Key key{expiry, hash, element};
    tree_.insert(key, 0);
    index_.emplace(element, key);
    invalidate_front();
  }

  void expire(sim::Slot now) {
    tree_.remove_prefix_while(
        [now](const Key& k, char) { return k.expiry <= now; },
        [this](const Key& k, char) {
          index_.erase(k.element);
          invalidate_front();
        });
  }

  std::optional<treap::Candidate> min_hash() const {
    if (!front_fresh_) {
      front_cache_.reset();
      if (const auto f = tree_.front()) {
        front_cache_ = treap::Candidate{f->first.element, f->first.hash,
                                        f->first.expiry};
      }
      front_fresh_ = true;
    }
    return front_cache_;
  }

  std::size_t size() const noexcept { return tree_.size(); }

 private:
  struct Key {
    sim::Slot expiry;
    std::uint64_t hash;
    std::uint64_t element;

    friend bool operator<(const Key& a, const Key& b) noexcept {
      if (a.expiry != b.expiry) return a.expiry < b.expiry;
      if (a.hash != b.hash) return a.hash < b.hash;
      return a.element < b.element;
    }
  };

  void prune_dominated_by(std::uint64_t hash, sim::Slot expiry) {
    tree_.remove_suffix_of_lower_while(
        Key{expiry, 0, 0},
        [hash](const Key& k, char) { return k.hash > hash; },
        [this](const Key& k, char) {
          index_.erase(k.element);
          invalidate_front();
        });
  }

  bool is_dominated(std::uint64_t hash, sim::Slot expiry) const {
    if (expiry == std::numeric_limits<sim::Slot>::max()) return false;
    auto lb = tree_.lower_bound_key(Key{expiry + 1, 0, 0});
    return lb.has_value() && lb->hash < hash;
  }

  void invalidate_front() noexcept { front_fresh_ = false; }

  treap::Treap<Key, char> tree_;
  std::unordered_map<std::uint64_t, Key> index_;
  mutable std::optional<treap::Candidate> front_cache_;
  mutable bool front_fresh_ = false;
};

}  // namespace dds::bench::pr2
