// Ablation A4 (google-benchmark) — treap-backed dominance set vs the
// naive O(n^2) reference, across workload sizes. Justifies the paper's
// choice of a treap (Seidel-Aragon) for T_i: the structure stays tiny in
// expectation (H_M tuples) but individual operations must stay cheap
// even through bursts.
#include <benchmark/benchmark.h>

#include "hash/hash_function.h"
#include "treap/dominance_set.h"
#include "treap/naive_dominance_set.h"
#include "util/rng.h"

namespace {

using dds::hash::HashFunction;
using dds::hash::HashKind;

/// Drives `set` through `slots` slots of a sliding-window workload.
template <typename Set>
void drive(Set& set, std::int64_t slots, std::uint64_t domain,
           std::int64_t window, std::uint64_t seed) {
  dds::util::Xoshiro256StarStar rng(seed);
  HashFunction h(HashKind::kMurmur2, seed);
  for (std::int64_t t = 0; t < slots; ++t) {
    set.expire(t);
    for (int a = 0; a < 3; ++a) {
      const std::uint64_t e = 1 + rng.next_below(domain);
      set.observe(e, h(e), t + window);
    }
    benchmark::DoNotOptimize(set.min_hash());
  }
}

void BM_DominanceSetTreap(benchmark::State& state) {
  const auto domain = static_cast<std::uint64_t>(state.range(0));
  const auto window = state.range(1);
  for (auto _ : state) {
    dds::treap::DominanceSet set(42);
    drive(set, 2000, domain, window, 7);
  }
  state.SetItemsProcessed(state.iterations() * 2000 * 3);
}

void BM_DominanceSetNaive(benchmark::State& state) {
  const auto domain = static_cast<std::uint64_t>(state.range(0));
  const auto window = state.range(1);
  for (auto _ : state) {
    dds::treap::NaiveDominanceSet set;
    drive(set, 2000, domain, window, 7);
  }
  state.SetItemsProcessed(state.iterations() * 2000 * 3);
}

}  // namespace

BENCHMARK(BM_DominanceSetTreap)
    ->Args({100, 50})
    ->Args({10000, 500})
    ->Args({1000000, 5000});
BENCHMARK(BM_DominanceSetNaive)
    ->Args({100, 50})
    ->Args({10000, 500})
    ->Args({1000000, 5000});

BENCHMARK_MAIN();
