// Ablation A4 (google-benchmark) — the dominance-set substrates on the
// realistic sliding-window workload (|T| ~ H_M, i.e. ~7-16 tuples),
// across workload sizes:
//   * Hybrid    — treap::DominanceSet, default thresholds (flat ring at
//                 this size); the shipped configuration.
//   * Treap     — the same class pinned to treap mode (pooled treap +
//                 SlotIndex fold), isolating the ring's contribution.
//   * FlatRing  — pinned to the flat ring, isolating the treap's.
//   * PR2       — the previous PR's substrate (pooled treap + separate
//                 unordered_map element index), the trajectory baseline.
//   * Naive     — O(n)-per-op flat reference.
//   * StdMap    — the obvious std::map-backed alternative.
// Justifies both the paper's treap (bursts stay O(log n)) and the
// hybrid's flat ring (the steady state is tiny, where flat wins).
#include <benchmark/benchmark.h>

#include <cstdint>
#include <map>
#include <optional>
#include <unordered_map>

#include "hash/hash_function.h"
#include "reference_dominance.h"
#include "treap/dominance_set.h"
#include "treap/naive_dominance_set.h"
#include "util/rng.h"

namespace {

using dds::hash::HashFunction;
using dds::hash::HashKind;

/// DominanceSet semantics on top of std::map — the obvious std-library
/// substrate one would reach for instead of a treap. Bulk prunes become
/// iterator-range erases (one rebalance + node free per victim).
class MapDominanceSet {
 public:
  void observe(std::uint64_t element, std::uint64_t hash,
               dds::sim::Slot expiry) {
    auto it = index_.find(element);
    if (it != index_.end()) {
      if (it->second.expiry >= expiry) return;
      tree_.erase(it->second);
      index_.erase(it);
    }
    prune_dominated_by(hash, expiry);
    const Key key{expiry, hash, element};
    tree_.emplace(key, 0);
    index_.emplace(element, key);
  }

  void expire(dds::sim::Slot now) {
    auto it = tree_.begin();
    while (it != tree_.end() && it->first.expiry <= now) {
      index_.erase(it->first.element);
      it = tree_.erase(it);
    }
  }

  std::optional<dds::treap::Candidate> min_hash() const {
    if (tree_.empty()) return std::nullopt;
    const Key& k = tree_.begin()->first;
    return dds::treap::Candidate{k.element, k.hash, k.expiry};
  }

  std::size_t size() const noexcept { return tree_.size(); }

 private:
  struct Key {
    dds::sim::Slot expiry;
    std::uint64_t hash;
    std::uint64_t element;
    friend bool operator<(const Key& a, const Key& b) noexcept {
      if (a.expiry != b.expiry) return a.expiry < b.expiry;
      if (a.hash != b.hash) return a.hash < b.hash;
      return a.element < b.element;
    }
  };

  void prune_dominated_by(std::uint64_t hash, dds::sim::Slot expiry) {
    // Victims (expiry' < expiry, hash' > hash) form a suffix of the
    // keys below (expiry, 0, 0) by the staircase invariant.
    auto end = tree_.lower_bound(Key{expiry, 0, 0});
    auto begin = end;
    while (begin != tree_.begin() && std::prev(begin)->first.hash > hash) {
      --begin;
    }
    for (auto it = begin; it != end; ++it) {
      index_.erase(it->first.element);
    }
    tree_.erase(begin, end);
  }

  std::map<Key, char> tree_;
  std::unordered_map<std::uint64_t, Key> index_;
};

/// Drives `set` through `slots` slots of a sliding-window workload.
template <typename Set>
void drive(Set& set, std::int64_t slots, std::uint64_t domain,
           std::int64_t window, std::uint64_t seed) {
  dds::util::Xoshiro256StarStar rng(seed);
  HashFunction h(HashKind::kMurmur2, seed);
  for (std::int64_t t = 0; t < slots; ++t) {
    set.expire(t);
    for (int a = 0; a < 3; ++a) {
      const std::uint64_t e = 1 + rng.next_below(domain);
      set.observe(e, h(e), t + window);
    }
    benchmark::DoNotOptimize(set.min_hash());
  }
}

void BM_DominanceSetHybrid(benchmark::State& state) {
  const auto domain = static_cast<std::uint64_t>(state.range(0));
  const auto window = state.range(1);
  for (auto _ : state) {
    dds::treap::DominanceSet set(42);
    drive(set, 2000, domain, window, 7);
  }
  state.SetItemsProcessed(state.iterations() * 2000 * 3);
}

void BM_DominanceSetTreap(benchmark::State& state) {
  const auto domain = static_cast<std::uint64_t>(state.range(0));
  const auto window = state.range(1);
  for (auto _ : state) {
    dds::treap::DominanceSet set(42, dds::treap::HybridConfig{0, 0});
    drive(set, 2000, domain, window, 7);
  }
  state.SetItemsProcessed(state.iterations() * 2000 * 3);
}

void BM_DominanceSetFlatRing(benchmark::State& state) {
  const auto domain = static_cast<std::uint64_t>(state.range(0));
  const auto window = state.range(1);
  for (auto _ : state) {
    dds::treap::DominanceSet set(42,
                                 dds::treap::HybridConfig{0xFFFFFFFFu, 0});
    drive(set, 2000, domain, window, 7);
  }
  state.SetItemsProcessed(state.iterations() * 2000 * 3);
}

void BM_DominanceSetPR2(benchmark::State& state) {
  const auto domain = static_cast<std::uint64_t>(state.range(0));
  const auto window = state.range(1);
  for (auto _ : state) {
    dds::bench::pr2::MapIndexDominanceSet set(42);
    drive(set, 2000, domain, window, 7);
  }
  state.SetItemsProcessed(state.iterations() * 2000 * 3);
}

void BM_DominanceSetNaive(benchmark::State& state) {
  const auto domain = static_cast<std::uint64_t>(state.range(0));
  const auto window = state.range(1);
  for (auto _ : state) {
    dds::treap::NaiveDominanceSet set;
    drive(set, 2000, domain, window, 7);
  }
  state.SetItemsProcessed(state.iterations() * 2000 * 3);
}

void BM_DominanceSetStdMap(benchmark::State& state) {
  const auto domain = static_cast<std::uint64_t>(state.range(0));
  const auto window = state.range(1);
  for (auto _ : state) {
    MapDominanceSet set;
    drive(set, 2000, domain, window, 7);
  }
  state.SetItemsProcessed(state.iterations() * 2000 * 3);
}

}  // namespace

BENCHMARK(BM_DominanceSetHybrid)
    ->Args({100, 50})
    ->Args({10000, 500})
    ->Args({1000000, 5000});
BENCHMARK(BM_DominanceSetTreap)
    ->Args({100, 50})
    ->Args({10000, 500})
    ->Args({1000000, 5000});
BENCHMARK(BM_DominanceSetFlatRing)
    ->Args({100, 50})
    ->Args({10000, 500})
    ->Args({1000000, 5000});
BENCHMARK(BM_DominanceSetPR2)
    ->Args({100, 50})
    ->Args({10000, 500})
    ->Args({1000000, 5000});
BENCHMARK(BM_DominanceSetNaive)
    ->Args({100, 50})
    ->Args({10000, 500})
    ->Args({1000000, 5000});
BENCHMARK(BM_DominanceSetStdMap)
    ->Args({100, 50})
    ->Args({10000, 500})
    ->Args({1000000, 5000});

BENCHMARK_MAIN();
