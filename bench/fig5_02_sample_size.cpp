// Figure 5.2 — number of messages as a function of the sample size s.
// Paper parameters: k = 5 sites, s swept, all three distribution
// methods, both datasets.
//
// Expected shape (paper): message count grows almost linearly in s, with
// a much steeper slope under flooding than under random / round-robin.
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace dds;
  util::Cli cli;
  bench::register_common(cli);
  cli.flag("sites", "number of sites k", "5");
  cli.flag("sample-sizes", "comma-separated s sweep", "10,20,40,60,80,100");
  if (!cli.parse(argc, argv)) return 1;
  const auto args = bench::read_common(cli);
  const auto sites = static_cast<std::uint32_t>(cli.get_uint("sites"));
  const auto sweep = cli.get_uint_list("sample-sizes");
  bench::banner("Figure 5.2: messages vs sample size", args);

  for (auto dataset : {stream::Dataset::kOc48, stream::Dataset::kEnron}) {
    sim::SeriesBundle bundle("s");
    for (auto distribution :
         {stream::Distribution::kFlooding, stream::Distribution::kRandom,
          stream::Distribution::kRoundRobin}) {
      auto& series = bundle.series(stream::to_string(distribution));
      for (std::size_t pi = 0; pi < sweep.size(); ++pi) {
        for (std::uint64_t run = 0; run < args.runs; ++run) {
          const auto seed = bench::run_seed(
              args, 1000 * static_cast<std::uint64_t>(distribution) + pi, run);
          series.add(static_cast<double>(sweep[pi]),
                     static_cast<double>(bench::run_infinite_once(
                         sites, sweep[pi], distribution, dataset, args, seed)));
        }
      }
    }
    const auto& spec = stream::trace_spec(dataset);
    bench::emit(bundle.to_table(),
                "Figure 5.2 (" + spec.name + "): messages vs s, k=" +
                    std::to_string(sites),
                "fig5_02_" + stream::to_string(dataset) + ".csv", args);
  }
  return 0;
}
