// Ablation A11 — the pluggable execution engine: throughput and message
// cost vs coordinator shards x site worker threads.
//
// The workload is the infinite-window protocol (and its with-replacement
// sibling, whose s parallel hash evaluations per arrival are the
// compute-heavy case that threads accelerate) on a k-site uniform
// stream. For every (threads, shards) point we report:
//   * arrival throughput (M arrivals/s, best of --runs) and its speedup
//     over the serial single-coordinator row;
//   * total protocol messages and messages/arrival — the paper's cost
//     metric, which GROWS with shards (each shard's threshold tightens
//     only from its own partition: expect roughly the Theta(ks ln(d/s))
//     curve per shard) — the price of coordinator scale-out;
//   * the max/min per-shard message ratio (ShardRouter balance).
//
// The ShardedEngine is bit-identical to the serial engine (the
// engine_test determinism suite holds that), so the speedup column is a
// pure wall-clock statement. Thread speedups need physical cores: on a
// single-core container every threads>1 row just measures handoff
// overhead.
#include "bench_common.h"

#include <set>

namespace {

class VectorSource final : public dds::sim::ArrivalSource {
 public:
  explicit VectorSource(const std::vector<dds::sim::Arrival>& arrivals)
      : arrivals_(arrivals) {}
  std::optional<dds::sim::Arrival> next() override {
    if (pos_ >= arrivals_.size()) return std::nullopt;
    return arrivals_[pos_++];
  }

 private:
  const std::vector<dds::sim::Arrival>& arrivals_;
  std::size_t pos_ = 0;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace dds;
  util::Cli cli;
  bench::register_common(cli);
  cli.flag("sites", "number of sites k", "32");
  cli.flag("n", "arrivals per run", "300000");
  cli.flag("domain", "distinct-element domain", "50000");
  cli.flag("sample-size", "sample size s", "16");
  cli.flag("thread-list", "comma-separated worker-thread sweep", "1,2,4");
  cli.flag("shard-list", "comma-separated coordinator-shard sweep", "1,2,4");
  cli.boolean("wakeup-ablation",
              "also measure threads>1 rows with per-message replay wakeups "
              "(before/after the wakeup-coalescing optimization)");
  if (!cli.parse(argc, argv)) return 1;
  const auto args = bench::read_common(cli);
  const auto k = static_cast<std::uint32_t>(cli.get_uint("sites"));
  const std::uint64_t n = cli.get_uint("n") * (args.full ? 10 : 1);
  const std::uint64_t domain = cli.get_uint("domain");
  const auto s = static_cast<std::size_t>(cli.get_uint("sample-size"));
  const auto threads_sweep = cli.get_uint_list("thread-list");
  const auto shards_sweep = cli.get_uint_list("shard-list");
  const bool wakeup_ablation = cli.get_bool("wakeup-ablation");
  bench::banner("Ablation A11: sharded coordinator x threaded engine", args);
  std::cout << "k=" << k << ", n=" << n << ", domain=" << domain
            << ", s=" << s << "\n";

  // One fixed arrival sequence per protocol: every grid point replays
  // the identical stream, so message deltas are purely the topology's.
  std::vector<sim::Arrival> arrivals;
  arrivals.reserve(n);
  {
    util::SplitMix64 gen(util::derive_seed(args.seed, 0xAB11));
    for (std::uint64_t i = 0; i < n; ++i) {
      arrivals.push_back(sim::Arrival{static_cast<sim::Slot>(i),
                                      static_cast<sim::NodeId>(gen.next() % k),
                                      1 + gen.next() % domain});
    }
  }

  struct Protocol {
    const char* name;
    const char* csv;
    bool with_replacement;
  };
  const Protocol protocols[] = {
      {"infinite (bottom-s)", "abl11_sharding_infinite.csv", false},
      {"with-replacement (s copies)", "abl11_sharding_withrepl.csv", true},
  };

  for (const Protocol& protocol : protocols) {
    util::Table table({"threads", "shards", "engine", "wakeups", "Marr/s",
                       "speedup", "msgs", "msgs/arrival", "shard max/min",
                       "route hit%"});
    std::set<std::string> modes;  // make_engine decisions seen this sweep
    double serial_rate = 0.0;
    for (const std::uint64_t shards : shards_sweep) {
      for (const std::uint64_t threads : threads_sweep) {
        // The wakeup ablation only touches the run-ahead handshake, so
        // it adds a second row for threads > 1 points only.
        std::vector<bool> wakeup_modes{true};
        if (wakeup_ablation && threads > 1) wakeup_modes.push_back(false);
        for (const bool coalesce : wakeup_modes) {
          core::SystemConfig config{k, s, args.hash_kind, args.seed};
          config.num_shards = static_cast<std::uint32_t>(shards);
          config.num_threads = static_cast<std::uint32_t>(threads);
          config.coalesce_wakeups = coalesce;
          // The message-cost columns read the metrics registry, not the
          // raw component counters: the bench doubles as a smoke test
          // that the pull-based bindings agree with the ground truth
          // (registration is bind-time-only, so the timed loop is
          // unchanged — BM_ObsOverhead in micro_substrates pins that).
          config.observability.metrics = true;
          double best_seconds = 0.0;
          std::uint64_t msgs = 0;
          double balance = 1.0;
          double route_hit = -1.0;
          const char* engine_name = "?";
          for (std::uint64_t run = 0; run < args.runs; ++run) {
            auto run_one = [&](auto& system) {
              engine_name = system.runner().name();
              modes.insert(system.runner().mode_reason());
              VectorSource source(arrivals);
              util::Timer timer;
              system.run(source);
              const double seconds = timer.elapsed_seconds();
              if (run == 0 || seconds < best_seconds) best_seconds = seconds;
              const obs::MetricsSnapshot snap =
                  system.observability().snapshot();
              msgs = snap.counter_or("net.wire.msgs");
              std::uint64_t mx = 0, mn = ~0ULL;
              for (std::uint32_t j = 0; j < system.bus().num_coordinators();
                   ++j) {
                const std::uint64_t t = snap.counter_or(
                    "net.shard" + std::to_string(j) + ".msgs");
                mx = std::max(mx, t);
                mn = std::min(mn, t);
              }
              balance = mn == 0 ? 0.0
                                : static_cast<double>(mx) /
                                      static_cast<double>(mn);
              const std::uint64_t lookups =
                  snap.counter_or("deployment.route_cache.lookups");
              if (lookups > 0) {
                route_hit =
                    100.0 *
                    static_cast<double>(
                        snap.counter_or("deployment.route_cache.hits")) /
                    static_cast<double>(lookups);
              }
            };
            if (protocol.with_replacement) {
              core::WithReplacementSystem system(config);
              run_one(system);
            } else {
              core::InfiniteSystem system(config, /*eager_threshold=*/false,
                                          args.suppress_duplicates);
              run_one(system);
            }
          }
          const double rate = static_cast<double>(n) / best_seconds / 1e6;
          if (shards == shards_sweep.front() &&
              threads == threads_sweep.front() && coalesce) {
            serial_rate = rate;
          }
          const char* wakeups =
              threads == 1 ? "-" : (coalesce ? "coalesced" : "per-msg");
          table.add_row({std::to_string(threads), std::to_string(shards),
                         engine_name, wakeups, util::fmt(rate, 3),
                         util::fmt(rate / serial_rate, 3),
                         std::to_string(msgs),
                         util::fmt(static_cast<double>(msgs) /
                                       static_cast<double>(n),
                                   4),
                         util::fmt(balance, 3),
                         route_hit < 0.0 ? "-" : util::fmt_fixed(route_hit, 1)});
        }
      }
    }
    bench::emit(table,
                std::string("A11: ") + protocol.name + ", k=" +
                    std::to_string(k) + ", n=" + std::to_string(n),
                protocol.csv, args);
    // Why every row landed on its engine (Engine::mode_reason) — makes
    // a silent serial fallback visible in the bench log.
    for (const std::string& mode : modes) {
      std::cout << "engine mode: " << mode << "\n";
    }
  }
  return 0;
}
