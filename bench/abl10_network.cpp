// Ablation A10 — protocol cost and sample correctness vs network
// conditions.
//
// The paper's cost model assumes a zero-delay lossless wire; this
// ablation measures what its protocols actually pay — and whether their
// samples stay correct — when the wire has latency, loss, or batching.
//
//  * Latency sweep: threshold replies arrive late, so sites keep
//    reporting against stale thresholds; message cost rises with RTT
//    while the sample stays exact (reports are merely delayed).
//  * Drop sweep: with retransmission the sample stays exact and the
//    retries show up as wire overhead; without it, lost reports
//    permanently degrade sample correctness.
//  * Batching sweep: coalescing site->coordinator reports trades
//    staleness for wire cost; wire messages and bytes fall while the
//    final sample is unchanged (every report still arrives).
//
// Sample correctness for the infinite protocol is exact-overlap with
// the true bottom-s (by the system's own hash) of the distinct elements
// of the stream. For the sliding protocol it is element recall against
// a zero-delay run with identical seeds.
#include "bench_common.h"

#include <algorithm>
#include <unordered_set>

#include "net/sim_network.h"

namespace {

using namespace dds;

struct WireCost {
  double wire_msgs = 0;
  double wire_bytes = 0;
  double logical_msgs = 0;
  double drops = 0;
};

WireCost wire_cost(net::Transport& transport) {
  WireCost out;
  out.wire_msgs = static_cast<double>(transport.counters().total);
  out.wire_bytes = static_cast<double>(transport.counters().bytes);
  out.logical_msgs = out.wire_msgs;
  if (const auto* sim = dynamic_cast<const net::SimNetwork*>(&transport)) {
    out.logical_msgs = static_cast<double>(sim->logical_counters().total);
    out.drops = static_cast<double>(sim->stats().drops);
  }
  return out;
}

/// True bottom-s of the distinct elements of a (re-createable) stream,
/// under the deployed hash function.
std::vector<stream::Element> ground_truth_bottom_s(
    const hash::HashFunction& h, std::uint64_t n, std::uint64_t domain,
    double alpha, std::uint64_t stream_seed, std::size_t s) {
  stream::ZipfStream input(n, domain, alpha, stream_seed);
  std::unordered_set<stream::Element> distinct;
  while (auto e = input.next()) distinct.insert(*e);
  std::vector<stream::Element> all(distinct.begin(), distinct.end());
  std::sort(all.begin(), all.end(), [&h](stream::Element a, stream::Element b) {
    return h(a) < h(b);
  });
  if (all.size() > s) all.resize(s);
  return all;
}

double overlap_fraction(std::vector<stream::Element> got,
                        std::vector<stream::Element> want) {
  if (want.empty()) return 1.0;
  std::sort(got.begin(), got.end());
  std::sort(want.begin(), want.end());
  std::vector<stream::Element> both;
  std::set_intersection(got.begin(), got.end(), want.begin(), want.end(),
                        std::back_inserter(both));
  return static_cast<double>(both.size()) / static_cast<double>(want.size());
}

struct InfiniteResult {
  WireCost cost;
  double overlap = 0;
};

InfiniteResult run_infinite(std::uint32_t sites, std::size_t s,
                            std::uint64_t n, std::uint64_t domain,
                            const bench::CommonArgs& args, std::uint64_t seed,
                            const net::NetworkConfig& network) {
  core::SystemConfig config{sites, s, args.hash_kind, seed, network};
  core::InfiniteSystem system(config, /*eager_threshold=*/false,
                              args.suppress_duplicates);
  constexpr double kAlpha = 1.05;
  stream::ZipfStream input(n, domain, kAlpha, seed + 1);
  auto source = stream::make_partitioner(stream::Distribution::kRandom, input,
                                         sites, seed + 2, 1.0);
  system.run(*source);
  InfiniteResult out;
  out.cost = wire_cost(system.bus());
  out.overlap = overlap_fraction(
      system.coordinator().sample().elements(),
      ground_truth_bottom_s(system.hash_fn(), n, domain, kAlpha, seed + 1, s));
  return out;
}

std::vector<stream::Element> run_sliding_sample(
    std::uint32_t sites, sim::Slot window, std::uint64_t slots,
    std::uint32_t per_slot, const bench::CommonArgs& args, std::uint64_t seed,
    const net::NetworkConfig& network, WireCost* cost = nullptr) {
  core::SlidingSystemConfig config;
  config.num_sites = sites;
  config.window = window;
  config.sample_size = 4;
  config.hash_kind = args.hash_kind;
  config.seed = seed;
  config.network = network;
  core::SlidingSystem system(config);
  stream::ZipfStream input(slots * per_slot, slots * per_slot / 2, 1.0,
                           seed + 1);
  stream::SlottedFeeder source(input, sites, per_slot, seed + 2);
  system.run(source);
  if (cost != nullptr) *cost = wire_cost(system.bus());
  return system.coordinator().sample(system.runner().current_slot());
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli;
  bench::register_common(cli);
  cli.flag("sites", "number of sites k", "8");
  cli.flag("sample-size", "sample size s", "32");
  cli.flag("n", "infinite-window stream length", "50000");
  cli.flag("domain", "element domain size", "5000");
  cli.flag("latencies", "comma-separated one-way latencies (slots)",
           "0,1,2,5,10");
  cli.flag("drops", "comma-separated drop percentages", "0,1,5,10,30");
  cli.flag("batches", "comma-separated batch flush intervals (slots)",
           "0,1,2,5,10");
  cli.flag("window", "sliding-window size (slots)", "100");
  cli.flag("slots", "sliding-window slots to simulate", "2000");
  if (!cli.parse(argc, argv)) return 1;
  const auto args = bench::read_common(cli);
  const auto k = static_cast<std::uint32_t>(cli.get_uint("sites"));
  const auto s = static_cast<std::size_t>(cli.get_uint("sample-size"));
  const auto n = cli.get_uint("n");
  const auto domain = cli.get_uint("domain");
  const auto latencies = cli.get_uint_list("latencies");
  const auto drops = cli.get_uint_list("drops");
  const auto batches = cli.get_uint_list("batches");
  const auto window = static_cast<sim::Slot>(cli.get_uint("window"));
  const auto slots = cli.get_uint("slots");
  bench::banner("Ablation A10: cost & correctness vs network conditions",
                args);

  // ---------------------------------------------------- latency sweep --
  {
    util::Table table({"latency (slots)", "messages", "ci95", "bytes",
                       "sample overlap"});
    for (std::size_t pi = 0; pi < latencies.size(); ++pi) {
      util::RunningStat msgs, bytes, overlap;
      for (std::uint64_t run = 0; run < args.runs; ++run) {
        net::NetworkConfig network;
        network.kind = net::TransportKind::kSimNetwork;
        network.link.latency = static_cast<double>(latencies[pi]);
        network.link.jitter = network.link.latency / 2.0;
        network.seed = bench::run_seed(args, 100 + pi, run);
        const auto r = run_infinite(k, s, n, domain, args,
                                    bench::run_seed(args, pi, run), network);
        msgs.add(r.cost.wire_msgs);
        bytes.add(r.cost.wire_bytes);
        overlap.add(r.overlap);
      }
      table.add_row({util::fmt(latencies[pi]), util::fmt(msgs.mean(), 6),
                     util::fmt(msgs.ci95_halfwidth(), 3),
                     util::fmt(bytes.mean(), 7), util::fmt(overlap.mean(), 4)});
    }
    bench::emit(table, "A10a: infinite protocol vs one-way latency (jitter "
                "= latency/2)",
                "abl10_network_latency.csv", args);
  }

  // ------------------------------------------------------- drop sweep --
  {
    util::Table table({"drop %", "msgs (rtx)", "overlap (rtx)",
                       "msgs (lossy)", "overlap (lossy)"});
    for (std::size_t pi = 0; pi < drops.size(); ++pi) {
      util::RunningStat rtx_msgs, rtx_overlap, lossy_msgs, lossy_overlap;
      for (std::uint64_t run = 0; run < args.runs; ++run) {
        const auto seed = bench::run_seed(args, 200 + pi, run);
        net::NetworkConfig network;
        network.kind = net::TransportKind::kSimNetwork;
        network.link.latency = 1.0;
        network.link.drop_rate = static_cast<double>(drops[pi]) / 100.0;
        network.seed = seed + 7;

        network.link.retransmit = true;
        auto r = run_infinite(k, s, n, domain, args, seed, network);
        rtx_msgs.add(r.cost.wire_msgs);
        rtx_overlap.add(r.overlap);

        network.link.retransmit = false;
        r = run_infinite(k, s, n, domain, args, seed, network);
        lossy_msgs.add(r.cost.wire_msgs);
        lossy_overlap.add(r.overlap);
      }
      table.add_row({util::fmt(drops[pi]), util::fmt(rtx_msgs.mean(), 6),
                     util::fmt(rtx_overlap.mean(), 4),
                     util::fmt(lossy_msgs.mean(), 6),
                     util::fmt(lossy_overlap.mean(), 4)});
    }
    bench::emit(table,
                "A10b: infinite protocol vs drop rate, with and without "
                "retransmission (latency 1)",
                "abl10_network_drops.csv", args);
  }

  // -------------------------------------------------- batching sweep --
  {
    util::Table table({"flush interval", "logical msgs", "wire msgs",
                       "wire bytes", "byte saving %", "overlap"});
    double base_bytes = 0;
    for (std::size_t pi = 0; pi < batches.size(); ++pi) {
      util::RunningStat logical, wire, bytes, overlap;
      for (std::uint64_t run = 0; run < args.runs; ++run) {
        net::NetworkConfig network;
        network.kind = net::TransportKind::kSimNetwork;
        network.batch_interval = static_cast<sim::Slot>(batches[pi]);
        network.seed = bench::run_seed(args, 300 + pi, run);
        const auto r = run_infinite(k, s, n, domain, args,
                                    bench::run_seed(args, pi, run), network);
        logical.add(r.cost.logical_msgs);
        wire.add(r.cost.wire_msgs);
        bytes.add(r.cost.wire_bytes);
        overlap.add(r.overlap);
      }
      if (pi == 0) base_bytes = bytes.mean();
      const double saving =
          base_bytes > 0 ? 100.0 * (1.0 - bytes.mean() / base_bytes) : 0.0;
      table.add_row({util::fmt(batches[pi]), util::fmt(logical.mean(), 6),
                     util::fmt(wire.mean(), 6), util::fmt(bytes.mean(), 7),
                     util::fmt(saving, 3), util::fmt(overlap.mean(), 4)});
    }
    bench::emit(table,
                "A10c: infinite protocol vs site->coordinator batch "
                "interval (zero latency)",
                "abl10_network_batching.csv", args);
  }

  // ----------------------------------------------------- sliding sweep --
  {
    util::Table table({"latency", "drop %", "wire msgs", "recall vs ideal"});
    const std::vector<std::pair<std::uint64_t, std::uint64_t>> grid = {
        {0, 0}, {1, 0}, {5, 0}, {1, 10}, {5, 10}, {5, 30}, {5, 60}};
    for (std::size_t pi = 0; pi < grid.size(); ++pi) {
      util::RunningStat msgs, recall;
      for (std::uint64_t run = 0; run < args.runs; ++run) {
        const auto seed = bench::run_seed(args, 400 + pi, run);
        net::NetworkConfig ideal;  // zero-delay reference, same seeds
        const auto want = run_sliding_sample(k, window, slots, 5, args, seed,
                                             ideal);
        net::NetworkConfig network;
        network.kind = net::TransportKind::kSimNetwork;
        network.link.latency = static_cast<double>(grid[pi].first);
        network.link.drop_rate = static_cast<double>(grid[pi].second) / 100.0;
        network.link.retransmit = false;
        network.seed = seed + 7;
        WireCost cost;
        const auto got = run_sliding_sample(k, window, slots, 5, args, seed,
                                            network, &cost);
        msgs.add(cost.wire_msgs);
        recall.add(overlap_fraction(got, want));
      }
      table.add_row({util::fmt(grid[pi].first), util::fmt(grid[pi].second),
                     util::fmt(msgs.mean(), 6), util::fmt(recall.mean(), 4)});
    }
    bench::emit(table,
                "A10d: sliding protocol under latency/loss (no retransmit), "
                "recall vs a zero-delay run",
                "abl10_network_sliding.csv", args);
  }
  return 0;
}
