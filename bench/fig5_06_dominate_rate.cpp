// Figure 5.6 — Broadcast vs proposed for different dominate rates.
// Paper parameters: k = 100 sites, s = 20, the "dominate" distribution:
// site 1 receives each element with probability weight alpha against
// weight 1 for every other site.
//
// Expected shape (paper): messages fall as the dominate rate grows —
// the workload approaches centralized monitoring — for both algorithms,
// with Broadcast above the proposed method throughout.
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace dds;
  util::Cli cli;
  bench::register_common(cli);
  cli.flag("sites", "number of sites k", "100");
  cli.flag("sample-size", "sample size s", "20");
  cli.flag("rates", "comma-separated dominate rates", "1,10,50,100,200,500,1000");
  if (!cli.parse(argc, argv)) return 1;
  const auto args = bench::read_common(cli);
  const auto sites = static_cast<std::uint32_t>(cli.get_uint("sites"));
  const auto s = static_cast<std::size_t>(cli.get_uint("sample-size"));
  const auto rates = cli.get_uint_list("rates");
  bench::banner("Figure 5.6: messages vs dominate rate", args);

  for (auto dataset : {stream::Dataset::kOc48, stream::Dataset::kEnron}) {
    sim::SeriesBundle bundle("dominate rate");
    for (std::size_t pi = 0; pi < rates.size(); ++pi) {
      const double rate = static_cast<double>(rates[pi]);
      for (std::uint64_t run = 0; run < args.runs; ++run) {
        const auto seed = bench::run_seed(args, 3000 + pi, run);
        bundle.series("proposed").add(
            rate, static_cast<double>(bench::run_infinite_once(
                      sites, s, stream::Distribution::kDominate, dataset, args,
                      seed, rate)));
        bundle.series("broadcast").add(
            rate, static_cast<double>(bench::run_broadcast_once(
                      sites, s, stream::Distribution::kDominate, dataset, args,
                      seed, rate)));
      }
    }
    const auto& spec = stream::trace_spec(dataset);
    bench::emit(bundle.to_table(),
                "Figure 5.6 (" + spec.name + "): messages vs dominate rate, k=" +
                    std::to_string(sites) + ", s=" + std::to_string(s),
                "fig5_06_" + stream::to_string(dataset) + ".csv", args);
  }
  return 0;
}
