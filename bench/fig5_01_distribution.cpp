// Figure 5.1 — number of messages vs stream position under the three
// data-distribution methods (flooding / random / round-robin).
// Paper parameters: k = 5 sites, sample size s = 10, both datasets.
//
// Expected shape (paper): messages rise fast early (the sample changes
// often) then flatten; flooding sits far above random and round-robin,
// which are nearly indistinguishable.
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace dds;
  util::Cli cli;
  bench::register_common(cli);
  cli.flag("sites", "number of sites k", "5");
  cli.flag("sample-size", "sample size s", "10");
  cli.flag("points", "checkpoints along the stream", "10");
  if (!cli.parse(argc, argv)) return 1;
  const auto args = bench::read_common(cli);
  const auto sites = static_cast<std::uint32_t>(cli.get_uint("sites"));
  const auto s = static_cast<std::size_t>(cli.get_uint("sample-size"));
  const int points = static_cast<int>(cli.get_uint("points"));
  bench::banner("Figure 5.1: messages vs distribution method", args);

  for (auto dataset : {stream::Dataset::kOc48, stream::Dataset::kEnron}) {
    sim::SeriesBundle bundle("elements");
    for (auto distribution :
         {stream::Distribution::kFlooding, stream::Distribution::kRandom,
          stream::Distribution::kRoundRobin}) {
      auto& series = bundle.series(stream::to_string(distribution));
      for (std::uint64_t run = 0; run < args.runs; ++run) {
        const auto seed = bench::run_seed(
            args, static_cast<std::uint64_t>(distribution) * 2 +
                      static_cast<std::uint64_t>(dataset),
            run);
        core::SystemConfig config{sites, s, args.hash_kind, seed};
        core::InfiniteSystem system(config, /*eager_threshold=*/false,
                                    args.suppress_duplicates);
        auto input = stream::make_trace(dataset, args.scale(dataset), seed + 1);
        const auto length = input->length();
        auto source = stream::make_partitioner(distribution, *input, sites,
                                               seed + 2);
        const std::uint64_t ape =
            distribution == stream::Distribution::kFlooding ? sites : 1;
        bench::run_with_series(system, *source, length, points, series, ape);
      }
    }
    const auto& spec = stream::trace_spec(dataset);
    bench::emit(bundle.to_table(),
                "Figure 5.1 (" + spec.name + "): cumulative messages, k=" +
                    std::to_string(sites) + ", s=" + std::to_string(s),
                "fig5_01_" + stream::to_string(dataset) + ".csv", args);
  }
  return 0;
}
