// Ablation A13 — the price of fault tolerance (PR 7's chaos layer):
// checkpoint bandwidth and recovery latency vs checkpoint cadence vs
// shard count.
//
// The exact bottom-s full-sync protocol runs sharded on a lossy wire
// next to a fault-free unsharded reference on the same stream. A
// deterministic kill schedule (one coordinator kill every `interval`
// slots, cycling the shards; every third transfer image corrupted in
// flight) drives the Supervisor's full policy loop: cadenced ensemble
// checkpoints, timeout detection (detect_after = 2 slots), verified
// restore with retry + exponential backoff, resync. Reported per
// (shards, cadence) point:
//   * checkpoint count and cumulative image bytes — the bandwidth the
//     cadence buys; B/slot falls roughly as 1/cadence while the image
//     size grows with shard count (more coordinators to snapshot) —
//     the cadence/bandwidth trade the fault_tolerance doc discusses;
//   * recoveries restored-from-image vs degraded (resync-only), and
//     restore retries forced by the corrupted transfers;
//   * mean recovery latency in slots = detection wait + simulated
//     backoff (corrupt rounds pay one backoff_base);
//   * agree% — slots where the deployment is whole AND the merged query
//     equals the unsharded fault-free answer. The full-sync family must
//     print 100.0 at every cadence — even cadences far above w/2 —
//     because recovery ends with a site resync that rebuilds the exact
//     answer regardless of the image (the clear+resync argument proved
//     in tests/chaos_test.cpp); the image's job is bandwidth, not
//     correctness, and this column demonstrates that at bench scale.
#include "baseline/baseline_checkpoint.h"
#include "bench_common.h"
#include "core/supervisor.h"
#include "sim/chaos.h"
#include "sim/sources.h"

namespace {

using dds::sim::SlotSource;

struct PointResult {
  std::uint64_t checkpoints = 0;
  std::uint64_t ckpt_bytes = 0;
  std::uint64_t kills = 0;
  std::uint64_t restored = 0;
  std::uint64_t degraded = 0;
  std::uint64_t retries = 0;
  double mean_latency = 0.0;
  std::uint64_t msgs = 0;
  double agree = 100.0;
  double whole_pct = 100.0;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace dds;
  util::Cli cli;
  bench::register_common(cli);
  cli.flag("sites", "number of sites k", "6");
  cli.flag("slots", "stream length in slots", "260");
  cli.flag("per-slot", "arrivals per slot", "5");
  cli.flag("window", "window length w in slots", "32");
  cli.flag("domain", "distinct-element domain", "400");
  cli.flag("sample-size", "window sample size s", "3");
  cli.flag("shard-list", "comma-separated coordinator-shard sweep", "2,3,4");
  cli.flag("cadence-list", "comma-separated checkpoint-cadence sweep",
           "4,8,16,32");
  cli.flag("kill-interval", "slots between scripted coordinator kills", "24");
  if (!cli.parse(argc, argv)) return 1;
  const auto args = bench::read_common(cli);
  const auto k = static_cast<std::uint32_t>(cli.get_uint("sites"));
  const auto slots =
      static_cast<sim::Slot>(cli.get_uint("slots") * (args.full ? 10 : 1));
  const auto per_slot = static_cast<std::uint32_t>(cli.get_uint("per-slot"));
  const auto window = static_cast<sim::Slot>(cli.get_uint("window"));
  const std::uint64_t domain = cli.get_uint("domain");
  const auto s = static_cast<std::size_t>(cli.get_uint("sample-size"));
  const auto shards_sweep = cli.get_uint_list("shard-list");
  const auto cadence_sweep = cli.get_uint_list("cadence-list");
  const auto interval = static_cast<sim::Slot>(cli.get_uint("kill-interval"));
  bench::banner("Ablation A13: recovery latency and checkpoint bandwidth",
                args);
  std::cout << "k=" << k << ", slots=" << slots << ", per-slot=" << per_slot
            << ", w=" << window << ", domain=" << domain << ", s=" << s
            << ", kill every " << interval << " slots\n";

  // One fixed slotted stream: every grid point replays it exactly.
  std::vector<std::vector<std::pair<sim::NodeId, std::uint64_t>>> stream;
  stream.reserve(static_cast<std::size_t>(slots));
  {
    util::SplitMix64 gen(util::derive_seed(args.seed, 0xAB13));
    for (sim::Slot t = 0; t < slots; ++t) {
      auto& xs = stream.emplace_back();
      xs.reserve(per_slot);
      for (std::uint32_t a = 0; a < per_slot; ++a) {
        xs.emplace_back(static_cast<sim::NodeId>(gen.next() % k),
                        1 + gen.next() % domain);
      }
    }
  }

  auto run_point = [&](std::uint32_t num_shards, sim::Slot cadence) {
    PointResult result;
    core::SlidingSystemConfig config;
    config.num_sites = k;
    config.window = window;
    config.sample_size = s;
    config.hash_kind = args.hash_kind;
    config.seed = args.seed;
    baseline::BottomSSlidingSystem reference(config);  // unsharded, no faults
    auto chaotic_config = config;
    chaotic_config.num_shards = num_shards;
    chaotic_config.network.link.latency = 1.0;
    chaotic_config.network.link.drop_rate = 0.1;
    chaotic_config.network.link.retransmit = true;
    chaotic_config.network.seed = util::derive_seed(args.seed, num_shards);
    baseline::BottomSSlidingSystem chaotic(chaotic_config);

    core::SupervisorConfig sup_config;
    sup_config.checkpoint_cadence = cadence;
    sup_config.detect_after = 2;  // auto-recovery: the timeout detector
    core::Supervisor<baseline::BottomSSlidingSystem> supervisor(chaotic,
                                                                sup_config);

    // The kill schedule: one coordinator down every `interval` slots,
    // cycling shards; every third transfer image is corrupted in
    // flight (armed at the kill slot, consumed by the recovery two
    // slots later — one verify rejection, one backoff_base of latency).
    sim::ChaosPlan plan;
    std::uint32_t round = 0;
    for (sim::Slot t = 30; t + sup_config.detect_after < slots;
         t += interval, ++round) {
      const std::uint32_t shard = round % num_shards;
      plan.kill_at(t, shard);
      if (round % 3 == 2) plan.corrupt_image_at(t, shard);
    }
    sim::Slot now = 0;
    sim::ChaosHooks hooks;
    hooks.kill = [&](std::uint32_t shard) {
      chaotic.kill_shard(shard);
      supervisor.notify_killed(shard, now);
    };
    sim::ChaosController controller(plan, std::move(hooks));
    supervisor.set_image_filter(
        [&](std::uint32_t shard, core::CheckpointImage& image) {
          controller.mangle(shard, image);
        });

    std::uint64_t whole = 0;
    std::uint64_t agree = 0;
    for (sim::Slot t = 0; t < slots; ++t) {
      now = t;
      {
        SlotSource src(t, stream[static_cast<std::size_t>(t)]);
        reference.run(src);
      }
      {
        SlotSource src(t, stream[static_cast<std::size_t>(t)]);
        chaotic.run(src);
      }
      supervisor.on_slot(t);
      controller.step(t);
      if (chaotic.dead_shards() == 0) {
        ++whole;
        if (reference.coordinator().sample(t) == chaotic.sample(t)) ++agree;
      }
    }
    const auto& stats = supervisor.stats();
    result.checkpoints = stats.checkpoints;
    result.ckpt_bytes = stats.checkpoint_bytes;
    result.kills = controller.stats().kills;
    result.restored = stats.recoveries;
    result.degraded = stats.degraded_recoveries;
    result.retries = stats.restore_failures;
    const std::uint64_t recoveries = stats.recoveries +
                                     stats.degraded_recoveries;
    result.mean_latency =
        recoveries == 0 ? 0.0
                        : static_cast<double>(stats.total_recovery_latency) /
                              static_cast<double>(recoveries);
    result.msgs = chaotic.bus().counters().total;
    result.agree =
        whole == 0 ? 100.0
                   : 100.0 * static_cast<double>(agree) /
                         static_cast<double>(whole);
    result.whole_pct = 100.0 * static_cast<double>(whole) /
                       static_cast<double>(slots);
    return result;
  };

  util::Table table({"shards", "cadence", "ckpts", "ckpt KB", "B/slot",
                     "kills", "restored", "degraded", "retries",
                     "latency(slots)", "msgs", "whole%", "agree%"});
  for (const std::uint64_t num_shards : shards_sweep) {
    for (const std::uint64_t cadence : cadence_sweep) {
      const PointResult r = run_point(static_cast<std::uint32_t>(num_shards),
                                      static_cast<sim::Slot>(cadence));
      table.add_row(
          {std::to_string(num_shards), std::to_string(cadence),
           std::to_string(r.checkpoints),
           util::fmt(static_cast<double>(r.ckpt_bytes) / 1024.0, 2),
           util::fmt_fixed(static_cast<double>(r.ckpt_bytes) /
                               static_cast<double>(slots),
                           1),
           std::to_string(r.kills), std::to_string(r.restored),
           std::to_string(r.degraded), std::to_string(r.retries),
           util::fmt_fixed(r.mean_latency, 2), std::to_string(r.msgs),
           util::fmt_fixed(r.whole_pct, 1), util::fmt_fixed(r.agree, 1)});
    }
  }
  bench::emit(table,
              "A13: recovery cost, exact bottom-s, k=" + std::to_string(k) +
                  ", w=" + std::to_string(window) + ", s=" + std::to_string(s),
              "abl13_recovery.csv", args);
  return 0;
}
