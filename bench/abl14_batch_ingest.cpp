// Ablation A14 — the batched ingest hot path.
//
// Measures what SystemConfig::ingest_batch (and the sampler-level
// observe_batch underneath it) buys on the A4-style realistic
// sliding-window workload: bursty arrivals over {domain, window} points
// spanning the flat-ring and treap regimes, with periodic queries. Two
// layers:
//
//   * sampler — WindowedBottomSSampler driven directly (no wire): the
//     per-batch levers are one hash pass (hash-kind dispatch hoisted),
//     ONE expiry descent per batch instead of one per element, and a
//     prefetch of the next element's candidate lines. This is the
//     TenantRegistry ingest path.
//   * deployment — the full BottomSSlidingSystem over the zero-delay
//     Bus: batching hoists hashing and amortizes engine dispatch, while
//     protocol work (per-element sync + drain, preserved bit-identical
//     by contract) stays fixed — so the gain is necessarily smaller
//     than the sampler layer's.
//
// The headline column is `xB/x1` — throughput at batch width B over
// width 1 ON THE SAME MACHINE, a hardware-independent ratio recorded in
// the JSON trajectory (tools/bench_json.sh). The equivalence itself is
// not re-checked here: tests/batch_ingest_test.cpp pins bit-identical
// outputs and traces; this table only prices the win.
#include "bench_common.h"

#include "core/windowed_bottom_s.h"
#include "sim/sources.h"

namespace {

using namespace dds;

struct Point {
  std::uint64_t domain;
  sim::Slot window;
};

/// Drives one sampler through `slots` bursty slots, ingesting in
/// `width`-element chunks (width 1 uses the element-at-a-time API), and
/// queries every 16 slots. The workload is pre-generated so the timed
/// region is ingest only. Returns arrivals per second.
double sampler_throughput(const Point& point, std::size_t burst_size,
                          std::size_t width, sim::Slot slots,
                          std::uint64_t seed) {
  core::WindowedBottomSSampler sampler(
      /*sample_size=*/16, point.window,
      hash::HashFunction(hash::HashKind::kMurmur2, seed), seed ^ 0x5A5A);
  util::Xoshiro256StarStar rng(seed);
  std::vector<std::uint64_t> elements(burst_size *
                                      static_cast<std::size_t>(slots));
  for (auto& e : elements) e = util::mix64(1 + rng.next_below(point.domain));
  std::vector<treap::Candidate> answer;
  answer.reserve(16);
  util::Timer timer;
  for (sim::Slot t = 0; t < slots; ++t) {
    const std::uint64_t* burst =
        elements.data() + static_cast<std::size_t>(t) * burst_size;
    if (width <= 1) {
      for (std::size_t i = 0; i < burst_size; ++i) {
        sampler.observe(burst[i], t);
      }
    } else {
      for (std::size_t off = 0; off < burst_size; off += width) {
        const std::size_t n = std::min(width, burst_size - off);
        sampler.observe_batch({burst + off, n}, t);
      }
    }
    if ((t & 15) == 0) sampler.sample_into(t, answer);
  }
  const double seconds = timer.elapsed_seconds();
  return static_cast<double>(elements.size()) / seconds;
}

/// Full-deployment throughput at the given ingest_batch width.
double deployment_throughput(std::uint32_t ingest_batch, sim::Slot slots,
                             std::uint64_t seed, const bench::CommonArgs& args) {
  core::SlidingSystemConfig config;
  config.num_sites = 4;
  config.sample_size = 8;
  config.window = 200;
  config.seed = seed;
  config.hash_kind = args.hash_kind;
  config.ingest_batch = ingest_batch;
  baseline::BottomSSlidingSystem system(config);
  util::Xoshiro256StarStar rng(seed ^ 0x14);
  std::vector<sim::Arrival> arrivals;
  for (sim::Slot t = 0; t < slots; ++t) {
    const std::uint64_t count = rng.next_below(100) < 10 ? 32 : 4;
    sim::NodeId site = static_cast<sim::NodeId>(rng.next_below(4));
    for (std::uint64_t i = 0; i < count; ++i) {
      if (rng.next_below(8) == 0) {
        site = static_cast<sim::NodeId>(rng.next_below(4));
      }
      arrivals.push_back({t, site, util::mix64(1 + rng.next_below(20000))});
    }
  }
  sim::ListSource source(arrivals);
  util::Timer timer;
  const std::uint64_t processed = system.run(source);
  return static_cast<double>(processed) / timer.elapsed_seconds();
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli;
  bench::register_common(cli);
  cli.flag("slots", "slots per sampler run", "20000");
  cli.flag("burst", "arrivals per slot (sampler rows)", "64");
  if (!cli.parse(argc, argv)) return 1;
  const auto args = bench::read_common(cli);
  const auto slots = static_cast<sim::Slot>(cli.get_uint("slots"));
  const auto burst = static_cast<std::size_t>(cli.get_uint("burst"));
  bench::banner("Ablation A14: batched ingest hot path", args);

  constexpr std::size_t kWidths[] = {1, 4, 8, 64};
  const Point kPoints[] = {{100, 50}, {10000, 500}, {1000000, 5000}};

  util::Table table({"layer", "domain", "window", "batch",
                     "arrivals/s (mean)", "ci95", "xB/x1"});
  for (const Point& point : kPoints) {
    double base_mean = 0.0;
    for (const std::size_t width : kWidths) {
      util::RunningStat rate;
      for (std::uint64_t run = 0; run < args.runs; ++run) {
        const auto seed = bench::run_seed(args, point.domain + width, run);
        rate.add(sampler_throughput(point, burst, width, slots, seed));
      }
      if (width == 1) base_mean = rate.mean();
      table.add_row({"sampler", util::fmt(point.domain),
                     util::fmt(static_cast<std::int64_t>(point.window)),
                     util::fmt(static_cast<std::uint64_t>(width)),
                     util::fmt(rate.mean(), 7),
                     util::fmt(rate.ci95_halfwidth(), 3),
                     util::fmt(rate.mean() / base_mean, 3)});
    }
  }
  {
    double base_mean = 0.0;
    for (const std::size_t width : kWidths) {
      util::RunningStat rate;
      for (std::uint64_t run = 0; run < args.runs; ++run) {
        const auto seed = bench::run_seed(args, 0xDE9107 + width, run);
        rate.add(deployment_throughput(static_cast<std::uint32_t>(width),
                                       /*slots=*/400, seed, args));
      }
      if (width == 1) base_mean = rate.mean();
      table.add_row({"deployment", "20000", "200",
                     util::fmt(static_cast<std::uint64_t>(width)),
                     util::fmt(rate.mean(), 7),
                     util::fmt(rate.ci95_halfwidth(), 3),
                     util::fmt(rate.mean() / base_mean, 3)});
    }
  }
  bench::emit(table,
              "A14: batched vs element-at-a-time ingest (xB/x1 is the "
              "hardware-independent ratio; bit-identity pinned by "
              "tests/batch_ingest_test.cpp)",
              "abl14_batch_ingest.csv", args);
  return 0;
}
