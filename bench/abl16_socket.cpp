// Ablation A16 — the paper's logical cost model vs real socket framing.
//
// The paper counts messages and prices them at the logical record size;
// this repo's wire format (docs/wire.md) adds a 12-byte header and an
// 8-byte checksum per frame, and batching amortizes that envelope over
// 29-byte packed records. This ablation runs the infinite-window
// protocol over real UDP datagrams and real TCP streams on 127.0.0.1
// and measures:
//
//  * frame bytes actually shipped vs the logical model
//    (`wire::message_frame_bytes()` per unbatched send; batching drops
//    the per-message envelope, so overhead falls toward the packed-
//    record floor as the flush interval grows)
//  * the UDP reliability tax: data datagrams, ack-only datagrams,
//    retransmits (should be ~0 on loopback — the ack-bit redundancy is
//    doing the silencing)
//  * sample agreement with the zero-delay Bus reference: every row must
//    report agree = 1 (the differential harness in tests/socket_test.cpp
//    pins this bit-exactly; the bench re-checks it per data point).
#include "bench_common.h"

#include "net/udp_transport.h"
#include "net/wire.h"

namespace {

using namespace dds;

struct RunResult {
  double logical_msgs = 0;   ///< paper-model sends
  double logical_bytes = 0;  ///< paper-model bytes (37 B per message)
  double wire_msgs = 0;      ///< frames actually shipped
  double wire_bytes = 0;     ///< framed bytes actually shipped
  double retransmits = 0;    ///< UDP only: conn-layer retransmits
  double ack_only = 0;       ///< UDP only: ack-only datagrams
  std::vector<stream::Element> sample;
};

RunResult run_once(net::TransportKind kind, sim::Slot batch_interval,
                   std::uint32_t sites, std::size_t s, std::uint64_t n,
                   std::uint64_t domain, const bench::CommonArgs& args,
                   std::uint64_t seed) {
  core::SystemConfig config{sites, s, args.hash_kind, seed};
  config.network.kind = kind;
  config.network.batch_interval = batch_interval;
  config.network.seed = seed + 7;
  core::InfiniteSystem system(config, /*eager_threshold=*/false,
                              args.suppress_duplicates);
  stream::ZipfStream input(n, domain, 1.05, seed + 1);
  auto source = stream::make_partitioner(stream::Distribution::kRandom, input,
                                         sites, seed + 2, 1.0);
  system.run(*source);

  RunResult out;
  net::Transport& transport = system.bus();
  out.wire_msgs = static_cast<double>(transport.counters().total);
  out.wire_bytes = static_cast<double>(transport.counters().bytes);
  out.logical_msgs = out.wire_msgs;
  out.logical_bytes = out.wire_bytes;
  if (const auto* sock =
          dynamic_cast<const net::SocketTransport*>(&transport)) {
    out.logical_msgs = static_cast<double>(sock->logical_counters().total);
    out.logical_bytes = static_cast<double>(sock->logical_counters().bytes);
  }
  if (const auto* udp = dynamic_cast<const net::UdpTransport*>(&transport)) {
    const net::ConnStats totals = udp->conn_totals();
    out.retransmits = static_cast<double>(totals.retransmits);
    out.ack_only = static_cast<double>(totals.ack_only_sent);
  }
  out.sample = system.coordinator().sample().elements();
  std::sort(out.sample.begin(), out.sample.end());
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli;
  bench::register_common(cli);
  cli.flag("sites", "number of sites k", "4");
  cli.flag("sample-size", "sample size s", "16");
  cli.flag("n", "stream length", "20000");
  cli.flag("domain", "element domain size", "2000");
  cli.flag("batches", "comma-separated batch flush intervals (slots)",
           "0,1,2,5,10");
  if (!cli.parse(argc, argv)) return 1;
  const auto args = bench::read_common(cli);
  const auto k = static_cast<std::uint32_t>(cli.get_uint("sites"));
  const auto s = static_cast<std::size_t>(cli.get_uint("sample-size"));
  const auto n = cli.get_uint("n");
  const auto domain = cli.get_uint("domain");
  const auto batches = cli.get_uint_list("batches");
  bench::banner("Ablation A16: logical cost model vs real socket framing",
                args);

  bool all_agree = true;

  // -------------------------- framing overhead vs batch interval --
  {
    util::Table table({"flush interval", "logical msgs", "model bytes",
                       "udp frames", "udp bytes", "tcp bytes", "overhead %",
                       "agree"});
    for (std::size_t pi = 0; pi < batches.size(); ++pi) {
      const auto batch = static_cast<sim::Slot>(batches[pi]);
      util::RunningStat logical, model_bytes, udp_frames, udp_bytes,
          tcp_bytes, overhead;
      bool agree = true;
      for (std::uint64_t run = 0; run < args.runs; ++run) {
        const auto seed = bench::run_seed(args, pi, run);
        const auto bus = run_once(net::TransportKind::kBus, batch, k, s, n,
                                  domain, args, seed);
        const auto udp = run_once(net::TransportKind::kUdp, batch, k, s, n,
                                  domain, args, seed);
        const auto tcp = run_once(net::TransportKind::kTcp, batch, k, s, n,
                                  domain, args, seed);
        agree = agree && udp.sample == bus.sample && tcp.sample == bus.sample;
        logical.add(udp.logical_msgs);
        model_bytes.add(udp.logical_bytes);
        udp_frames.add(udp.wire_msgs);
        udp_bytes.add(udp.wire_bytes);
        tcp_bytes.add(tcp.wire_bytes);
        overhead.add(100.0 * (udp.wire_bytes / udp.logical_bytes - 1.0));
      }
      all_agree = all_agree && agree;
      table.add_row({util::fmt(batches[pi]), util::fmt(logical.mean(), 6),
                     util::fmt(model_bytes.mean(), 7),
                     util::fmt(udp_frames.mean(), 6),
                     util::fmt(udp_bytes.mean(), 7),
                     util::fmt(tcp_bytes.mean(), 7),
                     util::fmt(overhead.mean(), 3),
                     agree ? "yes" : "NO"});
    }
    bench::emit(table,
                "A16a: framed bytes vs the paper's logical model, by batch "
                "flush interval (envelope " +
                    std::to_string(net::wire::message_frame_bytes() -
                                   sim::Message::wire_bytes()) +
                    " B/frame, packed record 29 B)",
                "abl16_socket_framing.csv", args);
  }

  // ------------------------------------ UDP reliability economy --
  {
    util::Table table(
        {"flush interval", "data frames", "retransmits", "ack-only"});
    for (std::size_t pi = 0; pi < batches.size(); ++pi) {
      const auto batch = static_cast<sim::Slot>(batches[pi]);
      util::RunningStat frames, rtx, acks;
      for (std::uint64_t run = 0; run < args.runs; ++run) {
        const auto seed = bench::run_seed(args, 100 + pi, run);
        const auto udp = run_once(net::TransportKind::kUdp, batch, k, s, n,
                                  domain, args, seed);
        frames.add(udp.wire_msgs);
        rtx.add(udp.retransmits);
        acks.add(udp.ack_only);
      }
      table.add_row({util::fmt(batches[pi]), util::fmt(frames.mean(), 6),
                     util::fmt(rtx.mean(), 3), util::fmt(acks.mean(), 6)});
    }
    bench::emit(table,
                "A16b: UDP datagram economy on 127.0.0.1 (retransmits ~0: "
                "the redundant ack-bits absorb loopback reordering)",
                "abl16_socket_udp.csv", args);
  }

  if (!all_agree) {
    std::cerr << "abl16_socket: FAIL — a socket sample diverged from the "
                 "Bus reference\n";
    return 1;
  }
  return 0;
}
