// Ablation A6 — protocol micro-variants on duplicate-heavy traces.
//
// Two one-line deviations from the published pseudocode, each measured
// against the faithful default:
//   * eager threshold: the coordinator tightens u as soon as |P| = s
//     rather than on the first overflow (Algorithm 2 as written);
//   * duplicate suppression: sites remember which of their elements are
//     known sample members and stop re-reporting them — this repairs the
//     "repeats are free" accounting of Lemma 2's proof, which does not
//     hold verbatim for current sample members (see infinite_site.h).
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace dds;
  util::Cli cli;
  bench::register_common(cli);
  cli.flag("sites", "number of sites k", "10");
  cli.flag("sample-size", "sample size s", "20");
  if (!cli.parse(argc, argv)) return 1;
  const auto args = bench::read_common(cli);
  const auto k = static_cast<std::uint32_t>(cli.get_uint("sites"));
  const auto s = static_cast<std::size_t>(cli.get_uint("sample-size"));
  bench::banner("Ablation A6: protocol variants (lazy/eager x suppression)",
                args);

  for (auto dataset : {stream::Dataset::kOc48, stream::Dataset::kEnron}) {
    util::Table table({"variant", "messages (mean)", "ci95", "vs faithful"});
    double faithful_mean = 0.0;
    struct Variant {
      const char* name;
      bool eager;
      bool suppress;
    };
    for (const Variant v :
         {Variant{"faithful (lazy, no suppression)", false, false},
          Variant{"eager threshold", true, false},
          Variant{"duplicate suppression", false, true},
          Variant{"eager + suppression", true, true}}) {
      util::RunningStat messages;
      for (std::uint64_t run = 0; run < args.runs; ++run) {
        // Same seed for every variant: paired comparison on an
        // identical workload and hash function.
        const auto seed = bench::run_seed(args, 0, run);
        core::SystemConfig config{k, s, args.hash_kind, seed};
        core::InfiniteSystem system(config, v.eager, v.suppress);
        auto input = stream::make_trace(dataset, args.scale(dataset), seed + 1);
        stream::RandomPartitioner source(*input, k, seed + 2);
        system.run(source);
        messages.add(static_cast<double>(system.bus().counters().total));
      }
      if (!v.eager && !v.suppress) faithful_mean = messages.mean();
      table.add_row({v.name, util::fmt(messages.mean(), 7),
                     util::fmt(messages.ci95_halfwidth(), 3),
                     util::fmt(messages.mean() / faithful_mean, 4)});
    }
    const auto& spec = stream::trace_spec(dataset);
    bench::emit(table,
                "A6 (" + spec.name + "): variant message cost, k=" +
                    std::to_string(k) + ", s=" + std::to_string(s),
                "abl6_variants_" + stream::to_string(dataset) + ".csv", args);
  }
  return 0;
}
