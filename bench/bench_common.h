// Shared scaffolding for the per-figure bench binaries.
//
// Every binary reproduces one table or figure of the paper's Chapter 5:
// it sweeps the paper's parameters, averages over independent runs
// (paper: 50; default here: 5, --runs to change), prints the series as a
// Markdown table, and mirrors it to CSV under bench_results/.
//
// Quick mode (the default) uses scaled-down synthetic traces so the
// whole harness runs in minutes on a laptop; --full uses paper-scale
// streams.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <iostream>
#include <memory>
#include <string>

#include "core/system.h"
#include "baseline/baseline_system.h"
#include "sim/metrics.h"
#include "stream/generators.h"
#include "stream/partitioner.h"
#include "stream/trace_synth.h"
#include "util/cli.h"
#include "util/stats.h"
#include "util/table.h"
#include "util/timer.h"

namespace dds::bench {

struct CommonArgs {
  bool full = false;
  /// Figure benches default to the duplicate-suppression variant, which
  /// realizes the paper's Lemma-2 accounting ("repeated occurrences are
  /// free") exactly; the faithful-pseudocode behaviour re-reports
  /// current sample members on every re-arrival, adding a noisy
  /// O(sum_t s/d(t)) term that the A6 ablation quantifies. Set
  /// --faithful-duplicates to reproduce the raw pseudocode instead.
  bool suppress_duplicates = true;
  std::uint64_t runs = 5;
  std::uint64_t seed = 1;
  std::string outdir = "bench_results";
  /// Mirror every emitted table to <outdir>/<name>.json as well as CSV,
  /// so CI can archive a machine-readable perf trajectory.
  bool json = false;
  hash::HashKind hash_kind = hash::HashKind::kMurmur2;
  /// Execution-engine knobs, threaded into every facade this header
  /// builds: >1 threads deploys on the ShardedEngine (where the
  /// protocol allows), >1 shards consistent-hashes the coordinator.
  std::uint32_t num_threads = 1;
  std::uint32_t num_shards = 1;

  /// Stream scale for a dataset: paper scale under --full, otherwise a
  /// quick default that preserves heavy duplication (OC48 1/50, Enron
  /// 1/4 — chosen so each single run stays under ~1M arrivals).
  double scale(stream::Dataset dataset) const {
    if (full) return 1.0;
    return dataset == stream::Dataset::kOc48 ? 0.02 : 0.25;
  }
};

/// Registers the shared flags on a Cli.
inline void register_common(util::Cli& cli) {
  cli.boolean("full", "run at paper scale (slow)");
  cli.boolean("faithful-duplicates",
              "use the raw pseudocode (sample-member repeats re-report) "
              "instead of the Lemma-2-faithful duplicate suppression");
  cli.flag("runs", "independent runs per data point", "5");
  cli.flag("seed", "master seed", "1");
  cli.flag("outdir", "CSV output directory", "bench_results");
  cli.boolean("json", "also write each table as <outdir>/<name>.json");
  cli.flag("hash", "hash function: murmur2|murmur3|splitmix|tabulation",
           "murmur2");
  cli.flag("threads", "site worker threads (ShardedEngine when > 1)", "1");
  cli.flag("shards", "coordinator shards (consistent hashing when > 1)", "1");
}

inline CommonArgs read_common(const util::Cli& cli) {
  CommonArgs args;
  args.full = cli.get_bool("full");
  args.suppress_duplicates = !cli.get_bool("faithful-duplicates");
  args.runs = cli.get_uint("runs");
  args.seed = cli.get_uint("seed");
  args.outdir = cli.get("outdir");
  args.json = cli.get_bool("json");
  args.hash_kind = hash::parse_hash_kind(cli.get("hash"));
  args.num_threads = static_cast<std::uint32_t>(cli.get_uint("threads"));
  args.num_shards = static_cast<std::uint32_t>(cli.get_uint("shards"));
  return args;
}

/// Applies the engine/sharding knobs to a facade config.
inline void apply_engine_args(core::SystemConfig& config,
                              const CommonArgs& args) {
  config.num_threads = args.num_threads;
  config.num_shards = args.num_shards;
}

/// Prints a table and writes its CSV twin (plus a JSON twin under
/// --json, for the machine-read perf trajectory).
inline void emit(const util::Table& table, const std::string& title,
                 const std::string& csv_name, const CommonArgs& args) {
  table.print(std::cout, title);
  table.write_csv(std::filesystem::path(args.outdir) / csv_name);
  std::cout << "(csv: " << args.outdir << "/" << csv_name << ")\n";
  if (args.json) {
    std::filesystem::path json_name(csv_name);
    json_name.replace_extension(".json");
    table.write_json(std::filesystem::path(args.outdir) / json_name);
    std::cout << "(json: " << args.outdir << "/" << json_name.string()
              << ")\n";
  }
}

/// Seed for run r of sweep point p — decorrelated across everything.
inline std::uint64_t run_seed(const CommonArgs& args, std::uint64_t point,
                              std::uint64_t run) {
  return util::derive_seed(util::derive_seed(args.seed, point), run);
}

/// One infinite-window run: returns total messages.
inline std::uint64_t run_infinite_once(
    std::uint32_t sites, std::size_t sample_size,
    stream::Distribution distribution, stream::Dataset dataset,
    const CommonArgs& args, std::uint64_t seed, double dominate_rate = 1.0) {
  core::SystemConfig config{sites, sample_size, args.hash_kind, seed};
  apply_engine_args(config, args);
  core::InfiniteSystem system(config, /*eager_threshold=*/false,
                              args.suppress_duplicates);
  auto input = stream::make_trace(dataset, args.scale(dataset), seed + 1);
  auto source = stream::make_partitioner(distribution, *input, sites, seed + 2,
                                         dominate_rate);
  system.run(*source);
  return system.bus().counters().total;
}

/// One Broadcast-baseline run: returns total messages.
inline std::uint64_t run_broadcast_once(
    std::uint32_t sites, std::size_t sample_size,
    stream::Distribution distribution, stream::Dataset dataset,
    const CommonArgs& args, std::uint64_t seed, double dominate_rate = 1.0) {
  core::SystemConfig config{sites, sample_size, args.hash_kind, seed};
  // Broadcast fans replies out to every site, so the engine/sharding
  // knobs are inert here (Deployment falls back to the serial engine).
  baseline::BroadcastSystem system(config, args.suppress_duplicates);
  auto input = stream::make_trace(dataset, args.scale(dataset), seed + 1);
  auto source = stream::make_partitioner(distribution, *input, sites, seed + 2,
                                         dominate_rate);
  system.run(*source);
  return system.bus().counters().total;
}

/// Cumulative-messages time series: records bus totals at `points`
/// equally spaced checkpoints along the stream into `series`. The x axis
/// is LOGICAL stream position (elements observed); under flooding each
/// element produces `arrivals_per_element` = k arrivals, so pass k there
/// to keep x comparable across distribution methods.
template <typename System>
void run_with_series(System& system, sim::ArrivalSource& source,
                     std::uint64_t stream_length, int points,
                     sim::Series& series,
                     std::uint64_t arrivals_per_element = 1) {
  const std::uint64_t total_arrivals = stream_length * arrivals_per_element;
  const std::uint64_t every = std::max<std::uint64_t>(
      1, total_arrivals / static_cast<std::uint64_t>(points));
  // Snap checkpoints to multiples of the logical stride so rows line up
  // across distribution methods despite integer-division rounding.
  const double xstep = std::max<double>(
      1.0, static_cast<double>(stream_length) / static_cast<double>(points));
  system.runner().set_observer(
      every,
      [&system, &series, arrivals_per_element, xstep](const sim::Progress& p) {
        if (!p.final_snapshot) {
          const double logical = static_cast<double>(p.elements_processed) /
                                 static_cast<double>(arrivals_per_element);
          series.add(std::round(logical / xstep) * xstep,
                     static_cast<double>(system.bus().counters().total));
        }
      });
  system.run(source);
}

/// One sliding-window run over Section 5.3's input construction
/// (`per_slot` elements per slot to uniformly random sites). Memory is
/// sampled once per slot.
struct SlidingRunStats {
  std::uint64_t messages = 0;
  double mean_per_site_memory = 0.0;  ///< time-avg of (sum |T_i|) / k
  double max_per_site_memory = 0.0;   ///< max over slots of max_i |T_i|
  std::uint64_t slots = 0;
};

inline SlidingRunStats run_sliding_once(std::uint32_t sites, sim::Slot window,
                                        stream::Dataset dataset,
                                        const CommonArgs& args,
                                        std::uint64_t seed,
                                        std::uint32_t per_slot = 5) {
  core::SlidingSystemConfig config;
  config.num_sites = sites;
  config.window = window;
  config.sample_size = 1;
  config.hash_kind = args.hash_kind;
  config.seed = seed;
  config.num_threads = args.num_threads;  // sliding shards sites, not coords
  core::SlidingSystem system(config);
  auto input = stream::make_trace(dataset, args.scale(dataset), seed + 1);
  stream::SlottedFeeder source(*input, sites, per_slot, seed + 2);

  util::RunningStat mean_mem;
  double max_mem = 0.0;
  system.runner().set_observer(
      per_slot, [&](const sim::Progress& p) {
        if (p.final_snapshot) return;
        mean_mem.add(static_cast<double>(system.total_site_state()) /
                     static_cast<double>(sites));
        max_mem = std::max(
            max_mem, static_cast<double>(system.max_site_state()));
      });
  system.run(source);

  SlidingRunStats stats;
  stats.messages = system.bus().counters().total;
  stats.mean_per_site_memory = mean_mem.mean();
  stats.max_per_site_memory = max_mem;
  stats.slots = static_cast<std::uint64_t>(system.runner().current_slot()) + 1;
  return stats;
}

/// Standard banner.
inline void banner(const std::string& what, const CommonArgs& args) {
  std::cout << "== " << what << " ==\n"
            << "mode: " << (args.full ? "FULL (paper scale)" : "quick")
            << (args.suppress_duplicates ? "" : ", faithful-duplicates")
            << ", runs/point: " << args.runs << ", hash: "
            << hash::to_string(args.hash_kind) << ", seed: " << args.seed
            << "\n";
}

}  // namespace dds::bench
