// Figure 5.5 — messages sent by Algorithm Broadcast vs the proposed
// method for different sample sizes. Paper parameters: k = 100 sites,
// random distribution, s swept.
//
// Expected shape (paper): both grow ~ linearly in s, but Broadcast's
// slope is considerably higher.
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace dds;
  util::Cli cli;
  bench::register_common(cli);
  cli.flag("sites", "number of sites k", "100");
  cli.flag("sample-sizes", "comma-separated s sweep", "10,20,40,60,80,100");
  if (!cli.parse(argc, argv)) return 1;
  const auto args = bench::read_common(cli);
  const auto sites = static_cast<std::uint32_t>(cli.get_uint("sites"));
  const auto sweep = cli.get_uint_list("sample-sizes");
  bench::banner("Figure 5.5: Broadcast vs proposed across sample sizes", args);

  for (auto dataset : {stream::Dataset::kOc48, stream::Dataset::kEnron}) {
    sim::SeriesBundle bundle("s");
    for (std::size_t pi = 0; pi < sweep.size(); ++pi) {
      for (std::uint64_t run = 0; run < args.runs; ++run) {
        const auto seed = bench::run_seed(args, pi, run);
        bundle.series("proposed").add(
            static_cast<double>(sweep[pi]),
            static_cast<double>(bench::run_infinite_once(
                sites, sweep[pi], stream::Distribution::kRandom, dataset, args,
                seed)));
        bundle.series("broadcast").add(
            static_cast<double>(sweep[pi]),
            static_cast<double>(bench::run_broadcast_once(
                sites, sweep[pi], stream::Distribution::kRandom, dataset, args,
                seed)));
      }
    }
    const auto& spec = stream::trace_spec(dataset);
    bench::emit(bundle.to_table(),
                "Figure 5.5 (" + spec.name + "): messages vs s, k=" +
                    std::to_string(sites) + ", random",
                "fig5_05_" + stream::to_string(dataset) + ".csv", args);
  }
  return 0;
}
