// Ablation A3 — sensitivity to the hash function.
//
// The analysis assumes a fully random h; practice uses MurmurHash (the
// paper), and this library also offers MurmurHash3, the splitmix64
// finalizer, and 3-independent simple tabulation. For each: message
// cost on the same workload and the distinct-count estimator's relative
// error — if a hash were structurally biased, either would show it.
#include "bench_common.h"

#include "query/estimators.h"

namespace {

/// Keeps the compiler from discarding the hash loops below.
void benchmark_sink(std::uint64_t value) {
  volatile std::uint64_t v = value;
  (void)v;
}

/// Hashing throughput in Mkeys/s: per-key operator() vs the batched
/// kernel (hash_batch, kind dispatch hoisted) in ingest-sized chunks.
/// The ratio column records what the batch layer buys per hash kind.
std::pair<double, double> hash_throughput(dds::hash::HashKind kind,
                                          std::uint64_t seed) {
  const dds::hash::HashFunction f(kind, seed);
  constexpr std::size_t kKeys = 1 << 18;
  constexpr std::size_t kChunk = 8;  // the ingest batch width
  std::vector<std::uint64_t> keys(kKeys);
  for (std::size_t i = 0; i < kKeys; ++i) {
    keys[i] = dds::util::mix64(i + seed);
  }
  std::vector<std::uint64_t> out(kKeys);
  std::uint64_t sink = 0;
  dds::util::Timer single;
  for (std::size_t i = 0; i < kKeys; ++i) out[i] = f(keys[i]);
  for (std::size_t i = 0; i < kKeys; i += 4096) sink ^= out[i];
  const double single_rate = kKeys / single.elapsed_seconds() / 1e6;
  dds::util::Timer batched;
  for (std::size_t off = 0; off < kKeys; off += kChunk) {
    f.hash_batch(keys.data() + off, kChunk, out.data() + off);
  }
  for (std::size_t i = 0; i < kKeys; i += 4096) sink ^= out[i];
  const double batch_rate = kKeys / batched.elapsed_seconds() / 1e6;
  benchmark_sink(sink);
  return {single_rate, batch_rate};
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dds;
  util::Cli cli;
  bench::register_common(cli);
  cli.flag("sites", "number of sites k", "10");
  cli.flag("sample-size", "sample size s", "64");
  if (!cli.parse(argc, argv)) return 1;
  auto args = bench::read_common(cli);
  const auto k = static_cast<std::uint32_t>(cli.get_uint("sites"));
  const auto s = static_cast<std::size_t>(cli.get_uint("sample-size"));
  bench::banner("Ablation A3: hash function sensitivity", args);

  util::Table table({"hash", "messages (mean)", "ci95",
                     "distinct-estimate rel.err (mean)", "rel.err ci95",
                     "Mkeys/s x1", "Mkeys/s batch8", "batch/x1"});
  for (auto kind : {hash::HashKind::kMurmur2, hash::HashKind::kMurmur3,
                    hash::HashKind::kSplitMix, hash::HashKind::kTabulation}) {
    args.hash_kind = kind;
    util::RunningStat messages, rel_err;
    for (std::uint64_t run = 0; run < args.runs * 2; ++run) {
      const auto seed =
          bench::run_seed(args, static_cast<std::uint64_t>(kind), run);
      core::SystemConfig config{k, s, kind, seed};
      core::InfiniteSystem system(config);
      auto input =
          stream::make_trace(stream::Dataset::kEnron,
                             args.scale(stream::Dataset::kEnron), seed + 1);
      std::uint64_t true_distinct = 0;
      {
        auto copy =
            stream::make_trace(stream::Dataset::kEnron,
                               args.scale(stream::Dataset::kEnron), seed + 1);
        true_distinct = stream::measure(*copy).distinct;
      }
      stream::RandomPartitioner source(*input, k, seed + 2);
      system.run(source);
      messages.add(static_cast<double>(system.bus().counters().total));
      const double est = query::estimate_distinct(system.coordinator().sample());
      rel_err.add((est - static_cast<double>(true_distinct)) /
                  static_cast<double>(true_distinct));
    }
    util::RunningStat single_rate, batch_rate;
    for (std::uint64_t run = 0; run < args.runs; ++run) {
      const auto [one, batched] = hash_throughput(
          kind, bench::run_seed(args, 0x5A3 + static_cast<int>(kind), run));
      single_rate.add(one);
      batch_rate.add(batched);
    }
    table.add_row({hash::to_string(kind), util::fmt(messages.mean(), 7),
                   util::fmt(messages.ci95_halfwidth(), 3),
                   util::fmt(rel_err.mean(), 4),
                   util::fmt(rel_err.ci95_halfwidth(), 3),
                   util::fmt(single_rate.mean(), 5),
                   util::fmt(batch_rate.mean(), 5),
                   util::fmt(batch_rate.mean() / single_rate.mean(), 3)});
  }
  bench::emit(table,
              "A3: hash sensitivity, Enron synthetic, k=" + std::to_string(k) +
                  ", s=" + std::to_string(s),
              "abl3_hash_funcs.csv", args);
  return 0;
}
