// Figure 5.4 — comparison between the number of messages sent by
// Algorithm Broadcast and the proposed method, over the stream.
// Paper parameters: k = 100 sites, s = 20, random distribution.
//
// Expected shape (paper): Broadcast sends several times more messages
// than the proposed lazy scheme throughout the stream; both curves
// flatten as the sample stabilizes.
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace dds;
  util::Cli cli;
  bench::register_common(cli);
  cli.flag("sites", "number of sites k", "100");
  cli.flag("sample-size", "sample size s", "20");
  cli.flag("points", "checkpoints along the stream", "10");
  if (!cli.parse(argc, argv)) return 1;
  const auto args = bench::read_common(cli);
  const auto sites = static_cast<std::uint32_t>(cli.get_uint("sites"));
  const auto s = static_cast<std::size_t>(cli.get_uint("sample-size"));
  const int points = static_cast<int>(cli.get_uint("points"));
  bench::banner("Figure 5.4: Broadcast vs proposed over the stream", args);

  for (auto dataset : {stream::Dataset::kOc48, stream::Dataset::kEnron}) {
    sim::SeriesBundle bundle("elements");
    for (std::uint64_t run = 0; run < args.runs; ++run) {
      const auto seed =
          bench::run_seed(args, static_cast<std::uint64_t>(dataset), run);
      {
        core::SystemConfig config{sites, s, args.hash_kind, seed};
        core::InfiniteSystem system(config, /*eager_threshold=*/false,
                                    args.suppress_duplicates);
        auto input = stream::make_trace(dataset, args.scale(dataset), seed + 1);
        const auto length = input->length();
        stream::RandomPartitioner source(*input, sites, seed + 2);
        bench::run_with_series(system, source, length, points,
                               bundle.series("proposed"));
      }
      {
        core::SystemConfig config{sites, s, args.hash_kind, seed};
        baseline::BroadcastSystem system(config, args.suppress_duplicates);
        auto input = stream::make_trace(dataset, args.scale(dataset), seed + 1);
        const auto length = input->length();
        stream::RandomPartitioner source(*input, sites, seed + 2);
        bench::run_with_series(system, source, length, points,
                               bundle.series("broadcast"));
      }
    }
    const auto& spec = stream::trace_spec(dataset);
    bench::emit(bundle.to_table(),
                "Figure 5.4 (" + spec.name + "): cumulative messages, k=" +
                    std::to_string(sites) + ", s=" + std::to_string(s) +
                    ", random",
                "fig5_04_" + stream::to_string(dataset) + ".csv", args);
  }
  return 0;
}
