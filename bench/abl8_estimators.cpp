// Ablation A8 — distinct-count estimation: the coordinator's bottom-s
// sample (KMV, free by-product of the paper's protocol) vs a dedicated
// HyperLogLog of comparable footprint.
//
// The point is not that KMV beats HLL (it does not, per byte) but that
// the sample the protocol maintains anyway delivers a usable estimate,
// while HLL delivers only a count — no predicates, no sample members.
#include "bench_common.h"

#include "query/estimators.h"
#include "query/hyperloglog.h"

int main(int argc, char** argv) {
  using namespace dds;
  util::Cli cli;
  bench::register_common(cli);
  cli.flag("sites", "number of sites k", "5");
  cli.flag("sample-sizes", "comma-separated s sweep", "64,256,1024");
  if (!cli.parse(argc, argv)) return 1;
  const auto args = bench::read_common(cli);
  const auto k = static_cast<std::uint32_t>(cli.get_uint("sites"));
  const auto sweep = cli.get_uint_list("sample-sizes");
  bench::banner("Ablation A8: KMV (protocol by-product) vs HyperLogLog",
                args);

  util::Table table({"s / registers", "KMV rel.err", "KMV bytes",
                     "HLL rel.err", "HLL bytes", "true distinct"});
  for (std::size_t pi = 0; pi < sweep.size(); ++pi) {
    const auto s = static_cast<std::size_t>(sweep[pi]);
    // HLL with register count == s: comparable "entries".
    const int precision = static_cast<int>(std::round(std::log2(s)));
    util::RunningStat kmv_err, hll_err;
    std::uint64_t true_distinct = 0;
    for (std::uint64_t run = 0; run < args.runs; ++run) {
      const auto seed = bench::run_seed(args, pi, run);
      core::SystemConfig config{k, s, args.hash_kind, seed};
      core::InfiniteSystem system(config, false, true);
      query::HyperLogLog hll(precision,
                             hash::HashFunction(args.hash_kind, seed + 77));
      {
        auto input = stream::make_trace(stream::Dataset::kEnron,
                                        args.scale(stream::Dataset::kEnron),
                                        seed + 1);
        true_distinct = 0;
        std::unordered_set<stream::Element> seen;
        // Feed the protocol and the HLL the same stream; count truth.
        std::vector<stream::Element> buffered;
        while (auto e = input->next()) {
          buffered.push_back(*e);
          hll.add(*e);
          seen.insert(*e);
        }
        true_distinct = seen.size();
        stream::VectorStream replay(std::move(buffered));
        stream::RandomPartitioner source(replay, k, seed + 2);
        system.run(source);
      }
      const double d = static_cast<double>(true_distinct);
      kmv_err.add(std::abs(
          query::estimate_distinct(system.coordinator().sample()) - d) / d);
      hll_err.add(std::abs(hll.estimate() - d) / d);
    }
    table.add_row(
        {util::fmt(sweep[pi]), util::fmt(kmv_err.mean(), 4),
         util::fmt(static_cast<std::uint64_t>(s * 16)),  // (hash,elem) pairs
         util::fmt(hll_err.mean(), 4),
         util::fmt(static_cast<std::uint64_t>(1ULL << precision)),
         util::fmt(true_distinct)});
  }
  bench::emit(table, "A8: estimator accuracy, Enron synthetic",
              "abl8_estimators.csv", args);
  return 0;
}
