// Tests for the extension modules: the bottom-s sliding-window sampler
// (SDominanceSet + WindowedBottomSSampler + the full-sync distributed
// deployment), HyperLogLog, KMV set operations, churn/file workloads,
// and crash recovery of the infinite-window protocol.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "baseline/baseline_system.h"
#include "core/system.h"
#include "core/windowed_bottom_s.h"
#include "query/hyperloglog.h"
#include "sim/sources.h"
#include "query/set_operations.h"
#include "stream/churn.h"
#include "stream/file_stream.h"
#include "stream/generators.h"
#include "stream/partitioner.h"
#include "treap/s_dominance_set.h"
#include "util/stats.h"

namespace dds {
namespace {

using sim::ListSource;

using stream::Element;

// ------------------------------------------------------ SDominanceSet --

/// O(n^2)-checked reference: keeps every tuple, prunes by definition.
class NaiveSDominance {
 public:
  explicit NaiveSDominance(std::size_t s) : s_(s) {}

  void observe(Element e, std::uint64_t h, sim::Slot expiry) {
    insert(e, h, expiry);
  }
  void insert(Element e, std::uint64_t h, sim::Slot expiry) {
    auto it = std::find_if(items_.begin(), items_.end(),
                           [&](const auto& c) { return c.element == e; });
    if (it != items_.end()) {
      if (it->expiry >= expiry) return;
      items_.erase(it);
    }
    items_.push_back({e, h, expiry});
    prune();
  }
  void expire(sim::Slot now) {
    std::erase_if(items_, [now](const auto& c) { return c.expiry <= now; });
  }
  std::vector<treap::Candidate> bottom_s() const {
    auto out = items_;
    std::sort(out.begin(), out.end(),
              [](const auto& a, const auto& b) { return a.hash < b.hash; });
    if (out.size() > s_) out.resize(s_);
    return out;
  }
  std::size_t size() const { return items_.size(); }

 private:
  void prune() {
    bool changed = true;
    while (changed) {
      changed = false;
      for (std::size_t i = 0; i < items_.size(); ++i) {
        std::size_t dom = 0;
        for (const auto& c : items_) {
          if (c.expiry > items_[i].expiry && c.hash < items_[i].hash) ++dom;
        }
        if (dom >= s_) {
          items_.erase(items_.begin() + static_cast<std::ptrdiff_t>(i));
          changed = true;
          break;
        }
      }
    }
  }
  std::size_t s_;
  std::vector<treap::Candidate> items_;
};

TEST(SDominanceSet, DegeneratesToDominanceSetAtSOne) {
  treap::SDominanceSet s1(1);
  treap::DominanceSet ref;
  hash::HashFunction h(hash::HashKind::kMurmur2, 5);
  util::Xoshiro256StarStar rng(6);
  for (sim::Slot t = 0; t < 400; ++t) {
    s1.expire(t);
    ref.expire(t);
    for (int a = 0; a < 2; ++a) {
      const Element e = 1 + rng.next_below(40);
      s1.observe(e, h(e), t + 25);
      ref.observe(e, h(e), t + 25);
    }
    ASSERT_EQ(s1.snapshot(), ref.snapshot()) << "slot " << t;
  }
}

struct SDomParams {
  std::size_t s;
  std::uint64_t domain;
  sim::Slot window;
  std::uint64_t seed;
  int coord_every;
};

class SDominanceFuzz : public ::testing::TestWithParam<SDomParams> {};

TEST_P(SDominanceFuzz, MatchesNaiveReference) {
  const auto p = GetParam();
  treap::SDominanceSet fast(p.s);
  NaiveSDominance ref(p.s);
  hash::HashFunction h(hash::HashKind::kMurmur2, p.seed);
  util::Xoshiro256StarStar rng(p.seed + 1);
  for (sim::Slot t = 0; t < 500; ++t) {
    fast.expire(t);
    ref.expire(t);
    const auto arrivals = rng.next_below(4);
    for (std::uint64_t a = 0; a < arrivals; ++a) {
      const Element e = 1 + rng.next_below(p.domain);
      fast.observe(e, h(e), t + p.window);
      ref.observe(e, h(e), t + p.window);
    }
    if (p.coord_every > 0 && t % p.coord_every == 0 && t > 0) {
      const Element e = 1 + rng.next_below(p.domain);
      const auto expiry =
          t + 1 + static_cast<sim::Slot>(rng.next_below(p.window));
      fast.insert(e, h(e), expiry);
      ref.insert(e, h(e), expiry);
    }
    ASSERT_EQ(fast.size(), ref.size()) << "slot " << t;
    ASSERT_EQ(fast.bottom_s(), ref.bottom_s()) << "slot " << t;
    ASSERT_TRUE(fast.check_invariants()) << "slot " << t;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SDominanceFuzz,
    ::testing::Values(SDomParams{1, 50, 20, 1, 0},
                      SDomParams{2, 50, 20, 2, 0},
                      SDomParams{4, 200, 40, 3, 0},
                      SDomParams{8, 30, 15, 4, 0},   // heavy duplicates
                      SDomParams{3, 100, 30, 5, 7},  // with inserts
                      SDomParams{5, 1000, 60, 6, 11}));

TEST(SDominanceSet, SizeScalesWithS) {
  // E[|T|] ~ s(1 + ln(M/s)): doubling s should roughly double the size.
  auto steady_size = [](std::size_t s) {
    treap::SDominanceSet set(s);
    hash::HashFunction h(hash::HashKind::kMurmur2, 77);
    double total = 0;
    int samples = 0;
    for (sim::Slot t = 0; t < 4000; ++t) {
      set.expire(t);
      set.observe(1000000 + static_cast<Element>(t), h(1000000 + t), t + 512);
      if (t > 1000) {
        total += static_cast<double>(set.size());
        ++samples;
      }
    }
    return total / samples;
  };
  const double m2 = steady_size(2);
  const double m8 = steady_size(8);
  EXPECT_GT(m8, 2.0 * m2);
  EXPECT_LT(m8, 8.0 * m2);
}

TEST(SDominanceSet, ZeroSampleSizeRejected) {
  EXPECT_THROW(treap::SDominanceSet(0), std::invalid_argument);
}

// --------------------------------------------- WindowedBottomSSampler --

TEST(WindowedBottomS, ExactAgainstBruteForce) {
  constexpr std::size_t kS = 5;
  constexpr sim::Slot kW = 30;
  hash::HashFunction h(hash::HashKind::kMurmur2, 9);
  core::WindowedBottomSSampler sampler(kS, kW, h);
  std::unordered_map<Element, sim::Slot> last_arrival;
  util::Xoshiro256StarStar rng(10);

  for (sim::Slot t = 0; t < 600; ++t) {
    const auto arrivals = rng.next_below(3);
    for (std::uint64_t a = 0; a < arrivals; ++a) {
      const Element e = 1 + rng.next_below(60);
      sampler.observe(e, t);
      last_arrival[e] = t;
    }
    // Brute-force bottom-s of the window.
    std::vector<std::pair<std::uint64_t, Element>> in_window;
    for (const auto& [e, ta] : last_arrival) {
      if (ta + kW > t) in_window.emplace_back(h(e), e);
    }
    std::sort(in_window.begin(), in_window.end());
    if (in_window.size() > kS) in_window.resize(kS);

    const auto got = sampler.sample(t);
    ASSERT_EQ(got.size(), in_window.size()) << "slot " << t;
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].element, in_window[i].second) << "slot " << t;
      EXPECT_EQ(got[i].hash, in_window[i].first);
    }
  }
}

TEST(WindowedBottomS, MemoryStaysNearTheory) {
  // All-distinct stream, window 256, s = 4: E[|T|] ~ s(1 + ln(M/s)).
  constexpr std::size_t kS = 4;
  constexpr sim::Slot kW = 256;
  core::WindowedBottomSSampler sampler(
      kS, kW, hash::HashFunction(hash::HashKind::kMurmur2, 3));
  util::RunningStat sizes;
  for (sim::Slot t = 0; t < 3000; ++t) {
    sampler.observe(static_cast<Element>(t) + 7'000'000, t);
    if (t > kW) sizes.add(static_cast<double>(sampler.state_size()));
  }
  const double theory =
      static_cast<double>(kS) *
      (1.0 + std::log(static_cast<double>(kW) / static_cast<double>(kS)));
  EXPECT_LT(sizes.mean(), 2.0 * theory);
  EXPECT_GT(sizes.mean(), 0.4 * theory);
}

// --------------------------------------- distributed bottom-s sliding --

struct BsParams {
  std::uint32_t sites;
  std::size_t s;
  sim::Slot window;
  std::uint64_t domain;
  std::uint64_t seed;
};

class BottomSSliding : public ::testing::TestWithParam<BsParams> {};

TEST_P(BottomSSliding, ExactAtEverySlot) {
  const auto p = GetParam();
  core::SlidingSystemConfig config;
  config.num_sites = p.sites;
  config.window = p.window;
  config.sample_size = p.s;
  config.seed = p.seed;
  baseline::BottomSSlidingSystem system(config);
  const auto& h = system.hash_fn();

  std::unordered_map<Element, sim::Slot> last_arrival;
  util::Xoshiro256StarStar rng(p.seed + 50);

  class SlotSource final : public sim::ArrivalSource {
   public:
    SlotSource(sim::Slot slot, std::vector<std::pair<sim::NodeId, Element>> xs)
        : slot_(slot), xs_(std::move(xs)) {}
    std::optional<sim::Arrival> next() override {
      if (pos_ >= xs_.size()) return std::nullopt;
      const auto& [site, e] = xs_[pos_++];
      return sim::Arrival{slot_, site, e};
    }

   private:
    sim::Slot slot_;
    std::vector<std::pair<sim::NodeId, Element>> xs_;
    std::size_t pos_ = 0;
  };

  for (sim::Slot t = 0; t < 400; ++t) {
    std::vector<std::pair<sim::NodeId, Element>> xs;
    for (int i = 0; i < 4; ++i) {
      const Element e = 1 + rng.next_below(p.domain);
      xs.emplace_back(static_cast<sim::NodeId>(rng.next_below(p.sites)), e);
      last_arrival[e] = t;
    }
    SlotSource src(t, xs);
    system.run(src);

    std::vector<std::pair<std::uint64_t, Element>> in_window;
    for (const auto& [e, ta] : last_arrival) {
      if (ta + p.window > t) in_window.emplace_back(h(e), e);
    }
    std::sort(in_window.begin(), in_window.end());
    if (in_window.size() > p.s) in_window.resize(p.s);

    const auto got = system.coordinator().sample(t);
    ASSERT_EQ(got.size(), in_window.size()) << "slot " << t;
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].element, in_window[i].second)
          << "slot " << t << " pos " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, BottomSSliding,
                         ::testing::Values(BsParams{1, 3, 20, 50, 1},
                                           BsParams{4, 1, 30, 100, 2},
                                           BsParams{5, 5, 25, 80, 3},
                                           BsParams{10, 8, 50, 400, 4},
                                           BsParams{3, 4, 10, 15, 5}));

TEST(BottomSSliding, CostsMoreThanParallelCopiesButIsExact) {
  // The parallel-copies scheme (with-replacement) and the full-sync
  // bottom-s scheme at equal s: full-sync pays more messages; this is
  // the trade the abl7 bench quantifies. Sanity-check the direction.
  core::SlidingSystemConfig config;
  config.num_sites = 5;
  config.window = 64;
  config.sample_size = 4;
  config.seed = 9;
  baseline::BottomSSlidingSystem exact(config);
  core::SlidingSystem copies(config);
  for (auto* which : {static_cast<int*>(nullptr)}) {
    (void)which;
  }
  {
    stream::ChurnStream input(20000, 0.5, 500, 11);
    stream::SlottedFeeder src(input, 5, 5, 12);
    exact.run(src);
  }
  {
    stream::ChurnStream input(20000, 0.5, 500, 11);
    stream::SlottedFeeder src(input, 5, 5, 12);
    copies.run(src);
  }
  EXPECT_GT(exact.bus().counters().total, 0u);
  EXPECT_GT(copies.bus().counters().total, 0u);
}

// --------------------------------------------------------- HyperLogLog --

TEST(HyperLogLog, EstimatesWithinStandardError) {
  for (std::uint64_t true_d : {1000ULL, 50'000ULL, 500'000ULL}) {
    query::HyperLogLog hll(12, hash::HashFunction(hash::HashKind::kMurmur2, 4));
    for (std::uint64_t e = 1; e <= true_d; ++e) hll.add(util::mix64(e));
    const double est = hll.estimate();
    const double rel =
        (est - static_cast<double>(true_d)) / static_cast<double>(true_d);
    EXPECT_LT(std::abs(rel), 4.0 * hll.relative_error()) << "d=" << true_d;
  }
}

TEST(HyperLogLog, DuplicatesDoNotInflate) {
  query::HyperLogLog hll(10, hash::HashFunction(hash::HashKind::kMurmur2, 5));
  for (int rep = 0; rep < 100; ++rep) {
    for (std::uint64_t e = 1; e <= 2000; ++e) hll.add(util::mix64(e));
  }
  EXPECT_NEAR(hll.estimate(), 2000.0, 2000.0 * 4.0 * hll.relative_error());
}

TEST(HyperLogLog, SmallRangeIsAccurate) {
  query::HyperLogLog hll(12, hash::HashFunction(hash::HashKind::kMurmur2, 6));
  for (std::uint64_t e = 1; e <= 10; ++e) hll.add(util::mix64(e));
  EXPECT_NEAR(hll.estimate(), 10.0, 1.5);
}

TEST(HyperLogLog, MergeEqualsUnion) {
  hash::HashFunction h(hash::HashKind::kMurmur2, 7);
  query::HyperLogLog a(11, h), b(11, h), u(11, h);
  for (std::uint64_t e = 1; e <= 30000; ++e) {
    const Element x = util::mix64(e);
    if (e % 2 == 0) a.add(x);
    if (e % 3 == 0) b.add(x);
    if (e % 2 == 0 || e % 3 == 0) u.add(x);
  }
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.estimate(), u.estimate());
}

TEST(HyperLogLog, InvalidArgumentsThrow) {
  hash::HashFunction h(hash::HashKind::kMurmur2, 8);
  EXPECT_THROW(query::HyperLogLog(3, h), std::invalid_argument);
  EXPECT_THROW(query::HyperLogLog(19, h), std::invalid_argument);
  query::HyperLogLog a(10, h), b(11, h);
  EXPECT_THROW(a.merge(b), std::invalid_argument);
}

// ------------------------------------------------------ set operations --

core::BottomSSample sketch_of(const std::vector<Element>& elements,
                              const hash::HashFunction& h, std::size_t s) {
  core::BottomSSample out(s);
  for (Element e : elements) out.offer(e, h(e));
  return out;
}

TEST(SetOperations, RecoversOverlap) {
  // A = [1, 60k], B = [30k+1, 90k]: |U| = 90k, |I| = 30k, J = 1/3.
  hash::HashFunction h(hash::HashKind::kMurmur2, 21);
  std::vector<Element> a, b;
  for (std::uint64_t e = 1; e <= 60'000; ++e) a.push_back(util::mix64(e));
  for (std::uint64_t e = 30'001; e <= 90'000; ++e) b.push_back(util::mix64(e));
  const auto sa = sketch_of(a, h, 512);
  const auto sb = sketch_of(b, h, 512);
  const auto est = query::estimate_set_operations(sa, sb);
  EXPECT_NEAR(est.union_size, 90'000.0, 90'000.0 * 0.15);
  EXPECT_NEAR(est.jaccard, 1.0 / 3.0, 0.07);
  EXPECT_NEAR(est.intersection_size, 30'000.0, 30'000.0 * 0.3);
}

TEST(SetOperations, DisjointAndIdenticalExtremes) {
  hash::HashFunction h(hash::HashKind::kMurmur2, 22);
  std::vector<Element> a, b;
  for (std::uint64_t e = 1; e <= 20'000; ++e) a.push_back(util::mix64(e));
  for (std::uint64_t e = 100'001; e <= 120'000; ++e) b.push_back(util::mix64(e));
  const auto sa = sketch_of(a, h, 256);
  const auto sb = sketch_of(b, h, 256);
  EXPECT_NEAR(query::estimate_jaccard(sa, sb), 0.0, 0.02);
  EXPECT_DOUBLE_EQ(query::estimate_jaccard(sa, sa), 1.0);
  EXPECT_NEAR(query::estimate_union(sa, sb), 40'000.0, 40'000.0 * 0.2);
}

TEST(SetOperations, CapacityMismatchThrows) {
  core::BottomSSample a(8), b(16);
  EXPECT_THROW(query::estimate_set_operations(a, b), std::invalid_argument);
}

TEST(SetOperations, FromTwoDistributedCoordinators) {
  // Two independent deployments sharing a hash seed monitor overlapping
  // populations; their coordinator samples compose.
  core::SystemConfig config{4, 256, hash::HashKind::kMurmur2, 30};
  core::InfiniteSystem left(config), right(config);
  std::vector<Element> shared, only_left, only_right;
  for (std::uint64_t e = 1; e <= 10'000; ++e) shared.push_back(util::mix64(e));
  for (std::uint64_t e = 20'001; e <= 30'000; ++e) {
    only_left.push_back(util::mix64(e));
  }
  for (std::uint64_t e = 40'001; e <= 50'000; ++e) {
    only_right.push_back(util::mix64(e));
  }
  auto feed = [](core::InfiniteSystem& sys, std::vector<Element> elements) {
    stream::VectorStream replay(std::move(elements));
    stream::RoundRobinPartitioner src(replay, 4);
    sys.run(src);
  };
  auto concat = [](std::vector<Element> x, const std::vector<Element>& y) {
    x.insert(x.end(), y.begin(), y.end());
    return x;
  };
  feed(left, concat(shared, only_left));
  feed(right, concat(shared, only_right));
  const auto est = query::estimate_set_operations(
      left.coordinator().sample(), right.coordinator().sample());
  EXPECT_NEAR(est.union_size, 30'000.0, 30'000.0 * 0.2);
  EXPECT_NEAR(est.jaccard, 1.0 / 3.0, 0.08);
}

// ------------------------------------------------------ churn & files --

TEST(ChurnStream, FreshFractionControlsDistinctRate) {
  auto distinct_of = [](double fraction) {
    stream::ChurnStream s(30'000, fraction, 1000, 31);
    std::unordered_set<Element> d;
    while (auto e = s.next()) d.insert(*e);
    return d.size();
  };
  const auto low = distinct_of(0.05);
  const auto high = distinct_of(0.9);
  EXPECT_GT(high, 5 * low);
  EXPECT_NEAR(static_cast<double>(high), 0.9 * 30'000, 0.9 * 30'000 * 0.1);
}

TEST(ChurnStream, AllFreshIsAllDistinct) {
  stream::ChurnStream s(5000, 1.0, 10, 32);
  std::unordered_set<Element> d;
  while (auto e = s.next()) d.insert(*e);
  EXPECT_EQ(d.size(), 5000u);
}

TEST(ChurnStream, InvalidParamsThrow) {
  EXPECT_THROW(stream::ChurnStream(10, -0.1, 10, 1), std::invalid_argument);
  EXPECT_THROW(stream::ChurnStream(10, 1.1, 10, 1), std::invalid_argument);
  EXPECT_THROW(stream::ChurnStream(10, 0.5, 0, 1), std::invalid_argument);
}

TEST(FileStream, ReadsDecimalAndTokenLines) {
  const auto path =
      std::filesystem::temp_directory_path() / "dds_filestream_test.txt";
  {
    std::ofstream out(path);
    out << "12345\n";
    out << "10.0.0.1->10.0.0.2\n";
    out << "\n";             // blank: skipped
    out << "12345\r\n";      // CRLF tolerated
    out << "99999999999999999999999\n";  // overflows u64: hashed as token
  }
  stream::FileStream s(path);
  EXPECT_EQ(s.length(), 4u);
  EXPECT_EQ(s.numeric_lines(), 2u);
  EXPECT_EQ(s.token_lines(), 2u);
  const auto v = stream::drain(s);
  EXPECT_EQ(v[0], 12345u);
  EXPECT_EQ(v[0], v[2]);  // same decimal line -> same element
  std::filesystem::remove(path);
}

TEST(FileStream, MissingFileThrows) {
  EXPECT_THROW(stream::FileStream("/nonexistent/dds_nope.txt"),
               std::runtime_error);
}

// ---------------------------------------------------- crash recovery ---

TEST(CrashRecovery, SiteResetNeverCorruptsTheSample) {
  core::SystemConfig config{4, 8, hash::HashKind::kMurmur2, 41};
  core::InfiniteSystem system(config);
  std::vector<Element> all;
  util::Xoshiro256StarStar rng(42);
  sim::Slot slot = 0;

  for (int phase = 0; phase < 5; ++phase) {
    std::vector<sim::Arrival> arrivals;
    for (int i = 0; i < 500; ++i) {
      const Element e = util::mix64(1 + rng.next_below(3000));
      all.push_back(e);
      arrivals.push_back({slot++, static_cast<sim::NodeId>(rng.next_below(4)),
                          e});
    }
    ListSource src(arrivals);
    system.run(src);
    // Crash a rotating site between phases.
    system.site(static_cast<std::size_t>(phase) % 4).reset();
  }

  // Oracle: bottom-8 over everything fed, via the system's hash.
  std::set<std::pair<std::uint64_t, Element>> by_hash;
  std::unordered_set<Element> seen;
  for (Element e : all) {
    if (seen.insert(e).second) by_hash.emplace(system.hash_fn()(e), e);
  }
  std::vector<Element> expected;
  for (const auto& [hv, e] : by_hash) {
    if (expected.size() == 8) break;
    expected.push_back(e);
  }
  std::sort(expected.begin(), expected.end());
  auto got = system.coordinator().sample().elements();
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, expected);
}

TEST(CrashRecovery, ResetCostsExtraMessagesButBounded) {
  core::SystemConfig config{2, 4, hash::HashKind::kMurmur2, 43};
  core::InfiniteSystem stable(config), crashy(config);
  auto feed = [](core::InfiniteSystem& sys, std::uint64_t salt,
                 bool crash_between) {
    for (int phase = 0; phase < 4; ++phase) {
      stream::AllDistinctStream input(500, salt);  // same salt: same stream
      // Offset slots per phase to keep the runner monotone.
      class Shift final : public sim::ArrivalSource {
       public:
        Shift(sim::ArrivalSource& inner, sim::Slot offset)
            : inner_(inner), offset_(offset) {}
        std::optional<sim::Arrival> next() override {
          auto a = inner_.next();
          if (a) a->slot += offset_;
          return a;
        }

       private:
        sim::ArrivalSource& inner_;
        sim::Slot offset_;
      };
      stream::RoundRobinPartitioner part(input, 2);
      Shift src(part, phase * 1000);
      sys.run(src);
      if (crash_between) sys.site(0).reset();
    }
  };
  feed(stable, 7, false);
  feed(crashy, 7, true);
  const auto stable_msgs = stable.bus().counters().total;
  const auto crashy_msgs = crashy.bus().counters().total;
  EXPECT_GE(crashy_msgs, stable_msgs);
  // Each reset costs at most ~2 * s extra round trips before the site's
  // view re-converges (first few reports after the crash).
  EXPECT_LE(crashy_msgs, stable_msgs + 4 * (2 * 4 * 6));
  // And the samples agree regardless.
  EXPECT_EQ(stable.coordinator().sample().elements(),
            crashy.coordinator().sample().elements());
}

}  // namespace
}  // namespace dds
