// Fault-injection matrix: chaos plans driving the Deployment fault
// surface under the Supervisor's checkpoint/restore policy.
//
// The load-bearing results:
//   * Kill + respawn under a lossy wire — with checkpoint cadence
//     <= w/2 — leaves the exact sliding protocols (FullSync single-min
//     and FullSync bottom-s) per-slot BIT-IDENTICAL to an unsharded
//     fault-free run at every slot where all shards are alive, across
//     seeds. While a shard is down, queries degrade gracefully
//     (AnnotatedSample::complete == false, dead-letter traffic counted,
//     never a crash).
//   * Corrupted / truncated checkpoint images injected into the restore
//     transfer are caught by the integrity gate and survived via
//     retry-with-backoff; state converges regardless because recovery
//     ends with a site resync (exact for the full-sync family).
//   * A coordinator-ensemble crash restored from images — plus
//     candidate-set images for the sites — reconstructs the WHOLE
//     deployment losslessly: the restored run is bit-identical to the
//     original from the checkpoint slot onward.
//   * Network partitions (loss bursts on a shard's report links) heal
//     back to exactness after clear_link_model + resync.
//   * The infinite protocol recovers through the Supervisor's timeout
//     detection: restore + threshold-reset resync + re-exposure
//     converges to the unsharded answer.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "baseline/baseline_checkpoint.h"
#include "baseline/baseline_system.h"
#include "core/checkpoint.h"
#include "core/shard_router.h"
#include "core/supervisor.h"
#include "core/system.h"
#include "net/batcher.h"
#include "net/link_model.h"
#include "net/sim_network.h"
#include "sim/chaos.h"
#include "sim/sources.h"
#include "util/rng.h"

namespace dds {
namespace {

using sim::ChaosController;
using sim::ChaosHooks;
using sim::ChaosPlan;
using sim::SlotSource;
using treap::Candidate;

std::vector<std::pair<sim::NodeId, stream::Element>> random_slot(
    util::Xoshiro256StarStar& rng, std::uint32_t sites, std::uint64_t domain,
    int arrivals = 4) {
  std::vector<std::pair<sim::NodeId, stream::Element>> xs;
  for (int i = 0; i < arrivals; ++i) {
    xs.emplace_back(static_cast<sim::NodeId>(rng.next_below(sites)),
                    1 + rng.next_below(domain));
  }
  return xs;
}

template <typename System>
void feed(System& system, sim::Slot t,
          const std::vector<std::pair<sim::NodeId, stream::Element>>& xs) {
  SlotSource src(t, xs);
  system.run(src);
}

/// Loss-bursts every site->shard report link (the partition chaos hook).
template <typename System>
void partition_shard(System& system, net::SimNetwork& net, std::uint32_t shard,
                     double drop) {
  net::LinkConfig burst = net.config().link;
  burst.drop_rate = drop;
  for (std::uint32_t i = 0; i < system.num_sites(); ++i) {
    net.set_link_model(i, system.bus().coordinator_id(shard),
                       net::make_link_model(burst));
  }
}

template <typename System>
void heal_shard(System& system, net::SimNetwork& net, std::uint32_t shard) {
  for (std::uint32_t i = 0; i < system.num_sites(); ++i) {
    net.clear_link_model(i, system.bus().coordinator_id(shard));
  }
  system.resync_shard(shard);
  system.bus().finish();
}

// ---------------- kill/respawn on a lossy wire: exact protocols -------

/// The shared chaos drill: `chaotic` (3 shards, lossy wire) runs the
/// same stream as the fault-free unsharded `reference` while a scripted
/// plan kills/respawns shards (one respawn restoring through a
/// corrupted image, one through a truncated image) and loss-bursts a
/// shard's links. `compare(t)` runs at every slot where the chaotic
/// deployment is whole (all shards alive, no partition in force).
template <typename System, typename Compare>
void run_kill_respawn_drill(System& reference, System& chaotic,
                            std::uint32_t sites, sim::Slot window,
                            std::uint64_t stream_seed, Compare compare) {
  auto* net = dynamic_cast<net::SimNetwork*>(&chaotic.bus());
  ASSERT_NE(net, nullptr) << "chaotic deployment must ride the SimNetwork";

  core::SupervisorConfig sup_config;
  sup_config.checkpoint_cadence = window / 2;  // the acceptance cadence
  sup_config.auto_recover = false;             // respawns are scripted
  core::Supervisor<System> supervisor(chaotic, sup_config);

  ChaosPlan plan;
  plan.kill_at(40, 1).respawn_at(52, 1);
  plan.kill_at(90, 0).corrupt_image_at(90, 0).respawn_at(97, 0);
  plan.kill_at(130, 2).truncate_image_at(130, 2).respawn_at(145, 2);
  plan.partition_at(170, 1, /*drop=*/1.0).heal_at(178, 1);

  sim::Slot now = 0;
  std::uint32_t partitioned = 0;  // heal-pending shards
  ChaosHooks hooks;
  hooks.kill = [&](std::uint32_t shard) {
    chaotic.kill_shard(shard);
    supervisor.notify_killed(shard, now);
  };
  hooks.respawn = [&](std::uint32_t shard) { supervisor.recover(shard, now); };
  hooks.partition = [&](std::uint32_t shard, double drop) {
    partition_shard(chaotic, *net, shard, drop);
    ++partitioned;
  };
  hooks.heal = [&](std::uint32_t shard) {
    heal_shard(chaotic, *net, shard);
    --partitioned;
  };
  ChaosController controller(plan, std::move(hooks));
  supervisor.set_image_filter(
      [&](std::uint32_t shard, core::CheckpointImage& image) {
        controller.mangle(shard, image);
      });

  util::Xoshiro256StarStar rng(stream_seed);
  std::uint64_t whole_slots = 0;
  std::uint64_t degraded_slots = 0;
  for (sim::Slot t = 0; t < 210; ++t) {
    now = t;
    const auto xs = random_slot(rng, sites, /*domain=*/120);
    feed(reference, t, xs);
    feed(chaotic, t, xs);
    supervisor.on_slot(t);
    controller.step(t);
    if (chaotic.dead_shards() == 0 && partitioned == 0) {
      compare(t);
      ++whole_slots;
    } else {
      // Graceful degradation: merged queries still answer, annotated.
      const auto annotated = chaotic.sample_annotated(t);
      EXPECT_EQ(annotated.complete, chaotic.dead_shards() == 0) << "slot " << t;
      ++degraded_slots;
    }
  }
  EXPECT_TRUE(controller.done());
  EXPECT_GT(whole_slots, 150u);   // the drill is mostly-healthy...
  EXPECT_GT(degraded_slots, 20u); // ...but every outage window was seen
  EXPECT_GT(chaotic.dead_letters(), 0u);  // in-flight traffic was absorbed
  // Both sabotaged restores were caught by the integrity gate and
  // survived through the retry path.
  EXPECT_EQ(controller.stats().images_corrupted, 1u);
  EXPECT_EQ(controller.stats().images_truncated, 1u);
  EXPECT_EQ(supervisor.stats().restore_failures, 2u);
  EXPECT_EQ(supervisor.stats().recoveries, 3u);
  EXPECT_GE(supervisor.stats().checkpoints, 3u);
}

TEST(ChaosKillRespawn, FullSyncBitIdenticalWheneverWhole) {
  for (const std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    core::SlidingSystemConfig config;
    config.num_sites = 5;
    config.window = 24;
    config.seed = seed;
    baseline::FullSyncSlidingSystem reference(config);
    auto chaotic_config = config;
    chaotic_config.num_shards = 3;
    chaotic_config.network.link.latency = 1.0;
    chaotic_config.network.link.drop_rate = 0.15;
    chaotic_config.network.seed = seed * 7 + 1;
    baseline::FullSyncSlidingSystem chaotic(chaotic_config);
    run_kill_respawn_drill(reference, chaotic, 5, config.window,
                           seed * 31 + 11, [&](sim::Slot t) {
                             ASSERT_EQ(reference.coordinator().sample(t),
                                       chaotic.sample(t))
                                 << "seed " << seed << " slot " << t;
                           });
  }
}

TEST(ChaosKillRespawn, BottomSBitIdenticalWheneverWhole) {
  for (const std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    core::SlidingSystemConfig config;
    config.num_sites = 5;
    config.window = 24;
    config.sample_size = 3;
    config.seed = seed;
    baseline::BottomSSlidingSystem reference(config);
    auto chaotic_config = config;
    chaotic_config.num_shards = 3;
    chaotic_config.network.link.latency = 1.0;
    chaotic_config.network.link.drop_rate = 0.15;
    chaotic_config.network.seed = seed * 7 + 2;
    baseline::BottomSSlidingSystem chaotic(chaotic_config);
    run_kill_respawn_drill(reference, chaotic, 5, config.window,
                           seed * 31 + 12, [&](sim::Slot t) {
                             ASSERT_EQ(reference.coordinator().sample(t),
                                       chaotic.sample(t))
                                 << "seed " << seed << " slot " << t;
                           });
  }
}

// The lazy s-copy sliding scheme has no resync hook — it self-heals by
// expiry (bounded staleness). A kill + respawn must leave it crash-free
// and back to agreement with the unsharded run within one window.
TEST(ChaosKillRespawn, LazySlidingSelfHealsWithinOneWindow) {
  for (const std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    core::SlidingSystemConfig config;
    config.num_sites = 1;  // the lazy protocol's exact regime
    config.window = 20;
    config.sample_size = 2;
    config.seed = seed;
    core::SlidingSystem reference(config);
    auto chaotic_config = config;
    chaotic_config.num_shards = 2;
    core::SlidingSystem chaotic(chaotic_config);
    const sim::Slot kKill = 60;
    const sim::Slot kRespawn = 66;
    util::Xoshiro256StarStar rng(seed * 17 + 5);
    for (sim::Slot t = 0; t < 140; ++t) {
      const auto xs = random_slot(rng, 1, 60);
      feed(reference, t, xs);
      feed(chaotic, t, xs);
      if (t == kKill) chaotic.kill_shard(1);
      if (t == kRespawn) {
        chaotic.respawn_shard(1);
        chaotic.resync_shard(1);  // documented no-op for the lazy scheme
        chaotic.bus().finish();
      }
      if (t < kKill || t >= kRespawn + config.window) {
        ASSERT_EQ(reference.coordinator().sample(t), chaotic.sample(t))
            << "seed " << seed << " slot " << t;
      }
    }
  }
}

// ------------- coordinator crash-restore: lossless site failover ------

/// Captures coordinator-ensemble images plus one candidate-set image
/// per (site, shard copy), restores both into a fresh deployment, and
/// asserts the restored run is bit-identical to the original at EVERY
/// subsequent slot — the full lossless-failover property.
template <typename System, typename Query>
void run_lossless_failover(const core::SystemConfig& config,
                           std::uint64_t stream_seed, Query query) {
  System original(config);
  util::Xoshiro256StarStar rng(stream_seed);
  const sim::Slot kCrash = 100;
  for (sim::Slot t = 0; t < kCrash; ++t) {
    feed(original, t, random_slot(rng, config.num_sites, 90));
  }
  const auto images = core::checkpoint_ensemble(original);
  std::vector<std::vector<core::CheckpointImage>> site_images(
      config.num_sites);
  for (std::uint32_t i = 0; i < config.num_sites; ++i) {
    for (std::uint32_t j = 0; j < config.num_shards; ++j) {
      site_images[i].push_back(core::checkpoint_candidates(
          original.site(i, j).snapshot_candidates()));
    }
  }

  System restored(config);
  for (std::uint32_t i = 0; i < config.num_sites; ++i) {
    for (std::uint32_t j = 0; j < config.num_shards; ++j) {
      const auto parsed = core::parse_candidates(site_images[i][j]);
      ASSERT_TRUE(parsed.has_value());
      restored.site(i, j).restore_candidates(*parsed);
    }
  }
  ASSERT_TRUE(core::restore_ensemble(restored, images));

  ASSERT_EQ(query(original, kCrash), query(restored, kCrash));
  for (sim::Slot t = kCrash; t < kCrash + 60; ++t) {
    const auto xs = random_slot(rng, config.num_sites, 90);
    feed(original, t, xs);
    feed(restored, t, xs);
    ASSERT_EQ(query(original, t), query(restored, t)) << "slot " << t;
  }
}

TEST(ChaosCrashRestore, FullSyncLosslessFromImages) {
  for (const std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    core::SlidingSystemConfig config;
    config.num_sites = 4;
    config.window = 25;
    config.seed = seed;
    config.num_shards = 2;
    run_lossless_failover<baseline::FullSyncSlidingSystem>(
        config, seed * 13 + 3,
        [](const auto& system, sim::Slot t) { return system.sample(t); });
  }
}

TEST(ChaosCrashRestore, BottomSLosslessFromImages) {
  for (const std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    core::SlidingSystemConfig config;
    config.num_sites = 4;
    config.window = 25;
    config.sample_size = 3;
    config.seed = seed;
    config.num_shards = 2;
    run_lossless_failover<baseline::BottomSSlidingSystem>(
        config, seed * 13 + 4,
        [](const auto& system, sim::Slot t) { return system.sample(t); });
  }
}

// --------------- supervisor: corrupted-image retry + backoff ----------

TEST(ChaosSupervisor, CorruptedTransferSurvivedByRetryWithBackoff) {
  core::SlidingSystemConfig config;
  config.num_sites = 4;
  config.window = 20;
  baseline::FullSyncSlidingSystem reference(config);
  auto chaotic_config = config;
  chaotic_config.num_shards = 2;
  baseline::FullSyncSlidingSystem chaotic(chaotic_config);
  core::SupervisorConfig sup_config;
  sup_config.checkpoint_cadence = 8;
  sup_config.auto_recover = false;
  core::Supervisor<baseline::FullSyncSlidingSystem> supervisor(chaotic,
                                                               sup_config);
  ChaosPlan plan;
  plan.corrupt_image_at(48, 1).truncate_image_at(48, 1);
  ChaosController controller(plan, ChaosHooks{});
  supervisor.set_image_filter(
      [&](std::uint32_t shard, core::CheckpointImage& image) {
        controller.mangle(shard, image);
      });
  util::Xoshiro256StarStar rng(41);
  for (sim::Slot t = 0; t < 50; ++t) {
    const auto xs = random_slot(rng, 4, 80);
    feed(reference, t, xs);
    feed(chaotic, t, xs);
    supervisor.on_slot(t);
    controller.step(t);
  }
  chaotic.kill_shard(1);
  supervisor.notify_killed(1, 49);
  EXPECT_TRUE(supervisor.recover(1, 49));  // restored — on the 2nd try
  EXPECT_EQ(supervisor.stats().restores_attempted, 2u);
  EXPECT_EQ(supervisor.stats().restore_failures, 1u);
  EXPECT_EQ(supervisor.stats().recoveries, 1u);
  EXPECT_EQ(supervisor.stats().backoff_slots,
            static_cast<std::uint64_t>(sup_config.backoff_base));
  EXPECT_EQ(controller.stats().images_corrupted, 1u);
  EXPECT_EQ(controller.stats().images_truncated, 1u);
  for (sim::Slot t = 50; t < 80; ++t) {
    const auto xs = random_slot(rng, 4, 80);
    feed(reference, t, xs);
    feed(chaotic, t, xs);
    ASSERT_EQ(reference.coordinator().sample(t), chaotic.sample(t))
        << "slot " << t;
  }
}

TEST(ChaosSupervisor, ExhaustedRetriesDegradeToResyncAndStillConverge) {
  core::SlidingSystemConfig config;
  config.num_sites = 4;
  config.window = 20;
  baseline::FullSyncSlidingSystem reference(config);
  auto chaotic_config = config;
  chaotic_config.num_shards = 2;
  baseline::FullSyncSlidingSystem chaotic(chaotic_config);
  core::SupervisorConfig sup_config;
  sup_config.checkpoint_cadence = 8;
  sup_config.max_restore_attempts = 3;
  sup_config.auto_recover = false;
  core::Supervisor<baseline::FullSyncSlidingSystem> supervisor(chaotic,
                                                               sup_config);
  // Every transfer is mangled: restore can never succeed.
  supervisor.set_image_filter(
      [](std::uint32_t, core::CheckpointImage& image) { image.clear(); });
  util::Xoshiro256StarStar rng(43);
  for (sim::Slot t = 0; t < 40; ++t) {
    const auto xs = random_slot(rng, 4, 80);
    feed(reference, t, xs);
    feed(chaotic, t, xs);
    supervisor.on_slot(t);
  }
  chaotic.kill_shard(0);
  EXPECT_FALSE(supervisor.recover(0, 39));  // degraded: resync-only
  EXPECT_EQ(supervisor.stats().degraded_recoveries, 1u);
  // An empty image never even costs a restore attempt loop failure
  // beyond the verify gate; what matters is convergence:
  for (sim::Slot t = 40; t < 70; ++t) {
    const auto xs = random_slot(rng, 4, 80);
    feed(reference, t, xs);
    feed(chaotic, t, xs);
    ASSERT_EQ(reference.coordinator().sample(t), chaotic.sample(t))
        << "slot " << t;
  }
}

// ----------------- supervisor: timeout detection (infinite) -----------

TEST(ChaosSupervisor, InfiniteProtocolAutoRecoversAndReconverges) {
  for (const std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    core::SystemConfig config;
    config.num_sites = 4;
    config.sample_size = 8;
    config.seed = seed;
    core::InfiniteSystem reference(config);
    auto chaotic_config = config;
    chaotic_config.num_shards = 2;
    core::InfiniteSystem chaotic(chaotic_config);
    core::SupervisorConfig sup_config;
    sup_config.checkpoint_cadence = 10;
    sup_config.detect_after = 2;
    sup_config.auto_recover = true;
    core::Supervisor<core::InfiniteSystem> supervisor(chaotic, sup_config);
    util::Xoshiro256StarStar rng(seed * 19 + 7);
    const std::uint64_t kDomain = 400;
    for (sim::Slot t = 0; t < 120; ++t) {
      const auto xs = random_slot(rng, 4, kDomain);
      feed(reference, t, xs);
      feed(chaotic, t, xs);
      if (t == 60) {
        chaotic.kill_shard(1);
        supervisor.notify_killed(1, t);
      }
      supervisor.on_slot(t);  // detects at t = 62 and recovers
      if (t == 61) {
        EXPECT_EQ(chaotic.dead_shards(), 1u);
      }
      if (t >= 62) {
        EXPECT_EQ(chaotic.dead_shards(), 0u) << "slot " << t;
      }
    }
    EXPECT_EQ(supervisor.stats().recoveries, 1u);
    EXPECT_GE(supervisor.stats().last_recovery_latency, 2u);
    // Deterministic re-exposure: one pass over the domain re-offers
    // every element (sites re-report under their reset thresholds), so
    // both systems end at the exact global bottom-s.
    sim::Slot t = 120;
    for (std::uint64_t e = 1; e <= kDomain; ++t) {
      std::vector<std::pair<sim::NodeId, stream::Element>> xs;
      for (int i = 0; i < 8 && e <= kDomain; ++i, ++e) {
        xs.emplace_back(static_cast<sim::NodeId>(e % 4), e);
      }
      feed(reference, t, xs);
      feed(chaotic, t, xs);
    }
    EXPECT_EQ(reference.sample().elements(), chaotic.sample().elements())
        << "seed " << seed;
  }
}

// --------------------------- elastic topology -------------------------

TEST(ElasticTopology, GrowAndShrinkStayBitIdenticalOnBatchedWire) {
  for (const std::uint64_t seed : {1ULL, 2ULL}) {
    core::SlidingSystemConfig config;
    config.num_sites = 5;
    config.window = 20;
    config.sample_size = 2;
    config.seed = seed;
    baseline::BottomSSlidingSystem reference(config);
    auto elastic_config = config;
    elastic_config.num_shards = 2;
    elastic_config.elastic = true;
    elastic_config.network.link.latency = 1.0;
    elastic_config.network.batch_interval = 3;
    elastic_config.network.seed = seed + 40;
    baseline::BottomSSlidingSystem elastic(elastic_config);
    auto* net = dynamic_cast<net::SimNetwork*>(&elastic.bus());
    ASSERT_NE(net, nullptr);
    util::Xoshiro256StarStar rng(seed * 23 + 9);
    for (sim::Slot t = 0; t < 120; ++t) {
      const auto xs = random_slot(rng, 5, 100, /*arrivals=*/5);
      feed(reference, t, xs);
      feed(elastic, t, xs);
      if (t == 40) {
        elastic.add_shard();  // 2 -> 3, live
        EXPECT_EQ(elastic.num_shards(), 3u);
      }
      if (t == 80) {
        elastic.remove_shard();  // 3 -> 2, live
        EXPECT_EQ(elastic.num_shards(), 2u);
      }
      ASSERT_EQ(reference.coordinator().sample(t), elastic.sample(t))
          << "seed " << seed << " slot " << t;
    }
    // The resize flushed (not dropped) every buffered report.
    EXPECT_EQ(net->stranded_messages(), 0u);
  }
}

TEST(ElasticTopology, SupervisorDrainImageCapturesDepartingShard) {
  core::SlidingSystemConfig config;
  config.num_sites = 4;
  config.window = 20;
  config.sample_size = 2;
  config.num_shards = 3;
  baseline::BottomSSlidingSystem system(config);
  core::Supervisor<baseline::BottomSSlidingSystem> supervisor(system);
  util::Xoshiro256StarStar rng(29);
  for (sim::Slot t = 0; t < 60; ++t) {
    feed(system, t, random_slot(rng, 4, 80));
  }
  const auto before = baseline::checkpoint(system.coordinator(2));
  const auto drained = supervisor.drain_and_remove_shard();
  EXPECT_EQ(drained, before);  // the image is the shard's final state
  EXPECT_EQ(system.num_shards(), 2u);
  const auto parsed = baseline::parse_bottom_s_checkpoint(drained);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->sample_size, config.sample_size);
}

TEST(ElasticTopology, ResizeMovesOnlyItsShareOfKeys) {
  const std::uint64_t kSalt = 77;
  core::ShardRouter two(2, kSalt);
  core::ShardRouter grown(2, kSalt);
  grown.add_shard();
  core::ShardRouter three(3, kSalt);
  util::SplitMix64 gen(5);
  std::uint64_t moved = 0;
  const std::uint64_t kKeys = 20000;
  for (std::uint64_t i = 0; i < kKeys; ++i) {
    const stream::Element e = gen.next();
    // Growing the ring == building the bigger ring from scratch (ring
    // points are position-stable), so a later shrink is an exact undo.
    ASSERT_EQ(grown.owner(e), three.owner(e));
    if (two.owner(e) != grown.owner(e)) ++moved;
  }
  // ~1/3 of keys move to the new shard; nothing shuffles among the
  // survivors beyond ring granularity. Generous band around 1/3.
  EXPECT_GT(moved, kKeys / 6);
  EXPECT_LT(moved, kKeys / 2);
  grown.remove_last_shard();
  for (std::uint64_t i = 0; i < 2000; ++i) {
    const stream::Element e = gen.next();
    ASSERT_EQ(grown.owner(e), two.owner(e));
  }
  EXPECT_THROW(core::ShardRouter(1, kSalt).remove_last_shard(),
               std::logic_error);
}

TEST(ElasticTopology, LazyProtocolWithoutHooksRefusesResize) {
  core::SlidingSystemConfig config;
  config.num_sites = 2;
  config.num_shards = 2;
  core::SlidingSystem system(config);  // lazy scheme: no migration hooks
  EXPECT_THROW(system.add_shard(), std::logic_error);
}

TEST(ElasticTopology, ResizeWithDeadShardRefused) {
  core::SlidingSystemConfig config;
  config.num_sites = 2;
  config.num_shards = 2;
  baseline::BottomSSlidingSystem system(config);
  system.kill_shard(1);
  EXPECT_THROW(system.add_shard(), std::logic_error);
  system.respawn_shard(1);
  system.resync_shard(1);
  system.bus().finish();
  EXPECT_NO_THROW(system.add_shard());
}

// ----------------------- batcher resize safety ------------------------

TEST(Batcher, RebindFlushesSurvivorsAndCountsStranded) {
  net::Batcher batcher(/*num_sites=*/2, /*num_coordinators=*/3,
                       /*interval=*/10, /*max_msgs=*/64);
  auto report = [](sim::NodeId site, sim::NodeId coordinator) {
    sim::Message msg;
    msg.from = site;
    msg.to = coordinator;
    msg.type = sim::MsgType::kSlidingReport;
    return msg;
  };
  batcher.add(report(0, 2), 0);  // shard 0 — survives
  batcher.add(report(1, 3), 0);  // shard 1 — survives
  batcher.add(report(0, 4), 0);  // shard 2 — removed below
  batcher.add(report(1, 4), 0);  // shard 2 — removed below
  const auto survivors = batcher.rebind(2);
  ASSERT_EQ(survivors.size(), 2u);
  for (const auto& batch : survivors) {
    for (const auto& msg : batch.msgs) EXPECT_LT(msg.to, 4u);
  }
  EXPECT_EQ(batcher.stranded(), 2u);  // only the quiesce-skipping caller
  // Growing strands nothing and keeps nothing buffered behind.
  batcher.add(report(0, 2), 0);
  const auto regrown = batcher.rebind(3);
  ASSERT_EQ(regrown.size(), 1u);
  EXPECT_EQ(batcher.stranded(), 2u);
  EXPECT_EQ(batcher.buffered_for_shard(2), 0u);
}

// -------------------- checkpoint image hardening ----------------------

TEST(CheckpointHardening, EveryImageKindRejectsDamageUntouched) {
  core::SlidingSystemConfig config;
  config.num_sites = 3;
  config.window = 15;
  config.sample_size = 2;
  baseline::BottomSSlidingSystem bottoms(config);
  baseline::FullSyncSlidingSystem fullsync(config);
  util::Xoshiro256StarStar rng(47);
  for (sim::Slot t = 0; t < 40; ++t) {
    const auto xs = random_slot(rng, 3, 50);
    feed(bottoms, t, xs);
    feed(fullsync, t, xs);
  }
  const auto damage_cases = [](core::CheckpointImage good) {
    std::vector<core::CheckpointImage> bad;
    auto truncated = good;
    truncated.pop_back();
    bad.push_back(truncated);                       // truncated tail
    bad.push_back({good.begin(), good.begin() + 8});  // truncated body
    auto flipped = good;
    flipped[flipped.size() / 2] ^= 0x40;
    bad.push_back(flipped);                         // bit-flipped body
    auto wrong_magic = good;
    wrong_magic[0] ^= 0xFF;
    bad.push_back(wrong_magic);                     // not ours
    bad.push_back({});                              // empty
    auto trailing = good;
    trailing.push_back(0);
    bad.push_back(trailing);                        // trailing junk
    return bad;
  };

  const auto fs_image = baseline::checkpoint(fullsync.coordinator());
  EXPECT_TRUE(core::verify_checkpoint_image(fs_image));
  const auto fs_before = fullsync.coordinator().sample(40);
  for (const auto& bad : damage_cases(fs_image)) {
    EXPECT_FALSE(core::verify_checkpoint_image(bad));
    EXPECT_EQ(baseline::parse_fullsync_checkpoint(bad), std::nullopt);
    EXPECT_FALSE(baseline::restore_into(fullsync.coordinator_mut(), bad));
    EXPECT_EQ(fullsync.coordinator().sample(40), fs_before);  // untouched
  }

  const auto bs_image = baseline::checkpoint(bottoms.coordinator());
  EXPECT_TRUE(core::verify_checkpoint_image(bs_image));
  const auto bs_before = bottoms.coordinator().sample(40);
  for (const auto& bad : damage_cases(bs_image)) {
    EXPECT_FALSE(core::verify_checkpoint_image(bad));
    EXPECT_EQ(baseline::parse_bottom_s_checkpoint(bad), std::nullopt);
    EXPECT_FALSE(baseline::restore_into(bottoms.coordinator_mut(), bad));
    EXPECT_EQ(bottoms.coordinator().sample(40), bs_before);
  }

  const auto cand_image = core::checkpoint_candidates(
      bottoms.site(0).snapshot_candidates());
  EXPECT_TRUE(core::verify_checkpoint_image(cand_image));
  for (const auto& bad : damage_cases(cand_image)) {
    EXPECT_FALSE(core::verify_checkpoint_image(bad));
    EXPECT_EQ(core::parse_candidates(bad), std::nullopt);
  }
}

TEST(CheckpointHardening, VersionOneImagesStillParse) {
  // Hand-build a v1 candidate image (pre-checksum format): the parser
  // must accept it — old images on disk stay restorable.
  core::CheckpointImage v1;
  core::ckpt::put_u64(v1, core::ckpt::kCandidateMagic);
  core::ckpt::put_u64(v1, 1);  // version 1: no trailing checksum
  core::ckpt::put_u64(v1, 2);  // count
  for (const auto& c :
       {Candidate{7, 700, 30}, Candidate{9, 900, 31}}) {
    core::ckpt::put_u64(v1, c.element);
    core::ckpt::put_u64(v1, c.hash);
    core::ckpt::put_u64(v1, c.expiry);
  }
  EXPECT_TRUE(core::verify_checkpoint_image(v1));
  const auto parsed = core::parse_candidates(v1);
  ASSERT_TRUE(parsed.has_value());
  ASSERT_EQ(parsed->size(), 2u);
  EXPECT_EQ((*parsed)[0], (Candidate{7, 700, 30}));
  EXPECT_EQ((*parsed)[1], (Candidate{9, 900, 31}));
  // An unknown version is rejected outright.
  core::CheckpointImage v9 = v1;
  v9[8] = 9;  // low byte of the version word
  EXPECT_FALSE(core::verify_checkpoint_image(v9));
  EXPECT_EQ(core::parse_candidates(v9), std::nullopt);
}

// ----------------------- chaos x speculation --------------------------

TEST(ChaosSpeculation, KillRespawnBetweenSpeculativeWavesStaysBitIdentical) {
  // The speculative engine's per-site rollback state (wave-start
  // snapshots, playout queue, journals) is per-run(): a shard killed and
  // respawned between feeds must not leak any speculative state into
  // later waves. The pin: the whole chaotic schedule — kill at slot 60
  // (reply traffic dead-lettered), respawn + resync at slot 80, then a
  // full-domain re-exposure pass — is bit-identical between the serial
  // engine and the speculative sharded engine on the same sub-slot wire.
  for (const std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    auto run_once = [&](std::uint32_t threads) {
      core::SystemConfig config;
      config.num_sites = 8;
      config.sample_size = 8;
      config.seed = seed;
      config.num_shards = 2;
      config.num_threads = threads;
      config.speculation_window = 32;
      config.network.link.latency = 0.25;
      core::InfiniteSystem system(config);
      if (threads > 1) {
        EXPECT_STREQ(system.runner().mode_reason(),
                     "sharded: speculative lockstep");
      }
      util::Xoshiro256StarStar rng(seed * 19 + 7);
      const std::uint64_t kDomain = 400;
      for (sim::Slot t = 0; t < 120; ++t) {
        feed(system, t, random_slot(rng, 8, kDomain));
        if (t == 60) system.kill_shard(1);
        if (t == 80) {
          system.respawn_shard(1);
          system.resync_shard(1);
        }
      }
      sim::Slot t = 120;
      for (std::uint64_t e = 1; e <= kDomain; ++t) {
        std::vector<std::pair<sim::NodeId, stream::Element>> xs;
        for (int i = 0; i < 8 && e <= kDomain; ++i, ++e) {
          xs.emplace_back(static_cast<sim::NodeId>(e % 8), e);
        }
        feed(system, t, xs);
      }
      std::vector<std::uint64_t> fp = system.sample().elements();
      fp.push_back(system.dead_letters());
      fp.push_back(system.bus().counters().total);
      fp.push_back(system.bus().counters().bytes);
      return fp;
    };
    EXPECT_EQ(run_once(1), run_once(4)) << "seed " << seed;
  }
}

TEST(CheckpointHardening, CandidateImagesRoundTrip) {
  const std::vector<Candidate> items{
      {1, 100, 10}, {2, 50, 12}, {3, 75, 9}};
  const auto image = core::checkpoint_candidates(items);
  const auto parsed = core::parse_candidates(image);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, items);
  const auto empty_image = core::checkpoint_candidates({});
  const auto empty_parsed = core::parse_candidates(empty_image);
  ASSERT_TRUE(empty_parsed.has_value());
  EXPECT_TRUE(empty_parsed->empty());
}

}  // namespace
}  // namespace dds
