// Boundary and degenerate-input tests across modules: the cases a
// downstream user hits first when wiring the library into something
// unusual.
#include <gtest/gtest.h>

#include <unordered_set>
#include <vector>

#include "baseline/baseline_system.h"
#include "core/system.h"
#include "core/windowed_bottom_s.h"
#include "query/estimators.h"
#include "stream/churn.h"
#include "stream/generators.h"
#include "stream/partitioner.h"
#include "treap/s_dominance_set.h"
#include "util/stats.h"

namespace dds {
namespace {

using stream::Element;

// ----------------------------------------------------------- streams --

TEST(StreamEdge, ZeroLengthStreamsAreEmpty) {
  stream::UniformStream u(0, 10, 1);
  EXPECT_EQ(u.next(), std::nullopt);
  stream::AllDistinctStream a(0, 1);
  EXPECT_EQ(a.next(), std::nullopt);
  stream::ZipfStream z(0, 10, 1.0, 1);
  EXPECT_EQ(z.next(), std::nullopt);
  stream::ChurnStream c(0, 0.5, 10, 1);
  EXPECT_EQ(c.next(), std::nullopt);
}

TEST(StreamEdge, DomainOfOneEmitsOneIdentity) {
  stream::UniformStream u(100, 1, 2);
  std::unordered_set<Element> d;
  while (auto e = u.next()) d.insert(*e);
  EXPECT_EQ(d.size(), 1u);
  stream::ZipfStream z(100, 1, 1.5, 3);
  d.clear();
  while (auto e = z.next()) d.insert(*e);
  EXPECT_EQ(d.size(), 1u);
}

TEST(StreamEdge, ZipfExtremeAlphas) {
  // Very flat (alpha -> 0+) behaves like uniform; very steep
  // concentrates on rank 1.
  stream::ZipfStream flat(20000, 1000, 0.05, 4);
  std::unordered_set<Element> d_flat;
  for (int i = 0; i < 20000; ++i) d_flat.insert(*flat.next());
  EXPECT_GT(d_flat.size(), 900u);

  stream::ZipfStream steep(20000, 1000, 4.0, 5);
  std::uint64_t rank_one = 0;
  for (int i = 0; i < 20000; ++i) {
    if (steep.next_rank() == 1) ++rank_one;
  }
  EXPECT_GT(rank_one, 18000u);  // zeta(4) ~ 1.0823 => P(1) ~ 92%
}

TEST(StreamEdge, ChurnRecencySmallerThanWorkingSet) {
  // recency = 1: non-fresh draws always replay the latest identity.
  stream::ChurnStream c(1000, 0.5, 1, 6);
  std::unordered_set<Element> d;
  while (auto e = c.next()) d.insert(*e);
  EXPECT_GT(d.size(), 300u);  // ~ half fresh
  EXPECT_LT(d.size(), 700u);
}

// --------------------------------------------------------- protocols --

TEST(ProtocolEdge, SampleSizeOfOne) {
  core::SystemConfig config{3, 1, hash::HashKind::kMurmur2, 7};
  core::InfiniteSystem system(config);
  std::vector<Element> elements;
  for (Element e = 1; e <= 200; ++e) elements.push_back(e);
  stream::VectorStream replay(elements);
  stream::RoundRobinPartitioner source(replay, 3);
  system.run(source);
  ASSERT_EQ(system.coordinator().sample().size(), 1u);
  // The single sample is the global min-hash element.
  Element argmin = 1;
  for (Element e = 1; e <= 200; ++e) {
    if (system.hash_fn()(e) < system.hash_fn()(argmin)) argmin = e;
  }
  EXPECT_EQ(system.coordinator().sample().elements().front(), argmin);
}

TEST(ProtocolEdge, SampleLargerThanUniverse) {
  core::SystemConfig config{2, 1000, hash::HashKind::kMurmur2, 8};
  core::InfiniteSystem system(config);
  std::vector<Element> elements{5, 6, 7, 5, 6, 7, 5};
  stream::VectorStream replay(elements);
  stream::RoundRobinPartitioner source(replay, 2);
  system.run(source);
  EXPECT_EQ(system.coordinator().sample().size(), 3u);
  EXPECT_DOUBLE_EQ(query::estimate_distinct(system.coordinator().sample()),
                   3.0);
}

TEST(ProtocolEdge, SingleSiteSingleElement) {
  core::SystemConfig config{1, 4, hash::HashKind::kMurmur2, 9};
  core::InfiniteSystem system(config);
  std::vector<Element> elements(100, Element{42});
  stream::VectorStream replay(elements);
  stream::RoundRobinPartitioner source(replay, 1);
  system.run(source);
  EXPECT_EQ(system.coordinator().sample().elements(),
            std::vector<Element>{42});
  // First arrival: report + reply. Repeats: h(42) < u (=kHashMax, sample
  // not full) — the pseudocode keeps reporting when the sample is not
  // full, since u never tightened. Each costs a round trip.
  EXPECT_EQ(system.bus().counters().total % 2, 0u);
}

TEST(ProtocolEdge, SuppressionStopsNotFullRepeats) {
  // Same stream with suppression: exactly one round trip.
  core::SystemConfig config{1, 4, hash::HashKind::kMurmur2, 9};
  core::InfiniteSystem system(config, false, /*suppress_duplicates=*/true);
  std::vector<Element> elements(100, Element{42});
  stream::VectorStream replay(elements);
  stream::RoundRobinPartitioner source(replay, 1);
  system.run(source);
  EXPECT_EQ(system.bus().counters().total, 2u);
}

TEST(ProtocolEdge, WindowOfOneSlotKeepsOnlyCurrentSlot) {
  core::SlidingSystemConfig config;
  config.num_sites = 1;
  config.window = 1;
  config.seed = 10;
  core::SlidingSystem system(config);
  class OneShot final : public sim::ArrivalSource {
   public:
    OneShot(sim::Slot t, Element e) : a_{t, 0, e} {}
    std::optional<sim::Arrival> next() override {
      if (done_) return std::nullopt;
      done_ = true;
      return a_;
    }

   private:
    sim::Arrival a_;
    bool done_ = false;
  };
  OneShot first(0, 11);
  system.run(first);
  EXPECT_TRUE(system.coordinator().copy(0).sample(0).has_value());
  OneShot second(1, 12);
  system.run(second);
  const auto got = system.coordinator().copy(0).sample(1);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->element, 12u);  // 11 expired with the slot
  system.runner().advance_to_slot(2);
  EXPECT_FALSE(system.coordinator().copy(0).sample(2).has_value());
}

TEST(ProtocolEdge, WindowedBottomSWithSLargerThanWindowContent) {
  core::WindowedBottomSSampler sampler(
      50, 10, hash::HashFunction(hash::HashKind::kMurmur2, 11));
  sampler.observe(1, 0);
  sampler.observe(2, 0);
  const auto got = sampler.sample(0);
  EXPECT_EQ(got.size(), 2u);  // fewer than s in window: return them all
}

TEST(ProtocolEdge, BroadcastWithSingleSiteDegeneratesGracefully) {
  core::SystemConfig config{1, 5, hash::HashKind::kMurmur2, 12};
  baseline::BroadcastSystem system(config);
  stream::AllDistinctStream input(300, 13);
  stream::RoundRobinPartitioner source(input, 1);
  system.run(source);
  EXPECT_EQ(system.coordinator().sample().size(), 5u);
  const auto& c = system.bus().counters();
  // Broadcast to k=1 site == a reply; totals stay modest.
  EXPECT_LT(c.total,
            2.5 * util::infinite_window_upper_bound(1, 5, 300));
}

// --------------------------------------------------------- structures --

TEST(StructureEdge, SDominanceBatchArrivalsSameSlot) {
  // Multiple arrivals in one slot share the same expiry; ties must not
  // break the staircase or dominance judgements.
  treap::SDominanceSet set(2);
  hash::HashFunction h(hash::HashKind::kMurmur2, 14);
  for (Element e = 1; e <= 30; ++e) set.observe(e, h(e), 100);
  EXPECT_TRUE(set.check_invariants());
  // Same expiry => nothing dominates anything: all 30 retained.
  EXPECT_EQ(set.size(), 30u);
  // Next slot's arrivals prune everything except the bottom-2 plus
  // themselves.
  for (Element e = 31; e <= 32; ++e) set.observe(e, h(e), 101);
  EXPECT_TRUE(set.check_invariants());
  const auto bottom = set.bottom_s();
  EXPECT_EQ(bottom.size(), 2u);
}

TEST(StructureEdge, DominanceSetSameElementSameSlotIdempotent) {
  treap::DominanceSet set;
  set.observe(1, 500, 10);
  set.observe(1, 500, 10);
  set.observe(1, 500, 10);
  EXPECT_EQ(set.size(), 1u);
  EXPECT_TRUE(set.check_invariants());
}

TEST(StructureEdge, EstimatorsOnSingletonSample) {
  core::BottomSSample sample(1);
  sample.offer(9, hash::kHashMax / 2);
  // Full singleton sample: (s-1)/u = 0 — degenerate by design; the
  // estimator needs s >= 2 to be meaningful, and reports 0 rather than
  // nonsense.
  EXPECT_DOUBLE_EQ(query::estimate_distinct(sample), 0.0);
  EXPECT_DOUBLE_EQ(query::estimate_fraction_where(
                       sample, [](Element) { return true; }),
                   1.0);
}

}  // namespace
}  // namespace dds
