// Differential fuzz for the batched ingest hot path: for every
// protocol, batched ingest (SystemConfig::ingest_batch > 1) must be
// EXACTLY equivalent to element-at-a-time ingest — same final samples
// and estimates, same wire counters, and the same message trace bit
// for bit (every field of every sim::Message, in order). The contract
// making this hold is the per-element drain boundary documented at
// sim::StreamNode::on_element_batch; these tests are the enforcement.
//
// Sweep: five protocols x batch widths {4, 7, 8, 64} x three stream
// seeds, each against the batch-1 reference, on the zero-delay Bus —
// plus a SimNetwork (latency + jitter) variant, where delivery order is
// scheduler-driven and the trace must STILL be identical because the
// send sequence (which seeds the scheduler) is.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "baseline/baseline_system.h"
#include "core/system.h"
#include "sim/sources.h"
#include "util/rng.h"

namespace dds {
namespace {

bool same_message(const sim::Message& a, const sim::Message& b) {
  return a.from == b.from && a.to == b.to && a.type == b.type &&
         a.instance == b.instance && a.a == b.a && a.b == b.b && a.c == b.c;
}

/// First index where the traces differ, or -1 when identical.
std::ptrdiff_t trace_diff(const std::vector<sim::Message>& a,
                          const std::vector<sim::Message>& b) {
  const std::size_t n = std::min(a.size(), b.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (!same_message(a[i], b[i])) return static_cast<std::ptrdiff_t>(i);
  }
  if (a.size() != b.size()) return static_cast<std::ptrdiff_t>(n);
  return -1;
}

/// A bursty multi-site arrival list with duplicates (repeats exercise
/// the suppression/refresh paths, bursts exercise real batch windows).
std::vector<sim::Arrival> make_arrivals(std::uint64_t seed, std::uint32_t sites,
                                        sim::Slot slots,
                                        std::uint64_t domain) {
  util::Xoshiro256StarStar rng(seed);
  std::vector<sim::Arrival> arrivals;
  for (sim::Slot t = 0; t < slots; ++t) {
    const std::uint64_t count =
        rng.next_below(100) < 10 ? 16 : 1 + rng.next_below(5);
    // Bias consecutive arrivals toward one site so the engine's
    // same-(slot, site) gather actually forms multi-element batches.
    sim::NodeId site = static_cast<sim::NodeId>(rng.next_below(sites));
    for (std::uint64_t i = 0; i < count; ++i) {
      if (rng.next_below(4) == 0) {
        site = static_cast<sim::NodeId>(rng.next_below(sites));
      }
      arrivals.push_back(
          {t, site, util::mix64(1 + rng.next_below(domain))});
    }
  }
  return arrivals;
}

/// Runs one deployment over `arrivals` with the given batch width and
/// returns (message trace, final-state digest). `probe` serializes the
/// protocol's samples/estimates into the digest.
template <typename System, typename Probe>
std::pair<std::vector<sim::Message>, std::string> run_once(
    core::SystemConfig config, const std::vector<sim::Arrival>& arrivals,
    std::uint32_t batch, Probe&& probe,
    const typename System::Options& options = {}) {
  config.ingest_batch = batch;
  System system(config, options);
  std::vector<sim::Message> trace;
  system.bus().set_tap([&trace](const sim::Message& m) { trace.push_back(m); });
  sim::ListSource source(arrivals);
  const std::uint64_t processed = system.run(source);
  std::ostringstream digest;
  digest << "processed=" << processed;
  const auto& wire = system.bus().counters();
  digest << " msgs=" << wire.total << " s2c=" << wire.site_to_coordinator
         << " c2s=" << wire.coordinator_to_site << " bytes=" << wire.bytes;
  digest << " state=" << system.total_site_state();
  probe(system, digest);
  return {std::move(trace), digest.str()};
}

/// The shared sweep: batch-1 reference vs batch {4, 7, 8, 64}, three
/// seeds, asserting identical digests and bit-identical traces.
template <typename System, typename Probe>
void sweep(const core::SystemConfig& base, Probe&& probe,
           const typename System::Options& options = {}) {
  constexpr std::uint32_t kBatches[] = {4, 7, 8, 64};
  for (const std::uint64_t seed : {11ULL, 22ULL, 33ULL}) {
    const auto arrivals =
        make_arrivals(seed, base.num_sites, /*slots=*/60, /*domain=*/300);
    const auto [ref_trace, ref_digest] =
        run_once<System>(base, arrivals, /*batch=*/1, probe, options);
    EXPECT_FALSE(ref_trace.empty());
    for (const std::uint32_t batch : kBatches) {
      const auto [trace, digest] =
          run_once<System>(base, arrivals, batch, probe, options);
      EXPECT_EQ(digest, ref_digest) << "seed=" << seed << " batch=" << batch;
      EXPECT_EQ(trace_diff(trace, ref_trace), -1)
          << "seed=" << seed << " batch=" << batch
          << " (first divergence; ref has " << ref_trace.size()
          << " msgs, batched has " << trace.size() << ")";
    }
  }
}

TEST(BatchIngest, InfiniteWindowBitIdentical) {
  core::SystemConfig config{4, 8, hash::HashKind::kMurmur2, 5};
  sweep<core::InfiniteSystem>(config, [](const auto& system, auto& digest) {
    for (const auto& entry : system.sample().entries()) {
      digest << " " << entry.element << ":" << entry.hash;
    }
  });
}

TEST(BatchIngest, InfiniteWindowSuppressionBitIdentical) {
  // The duplicate-suppression extension gates batched elements through
  // admits() before spending their precomputed hash — same trace.
  core::SystemConfig config{4, 8, hash::HashKind::kMurmur3, 6};
  core::InfiniteSystem::Options options;
  options.suppress_duplicates = true;
  sweep<core::InfiniteSystem>(
      config,
      [](const auto& system, auto& digest) {
        for (const auto& entry : system.sample().entries()) {
          digest << " " << entry.element << ":" << entry.hash;
        }
      },
      options);
}

TEST(BatchIngest, WithReplacementBitIdentical) {
  core::SystemConfig config{4, 6, hash::HashKind::kMurmur2, 7};
  sweep<core::WithReplacementSystem>(
      config, [](const auto& system, auto& digest) {
        for (const auto e : system.sample()) digest << " " << e;
      });
}

TEST(BatchIngest, SlidingBitIdentical) {
  core::SlidingSystemConfig config;
  config.num_sites = 4;
  config.sample_size = 3;
  config.seed = 8;
  config.window = 25;
  sweep<core::SlidingSystem>(config, [](const auto& system, auto& digest) {
    for (const auto e : system.sample(sim::Slot{59})) digest << " " << e;
  });
}

TEST(BatchIngest, FullSyncSlidingBitIdentical) {
  core::SlidingSystemConfig config;
  config.num_sites = 4;
  config.seed = 9;
  config.window = 25;
  sweep<baseline::FullSyncSlidingSystem>(
      config, [](const auto& system, auto& digest) {
        if (const auto best = system.sample(sim::Slot{59})) {
          digest << " " << best->element << ":" << best->hash << ":"
                 << best->expiry;
        }
      });
}

TEST(BatchIngest, BottomSSlidingBitIdentical) {
  core::SlidingSystemConfig config;
  config.num_sites = 4;
  config.sample_size = 6;
  config.seed = 10;
  config.window = 25;
  sweep<baseline::BottomSSlidingSystem>(
      config, [](const auto& system, auto& digest) {
        for (const auto& c : system.sample(sim::Slot{59})) {
          digest << " " << c.element << ":" << c.hash << ":" << c.expiry;
        }
      });
}

TEST(BatchIngest, ShardedCoordinatorBitIdentical) {
  // RoutedSite splits batches into consecutive same-owner runs; the
  // routed trace must still match element-at-a-time routing.
  core::SlidingSystemConfig config;
  config.num_sites = 4;
  config.sample_size = 5;
  config.seed = 12;
  config.window = 25;
  config.num_shards = 3;
  sweep<baseline::BottomSSlidingSystem>(
      config, [](const auto& system, auto& digest) {
        for (const auto& c : system.sample(sim::Slot{59})) {
          digest << " " << c.element << ":" << c.hash << ":" << c.expiry;
        }
      });
}

TEST(BatchIngest, RealisticWireBitIdentical) {
  // On the event-driven SimNetwork the scheduler's delivery order is a
  // deterministic function of the send sequence — which batching must
  // not change. Latency + jitter, reliable links.
  core::SlidingSystemConfig config;
  config.num_sites = 4;
  config.sample_size = 4;
  config.seed = 13;
  config.window = 25;
  config.network.link.latency = 0.6;
  config.network.link.jitter = 0.4;
  sweep<baseline::BottomSSlidingSystem>(
      config, [](const auto& system, auto& digest) {
        for (const auto& c : system.sample(sim::Slot{59})) {
          digest << " " << c.element << ":" << c.hash << ":" << c.expiry;
        }
      });
}

TEST(BatchIngest, UpdateBatchMatchesRun) {
  // The push-style Deployment::update_batch entry: feeding each slot's
  // burst as one span equals running the equivalent arrival source.
  core::SlidingSystemConfig config;
  config.num_sites = 1;
  config.sample_size = 4;
  config.seed = 14;
  config.window = 25;

  util::Xoshiro256StarStar rng(99);
  std::vector<std::vector<std::uint64_t>> bursts;
  std::vector<sim::Arrival> arrivals;
  for (sim::Slot t = 0; t < 40; ++t) {
    auto& burst = bursts.emplace_back();
    const std::uint64_t count = 1 + rng.next_below(9);
    for (std::uint64_t i = 0; i < count; ++i) {
      burst.push_back(util::mix64(1 + rng.next_below(200)));
      arrivals.push_back({t, 0, burst.back()});
    }
  }

  baseline::BottomSSlidingSystem pushed(config);
  for (sim::Slot t = 0; t < 40; ++t) {
    pushed.update_batch(0, bursts[static_cast<std::size_t>(t)], t);
  }
  baseline::BottomSSlidingSystem pulled(config);
  sim::ListSource source(arrivals);
  pulled.run(source);

  EXPECT_EQ(pushed.sample(sim::Slot{39}), pulled.sample(sim::Slot{39}));
  EXPECT_EQ(pushed.bus().counters().total, pulled.bus().counters().total);
}

}  // namespace
}  // namespace dds
