// Tests for the infinite-window protocol (Algorithms 1 & 2), the
// bottom-s sample container, and with-replacement sampling: correctness
// against an oracle, message accounting, analytic bounds, uniformity,
// and determinism.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/adversary.h"
#include "core/bottom_s_sample.h"
#include "core/system.h"
#include "stream/generators.h"
#include "stream/partitioner.h"
#include "sim/sources.h"
#include "util/stats.h"

namespace dds::core {
namespace {

using sim::ListSource;
using stream::Element;

/// Oracle: the bottom-s of hashes over the distinct elements fed.
std::vector<Element> oracle_bottom_s(const std::vector<Element>& elements,
                                     const hash::HashFunction& h,
                                     std::size_t s) {
  std::set<std::pair<std::uint64_t, Element>> by_hash;
  std::unordered_set<Element> seen;
  for (Element e : elements) {
    if (seen.insert(e).second) by_hash.emplace(h(e), e);
  }
  std::vector<Element> out;
  for (const auto& [hv, e] : by_hash) {
    if (out.size() == s) break;
    out.push_back(e);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<Element> sorted_sample(const InfiniteWindowCoordinator& coord) {
  auto v = coord.sample().elements();
  std::sort(v.begin(), v.end());
  return v;
}

// ------------------------------------------------------ BottomSSample --

TEST(BottomSSample, FillsThenEvictsLargest) {
  BottomSSample p(2);
  EXPECT_EQ(p.offer(1, 100), BottomSSample::Outcome::kInserted);
  EXPECT_EQ(p.offer(2, 50), BottomSSample::Outcome::kInserted);
  EXPECT_TRUE(p.full());
  // Larger than current max: rejected.
  EXPECT_EQ(p.offer(3, 200), BottomSSample::Outcome::kRejected);
  // Smaller: replaces element 1 (hash 100).
  EXPECT_EQ(p.offer(4, 75), BottomSSample::Outcome::kReplaced);
  EXPECT_FALSE(p.contains(1));
  EXPECT_TRUE(p.contains(4));
  EXPECT_EQ(p.max_hash(), 75u);
}

TEST(BottomSSample, DuplicatesIgnored) {
  BottomSSample p(3);
  EXPECT_EQ(p.offer(7, 10), BottomSSample::Outcome::kInserted);
  EXPECT_EQ(p.offer(7, 10), BottomSSample::Outcome::kDuplicate);
  EXPECT_EQ(p.size(), 1u);
}

TEST(BottomSSample, ThresholdIsMaxOnlyWhenFull) {
  BottomSSample p(2);
  EXPECT_EQ(p.threshold(), hash::kHashMax);
  p.offer(1, 10);
  EXPECT_EQ(p.threshold(), hash::kHashMax);
  p.offer(2, 20);
  EXPECT_EQ(p.threshold(), 20u);
}

TEST(BottomSSample, EntriesHashAscending) {
  BottomSSample p(4);
  p.offer(1, 40);
  p.offer(2, 10);
  p.offer(3, 30);
  const auto entries = p.entries();
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries[0].element, 2u);
  EXPECT_EQ(entries[2].element, 1u);
}

TEST(BottomSSample, ZeroCapacityRejected) {
  EXPECT_THROW(BottomSSample(0), std::invalid_argument);
}

// ------------------------------------------- protocol vs oracle sweeps --

struct ProtocolParams {
  std::uint32_t sites;
  std::size_t sample_size;
  stream::Distribution distribution;
  std::uint64_t domain;
  std::uint64_t n;
  std::uint64_t seed;
};

class InfiniteProtocol : public ::testing::TestWithParam<ProtocolParams> {};

TEST_P(InfiniteProtocol, SampleEqualsOracleBottomS) {
  const auto p = GetParam();
  SystemConfig config{p.sites, p.sample_size, hash::HashKind::kMurmur2,
                      p.seed};
  InfiniteSystem system(config);

  stream::UniformStream for_oracle(p.n, p.domain, p.seed + 1);
  const auto elements = stream::drain(for_oracle);
  stream::VectorStream replay(elements);
  auto source = stream::make_partitioner(p.distribution, replay, p.sites,
                                         p.seed + 2, 100.0);
  system.run(*source);

  EXPECT_EQ(sorted_sample(system.coordinator()),
            oracle_bottom_s(elements, system.hash_fn(), p.sample_size));
}

TEST_P(InfiniteProtocol, EveryReportGetsExactlyOneReply) {
  const auto p = GetParam();
  SystemConfig config{p.sites, p.sample_size, hash::HashKind::kMurmur2,
                      p.seed};
  InfiniteSystem system(config);
  stream::UniformStream input(p.n, p.domain, p.seed + 1);
  auto source = stream::make_partitioner(p.distribution, input, p.sites,
                                         p.seed + 2, 100.0);
  system.run(*source);

  const auto& c = system.bus().counters();
  EXPECT_EQ(c.site_to_coordinator, c.coordinator_to_site);
  EXPECT_EQ(c.total, c.site_to_coordinator + c.coordinator_to_site);
  for (std::uint32_t i = 0; i < p.sites; ++i) {
    EXPECT_EQ(system.bus().sent_by(i), system.bus().received_by(i));
  }
}

TEST_P(InfiniteProtocol, MessageCountWithinAnalyticBound) {
  const auto p = GetParam();
  SystemConfig config{p.sites, p.sample_size, hash::HashKind::kMurmur2,
                      p.seed};
  InfiniteSystem system(config);
  stream::UniformStream for_oracle(p.n, p.domain, p.seed + 1);
  const auto elements = stream::drain(for_oracle);
  std::unordered_set<Element> distinct(elements.begin(), elements.end());
  stream::VectorStream replay(elements);
  auto source = stream::make_partitioner(p.distribution, replay, p.sites,
                                         p.seed + 2, 100.0);
  system.run(*source);

  // Lemma 4 bounds the EXPECTATION; individual runs concentrate well, so
  // 2x slack is comfortable for these sizes.
  const double bound = util::infinite_window_upper_bound(
      p.sites, p.sample_size, distinct.size());
  EXPECT_LT(static_cast<double>(system.bus().counters().total), 2.0 * bound)
      << "d=" << distinct.size();
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, InfiniteProtocol,
    ::testing::Values(
        ProtocolParams{1, 1, stream::Distribution::kRandom, 500, 2000, 1},
        ProtocolParams{1, 10, stream::Distribution::kRandom, 500, 2000, 2},
        ProtocolParams{5, 10, stream::Distribution::kRandom, 2000, 5000, 3},
        ProtocolParams{5, 10, stream::Distribution::kFlooding, 2000, 5000, 4},
        ProtocolParams{5, 10, stream::Distribution::kRoundRobin, 2000, 5000,
                       5},
        ProtocolParams{8, 4, stream::Distribution::kDominate, 1000, 4000, 6},
        ProtocolParams{20, 50, stream::Distribution::kRandom, 3000, 6000, 7},
        ProtocolParams{100, 20, stream::Distribution::kRandom, 2000, 4000,
                       8}));

// ------------------------------------------------------- edge cases ----

TEST(InfiniteEdge, FewerDistinctThanSampleSize) {
  SystemConfig config{3, 50, hash::HashKind::kMurmur2, 11};
  InfiniteSystem system(config);
  std::vector<Element> elements{1, 2, 3, 2, 1, 4};
  stream::VectorStream replay(elements);
  stream::RoundRobinPartitioner source(replay, 3);
  system.run(source);
  // Sample is all 4 distinct elements; u never left kHashMax.
  EXPECT_EQ(system.coordinator().sample().size(), 4u);
  EXPECT_EQ(system.coordinator().threshold(), hash::kHashMax);
}

TEST(InfiniteEdge, EmptyStream) {
  SystemConfig config{2, 5, hash::HashKind::kMurmur2, 12};
  InfiniteSystem system(config);
  stream::VectorStream replay({});
  stream::RoundRobinPartitioner source(replay, 2);
  EXPECT_EQ(system.run(source), 0u);
  EXPECT_EQ(system.coordinator().sample().size(), 0u);
  EXPECT_EQ(system.bus().counters().total, 0u);
}

TEST(InfiniteEdge, RepeatCostIsOnlySampleMembers) {
  // Reproduction note (see infinite_site.h): under the faithful
  // pseudocode, a repeat occurrence triggers a report iff the element's
  // hash is strictly below the site's threshold view — i.e. (almost
  // always) iff it is a current sample member. Verify exactly that.
  SystemConfig config{4, 5, hash::HashKind::kMurmur2, 13};
  InfiniteSystem system(config);
  std::vector<sim::Arrival> phase1, phase2;
  for (int i = 0; i < 200; ++i) {
    phase1.push_back({i, static_cast<sim::NodeId>(i % 4),
                      static_cast<Element>(i + 1)});
  }
  for (int i = 0; i < 600; ++i) {
    phase2.push_back({200 + i, static_cast<sim::NodeId>((i * 7) % 4),
                      static_cast<Element>((i % 200) + 1)});
  }
  ListSource p1(phase1);
  system.run(p1);
  const auto after_phase1 = system.bus().counters().total;

  // Count phase-2 arrivals whose element is in the (now stable) sample.
  const auto sample = system.coordinator().sample().elements();
  std::unordered_set<Element> sampled(sample.begin(), sample.end());
  std::uint64_t sample_member_arrivals = 0;
  for (const auto& a : phase2) {
    sample_member_arrivals += sampled.contains(a.element) ? 1 : 0;
  }
  ListSource p2(phase2);
  system.run(p2);
  const auto phase2_cost = system.bus().counters().total - after_phase1;
  // Each such arrival costs exactly one report + one reply; everything
  // else is free (all distinct elements were already seen; u is final).
  // The s-th smallest (== u itself) does not re-trigger (strict <), and
  // stale site views can add a few extra, hence <= not ==.
  EXPECT_LE(phase2_cost, 2 * sample_member_arrivals + 2 * 4);
  EXPECT_GE(phase2_cost, 2 * (sample_member_arrivals / 2));
}

TEST(InfiniteEdge, SuppressDuplicatesMakesRepeatsFree) {
  SystemConfig config{4, 5, hash::HashKind::kMurmur2, 13};
  InfiniteSystem system(config, /*eager_threshold=*/false,
                        /*suppress_duplicates=*/true);
  std::vector<sim::Arrival> phase1, phase2;
  for (int i = 0; i < 200; ++i) {
    phase1.push_back({i, static_cast<sim::NodeId>(i % 4),
                      static_cast<Element>(i + 1)});
  }
  for (int i = 0; i < 600; ++i) {
    phase2.push_back({200 + i, static_cast<sim::NodeId>((i * 7) % 4),
                      static_cast<Element>((i % 200) + 1)});
  }
  ListSource p1(phase1);
  system.run(p1);
  const auto after_phase1 = system.bus().counters().total;
  ListSource p2(phase2);
  system.run(p2);
  const auto after_phase2 = system.bus().counters().total;
  // First repeat round may ship each (site, sample-member) pair once to
  // learn membership; after that, repeats are genuinely free.
  std::vector<sim::Arrival> phase3 = phase2;
  for (std::size_t i = 0; i < phase3.size(); ++i) {
    phase3[i].slot = 800 + static_cast<sim::Slot>(i);
  }
  ListSource p3(phase3);
  system.run(p3);
  EXPECT_EQ(system.bus().counters().total, after_phase2);
  EXPECT_GE(after_phase2, after_phase1);

  // And the sample itself is unaffected by suppression.
  InfiniteSystem faithful(config);
  ListSource q1(phase1);
  faithful.run(q1);
  EXPECT_EQ(sorted_sample(system.coordinator()),
            sorted_sample(faithful.coordinator()));
}

TEST(InfiniteEdge, SingleSiteMatchesCentralizedMessageLogic) {
  // With k = 1 every report is a genuine sample improvement "candidate":
  // report count equals the number of times an arriving element beats
  // the site's threshold view, which for k = 1 equals the number of
  // sample-changing elements.
  SystemConfig config{1, 5, hash::HashKind::kMurmur2, 14};
  InfiniteSystem system(config);
  stream::AllDistinctStream input(1000, 3);
  stream::RoundRobinPartitioner source(input, 1);
  system.run(source);
  // Expected number of bottom-5 prefix updates over 1000 distinct
  // elements: 5 + 5(H_1000 - H_5) ~ 26.1; each costs 2 messages.
  const double expected = 2.0 * util::infinite_window_upper_bound(1, 5, 1000) /
                          2.0;  // upper bound formula already includes the 2x
  EXPECT_LT(static_cast<double>(system.bus().counters().total),
            2.0 * expected);
  EXPECT_GT(system.bus().counters().total, 10u);
}

// ------------------------------------------------------ lazy vs eager --

TEST(Threshold, EagerNeverSendsMoreThanLazy) {
  for (std::uint64_t seed : {21ULL, 22ULL, 23ULL}) {
    SystemConfig config{5, 10, hash::HashKind::kMurmur2, seed};
    std::uint64_t lazy_total = 0, eager_total = 0;
    for (bool eager : {false, true}) {
      InfiniteSystem system(config, eager);
      stream::UniformStream input(3000, 1000, seed + 100);
      stream::RandomPartitioner source(input, 5, seed + 200);
      system.run(source);
      (eager ? eager_total : lazy_total) = system.bus().counters().total;
    }
    EXPECT_LE(eager_total, lazy_total) << "seed " << seed;
  }
}

// -------------------------------------------------------- uniformity ---

TEST(Uniformity, EveryElementEquallyLikelyInSample) {
  // d = 30 distinct elements, s = 5: inclusion probability 1/6 each.
  constexpr int kRuns = 400;
  constexpr std::uint64_t kDistinct = 30;
  constexpr std::size_t kS = 5;
  std::map<Element, std::uint64_t> inclusion;
  for (int run = 0; run < kRuns; ++run) {
    SystemConfig config{3, kS, hash::HashKind::kMurmur2,
                        static_cast<std::uint64_t>(run) * 7919 + 1};
    InfiniteSystem system(config);
    std::vector<Element> elements;
    for (std::uint64_t e = 1; e <= kDistinct; ++e) elements.push_back(e);
    stream::VectorStream replay(elements);
    stream::RoundRobinPartitioner source(replay, 3);
    system.run(source);
    for (Element e : system.coordinator().sample().elements()) {
      ++inclusion[e];
    }
  }
  std::vector<std::uint64_t> counts;
  for (std::uint64_t e = 1; e <= kDistinct; ++e) counts.push_back(inclusion[e]);
  EXPECT_LT(util::chi_square_uniform(counts),
            util::chi_square_critical(kDistinct - 1, 0.001));
}

TEST(Uniformity, SampleIndependentOfFrequency) {
  // A distinct sample must not favour heavy hitters: element 1 appears
  // 100x more often than the rest, but its inclusion rate must stay s/d.
  constexpr int kRuns = 500;
  constexpr std::uint64_t kDistinct = 20;
  constexpr std::size_t kS = 4;
  std::uint64_t heavy_in_sample = 0;
  for (int run = 0; run < kRuns; ++run) {
    SystemConfig config{2, kS, hash::HashKind::kMurmur2,
                        static_cast<std::uint64_t>(run) * 104729 + 3};
    InfiniteSystem system(config);
    std::vector<Element> elements;
    for (int rep = 0; rep < 100; ++rep) elements.push_back(1);
    for (std::uint64_t e = 2; e <= kDistinct; ++e) elements.push_back(e);
    stream::VectorStream replay(elements);
    stream::RandomPartitioner source(replay, 2, run + 17);
    system.run(source);
    const auto sample = system.coordinator().sample().elements();
    heavy_in_sample +=
        std::count(sample.begin(), sample.end(), Element{1}) > 0 ? 1 : 0;
  }
  const double rate = heavy_in_sample / static_cast<double>(kRuns);
  const double expected = static_cast<double>(kS) / kDistinct;  // 0.2
  EXPECT_NEAR(rate, expected, 0.05);
}

// ------------------------------------------------------- determinism ---

TEST(Determinism, IdenticalSeedIdenticalMessageTrace) {
  auto trace_of = [](std::uint64_t seed) {
    SystemConfig config{5, 10, hash::HashKind::kMurmur2, seed};
    InfiniteSystem system(config);
    std::vector<std::tuple<sim::NodeId, sim::NodeId, std::uint64_t>> trace;
    system.bus().set_tap([&trace](const sim::Message& m) {
      trace.emplace_back(m.from, m.to, m.b);
    });
    stream::UniformStream input(2000, 500, seed + 5);
    stream::RandomPartitioner source(input, 5, seed + 6);
    system.run(source);
    return trace;
  };
  const auto t1 = trace_of(42);
  const auto t2 = trace_of(42);
  const auto t3 = trace_of(43);
  EXPECT_EQ(t1, t2);
  EXPECT_NE(t1, t3);
  EXPECT_FALSE(t1.empty());
}

// -------------------------------------------------- with replacement ---

TEST(WithReplacement, EachCopyHoldsItsFamilyMinimum) {
  SystemConfig config{4, 8, hash::HashKind::kMurmur2, 31};
  WithReplacementSystem system(config);
  stream::UniformStream for_oracle(3000, 400, 99);
  const auto elements = stream::drain(for_oracle);
  stream::VectorStream replay(elements);
  stream::RandomPartitioner source(replay, 4, 98);
  system.run(source);

  std::unordered_set<Element> distinct(elements.begin(), elements.end());
  const auto sample = system.coordinator().sample();
  ASSERT_EQ(sample.size(), 8u);
  for (std::size_t j = 0; j < 8; ++j) {
    const auto hj = system.family().at(j);
    Element argmin = 0;
    std::uint64_t best = hash::kHashMax;
    for (Element e : distinct) {
      if (hj(e) < best) {
        best = hj(e);
        argmin = e;
      }
    }
    EXPECT_EQ(sample[j], argmin) << "copy " << j;
  }
}

TEST(WithReplacement, CopiesAreIndependentSamples) {
  // With 60 distinct elements and 16 copies, expected distinct elements
  // in the with-replacement sample is 16 * (1 - (1-1/16)^...) — loosely,
  // repeats must occur sometimes across many runs, and copies must not
  // all agree.
  int all_same_runs = 0;
  int any_repeat_runs = 0;
  constexpr int kRuns = 50;
  for (int run = 0; run < kRuns; ++run) {
    SystemConfig config{2, 16, hash::HashKind::kMurmur2,
                        static_cast<std::uint64_t>(run) + 701};
    WithReplacementSystem system(config);
    std::vector<Element> elements;
    for (Element e = 1; e <= 60; ++e) elements.push_back(e);
    stream::VectorStream replay(elements);
    stream::RoundRobinPartitioner source(replay, 2);
    system.run(source);
    const auto sample = system.coordinator().sample();
    std::unordered_set<Element> uniq(sample.begin(), sample.end());
    if (uniq.size() == 1) ++all_same_runs;
    if (uniq.size() < sample.size()) ++any_repeat_runs;
  }
  EXPECT_EQ(all_same_runs, 0);
  // P[some collision among 16 draws from 60] ~ 1 - prod (1 - i/60) ~ 0.88.
  EXPECT_GT(any_repeat_runs, kRuns / 3);
}

TEST(WithReplacement, MessageCostScalesWithCopies) {
  auto total_for = [](std::size_t s) {
    SystemConfig config{3, s, hash::HashKind::kMurmur2, 55};
    WithReplacementSystem system(config);
    stream::AllDistinctStream input(2000, 5);
    stream::RandomPartitioner source(input, 3, 66);
    system.run(source);
    return system.bus().counters().total;
  };
  const auto t2 = total_for(2);
  const auto t8 = total_for(8);
  // Cost ~ linear in s: ratio near 4, certainly > 2.
  EXPECT_GT(static_cast<double>(t8), 2.0 * static_cast<double>(t2));
}

// ---------------------------------------------------------- adversary --

TEST(Adversary, CostSitsBetweenLowerAndUpperBounds) {
  constexpr std::uint32_t kSites = 5;
  constexpr std::size_t kS = 5;
  constexpr std::uint64_t kD = 500;
  util::RunningStat totals;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    SystemConfig config{kSites, kS, hash::HashKind::kMurmur2, seed};
    InfiniteSystem system(config);
    AdversarialInput input(kD, kSites, seed + 1000);
    system.run(input);
    totals.add(static_cast<double>(system.bus().counters().total));
  }
  const double lb = util::infinite_window_lower_bound(kSites, kS, kD);
  const double ub = util::infinite_window_upper_bound(kSites, kS, kD);
  EXPECT_GT(totals.mean(), 0.8 * lb);
  EXPECT_LT(totals.mean(), 1.5 * ub);
  // The paper's headline: optimal to within a factor of four.
  EXPECT_LT(totals.mean() / lb, 4.5);
}

}  // namespace
}  // namespace dds::core
