// Sharded sliding-window deployments and the validity-aware query
// merge layer.
//
// The load-bearing test is the exactness proof for the bottom-s window
// protocol: a sharded deployment's merged query answer is bit-identical
// (elements, hashes, expiries, estimates) to the unsharded coordinator
// at EVERY query slot, across sample sizes, shard counts, and seeds.
// The argument: shard j's coordinator holds the exact window bottom-s
// of element partition j (each site's shard-j copy sees exactly the
// partition-j substream), and every member of the global window
// bottom-s is inside its own partition's bottom-s, so the
// validity-aware bottom-s of the union is the global answer. The lazy
// s-copy protocol shards too; its per-shard answers inherit the lazy
// scheme's documented post-expiry transient, so its merged answer is
// exact in the single-site regime and agreement-tested otherwise.
#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "baseline/baseline_system.h"
#include "core/checkpoint.h"
#include "core/shard_router.h"
#include "core/system.h"
#include "net/batcher.h"
#include "net/sim_network.h"
#include "query/merge.h"
#include "sim/sources.h"
#include "util/rng.h"

namespace dds {
namespace {

using sim::SlotSource;
using treap::Candidate;

/// Drives `reference` and `sharded` through an identical random slotted
/// stream, invoking `check(t)` after every slot.
template <typename SystemA, typename SystemB, typename Check>
void drive_slots(SystemA& reference, SystemB& sharded, std::uint32_t sites,
                 std::uint64_t domain, sim::Slot slots, std::uint64_t seed,
                 std::unordered_map<stream::Element, sim::Slot>* last_arrival,
                 Check check) {
  util::Xoshiro256StarStar rng(seed);
  for (sim::Slot t = 0; t < slots; ++t) {
    std::vector<std::pair<sim::NodeId, stream::Element>> xs;
    for (int i = 0; i < 4; ++i) {
      const stream::Element e = 1 + rng.next_below(domain);
      xs.emplace_back(static_cast<sim::NodeId>(rng.next_below(sites)), e);
      if (last_arrival != nullptr) (*last_arrival)[e] = t;
    }
    {
      SlotSource src(t, xs);
      reference.run(src);
    }
    {
      SlotSource src(t, xs);
      sharded.run(src);
    }
    check(t);
  }
}

// ------------------------------------------- exactness proof test -----

struct ExactParams {
  std::size_t s;
  std::uint32_t shards;
  std::uint64_t seed;
};

class ShardedBottomSSliding : public ::testing::TestWithParam<ExactParams> {};

TEST_P(ShardedBottomSSliding, MergedSampleBitIdenticalAtEverySlot) {
  const auto p = GetParam();
  core::SlidingSystemConfig config;
  config.num_sites = 6;
  config.window = 25;
  config.sample_size = p.s;
  config.seed = p.seed;
  baseline::BottomSSlidingSystem reference(config);
  auto sharded_config = config;
  sharded_config.num_shards = p.shards;
  baseline::BottomSSlidingSystem sharded(sharded_config);
  ASSERT_EQ(sharded.num_shards(), p.shards);

  drive_slots(reference, sharded, 6, 120, 300, p.seed * 99 + 7, nullptr,
              [&](sim::Slot t) {
                const auto want = reference.coordinator().sample(t);
                const auto got = sharded.sample(t);
                ASSERT_EQ(want, got) << "slot " << t;  // elem, hash, expiry
                EXPECT_DOUBLE_EQ(
                    query::estimate_window_distinct(want, p.s),
                    query::estimate_window_distinct(got, p.s))
                    << "slot " << t;
              });
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ShardedBottomSSliding,
    ::testing::Values(ExactParams{1, 2, 1}, ExactParams{1, 2, 2},
                      ExactParams{1, 2, 3}, ExactParams{1, 3, 1},
                      ExactParams{1, 3, 2}, ExactParams{1, 3, 3},
                      ExactParams{3, 2, 1}, ExactParams{3, 2, 2},
                      ExactParams{3, 2, 3}, ExactParams{3, 3, 1},
                      ExactParams{3, 3, 2}, ExactParams{3, 3, 3}));

TEST(ShardedFullSyncSliding, MergedMinimumBitIdenticalAtEverySlot) {
  for (const std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    core::SlidingSystemConfig config;
    config.num_sites = 5;
    config.window = 20;
    config.seed = seed;
    baseline::FullSyncSlidingSystem reference(config);
    auto sharded_config = config;
    sharded_config.num_shards = 2;
    baseline::FullSyncSlidingSystem sharded(sharded_config);
    drive_slots(reference, sharded, 5, 90, 250, seed * 31 + 11, nullptr,
                [&](sim::Slot t) {
                  ASSERT_EQ(reference.coordinator().sample(t),
                            sharded.sample(t))
                      << "slot " << t;
                });
  }
}

// --------------------------------------------- lazy s-copy protocol --

TEST(ShardedLazySliding, SingleSiteMergedEqualsUnshardedAtEverySlot) {
  // With one site the lazy protocol is exact (the existing k=1 lemma
  // test), per partition as well as globally — so the sharded merge
  // must reproduce the unsharded answer bit for bit.
  for (const std::size_t s : {std::size_t{1}, std::size_t{3}}) {
    for (const std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
      core::SlidingSystemConfig config;
      config.num_sites = 1;
      config.window = 25;
      config.sample_size = s;
      config.seed = seed;
      core::SlidingSystem reference(config);
      auto sharded_config = config;
      sharded_config.num_shards = 3;
      core::SlidingSystem sharded(sharded_config);
      drive_slots(reference, sharded, 1, 120, 400, seed * 99 + 7, nullptr,
                  [&](sim::Slot t) {
                    ASSERT_EQ(reference.coordinator().sample(t),
                              sharded.sample(t))
                        << "slot " << t;
                  });
    }
  }
}

TEST(ShardedLazySliding, MultiSiteMergedStaysValidAndAgrees) {
  // k >= 2: each shard's lazy answer can transiently lag its partition
  // minimum (sliding_coordinator.h), so per-slot bit-identity is not a
  // theorem. What IS guaranteed: every merged sample element is a valid
  // member of the current window (the validity merger enforces per-copy
  // expiry). Agreement with the unsharded run stays high; the bound
  // here is well under the observed ~91-100%.
  for (const std::size_t s : {std::size_t{1}, std::size_t{3}}) {
    for (const std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
      core::SlidingSystemConfig config;
      config.num_sites = 6;
      config.window = 25;
      config.sample_size = s;
      config.seed = seed;
      core::SlidingSystem reference(config);
      auto sharded_config = config;
      sharded_config.num_shards = 3;
      core::SlidingSystem sharded(sharded_config);
      std::unordered_map<stream::Element, sim::Slot> last_arrival;
      std::uint64_t slots = 0;
      std::uint64_t agree = 0;
      drive_slots(reference, sharded, 6, 120, 400, seed * 99 + 7,
                  &last_arrival, [&](sim::Slot t) {
                    const auto got = sharded.sample(t);
                    for (const stream::Element e : got) {
                      const auto it = last_arrival.find(e);
                      ASSERT_TRUE(it != last_arrival.end());
                      ASSERT_GT(it->second + config.window,
                                t)  // still in the window
                          << "slot " << t << " element " << e;
                    }
                    ++slots;
                    if (got == reference.coordinator().sample(t)) ++agree;
                  });
      EXPECT_GE(static_cast<double>(agree),
                0.85 * static_cast<double>(slots))
          << "s=" << s << " seed=" << seed;
    }
  }
}

TEST(ShardedLazySliding, PerShardCountersPartitionTheTotal) {
  core::SlidingSystemConfig config;
  config.num_sites = 6;
  config.window = 30;
  config.sample_size = 2;
  config.num_shards = 3;
  core::SlidingSystem system(config);
  util::Xoshiro256StarStar rng(17);
  for (sim::Slot t = 0; t < 200; ++t) {
    std::vector<std::pair<sim::NodeId, stream::Element>> xs;
    for (int i = 0; i < 5; ++i) {
      xs.emplace_back(static_cast<sim::NodeId>(rng.next_below(6)),
                      1 + rng.next_below(200));
    }
    SlotSource src(t, xs);
    system.run(src);
  }
  std::uint64_t total = 0;
  for (std::uint32_t j = 0; j < 3; ++j) {
    const auto& c = system.bus().coordinator_counters(j);
    EXPECT_GT(c.total, 0u) << "shard " << j << " saw no traffic";
    total += c.total;
  }
  EXPECT_EQ(total, system.bus().counters().total);
}

// --------------------------------------- merger edge cases (unit) ----

TEST(SlidingValidityMerger, ExpiryExactlyAtQuerySlotIsInvalid) {
  query::SlidingValidityMerger merger(/*sample_size=*/2, /*now=*/10);
  merger.offer(Candidate{1, 100, 10});  // expires exactly at the query slot
  merger.offer(Candidate{2, 200, 11});  // one slot of validity left
  ASSERT_EQ(merger.bottom_s().size(), 1u);
  EXPECT_EQ(merger.bottom_s().front().element, 2u);
}

TEST(SlidingValidityMerger, EmptyShardsMergeToEmpty) {
  query::SlidingValidityMerger merger(3, 5);
  merger.add({});                      // a shard holding an empty window
  merger.offer(std::optional<Candidate>{});  // a shard with no sample
  EXPECT_TRUE(merger.bottom_s().empty());
  EXPECT_FALSE(merger.min_hash().has_value());
}

TEST(SlidingValidityMerger, SampleSizeLargerThanAnyShardsAnswer) {
  // s = 5 but each "shard" holds fewer: the merged sample is the union,
  // short of s — never padded, never truncated below the union size.
  query::SlidingValidityMerger merger(5, 0);
  merger.add({Candidate{1, 10, 9}, Candidate{2, 20, 8}});
  merger.add({Candidate{3, 15, 7}});
  const auto got = merger.bottom_s();
  ASSERT_EQ(got.size(), 3u);
  EXPECT_EQ(got[0].element, 1u);
  EXPECT_EQ(got[1].element, 3u);
  EXPECT_EQ(got[2].element, 2u);
}

TEST(SlidingValidityMerger, KeepsBottomSAndDropsTheRest) {
  query::SlidingValidityMerger merger(2, 0);
  merger.add({Candidate{1, 40, 9}, Candidate{2, 10, 8}});
  merger.add({Candidate{3, 30, 7}, Candidate{4, 20, 6}});
  const auto got = merger.bottom_s();
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0].element, 2u);
  EXPECT_EQ(got[1].element, 4u);
}

TEST(SlidingValidityMerger, DuplicateElementKeepsFreshestExpiry) {
  // Possible when merging a restored ensemble with a live one; the
  // element's hash is fixed, so only the expiry can differ.
  query::SlidingValidityMerger merger(2, 0);
  merger.offer(Candidate{7, 50, 3});
  merger.offer(Candidate{7, 50, 9});
  merger.offer(Candidate{7, 50, 5});
  const auto got = merger.bottom_s();
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got.front().expiry, 9);
}

TEST(SlidingValidityMerger, WindowEstimateMatchesKmvShape) {
  // Below s the estimate is the exact count; at s it switches to KMV.
  std::vector<Candidate> sample{Candidate{1, 1ULL << 62, 9}};
  EXPECT_DOUBLE_EQ(query::estimate_window_distinct(sample, 2), 1.0);
  sample.push_back(Candidate{2, 1ULL << 63, 9});
  EXPECT_NEAR(query::estimate_window_distinct(sample, 2), 2.0, 0.1);
}

// ------------------------------------- checkpoint/restore ensemble ---

TEST(SlidingCheckpoint, ShardedEnsembleRoundTripsMidWindow) {
  core::SlidingSystemConfig config;
  config.num_sites = 6;
  config.window = 30;
  config.sample_size = 3;
  config.num_shards = 3;
  core::SlidingSystem original(config);
  util::Xoshiro256StarStar rng(23);
  const sim::Slot kCheckpointSlot = 150;  // mid-window: 150 % 30 != 0
  for (sim::Slot t = 0; t <= kCheckpointSlot; ++t) {
    std::vector<std::pair<sim::NodeId, stream::Element>> xs;
    for (int i = 0; i < 5; ++i) {
      xs.emplace_back(static_cast<sim::NodeId>(rng.next_below(6)),
                      1 + rng.next_below(150));
    }
    SlotSource src(t, xs);
    original.run(src);
  }
  const auto images = core::checkpoint_ensemble(original);
  ASSERT_EQ(images.size(), 3u);

  // Restore into a fresh deployment of the same shape: merged queries
  // at the checkpoint slot answer exactly as the original.
  core::SlidingSystem restored(config);
  ASSERT_TRUE(core::restore_ensemble(restored, images));
  EXPECT_EQ(original.sample(kCheckpointSlot), restored.sample(kCheckpointSlot));
  for (std::uint32_t j = 0; j < 3; ++j) {
    for (std::size_t c = 0; c < config.sample_size; ++c) {
      EXPECT_EQ(original.coordinator(j).copy(c).raw_sample(),
                restored.coordinator(j).copy(c).raw_sample());
    }
  }
  // And the images round-trip bit for bit.
  EXPECT_EQ(core::checkpoint_ensemble(restored), images);

  // Standalone restore path.
  const auto standalone = core::restore_sliding_coordinator(99, images[1]);
  ASSERT_NE(standalone, nullptr);
  EXPECT_EQ(standalone->copy(0).raw_sample(),
            original.coordinator(1).copy(0).raw_sample());

  // Malformed images and shape mismatches are rejected.
  auto corrupt = images[0];
  corrupt.pop_back();
  EXPECT_FALSE(core::restore_into(restored.coordinator_mut(0), corrupt));
  EXPECT_EQ(core::parse_sliding_checkpoint(corrupt), std::nullopt);
  // A bit-flipped copy count must parse to nullopt, not explode in an
  // allocation sized by the corrupted value.
  auto huge_count = images[0];
  huge_count[23] = 0x20;  // top byte of the count u64
  EXPECT_EQ(core::parse_sliding_checkpoint(huge_count), std::nullopt);
  EXPECT_FALSE(core::restore_into(restored.coordinator_mut(0), huge_count));
  auto wrong_shape = config;
  wrong_shape.sample_size = 2;
  core::SlidingSystem smaller(wrong_shape);
  EXPECT_FALSE(core::restore_into(smaller.coordinator_mut(0), images[0]));
  EXPECT_FALSE(core::restore_ensemble(smaller, images));
}

TEST(SlidingCheckpoint, RestoredDeploymentSelfHealsWithinAWindow) {
  // Failover semantics: fresh sites + restored coordinators converge
  // back to the live answer after at most one window of re-exposure
  // (every site view expires and re-offers). Exercised in the k = 1
  // exact regime so "converged" is checkable as bit-equality.
  core::SlidingSystemConfig config;
  config.num_sites = 1;
  config.window = 20;
  config.sample_size = 2;
  config.num_shards = 2;
  core::SlidingSystem original(config);
  util::Xoshiro256StarStar rng(31);
  auto feed_slot = [&](core::SlidingSystem& system, sim::Slot t,
                       const std::vector<std::pair<sim::NodeId,
                                                   stream::Element>>& xs) {
    SlotSource src(t, xs);
    system.run(src);
  };
  auto make_slot = [&]() {
    std::vector<std::pair<sim::NodeId, stream::Element>> xs;
    for (int i = 0; i < 4; ++i) {
      xs.emplace_back(0, 1 + rng.next_below(60));
    }
    return xs;
  };
  const sim::Slot kCheckpointSlot = 100;
  for (sim::Slot t = 0; t <= kCheckpointSlot; ++t) {
    feed_slot(original, t, make_slot());
  }
  core::SlidingSystem restored(config);
  ASSERT_TRUE(
      core::restore_ensemble(restored, core::checkpoint_ensemble(original)));
  // Same suffix stream into both; after 2w slots the restored system's
  // answer must have fully caught up.
  for (sim::Slot t = kCheckpointSlot + 1;
       t <= kCheckpointSlot + 2 * config.window; ++t) {
    const auto xs = make_slot();
    feed_slot(original, t, xs);
    feed_slot(restored, t, xs);
  }
  const sim::Slot end = kCheckpointSlot + 2 * config.window;
  EXPECT_EQ(original.sample(end), restored.sample(end));
  EXPECT_FALSE(original.sample(end).empty());
}

// ------------------------------------------------- routing cache -----

TEST(ShardCache, AgreesWithTheRingAndHitsOnRepeats) {
  core::ShardRouter router(4, 11);
  core::ShardCache cache(256);
  util::SplitMix64 gen(3);
  std::vector<stream::Element> hot;
  for (int i = 0; i < 16; ++i) hot.push_back(gen.next());
  for (int round = 0; round < 100; ++round) {
    for (const stream::Element e : hot) {
      ASSERT_EQ(cache.owner(router, e), router.owner(e));
    }
  }
  EXPECT_EQ(cache.lookups(), 1600u);
  // 16 hot elements over 100 rounds: everything past the first touch
  // should hit, minus whatever a 3-deep set conflict thrashes (2-way
  // LRU can't hold a 3-element cycle) — bound well below the ideal.
  EXPECT_GT(cache.hits(), cache.lookups() * 3 / 4);
  // Cold uniform traffic still answers correctly.
  for (int i = 0; i < 5000; ++i) {
    const stream::Element e = gen.next();
    ASSERT_EQ(cache.owner(router, e), router.owner(e));
  }
}

TEST(ShardCache, DeploymentSurfacesHitRate) {
  core::SlidingSystemConfig config;
  config.num_sites = 4;
  config.window = 20;
  config.sample_size = 1;
  config.num_shards = 2;
  core::SlidingSystem system(config);
  util::Xoshiro256StarStar rng(5);
  for (sim::Slot t = 0; t < 100; ++t) {
    std::vector<std::pair<sim::NodeId, stream::Element>> xs;
    for (int i = 0; i < 6; ++i) {
      // A duplicate-heavy domain: the cache should absorb most lookups.
      xs.emplace_back(static_cast<sim::NodeId>(rng.next_below(4)),
                      1 + rng.next_below(40));
    }
    SlotSource src(t, xs);
    system.run(src);
  }
  EXPECT_EQ(system.route_cache_lookups(), 600u);  // one per arrival
  EXPECT_GT(system.route_cache_hits(), 0u);
}

// ------------------------------------- per-shard batcher flushing ----

TEST(Batcher, TakeForShardFlushesOnlyThatShard)
{
  net::Batcher batcher(/*num_sites=*/3, /*num_coordinators=*/2,
                       /*interval=*/10, /*max_msgs=*/64);
  auto report = [](sim::NodeId site, sim::NodeId coordinator) {
    sim::Message msg;
    msg.from = site;
    msg.to = coordinator;
    msg.type = sim::MsgType::kSlidingReport;
    return msg;
  };
  batcher.add(report(0, 3), 0);  // shard 0
  batcher.add(report(1, 3), 0);  // shard 0
  batcher.add(report(1, 4), 0);  // shard 1
  batcher.add(report(2, 4), 0);  // shard 1
  EXPECT_EQ(batcher.buffered_for_shard(0), 2u);
  EXPECT_EQ(batcher.buffered_for_shard(1), 2u);
  const auto flushed = batcher.take_for_shard(0);
  ASSERT_EQ(flushed.size(), 2u);  // one batch per reporting site
  for (const auto& batch : flushed) {
    for (const auto& msg : batch.msgs) EXPECT_EQ(msg.to, 3u);
  }
  EXPECT_EQ(batcher.buffered_for_shard(0), 0u);
  EXPECT_EQ(batcher.buffered_for_shard(1), 2u);
  EXPECT_THROW(batcher.take_for_shard(2), std::out_of_range);
}

TEST(SimNetwork, FlushShardPutsPendingBatchesOnTheWire) {
  net::NetworkConfig config;
  config.link.latency = 1.0;
  config.batch_interval = 50;  // far deadline: nothing flushes on its own
  net::SimNetwork net(/*num_sites=*/2, config, /*num_coordinators=*/2);
  class NullNode final : public sim::Node {
   public:
    void on_message(const sim::Message&, net::Transport&) override {}
    std::size_t state_size() const noexcept override { return 0; }
  };
  NullNode nodes[4];
  for (sim::NodeId id = 0; id < 4; ++id) net.attach(id, &nodes[id]);
  auto report = [](sim::NodeId site, sim::NodeId coordinator) {
    sim::Message msg;
    msg.from = site;
    msg.to = coordinator;
    msg.type = sim::MsgType::kSlidingReport;
    return msg;
  };
  net.send(report(0, 2));
  net.send(report(1, 2));
  net.send(report(0, 3));
  EXPECT_EQ(net.stats().batches_flushed, 0u);
  EXPECT_EQ(net.in_flight(), 0u);
  net.flush_shard(0);
  EXPECT_EQ(net.stats().batches_flushed, 2u);  // site 0 + site 1 -> shard 0
  EXPECT_EQ(net.in_flight(), 2u);              // on the latency link now
  net.flush_shard(1);
  EXPECT_EQ(net.stats().batches_flushed, 3u);
  net.finish();
  EXPECT_EQ(net.counters().total, 3u);  // three wire units, coalesced
  EXPECT_EQ(net.logical_counters().total, 3u);
}

}  // namespace
}  // namespace dds
