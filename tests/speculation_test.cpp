// The speculative-lockstep determinism suite.
//
// Speculative lockstep (sim/sharded_engine.h) runs waves past the
// transport's delivery-horizon certificate, defers mid-wave deliveries
// into a playout queue, and rolls individual sites back from wave-start
// snapshots when a delivery lands inside a slot range they already
// executed. Its contract is the lockstep contract: bit-identical
// samples, estimates, counters, and full wire traces versus the
// SerialEngine on the same network — which this file pins across wire
// pathologies (sub-slot latency, jitter, loss + retransmission,
// batching), protocols (infinite, with-replacement, DRS, sharded
// routed sites), and seeds, plus a forced-rollback fuzz that proves the
// rollback path actually runs while the outputs stay identical, and the
// make_engine mode_reason() decision table.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "baseline/baseline_system.h"
#include "core/system.h"
#include "net/sim_network.h"
#include "query/estimators.h"
#include "sim/sharded_engine.h"
#include "sim/sources.h"
#include "util/rng.h"

namespace dds {
namespace {

using sim::ListSource;

std::vector<sim::Arrival> infinite_stream(std::uint32_t sites, std::uint64_t n,
                                          std::uint64_t domain,
                                          std::uint64_t seed) {
  util::SplitMix64 gen(seed);
  std::vector<sim::Arrival> out;
  out.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    out.push_back(sim::Arrival{static_cast<sim::Slot>(i),
                               static_cast<sim::NodeId>(gen.next() % sites),
                               1 + gen.next() % domain});
  }
  return out;
}

/// Full logical trace + wire counters + pathology statistics + sample:
/// everything the lockstep contract covers, byte for byte.
struct WireFingerprint {
  std::vector<std::uint64_t> trace;
  std::uint64_t wire_total = 0;
  std::uint64_t wire_bytes = 0;
  std::uint64_t logical_total = 0;
  std::uint64_t drops = 0;
  std::uint64_t retransmissions = 0;
  std::uint64_t batches_flushed = 0;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> sample;

  bool operator==(const WireFingerprint&) const = default;
};

template <typename System, typename SampleFn>
WireFingerprint wire_fingerprint_run(System& system,
                                     const std::vector<sim::Arrival>& arrivals,
                                     SampleFn sample_fn) {
  WireFingerprint fp;
  system.bus().set_tap([&fp](const sim::Message& m) {
    fp.trace.push_back((static_cast<std::uint64_t>(m.from) << 40) |
                       (static_cast<std::uint64_t>(m.to) << 8) |
                       static_cast<std::uint64_t>(m.type));
    fp.trace.push_back(m.a ^ (m.b * 3) ^ (m.c * 7) ^ m.instance);
  });
  ListSource source(arrivals);
  system.run(source);
  fp.wire_total = system.bus().counters().total;
  fp.wire_bytes = system.bus().counters().bytes;
  auto* net = dynamic_cast<net::SimNetwork*>(&system.bus());
  fp.logical_total = net->logical_counters().total;
  fp.drops = net->stats().drops;
  fp.retransmissions = net->stats().retransmissions;
  fp.batches_flushed = net->stats().batches_flushed;
  fp.sample = sample_fn(system);
  return fp;
}

/// The speculation statistics of a system's engine (nullptr when the
/// deployment landed on the serial engine).
const sim::ShardedEngine* sharded(const sim::Engine& engine) {
  return dynamic_cast<const sim::ShardedEngine*>(&engine);
}

auto infinite_sample = [](core::InfiniteSystem& s) {
  std::vector<std::pair<std::uint64_t, std::uint64_t>> out;
  out.emplace_back(0, static_cast<std::uint64_t>(
                          query::estimate_distinct(s.sample()) * 1e6));
  for (const auto& e : s.sample().entries()) {
    out.emplace_back(e.element, e.hash);
  }
  return out;
};

constexpr std::uint32_t kSites = 13;  // not a multiple of the thread count
constexpr std::uint64_t kSeeds[] = {1, 2, 3};

TEST(SpeculativeLockstep, InfiniteSubSlotLatencyMatchesSerial) {
  // The headline wire: latency far below one slot, so plain lockstep
  // waves collapse to single slots while speculation runs 32-slot
  // waves. Every reply lands inside an already-running wave.
  for (const std::uint64_t seed : kSeeds) {
    const auto arrivals = infinite_stream(kSites, 6000, 900, seed * 13 + 2);
    auto run_once = [&](std::uint32_t threads, std::uint32_t window) {
      core::SystemConfig config{kSites, 8, hash::HashKind::kMurmur2, seed};
      config.num_threads = threads;
      config.speculation_window = window;
      config.network.link.latency = 0.25;
      core::InfiniteSystem system(config);
      if (threads > 1 && window > 0) {
        EXPECT_STREQ(system.runner().mode_reason(),
                     "sharded: speculative lockstep");
        EXPECT_TRUE(sharded(system.engine())->speculative());
      }
      return wire_fingerprint_run(system, arrivals, infinite_sample);
    };
    const WireFingerprint want = run_once(1, 0);
    EXPECT_EQ(want, run_once(4, 32));
  }
}

TEST(SpeculativeLockstep, InfiniteJitterLossRetransmitMatchesSerial) {
  // Adversarial delivery times: jitter spreads arrivals across the
  // wave, drops + retransmission re-inject messages at later times.
  for (const std::uint64_t seed : kSeeds) {
    const auto arrivals = infinite_stream(kSites, 6000, 700, seed * 7 + 3);
    auto run_once = [&](std::uint32_t threads, std::uint32_t window) {
      core::SystemConfig config{kSites, 8, hash::HashKind::kMurmur3, seed};
      config.num_threads = threads;
      config.speculation_window = window;
      config.network.link.latency = 1.5;
      config.network.link.jitter = 0.75;
      config.network.link.drop_rate = 0.05;
      config.network.link.retransmit = true;
      core::InfiniteSystem system(config);
      return wire_fingerprint_run(system, arrivals, infinite_sample);
    };
    const WireFingerprint want = run_once(1, 0);
    EXPECT_GT(want.drops, 0u) << "wire not lossy enough to prove anything";
    EXPECT_EQ(want, run_once(4, 16));
  }
}

TEST(SpeculativeLockstep, InfiniteSuppressDuplicatesMatchesSerial) {
  // The suppression extension adds per-site dedup state (an unordered
  // set) to the snapshot images; rollbacks must round-trip it.
  for (const std::uint64_t seed : kSeeds) {
    const auto arrivals = infinite_stream(kSites, 6000, 400, seed * 31 + 1);
    auto run_once = [&](std::uint32_t threads, std::uint32_t window) {
      core::SystemConfig config{kSites, 12, hash::HashKind::kMurmur2, seed};
      config.num_threads = threads;
      config.speculation_window = window;
      config.network.link.latency = 0.5;
      config.network.link.jitter = 0.25;
      core::InfiniteSystem system(config, /*eager_threshold=*/true,
                                  /*suppress_duplicates=*/true);
      return wire_fingerprint_run(system, arrivals, infinite_sample);
    };
    const WireFingerprint want = run_once(1, 0);
    EXPECT_EQ(want, run_once(4, 24));
  }
}

TEST(SpeculativeLockstep, WithReplacementBatchedWireMatchesSerial) {
  // s independent copies per site (length-prefixed nested snapshots)
  // over a batching wire: flushes land whole message batches mid-wave.
  for (const std::uint64_t seed : kSeeds) {
    const auto arrivals = infinite_stream(kSites, 4000, 1200, seed * 13 + 7);
    auto run_once = [&](std::uint32_t threads, std::uint32_t window) {
      core::SystemConfig config{kSites, 6, hash::HashKind::kMurmur2, seed};
      config.num_threads = threads;
      config.speculation_window = window;
      config.network.link.latency = 1.0;
      config.network.batch_interval = 3;
      config.network.batch_max_msgs = 8;
      core::WithReplacementSystem system(config);
      return wire_fingerprint_run(
          system, arrivals, [](core::WithReplacementSystem& s) {
            std::vector<std::pair<std::uint64_t, std::uint64_t>> out;
            for (const auto e : s.coordinator().sample()) {
              out.emplace_back(e, 0);
            }
            return out;
          });
    };
    const WireFingerprint want = run_once(1, 0);
    EXPECT_GT(want.batches_flushed, 0u);
    EXPECT_EQ(want, run_once(4, 16));
  }
}

TEST(SpeculativeLockstep, DrsRngStateRollsBackWithTheSite) {
  // DRS draws a fresh random tag per arrival, so a rolled-back replay
  // must rewind the site's RNG too — the snapshot captures the xoshiro
  // state words. Any divergence shows up in the trace immediately.
  for (const std::uint64_t seed : kSeeds) {
    const auto arrivals = infinite_stream(kSites, 5000, 800, seed * 3 + 11);
    auto run_once = [&](std::uint32_t threads, std::uint32_t window) {
      core::SystemConfig config{kSites, 10, hash::HashKind::kMurmur2, seed};
      config.num_threads = threads;
      config.speculation_window = window;
      config.network.link.latency = 0.25;
      baseline::DrsSystem system(config);
      return wire_fingerprint_run(system, arrivals, [](baseline::DrsSystem& s) {
        std::vector<std::pair<std::uint64_t, std::uint64_t>> out;
        for (const auto e : s.coordinator().sample()) out.emplace_back(e, 0);
        return out;
      });
    };
    const WireFingerprint want = run_once(1, 0);
    EXPECT_EQ(want, run_once(4, 32));
  }
}

TEST(SpeculativeLockstep, ShardedRoutedSitesMatchSerial) {
  // Routed sites wrap per-shard copies plus a route cache whose hit
  // counters are registered metrics — the snapshot must round-trip the
  // FULL cache state or re-executed lookups inflate the hit rate.
  const auto arrivals = infinite_stream(kSites, 8000, 1500, 31);
  auto run_once = [&](std::uint32_t threads, std::uint32_t window) {
    core::SystemConfig config{kSites, 16, hash::HashKind::kMurmur2, 21};
    config.num_shards = 3;
    config.num_threads = threads;
    config.speculation_window = window;
    config.network.link.latency = 0.5;
    config.observability.metrics = true;
    core::InfiniteSystem system(config);
    auto fp = wire_fingerprint_run(system, arrivals, infinite_sample);
    // Fold the route-cache metrics into the fingerprint: identical
    // lookups AND hits proves the cache state rolled back with the site.
    const auto snapshot = system.observability().snapshot();
    fp.sample.emplace_back(snapshot.counter_or("deployment.route_cache.hits", 0),
                           snapshot.counter_or("deployment.route_cache.lookups", 0));
    return fp;
  };
  const WireFingerprint want = run_once(1, 0);
  EXPECT_EQ(want, run_once(4, 24));
}

TEST(SpeculativeLockstep, BatchedIngestMatchesSerial) {
  // Engine-level gathered on_element_batch dispatch composes with
  // speculation: the rollback journal indexes plan positions, which the
  // batched hot path shares with element-at-a-time dispatch.
  const auto arrivals = infinite_stream(kSites, 6000, 900, 15);
  auto run_once = [&](std::uint32_t threads, std::uint32_t window,
                      std::uint32_t batch) {
    core::SystemConfig config{kSites, 8, hash::HashKind::kMurmur2, 5};
    config.num_threads = threads;
    config.speculation_window = window;
    config.ingest_batch = batch;
    config.network.link.latency = 0.25;
    core::InfiniteSystem system(config);
    return wire_fingerprint_run(system, arrivals, infinite_sample);
  };
  const WireFingerprint want = run_once(1, 0, 1);
  EXPECT_EQ(want, run_once(4, 32, 16));
}

TEST(SpeculativeLockstep, ForcedRollbackFuzz) {
  // The adversarial shape: sub-slot latency guarantees every report's
  // reply lands one slot after it was sent — inside the running wave,
  // usually at a position the fast-running worker has already passed.
  // The rollback path must therefore actually execute (pinned below),
  // and the outputs must still be bit-identical to serial.
  std::uint64_t total_rollbacks = 0;
  std::uint64_t total_deferred = 0;
  for (const std::uint64_t seed : {7u, 19u, 23u, 41u}) {
    const auto arrivals =
        infinite_stream(kSites, 6000, 300, seed * 101 + 13);
    core::SystemConfig config{kSites, 16, hash::HashKind::kMurmur2, seed};
    config.network.link.latency = 0.25;

    core::SystemConfig serial_config = config;
    core::InfiniteSystem serial(serial_config);
    const WireFingerprint want =
        wire_fingerprint_run(serial, arrivals, infinite_sample);

    config.num_threads = 4;
    config.speculation_window = 64;
    core::InfiniteSystem spec(config);
    ASSERT_STREQ(spec.runner().mode_reason(), "sharded: speculative lockstep");
    const WireFingerprint got =
        wire_fingerprint_run(spec, arrivals, infinite_sample);
    EXPECT_EQ(want, got);

    const sim::ShardedEngine* engine = sharded(spec.engine());
    ASSERT_NE(engine, nullptr);
    EXPECT_TRUE(engine->speculative());
    EXPECT_GT(engine->deferred_deliveries(), 0u)
        << "no delivery ever landed mid-wave; the wire is not speculative";
    EXPECT_GT(engine->snapshot_bytes(), 0u);
    total_rollbacks += engine->rollbacks();
    total_deferred += engine->deferred_deliveries();
  }
  // Individual seeds may get lucky (deliveries landing at positions the
  // site has not reached), but across the sweep rollbacks must happen.
  EXPECT_GT(total_rollbacks, 0u) << "rollback path never exercised";
  EXPECT_GT(total_deferred, total_rollbacks);
}

TEST(SpeculativeLockstep, LongWavesActuallyForm) {
  // The perf claim behind abl17, hardware-independent: with a sub-slot
  // wire, mean wave length under speculation is a large multiple of the
  // horizon-bounded baseline (whose waves are ~1 slot).
  const auto arrivals = infinite_stream(kSites, 6000, 900, 77);
  auto mean_wave = [&](std::uint32_t window) {
    core::SystemConfig config{kSites, 8, hash::HashKind::kMurmur2, 9};
    config.num_threads = 4;
    config.speculation_window = window;
    config.network.link.latency = 0.25;
    core::InfiniteSystem system(config);
    ListSource source(arrivals);
    system.run(source);
    const sim::ShardedEngine* engine = sharded(system.engine());
    return static_cast<double>(engine->wave_slots_total()) /
           static_cast<double>(engine->waves());
  };
  const double baseline = mean_wave(0);
  const double speculative = mean_wave(32);
  EXPECT_LE(baseline, 2.0);
  EXPECT_GE(speculative, 8.0 * baseline);
}

// ------------------------------------------------- mode decision table --

TEST(SpeculativeLockstep, ModeReasonDecisionTable) {
  const auto make = [](std::uint32_t threads, std::uint32_t window,
                       double latency) {
    core::SystemConfig config{8, 8, hash::HashKind::kMurmur2, 3};
    config.num_threads = threads;
    config.speculation_window = window;
    config.network.link.latency = latency;
    return std::make_unique<core::InfiniteSystem>(config);
  };
  // Serial fallbacks, now with a queryable reason.
  EXPECT_STREQ(make(1, 0, 0.0)->runner().mode_reason(),
               "serial: num_threads == 1");
  {
    core::SystemConfig config{8, 8, hash::HashKind::kMurmur2, 3};
    config.num_threads = 4;
    config.network.link.jitter_stddev = 0.5;  // zero clamp: no horizon
    core::InfiniteSystem system(config);
    EXPECT_STREQ(system.runner().name(), "serial");
    EXPECT_STREQ(system.runner().mode_reason(),
                 "serial: zero-horizon wire (no positive delivery bound)");
  }
  // Sharded selections.
  EXPECT_STREQ(make(4, 0, 0.0)->runner().mode_reason(),
               "sharded: run-ahead (synchronous wire)");
  EXPECT_STREQ(make(4, 16, 0.0)->runner().mode_reason(),
               "sharded: run-ahead (synchronous wire)");
  EXPECT_STREQ(make(4, 0, 1.5)->runner().mode_reason(),
               "sharded: lockstep (delivery-horizon waves)");
  EXPECT_STREQ(make(4, 16, 1.5)->runner().mode_reason(),
               "sharded: speculative lockstep");
  // Slot-begin protocols (sliding windows) never speculate.
  {
    core::SlidingSystemConfig config;
    config.num_sites = 8;
    config.num_threads = 4;
    config.speculation_window = 16;
    config.network.link.latency = 1.5;
    core::SlidingSystem system(config);
    EXPECT_STREQ(system.runner().mode_reason(),
                 "sharded: lockstep (slot-begin protocol; speculation off)");
    EXPECT_FALSE(sharded(system.engine())->speculative());
  }
}

TEST(SpeculativeLockstep, SlidingWithWindowRequestedStaysIdentical) {
  // Requesting speculation on a slot-begin protocol silently (but
  // queryably) downgrades to plain lockstep — outputs must be untouched.
  util::SplitMix64 gen(55);
  std::vector<sim::Arrival> arrivals;
  for (sim::Slot t = 0; t < 200; ++t) {
    for (int a = 0; a < 5; ++a) {
      arrivals.push_back(sim::Arrival{
          t, static_cast<sim::NodeId>(gen.next() % kSites),
          1 + gen.next() % 400});
    }
  }
  auto run_once = [&](std::uint32_t threads, std::uint32_t window) {
    core::SlidingSystemConfig config;
    config.num_sites = kSites;
    config.window = 30;
    config.sample_size = 2;
    config.seed = 5;
    config.num_threads = threads;
    config.speculation_window = window;
    config.network.link.latency = 1.5;
    config.network.link.drop_rate = 0.05;
    config.network.link.retransmit = true;
    core::SlidingSystem system(config);
    return wire_fingerprint_run(system, arrivals, [](core::SlidingSystem& s) {
      std::vector<std::pair<std::uint64_t, std::uint64_t>> out;
      for (const auto e : s.coordinator().sample(s.runner().current_slot())) {
        out.emplace_back(e, 0);
      }
      return out;
    });
  };
  const WireFingerprint want = run_once(1, 0);
  EXPECT_EQ(want, run_once(4, 16));
}

}  // namespace
}  // namespace dds
