// Unit and statistical tests for the hash library.
#include <gtest/gtest.h>

#include <array>
#include <cstring>
#include <string>
#include <vector>

#include "hash/hash_function.h"
#include "util/stats.h"

namespace dds::hash {
namespace {

// ------------------------------------------------------------ murmur2 --

TEST(Murmur2, BufferAndU64PathsAgree) {
  for (std::uint64_t key :
       {0ULL, 1ULL, 42ULL, 0xDEADBEEFULL, ~0ULL, 0x0123456789ABCDEFULL}) {
    for (std::uint64_t seed : {0ULL, 7ULL, 0xBADC0FFEULL}) {
      std::array<unsigned char, 8> buf;
      std::memcpy(buf.data(), &key, 8);
      EXPECT_EQ(murmur2_64(buf.data(), 8, seed), murmur2_64(key, seed))
          << "key=" << key << " seed=" << seed;
    }
  }
}

TEST(Murmur2, HandlesAllTailLengths) {
  const std::string data = "0123456789abcdef";
  std::vector<std::uint64_t> hashes;
  for (std::size_t len = 0; len <= data.size(); ++len) {
    hashes.push_back(murmur2_64(data.data(), len, 99));
  }
  // Every prefix length hashes differently (w.h.p. for a good hash).
  for (std::size_t i = 0; i < hashes.size(); ++i) {
    for (std::size_t j = i + 1; j < hashes.size(); ++j) {
      EXPECT_NE(hashes[i], hashes[j]) << i << " vs " << j;
    }
  }
}

TEST(Murmur2, SeedChangesOutput) {
  EXPECT_NE(murmur2_64(123ULL, 1), murmur2_64(123ULL, 2));
}

TEST(Murmur2, Deterministic) {
  EXPECT_EQ(murmur2_64(987654321ULL, 5), murmur2_64(987654321ULL, 5));
}

// ------------------------------------------------------------ murmur3 --

TEST(Murmur3, BufferAndU64PathsAgree) {
  for (std::uint64_t key : {0ULL, 17ULL, 0xFEEDFACEULL, ~0ULL}) {
    unsigned char buf[8];
    std::memcpy(buf, &key, 8);
    EXPECT_EQ(murmur3_64(buf, 8, 3), murmur3_64(key, 3));
  }
}

TEST(Murmur3, KnownVector) {
  // murmur3 x64-128 of the empty string with seed 0 is all-zero input:
  // h1 = h2 = 0 -> both fmix(0 + len adjustments). Compute expectations
  // from the reference property: hash of "" with seed 0.
  const auto digest = murmur3_128("", 0, 0);
  EXPECT_EQ(digest[0], 0ULL);
  EXPECT_EQ(digest[1], 0ULL);
  // And a couple of stable regression pins for non-trivial input.
  const std::string s = "hello, murmur3";
  const auto d1 = murmur3_128(s.data(), s.size(), 42);
  const auto d2 = murmur3_128(s.data(), s.size(), 42);
  EXPECT_EQ(d1, d2);
  EXPECT_NE(d1[0], 0ULL);
}

TEST(Murmur3, TailLengthsAllDiffer) {
  const std::string data = "abcdefghijklmnopqrstuvwxyz0123456789";
  std::vector<std::uint64_t> hashes;
  for (std::size_t len = 1; len <= 17; ++len) {
    hashes.push_back(murmur3_64(data.data(), len, 0));
  }
  for (std::size_t i = 0; i < hashes.size(); ++i) {
    for (std::size_t j = i + 1; j < hashes.size(); ++j) {
      EXPECT_NE(hashes[i], hashes[j]);
    }
  }
}

// --------------------------------------------------------- tabulation --

TEST(Tabulation, DeterministicPerSeed) {
  TabulationHash a(5), b(5), c(6);
  EXPECT_EQ(a(12345), b(12345));
  EXPECT_NE(a(12345), c(12345));
}

TEST(Tabulation, SingleByteChangesPropagate) {
  TabulationHash h(9);
  for (int byte = 0; byte < 8; ++byte) {
    EXPECT_NE(h(0ULL), h(1ULL << (8 * byte)));
  }
}

// ------------------------------------------------------ HashFunction --

class HashFunctionAllKinds : public ::testing::TestWithParam<HashKind> {};

TEST_P(HashFunctionAllKinds, DeterministicAndSeedSensitive) {
  HashFunction h1(GetParam(), 111);
  HashFunction h2(GetParam(), 111);
  HashFunction h3(GetParam(), 222);
  EXPECT_EQ(h1(42), h2(42));
  EXPECT_NE(h1(42), h3(42));
  EXPECT_NE(h1(42), h1(43));
}

TEST_P(HashFunctionAllKinds, UnitIntervalInRange) {
  HashFunction h(GetParam(), 7);
  for (std::uint64_t key = 0; key < 1000; ++key) {
    const double u = h.unit(key);
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST_P(HashFunctionAllKinds, OutputLooksUniform) {
  // Bucket the top bits of 64k hashes; chi-square against uniform. Keys
  // are spread across all bytes (Weyl sequence) so byte-local schemes
  // like tabulation see varied table rows.
  HashFunction h(GetParam(), 31);
  constexpr std::size_t kBins = 64;
  std::vector<std::uint64_t> counts(kBins, 0);
  for (std::uint64_t i = 0; i < 65536; ++i) {
    const std::uint64_t key = i * 0x9E3779B97F4A7C15ULL;
    ++counts[h(key) >> 58];  // top 6 bits
  }
  EXPECT_LT(util::chi_square_uniform(counts),
            util::chi_square_critical(kBins - 1, 0.001))
      << to_string(GetParam());
}

TEST_P(HashFunctionAllKinds, UnitValuesPassKsTest) {
  HashFunction h(GetParam(), 77);
  std::vector<double> us;
  for (std::uint64_t key = 0; key < 20000; ++key) us.push_back(h.unit(key));
  EXPECT_LT(util::ks_statistic_uniform(us), util::ks_critical(us.size(), 0.01))
      << to_string(GetParam());
}

INSTANTIATE_TEST_SUITE_P(AllKinds, HashFunctionAllKinds,
                         ::testing::Values(HashKind::kMurmur2,
                                           HashKind::kMurmur3,
                                           HashKind::kSplitMix,
                                           HashKind::kTabulation),
                         [](const auto& info) { return to_string(info.param); });

TEST(HashKindParsing, RoundTrips) {
  for (HashKind kind : {HashKind::kMurmur2, HashKind::kMurmur3,
                        HashKind::kSplitMix, HashKind::kTabulation}) {
    EXPECT_EQ(parse_hash_kind(to_string(kind)), kind);
  }
  EXPECT_THROW(parse_hash_kind("sha512"), std::invalid_argument);
}

TEST(UnitInterval, EndpointsAndMonotonicity) {
  EXPECT_DOUBLE_EQ(unit_interval(0), 0.0);
  EXPECT_LT(unit_interval(kHashMax), 1.0);
  EXPECT_GT(unit_interval(kHashMax), 0.9999999);
  EXPECT_LT(unit_interval(1ULL << 62), unit_interval(1ULL << 63));
}

// --------------------------------------------------------- HashFamily --

TEST(HashFamily, MembersAreIndependent) {
  HashFamily family(HashKind::kMurmur2, 1234);
  HashFunction f0 = family.at(0);
  HashFunction f1 = family.at(1);
  EXPECT_NE(f0.seed(), f1.seed());
  // Rank correlation between two members over shared keys should be
  // negligible: count key pairs ordered the same way by both.
  int concordant = 0;
  constexpr int kPairs = 2000;
  for (int i = 0; i < kPairs; ++i) {
    const std::uint64_t a = static_cast<std::uint64_t>(2 * i);
    const std::uint64_t b = a + 1;
    const bool o0 = f0(a) < f0(b);
    const bool o1 = f1(a) < f1(b);
    concordant += (o0 == o1) ? 1 : 0;
  }
  EXPECT_NEAR(concordant / static_cast<double>(kPairs), 0.5, 0.05);
}

TEST(HashFamily, SameIndexSameFunction) {
  HashFamily family(HashKind::kTabulation, 88);
  EXPECT_EQ(family.at(3)(999), family.at(3)(999));
}

// ----------------------------------------------------- batched kernels --

TEST(BatchedHashing, Murmur2BatchMatchesSingle) {
  std::vector<std::uint64_t> keys;
  for (std::uint64_t i = 0; i < 257; ++i) keys.push_back(i * i + 0xABCDULL);
  std::vector<std::uint64_t> out(keys.size());
  for (const std::uint64_t seed : {0ULL, 7ULL, ~0ULL}) {
    murmur2_64_batch(keys.data(), keys.size(), seed, out.data());
    for (std::size_t i = 0; i < keys.size(); ++i) {
      ASSERT_EQ(out[i], murmur2_64(keys[i], seed)) << "i=" << i;
    }
  }
}

TEST(BatchedHashing, Murmur3BatchMatchesSingleAndBuffer) {
  std::vector<std::uint64_t> keys{0ULL, 1ULL, 17ULL, 0xFEEDFACEULL, ~0ULL,
                                  0x123456789ABCDEFULL};
  std::vector<std::uint64_t> out(keys.size());
  for (const std::uint64_t seed : {0ULL, 3ULL, 99ULL}) {
    murmur3_64_batch(keys.data(), keys.size(), seed, out.data());
    for (std::size_t i = 0; i < keys.size(); ++i) {
      ASSERT_EQ(out[i], murmur3_64(keys[i], seed));
      unsigned char buf[8];
      std::memcpy(buf, &keys[i], 8);
      ASSERT_EQ(out[i], murmur3_64(buf, 8, seed));
    }
  }
}

TEST_P(HashFunctionAllKinds, HashBatchMatchesOperator) {
  // The hoisted-dispatch batch path must be bit-identical to the
  // per-element operator() for every kind, at every batch width the
  // ingest layer uses (plus empty and odd tails).
  const HashFunction f(GetParam(), 31);
  std::vector<std::uint64_t> keys;
  for (std::uint64_t i = 0; i < 131; ++i) keys.push_back(i * 2654435761ULL);
  std::vector<std::uint64_t> out(keys.size(), 0);
  for (const std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{4},
                              std::size_t{7}, std::size_t{8},
                              std::size_t{64}, keys.size()}) {
    f.hash_batch(keys.data(), n, out.data());
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(out[i], f(keys[i])) << "kind batch n=" << n << " i=" << i;
    }
  }
}

}  // namespace
}  // namespace dds::hash
