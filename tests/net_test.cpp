// Tests for the event-driven network transport: equivalence with the
// zero-delay bus at trivial settings, deterministic replay, latency
// scheduling, drop/retransmit delivery guarantees, batcher flush
// boundaries, and byte accounting.
#include <gtest/gtest.h>

#include <cstdint>
#include <tuple>
#include <vector>

#include "core/system.h"
#include "net/batcher.h"
#include "net/config.h"
#include "net/factory.h"
#include "net/link_model.h"
#include "net/sim_network.h"
#include "sim/bus.h"
#include "stream/generators.h"
#include "stream/partitioner.h"

namespace dds::net {
namespace {

/// Logs deliveries; optionally replies to every incoming message.
class Recorder final : public sim::Node {
 public:
  explicit Recorder(sim::NodeId id, bool reply = false)
      : id_(id), reply_(reply) {}

  void on_message(const sim::Message& msg, Transport& net) override {
    received.push_back(msg);
    if (reply_ && msg.from != id_) {
      sim::Message r;
      r.from = id_;
      r.to = msg.from;
      r.type = sim::MsgType::kThresholdReply;
      r.b = msg.b + 1;
      net.send(r);
    }
  }

  std::vector<sim::Message> received;

 private:
  sim::NodeId id_;
  bool reply_;
};

sim::Message site_report(sim::NodeId from, sim::NodeId to, std::uint64_t b) {
  sim::Message m;
  m.from = from;
  m.to = to;
  m.type = sim::MsgType::kReportElement;
  m.b = b;
  return m;
}

// ------------------------------------------------------- factory/config --

TEST(NetworkConfig, TrivialityAndFactorySelection) {
  NetworkConfig config;
  EXPECT_TRUE(config.trivial());
  EXPECT_NE(dynamic_cast<sim::Bus*>(make_transport(3, config).get()), nullptr);

  config.link.latency = 2.0;
  EXPECT_FALSE(config.trivial());
  EXPECT_NE(dynamic_cast<SimNetwork*>(make_transport(3, config).get()),
            nullptr);

  NetworkConfig forced;
  forced.kind = TransportKind::kSimNetwork;
  EXPECT_TRUE(forced.trivial());
  EXPECT_NE(dynamic_cast<SimNetwork*>(make_transport(3, forced).get()),
            nullptr);

  NetworkConfig batched;
  batched.batch_interval = 4;
  EXPECT_FALSE(batched.trivial());
}

// ---------------------------------------------- zero-config equivalence --

using Trace = std::vector<
    std::tuple<sim::NodeId, sim::NodeId, std::uint8_t, std::uint64_t,
               std::uint64_t, std::uint64_t>>;

void tap_into(Transport& t, Trace& out) {
  t.set_tap([&out](const sim::Message& m) {
    out.emplace_back(m.from, m.to, static_cast<std::uint8_t>(m.type), m.a,
                     m.b, m.c);
  });
}

/// Runs the infinite-window protocol over a fixed workload on the given
/// transport kind; returns (message trace, final counters, sorted sample).
std::tuple<Trace, BusCounters, std::vector<stream::Element>>
run_infinite_traced(TransportKind kind) {
  core::SystemConfig config;
  config.num_sites = 4;
  config.sample_size = 8;
  config.seed = 7;
  config.network.kind = kind;
  core::InfiniteSystem system(config);
  Trace trace;
  tap_into(system.bus(), trace);
  stream::ZipfStream input(/*n=*/3000, /*domain=*/500, /*alpha=*/1.1,
                           /*seed=*/11);
  auto source = stream::make_partitioner(stream::Distribution::kRandom,
                                         input, config.num_sites,
                                         /*seed=*/13, 1.0);
  system.run(*source);
  auto sample = system.coordinator().sample().elements();
  std::sort(sample.begin(), sample.end());
  return {std::move(trace), system.bus().counters(), std::move(sample)};
}

TEST(SimNetworkEquivalence, InfiniteProtocolBitIdenticalAtDefaults) {
  const auto [bus_trace, bus_counters, bus_sample] =
      run_infinite_traced(TransportKind::kBus);
  const auto [net_trace, net_counters, net_sample] =
      run_infinite_traced(TransportKind::kSimNetwork);

  EXPECT_EQ(bus_trace, net_trace);
  EXPECT_EQ(bus_sample, net_sample);
  EXPECT_EQ(bus_counters.total, net_counters.total);
  EXPECT_EQ(bus_counters.bytes, net_counters.bytes);
  EXPECT_EQ(bus_counters.site_to_coordinator,
            net_counters.site_to_coordinator);
  EXPECT_EQ(bus_counters.coordinator_to_site,
            net_counters.coordinator_to_site);
  EXPECT_EQ(bus_counters.by_type, net_counters.by_type);
}

/// Same equivalence for the sliding-window protocol (slot clock active).
std::tuple<Trace, BusCounters, std::vector<stream::Element>>
run_sliding_traced(TransportKind kind) {
  core::SlidingSystemConfig config;
  config.num_sites = 3;
  config.window = 40;
  config.sample_size = 2;
  config.seed = 5;
  config.network.kind = kind;
  core::SlidingSystem system(config);
  Trace trace;
  tap_into(system.bus(), trace);
  stream::ZipfStream input(/*n=*/1500, /*domain=*/300, /*alpha=*/1.0,
                           /*seed=*/21);
  stream::SlottedFeeder source(input, config.num_sites, /*per_slot=*/4,
                               /*seed=*/22);
  system.run(source);
  auto sample = system.coordinator().sample(system.runner().current_slot());
  std::sort(sample.begin(), sample.end());
  return {std::move(trace), system.bus().counters(), std::move(sample)};
}

TEST(SimNetworkEquivalence, SlidingProtocolBitIdenticalAtDefaults) {
  const auto [bus_trace, bus_counters, bus_sample] =
      run_sliding_traced(TransportKind::kBus);
  const auto [net_trace, net_counters, net_sample] =
      run_sliding_traced(TransportKind::kSimNetwork);
  EXPECT_EQ(bus_trace, net_trace);
  EXPECT_EQ(bus_sample, net_sample);
  EXPECT_EQ(bus_counters.total, net_counters.total);
  EXPECT_EQ(bus_counters.bytes, net_counters.bytes);
  EXPECT_EQ(bus_counters.by_type, net_counters.by_type);
}

// ------------------------------------------------------------- latency --

TEST(SimNetwork, FixedLatencyDelaysDeliveryUntilDue) {
  NetworkConfig config;
  config.kind = TransportKind::kSimNetwork;
  config.link.latency = 2.0;
  SimNetwork net(1, config);
  Recorder site(0), coord(1);
  net.attach(0, &site);
  net.attach(1, &coord);

  net.set_now(0);
  net.send(site_report(0, 1, 42));
  net.drain();
  EXPECT_TRUE(coord.received.empty());
  EXPECT_EQ(net.in_flight(), 1u);

  net.set_now(1);
  net.drain();
  EXPECT_TRUE(coord.received.empty());

  net.set_now(2);
  net.drain();
  ASSERT_EQ(coord.received.size(), 1u);
  EXPECT_EQ(coord.received[0].b, 42u);
  EXPECT_EQ(net.in_flight(), 0u);
}

TEST(SimNetwork, CascadedRepliesInheritEventTime) {
  NetworkConfig config;
  config.kind = TransportKind::kSimNetwork;
  config.link.latency = 1.0;
  SimNetwork net(1, config);
  Recorder site(0), coord(1, /*reply=*/true);
  net.attach(0, &site);
  net.attach(1, &coord);

  net.set_now(0);
  net.send(site_report(0, 1, 5));
  net.set_now(1);
  net.drain();  // report arrives at t=1, reply departs at t=1
  EXPECT_EQ(coord.received.size(), 1u);
  EXPECT_TRUE(site.received.empty());
  net.set_now(2);
  net.drain();  // reply arrives at t=2
  ASSERT_EQ(site.received.size(), 1u);
  EXPECT_EQ(site.received[0].b, 6u);
}

TEST(SimNetwork, FinishRunsTheQueueDry) {
  NetworkConfig config;
  config.kind = TransportKind::kSimNetwork;
  config.link.latency = 10.0;
  SimNetwork net(1, config);
  Recorder site(0), coord(1);
  net.attach(0, &site);
  net.attach(1, &coord);
  for (std::uint64_t i = 0; i < 5; ++i) net.send(site_report(0, 1, i));
  net.drain();
  EXPECT_TRUE(coord.received.empty());
  net.finish();
  EXPECT_EQ(coord.received.size(), 5u);
  EXPECT_GE(net.virtual_time(), 10.0);
}

// ------------------------------------------------------- determinism --

Trace run_noisy_once(std::uint64_t net_seed) {
  core::SystemConfig config;
  config.num_sites = 4;
  config.sample_size = 6;
  config.seed = 3;
  config.network.kind = TransportKind::kSimNetwork;
  config.network.seed = net_seed;
  config.network.link.latency = 1.0;
  config.network.link.jitter = 2.0;
  config.network.link.drop_rate = 0.1;
  config.network.link.reorder_rate = 0.05;
  core::InfiniteSystem system(config);
  Trace trace;
  tap_into(system.bus(), trace);
  stream::ZipfStream input(/*n=*/2000, /*domain=*/400, /*alpha=*/1.05,
                           /*seed=*/31);
  auto source = stream::make_partitioner(stream::Distribution::kRandom,
                                         input, config.num_sites,
                                         /*seed=*/32, 1.0);
  system.run(*source);
  return trace;
}

TEST(SimNetwork, DeterministicReplayUnderFixedSeed) {
  const Trace a = run_noisy_once(99);
  const Trace b = run_noisy_once(99);
  EXPECT_EQ(a, b);
  const Trace c = run_noisy_once(100);
  EXPECT_NE(a, c);  // different wire randomness perturbs the protocol
}

// -------------------------------------------------- drop / retransmit --

TEST(SimNetwork, RetransmitDeliversEverythingExactlyOnce) {
  NetworkConfig config;
  config.kind = TransportKind::kSimNetwork;
  config.link.drop_rate = 0.5;
  config.link.retransmit = true;
  config.link.retransmit_timeout = 0.5;
  SimNetwork net(1, config);
  Recorder site(0), coord(1);
  net.attach(0, &site);
  net.attach(1, &coord);
  constexpr std::uint64_t kMessages = 500;
  for (std::uint64_t i = 0; i < kMessages; ++i) {
    net.send(site_report(0, 1, i));
  }
  net.finish();
  ASSERT_EQ(coord.received.size(), kMessages);
  // Exactly once, in-order per the retransmission schedule: every b
  // value appears exactly once.
  std::vector<bool> seen(kMessages, false);
  for (const auto& m : coord.received) {
    EXPECT_FALSE(seen[m.b]);
    seen[m.b] = true;
  }
  EXPECT_GT(net.stats().drops, 0u);
  EXPECT_EQ(net.stats().retransmissions, net.stats().drops);
  EXPECT_EQ(net.stats().lost_messages, 0u);
  // Wire cost includes every retry; logical cost does not.
  EXPECT_EQ(net.logical_counters().total, kMessages);
  EXPECT_EQ(net.counters().total, kMessages + net.stats().drops);
}

TEST(SimNetwork, UnreliableLinkLosesMessagesForGood) {
  NetworkConfig config;
  config.kind = TransportKind::kSimNetwork;
  config.link.drop_rate = 0.4;
  config.link.retransmit = false;
  SimNetwork net(1, config);
  Recorder site(0), coord(1);
  net.attach(0, &site);
  net.attach(1, &coord);
  constexpr std::uint64_t kMessages = 1000;
  for (std::uint64_t i = 0; i < kMessages; ++i) {
    net.send(site_report(0, 1, i));
  }
  net.finish();
  EXPECT_EQ(coord.received.size() + net.stats().lost_messages, kMessages);
  EXPECT_GT(net.stats().lost_messages, 0u);   // p=0.4 over 1000 sends
  EXPECT_LT(net.stats().lost_messages, 600u); // and not implausibly many
  EXPECT_EQ(net.stats().retransmissions, 0u);
}

TEST(SimNetwork, RetransmitGivesUpAfterMaxAttempts) {
  NetworkConfig config;
  config.kind = TransportKind::kSimNetwork;
  config.link.drop_rate = 1.0;  // black hole
  config.link.retransmit = true;
  config.link.max_attempts = 4;
  SimNetwork net(1, config);
  Recorder site(0), coord(1);
  net.attach(0, &site);
  net.attach(1, &coord);
  net.send(site_report(0, 1, 1));
  net.finish();
  EXPECT_TRUE(coord.received.empty());
  EXPECT_EQ(net.stats().lost_messages, 1u);
  EXPECT_EQ(net.counters().total, 4u);  // the four attempts hit the wire
  EXPECT_EQ(net.stats().retransmissions, 3u);
  EXPECT_EQ(net.logical_counters().total, 1u);
}

// ------------------------------------------------------------ batching --

TEST(SimNetwork, BatcherFlushesOnIntervalBoundary) {
  NetworkConfig config;
  config.kind = TransportKind::kSimNetwork;
  config.batch_interval = 5;
  SimNetwork net(2, config);
  Recorder s0(0), s1(1), coord(2);
  net.attach(0, &s0);
  net.attach(1, &s1);
  net.attach(2, &coord);

  net.set_now(0);
  net.send(site_report(0, 2, 1));
  net.send(site_report(0, 2, 2));
  net.send(site_report(1, 2, 3));
  net.drain();
  EXPECT_TRUE(coord.received.empty());  // buffering
  EXPECT_EQ(net.counters().total, 0u);
  EXPECT_EQ(net.logical_counters().total, 3u);

  net.set_now(4);
  net.drain();
  EXPECT_TRUE(coord.received.empty());  // deadline is first_slot + 5

  net.set_now(5);
  net.drain();
  ASSERT_EQ(coord.received.size(), 3u);
  EXPECT_EQ(coord.received[0].b, 1u);  // send order preserved
  EXPECT_EQ(coord.received[1].b, 2u);
  EXPECT_EQ(coord.received[2].b, 3u);
  // Two wire units (one per site), byte cost of coalesced batches.
  EXPECT_EQ(net.counters().total, 2u);
  EXPECT_EQ(net.counters().bytes, batch_wire_bytes(2) + batch_wire_bytes(1));
  EXPECT_EQ(net.stats().batches_flushed, 2u);
  EXPECT_EQ(net.stats().batched_messages, 3u);
}

TEST(SimNetwork, BatcherFlushesEarlyAtMaxSize) {
  NetworkConfig config;
  config.kind = TransportKind::kSimNetwork;
  config.batch_interval = 100;
  config.batch_max_msgs = 3;
  SimNetwork net(1, config);
  Recorder site(0), coord(1);
  net.attach(0, &site);
  net.attach(1, &coord);
  net.set_now(0);
  net.send(site_report(0, 1, 1));
  net.send(site_report(0, 1, 2));
  net.drain();
  EXPECT_TRUE(coord.received.empty());
  net.send(site_report(0, 1, 3));  // third message trips the size cap
  net.drain();
  EXPECT_EQ(coord.received.size(), 3u);
  EXPECT_EQ(net.counters().total, 1u);
  EXPECT_EQ(net.counters().bytes, batch_wire_bytes(3));
}

TEST(SimNetwork, CoordinatorTrafficIsNeverBatched) {
  NetworkConfig config;
  config.kind = TransportKind::kSimNetwork;
  config.batch_interval = 50;
  SimNetwork net(1, config);
  Recorder site(0), coord(1);
  net.attach(0, &site);
  net.attach(1, &coord);
  net.set_now(0);
  sim::Message reply;
  reply.from = 1;
  reply.to = 0;
  reply.type = sim::MsgType::kThresholdReply;
  reply.b = 9;
  net.send(reply);
  net.drain();
  ASSERT_EQ(site.received.size(), 1u);  // immediate, not buffered
  EXPECT_EQ(net.counters().total, 1u);
}

TEST(SimNetwork, FinishDeliversBatchableTrafficSentDuringFinish) {
  // A site that reacts to a coordinator message by sending one more
  // (batchable) report — if that report lands in the batcher during
  // finish()'s own delivery cascade, finish must still flush it.
  class OneShotSite final : public sim::Node {
   public:
    void on_message(const sim::Message& msg, Transport& net) override {
      received.push_back(msg);
      if (!sent_) {
        sent_ = true;
        sim::Message m;
        m.from = 0;
        m.to = 1;
        m.type = sim::MsgType::kReportElement;
        m.b = 99;
        net.send(m);
      }
    }
    std::vector<sim::Message> received;

   private:
    bool sent_ = false;
  };

  NetworkConfig config;
  config.kind = TransportKind::kSimNetwork;
  config.batch_interval = 1000;
  config.link.latency = 1.0;
  SimNetwork net(1, config);
  OneShotSite site;
  Recorder coord(1, /*reply=*/true);
  net.attach(0, &site);
  net.attach(1, &coord);

  net.set_now(0);
  net.send(site_report(0, 1, 1));  // buffered in the batcher
  net.finish();
  // The first report triggers a reply, whose handling sends a second
  // batchable report; both must reach the coordinator.
  ASSERT_EQ(coord.received.size(), 2u);
  EXPECT_EQ(coord.received[0].b, 1u);
  EXPECT_EQ(coord.received[1].b, 99u);
  EXPECT_EQ(net.in_flight(), 0u);
  EXPECT_EQ(net.stats().lost_messages, 0u);
}

TEST(SimNetwork, FinishFlushesDanglingBatches) {
  NetworkConfig config;
  config.kind = TransportKind::kSimNetwork;
  config.batch_interval = 1000;
  SimNetwork net(1, config);
  Recorder site(0), coord(1);
  net.attach(0, &site);
  net.attach(1, &coord);
  net.send(site_report(0, 1, 7));
  net.finish();
  ASSERT_EQ(coord.received.size(), 1u);
}

// ------------------------------------------------------ byte parity --

TEST(SimNetwork, ByteAccountingMatchesBusAtZeroLatency) {
  NetworkConfig config;
  config.kind = TransportKind::kSimNetwork;
  SimNetwork net(1, config);
  sim::Bus bus(1);
  Recorder net_site(0), net_coord(1, /*reply=*/true);
  Recorder bus_site(0), bus_coord(1, /*reply=*/true);
  net.attach(0, &net_site);
  net.attach(1, &net_coord);
  bus.attach(0, &bus_site);
  bus.attach(1, &bus_coord);
  for (std::uint64_t i = 0; i < 10; ++i) {
    net.send(site_report(0, 1, i));
    bus.send(site_report(0, 1, i));
    net.drain();
    bus.drain();
  }
  EXPECT_EQ(net.counters().bytes, bus.counters().bytes);
  EXPECT_EQ(net.counters().total, bus.counters().total);
  EXPECT_EQ(net.logical_counters().bytes, bus.counters().bytes);
  EXPECT_EQ(net.sent_by(0), bus.sent_by(0));
  EXPECT_EQ(net.received_by(1), bus.received_by(1));
}

// ------------------------------------------------------ error paths --

TEST(SimNetwork, RejectsBadEndpointsAndUnattached) {
  NetworkConfig config;
  config.kind = TransportKind::kSimNetwork;
  SimNetwork net(1, config);
  Recorder site(0);
  net.attach(0, &site);
  sim::Message bad;
  bad.from = 0;
  bad.to = 9;
  EXPECT_THROW(net.send(bad), std::out_of_range);
  EXPECT_THROW(net.attach(5, &site), std::out_of_range);
  sim::Message to_coord = site_report(0, 1, 0);
  net.send(to_coord);  // coordinator not attached
  EXPECT_THROW(net.drain(), std::logic_error);
}

// --------------------------------------------------- link overrides --

TEST(SimNetwork, PerLinkOverrideShapesOneDirectionOnly) {
  NetworkConfig config;
  config.kind = TransportKind::kSimNetwork;
  SimNetwork net(2, config);
  Recorder s0(0), s1(1), coord(2);
  net.attach(0, &s0);
  net.attach(1, &s1);
  net.attach(2, &coord);
  net.set_link_model(0, 2, std::make_unique<FixedLatencyLink>(3.0));

  net.set_now(0);
  net.send(site_report(0, 2, 1));  // slow link
  net.send(site_report(1, 2, 2));  // default zero-delay link
  net.drain();
  ASSERT_EQ(coord.received.size(), 1u);
  EXPECT_EQ(coord.received[0].b, 2u);
  net.set_now(3);
  net.drain();
  ASSERT_EQ(coord.received.size(), 2u);
  EXPECT_EQ(coord.received[1].b, 1u);
}

}  // namespace
}  // namespace dds::net
