// Tests for workload generation: element streams, synthetic traces, and
// the four distribution strategies.
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "stream/element.h"
#include "stream/generators.h"
#include "stream/partitioner.h"
#include "stream/trace_synth.h"
#include "util/stats.h"

namespace dds::stream {
namespace {

std::vector<sim::Arrival> drain_arrivals(sim::ArrivalSource& src) {
  std::vector<sim::Arrival> out;
  while (auto a = src.next()) out.push_back(*a);
  return out;
}

// ---------------------------------------------------------- generators --

TEST(PairKey, DistinctPairsDistinctKeys) {
  std::unordered_set<Element> keys;
  for (std::uint32_t s = 0; s < 50; ++s) {
    for (std::uint32_t d = 0; d < 50; ++d) {
      keys.insert(pair_key(s, d));
    }
  }
  EXPECT_EQ(keys.size(), 2500u);
  EXPECT_NE(pair_key(1, 2), pair_key(2, 1));  // direction matters
}

TEST(UniformStream, LengthAndDeterminism) {
  UniformStream a(1000, 100, 42), b(1000, 100, 42), c(1000, 100, 43);
  EXPECT_EQ(a.length(), 1000u);
  const auto va = drain(a);
  const auto vb = drain(b);
  const auto vc = drain(c);
  EXPECT_EQ(va, vb);
  EXPECT_NE(va, vc);
  EXPECT_EQ(va.size(), 1000u);
}

TEST(UniformStream, DomainSizeBoundsDistinct) {
  UniformStream s(5000, 10, 7);
  std::unordered_set<Element> distinct;
  while (auto e = s.next()) distinct.insert(*e);
  EXPECT_EQ(distinct.size(), 10u);  // all 10 identifiers hit w.h.p.
}

TEST(UniformStream, RejectsEmptyDomain) {
  EXPECT_THROW(UniformStream(10, 0, 1), std::invalid_argument);
}

TEST(AllDistinctStream, EveryElementUnique) {
  AllDistinctStream s(10000, 5);
  std::unordered_set<Element> seen;
  while (auto e = s.next()) {
    EXPECT_TRUE(seen.insert(*e).second);
  }
  EXPECT_EQ(seen.size(), 10000u);
}

TEST(AllDistinctStream, SaltsProduceDisjointStreams) {
  AllDistinctStream a(1000, 1), b(1000, 2);
  std::unordered_set<Element> ea;
  while (auto e = a.next()) ea.insert(*e);
  std::size_t overlap = 0;
  while (auto e = b.next()) overlap += ea.contains(*e) ? 1 : 0;
  EXPECT_EQ(overlap, 0u);
}

TEST(ZipfStream, RanksWithinDomain) {
  ZipfStream s(20000, 1000, 1.0, 11);
  for (int i = 0; i < 20000; ++i) {
    const auto r = s.next_rank();
    EXPECT_GE(r, 1u);
    EXPECT_LE(r, 1000u);
  }
}

TEST(ZipfStream, RankOneIsMostFrequent) {
  ZipfStream s(100000, 100, 1.2, 13);
  std::map<std::uint64_t, int> counts;
  for (int i = 0; i < 100000; ++i) ++counts[s.next_rank()];
  int max_count = 0;
  std::uint64_t argmax = 0;
  for (const auto& [r, c] : counts) {
    if (c > max_count) {
      max_count = c;
      argmax = r;
    }
  }
  EXPECT_EQ(argmax, 1u);
  // Zipf(1.2): P(1)/P(2) = 2^1.2 ~ 2.30.
  const double ratio = static_cast<double>(counts[1]) / counts[2];
  EXPECT_NEAR(ratio, std::pow(2.0, 1.2), 0.25);
}

TEST(ZipfStream, FrequenciesMatchTheory) {
  // Compare empirical rank frequencies against r^-alpha / H-normalizer.
  constexpr double kAlpha = 1.0;
  constexpr std::uint64_t kDomain = 50;
  constexpr int kDraws = 200000;
  ZipfStream s(kDraws, kDomain, kAlpha, 17);
  std::vector<int> counts(kDomain + 1, 0);
  for (int i = 0; i < kDraws; ++i) ++counts[s.next_rank()];
  double norm = 0;
  for (std::uint64_t r = 1; r <= kDomain; ++r) norm += std::pow(r, -kAlpha);
  for (std::uint64_t r : {1ULL, 2ULL, 5ULL, 10ULL, 25ULL, 50ULL}) {
    const double expected = std::pow(static_cast<double>(r), -kAlpha) / norm;
    const double observed = counts[r] / static_cast<double>(kDraws);
    EXPECT_NEAR(observed, expected, 0.15 * expected + 0.001) << "rank " << r;
  }
}

TEST(ZipfStream, AlphaControlsSkew) {
  // Higher alpha => fewer distinct values drawn.
  auto distinct_count = [](double alpha) {
    ZipfStream s(50000, 100000, alpha, 19);
    std::unordered_set<Element> d;
    while (auto e = s.next()) d.insert(*e);
    return d.size();
  };
  EXPECT_GT(distinct_count(0.5), distinct_count(1.5));
}

TEST(ZipfStream, InvalidParamsThrow) {
  EXPECT_THROW(ZipfStream(10, 0, 1.0, 1), std::invalid_argument);
  EXPECT_THROW(ZipfStream(10, 10, 0.0, 1), std::invalid_argument);
  EXPECT_THROW(ZipfStream(10, 10, -1.0, 1), std::invalid_argument);
}

TEST(VectorStream, Replays) {
  VectorStream s({5, 6, 7});
  EXPECT_EQ(s.length(), 3u);
  EXPECT_EQ(drain(s), (std::vector<Element>{5, 6, 7}));
  EXPECT_EQ(s.next(), std::nullopt);
}

// -------------------------------------------------------- trace synth --

TEST(TraceSynth, SpecsMatchTable51) {
  const auto& oc48 = trace_spec(Dataset::kOc48);
  EXPECT_EQ(oc48.paper_elements, 42'268'510u);
  EXPECT_EQ(oc48.paper_distinct, 4'337'768u);
  const auto& enron = trace_spec(Dataset::kEnron);
  EXPECT_EQ(enron.paper_elements, 1'557'491u);
  EXPECT_EQ(enron.paper_distinct, 374'330u);
}

TEST(TraceSynth, ScaleControlsLength) {
  auto s = make_trace(Dataset::kEnron, 0.01, 3);
  EXPECT_NEAR(static_cast<double>(s->length()), 0.01 * 1'557'491, 1.0);
  EXPECT_THROW(make_trace(Dataset::kEnron, 0.0, 3), std::invalid_argument);
  EXPECT_THROW(make_trace(Dataset::kEnron, 1.5, 3), std::invalid_argument);
}

TEST(TraceSynth, MeasureCountsDistinct) {
  VectorStream s({1, 1, 2, 3, 3, 3});
  const auto stats = measure(s);
  EXPECT_EQ(stats.elements, 6u);
  EXPECT_EQ(stats.distinct, 3u);
}

TEST(TraceSynth, EnronSmallScaleHasPlausibleDuplicateRate) {
  // At 5% scale the stream should still exhibit heavy duplication:
  // distinct/elements well below 1.
  auto s = make_trace(Dataset::kEnron, 0.05, 21);
  const auto stats = measure(*s);
  EXPECT_EQ(stats.elements, 77'875u);
  EXPECT_LT(stats.distinct, stats.elements / 2);
  EXPECT_GT(stats.distinct, stats.elements / 20);
}

TEST(TraceSynth, ParseRoundTrip) {
  EXPECT_EQ(parse_dataset("oc48"), Dataset::kOc48);
  EXPECT_EQ(parse_dataset("enron"), Dataset::kEnron);
  EXPECT_EQ(to_string(Dataset::kOc48), "oc48");
  EXPECT_THROW(parse_dataset("nope"), std::invalid_argument);
}

// -------------------------------------------------------- partitioners --

TEST(Flooding, EveryElementToEverySite) {
  VectorStream s({10, 20, 30});
  FloodingPartitioner part(s, 4);
  const auto arrivals = drain_arrivals(part);
  ASSERT_EQ(arrivals.size(), 12u);
  for (int e = 0; e < 3; ++e) {
    for (int i = 0; i < 4; ++i) {
      const auto& a = arrivals[e * 4 + i];
      EXPECT_EQ(a.element, static_cast<Element>((e + 1) * 10));
      EXPECT_EQ(a.site, static_cast<sim::NodeId>(i));
      EXPECT_EQ(a.slot, e);
    }
  }
}

TEST(RoundRobin, CyclesThroughSites) {
  VectorStream s({1, 2, 3, 4, 5, 6});
  RoundRobinPartitioner part(s, 3);
  const auto arrivals = drain_arrivals(part);
  ASSERT_EQ(arrivals.size(), 6u);
  EXPECT_EQ(arrivals[0].site, 0u);
  EXPECT_EQ(arrivals[1].site, 1u);
  EXPECT_EQ(arrivals[2].site, 2u);
  EXPECT_EQ(arrivals[3].site, 0u);
}

TEST(RandomPartitioner, RoughlyBalanced) {
  UniformStream s(30000, 1000000, 5);
  RandomPartitioner part(s, 5, 77);
  std::vector<std::uint64_t> per_site(5, 0);
  while (auto a = part.next()) ++per_site[a->site];
  EXPECT_LT(util::chi_square_uniform(per_site),
            util::chi_square_critical(4, 0.001));
}

TEST(RandomPartitioner, DeterministicUnderSeed) {
  UniformStream s1(100, 50, 5), s2(100, 50, 5);
  RandomPartitioner p1(s1, 4, 9), p2(s2, 4, 9);
  while (true) {
    auto a1 = p1.next();
    auto a2 = p2.next();
    ASSERT_EQ(a1.has_value(), a2.has_value());
    if (!a1) break;
    EXPECT_EQ(a1->site, a2->site);
    EXPECT_EQ(a1->element, a2->element);
  }
}

TEST(Dominate, RateSkewsTowardSiteZero) {
  constexpr double kRate = 50.0;
  constexpr std::uint32_t kSites = 10;
  UniformStream s(50000, 1000000, 5);
  DominatePartitioner part(s, kSites, kRate, 31);
  std::vector<double> per_site(kSites, 0);
  while (auto a = part.next()) ++per_site[a->site];
  // P[site 0] = rate / (rate + k - 1).
  const double expected0 = 50000 * kRate / (kRate + kSites - 1);
  EXPECT_NEAR(per_site[0], expected0, expected0 * 0.05);
  // Others roughly equal.
  for (std::uint32_t i = 2; i < kSites; ++i) {
    EXPECT_NEAR(per_site[i], per_site[1], per_site[1] * 0.3 + 20);
  }
}

TEST(Dominate, RateOneIsUniform) {
  UniformStream s(30000, 1000000, 5);
  DominatePartitioner part(s, 6, 1.0, 37);
  std::vector<std::uint64_t> per_site(6, 0);
  while (auto a = part.next()) ++per_site[a->site];
  EXPECT_LT(util::chi_square_uniform(per_site),
            util::chi_square_critical(5, 0.001));
}

TEST(Dominate, InvalidRateThrows) {
  VectorStream s({1});
  EXPECT_THROW(DominatePartitioner(s, 3, 0.5, 1), std::invalid_argument);
}

TEST(SlottedFeeder, FixedElementsPerSlot) {
  UniformStream s(100, 1000, 5);
  SlottedFeeder feeder(s, 4, 5, 41);
  std::map<sim::Slot, int> per_slot;
  while (auto a = feeder.next()) {
    ++per_slot[a->slot];
    EXPECT_LT(a->site, 4u);
  }
  ASSERT_EQ(per_slot.size(), 20u);  // 100 elements / 5 per slot
  for (const auto& [slot, n] : per_slot) EXPECT_EQ(n, 5);
  // Slots are consecutive from 0.
  EXPECT_EQ(per_slot.begin()->first, 0);
  EXPECT_EQ(std::prev(per_slot.end())->first, 19);
}

TEST(Factory, BuildsEveryKind) {
  for (const char* name : {"flooding", "random", "round-robin", "dominate"}) {
    VectorStream s({1, 2, 3});
    auto part = make_partitioner(parse_distribution(name), s, 3, 1, 2.0);
    ASSERT_NE(part, nullptr) << name;
    EXPECT_TRUE(part->next().has_value()) << name;
  }
}

TEST(Distribution, ParseRejectsUnknown) {
  EXPECT_THROW(parse_distribution("multicast"), std::invalid_argument);
  EXPECT_EQ(parse_distribution("roundrobin"), Distribution::kRoundRobin);
}

}  // namespace
}  // namespace dds::stream
