// Property suites that sweep protocol-independent knobs: hash kinds,
// sample container behaviour under fuzz, and the regression pin for the
// Algorithm-2 threshold-update semantics (insert-then-discard).
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <unordered_set>
#include <vector>

#include "core/bottom_s_sample.h"
#include "sim/bus.h"
#include "core/sliding_coordinator.h"
#include "core/system.h"
#include "stream/generators.h"
#include "stream/partitioner.h"
#include "util/stats.h"

namespace dds::core {
namespace {

using stream::Element;

// ------------------------------------------------ hash-kind sweeps ----

class ProtocolUnderHash : public ::testing::TestWithParam<hash::HashKind> {};

TEST_P(ProtocolUnderHash, InfiniteSampleEqualsOracle) {
  SystemConfig config{6, 12, GetParam(), 71};
  InfiniteSystem system(config);
  stream::UniformStream for_oracle(4000, 900, 72);
  const auto elements = stream::drain(for_oracle);
  stream::VectorStream replay(elements);
  stream::RandomPartitioner source(replay, 6, 73);
  system.run(source);

  std::set<std::pair<std::uint64_t, Element>> by_hash;
  std::unordered_set<Element> seen;
  for (Element e : elements) {
    if (seen.insert(e).second) by_hash.emplace(system.hash_fn()(e), e);
  }
  std::vector<Element> expected;
  for (const auto& [hv, e] : by_hash) {
    if (expected.size() == 12) break;
    expected.push_back(e);
  }
  std::sort(expected.begin(), expected.end());
  auto got = system.coordinator().sample().elements();
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, expected) << hash::to_string(GetParam());
}

TEST_P(ProtocolUnderHash, MessageBoundHoldsForEveryHash) {
  SystemConfig config{6, 12, GetParam(), 74};
  InfiniteSystem system(config);
  stream::AllDistinctStream input(5000, 75);
  stream::RandomPartitioner source(input, 6, 76);
  system.run(source);
  const double bound = util::infinite_window_upper_bound(6, 12, 5000);
  EXPECT_LT(static_cast<double>(system.bus().counters().total), 2.0 * bound)
      << hash::to_string(GetParam());
}

INSTANTIATE_TEST_SUITE_P(AllHashes, ProtocolUnderHash,
                         ::testing::Values(hash::HashKind::kMurmur2,
                                           hash::HashKind::kMurmur3,
                                           hash::HashKind::kSplitMix,
                                           hash::HashKind::kTabulation),
                         [](const auto& info) {
                           return hash::to_string(info.param);
                         });

// ------------------------------- Algorithm 2 threshold regression -----

TEST(ThresholdSemantics, RejectedReportsStillTightenU) {
  // Craft reports so the first element has the SMALLEST hash: under the
  // broken "update only on replacement" reading, u would stay at 1 and
  // every subsequent distinct element would be accepted at the sites
  // forever. Algorithm 2's insert-then-discard tightens u on the first
  // accepted report after the sample fills.
  SystemConfig config{1, 1, hash::HashKind::kMurmur2, 81};
  InfiniteSystem system(config);
  // Find an element whose hash is tiny, then feed it first.
  const auto& h = system.hash_fn();
  Element smallest = 1;
  for (Element e = 1; e <= 3000; ++e) {
    if (h(e) < h(smallest)) smallest = e;
  }
  std::vector<Element> elements{smallest};
  for (Element e = 1; e <= 3000; ++e) {
    if (e != smallest) elements.push_back(e);
  }
  stream::VectorStream replay(elements);
  stream::RoundRobinPartitioner source(replay, 1);
  system.run(source);
  // The site reports the minimum (2 msgs), then the next distinct
  // element (2 msgs) which tightens u; everything after is filtered.
  EXPECT_LE(system.bus().counters().total, 8u);
  EXPECT_LT(system.coordinator().threshold(), hash::kHashMax);
}

TEST(ThresholdSemantics, WithReplacementCostBoundedAcrossSeeds) {
  // Regression for the 10x message storm: per copy, the cost must stay
  // within a small factor of the single-sample analytic bound for every
  // seed, not just on average.
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    SystemConfig config{5, 4, hash::HashKind::kMurmur2, seed * 997};
    WithReplacementSystem system(config);
    stream::UniformStream input(20000, 4000, seed + 3);
    stream::RandomPartitioner source(input, 5, seed + 4);
    system.run(source);
    // 4 copies of the s = 1 sampler; bound per copy ~ 2k(1 + ln d).
    const double per_copy = util::infinite_window_upper_bound(5, 1, 4000);
    EXPECT_LT(static_cast<double>(system.bus().counters().total),
              4.0 * per_copy * 2.5)
        << "seed " << seed;
  }
}

TEST(ThresholdSemantics, ThresholdIsSthSmallestReportedHash) {
  // After the protocol quiesces, u must equal the s-th smallest hash of
  // the distinct universe (every smaller hash was necessarily reported).
  SystemConfig config{4, 6, hash::HashKind::kMurmur2, 83};
  InfiniteSystem system(config);
  std::vector<Element> elements;
  for (Element e = 1; e <= 500; ++e) elements.push_back(e);
  stream::VectorStream replay(elements);
  stream::RoundRobinPartitioner source(replay, 4);
  system.run(source);

  std::vector<std::uint64_t> hashes;
  for (Element e = 1; e <= 500; ++e) hashes.push_back(system.hash_fn()(e));
  std::sort(hashes.begin(), hashes.end());
  EXPECT_EQ(system.coordinator().threshold(), hashes[5]);  // 6th smallest
}

// ----------------------------------------- BottomSSample fuzzing ------

TEST(BottomSSampleFuzz, AlwaysEqualsTrueBottomS) {
  util::Xoshiro256StarStar rng(91);
  for (int round = 0; round < 30; ++round) {
    const std::size_t s = 1 + rng.next_below(20);
    BottomSSample sample(s);
    std::set<std::pair<std::uint64_t, Element>> truth;
    std::unordered_set<Element> seen;
    const int n = 1 + static_cast<int>(rng.next_below(400));
    for (int i = 0; i < n; ++i) {
      const Element e = 1 + rng.next_below(100);
      const std::uint64_t h = util::mix64(e ^ (round * 1315423911ULL));
      sample.offer(e, h);
      if (seen.insert(e).second) truth.emplace(h, e);
    }
    std::vector<Element> expected;
    for (const auto& [h, e] : truth) {
      if (expected.size() == s) break;
      expected.push_back(e);
    }
    std::sort(expected.begin(), expected.end());
    auto got = sample.elements();
    std::sort(got.begin(), got.end());
    ASSERT_EQ(got, expected) << "round " << round << " s=" << s;
    // Threshold consistency.
    if (sample.full()) {
      ASSERT_EQ(sample.threshold(), sample.max_hash());
    } else {
      ASSERT_EQ(sample.threshold(), hash::kHashMax);
    }
  }
}

// ------------------------------------ with-replacement uniformity -----

TEST(WithReplacementUniformity, EachCopySamplesUniformly) {
  // 25 distinct elements, single-copy inclusion must be ~ uniform over
  // the domain (chi-square over argmin counts across seeds).
  constexpr std::uint64_t kDistinct = 25;
  constexpr int kRuns = 300;
  std::vector<std::uint64_t> argmin_counts(kDistinct + 1, 0);
  for (int run = 0; run < kRuns; ++run) {
    SystemConfig config{2, 1, hash::HashKind::kMurmur2,
                        static_cast<std::uint64_t>(run) * 6007 + 11};
    WithReplacementSystem system(config);
    std::vector<Element> elements;
    for (Element e = 1; e <= kDistinct; ++e) elements.push_back(e);
    stream::VectorStream replay(elements);
    stream::RoundRobinPartitioner source(replay, 2);
    system.run(source);
    const auto sample = system.coordinator().sample();
    ASSERT_EQ(sample.size(), 1u);
    ++argmin_counts[sample[0]];
  }
  std::vector<std::uint64_t> counts(argmin_counts.begin() + 1,
                                    argmin_counts.end());
  EXPECT_LT(util::chi_square_uniform(counts),
            util::chi_square_critical(kDistinct - 1, 0.001));
}

}  // namespace
}  // namespace dds::core

// NOTE: appended suite — sliding-window uniformity and routing edges.
namespace dds::core {
namespace {

using stream::Element;

TEST(SlidingUniformity, WindowSampleIsUniformOverDistinct) {
  // Fixed arrival sequence; the hash seed varies per run. At the final
  // slot the window holds exactly 24 distinct elements, and the sampled
  // element must be uniform among them.
  constexpr std::uint64_t kDistinct = 24;
  constexpr int kRuns = 360;
  std::vector<std::uint64_t> counts(kDistinct + 1, 0);
  for (int run = 0; run < kRuns; ++run) {
    SlidingSystemConfig config;
    config.num_sites = 3;
    config.window = 100;  // covers the whole stream
    config.seed = static_cast<std::uint64_t>(run) * 2654435761ULL + 7;
    SlidingSystem system(config);

    class Fixed final : public sim::ArrivalSource {
     public:
      std::optional<sim::Arrival> next() override {
        if (i_ >= 3 * kDistinct) return std::nullopt;
        // Every element arrives three times, round-robin over sites.
        const auto e = static_cast<Element>(1 + (i_ % kDistinct));
        const auto site = static_cast<sim::NodeId>(i_ % 3);
        const auto slot = static_cast<sim::Slot>(i_ / 4);
        ++i_;
        return sim::Arrival{slot, site, e};
      }

     private:
      std::uint64_t i_ = 0;
    };
    Fixed src;
    system.run(src);
    const auto got =
        system.coordinator().copy(0).sample(system.runner().current_slot());
    ASSERT_TRUE(got.has_value());
    ASSERT_GE(got->element, 1u);
    ASSERT_LE(got->element, kDistinct);
    ++counts[got->element];
  }
  std::vector<std::uint64_t> observed(counts.begin() + 1, counts.end());
  EXPECT_LT(util::chi_square_uniform(observed),
            util::chi_square_critical(kDistinct - 1, 0.001));
}

TEST(InstanceRouting, ForeignInstanceMessagesAreIgnored) {
  // A site and coordinator on instance 0 must ignore instance-1 traffic.
  sim::Bus bus(1);
  hash::HashFunction h(hash::HashKind::kMurmur2, 3);
  InfiniteWindowSite site(0, 1, h, /*instance=*/0);
  InfiniteWindowCoordinator coordinator(1, 4, /*instance=*/0);
  bus.attach(0, &site);
  bus.attach(1, &coordinator);

  // Legit traffic establishes a threshold.
  for (Element e = 1; e <= 50; ++e) {
    site.on_element(e, 0, bus);
    bus.drain();
  }
  const auto u_before = site.local_threshold();
  ASSERT_LT(u_before, hash::kHashMax);

  // Foreign-instance reply must not move the site's threshold.
  sim::Message foreign;
  foreign.from = 1;
  foreign.to = 0;
  foreign.type = sim::MsgType::kThresholdReply;
  foreign.instance = 1;
  foreign.b = hash::kHashMax;
  bus.send(foreign);
  bus.drain();
  EXPECT_EQ(site.local_threshold(), u_before);

  // Foreign-instance report must not enter the coordinator's sample.
  sim::Message report;
  report.from = 0;
  report.to = 1;
  report.type = sim::MsgType::kReportElement;
  report.instance = 1;
  report.a = 999999;
  report.b = 0;  // would win any sample
  bus.send(report);
  bus.drain();
  EXPECT_FALSE(coordinator.sample().contains(999999));
}

TEST(InstanceRouting, SlidingForeignInstanceIgnored) {
  sim::Bus bus(1);
  SlidingWindowCoordinator coordinator(1, /*instance=*/0);
  bus.attach(1, &coordinator);
  class Dummy final : public sim::StreamNode {
   public:
    void on_element(std::uint64_t, sim::Slot, net::Transport&) override {}
    void on_message(const sim::Message&, net::Transport&) override {}
  } dummy;
  bus.attach(0, &dummy);
  sim::Message report;
  report.from = 0;
  report.to = 1;
  report.type = sim::MsgType::kSlidingReport;
  report.instance = 7;
  report.a = 42;
  report.b = 1;
  report.c = 100;
  bus.send(report);
  bus.drain();
  EXPECT_EQ(coordinator.raw_sample(), std::nullopt);
}

}  // namespace
}  // namespace dds::core
