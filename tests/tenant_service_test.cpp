// query::TenantRegistry — multi-tenant multi-width serving from one
// shared candidate structure. The contract under test: every tenant's
// answer at its own width is BIT-identical (element, hash, expiry) to a
// dedicated WindowedBottomSSampler of that width fed the same stream,
// at every queried slot; and the shared structure's memory stays well
// below the sum of the dedicated samplers'.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "core/windowed_bottom_s.h"
#include "query/merge.h"
#include "query/service.h"
#include "util/rng.h"

namespace dds::query {
namespace {

/// Drives a registry and per-tenant dedicated samplers through the same
/// bursty stream, asserting bit-identical answers at every slot.
void pin_against_dedicated(std::size_t s, sim::Slot max_width,
                           const std::vector<sim::Slot>& widths,
                           std::uint64_t seed, sim::Slot slots,
                           std::uint64_t domain, std::size_t batch) {
  TenantRegistry registry(s, max_width, /*num_streams=*/1,
                          hash::HashKind::kMurmur2, seed);
  std::vector<core::WindowedBottomSSampler> dedicated;
  dedicated.reserve(widths.size());
  for (std::size_t i = 0; i < widths.size(); ++i) {
    ASSERT_EQ(registry.register_tenant(widths[i]), i);
    dedicated.emplace_back(s, widths[i],
                           hash::HashFunction(hash::HashKind::kMurmur2, seed),
                           util::derive_seed(seed, 0xDD00 + i));
  }

  util::Xoshiro256StarStar rng(seed ^ 0xABCD);
  std::vector<std::uint64_t> burst;
  std::vector<treap::Candidate> want;
  std::vector<treap::Candidate> got;
  for (sim::Slot t = 0; t < slots; ++t) {
    burst.clear();
    const std::uint64_t count = 1 + rng.next_below(6);
    for (std::uint64_t i = 0; i < count; ++i) {
      burst.push_back(util::mix64(1 + rng.next_below(domain)));
    }
    for (std::size_t off = 0; off < burst.size(); off += batch) {
      const std::size_t n = std::min(batch, burst.size() - off);
      registry.update_batch(0, {burst.data() + off, n}, t);
    }
    for (auto& sampler : dedicated) {
      for (const auto e : burst) sampler.observe(e, t);
    }
    for (std::size_t i = 0; i < widths.size(); ++i) {
      dedicated[i].sample_into(t, want);
      registry.answer_into(i, t, got);
      ASSERT_EQ(got, want) << "tenant " << i << " width " << widths[i]
                           << " slot " << t;
    }
  }
  // The shared structure holds ONE candidate set; the dedicated
  // deployment pays once per tenant. With 8+ widths the saving must be
  // substantial (sub-linear in tenant count — abl15 quantifies it).
  std::size_t dedicated_tuples = 0;
  for (const auto& sampler : dedicated) dedicated_tuples += sampler.state_size();
  EXPECT_LT(registry.state_size() * 2, dedicated_tuples);
}

TEST(TenantService, EightWidthsBitIdenticalToDedicated) {
  pin_against_dedicated(/*s=*/8, /*max_width=*/256,
                        {8, 16, 32, 64, 96, 128, 192, 256},
                        /*seed=*/5, /*slots=*/600, /*domain=*/5000,
                        /*batch=*/8);
}

TEST(TenantService, DuplicateAndExtremeWidths) {
  // Width 1 (only the current slot), duplicated widths, and a heavy
  // duplicate stream (small domain — refresh paths dominate).
  pin_against_dedicated(/*s=*/4, /*max_width=*/64, {1, 1, 3, 64, 64, 7, 33, 5},
                        /*seed=*/6, /*slots=*/400, /*domain=*/40,
                        /*batch=*/7);
}

TEST(TenantService, SingleElementBatches) {
  // batch=1 must serve the same answers (the batch path degenerates).
  pin_against_dedicated(/*s=*/5, /*max_width=*/50, {10, 20, 30, 40, 50},
                        /*seed=*/7, /*slots=*/250, /*domain=*/500,
                        /*batch=*/1);
}

TEST(TenantService, MultiStreamMergeIsExact) {
  // Three input streams, merged at query time. Reference: a dedicated
  // width-w sampler fed the INTERLEAVED union stream. The registry's
  // per-stream samplers see disjoint subsequences; the merge must
  // reconstruct the union's exact bottom-s (freshest expiry kept).
  const std::size_t s = 6;
  const sim::Slot kMaxWidth = 128;
  const std::vector<sim::Slot> widths = {16, 48, 128};
  const std::uint64_t seed = 9;
  TenantRegistry registry(s, kMaxWidth, /*num_streams=*/3,
                          hash::HashKind::kMurmur2, seed);
  std::vector<core::WindowedBottomSSampler> dedicated;
  for (std::size_t i = 0; i < widths.size(); ++i) {
    registry.register_tenant(widths[i]);
    dedicated.emplace_back(s, widths[i],
                           hash::HashFunction(hash::HashKind::kMurmur2, seed),
                           util::derive_seed(seed, 0xEE00 + i));
  }
  util::Xoshiro256StarStar rng(1234);
  std::vector<treap::Candidate> want;
  std::vector<treap::Candidate> got;
  for (sim::Slot t = 0; t < 400; ++t) {
    const std::uint64_t count = 1 + rng.next_below(5);
    for (std::uint64_t i = 0; i < count; ++i) {
      const std::uint64_t e = util::mix64(1 + rng.next_below(800));
      const auto stream = static_cast<std::uint32_t>(rng.next_below(3));
      registry.update(stream, e, t);
      for (auto& sampler : dedicated) sampler.observe(e, t);
    }
    for (std::size_t i = 0; i < widths.size(); ++i) {
      dedicated[i].sample_into(t, want);
      registry.answer_into(i, t, got);
      ASSERT_EQ(got, want) << "tenant " << i << " slot " << t;
    }
  }
}

TEST(TenantService, WidthQueryFuzzAgainstBruteForce) {
  // Random widths queried ad hoc against a brute-force window oracle
  // over the raw arrival history (not a sampler — an independent
  // derivation of "bottom-s of the last w slots").
  const std::size_t s = 5;
  const sim::Slot kMaxWidth = 100;
  const std::uint64_t seed = 17;
  TenantRegistry registry(s, kMaxWidth, 1, hash::HashKind::kMurmur3, seed);
  const hash::HashFunction h(hash::HashKind::kMurmur3, seed);

  std::vector<std::pair<std::uint64_t, sim::Slot>> last_arrival;  // (e, t)
  auto brute = [&](sim::Slot now, sim::Slot width) {
    std::vector<treap::Candidate> in_window;
    for (const auto& [e, t] : last_arrival) {
      if (t + width > now) in_window.push_back({e, h(e), t + width});
    }
    std::sort(in_window.begin(), in_window.end(),
              [](const treap::Candidate& a, const treap::Candidate& b) {
                return a.hash < b.hash;
              });
    if (in_window.size() > s) in_window.resize(s);
    return in_window;
  };

  util::Xoshiro256StarStar rng(4321);
  std::vector<sim::Slot> widths;
  for (int i = 0; i < 12; ++i) {
    widths.push_back(1 + static_cast<sim::Slot>(rng.next_below(kMaxWidth)));
    registry.register_tenant(widths.back());
  }
  std::vector<treap::Candidate> got;
  for (sim::Slot t = 0; t < 300; ++t) {
    const std::uint64_t count = 1 + rng.next_below(4);
    for (std::uint64_t i = 0; i < count; ++i) {
      const std::uint64_t e = util::mix64(1 + rng.next_below(150));
      registry.update(0, e, t);
      bool found = false;
      for (auto& [el, slot] : last_arrival) {
        if (el == e) {
          slot = t;
          found = true;
          break;
        }
      }
      if (!found) last_arrival.emplace_back(e, t);
    }
    const auto tenant = static_cast<std::size_t>(rng.next_below(12));
    registry.answer_into(tenant, t, got);
    ASSERT_EQ(got, brute(t, widths[tenant])) << "slot " << t;
  }
}

TEST(TenantService, ServeAllAndEstimates) {
  const std::size_t s = 4;
  TenantRegistry registry(s, 64, 1, hash::HashKind::kMurmur2, 3);
  registry.register_tenant(8);
  registry.register_tenant(64);
  // 3 distinct elements, all inside both windows: estimates are exact
  // (sample not full).
  for (std::uint64_t e = 1; e <= 3; ++e) registry.update(0, e * 1000, 5);
  const auto& answers = registry.serve_all(5);
  ASSERT_EQ(answers.size(), 2u);
  EXPECT_EQ(answers[0].size(), 3u);
  EXPECT_EQ(answers[1].size(), 3u);
  EXPECT_DOUBLE_EQ(registry.estimate(0, 5), 3.0);
  EXPECT_DOUBLE_EQ(registry.estimate(1, 5), 3.0);
  // Slot 14: the width-8 window (arrivals after 14 - 8 = 6) is empty,
  // the width-64 window still holds all three.
  EXPECT_EQ(registry.answer(0, 14).size(), 0u);
  EXPECT_EQ(registry.answer(1, 14).size(), 3u);
  EXPECT_DOUBLE_EQ(registry.estimate(0, 14), 0.0);
}

TEST(TenantService, RejectsBadConfig) {
  TenantRegistry registry(4, 32, 1);
  EXPECT_THROW(registry.register_tenant(0), std::invalid_argument);
  EXPECT_THROW(registry.register_tenant(33), std::invalid_argument);
  EXPECT_THROW(TenantRegistry(0, 32, 1), std::invalid_argument);
  EXPECT_THROW(TenantRegistry(4, 0, 1), std::invalid_argument);
  EXPECT_THROW(TenantRegistry(4, 32, 0), std::invalid_argument);
}

}  // namespace
}  // namespace dds::query
