// Tests for the adaptive sampling substrate: the hybrid DominanceSet
// (flat ring <-> pooled treap migrations), the SlotIndex open-addressed
// side-index, the order-statistic SDominanceSet, and the zero
// steady-state allocation guarantees of all of them.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <unordered_map>
#include <vector>

#include "hash/hash_function.h"
#include "treap/dominance_set.h"
#include "treap/naive_dominance_set.h"
#include "treap/s_dominance_set.h"
#include "treap/slot_index.h"
#include "treap/treap.h"
#include "util/rng.h"

namespace dds::treap {
namespace {

// ----------------------------------------------------------- SlotIndex --

TEST(SlotIndex, InsertFindEraseChurnAgainstReference) {
  // Slots point into a plain vector standing in for the treap pool.
  std::vector<std::uint64_t> pool;
  const auto at = [&pool](std::uint32_t s) { return pool[s]; };
  SlotIndex index;
  std::unordered_map<std::uint64_t, std::uint32_t> ref;
  util::Xoshiro256StarStar rng(31);
  for (int step = 0; step < 20000; ++step) {
    const std::uint64_t element = 1 + rng.next_below(400);
    const bool indexed = ref.contains(element);
    ASSERT_EQ(index.find(element, at) != SlotIndex::kNoSlot, indexed);
    if (indexed) {
      ASSERT_EQ(index.find(element, at), ref[element]);
      if (rng.next_below(2) == 0) {
        ASSERT_TRUE(index.erase(element, at));
        ref.erase(element);
      }
    } else {
      ASSERT_FALSE(index.erase(element, at));
      const auto slot = static_cast<std::uint32_t>(pool.size());
      pool.push_back(element);
      index.insert(element, slot, at);
      ref.emplace(element, slot);
    }
    ASSERT_EQ(index.size(), ref.size());
  }
  // Every surviving entry still resolves (backward-shift deletion must
  // never break a probe chain).
  for (const auto& [element, slot] : ref) {
    ASSERT_EQ(index.find(element, at), slot);
  }
}

TEST(SlotIndex, CapacityStopsGrowingUnderChurn) {
  std::vector<std::uint64_t> pool(512);
  const auto at = [&pool](std::uint32_t s) { return pool[s]; };
  SlotIndex index;
  for (std::uint32_t i = 0; i < 256; ++i) {
    pool[i] = 10000 + i;
    index.insert(pool[i], i, at);
  }
  // One churn cycle first: the transient +1 entry may cross the load
  // boundary once; after that the table must never move again.
  pool[256] = 999;
  index.insert(pool[256], 256, at);
  index.erase(pool[256], at);
  const std::size_t cap = index.capacity();
  util::Xoshiro256StarStar rng(7);
  for (int step = 0; step < 20000; ++step) {
    const std::uint32_t slot = 256 + static_cast<std::uint32_t>(step % 256);
    pool[slot] = 900000 + rng.next_below(1 << 20);
    if (index.find(pool[slot], at) == SlotIndex::kNoSlot) {
      index.insert(pool[slot], slot, at);
      index.erase(pool[slot], at);
    }
  }
  EXPECT_EQ(index.capacity(), cap);
  EXPECT_EQ(index.size(), 256u);
}

// ------------------------------------------- treap order statistics --

TEST(Treap, KthAndRankAgainstSortedReference) {
  Treap<std::uint32_t, std::uint32_t> t(17);
  std::map<std::uint32_t, std::uint32_t> ref;
  util::Xoshiro256StarStar rng(23);
  for (int step = 0; step < 4000; ++step) {
    const auto key = static_cast<std::uint32_t>(rng.next_below(700));
    if (rng.next_below(3) != 0) {
      t.insert(key, key * 7);
      ref.emplace(key, key * 7);
    } else {
      t.erase(key);
      ref.erase(key);
    }
    if (step % 97 != 0) continue;
    ASSERT_EQ(t.size(), ref.size());
    // rank_of agrees with std::map distance for arbitrary probes.
    const auto probe = static_cast<std::uint32_t>(rng.next_below(700));
    ASSERT_EQ(t.rank_of(probe),
              static_cast<std::size_t>(
                  std::distance(ref.begin(), ref.lower_bound(probe))));
    // kth agrees with in-order position.
    if (!ref.empty()) {
      const std::size_t k = rng.next_below(ref.size());
      auto it = ref.begin();
      std::advance(it, static_cast<std::ptrdiff_t>(k));
      const auto kth = t.kth(k);
      ASSERT_TRUE(kth.has_value());
      ASSERT_EQ(kth->first, it->first);
      ASSERT_EQ(kth->second, it->second);
    }
    ASSERT_EQ(t.kth(ref.size()), std::nullopt);
  }
  ASSERT_TRUE(t.check_invariants());
}

TEST(Treap, BoundedTraversalsStopEarly) {
  Treap<int, int> t;
  for (int k = 1; k <= 50; ++k) t.insert(k, k);
  std::vector<int> asc;
  EXPECT_FALSE(t.for_each_while([&asc](int k, int) {
    asc.push_back(k);
    return k < 5;
  }));
  EXPECT_EQ(asc, (std::vector<int>{1, 2, 3, 4, 5}));
  std::vector<int> desc;
  EXPECT_FALSE(t.for_each_reverse_while([&desc](int k, int) {
    desc.push_back(k);
    return k > 48;
  }));
  EXPECT_EQ(desc, (std::vector<int>{50, 49, 48}));
  // Full traversals report completion.
  int count = 0;
  EXPECT_TRUE(t.for_each_while([&count](int, int) {
    ++count;
    return true;
  }));
  EXPECT_EQ(count, 50);
}

TEST(Treap, InsertSlotNamesTheNodeUntilErase) {
  using IntTreap = Treap<int, int>;
  IntTreap t(3);
  const std::uint32_t slot = t.insert_slot(42, 420);
  ASSERT_NE(slot, IntTreap::kNoSlot);
  EXPECT_EQ(t.insert_slot(42, 421), IntTreap::kNoSlot);
  for (int k = 0; k < 200; ++k) {
    if (k != 42) t.insert(k, k);
  }
  // Rotations and pool growth must not move the logical node.
  EXPECT_EQ(t.key_at(slot), 42);
  EXPECT_EQ(t.value_at(slot), 420);
  EXPECT_EQ(t.find_slot(42), slot);
  EXPECT_EQ(t.find_slot(4242), IntTreap::kNoSlot);
}

// --------------------------------------- hybrid DominanceSet: fuzzing --

struct HybridFuzzParams {
  std::uint64_t seed;
  HybridConfig hybrid;
  int domain;
  int window;
  int coord_every;
  int burst_every;  ///< monotone-hash growth bursts force promotions
};

class HybridDominanceFuzz
    : public ::testing::TestWithParam<HybridFuzzParams> {};

// Differential fuzz vs the naive reference across the migration
// boundary: monotone-increasing-hash bursts are undominated, so they
// grow |T| past migrate_up; expiry crunches drop it below migrate_down.
TEST_P(HybridDominanceFuzz, MatchesNaiveAcrossMigrations) {
  const auto p = GetParam();
  DominanceSet fast(p.seed, p.hybrid);
  NaiveDominanceSet ref;
  util::Xoshiro256StarStar rng(p.seed);
  hash::HashFunction h(hash::HashKind::kMurmur2, p.seed);
  std::uint64_t next_unique = 1u << 20;
  std::uint64_t rising_hash = 1;

  for (sim::Slot t = 0; t < 800; ++t) {
    fast.expire(t);
    ref.expire(t);
    if (p.burst_every > 0 && t % p.burst_every == 0 && t > 0) {
      // Burst: fresh elements with rising hashes — nothing dominates
      // anything, so the set grows by the full burst.
      for (int b = 0; b < 24; ++b) {
        const std::uint64_t e = next_unique++;
        rising_hash += 1 + rng.next_below(1000);
        fast.observe(e, rising_hash, t + p.window);
        ref.observe(e, rising_hash, t + p.window);
      }
    }
    const int arrivals = static_cast<int>(rng.next_below(4));
    for (int a = 0; a < arrivals; ++a) {
      const std::uint64_t e = 1 + rng.next_below(p.domain);
      fast.observe(e, h(e), t + p.window);
      ref.observe(e, h(e), t + p.window);
    }
    if (p.coord_every > 0 && t % p.coord_every == 0 && t > 0) {
      const std::uint64_t e = 1 + rng.next_below(p.domain);
      const sim::Slot expiry =
          t + 1 + static_cast<sim::Slot>(rng.next_below(p.window));
      fast.insert(e, h(e), expiry);
      ref.insert(e, h(e), expiry);
    }
    ASSERT_EQ(fast.size(), ref.size()) << "slot " << t;
    ASSERT_EQ(fast.snapshot(), ref.snapshot()) << "slot " << t;
    ASSERT_TRUE(fast.check_invariants()) << "slot " << t;
    const auto fm = fast.min_hash();
    const auto rm = ref.min_hash();
    ASSERT_EQ(fm.has_value(), rm.has_value());
    if (fm) {
      ASSERT_EQ(fm->element, rm->element);
    }
  }
  if (p.burst_every > 0 && p.hybrid.migrate_up > 0 &&
      p.hybrid.migrate_up <= 24) {
    EXPECT_GT(fast.migrations(), 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, HybridDominanceFuzz,
    ::testing::Values(
        // Aggressive thresholds: every burst promotes, every window
        // turnover demotes.
        HybridFuzzParams{1, HybridConfig{8, 4}, 50, 20, 0, 13},
        HybridFuzzParams{2, HybridConfig{16, 8}, 100, 30, 7, 19},
        // Default thresholds with bursts big enough to cross 64.
        HybridFuzzParams{3, HybridConfig{}, 200, 60, 11, 5},
        // Degenerate configs: pure treap and pure flat must agree too.
        HybridFuzzParams{4, HybridConfig{0, 0}, 100, 30, 7, 17},
        HybridFuzzParams{5, HybridConfig{0xFFFFFFFFu, 0}, 100, 30, 7, 17},
        // Hysteresis band narrow vs wide.
        HybridFuzzParams{6, HybridConfig{12, 11}, 80, 25, 5, 11},
        HybridFuzzParams{7, HybridConfig{48, 2}, 80, 25, 5, 7}));

// ------------------------------- hybrid DominanceSet: migration edges --

/// Grows the set to exactly `n` tuples with rising hashes (nothing
/// dominated, nothing expired before `horizon`).
void grow_to(DominanceSet& d, std::uint32_t n, sim::Slot horizon) {
  for (std::uint32_t i = 0; i < n; ++i) {
    d.observe(1000 + i, (i + 1) * 1000ULL, horizon + i);
  }
}

TEST(HybridMigration, PromotesExactlyWhenInsertExceedsThreshold) {
  DominanceSet d(9, HybridConfig{8, 4});
  grow_to(d, 8, 100);
  EXPECT_EQ(d.size(), 8u);
  EXPECT_TRUE(d.is_flat());  // threshold hit exactly: still flat
  EXPECT_EQ(d.migrations(), 0u);
  d.observe(2000, 9 * 1000ULL, 200);  // ninth tuple crosses migrate_up
  EXPECT_EQ(d.size(), 9u);
  EXPECT_FALSE(d.is_flat());
  EXPECT_EQ(d.migrations(), 1u);
  EXPECT_TRUE(d.check_invariants());
}

TEST(HybridMigration, CoordinatorInsertCanTriggerPromotion) {
  DominanceSet d(9, HybridConfig{8, 4});
  grow_to(d, 8, 100);
  ASSERT_TRUE(d.is_flat());
  // Coordinator feedback (arbitrary expiry) crossing the threshold:
  // smaller hash than everything with an early expiry — dominates
  // nothing, dominated by nothing.
  d.insert(3000, 1, 50);
  EXPECT_EQ(d.size(), 9u);
  EXPECT_FALSE(d.is_flat());
  EXPECT_TRUE(d.check_invariants());
}

TEST(HybridMigration, ExpiryDemotesWhenDroppingUnderThreshold) {
  DominanceSet d(9, HybridConfig{8, 4});
  grow_to(d, 12, 100);  // expiries 100..111
  ASSERT_FALSE(d.is_flat());
  ASSERT_EQ(d.migrations(), 1u);
  // Expire down to 4 live tuples: still >= migrate_down, stays treap.
  d.expire(107);
  EXPECT_EQ(d.size(), 4u);
  EXPECT_FALSE(d.is_flat());
  // One more expiry drops it to 3 < migrate_down: demotes mid-slot.
  d.expire(108);
  EXPECT_EQ(d.size(), 3u);
  EXPECT_TRUE(d.is_flat());
  EXPECT_EQ(d.migrations(), 2u);
  EXPECT_TRUE(d.check_invariants());
  // The set keeps operating correctly after the round trip.
  d.observe(7000, 500, 300);
  EXPECT_EQ(d.min_hash()->element, 7000u);
}

TEST(HybridMigration, PruneCanDemoteMidUpdate) {
  DominanceSet d(11, HybridConfig{8, 4});
  grow_to(d, 12, 100);
  ASSERT_FALSE(d.is_flat());
  // A tiny-hash newcomer with the newest expiry dominates everything:
  // the set collapses to 1 tuple and demotes inside observe().
  d.observe(9000, 1, 500);
  EXPECT_EQ(d.size(), 1u);
  EXPECT_TRUE(d.is_flat());
  EXPECT_EQ(d.min_hash()->element, 9000u);
  EXPECT_TRUE(d.check_invariants());
}

TEST(HybridMigration, CheckpointRestoreAcrossMigratedSet) {
  // Checkpoint a promoted (treap-mode) set, restore into a fresh
  // instance, and verify both the image and continued behaviour.
  DominanceSet original(13, HybridConfig{8, 4});
  grow_to(original, 20, 100);
  ASSERT_FALSE(original.is_flat());
  const auto image = original.snapshot();

  DominanceSet restored(14, HybridConfig{8, 4});
  restored.load_snapshot(image);
  EXPECT_EQ(restored.snapshot(), image);
  EXPECT_FALSE(restored.is_flat());  // 20 tuples > migrate_up: treap mode
  EXPECT_TRUE(restored.check_invariants());

  // A restore into a differently-tuned instance picks its own mode.
  DominanceSet wide(15, HybridConfig{64, 24});
  wide.load_snapshot(image);
  EXPECT_EQ(wide.snapshot(), image);
  EXPECT_TRUE(wide.is_flat());  // 20 tuples <= 64: ring mode
  EXPECT_TRUE(wide.check_invariants());

  // Both restored copies evolve identically to the original.
  for (sim::Slot t = 100; t < 140; ++t) {
    original.expire(t);
    restored.expire(t);
    wide.expire(t);
    original.observe(t, t * 31, t + 25);
    restored.observe(t, t * 31, t + 25);
    wide.observe(t, t * 31, t + 25);
    ASSERT_EQ(restored.snapshot(), original.snapshot()) << "slot " << t;
    ASSERT_EQ(wide.snapshot(), original.snapshot()) << "slot " << t;
  }
}

TEST(HybridMigration, RestoreEmptySnapshot) {
  DominanceSet d(16, HybridConfig{8, 4});
  grow_to(d, 20, 100);
  d.load_snapshot({});
  EXPECT_TRUE(d.empty());
  EXPECT_EQ(d.min_hash(), std::nullopt);
  d.observe(1, 10, 50);
  EXPECT_EQ(d.size(), 1u);
  EXPECT_TRUE(d.check_invariants());
}

// ------------------------------------ zero steady-state allocations --

TEST(HybridAllocation, FlatModeChurnNeverTouchesStorage) {
  DominanceSet d(21);
  hash::HashFunction h(hash::HashKind::kMurmur2, 3);
  util::Xoshiro256StarStar rng(4);
  sim::Slot t = 0;
  const sim::Slot window = 40;
  for (; t < 200; ++t) {  // warm-up
    d.expire(t);
    const std::uint64_t e = 1 + rng.next_below(500);
    d.observe(e, h(e), t + window);
  }
  ASSERT_TRUE(d.is_flat());
  const std::size_t ring = d.ring_capacity();
  const std::size_t pool = d.tree_pool_slots();
  const std::size_t index = d.index_capacity();
  for (; t < 5000; ++t) {
    d.expire(t);
    const std::uint64_t e = 1 + rng.next_below(500);
    d.observe(e, h(e), t + window);
    (void)d.min_hash();
  }
  EXPECT_EQ(d.ring_capacity(), ring);
  EXPECT_EQ(d.tree_pool_slots(), pool);
  EXPECT_EQ(d.index_capacity(), index);
  EXPECT_EQ(d.migrations(), 0u);
}

TEST(HybridAllocation, TreapModeChurnReusesPoolAndIndex) {
  // The treap pool grows only when the live set reaches a new
  // high-water mark; with a bounded workload, churn after the first
  // full cycle must recycle freelist slots and probe-table entries
  // without a single allocation. Rising hashes keep every burst tuple
  // alive (nothing dominated), so |T| is deterministic.
  DominanceSet d(22, HybridConfig{0, 0});  // pure treap
  sim::Slot base = 0;
  const auto cycle = [&d, &base]() {
    for (std::uint32_t i = 0; i < 40; ++i) {
      d.observe(700000 + i, (i + 1) * 1000ULL, base + 100 + i);
    }
    d.expire(base + 100 + 34);  // keep the last 5 tuples
    base += 1000;
  };
  cycle();  // warm-up establishes the high-water mark (40 live tuples)
  ASSERT_FALSE(d.is_flat());
  ASSERT_EQ(d.size(), 5u);
  const std::size_t pool = d.tree_pool_slots();
  const std::size_t index = d.index_capacity();
  for (int c = 0; c < 20; ++c) {
    cycle();
    (void)d.min_hash();
    ASSERT_EQ(d.size(), 5u);
  }
  EXPECT_EQ(d.tree_pool_slots(), pool);
  EXPECT_EQ(d.index_capacity(), index);
  EXPECT_EQ(d.migrations(), 0u);
  EXPECT_TRUE(d.check_invariants());
}

TEST(HybridAllocation, MigrationCyclesReuseBothRepresentations) {
  DominanceSet d(23, HybridConfig{8, 4});
  // One full promote/demote cycle to warm both representations.
  grow_to(d, 12, 1000);
  d.expire(1008);  // 4 left... expiries 1000..1011; <=1008 drops 9, leaves 3
  ASSERT_TRUE(d.is_flat());
  ASSERT_EQ(d.migrations(), 2u);
  const std::size_t ring = d.ring_capacity();
  const std::size_t pool = d.tree_pool_slots();
  const std::size_t index = d.index_capacity();
  // Ten more cycles: storage must not move.
  sim::Slot base = 2000;
  for (int cycle = 0; cycle < 10; ++cycle) {
    for (std::uint32_t i = 0; i < 12; ++i) {
      d.observe(500000 + i, (i + 1) * 1000ULL, base + i);
    }
    ASSERT_FALSE(d.is_flat());
    d.expire(base + 8);
    ASSERT_TRUE(d.is_flat());
    base += 1000;
  }
  EXPECT_EQ(d.migrations(), 22u);
  EXPECT_EQ(d.ring_capacity(), ring);
  EXPECT_EQ(d.tree_pool_slots(), pool);
  EXPECT_EQ(d.index_capacity(), index);
}

// -------------------------------------- SDominanceSet order statistics --

TEST(SDominanceOrderStats, BottomSIsHashPrefixOfOrderStatisticTree) {
  SDominanceSet set(3);
  // Regression pin of the historical bottom_s() output (snapshot-copy +
  // full sort by hash, truncated to s): element/hash/expiry triples
  // chosen so the bottom-3 crosses expiry groups.
  set.observe(11, 900, 10);
  set.observe(12, 400, 11);
  set.observe(13, 700, 12);
  set.observe(14, 100, 13);
  set.observe(15, 800, 14);
  const std::vector<Candidate> expected{
      {14, 100, 13}, {12, 400, 11}, {13, 700, 12}};
  EXPECT_EQ(set.bottom_s(), expected);
  // The allocation-free variant agrees.
  std::vector<Candidate> out;
  set.bottom_s_into(out);
  EXPECT_EQ(out, expected);
  // And the rank queries see the same ordering.
  EXPECT_EQ(set.kth_smallest(0)->element, 14u);
  EXPECT_EQ(set.kth_smallest(2)->element, 13u);
  EXPECT_EQ(set.hash_rank(700), 2u);
  EXPECT_EQ(set.hash_rank(701), 3u);
  EXPECT_EQ(set.min_hash()->element, 14u);
}

TEST(SDominanceOrderStats, RankQueriesMatchSnapshotUnderFuzz) {
  SDominanceSet set(4);
  hash::HashFunction h(hash::HashKind::kMurmur2, 9);
  util::Xoshiro256StarStar rng(10);
  for (sim::Slot t = 0; t < 400; ++t) {
    set.expire(t);
    for (int a = 0; a < 3; ++a) {
      const std::uint64_t e = 1 + rng.next_below(300);
      set.observe(e, h(e), t + 40);
    }
    if (t % 37 != 0 || set.empty()) continue;
    auto by_hash = set.snapshot();
    std::sort(by_hash.begin(), by_hash.end(),
              [](const Candidate& a, const Candidate& b) {
                return a.hash < b.hash;
              });
    for (std::size_t k = 0; k < by_hash.size(); k += 3) {
      ASSERT_EQ(set.kth_smallest(k)->element, by_hash[k].element);
      ASSERT_EQ(set.hash_rank(by_hash[k].hash), k);
    }
    ASSERT_EQ(set.kth_smallest(by_hash.size()), std::nullopt);
  }
}

// ------------------------------------- SDominanceSet batched observe --

// observe_group (one combined dominance sweep per same-expiry batch)
// must leave the set in the EXACT state n sequential observe() calls
// would — including stale-copy refreshes, in-batch duplicates, and
// victim pruning. Fuzzed across small/large domains (duplicate-heavy
// and duplicate-free) and batch widths, comparing full snapshots.
TEST(SDominanceBatchedObserve, GroupObserveMatchesSequentialUnderFuzz) {
  for (const std::uint64_t domain : {25ULL, 400ULL, 1000000ULL}) {
    for (const std::size_t width : {2, 5, 8, 64}) {
      SDominanceSet batched(4, /*seed=*/77);
      SDominanceSet sequential(4, /*seed=*/77);
      hash::HashFunction h(hash::HashKind::kMurmur2, 21);
      util::Xoshiro256StarStar rng(domain + width);
      const sim::Slot window = 60;
      std::vector<std::uint64_t> elems, hashes;
      for (sim::Slot t = 0; t < 300; ++t) {
        elems.clear();
        hashes.clear();
        const std::uint64_t count = 1 + rng.next_below(2 * width);
        for (std::uint64_t i = 0; i < count; ++i) {
          const std::uint64_t e = 1 + rng.next_below(domain);
          elems.push_back(e);
          hashes.push_back(h(e));
        }
        batched.expire(t);
        sequential.expire(t);
        for (std::size_t off = 0; off < elems.size(); off += width) {
          const std::size_t n = std::min(width, elems.size() - off);
          batched.observe_group(elems.data() + off, hashes.data() + off, n,
                                t + window);
        }
        for (std::size_t i = 0; i < elems.size(); ++i) {
          sequential.observe(elems[i], hashes[i], t + window);
        }
        ASSERT_EQ(batched.snapshot(), sequential.snapshot())
            << "domain=" << domain << " width=" << width << " t=" << t;
        ASSERT_TRUE(batched.check_invariants());
      }
    }
  }
}

TEST(SDominanceBatchedObserve, HandlesEmptySetAndRepeatedSlots) {
  SDominanceSet set(3, 5);
  const std::uint64_t elems[] = {10, 11, 10, 12};  // in-batch duplicate
  const std::uint64_t hashes[] = {700, 300, 700, 500};
  set.observe_group(elems, hashes, 4, 50);  // into an empty set
  EXPECT_EQ(set.size(), 3u);
  // Second batch at the same expiry: refreshes are all no-ops.
  set.observe_group(elems, hashes, 4, 50);
  EXPECT_EQ(set.size(), 3u);
  const auto snap = set.snapshot();
  // A later batch refreshes one element and prunes nothing.
  const std::uint64_t more[] = {10};
  const std::uint64_t more_h[] = {700};
  set.observe_group(more, more_h, 1, 60);
  EXPECT_EQ(set.size(), 3u);
  EXPECT_TRUE(set.check_invariants());
  EXPECT_NE(set.snapshot(), snap);  // 10's expiry moved to 60
}

TEST(SDominanceAllocation, SteadyStateChurnReusesAllStorage) {
  SDominanceSet set(8);
  hash::HashFunction h(hash::HashKind::kMurmur2, 11);
  util::Xoshiro256StarStar rng(12);
  sim::Slot t = 0;
  const sim::Slot window = 300;
  for (; t < 3000; ++t) {  // warm-up
    set.expire(t);
    const std::uint64_t e = 1 + rng.next_below(1000000);
    set.observe(e, h(e), t + window);
  }
  const std::uint64_t before = set.swept_tuples();
  const std::uint64_t updates_before = set.updates();
  // Sweeps must stay far below |T| on average (the early exit).
  for (; t < 9000; ++t) {
    set.expire(t);
    const std::uint64_t e = 1 + rng.next_below(1000000);
    set.observe(e, h(e), t + window);
    (void)set.min_hash();
  }
  const double mean_sweep =
      static_cast<double>(set.swept_tuples() - before) /
      static_cast<double>(set.updates() - updates_before);
  EXPECT_LT(mean_sweep, static_cast<double>(set.size()))
      << "dominance sweep should not scan the whole set";
  EXPECT_GT(set.size(), 8u);
}

}  // namespace
}  // namespace dds::treap
