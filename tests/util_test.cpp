// Unit tests for the util substrate: PRNGs, statistics, tables, CLI.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <bit>
#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

#include "util/cli.h"
#include "util/stats.h"
#include "util/table.h"
#include "util/rng.h"

namespace dds::util {
namespace {

// ---------------------------------------------------------------- rng --

TEST(SplitMix64, KnownSequenceFromSeedZero) {
  // Reference values from the splitmix64 reference implementation
  // (Vigna), seed = 0.
  SplitMix64 sm(0);
  EXPECT_EQ(sm.next(), 0xE220A8397B1DCDAFULL);
  EXPECT_EQ(sm.next(), 0x6E789E6AA1B965F4ULL);
  EXPECT_EQ(sm.next(), 0x06C45D188009454FULL);
}

TEST(SplitMix64, DistinctSeedsDiverge) {
  SplitMix64 a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(Mix64, IsDeterministicAndMixing) {
  EXPECT_EQ(mix64(42), mix64(42));
  EXPECT_NE(mix64(42), mix64(43));
  // Single-bit input changes should flip roughly half the output bits.
  int total_flips = 0;
  for (int bit = 0; bit < 64; ++bit) {
    total_flips += std::popcount(mix64(0) ^ mix64(1ULL << bit));
  }
  const double avg = total_flips / 64.0;
  EXPECT_GT(avg, 24.0);
  EXPECT_LT(avg, 40.0);
}

TEST(Xoshiro, DeterministicUnderSeed) {
  Xoshiro256StarStar a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Xoshiro, DoubleInUnitInterval) {
  Xoshiro256StarStar rng(11);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Xoshiro, NextBelowRespectsBound) {
  Xoshiro256StarStar rng(13);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(rng.next_below(bound), bound);
    }
  }
}

TEST(Xoshiro, NextBelowZeroBoundIsZero) {
  Xoshiro256StarStar rng(13);
  EXPECT_EQ(rng.next_below(0), 0ULL);
}

TEST(Xoshiro, NextBelowIsRoughlyUniform) {
  Xoshiro256StarStar rng(17);
  constexpr std::uint64_t kBins = 16;
  constexpr int kDraws = 160000;
  std::vector<std::uint64_t> counts(kBins, 0);
  for (int i = 0; i < kDraws; ++i) ++counts[rng.next_below(kBins)];
  const double stat = chi_square_uniform(counts);
  EXPECT_LT(stat, chi_square_critical(kBins - 1, 0.001));
}

TEST(Xoshiro, BernoulliMatchesProbability) {
  Xoshiro256StarStar rng(19);
  int hits = 0;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) hits += rng.next_bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / static_cast<double>(kDraws), 0.3, 0.01);
}

TEST(DeriveSeed, IndependentStreams) {
  // Streams derived from the same master with different indices should
  // not collide or correlate trivially.
  const std::uint64_t master = 123456;
  EXPECT_NE(derive_seed(master, 0), derive_seed(master, 1));
  EXPECT_NE(derive_seed(master, 0), derive_seed(master + 1, 0));
  std::vector<std::uint64_t> seeds;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    seeds.push_back(derive_seed(master, i));
  }
  std::sort(seeds.begin(), seeds.end());
  EXPECT_EQ(std::adjacent_find(seeds.begin(), seeds.end()), seeds.end());
}

// -------------------------------------------------------------- stats --

TEST(RunningStat, MeanAndVariance) {
  RunningStat s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // unbiased
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_NEAR(s.sum(), 40.0, 1e-9);
}

TEST(RunningStat, EmptyAndSingle) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.ci95_halfwidth(), 0.0);
  s.add(3.5);
  EXPECT_EQ(s.mean(), 3.5);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStat, MergeMatchesSequential) {
  Xoshiro256StarStar rng(5);
  RunningStat whole, a, b;
  for (int i = 0; i < 500; ++i) {
    const double x = rng.next_double() * 10;
    whole.add(x);
    (i % 2 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_NEAR(a.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), whole.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), whole.min());
  EXPECT_DOUBLE_EQ(a.max(), whole.max());
}

TEST(RunningStat, MergeWithEmpty) {
  RunningStat a, b;
  a.add(1.0);
  a.add(2.0);
  const double mean = a.mean();
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), mean);
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
}

TEST(Harmonic, ExactSmallValues) {
  EXPECT_DOUBLE_EQ(harmonic(0), 0.0);
  EXPECT_DOUBLE_EQ(harmonic(1), 1.0);
  EXPECT_NEAR(harmonic(2), 1.5, 1e-12);
  EXPECT_NEAR(harmonic(10), 2.9289682539682538, 1e-12);
  EXPECT_NEAR(harmonic(100), 5.187377517639621, 1e-10);
}

TEST(Harmonic, AsymptoticAgreesAtCutoff) {
  // The exact sum and the expansion should agree where they meet.
  const double exact = harmonic(1'000'000);
  const double asym = std::log(1e6) + 0.5772156649015329 + 1.0 / 2e6;
  EXPECT_NEAR(exact, asym, 1e-9);
  // Large-n path is monotone.
  EXPECT_GT(harmonic(10'000'000), harmonic(2'000'000));
}

TEST(Bounds, UpperBoundFormula) {
  // 2ks + 2ks(H_d - H_s) per Lemma 4.
  const double expected = 2.0 * 4 * 2 + 2.0 * 4 * 2 * (harmonic(100) - harmonic(2));
  EXPECT_NEAR(infinite_window_upper_bound(4, 2, 100), expected, 1e-9);
}

TEST(Bounds, LowerBelowUpper) {
  for (std::uint64_t k : {1ULL, 5ULL, 100ULL}) {
    for (std::uint64_t s : {1ULL, 10ULL, 50ULL}) {
      for (std::uint64_t d : {100ULL, 10'000ULL, 1'000'000ULL}) {
        EXPECT_LT(infinite_window_lower_bound(k, s, d),
                  infinite_window_upper_bound(k, s, d))
            << "k=" << k << " s=" << s << " d=" << d;
      }
    }
  }
}

TEST(Bounds, RatioWithinFactorFour) {
  // The paper claims optimality within a factor of four; the analytic
  // bound pair itself satisfies UB/LB <= 4 for d >> s.
  const double ub = infinite_window_upper_bound(10, 10, 1'000'000);
  const double lb = infinite_window_lower_bound(10, 10, 1'000'000);
  EXPECT_LE(ub / lb, 4.0 + 1e-9);
}

TEST(ChiSquare, ZeroForPerfectUniform) {
  std::vector<std::uint64_t> counts(10, 500);
  EXPECT_DOUBLE_EQ(chi_square_uniform(counts), 0.0);
}

TEST(ChiSquare, DetectsSkew) {
  std::vector<std::uint64_t> counts(10, 100);
  counts[0] = 1000;
  EXPECT_GT(chi_square_uniform(counts), chi_square_critical(9, 0.001));
}

TEST(ChiSquare, CriticalValuesSane) {
  // Known chi-square 0.05 upper quantiles: dof=10 -> 18.31, dof=100 -> 124.34.
  EXPECT_NEAR(chi_square_critical(10, 0.05), 18.31, 0.4);
  EXPECT_NEAR(chi_square_critical(100, 0.05), 124.34, 1.5);
  EXPECT_GT(chi_square_critical(10, 0.01), chi_square_critical(10, 0.05));
}

TEST(KolmogorovSmirnov, UniformSamplePasses) {
  Xoshiro256StarStar rng(23);
  std::vector<double> xs;
  for (int i = 0; i < 5000; ++i) xs.push_back(rng.next_double());
  EXPECT_LT(ks_statistic_uniform(xs), ks_critical(xs.size(), 0.01));
}

TEST(KolmogorovSmirnov, SkewedSampleFails) {
  Xoshiro256StarStar rng(29);
  std::vector<double> xs;
  for (int i = 0; i < 5000; ++i) {
    const double u = rng.next_double();
    xs.push_back(u * u);  // biased toward 0
  }
  EXPECT_GT(ks_statistic_uniform(xs), ks_critical(xs.size(), 0.01));
}

TEST(Pearson, PerfectAndNoCorrelation) {
  std::vector<double> x{1, 2, 3, 4, 5};
  std::vector<double> y{2, 4, 6, 8, 10};
  EXPECT_NEAR(pearson(x, y), 1.0, 1e-12);
  std::vector<double> z{5, 5, 5, 5, 5};
  EXPECT_EQ(pearson(x, z), 0.0);
}

TEST(LlsSlope, RecoversLinearCoefficient) {
  std::vector<double> x, y;
  for (int i = 0; i < 50; ++i) {
    x.push_back(i);
    y.push_back(3.0 * i + 7.0);
  }
  EXPECT_NEAR(lls_slope(x, y), 3.0, 1e-9);
}

// -------------------------------------------------------------- table --

TEST(Table, MarkdownLayout) {
  Table t({"a", "bb"});
  t.add_row({"1", "2"});
  t.add_row({"333", "4"});
  const std::string md = t.to_markdown();
  EXPECT_NE(md.find("| a   | bb |"), std::string::npos);
  EXPECT_NE(md.find("| 333 | 4  |"), std::string::npos);
}

TEST(Table, RowWidthMismatchThrows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
  EXPECT_THROW(Table({}), std::invalid_argument);
}

TEST(Table, CsvEscaping) {
  Table t({"x"});
  t.add_row({"plain"});
  t.add_row({"has,comma"});
  t.add_row({"has\"quote"});
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("plain\n"), std::string::npos);
  EXPECT_NE(csv.find("\"has,comma\""), std::string::npos);
  EXPECT_NE(csv.find("\"has\"\"quote\""), std::string::npos);
}

TEST(Table, WriteCsvCreatesDirectories) {
  const auto dir = std::filesystem::temp_directory_path() / "dds_table_test";
  std::filesystem::remove_all(dir);
  Table t({"h"});
  t.add_row({"v"});
  const auto path = dir / "nested" / "out.csv";
  t.write_csv(path);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "h");
  std::filesystem::remove_all(dir);
}

TEST(Fmt, IntegersAndDoubles) {
  EXPECT_EQ(fmt(3.0), "3");
  EXPECT_EQ(fmt(static_cast<std::uint64_t>(12)), "12");
  EXPECT_EQ(fmt(3.14159, 3), "3.14");
}

// ---------------------------------------------------------------- cli --

TEST(Cli, ParsesValuedAndBooleanFlags) {
  Cli cli;
  cli.flag("sites", "number of sites", "5");
  cli.flag("alpha", "zipf", "1.0");
  cli.boolean("full", "run at paper scale");
  const char* argv[] = {"prog", "--sites", "10", "--full", "--alpha=2.5"};
  ASSERT_TRUE(cli.parse(5, argv));
  EXPECT_EQ(cli.get_uint("sites"), 10u);
  EXPECT_TRUE(cli.get_bool("full"));
  EXPECT_DOUBLE_EQ(cli.get_double("alpha"), 2.5);
}

TEST(Cli, DefaultsApplyWhenOmitted) {
  Cli cli;
  cli.flag("sites", "number of sites", "7");
  cli.boolean("full", "run at paper scale");
  const char* argv[] = {"prog"};
  ASSERT_TRUE(cli.parse(1, argv));
  EXPECT_EQ(cli.get_uint("sites"), 7u);
  EXPECT_FALSE(cli.get_bool("full"));
}

TEST(Cli, UnknownFlagRejected) {
  Cli cli;
  cli.flag("sites", "n", "1");
  const char* argv[] = {"prog", "--nope", "3"};
  EXPECT_FALSE(cli.parse(3, argv));
}

TEST(Cli, MissingValueRejected) {
  Cli cli;
  cli.flag("sites", "n", "1");
  const char* argv[] = {"prog", "--sites"};
  EXPECT_FALSE(cli.parse(2, argv));
}

TEST(Cli, UintListParsing) {
  Cli cli;
  cli.flag("ks", "site sweep", "1,2,3");
  const char* argv[] = {"prog", "--ks", "5,10,20,50"};
  ASSERT_TRUE(cli.parse(3, argv));
  const auto ks = cli.get_uint_list("ks");
  ASSERT_EQ(ks.size(), 4u);
  EXPECT_EQ(ks[0], 5u);
  EXPECT_EQ(ks[3], 50u);
}

TEST(Cli, UnregisteredLookupThrows) {
  Cli cli;
  EXPECT_THROW(cli.get("nothere"), std::invalid_argument);
}

}  // namespace
}  // namespace dds::util
