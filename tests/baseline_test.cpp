// Tests for the baseline protocols: Algorithm Broadcast, the
// ship-everything centralized reference, and the DRS contrast sampler.
#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "baseline/baseline_system.h"
#include "core/system.h"
#include "stream/generators.h"
#include "stream/partitioner.h"
#include "util/stats.h"

namespace dds::baseline {
namespace {

using stream::Element;

std::vector<Element> sorted_elements(const core::BottomSSample& sample) {
  auto v = sample.elements();
  std::sort(v.begin(), v.end());
  return v;
}

// ----------------------------------------------------------- broadcast --

TEST(Broadcast, SampleMatchesProposedAlgorithm) {
  // Same hash seed derivation => identical sampling decisions; only the
  // message pattern differs.
  core::SystemConfig config{6, 8, hash::HashKind::kMurmur2, 21};
  core::InfiniteSystem proposed(config);
  BroadcastSystem broadcast(config);

  stream::UniformStream s1(4000, 900, 77), s2(4000, 900, 77);
  stream::RandomPartitioner p1(s1, 6, 88), p2(s2, 6, 88);
  proposed.run(p1);
  broadcast.run(p2);

  EXPECT_EQ(sorted_elements(proposed.coordinator().sample()),
            sorted_elements(broadcast.coordinator().sample()));
  EXPECT_EQ(proposed.coordinator().threshold(),
            broadcast.coordinator().threshold());
}

TEST(Broadcast, BroadcastCountIsSitesTimesThresholdChanges) {
  core::SystemConfig config{10, 5, hash::HashKind::kMurmur2, 22};
  BroadcastSystem system(config);
  stream::AllDistinctStream input(2000, 9);
  stream::RandomPartitioner source(input, 10, 10);
  system.run(source);
  const auto& c = system.bus().counters();
  const auto broadcasts = c.by_type[static_cast<std::size_t>(
      sim::MsgType::kThresholdBroadcast)];
  EXPECT_EQ(broadcasts % 10, 0u);  // k messages per change
  EXPECT_GT(broadcasts, 0u);
  EXPECT_EQ(c.total, c.site_to_coordinator + broadcasts);
}

TEST(Broadcast, CostsMoreThanProposedOnManySites) {
  // Figure 5.4's headline: Broadcast sends far more messages at k = 100.
  core::SystemConfig config{100, 20, hash::HashKind::kMurmur2, 23};
  core::InfiniteSystem proposed(config);
  BroadcastSystem broadcast(config);
  stream::UniformStream s1(20000, 8000, 31), s2(20000, 8000, 31);
  stream::RandomPartitioner p1(s1, 100, 32), p2(s2, 100, 32);
  proposed.run(p1);
  broadcast.run(p2);
  EXPECT_GT(broadcast.bus().counters().total,
            2 * proposed.bus().counters().total);
}

TEST(Broadcast, SitesNeverSendUselessReports) {
  // With views always in sync, every report carries a hash strictly
  // below the global threshold, so every report changes the sample
  // while it is full.
  core::SystemConfig config{4, 3, hash::HashKind::kMurmur2, 24};
  BroadcastSystem system(config);
  stream::AllDistinctStream input(500, 11);
  stream::RoundRobinPartitioner source(input, 4);
  system.run(source);
  const auto& c = system.bus().counters();
  const auto reports =
      c.by_type[static_cast<std::size_t>(sim::MsgType::kReportElement)];
  const auto broadcasts = c.by_type[static_cast<std::size_t>(
      sim::MsgType::kThresholdBroadcast)];
  // Every report after the fill phase triggers a broadcast round:
  // changes = broadcasts / k; reports == changes (+ the <= s fill-phase
  // reports that did not move u).
  EXPECT_LE(reports - broadcasts / 4, 3u + 1u);
}

// --------------------------------------------------------- centralized --

TEST(Centralized, MessageCostIsExactlyStreamLength) {
  core::SystemConfig config{7, 10, hash::HashKind::kMurmur2, 25};
  CentralizedSystem system(config);
  stream::UniformStream input(3000, 500, 41);
  stream::RandomPartitioner source(input, 7, 42);
  system.run(source);
  EXPECT_EQ(system.bus().counters().total, 3000u);
  EXPECT_EQ(system.bus().counters().coordinator_to_site, 0u);
}

TEST(Centralized, SampleIsExactOracle) {
  core::SystemConfig config{3, 6, hash::HashKind::kMurmur2, 26};
  CentralizedSystem centralized(config);
  core::InfiniteSystem proposed(config);
  stream::UniformStream s1(2500, 400, 51), s2(2500, 400, 51);
  stream::RandomPartitioner p1(s1, 3, 52), p2(s2, 3, 52);
  centralized.run(p1);
  proposed.run(p2);
  // Both hold the bottom-s of the same hash function over the same
  // distinct set.
  EXPECT_EQ(sorted_elements(centralized.coordinator().sample()),
            sorted_elements(proposed.coordinator().sample()));
}

TEST(Centralized, ProposedBeatsShipEverythingOnDuplicateHeavyStreams) {
  core::SystemConfig config{5, 10, hash::HashKind::kMurmur2, 27};
  core::InfiniteSystem proposed(config);
  CentralizedSystem centralized(config);
  // Zipf stream: many repeats.
  stream::ZipfStream s1(20000, 2000, 1.1, 61), s2(20000, 2000, 1.1, 61);
  stream::RandomPartitioner p1(s1, 5, 62), p2(s2, 5, 62);
  proposed.run(p1);
  centralized.run(p2);
  EXPECT_LT(proposed.bus().counters().total,
            centralized.bus().counters().total / 5);
}

// ----------------------------------------------------------------- drs --

TEST(Drs, SampleSizeCapsAtS) {
  core::SystemConfig config{4, 10, hash::HashKind::kMurmur2, 28};
  DrsSystem system(config);
  stream::UniformStream input(5000, 1000, 71);
  stream::RandomPartitioner source(input, 4, 72);
  system.run(source);
  EXPECT_EQ(system.coordinator().sample().size(), 10u);
  EXPECT_LT(system.coordinator().threshold(), hash::kHashMax);
}

TEST(Drs, FrequencyBiasUnlikeDds) {
  // One heavy element (half of all occurrences) should appear in the
  // DRS occurrence-sample in ~ every run, while DDS includes it with
  // probability s/d only.
  constexpr int kRuns = 60;
  constexpr std::size_t kS = 5;
  constexpr std::uint64_t kDistinct = 100;
  int drs_hits = 0, dds_hits = 0;
  for (int run = 0; run < kRuns; ++run) {
    core::SystemConfig config{3, kS, hash::HashKind::kMurmur2,
                              static_cast<std::uint64_t>(run) * 31 + 5};
    // Stream: element 1 repeated 99 times + elements 2..100 once each.
    std::vector<Element> elements;
    for (int i = 0; i < 99; ++i) elements.push_back(1);
    for (Element e = 2; e <= kDistinct; ++e) elements.push_back(e);
    {
      DrsSystem drs(config);
      stream::VectorStream replay(elements);
      stream::RandomPartitioner src(replay, 3, run + 1);
      drs.run(src);
      const auto sample = drs.coordinator().sample();
      drs_hits +=
          std::count(sample.begin(), sample.end(), Element{1}) > 0 ? 1 : 0;
    }
    {
      core::InfiniteSystem dds(config);
      stream::VectorStream replay(elements);
      stream::RandomPartitioner src(replay, 3, run + 1);
      dds.run(src);
      dds_hits += dds.coordinator().sample().contains(1) ? 1 : 0;
    }
  }
  // DRS: P[heavy in sample] ~ 1 - prod(1 - 99/198...) >> 0.9.
  EXPECT_GT(drs_hits, kRuns * 8 / 10);
  // DDS: P = s/d = 0.05.
  EXPECT_LT(dds_hits, kRuns * 3 / 10);
}

TEST(Drs, DuplicatesStillCostMessagesUnlikeDds) {
  // The Chapter-1 contrast: for DRS every occurrence is a fresh draw, so
  // duplicate-only streams keep generating traffic; for DDS they go
  // quiet (except sample-member repeats).
  core::SystemConfig config{4, 5, hash::HashKind::kMurmur2, 29};
  DrsSystem drs(config);
  core::InfiniteSystem dds(config);
  // 200 distinct, then 5000 repeat occurrences of a tiny subset.
  std::vector<Element> elements;
  for (Element e = 1; e <= 200; ++e) elements.push_back(e);
  for (int i = 0; i < 5000; ++i) elements.push_back(100 + (i % 3));
  {
    stream::VectorStream replay(elements);
    stream::RandomPartitioner src(replay, 4, 81);
    drs.run(src);
  }
  {
    stream::VectorStream replay(elements);
    stream::RandomPartitioner src(replay, 4, 81);
    dds.run(src);
  }
  EXPECT_GT(drs.bus().counters().total, dds.bus().counters().total);
}

TEST(Drs, EveryReportGetsReply) {
  core::SystemConfig config{5, 8, hash::HashKind::kMurmur2, 30};
  DrsSystem system(config);
  stream::UniformStream input(4000, 700, 91);
  stream::RandomPartitioner source(input, 5, 92);
  system.run(source);
  const auto& c = system.bus().counters();
  EXPECT_EQ(c.site_to_coordinator, c.coordinator_to_site);
}

}  // namespace
}  // namespace dds::baseline
