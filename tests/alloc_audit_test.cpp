// Steady-state zero-allocation audit for the batched ingest and
// multi-tenant serving hot paths.
//
// Mechanism: this TU overrides global operator new/delete to bump
// thread-local counters (gtest and the measured code share them, so
// the measured regions must not run any gtest machinery — counts are
// captured into plain locals and asserted AFTER the region). Warm-up
// drives each structure past its high-water mark (pools, scratch
// buffers, answer buffers all reach capacity); the measured steady
// state then re-runs the same loop shape and must allocate NOTHING —
// the property that makes the batched path safe for latency-sensitive
// serving loops.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <new>
#include <vector>

#include "core/windowed_bottom_s.h"
#include "query/service.h"
#include "util/rng.h"

namespace {

thread_local std::uint64_t g_news = 0;
thread_local std::uint64_t g_deletes = 0;

}  // namespace

void* operator new(std::size_t size) {
  ++g_news;
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept {
  ++g_deletes;
  std::free(p);
}
void operator delete[](void* p) noexcept { ::operator delete(p); }
void operator delete(void* p, std::size_t) noexcept { ::operator delete(p); }
void operator delete[](void* p, std::size_t) noexcept { ::operator delete(p); }

namespace dds {
namespace {

/// One bursty slot of elements drawn from a FIXED element universe
/// (steady state must revisit warm-up's elements so hash-set buckets
/// and pool slots are already provisioned).
void fill_burst(util::Xoshiro256StarStar& rng, std::uint64_t domain,
                std::vector<std::uint64_t>& burst) {
  burst.clear();
  const std::uint64_t count = 4 + rng.next_below(8);
  for (std::uint64_t i = 0; i < count; ++i) {
    burst.push_back(util::mix64(1 + rng.next_below(domain)));
  }
}

TEST(AllocAudit, BatchedSamplerSteadyStateAllocatesNothing) {
  core::WindowedBottomSSampler sampler(
      /*sample_size=*/8, /*window=*/64,
      hash::HashFunction(hash::HashKind::kMurmur2, 42), /*seed=*/7);
  util::Xoshiro256StarStar rng(11);
  std::vector<std::uint64_t> burst;
  burst.reserve(16);
  std::vector<treap::Candidate> answer;
  answer.reserve(8);

  // Warm-up: several full windows' worth of churn so the candidate
  // pools, slot index, and scratch all reach their high-water marks.
  for (sim::Slot t = 0; t < 400; ++t) {
    fill_burst(rng, /*domain=*/300, burst);
    sampler.observe_batch(burst, t);
    sampler.sample_into(t, answer);
  }

  const std::uint64_t news_before = g_news;
  for (sim::Slot t = 400; t < 800; ++t) {
    fill_burst(rng, /*domain=*/300, burst);
    sampler.observe_batch(burst, t);
    sampler.sample_into(t, answer);
  }
  const std::uint64_t news_after = g_news;
  EXPECT_EQ(news_after - news_before, 0u)
      << "batched sampler ingest+query allocated in steady state";
}

TEST(AllocAudit, TenantRegistryServeLoopAllocatesNothing) {
  query::TenantRegistry registry(/*sample_size=*/8, /*max_width=*/128,
                                 /*num_streams=*/2,
                                 hash::HashKind::kMurmur2, /*seed=*/5);
  for (const sim::Slot w : {8, 16, 32, 48, 64, 96, 112, 128}) {
    registry.register_tenant(w);
  }
  util::Xoshiro256StarStar rng(13);
  std::vector<std::uint64_t> burst;
  burst.reserve(16);

  for (sim::Slot t = 0; t < 500; ++t) {
    fill_burst(rng, /*domain=*/400, burst);
    registry.update_batch(static_cast<std::uint32_t>(t % 2), burst, t);
    registry.serve_all(t);
  }

  const std::uint64_t news_before = g_news;
  for (sim::Slot t = 500; t < 1000; ++t) {
    fill_burst(rng, /*domain=*/400, burst);
    registry.update_batch(static_cast<std::uint32_t>(t % 2), burst, t);
    registry.serve_all(t);
  }
  const std::uint64_t news_after = g_news;
  EXPECT_EQ(news_after - news_before, 0u)
      << "TenantRegistry ingest+serve_all allocated in steady state";
}

TEST(AllocAudit, CountersActuallyCount) {
  // Sanity: the overrides are live in this TU (otherwise the audits
  // above would pass vacuously).
  const std::uint64_t before = g_news;
  auto* p = new std::vector<int>(64);
  EXPECT_GT(g_news, before);
  delete p;
}

}  // namespace
}  // namespace dds
