// Tests for the treap and the dominance set, including randomized
// equivalence against reference implementations.
#include <gtest/gtest.h>

#include <map>
#include <optional>
#include <set>
#include <vector>

#include "hash/hash_function.h"
#include "treap/dominance_set.h"
#include "treap/naive_dominance_set.h"
#include "treap/treap.h"
#include "util/rng.h"
#include "util/stats.h"

namespace dds::treap {
namespace {

// --------------------------------------------------------------- treap --

TEST(Treap, InsertFindEraseBasics) {
  Treap<int, std::string> t;
  EXPECT_TRUE(t.empty());
  EXPECT_TRUE(t.insert(5, "five"));
  EXPECT_TRUE(t.insert(3, "three"));
  EXPECT_TRUE(t.insert(9, "nine"));
  EXPECT_FALSE(t.insert(5, "again"));  // duplicate key rejected
  EXPECT_EQ(t.size(), 3u);
  ASSERT_NE(t.find(3), nullptr);
  EXPECT_EQ(*t.find(3), "three");
  EXPECT_EQ(t.find(4), nullptr);
  EXPECT_TRUE(t.contains(9));
  EXPECT_TRUE(t.erase(3));
  EXPECT_FALSE(t.erase(3));
  EXPECT_EQ(t.size(), 2u);
  EXPECT_TRUE(t.check_invariants());
}

TEST(Treap, FrontBackAndLowerBound) {
  Treap<int, int> t;
  for (int k : {50, 20, 80, 10, 60}) t.insert(k, k * 2);
  EXPECT_EQ(t.front()->first, 10);
  EXPECT_EQ(t.back()->first, 80);
  EXPECT_EQ(t.lower_bound_key(55).value(), 60);
  EXPECT_EQ(t.lower_bound_key(60).value(), 60);
  EXPECT_EQ(t.lower_bound_key(81), std::nullopt);
  EXPECT_EQ(t.lower_bound_key(-5).value(), 10);
}

TEST(Treap, InOrderTraversalIsSorted) {
  Treap<int, int> t;
  util::Xoshiro256StarStar rng(1);
  for (int i = 0; i < 200; ++i) {
    t.insert(static_cast<int>(rng.next_below(10000)), i);
  }
  std::vector<int> keys;
  t.for_each([&keys](int k, int) { keys.push_back(k); });
  EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
  EXPECT_TRUE(t.check_invariants());
}

TEST(Treap, RemovePrefixWhile) {
  Treap<int, int> t;
  for (int k = 1; k <= 10; ++k) t.insert(k, k);
  std::vector<int> removed;
  t.remove_prefix_while([](int k, int) { return k <= 4; },
                        [&removed](int k, int) { removed.push_back(k); });
  EXPECT_EQ(removed, (std::vector<int>{1, 2, 3, 4}));
  EXPECT_EQ(t.size(), 6u);
  EXPECT_EQ(t.front()->first, 5);
  EXPECT_TRUE(t.check_invariants());
}

TEST(Treap, RemoveSuffixWhile) {
  Treap<int, int> t;
  for (int k = 1; k <= 10; ++k) t.insert(k, k);
  std::vector<int> removed;
  t.remove_suffix_while([](int k, int) { return k >= 8; },
                        [&removed](int k, int) { removed.push_back(k); });
  EXPECT_EQ(removed, (std::vector<int>{8, 9, 10}));
  EXPECT_EQ(t.back()->first, 7);
  EXPECT_TRUE(t.check_invariants());
}

TEST(Treap, RemovePrefixOnEmptyAndNoMatch) {
  Treap<int, int> t;
  int calls = 0;
  t.remove_prefix_while([](int, int) { return true; },
                        [&calls](int, int) { ++calls; });
  EXPECT_EQ(calls, 0);
  t.insert(5, 5);
  t.remove_prefix_while([](int k, int) { return k < 0; },
                        [&calls](int, int) { ++calls; });
  EXPECT_EQ(calls, 0);
  EXPECT_EQ(t.size(), 1u);
}

TEST(Treap, SplitOffLowerAndAbsorb) {
  Treap<int, int> t;
  for (int k = 1; k <= 20; ++k) t.insert(k, k);
  Treap<int, int> low = t.split_off_lower(11);
  EXPECT_EQ(low.size(), 10u);
  EXPECT_EQ(t.size(), 10u);
  EXPECT_EQ(low.back()->first, 10);
  EXPECT_EQ(t.front()->first, 11);
  EXPECT_TRUE(low.check_invariants());
  EXPECT_TRUE(t.check_invariants());
  t.absorb_lower(std::move(low));
  EXPECT_EQ(t.size(), 20u);
  EXPECT_EQ(t.front()->first, 1);
  EXPECT_TRUE(t.check_invariants());
}

TEST(Treap, FuzzAgainstStdMap) {
  Treap<std::uint32_t, std::uint32_t> t;
  std::map<std::uint32_t, std::uint32_t> ref;
  util::Xoshiro256StarStar rng(99);
  for (int step = 0; step < 5000; ++step) {
    const auto key = static_cast<std::uint32_t>(rng.next_below(300));
    switch (rng.next_below(4)) {
      case 0:
      case 1: {
        const bool inserted = t.insert(key, key + 1);
        const bool ref_inserted = ref.emplace(key, key + 1).second;
        ASSERT_EQ(inserted, ref_inserted);
        break;
      }
      case 2: {
        ASSERT_EQ(t.erase(key), ref.erase(key) > 0);
        break;
      }
      case 3: {
        ASSERT_EQ(t.contains(key), ref.contains(key));
        auto lb = ref.lower_bound(key);
        auto tlb = t.lower_bound_key(key);
        if (lb == ref.end()) {
          ASSERT_EQ(tlb, std::nullopt);
        } else {
          ASSERT_EQ(tlb.value(), lb->first);
        }
        break;
      }
    }
    ASSERT_EQ(t.size(), ref.size());
  }
  EXPECT_TRUE(t.check_invariants());
  if (!ref.empty()) {
    EXPECT_EQ(t.front()->first, ref.begin()->first);
    EXPECT_EQ(t.back()->first, std::prev(ref.end())->first);
  }
}

TEST(Treap, FrontBackEmptyReturnNullopt) {
  Treap<int, int> t;
  EXPECT_EQ(t.front(), std::nullopt);
  EXPECT_EQ(t.back(), std::nullopt);
  t.insert(7, 70);
  ASSERT_TRUE(t.front().has_value());
  EXPECT_EQ(t.front()->second, 70);
  t.erase(7);
  EXPECT_EQ(t.front(), std::nullopt);
  EXPECT_EQ(t.back(), std::nullopt);
}

// Differential fuzz with the full operation surface — point ops plus the
// bulk ops (remove_prefix_while / remove_suffix_while / split_off_lower
// + absorb_lower / remove_suffix_of_lower_while) — against std::map,
// with pool/structure invariants checked throughout.
TEST(Treap, FullOpFuzzAgainstStdMap) {
  Treap<std::uint32_t, std::uint32_t> t(7);
  std::map<std::uint32_t, std::uint32_t> ref;
  util::Xoshiro256StarStar rng(2024);
  for (int step = 0; step < 4000; ++step) {
    const auto key = static_cast<std::uint32_t>(rng.next_below(500));
    switch (rng.next_below(8)) {
      case 0:
      case 1: {
        ASSERT_EQ(t.insert(key, key ^ 0xABCD),
                  ref.emplace(key, key ^ 0xABCD).second);
        break;
      }
      case 2: {
        ASSERT_EQ(t.erase(key), ref.erase(key) > 0);
        break;
      }
      case 3: {  // remove_prefix_while: drop all keys < key
        std::vector<std::uint32_t> removed;
        t.remove_prefix_while(
            [key](std::uint32_t k, std::uint32_t) { return k < key; },
            [&removed](std::uint32_t k, std::uint32_t) {
              removed.push_back(k);
            });
        std::vector<std::uint32_t> ref_removed;
        for (auto it = ref.begin(); it != ref.end() && it->first < key;) {
          ref_removed.push_back(it->first);
          it = ref.erase(it);
        }
        ASSERT_EQ(removed, ref_removed);
        break;
      }
      case 4: {  // remove_suffix_while: drop all keys >= key
        std::vector<std::uint32_t> removed;
        t.remove_suffix_while(
            [key](std::uint32_t k, std::uint32_t) { return k >= key; },
            [&removed](std::uint32_t k, std::uint32_t) {
              removed.push_back(k);
            });
        std::vector<std::uint32_t> ref_removed;
        for (auto it = ref.lower_bound(key); it != ref.end();) {
          ref_removed.push_back(it->first);
          it = ref.erase(it);
        }
        ASSERT_EQ(removed, ref_removed);
        break;
      }
      case 5: {  // split_off_lower + absorb_lower round trip
        Treap<std::uint32_t, std::uint32_t> low = t.split_off_lower(key);
        const std::size_t expected_low = static_cast<std::size_t>(
            std::distance(ref.begin(), ref.lower_bound(key)));
        ASSERT_EQ(low.size(), expected_low);
        ASSERT_EQ(t.size(), ref.size() - expected_low);
        ASSERT_TRUE(low.check_invariants());
        ASSERT_TRUE(t.check_invariants());
        t.absorb_lower(std::move(low));
        break;
      }
      case 6: {  // fused prune: below `key`, drop the value-tagged suffix
        const auto cut = static_cast<std::uint32_t>(rng.next_below(500));
        std::vector<std::uint32_t> removed;
        t.remove_suffix_of_lower_while(
            key, [cut](std::uint32_t k, std::uint32_t) { return k >= cut; },
            [&removed](std::uint32_t k, std::uint32_t) {
              removed.push_back(k);
            });
        std::vector<std::uint32_t> ref_removed;
        for (auto it = ref.lower_bound(cut);
             it != ref.end() && it->first < key;) {
          ref_removed.push_back(it->first);
          it = ref.erase(it);
        }
        ASSERT_EQ(removed, ref_removed);
        break;
      }
      case 7: {
        ASSERT_EQ(t.contains(key), ref.contains(key));
        const auto lb = ref.lower_bound(key);
        const auto tlb = t.lower_bound_key(key);
        if (lb == ref.end()) {
          ASSERT_EQ(tlb, std::nullopt);
        } else {
          ASSERT_EQ(tlb.value(), lb->first);
        }
        break;
      }
    }
    ASSERT_EQ(t.size(), ref.size()) << "step " << step;
    if (step % 64 == 0) {
      ASSERT_TRUE(t.check_invariants()) << "step " << step;
    }
    if (ref.empty()) {
      ASSERT_EQ(t.front(), std::nullopt);
    } else {
      ASSERT_EQ(t.front()->first, ref.begin()->first);
      ASSERT_EQ(t.back()->first, std::prev(ref.end())->first);
    }
  }
  ASSERT_TRUE(t.check_invariants());
}

// The structural operations are iterative; a million sequential inserts
// followed by full-tree bulk removal must not touch the call stack.
TEST(Treap, MillionSequentialInsertsNoStackOverflow) {
  Treap<std::uint32_t, char> t(99);
  constexpr std::uint32_t kN = 1'000'000;
  t.reserve(kN);
  for (std::uint32_t i = 0; i < kN; ++i) t.insert(i, 0);
  ASSERT_EQ(t.size(), kN);
  EXPECT_EQ(t.front()->first, 0u);
  EXPECT_EQ(t.back()->first, kN - 1);
  EXPECT_LT(t.max_depth(), 200u);
  // Erase a slice point-wise, then drain the rest in one bulk op.
  for (std::uint32_t i = 0; i < 1000; ++i) t.erase(i * 997);
  std::size_t drained = 0;
  std::uint32_t prev = 0;
  bool ordered = true;
  t.remove_prefix_while([](std::uint32_t, char) { return true; },
                        [&](std::uint32_t k, char) {
                          ordered = ordered && (drained == 0 || k > prev);
                          prev = k;
                          ++drained;
                        });
  EXPECT_TRUE(ordered);
  EXPECT_EQ(drained, kN - 1000);
  EXPECT_TRUE(t.empty());
  EXPECT_TRUE(t.check_invariants());
}

// Steady-state churn must recycle freelist slots: after warmup the pool
// stops growing, i.e. zero allocations per element on the hot path.
TEST(Treap, SteadyStateChurnDoesNotGrowPool) {
  Treap<std::uint64_t, std::uint64_t> t(5);
  for (std::uint64_t i = 0; i < 1024; ++i) t.insert(i * 2, i);
  // Prime the freelist with one churn cycle (the very first transient
  // insert has no freed slot to recycle), then the pool must not move.
  t.insert(1, 1);
  t.erase(1);
  const std::size_t slots = t.pool_slots();
  util::Xoshiro256StarStar rng(6);
  for (int step = 0; step < 20000; ++step) {
    const std::uint64_t key = rng.next_below(2048) | 1;  // odd: not resident
    t.insert(key, key);
    t.erase(key);
  }
  EXPECT_EQ(t.pool_slots(), slots);
  EXPECT_EQ(t.size(), 1024u);
  EXPECT_TRUE(t.check_invariants());
}

TEST(Treap, DepthStaysLogarithmicOnSortedInsert) {
  // Degenerate insertion order; the random priorities must keep the
  // expected depth ~ 3 log2(n). Allow generous slack.
  Treap<int, int> t(/*seed=*/424242);
  constexpr int kN = 20000;
  for (int k = 0; k < kN; ++k) t.insert(k, k);
  EXPECT_LT(t.max_depth(), 120u);  // log2(20000) ~ 14.3
  EXPECT_TRUE(t.check_invariants());
}

// -------------------------------------------------------- DominanceSet --

TEST(DominanceSet, ObserveKeepsNonDominated) {
  DominanceSet d;
  d.observe(/*element=*/1, /*hash=*/90, /*expiry=*/10);
  d.observe(2, 50, 11);  // dominates element 1 (later expiry, smaller hash)
  EXPECT_EQ(d.size(), 1u);
  EXPECT_FALSE(d.contains(1));
  d.observe(3, 70, 12);  // larger hash: both kept
  EXPECT_EQ(d.size(), 2u);
  const auto min = d.min_hash();
  ASSERT_TRUE(min.has_value());
  EXPECT_EQ(min->element, 2u);
  EXPECT_TRUE(d.check_invariants());
}

TEST(DominanceSet, DuplicateRefreshMovesExpiry) {
  DominanceSet d;
  d.observe(1, 40, 10);
  d.observe(2, 60, 11);
  d.observe(1, 40, 15);  // element 1 re-arrives: refresh; now dominates 2
  EXPECT_EQ(d.size(), 1u);
  EXPECT_TRUE(d.contains(1));
  EXPECT_EQ(d.min_hash()->expiry, 15);
  EXPECT_TRUE(d.check_invariants());
}

TEST(DominanceSet, ExpireDropsOldTuples) {
  DominanceSet d;
  d.observe(1, 10, 5);
  d.observe(2, 20, 8);
  d.observe(3, 30, 12);
  d.expire(8);  // removes expiry <= 8
  EXPECT_EQ(d.size(), 1u);
  EXPECT_TRUE(d.contains(3));
  d.expire(100);
  EXPECT_TRUE(d.empty());
  EXPECT_EQ(d.min_hash(), std::nullopt);
}

TEST(DominanceSet, InsertRejectsDominatedCandidate) {
  DominanceSet d;
  d.observe(1, 10, 20);           // small hash, late expiry
  d.insert(2, 50, 15);            // dominated by element 1
  EXPECT_FALSE(d.contains(2));
  d.insert(3, 5, 15);             // smaller hash, earlier expiry: kept
  EXPECT_TRUE(d.contains(3));
  EXPECT_EQ(d.min_hash()->element, 3u);
  EXPECT_TRUE(d.check_invariants());
}

TEST(DominanceSet, InsertPrunesWhatItDominates) {
  DominanceSet d;
  d.observe(1, 80, 10);
  d.observe(2, 90, 10);
  d.insert(3, 50, 12);  // dominates both
  EXPECT_EQ(d.size(), 1u);
  EXPECT_TRUE(d.contains(3));
  EXPECT_TRUE(d.check_invariants());
}

TEST(DominanceSet, InsertKeepsLaterExpiryForSameElement) {
  DominanceSet d;
  d.insert(1, 30, 10);
  d.insert(1, 30, 8);  // older info: ignored
  EXPECT_EQ(d.min_hash()->expiry, 10);
  d.insert(1, 30, 14);  // newer: replaces
  EXPECT_EQ(d.min_hash()->expiry, 14);
  EXPECT_EQ(d.size(), 1u);
}

TEST(DominanceSet, MinHashIsEarliestExpiring) {
  // Staircase property: ascending expiry implies ascending hash, so the
  // minimum hash element is also the next to expire.
  DominanceSet d;
  util::Xoshiro256StarStar rng(7);
  sim::Slot t = 0;
  for (int i = 0; i < 200; ++i) {
    d.observe(1000 + i, rng.next(), ++t + 50);
  }
  const auto snap = d.snapshot();
  ASSERT_FALSE(snap.empty());
  for (std::size_t i = 1; i < snap.size(); ++i) {
    EXPECT_LE(snap[i - 1].expiry, snap[i].expiry);
    EXPECT_LE(snap[i - 1].hash, snap[i].hash);
  }
  EXPECT_EQ(d.min_hash()->hash, snap.front().hash);
}

struct DomFuzzParams {
  std::uint64_t seed;
  int domain;       // element universe size (controls duplicate rate)
  int window;       // expiry horizon
  int coord_every;  // inject coordinator-style inserts every N steps
};

class DominanceSetFuzz : public ::testing::TestWithParam<DomFuzzParams> {};

TEST_P(DominanceSetFuzz, MatchesNaiveReference) {
  const auto p = GetParam();
  DominanceSet fast(p.seed);
  NaiveDominanceSet ref;
  util::Xoshiro256StarStar rng(p.seed);
  hash::HashFunction h(hash::HashKind::kMurmur2, p.seed);

  for (sim::Slot t = 0; t < 600; ++t) {
    fast.expire(t);
    ref.expire(t);
    const int arrivals = static_cast<int>(rng.next_below(4));
    for (int a = 0; a < arrivals; ++a) {
      const std::uint64_t e = 1 + rng.next_below(p.domain);
      fast.observe(e, h(e), t + p.window);
      ref.observe(e, h(e), t + p.window);
    }
    if (p.coord_every > 0 && t % p.coord_every == 0 && t > 0) {
      // Simulated coordinator reply: an element with mid-range expiry.
      const std::uint64_t e = 1 + rng.next_below(p.domain);
      const sim::Slot expiry = t + 1 + static_cast<sim::Slot>(
                                           rng.next_below(p.window));
      fast.insert(e, h(e), expiry);
      ref.insert(e, h(e), expiry);
    }
    ASSERT_EQ(fast.size(), ref.size()) << "slot " << t;
    ASSERT_EQ(fast.snapshot(), ref.snapshot()) << "slot " << t;
    ASSERT_TRUE(fast.check_invariants()) << "slot " << t;
    const auto fm = fast.min_hash();
    const auto rm = ref.min_hash();
    ASSERT_EQ(fm.has_value(), rm.has_value());
    if (fm) {
      ASSERT_EQ(fm->element, rm->element);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DominanceSetFuzz,
    ::testing::Values(DomFuzzParams{1, 50, 20, 0},
                      DomFuzzParams{2, 10, 20, 0},   // heavy duplicates
                      DomFuzzParams{3, 500, 5, 0},   // tiny window
                      DomFuzzParams{4, 50, 50, 7},   // with coord inserts
                      DomFuzzParams{5, 5, 10, 3},    // duplicates + inserts
                      DomFuzzParams{6, 1000, 100, 13}));

TEST(DominanceSet, ExpectedSizeIsHarmonicLike) {
  // Lemma 10: E[|T_i|] <= H_M for M distinct in-window elements. With
  // an all-distinct stream and window >= stream length, E[|T|] ~ H_n.
  constexpr int kRuns = 40;
  constexpr int kN = 256;
  double total = 0;
  for (int run = 0; run < kRuns; ++run) {
    DominanceSet d(run);
    hash::HashFunction h(hash::HashKind::kMurmur2, 1000 + run);
    for (int i = 0; i < kN; ++i) {
      d.observe(run * 100000 + i, h(run * 100000 + i), 100000 + i);
    }
    total += static_cast<double>(d.size());
  }
  const double avg = total / kRuns;
  const double h_n = util::harmonic(kN);  // ~ 6.1
  EXPECT_LT(avg, 2.0 * h_n);
  EXPECT_GT(avg, 0.5 * h_n);
}

TEST(NaiveDominanceSet, BasicSemantics) {
  NaiveDominanceSet d;
  d.observe(1, 90, 10);
  d.observe(2, 50, 11);
  EXPECT_EQ(d.size(), 1u);
  EXPECT_TRUE(d.contains(2));
  EXPECT_FALSE(d.contains(1));
  d.expire(11);
  EXPECT_TRUE(d.empty());
}

}  // namespace
}  // namespace dds::treap
