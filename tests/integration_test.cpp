// Integration tests: whole-experiment shapes on scaled-down versions of
// the paper's workloads — the qualitative claims of Chapter 5 must hold
// on small configurations before the bench harness scales them up.
#include <gtest/gtest.h>

#include <vector>

#include "baseline/baseline_system.h"
#include "core/system.h"
#include "query/estimators.h"
#include "sim/sources.h"
#include "stream/generators.h"
#include "stream/partitioner.h"
#include "stream/trace_synth.h"
#include "util/stats.h"

namespace dds {
namespace {

using sim::ListSource;

using core::InfiniteSystem;
using core::SystemConfig;

std::uint64_t run_infinite(std::uint32_t sites, std::size_t sample_size,
                           stream::Distribution distribution,
                           stream::ElementStream& input, std::uint64_t seed,
                           double dominate_rate = 1.0) {
  SystemConfig config{sites, sample_size, hash::HashKind::kMurmur2, seed};
  InfiniteSystem system(config);
  auto source = stream::make_partitioner(distribution, input, sites, seed + 1,
                                         dominate_rate);
  system.run(*source);
  return system.bus().counters().total;
}

// Figure 5.1's shape: flooding costs much more than random/round-robin;
// random and round-robin are nearly identical.
TEST(Shapes, FloodingDominatesRandomAndRoundRobin) {
  std::uint64_t flooding = 0, random = 0, rr = 0;
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    {
      auto s = stream::make_trace(stream::Dataset::kEnron, 0.02, seed);
      flooding += run_infinite(5, 10, stream::Distribution::kFlooding, *s, seed);
    }
    {
      auto s = stream::make_trace(stream::Dataset::kEnron, 0.02, seed);
      random += run_infinite(5, 10, stream::Distribution::kRandom, *s, seed);
    }
    {
      auto s = stream::make_trace(stream::Dataset::kEnron, 0.02, seed);
      rr += run_infinite(5, 10, stream::Distribution::kRoundRobin, *s, seed);
    }
  }
  EXPECT_GT(flooding, 2 * random);
  const double ratio = static_cast<double>(random) / static_cast<double>(rr);
  EXPECT_GT(ratio, 0.85);
  EXPECT_LT(ratio, 1.18);
}

// Figure 5.2's shape: message count grows ~ linearly with s.
TEST(Shapes, MessagesRoughlyLinearInSampleSize) {
  std::vector<double> xs, ys;
  for (std::size_t s : {5, 10, 20, 40}) {
    auto input = stream::make_trace(stream::Dataset::kEnron, 0.02, 7);
    xs.push_back(static_cast<double>(s));
    ys.push_back(static_cast<double>(
        run_infinite(5, s, stream::Distribution::kRandom, *input, 7)));
  }
  // Strong positive linear correlation.
  EXPECT_GT(util::pearson(xs, ys), 0.98);
  // And superlinear blowup must NOT occur: y(40)/y(5) well below 8^1.5.
  EXPECT_LT(ys.back() / ys.front(), 12.0);
}

// Figure 5.3's shape: flooding grows linearly with k; random is almost
// flat in k.
TEST(Shapes, SiteScalingFloodingLinearRandomFlat) {
  std::vector<double> ks, flood, random;
  for (std::uint32_t k : {2, 4, 8, 16}) {
    ks.push_back(k);
    {
      auto s = stream::make_trace(stream::Dataset::kEnron, 0.02, 9);
      flood.push_back(static_cast<double>(
          run_infinite(k, 10, stream::Distribution::kFlooding, *s, 9)));
    }
    {
      auto s = stream::make_trace(stream::Dataset::kEnron, 0.02, 9);
      random.push_back(static_cast<double>(
          run_infinite(k, 10, stream::Distribution::kRandom, *s, 9)));
    }
  }
  // Flooding: x8 sites => ~ x8 messages (allow 4x-12x).
  const double flood_growth = flood.back() / flood.front();
  EXPECT_GT(flood_growth, 4.0);
  // Random: x8 sites => well under 3x messages.
  const double random_growth = random.back() / random.front();
  EXPECT_LT(random_growth, 3.0);
}

// Figure 5.6's shape: higher dominate rate => fewer messages.
TEST(Shapes, DominateRateReducesMessages) {
  auto messages_at = [](double rate) {
    auto s = stream::make_trace(stream::Dataset::kEnron, 0.02, 11);
    return run_infinite(10, 10, stream::Distribution::kDominate, *s, 11, rate);
  };
  const auto m1 = messages_at(1.0);
  const auto m200 = messages_at(200.0);
  EXPECT_GT(m1, m200);
}

// Chapter 1's DDS vs DRS contrast, in its robust form: on a suffix of
// pure repeats, DDS (with duplicate suppression) goes quiet because
// identity hashes never change, while DRS keeps drawing fresh tags per
// occurrence and keeps reporting the lucky ones (~ s ln growth).
TEST(Shapes, DdsQuietsDownOnDuplicatesDrsDoesNot) {
  SystemConfig config{5, 10, hash::HashKind::kMurmur2, 13};
  core::InfiniteSystem dds(config, /*eager_threshold=*/false,
                           /*suppress_duplicates=*/true);
  baseline::DrsSystem drs(config);

  util::Xoshiro256StarStar rng(14);
  std::vector<sim::Arrival> phase1, phase2;
  for (int i = 0; i < 500; ++i) {
    phase1.push_back({i, static_cast<sim::NodeId>(rng.next_below(5)),
                      static_cast<std::uint64_t>(i + 1)});
  }
  for (int i = 0; i < 20000; ++i) {
    // Pure repeats of three existing elements.
    phase2.push_back({500 + i, static_cast<sim::NodeId>(rng.next_below(5)),
                      static_cast<std::uint64_t>(1 + (i % 3))});
  }

  std::uint64_t dds_delta = 0, drs_delta = 0;
  {
    ListSource p1(phase1);
    dds.run(p1);
    const auto before = dds.bus().counters().total;
    ListSource p2(phase2);
    dds.run(p2);
    dds_delta = dds.bus().counters().total - before;
  }
  {
    ListSource p1(phase1);
    drs.run(p1);
    const auto before = drs.bus().counters().total;
    ListSource p2(phase2);
    drs.run(p2);
    drs_delta = drs.bus().counters().total - before;
  }
  EXPECT_GT(drs_delta, dds_delta);
  // DDS: at most one membership-learning round-trip per (site, repeated
  // element) pair.
  EXPECT_LE(dds_delta, 2u * 5u * 3u);
}

// End-to-end determinism across the whole stack (generator ->
// partitioner -> protocol): identical seeds give identical counters.
TEST(EndToEnd, FullRunDeterminism) {
  auto run_once = [](std::uint64_t seed) {
    SystemConfig config{8, 16, hash::HashKind::kMurmur2, seed};
    InfiniteSystem system(config);
    auto s = stream::make_trace(stream::Dataset::kEnron, 0.02, seed + 1);
    stream::RandomPartitioner src(*s, 8, seed + 2);
    system.run(src);
    return std::make_tuple(system.bus().counters().total,
                           system.coordinator().threshold(),
                           system.coordinator().sample().elements());
  };
  EXPECT_EQ(run_once(1001), run_once(1001));
  EXPECT_NE(std::get<0>(run_once(1001)), std::get<0>(run_once(1002)));
}

// The distinct-count estimator built from the distributed sample tracks
// the generator's true distinct count on both synthetic traces.
TEST(EndToEnd, EstimatorTracksTraceCardinality) {
  for (auto dataset : {stream::Dataset::kOc48, stream::Dataset::kEnron}) {
    const double scale = dataset == stream::Dataset::kOc48 ? 0.002 : 0.05;
    std::uint64_t true_distinct = 0;
    {
      auto s = stream::make_trace(dataset, scale, 17);
      true_distinct = stream::measure(*s).distinct;
    }
    SystemConfig config{5, 256, hash::HashKind::kMurmur2, 18};
    InfiniteSystem system(config);
    auto s = stream::make_trace(dataset, scale, 17);
    stream::RandomPartitioner src(*s, 5, 19);
    system.run(src);
    const double est = query::estimate_distinct(system.coordinator().sample());
    EXPECT_NEAR(est, static_cast<double>(true_distinct),
                0.25 * static_cast<double>(true_distinct))
        << to_string(dataset);
  }
}

// Bytes metric is consistent with the constant-size-message model.
TEST(EndToEnd, BytesAreMessagesTimesWireSize) {
  SystemConfig config{3, 5, hash::HashKind::kMurmur2, 23};
  InfiniteSystem system(config);
  stream::UniformStream input(1000, 300, 29);
  stream::RandomPartitioner src(input, 3, 30);
  system.run(src);
  const auto& c = system.bus().counters();
  EXPECT_EQ(c.bytes, c.total * sim::Message::wire_bytes());
}

}  // namespace
}  // namespace dds
