// Tests for the simulation substrate: bus accounting, delivery order,
// runner slot semantics, metrics series.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "sim/bus.h"
#include "sim/metrics.h"
#include "sim/node.h"
#include "sim/runner.h"
#include "sim/sources.h"

namespace dds::sim {
namespace {

/// Test node that logs deliveries and can auto-reply.
class Recorder final : public Node {
 public:
  explicit Recorder(NodeId id, bool reply = false) : id_(id), reply_(reply) {}

  void on_message(const Message& msg, net::Transport& bus) override {
    received.push_back(msg);
    if (reply_ && msg.from != id_) {
      Message r;
      r.from = id_;
      r.to = msg.from;
      r.type = MsgType::kThresholdReply;
      r.b = msg.b + 1;
      bus.send(r);
    }
  }

  std::vector<Message> received;

 private:
  NodeId id_;
  bool reply_;
};

class SinkSite final : public StreamNode {
 public:
  SinkSite(NodeId id, NodeId coord, bool send_on_element)
      : id_(id), coord_(coord), send_(send_on_element) {}

  void on_element(std::uint64_t element, Slot t, net::Transport& bus) override {
    elements.push_back(element);
    slots.push_back(t);
    if (send_) {
      Message m;
      m.from = id_;
      m.to = coord_;
      m.type = MsgType::kReportElement;
      m.a = element;
      bus.send(m);
    }
  }

  void on_slot_begin(Slot t, net::Transport& /*bus*/) override {
    slot_begins.push_back(t);
  }

  void on_message(const Message& msg, net::Transport& /*bus*/) override {
    received.push_back(msg);
  }

  std::vector<std::uint64_t> elements;
  std::vector<Slot> slots;
  std::vector<Slot> slot_begins;
  std::vector<Message> received;

 private:
  NodeId id_;
  NodeId coord_;
  bool send_;
};

/// Fixed arrival list as a source.
// ---------------------------------------------------------------- bus --

TEST(Bus, CountsDirectionsAndTypes) {
  Bus bus(2);
  Recorder site0(0), site1(1), coord(2, /*reply=*/true);
  bus.attach(0, &site0);
  bus.attach(1, &site1);
  bus.attach(2, &coord);

  Message m;
  m.from = 0;
  m.to = 2;
  m.type = MsgType::kReportElement;
  bus.send(m);
  bus.drain();

  // Report plus auto-reply.
  EXPECT_EQ(bus.counters().total, 2u);
  EXPECT_EQ(bus.counters().site_to_coordinator, 1u);
  EXPECT_EQ(bus.counters().coordinator_to_site, 1u);
  EXPECT_EQ(
      bus.counters().by_type[static_cast<std::size_t>(MsgType::kReportElement)],
      1u);
  EXPECT_EQ(bus.counters().by_type[static_cast<std::size_t>(
                MsgType::kThresholdReply)],
            1u);
  EXPECT_EQ(bus.counters().bytes, 2 * Message::wire_bytes());
  EXPECT_EQ(bus.sent_by(0), 1u);
  EXPECT_EQ(bus.sent_by(2), 1u);
  EXPECT_EQ(bus.received_by(2), 1u);
  EXPECT_EQ(bus.received_by(0), 1u);
  ASSERT_EQ(site0.received.size(), 1u);
  EXPECT_EQ(site0.received[0].b, 1u);
}

TEST(Bus, CounterSnapshotsSubtract) {
  Bus bus(1);
  Recorder site(0), coord(1);
  bus.attach(0, &site);
  bus.attach(1, &coord);
  Message m;
  m.from = 0;
  m.to = 1;
  bus.send(m);
  bus.drain();
  const BusCounters snap = bus.counters();
  bus.send(m);
  bus.send(m);
  bus.drain();
  const BusCounters delta = bus.counters() - snap;
  EXPECT_EQ(delta.total, 2u);
  EXPECT_EQ(delta.site_to_coordinator, 2u);
}

TEST(Bus, RejectsBadEndpointsAndUnattached) {
  Bus bus(1);
  Recorder site(0);
  bus.attach(0, &site);
  Message bad;
  bad.from = 0;
  bad.to = 9;
  EXPECT_THROW(bus.send(bad), std::out_of_range);
  EXPECT_THROW(bus.attach(5, &site), std::out_of_range);
  Message to_coord;
  to_coord.from = 0;
  to_coord.to = 1;  // coordinator not attached
  bus.send(to_coord);
  EXPECT_THROW(bus.drain(), std::logic_error);
}

TEST(Bus, FifoDeliveryIncludingCascades) {
  Bus bus(2);
  Recorder site0(0), site1(1), coord(2, /*reply=*/true);
  bus.attach(0, &site0);
  bus.attach(1, &site1);
  bus.attach(2, &coord);
  Message a;
  a.from = 0;
  a.to = 2;
  a.b = 10;
  Message b;
  b.from = 1;
  b.to = 2;
  b.b = 20;
  bus.send(a);
  bus.send(b);
  bus.drain();
  // Coordinator saw a then b; replies landed after both reports.
  ASSERT_EQ(coord.received.size(), 2u);
  EXPECT_EQ(coord.received[0].b, 10u);
  EXPECT_EQ(coord.received[1].b, 20u);
  ASSERT_EQ(site0.received.size(), 1u);
  EXPECT_EQ(site0.received[0].b, 11u);
  ASSERT_EQ(site1.received.size(), 1u);
  EXPECT_EQ(site1.received[0].b, 21u);
}

TEST(Bus, TapSeesEveryMessage) {
  Bus bus(1);
  Recorder site(0), coord(1, /*reply=*/true);
  bus.attach(0, &site);
  bus.attach(1, &coord);
  std::vector<Message> tapped;
  bus.set_tap([&tapped](const Message& m) { tapped.push_back(m); });
  Message m;
  m.from = 0;
  m.to = 1;
  bus.send(m);
  bus.drain();
  EXPECT_EQ(tapped.size(), 2u);
}

// -------------------------------------------------------------- runner --

TEST(Runner, DeliversArrivalsToSites) {
  Bus bus(2);
  SinkSite s0(0, 2, false), s1(1, 2, false);
  Recorder coord(2);
  bus.attach(0, &s0);
  bus.attach(1, &s1);
  bus.attach(2, &coord);
  Runner runner(bus, {&s0, &s1}, /*invoke_slot_begin=*/false);
  ListSource src({{0, 0, 100}, {0, 1, 200}, {1, 0, 300}});
  EXPECT_EQ(runner.run(src), 3u);
  EXPECT_EQ(s0.elements, (std::vector<std::uint64_t>{100, 300}));
  EXPECT_EQ(s1.elements, (std::vector<std::uint64_t>{200}));
  EXPECT_TRUE(s0.slot_begins.empty());  // slot begin disabled
}

TEST(Runner, SlotBeginInvokedForEverySlotInOrder) {
  Bus bus(1);
  SinkSite s0(0, 1, false);
  Recorder coord(1);
  bus.attach(0, &s0);
  bus.attach(1, &coord);
  Runner runner(bus, {&s0}, /*invoke_slot_begin=*/true);
  ListSource src({{0, 0, 1}, {3, 0, 2}});
  runner.run(src);
  // Slots 0,1,2,3 all began, even empty ones.
  EXPECT_EQ(s0.slot_begins, (std::vector<Slot>{0, 1, 2, 3}));
  EXPECT_EQ(runner.current_slot(), 3);
}

TEST(Runner, AdvanceToSlotDrivesEmptySlots) {
  Bus bus(1);
  SinkSite s0(0, 1, false);
  Recorder coord(1);
  bus.attach(0, &s0);
  bus.attach(1, &coord);
  Runner runner(bus, {&s0}, /*invoke_slot_begin=*/true);
  runner.advance_to_slot(2);
  EXPECT_EQ(s0.slot_begins, (std::vector<Slot>{0, 1, 2}));
}

TEST(Runner, RejectsOutOfOrderSlots) {
  Bus bus(1);
  SinkSite s0(0, 1, false);
  Recorder coord(1);
  bus.attach(0, &s0);
  bus.attach(1, &coord);
  Runner runner(bus, {&s0}, false);
  ListSource src({{5, 0, 1}, {2, 0, 2}});
  EXPECT_THROW(runner.run(src), std::invalid_argument);
}

TEST(Runner, RejectsUnknownSite) {
  Bus bus(1);
  SinkSite s0(0, 1, false);
  Recorder coord(1);
  bus.attach(0, &s0);
  bus.attach(1, &coord);
  Runner runner(bus, {&s0}, false);
  ListSource src({{0, 7, 1}});
  EXPECT_THROW(runner.run(src), std::out_of_range);
}

TEST(Runner, SiteCountMustMatchBus) {
  Bus bus(2);
  SinkSite s0(0, 2, false);
  EXPECT_THROW(Runner(bus, {&s0}, false), std::invalid_argument);
}

TEST(Runner, ObserverCadenceAndFinalSnapshot) {
  Bus bus(1);
  SinkSite s0(0, 1, false);
  Recorder coord(1);
  bus.attach(0, &s0);
  bus.attach(1, &coord);
  Runner runner(bus, {&s0}, false);
  std::vector<Arrival> arrivals;
  for (int i = 0; i < 10; ++i) {
    arrivals.push_back({i, 0, static_cast<std::uint64_t>(i)});
  }
  ListSource src(arrivals);
  std::vector<Progress> seen;
  runner.set_observer(3, [&seen](const Progress& p) { seen.push_back(p); });
  runner.run(src);
  // Every 3 arrivals: 3,6,9, then the final snapshot at 10.
  ASSERT_EQ(seen.size(), 4u);
  EXPECT_EQ(seen[0].elements_processed, 3u);
  EXPECT_EQ(seen[2].elements_processed, 9u);
  EXPECT_TRUE(seen[3].final_snapshot);
  EXPECT_EQ(seen[3].elements_processed, 10u);
}

TEST(Runner, BusNowTracksSlots) {
  Bus bus(1);
  SinkSite s0(0, 1, false);
  Recorder coord(1);
  bus.attach(0, &s0);
  bus.attach(1, &coord);
  Runner runner(bus, {&s0}, true);
  ListSource src({{4, 0, 1}});
  runner.run(src);
  EXPECT_EQ(bus.now(), 4);
}

// ------------------------------------------------------------- metrics --

TEST(Series, AccumulatesPerX) {
  Series s;
  s.add(1.0, 10.0);
  s.add(1.0, 20.0);
  s.add(2.0, 5.0);
  EXPECT_EQ(s.xs(), (std::vector<double>{1.0, 2.0}));
  EXPECT_DOUBLE_EQ(s.mean_at(1.0), 15.0);
  EXPECT_DOUBLE_EQ(s.mean_at(2.0), 5.0);
  EXPECT_EQ(s.stat_at(1.0).count(), 2u);
  EXPECT_THROW(s.stat_at(9.0), std::out_of_range);
}

TEST(SeriesBundle, TableHasRowPerXAndColumnPerSeries) {
  SeriesBundle bundle("elements");
  bundle.series("proposed").add(100, 5);
  bundle.series("proposed").add(200, 8);
  bundle.series("broadcast").add(100, 50);
  const auto table = bundle.to_table(/*with_ci=*/false);
  EXPECT_EQ(table.columns(), 3u);  // x + 2 series
  EXPECT_EQ(table.rows(), 2u);     // x=100, x=200
  const std::string md = table.to_markdown();
  EXPECT_NE(md.find("proposed"), std::string::npos);
  EXPECT_NE(md.find("broadcast"), std::string::npos);
  EXPECT_NE(md.find("-"), std::string::npos);  // missing cell marker
}

TEST(SeriesBundle, CiColumnsWhenRequested) {
  SeriesBundle bundle("x");
  bundle.series("y").add(1, 2);
  bundle.series("y").add(1, 4);
  const auto table = bundle.to_table(/*with_ci=*/true);
  EXPECT_EQ(table.columns(), 3u);  // x, y, y ci95
}

}  // namespace
}  // namespace dds::sim
