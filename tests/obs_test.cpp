// The observability-layer suite.
//
// Three layers of contract:
//   * unit — log2 histogram bucketing, registry aggregation (duplicate
//     names sum; without_prefix strips all three instrument kinds),
//     tracer capacity/drop accounting, exporter round-trips;
//   * facade — Observability with instruments off binds/does nothing;
//   * determinism (the PR's acceptance) — with metrics + tracing on,
//     the sharded lockstep engine over a lossy wire produces a metrics
//     snapshot and a protocol-level trace bit-identical to the serial
//     engine at the same seed, for both the sliding and the infinite
//     protocol. Engine-strategy metrics/events (the "engine." name
//     prefix / "engine" trace category) legitimately differ and are
//     stripped before comparing.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/system.h"
#include "net/sim_network.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/observability.h"
#include "obs/trace.h"
#include "sim/metrics.h"
#include "sim/sources.h"
#include "util/rng.h"

namespace dds {
namespace {

using sim::ListSource;

constexpr std::uint32_t kSites = 13;
constexpr std::uint64_t kSeeds[] = {1, 2, 3};

/// Infinite-window shaped stream: slot == arrival index.
std::vector<sim::Arrival> infinite_stream(std::uint32_t sites, std::uint64_t n,
                                          std::uint64_t domain,
                                          std::uint64_t seed) {
  util::SplitMix64 gen(seed);
  std::vector<sim::Arrival> out;
  out.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    out.push_back(sim::Arrival{static_cast<sim::Slot>(i),
                               static_cast<sim::NodeId>(gen.next() % sites),
                               1 + gen.next() % domain});
  }
  return out;
}

/// Sliding-window shaped stream: `per_slot` arrivals in every slot.
std::vector<sim::Arrival> slotted_stream(std::uint32_t sites, sim::Slot slots,
                                         std::uint32_t per_slot,
                                         std::uint64_t domain,
                                         std::uint64_t seed) {
  util::SplitMix64 gen(seed);
  std::vector<sim::Arrival> out;
  out.reserve(static_cast<std::size_t>(slots) * per_slot);
  for (sim::Slot t = 0; t < slots; ++t) {
    for (std::uint32_t a = 0; a < per_slot; ++a) {
      out.push_back(sim::Arrival{t,
                                 static_cast<sim::NodeId>(gen.next() % sites),
                                 1 + gen.next() % domain});
    }
  }
  return out;
}

// ------------------------------------------------------------ histogram --

TEST(ObsHistogram, Log2Bucketing) {
  obs::Histogram h;
  h.observe(0);                  // bucket 0
  h.observe(1);                  // bucket 1
  h.observe(2);                  // bucket 2
  h.observe(3);                  // bucket 2
  h.observe(4);                  // bucket 3
  h.observe(1023);               // bucket 10
  h.observe(1024);               // bucket 11
  h.observe(~std::uint64_t{0});  // bucket 64
  EXPECT_EQ(h.buckets[0], 1u);
  EXPECT_EQ(h.buckets[1], 1u);
  EXPECT_EQ(h.buckets[2], 2u);
  EXPECT_EQ(h.buckets[3], 1u);
  EXPECT_EQ(h.buckets[10], 1u);
  EXPECT_EQ(h.buckets[11], 1u);
  EXPECT_EQ(h.buckets[64], 1u);
  EXPECT_EQ(h.count, 8u);
  EXPECT_EQ(h.sum, 0u + 1 + 2 + 3 + 4 + 1023 + 1024 + ~std::uint64_t{0});
}

TEST(ObsHistogram, UpperBoundsAreInclusiveLogBoundaries) {
  EXPECT_EQ(obs::HistogramSnapshot::upper_bound(0), 0u);
  EXPECT_EQ(obs::HistogramSnapshot::upper_bound(1), 1u);
  EXPECT_EQ(obs::HistogramSnapshot::upper_bound(2), 3u);
  EXPECT_EQ(obs::HistogramSnapshot::upper_bound(10), 1023u);
  EXPECT_EQ(obs::HistogramSnapshot::upper_bound(63), (1ULL << 63) - 1);
  EXPECT_EQ(obs::HistogramSnapshot::upper_bound(64), ~std::uint64_t{0});
}

// ------------------------------------------------------------- registry --

TEST(ObsRegistry, DuplicateRegistrationsAggregateAtSnapshot) {
  // The per-shard pattern: one cell per shard, one exported total.
  std::uint64_t shard0 = 10, shard1 = 32;
  obs::Histogram h0, h1;
  h0.observe(4);
  h1.observe(4);
  h1.observe(100);

  obs::MetricsRegistry registry;
  registry.counter("net.msgs", &shard0);
  registry.counter("net.msgs", &shard1);
  registry.counter_fn("net.msgs", [] { return std::uint64_t{100}; });
  registry.gauge("pool.size", [] { return 1.5; });
  registry.gauge("pool.size", [] { return 2.5; });
  registry.histogram("net.batch", &h0);
  registry.histogram("net.batch", &h1);
  EXPECT_EQ(registry.size(), 7u);

  const obs::MetricsSnapshot snap = registry.snapshot();
  EXPECT_EQ(snap.counter_or("net.msgs"), 142u);
  EXPECT_DOUBLE_EQ(snap.gauge_or("pool.size"), 4.0);
  const obs::HistogramSnapshot& merged = snap.histograms.at("net.batch");
  EXPECT_EQ(merged.count, 3u);
  EXPECT_EQ(merged.sum, 108u);
  EXPECT_EQ(merged.buckets[3], 2u);   // the two 4s
  EXPECT_EQ(merged.buckets[7], 1u);   // the 100

  // Snapshots are live views: bumping a cell shows up next snapshot.
  shard0 += 5;
  EXPECT_EQ(registry.snapshot().counter_or("net.msgs"), 147u);
  EXPECT_EQ(snap.counter_or("absent", 99), 99u);
}

TEST(ObsRegistry, WithoutPrefixStripsEveryInstrumentKind) {
  std::uint64_t c1 = 1, c2 = 2;
  obs::Histogram h1, h2;
  h1.observe(1);
  h2.observe(2);

  obs::MetricsRegistry registry;
  registry.counter("engine.waves", &c1);
  registry.counter("net.msgs", &c2);
  registry.gauge("engine.slot", [] { return 9.0; });
  registry.gauge("net.in_flight", [] { return 3.0; });
  registry.histogram("engine.wave.arrivals", &h1);
  registry.histogram("net.batch.msgs", &h2);

  const obs::MetricsSnapshot stripped =
      registry.snapshot().without_prefix("engine.");
  EXPECT_EQ(stripped.counters.size(), 1u);
  EXPECT_EQ(stripped.gauges.size(), 1u);
  EXPECT_EQ(stripped.histograms.size(), 1u);
  EXPECT_EQ(stripped.counter_or("net.msgs"), 2u);
  EXPECT_DOUBLE_EQ(stripped.gauge_or("net.in_flight"), 3.0);
  EXPECT_TRUE(stripped.histograms.count("net.batch.msgs"));
}

// --------------------------------------------------------------- tracer --

TEST(ObsTracer, CapacityBoundsEventsAndCountsDrops) {
  obs::Tracer tracer(/*capacity=*/4);
  for (int i = 0; i < 10; ++i) {
    tracer.instant("net", "msg", static_cast<double>(i), 0);
  }
  EXPECT_EQ(tracer.size(), 4u);
  EXPECT_EQ(tracer.dropped_events(), 6u);
}

TEST(ObsTracer, ChromeJsonFiltersOneCategory) {
  obs::Tracer tracer;
  tracer.instant("net", "sliding_report", 1.0, 3, {{"from", 3.0}});
  tracer.complete("engine", "wave", 1.0, 2.0, 0, {{"arrivals", 5.0}});
  tracer.counter("metrics", "net.wire.msgs", 2.0, 17.0);

  const std::string all = tracer.to_chrome_json();
  EXPECT_NE(all.find("\"engine\""), std::string::npos);
  EXPECT_NE(all.find("traceEvents"), std::string::npos);

  const std::string filtered = tracer.to_chrome_json("engine");
  EXPECT_EQ(filtered.find("\"engine\""), std::string::npos);
  EXPECT_NE(filtered.find("sliding_report"), std::string::npos);
  EXPECT_NE(filtered.find("net.wire.msgs"), std::string::npos);

  // Virtual-time scale: slot 1 is 1000 trace microseconds.
  EXPECT_NE(all.find("\"ts\":1000"), std::string::npos);
  ASSERT_EQ(tracer.events().size(), 3u);
  EXPECT_DOUBLE_EQ(tracer.events()[0].ts_us, 1000.0);
  EXPECT_DOUBLE_EQ(tracer.events()[1].dur_us, 1000.0);
}

// ------------------------------------------------------------ exporters --

TEST(ObsExport, PrometheusNameSanitization) {
  EXPECT_EQ(obs::prometheus_name("net.wire.msgs"), "dds_net_wire_msgs");
  EXPECT_EQ(obs::prometheus_name("net.shard0.bytes"), "dds_net_shard0_bytes");
}

TEST(ObsExport, PopulatedSnapshotRoundTrips) {
  std::uint64_t msgs = 12345;
  obs::Histogram h;
  for (std::uint64_t v : {0ULL, 1ULL, 7ULL, 900ULL, 900ULL}) h.observe(v);

  obs::MetricsRegistry registry;
  registry.counter("net.wire.msgs", &msgs);
  registry.gauge("substrate.occupancy", [] { return 321.0; });
  registry.histogram("net.flight.us", &h);

  const obs::MetricsSnapshot snap = registry.snapshot();
  EXPECT_EQ(obs::prometheus_round_trip_error(snap), "");

  const auto samples = obs::parse_prometheus(obs::to_prometheus(snap));
  ASSERT_TRUE(samples.has_value());
  bool saw_inf_bucket = false;
  for (const obs::PromSample& s : *samples) {
    if (s.name == "dds_net_flight_us_bucket") {
      auto le = s.labels.find("le");
      ASSERT_NE(le, s.labels.end());
      if (le->second == "+Inf") {
        saw_inf_bucket = true;
        EXPECT_DOUBLE_EQ(s.value, 5.0);  // cumulative: all observations
      }
    }
  }
  EXPECT_TRUE(saw_inf_bucket);

  const std::string json = obs::to_json(snap);
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"net.wire.msgs\""), std::string::npos);
  EXPECT_NE(json.find("12345"), std::string::npos);
}

TEST(ObsExport, ParserRejectsMalformedExposition) {
  EXPECT_FALSE(obs::parse_prometheus("dds_x not_a_number\n").has_value());
  EXPECT_TRUE(obs::parse_prometheus("").has_value());
  EXPECT_TRUE(obs::parse_prometheus("# just a comment\n").has_value());
}

// --------------------------------------------------------------- facade --

TEST(ObsFacade, DisabledBindsAndEmitsNothing) {
  obs::Observability off({});
  EXPECT_FALSE(off.config().enabled());
  EXPECT_EQ(off.registry(), nullptr);
  EXPECT_EQ(off.tracer(), nullptr);
  EXPECT_TRUE(off.snapshot().empty());
  EXPECT_FALSE(off.write_trace("/tmp/should_not_exist_obs_test.json"));
  off.sample_counters(0.0);  // must be a safe no-op

  // A disabled-observability deployment still runs identically.
  core::SystemConfig config{kSites, 4, hash::HashKind::kMurmur2, 1};
  core::InfiniteSystem system(config);
  EXPECT_FALSE(system.observability().config().enabled());
  ListSource source(infinite_stream(kSites, 500, 100, 3));
  system.run(source);
  EXPECT_TRUE(system.observability().snapshot().empty());
}

TEST(ObsFacade, SampleCountersBridgesMetricsIntoTrace) {
  core::SystemConfig config{kSites, 4, hash::HashKind::kMurmur2, 1};
  config.observability.metrics = true;
  config.observability.tracing = true;
  core::InfiniteSystem system(config);
  ListSource source(infinite_stream(kSites, 500, 100, 3));
  system.run(source);
  system.observability().sample_counters(
      static_cast<double>(system.runner().current_slot()));

  const obs::MetricsSnapshot snap = system.observability().snapshot();
  EXPECT_GT(snap.counter_or("net.wire.msgs"), 0u);
  EXPECT_GT(snap.counter_or("engine.arrivals"), 0u);

  // Every counter sample lands in the trace; engine-strategy metrics
  // ride the "engine" category so cross-engine comparisons can drop
  // them with the same single-category filter as the event lanes.
  bool saw_metrics_cat = false, saw_engine_cat = false;
  for (const obs::TraceEvent& e : system.observability().tracer()->events()) {
    if (e.phase != 'C') continue;
    if (e.cat == "metrics") {
      saw_metrics_cat = true;
      EXPECT_NE(e.name.rfind("engine.", 0), 0u) << e.name;
    }
    if (e.cat == "engine") {
      saw_engine_cat = true;
      EXPECT_EQ(e.name.rfind("engine.", 0), 0u) << e.name;
    }
  }
  EXPECT_TRUE(saw_metrics_cat);
  EXPECT_TRUE(saw_engine_cat);
}

// -------------------------------------------- determinism (acceptance) --

/// Everything the cross-engine observability contract covers: the
/// engine-stripped metrics snapshot, the engine-filtered event list, and
/// the rendered Chrome JSON the CI smoke archives.
struct ObsFingerprint {
  obs::MetricsSnapshot snapshot;
  std::vector<obs::TraceEvent> events;
  std::string chrome_json;

  bool operator==(const ObsFingerprint&) const = default;
};

template <typename System>
ObsFingerprint obs_fingerprint_run(System& system,
                                   const std::vector<sim::Arrival>& arrivals) {
  ListSource source(arrivals);
  system.run(source);
  // Quiesced point: bridge the counters into the trace, then capture.
  system.observability().sample_counters(
      static_cast<double>(system.runner().current_slot()));
  ObsFingerprint fp;
  fp.snapshot = system.observability().snapshot().without_prefix("engine.");
  for (const obs::TraceEvent& e : system.observability().tracer()->events()) {
    if (e.cat != "engine") fp.events.push_back(e);
  }
  fp.chrome_json = system.observability().tracer()->to_chrome_json("engine");
  EXPECT_EQ(system.observability().tracer()->dropped_events(), 0u);
  return fp;
}

TEST(ObsDeterminism, SlidingOverLossyWireMatchesSerial) {
  // The acceptance configuration: sliding windows, sharded coordinator,
  // lockstep waves over a latency + jitter + loss + batching wire, with
  // both instruments on. The protocol-level snapshot and trace must be
  // bit-identical to the serial engine's.
  for (const std::uint64_t seed : kSeeds) {
    const auto arrivals =
        slotted_stream(kSites, /*slots=*/200, /*per_slot=*/5, 300, seed * 7);
    auto run_once = [&](std::uint32_t threads) {
      core::SlidingSystemConfig config;
      config.num_sites = kSites;
      config.window = 30;
      config.sample_size = 2;
      config.seed = seed;
      config.num_threads = threads;
      config.num_shards = 2;
      config.network.link.latency = 1.5;
      config.network.link.jitter = 0.75;
      config.network.link.drop_rate = 0.05;
      config.network.link.retransmit = true;
      config.network.batch_interval = 3;
      config.observability.metrics = true;
      config.observability.tracing = true;
      core::SlidingSystem system(config);
      EXPECT_STREQ(system.runner().name(), threads > 1 ? "sharded" : "serial");
      return obs_fingerprint_run(system, arrivals);
    };
    const ObsFingerprint want = run_once(1);
    const ObsFingerprint got = run_once(4);
    EXPECT_GT(want.snapshot.counter_or("net.drops"), 0u)
        << "wire not lossy enough to prove anything";
    EXPECT_GT(want.events.size(), 0u);
    EXPECT_EQ(want, got);
  }
}

TEST(ObsDeterminism, InfiniteOverLatencyJitterWireMatchesSerial) {
  // Second protocol over the wire: infinite-window distinct sampling,
  // slot-per-arrival shape, lockstep waves spanning the horizon.
  for (const std::uint64_t seed : kSeeds) {
    const auto arrivals = infinite_stream(kSites, 4000, 900, seed * 13 + 2);
    auto run_once = [&](std::uint32_t threads) {
      core::SystemConfig config{kSites, 8, hash::HashKind::kMurmur2, seed};
      config.num_threads = threads;
      config.network.link.latency = 2.0;
      config.network.link.jitter = 1.0;
      config.network.link.drop_rate = 0.03;
      config.observability.metrics = true;
      config.observability.tracing = true;
      core::InfiniteSystem system(config);
      EXPECT_STREQ(system.runner().name(), threads > 1 ? "sharded" : "serial");
      return obs_fingerprint_run(system, arrivals);
    };
    const ObsFingerprint want = run_once(1);
    const ObsFingerprint got = run_once(4);
    EXPECT_GT(want.snapshot.counter_or("net.wire.msgs"), 0u);
    EXPECT_EQ(want, got);
  }
}

TEST(ObsDeterminism, SnapshotsExportIdenticallyAcrossEngines) {
  // The rendered artifacts (what CI archives) match too, not just the
  // in-memory views: identical snapshots imply identical expositions.
  const auto arrivals = slotted_stream(kSites, 120, 4, 200, 9);
  auto exposition = [&](std::uint32_t threads) {
    core::SlidingSystemConfig config;
    config.num_sites = kSites;
    config.window = 20;
    config.sample_size = 2;
    config.seed = 11;
    config.num_threads = threads;
    config.network.link.latency = 1.25;
    config.network.link.drop_rate = 0.04;
    config.observability.metrics = true;
    core::SlidingSystem system(config);
    ListSource source(arrivals);
    system.run(source);
    const auto snap =
        system.observability().snapshot().without_prefix("engine.");
    return std::pair{obs::to_prometheus(snap), obs::to_json(snap)};
  };
  const auto [prom_serial, json_serial] = exposition(1);
  const auto [prom_sharded, json_sharded] = exposition(4);
  EXPECT_EQ(prom_serial, prom_sharded);
  EXPECT_EQ(json_serial, json_sharded);
  EXPECT_TRUE(obs::parse_prometheus(prom_serial).has_value());
}

// ------------------------------------- sim::Series miss-path (satellite) --

TEST(SimSeries, StatAtThrowsAndFindStatReturnsNullOnMiss) {
  sim::Series series;
  series.add(1.0, 10.0);
  series.add(1.0, 20.0);

  ASSERT_NE(series.find_stat(1.0), nullptr);
  EXPECT_DOUBLE_EQ(series.find_stat(1.0)->mean(), 15.0);
  EXPECT_DOUBLE_EQ(series.stat_at(1.0).mean(), 15.0);

  EXPECT_EQ(series.find_stat(2.0), nullptr);
  EXPECT_THROW(series.stat_at(2.0), std::out_of_range);
  EXPECT_EQ(sim::Series{}.find_stat(0.0), nullptr);
}

TEST(SimSeries, RaggedBundleRendersDashesInsteadOfThrowing) {
  // Two series sampled at different x sets: to_table must render the
  // union of x values with "-" where a series has no sample.
  sim::SeriesBundle bundle("n");
  bundle.series("a").add(1.0, 5.0);
  bundle.series("a").add(2.0, 7.0);
  bundle.series("b").add(2.0, 9.0);  // no sample at x=1

  std::ostringstream os;
  bundle.to_table(/*with_ci=*/false).print(os, "ragged");
  const std::string rendered = os.str();
  EXPECT_NE(rendered.find("5"), std::string::npos);
  EXPECT_NE(rendered.find("9"), std::string::npos);
  EXPECT_NE(rendered.find("-"), std::string::npos);
}

}  // namespace
}  // namespace dds
