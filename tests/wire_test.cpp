// Wire-format fuzz suite (ISSUE 9 satellite 1).
//
// The load-bearing invariants:
//   * encode/decode round-trip symmetry for every sim::MsgType protocol
//     message, batches of every size the Batcher can flush, all five
//     checkpoint-image kinds, and the handshake/teardown frames.
//   * A malformed frame is rejected WITHOUT touching the target: the
//     decoder returns nullopt and leaves the cursor exactly where it
//     was, for every prefix truncation length, every single-bit flip,
//     wrong magic/version, nonzero reserved bits, unknown kinds,
//     inflated lengths, and trailing junk — mirroring the PR 7
//     CheckpointHardening pattern at the wire layer.
//   * Checksummed-but-semantically-bad payloads (a batch count the
//     payload cannot hold, an out-of-range message type, a corrupt
//     inner checkpoint image) are rejected by the payload validators
//     even when the frame-level checksum is recomputed to match.
#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <vector>

#include "baseline/baseline_checkpoint.h"
#include "baseline/baseline_system.h"
#include "core/checkpoint.h"
#include "core/system.h"
#include "net/wire.h"
#include "sim/sources.h"
#include "util/rng.h"

namespace dds {
namespace {

namespace wire = net::wire;

sim::Message make_message(sim::MsgType type, std::uint64_t salt) {
  util::Xoshiro256StarStar rng(util::derive_seed(777, salt));
  sim::Message msg;
  msg.from = static_cast<sim::NodeId>(rng.next_below(8));
  msg.to = static_cast<sim::NodeId>(8 + rng.next_below(4));
  msg.type = type;
  msg.instance = static_cast<std::uint32_t>(rng.next());
  msg.a = rng.next();
  msg.b = rng.next();
  msg.c = rng.next();
  return msg;
}

bool same_message(const sim::Message& a, const sim::Message& b) {
  return a.from == b.from && a.to == b.to && a.type == b.type &&
         a.instance == b.instance && a.a == b.a && a.b == b.b && a.c == b.c;
}

/// FNV-1a over [begin, end) — the test's independent implementation,
/// used to re-seal frames after deliberate payload tampering so the
/// payload validators (not the checksum) are what rejects them.
std::uint64_t fnv1a(const wire::Buffer& in, std::size_t begin,
                    std::size_t end) {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (std::size_t i = begin; i < end; ++i) {
    h ^= in[i];
    h *= 0x100000001B3ULL;
  }
  return h;
}

void reseal(wire::Buffer& frame) {
  const std::size_t body_end = frame.size() - wire::kChecksumBytes;
  const std::uint64_t sum = fnv1a(frame, 0, body_end);
  for (int i = 0; i < 8; ++i) {
    frame[body_end + i] = static_cast<std::uint8_t>(sum >> (8 * i));
  }
}

/// Decode must fail AND leave the cursor untouched.
void expect_rejected(const wire::Buffer& bytes) {
  std::size_t pos = 0;
  EXPECT_EQ(wire::decode_frame(bytes, pos), std::nullopt);
  EXPECT_EQ(pos, 0u);
}

// --------------------------- round trips ------------------------------

TEST(WireFormat, RoundTripEveryMessageType) {
  for (std::uint8_t t = 0; t < sim::kNumMsgTypes; ++t) {
    const sim::Message msg = make_message(static_cast<sim::MsgType>(t), t);
    wire::Buffer frame;
    wire::encode_message(msg, frame);
    EXPECT_EQ(frame.size(), wire::message_frame_bytes());
    std::size_t pos = 0;
    const auto decoded = wire::decode_frame(frame, pos);
    ASSERT_TRUE(decoded.has_value()) << "type " << int(t);
    EXPECT_EQ(pos, frame.size());
    EXPECT_EQ(decoded->kind, wire::FrameKind::kMessage);
    ASSERT_EQ(decoded->msgs.size(), 1u);
    EXPECT_TRUE(same_message(decoded->msgs.front(), msg));
  }
}

TEST(WireFormat, RoundTripBatchesOfEverySize) {
  for (const std::size_t n : {1u, 2u, 7u, 64u}) {
    std::vector<sim::Message> msgs;
    for (std::size_t i = 0; i < n; ++i) {
      sim::Message msg = make_message(sim::MsgType::kReportElement, i);
      msg.from = 3;  // one (from, to) per batch — the Batcher invariant
      msg.to = 9;
      msgs.push_back(msg);
    }
    wire::Buffer frame;
    wire::encode_batch(msgs, frame);
    EXPECT_EQ(frame.size(), wire::batch_frame_bytes(n));
    std::size_t pos = 0;
    const auto decoded = wire::decode_frame(frame, pos);
    ASSERT_TRUE(decoded.has_value()) << "batch of " << n;
    EXPECT_EQ(decoded->kind, wire::FrameKind::kBatch);
    ASSERT_EQ(decoded->msgs.size(), n);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_TRUE(same_message(decoded->msgs[i], msgs[i]));
    }
  }
}

TEST(WireFormat, BatchEncoderEnforcesRoutingInvariant) {
  wire::Buffer out;
  EXPECT_THROW(wire::encode_batch({}, out), std::invalid_argument);
  sim::Message a = make_message(sim::MsgType::kReportElement, 1);
  sim::Message b = a;
  b.to = a.to + 1;
  const std::vector<sim::Message> mixed{a, b};
  EXPECT_THROW(wire::encode_batch(mixed, out), std::invalid_argument);
  EXPECT_TRUE(out.empty());  // a refused encode appends nothing
}

TEST(WireFormat, RoundTripHandshakeAndFin) {
  const wire::Hello hello{4, 12, 3, 0xDEADBEEFCAFEF00DULL};
  wire::Buffer frame;
  wire::encode_hello(hello, frame);
  std::size_t pos = 0;
  auto decoded = wire::decode_frame(frame, pos);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->kind, wire::FrameKind::kHello);
  EXPECT_EQ(decoded->hello, hello);

  frame.clear();
  wire::encode_welcome(hello, frame);
  pos = 0;
  decoded = wire::decode_frame(frame, pos);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->kind, wire::FrameKind::kWelcome);
  EXPECT_EQ(decoded->hello, hello);

  const wire::Fin fin{7, 123456789ULL};
  frame.clear();
  wire::encode_fin(fin, frame);
  pos = 0;
  decoded = wire::decode_frame(frame, pos);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->kind, wire::FrameKind::kFin);
  EXPECT_EQ(decoded->fin, fin);
}

/// One real image per checkpoint kind, produced by the actual systems.
std::vector<core::CheckpointImage> all_image_kinds() {
  util::Xoshiro256StarStar rng(99);
  auto feed_random = [&rng](auto& system, sim::Slot t) {
    std::vector<std::pair<sim::NodeId, stream::Element>> xs;
    for (int i = 0; i < 4; ++i) {
      xs.emplace_back(static_cast<sim::NodeId>(rng.next_below(3)),
                      1 + rng.next_below(200));
    }
    sim::SlotSource src(t, xs);
    system.run(src);
  };

  core::SystemConfig config;
  config.num_sites = 3;
  config.sample_size = 4;
  core::InfiniteSystem infinite(config);
  core::SlidingSystem sliding([] {
    core::SlidingSystemConfig c;
    c.num_sites = 3;
    c.window = 20;
    c.sample_size = 2;
    return c;
  }());
  core::SlidingSystemConfig bcfg;
  bcfg.num_sites = 3;
  bcfg.window = 20;
  bcfg.sample_size = 2;
  baseline::FullSyncSlidingSystem fullsync(bcfg);
  baseline::BottomSSlidingSystem bottoms(bcfg);
  for (sim::Slot t = 0; t < 30; ++t) {
    feed_random(infinite, t);
    feed_random(sliding, t);
    feed_random(fullsync, t);
    feed_random(bottoms, t);
  }
  return {
      core::checkpoint(infinite.coordinator()),
      core::checkpoint(sliding.coordinator()),
      core::checkpoint_candidates(
          {{1, 100, 10}, {2, 50, 12}, {3, 75, 9}}),
      baseline::checkpoint(fullsync.coordinator()),
      baseline::checkpoint(bottoms.coordinator()),
  };
}

TEST(WireFormat, RoundTripEveryImageKind) {
  for (const auto& image : all_image_kinds()) {
    ASSERT_TRUE(core::verify_checkpoint_image(image));
    wire::Buffer frame;
    wire::encode_image(image, frame);
    std::size_t pos = 0;
    const auto decoded = wire::decode_frame(frame, pos);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->kind, wire::FrameKind::kImage);
    EXPECT_EQ(decoded->image, image);
    EXPECT_EQ(pos, frame.size());
  }
}

TEST(WireFormat, ImageEncoderRefusesCorruptImage) {
  auto image = all_image_kinds().front();
  image[image.size() / 2] ^= 0x10;
  wire::Buffer out;
  EXPECT_THROW(wire::encode_image(image, out), std::invalid_argument);
  EXPECT_TRUE(out.empty());
}

// ------------------------------ fuzzing -------------------------------

/// One representative good frame per kind.
std::vector<wire::Buffer> good_frames() {
  std::vector<wire::Buffer> frames;
  {
    wire::Buffer f;
    wire::encode_message(make_message(sim::MsgType::kThresholdReply, 11), f);
    frames.push_back(std::move(f));
  }
  {
    std::vector<sim::Message> msgs;
    for (std::size_t i = 0; i < 5; ++i) {
      sim::Message msg = make_message(sim::MsgType::kReportElement, 20 + i);
      msg.from = 1;
      msg.to = 8;
      msgs.push_back(msg);
    }
    wire::Buffer f;
    wire::encode_batch(msgs, f);
    frames.push_back(std::move(f));
  }
  {
    wire::Buffer f;
    wire::encode_image(core::checkpoint_candidates({{5, 9, 2}, {6, 3, 4}}),
                       f);
    frames.push_back(std::move(f));
  }
  {
    wire::Buffer f;
    wire::encode_hello(wire::Hello{0, 4, 1, 42}, f);
    frames.push_back(std::move(f));
  }
  {
    wire::Buffer f;
    wire::encode_welcome(wire::Hello{4, 4, 1, 42}, f);
    frames.push_back(std::move(f));
  }
  {
    wire::Buffer f;
    wire::encode_fin(wire::Fin{2, 999}, f);
    frames.push_back(std::move(f));
  }
  return frames;
}

TEST(WireFuzz, EveryTruncationRejected) {
  for (const auto& frame : good_frames()) {
    for (std::size_t len = 0; len < frame.size(); ++len) {
      const wire::Buffer prefix(frame.begin(),
                                frame.begin() + static_cast<long>(len));
      expect_rejected(prefix);
    }
  }
}

TEST(WireFuzz, EverySingleBitFlipRejected) {
  // The trailing checksum covers header and payload, so no single-bit
  // flip anywhere in the frame may survive decoding.
  for (const auto& frame : good_frames()) {
    for (std::size_t byte = 0; byte < frame.size(); ++byte) {
      for (int bit = 0; bit < 8; ++bit) {
        wire::Buffer mutated = frame;
        mutated[byte] ^= static_cast<std::uint8_t>(1u << bit);
        expect_rejected(mutated);
      }
    }
  }
}

TEST(WireFuzz, WrongMagicVersionReservedAndKindRejected) {
  for (const auto& frame : good_frames()) {
    wire::Buffer wrong_magic = frame;
    wrong_magic[0] ^= 0xFF;
    reseal(wrong_magic);  // even with a matching checksum
    expect_rejected(wrong_magic);

    wire::Buffer wrong_version = frame;
    wrong_version[4] = wire::kVersion + 1;
    reseal(wrong_version);
    expect_rejected(wrong_version);

    wire::Buffer reserved_set = frame;
    reserved_set[6] = 0x01;
    reseal(reserved_set);
    expect_rejected(reserved_set);

    wire::Buffer bad_kind = frame;
    bad_kind[5] = 0x7F;  // no such FrameKind
    reseal(bad_kind);
    expect_rejected(bad_kind);

    wire::Buffer zero_kind = frame;
    zero_kind[5] = 0;
    reseal(zero_kind);
    expect_rejected(zero_kind);
  }
}

TEST(WireFuzz, TrailingJunkIsNotPartOfTheFrame) {
  // Frames are self-delimiting: junk after a valid frame must neither
  // break the frame nor be consumed with it — and decoding the junk
  // itself must fail cleanly, cursor untouched.
  for (const auto& frame : good_frames()) {
    wire::Buffer with_junk = frame;
    with_junk.insert(with_junk.end(), {0xDE, 0xAD, 0xBE, 0xEF});
    std::size_t pos = 0;
    const auto decoded = wire::decode_frame(with_junk, pos);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(pos, frame.size());
    const std::size_t junk_start = pos;
    EXPECT_EQ(wire::decode_frame(with_junk, pos), std::nullopt);
    EXPECT_EQ(pos, junk_start);
  }
}

TEST(WireFuzz, ResealedSemanticDamageStillRejected) {
  // Damage the payload, fix the checksum: the payload validators must
  // reject on their own.
  {
    // Batch count inflated beyond what the payload can hold — the
    // decoder must refuse BEFORE trusting the count for a reserve.
    std::vector<sim::Message> msgs(3, make_message(sim::MsgType::kReportElement, 1));
    wire::Buffer frame;
    wire::encode_batch(msgs, frame);
    wire::Buffer inflated = frame;
    inflated[wire::kHeaderBytes + 8] = 0xFF;  // count field, low byte
    inflated[wire::kHeaderBytes + 9] = 0xFF;
    reseal(inflated);
    expect_rejected(inflated);
  }
  {
    // Message type byte outside the MsgType enum.
    wire::Buffer frame;
    wire::encode_message(make_message(sim::MsgType::kReportElement, 2), frame);
    wire::Buffer bad_type = frame;
    bad_type[wire::kHeaderBytes + 8] = sim::kNumMsgTypes;  // type byte
    reseal(bad_type);
    expect_rejected(bad_type);
  }
  {
    // Inner checkpoint image damaged, outer frame re-sealed: the
    // image's own integrity gate still rejects.
    wire::Buffer frame;
    wire::encode_image(core::checkpoint_candidates({{1, 2, 3}}), frame);
    wire::Buffer bad_image = frame;
    bad_image[wire::kHeaderBytes + 10] ^= 0x04;
    reseal(bad_image);
    expect_rejected(bad_image);
  }
  {
    // Batch whose declared count is zero.
    std::vector<sim::Message> msgs(1, make_message(sim::MsgType::kReportElement, 3));
    wire::Buffer frame;
    wire::encode_batch(msgs, frame);
    wire::Buffer zero_count = frame;
    for (int i = 0; i < 4; ++i) zero_count[wire::kHeaderBytes + 8 + i] = 0;
    reseal(zero_count);
    expect_rejected(zero_count);
  }
}

TEST(WireFuzz, IncompletePrefixClassifiesWaitVsCorrupt) {
  const auto frames = good_frames();
  for (const auto& frame : frames) {
    // Every proper prefix of a good frame: "wait for more bytes".
    for (std::size_t len = 0; len < frame.size(); ++len) {
      const wire::Buffer prefix(frame.begin(),
                                frame.begin() + static_cast<long>(len));
      EXPECT_TRUE(wire::incomplete_prefix(prefix, 0)) << "len " << len;
    }
    // A complete frame is not "incomplete".
    EXPECT_FALSE(wire::incomplete_prefix(frame, 0));
    // Corrupt leading bytes: not a prefix of anything ours.
    wire::Buffer wrong = frame;
    wrong[0] ^= 0xFF;
    EXPECT_FALSE(wire::incomplete_prefix(wrong, 0));
    wire::Buffer bad_version(frame.begin(), frame.begin() + 5);
    bad_version[4] = wire::kVersion + 7;
    EXPECT_FALSE(wire::incomplete_prefix(bad_version, 0));
  }
}

TEST(WireFuzz, BackToBackFramesDecodeInSequence) {
  // The TCP stream shape: many frames glued together decode one by one
  // with the cursor landing exactly on each boundary.
  const auto frames = good_frames();
  wire::Buffer stream;
  for (const auto& frame : frames) {
    stream.insert(stream.end(), frame.begin(), frame.end());
  }
  std::size_t pos = 0;
  for (std::size_t i = 0; i < frames.size(); ++i) {
    const auto decoded = wire::decode_frame(stream, pos);
    ASSERT_TRUE(decoded.has_value()) << "frame " << i;
  }
  EXPECT_EQ(pos, stream.size());
}

}  // namespace
}  // namespace dds
