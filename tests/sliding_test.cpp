// Tests for the sliding-window protocol (Algorithms 3 & 4): exactness in
// the single-site case, validity + agreement-rate in the distributed
// case, Lemma 10's space behaviour, the full-sync baseline's exactness,
// and s > 1 multi-instance operation.
#include <gtest/gtest.h>

#include <map>
#include <optional>
#include <unordered_map>
#include <vector>

#include "baseline/baseline_system.h"
#include "core/system.h"
#include "stream/generators.h"
#include "util/rng.h"
#include "util/stats.h"

namespace dds::core {
namespace {

using stream::Element;

/// Brute-force window oracle: remembers every arrival and answers
/// "minimum-hash in-window element" queries by full scan.
class WindowOracle {
 public:
  WindowOracle(sim::Slot window, hash::HashFunction h)
      : window_(window), hash_(std::move(h)) {}

  void arrive(Element e, sim::Slot t) { last_arrival_[e] = t; }

  /// Element in window at `now` iff its latest arrival slot T satisfies
  /// T + w > now (matching the protocol's expiry convention).
  std::optional<std::pair<Element, std::uint64_t>> min_hash(
      sim::Slot now) const {
    std::optional<std::pair<Element, std::uint64_t>> best;
    for (const auto& [e, t] : last_arrival_) {
      if (t + window_ <= now) continue;
      const std::uint64_t hv = hash_(e);
      if (!best || hv < best->second) best = {{e, hv}};
    }
    return best;
  }

  /// Number of distinct in-window elements.
  std::size_t distinct_in_window(sim::Slot now) const {
    std::size_t n = 0;
    for (const auto& [e, t] : last_arrival_) n += (t + window_ > now) ? 1 : 0;
    return n;
  }

 private:
  sim::Slot window_;
  hash::HashFunction hash_;
  std::unordered_map<Element, sim::Slot> last_arrival_;
};

/// Single-slot arrival source (drive the runner slot by slot so the
/// coordinator can be queried between slots).
class SlotSource final : public sim::ArrivalSource {
 public:
  SlotSource(sim::Slot slot, std::vector<std::pair<sim::NodeId, Element>> xs)
      : slot_(slot), xs_(std::move(xs)) {}
  std::optional<sim::Arrival> next() override {
    if (pos_ >= xs_.size()) return std::nullopt;
    const auto& [site, e] = xs_[pos_++];
    return sim::Arrival{slot_, site, e};
  }

 private:
  sim::Slot slot_;
  std::vector<std::pair<sim::NodeId, Element>> xs_;
  std::size_t pos_ = 0;
};

// --------------------------------------------------- single-site exact --

struct SingleSiteParams {
  sim::Slot window;
  std::uint64_t domain;
  std::uint64_t seed;
  int slots;
  int max_per_slot;
};

class SlidingSingleSite : public ::testing::TestWithParam<SingleSiteParams> {};

TEST_P(SlidingSingleSite, ExactAtEverySlot) {
  const auto p = GetParam();
  SlidingSystemConfig config;
  config.num_sites = 1;
  config.window = p.window;
  config.sample_size = 1;
  config.seed = p.seed;
  SlidingSystem system(config);
  WindowOracle oracle(p.window, system.family().at(0));
  util::Xoshiro256StarStar rng(p.seed + 99);

  for (sim::Slot t = 0; t < p.slots; ++t) {
    std::vector<std::pair<sim::NodeId, Element>> xs;
    const auto n = rng.next_below(p.max_per_slot + 1);
    for (std::uint64_t i = 0; i < n; ++i) {
      const Element e = 1 + rng.next_below(p.domain);
      xs.emplace_back(0, e);
      oracle.arrive(e, t);
    }
    if (xs.empty()) {
      system.runner().advance_to_slot(t);
    } else {
      SlotSource src(t, xs);
      system.run(src);
    }
    const auto got = system.coordinator().copy(0).sample(t);
    const auto want = oracle.min_hash(t);
    ASSERT_EQ(got.has_value(), want.has_value()) << "slot " << t;
    if (got) {
      EXPECT_EQ(got->element, want->first) << "slot " << t;
      EXPECT_EQ(got->hash, want->second) << "slot " << t;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SlidingSingleSite,
    ::testing::Values(SingleSiteParams{5, 20, 1, 300, 3},
                      SingleSiteParams{1, 10, 2, 200, 2},   // window of one
                      SingleSiteParams{50, 100, 3, 400, 4},
                      SingleSiteParams{10, 3, 4, 300, 3},   // heavy repeats
                      SingleSiteParams{20, 1, 5, 100, 2})); // single element

// ------------------------------------------------- distributed checks --

struct MultiSiteParams {
  std::uint32_t sites;
  sim::Slot window;
  std::uint64_t domain;
  std::uint64_t seed;
  int slots;
  int per_slot;
};

class SlidingMultiSite : public ::testing::TestWithParam<MultiSiteParams> {};

TEST_P(SlidingMultiSite, SamplesAlwaysValidAndMostlyMinimal) {
  const auto p = GetParam();
  SlidingSystemConfig config;
  config.num_sites = p.sites;
  config.window = p.window;
  config.seed = p.seed;
  SlidingSystem system(config);
  WindowOracle oracle(p.window, system.family().at(0));
  // Track every element's latest arrival anywhere, plus per-element
  // validity horizon, to check the sample is a genuine window member.
  util::Xoshiro256StarStar rng(p.seed + 7);

  int checked = 0, agree = 0;
  for (sim::Slot t = 0; t < p.slots; ++t) {
    std::vector<std::pair<sim::NodeId, Element>> xs;
    for (int i = 0; i < p.per_slot; ++i) {
      const Element e = 1 + rng.next_below(p.domain);
      xs.emplace_back(static_cast<sim::NodeId>(rng.next_below(p.sites)), e);
      oracle.arrive(e, t);
    }
    SlotSource src(t, xs);
    system.run(src);

    const auto got = system.coordinator().copy(0).sample(t);
    const auto want = oracle.min_hash(t);
    if (want) {
      // Window non-empty: the protocol must hold SOME valid element.
      ASSERT_TRUE(got.has_value()) << "slot " << t;
      // Validity: the sample is a real in-window element, correct hash,
      // and the claimed expiry is never beyond the true one.
      EXPECT_EQ(got->hash, system.family().at(0)(got->element));
      EXPECT_GE(got->hash, want->second);  // cannot beat the true minimum
      ++checked;
      agree += (got->element == want->first) ? 1 : 0;
    } else if (got) {
      ADD_FAILURE() << "sample held for empty window at slot " << t;
    }
  }
  ASSERT_GT(checked, p.slots / 2);
  // The lazy protocol is exact except transiently after expiries; on
  // these workloads agreement is empirically ~99%. Require 90%.
  EXPECT_GT(static_cast<double>(agree) / checked, 0.90)
      << "agree " << agree << "/" << checked;
}

TEST_P(SlidingMultiSite, FullSyncBaselineIsExactEverywhere) {
  const auto p = GetParam();
  SlidingSystemConfig config;
  config.num_sites = p.sites;
  config.window = p.window;
  config.seed = p.seed;
  baseline::FullSyncSlidingSystem system(config);
  hash::HashFunction h =
      hash::HashFamily(config.hash_kind, util::derive_seed(config.seed, 0xC7))
          .at(0);
  WindowOracle oracle(p.window, h);
  util::Xoshiro256StarStar rng(p.seed + 7);

  for (sim::Slot t = 0; t < p.slots; ++t) {
    std::vector<std::pair<sim::NodeId, Element>> xs;
    for (int i = 0; i < p.per_slot; ++i) {
      const Element e = 1 + rng.next_below(p.domain);
      xs.emplace_back(static_cast<sim::NodeId>(rng.next_below(p.sites)), e);
      oracle.arrive(e, t);
    }
    SlotSource src(t, xs);
    system.run(src);

    const auto got = system.coordinator().sample(t);
    const auto want = oracle.min_hash(t);
    ASSERT_EQ(got.has_value(), want.has_value()) << "slot " << t;
    if (got) {
      EXPECT_EQ(got->element, want->first) << "slot " << t;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SlidingMultiSite,
    ::testing::Values(MultiSiteParams{5, 10, 50, 11, 300, 5},
                      MultiSiteParams{10, 100, 500, 12, 400, 5},
                      MultiSiteParams{3, 25, 20, 13, 300, 4},
                      MultiSiteParams{20, 50, 1000, 14, 300, 8}));

// ----------------------------------------------------------- memory ----

TEST(SlidingMemory, PerSiteStateIsLogarithmicInWindowDistinct) {
  // Lemma 10: E[|T_i|] <= H_{M_i}. Feed one site a full window of
  // distinct elements and average the steady-state size.
  constexpr sim::Slot kWindow = 512;
  SlidingSystemConfig config;
  config.num_sites = 1;
  config.window = kWindow;
  config.seed = 77;
  SlidingSystem system(config);
  util::RunningStat sizes;
  util::Xoshiro256StarStar rng(1234);
  Element next_e = 1;
  for (sim::Slot t = 0; t < 3000; ++t) {
    SlotSource src(t, {{0, next_e++}});  // all distinct, 1 per slot
    system.run(src);
    if (t > kWindow) sizes.add(static_cast<double>(system.site(0).state_size()));
  }
  const double h_m = util::harmonic(kWindow);  // ~ 6.8
  EXPECT_LT(sizes.mean(), 2.0 * h_m);
  EXPECT_GT(sizes.mean(), 0.4 * h_m);
  (void)rng;
}

TEST(SlidingMemory, MemoryGrowsLogarithmicallyWithWindow) {
  auto steady_mean = [](sim::Slot window) {
    SlidingSystemConfig config;
    config.num_sites = 1;
    config.window = window;
    config.seed = 78;
    SlidingSystem system(config);
    util::RunningStat sizes;
    Element next_e = 1;
    for (sim::Slot t = 0; t < 6 * window; ++t) {
      SlotSource src(t, {{0, next_e++}});
      system.run(src);
      if (t > window) {
        sizes.add(static_cast<double>(system.site(0).state_size()));
      }
    }
    return sizes.mean();
  };
  const double m64 = steady_mean(64);
  const double m512 = steady_mean(512);
  // H_512 / H_64 ~ 1.44: sub-linear growth (x8 window, < x2 memory).
  EXPECT_LT(m512, 2.2 * m64);
  EXPECT_GT(m512, m64 * 0.9);
}

// ----------------------------------------------------- multi-instance --

TEST(MultiSliding, CopiesSampleIndependently) {
  SlidingSystemConfig config;
  config.num_sites = 4;
  config.window = 50;
  config.sample_size = 8;
  config.seed = 99;
  SlidingSystem system(config);
  util::Xoshiro256StarStar rng(55);
  for (sim::Slot t = 0; t < 200; ++t) {
    std::vector<std::pair<sim::NodeId, Element>> xs;
    for (int i = 0; i < 5; ++i) {
      xs.emplace_back(static_cast<sim::NodeId>(rng.next_below(4)),
                      1 + rng.next_below(100));
    }
    SlotSource src(t, xs);
    system.run(src);
  }
  const auto sample = system.coordinator().sample(199);
  ASSERT_EQ(sample.size(), 8u);  // all copies hold something
  // Copies use independent hash functions; they should not all agree.
  std::unordered_map<Element, int> counts;
  for (Element e : sample) ++counts[e];
  EXPECT_GT(counts.size(), 1u);
}

TEST(MultiSliding, PerCopyValidity) {
  SlidingSystemConfig config;
  config.num_sites = 3;
  config.window = 30;
  config.sample_size = 4;
  config.seed = 101;
  SlidingSystem system(config);
  std::vector<WindowOracle> oracles;
  for (std::size_t j = 0; j < 4; ++j) {
    oracles.emplace_back(config.window, system.family().at(j));
  }
  util::Xoshiro256StarStar rng(66);
  int checked = 0, agree = 0;
  for (sim::Slot t = 0; t < 300; ++t) {
    std::vector<std::pair<sim::NodeId, Element>> xs;
    for (int i = 0; i < 3; ++i) {
      const Element e = 1 + rng.next_below(40);
      xs.emplace_back(static_cast<sim::NodeId>(rng.next_below(3)), e);
      for (auto& o : oracles) o.arrive(e, t);
    }
    SlotSource src(t, xs);
    system.run(src);
    for (std::size_t j = 0; j < 4; ++j) {
      const auto got = system.coordinator().copy(j).sample(t);
      const auto want = oracles[j].min_hash(t);
      ASSERT_EQ(got.has_value(), want.has_value());
      if (got) {
        ++checked;
        agree += (got->element == want->first) ? 1 : 0;
        EXPECT_GE(got->hash, want->second);
      }
    }
  }
  EXPECT_GT(static_cast<double>(agree) / checked, 0.90);
}

// -------------------------------------------------------- edge cases ---

TEST(SlidingEdge, EmptyWindowAfterEverythingExpires) {
  SlidingSystemConfig config;
  config.num_sites = 2;
  config.window = 5;
  config.seed = 31;
  SlidingSystem system(config);
  SlotSource src(0, {{0, 42}, {1, 43}});
  system.run(src);
  EXPECT_TRUE(system.coordinator().copy(0).sample(0).has_value());
  system.runner().advance_to_slot(10);  // window long gone
  EXPECT_FALSE(system.coordinator().copy(0).sample(10).has_value());
  EXPECT_EQ(system.total_site_state(), 0u);
}

TEST(SlidingEdge, SingleElementRefreshKeepsItAlive) {
  SlidingSystemConfig config;
  config.num_sites = 1;
  config.window = 4;
  config.seed = 32;
  SlidingSystem system(config);
  for (sim::Slot t = 0; t < 30; ++t) {
    SlotSource src(t, {{0, 7}});  // same element every slot
    system.run(src);
    const auto got = system.coordinator().copy(0).sample(t);
    ASSERT_TRUE(got.has_value()) << "slot " << t;
    EXPECT_EQ(got->element, 7u);
    // The stored expiry reflects the last sync, not necessarily the
    // latest refresh — but it is always in the future (sample valid).
    EXPECT_GT(got->expiry, t);
    EXPECT_LE(got->expiry, t + 4);
  }
  // Per-site memory stays at exactly 1 tuple.
  EXPECT_EQ(system.site(0).state_size(), 1u);
}

TEST(SlidingEdge, MessagesDecreaseWithWindowSize) {
  // Figure 5.8's shape: larger windows => fewer messages (samples change
  // less often).
  auto messages_for = [](sim::Slot window) {
    SlidingSystemConfig config;
    config.num_sites = 5;
    config.window = window;
    config.seed = 33;
    SlidingSystem system(config);
    util::Xoshiro256StarStar rng(44);
    for (sim::Slot t = 0; t < 600; ++t) {
      std::vector<std::pair<sim::NodeId, Element>> xs;
      for (int i = 0; i < 5; ++i) {
        xs.emplace_back(static_cast<sim::NodeId>(rng.next_below(5)),
                        1 + rng.next_below(100000));
      }
      SlotSource src(t, xs);
      system.run(src);
    }
    return system.bus().counters().total;
  };
  EXPECT_GT(messages_for(4), messages_for(256));
}

}  // namespace
}  // namespace dds::core
