// Ack-bit reliability property tests (ISSUE 9 satellite 2).
//
// net::Connection is pure — no sockets, no real clock — so a scripted
// adversarial pipe can drop, reorder, and duplicate packets
// deterministically and the test can assert the one property the
// differential harness depends on: every payload queued on one side is
// delivered on the other side EXACTLY ONCE and IN ORDER, for every
// seed and loss rate, in both directions at once.
#include <gtest/gtest.h>

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "net/conn.h"
#include "net/wire.h"
#include "util/rng.h"

namespace dds {
namespace {

using net::ConnConfig;
using net::Connection;
using net::OutPacket;
namespace wire = net::wire;

/// Payload i is a small message frame whose body encodes i, so the
/// receiver can verify both identity and order.
wire::Buffer payload_for(std::uint64_t i) {
  sim::Message msg;
  msg.from = 0;
  msg.to = 1;
  msg.type = sim::MsgType::kReportElement;
  msg.instance = static_cast<std::uint32_t>(i >> 32);
  msg.a = i;
  msg.b = ~i;
  msg.c = i * 3;
  wire::Buffer out;
  wire::encode_message(msg, out);
  return out;
}

std::uint64_t index_of(const wire::Buffer& payload) {
  std::size_t pos = 0;
  const auto frame = wire::decode_frame(payload, pos);
  if (!frame || frame->msgs.size() != 1) {
    ADD_FAILURE() << "delivered payload is not a valid message frame";
    return ~0ULL;
  }
  return frame->msgs.front().a;
}

/// An adversarial wire: each shipped packet is dropped with probability
/// `drop`, duplicated with probability `dup`, and delayed by a random
/// latency in [min_delay, max_delay] — unequal latencies reorder
/// naturally. Deterministic given the seed.
class LossyPipe {
 public:
  /// `jitter` widens the latency to [0.001, 0.001 + jitter] — unequal
  /// latencies reorder; 0 gives a FIFO pipe.
  LossyPipe(std::uint64_t seed, double drop, double dup, double jitter = 0.049)
      : rng_(seed), drop_(drop), dup_(dup), jitter_(jitter) {}

  void ship(const wire::Buffer& bytes, double now) {
    if (chance(drop_)) return;
    enqueue(bytes, now);
    if (chance(dup_)) enqueue(bytes, now);
  }

  /// Pops every packet whose delivery time has arrived.
  std::vector<wire::Buffer> due(double now) {
    std::vector<wire::Buffer> out;
    for (auto it = queue_.begin(); it != queue_.end();) {
      if (it->at <= now) {
        out.push_back(std::move(it->bytes));
        it = queue_.erase(it);
      } else {
        ++it;
      }
    }
    return out;
  }

  bool empty() const { return queue_.empty(); }

 private:
  struct Parcel {
    double at = 0.0;
    wire::Buffer bytes;
  };

  bool chance(double p) {
    return p > 0.0 &&
           static_cast<double>(rng_.next()) / 1.8446744073709552e19 < p;
  }

  void enqueue(const wire::Buffer& bytes, double now) {
    const double latency =
        0.001 + jitter_ * (static_cast<double>(rng_.next()) /
                           1.8446744073709552e19);
    queue_.push_back(Parcel{now + latency, bytes});
  }

  util::Xoshiro256StarStar rng_;
  double drop_;
  double dup_;
  double jitter_;
  std::vector<Parcel> queue_;
};

struct Endpoint {
  Connection conn;
  std::vector<std::uint64_t> received;
  std::uint64_t sent = 0;

  Endpoint(bool initiator, std::uint32_t id, std::uint64_t cookie)
      : conn(initiator, wire::Hello{id, 2, 1, cookie}, make_config()) {}

  static ConnConfig make_config() {
    // rto must exceed the pipe's worst round trip (2 x 0.05s latency)
    // or a lossless run would retransmit spuriously.
    ConnConfig c;
    c.rto = 0.2;
    c.handshake_rto = 0.02;
    return c;
  }
};

/// Runs both directions over the lossy pipe until everything queued has
/// been delivered and both connections are idle (or the deadline
/// trips, which fails the test).
void run_exchange(std::uint64_t seed, double drop, double dup,
                  std::uint64_t count) {
  Endpoint a(/*initiator=*/true, 0, util::derive_seed(seed, 1));
  Endpoint b(/*initiator=*/false, 1, util::derive_seed(seed, 2));
  LossyPipe a_to_b(util::derive_seed(seed, 3), drop, dup);
  LossyPipe b_to_a(util::derive_seed(seed, 4), drop, dup);
  util::Xoshiro256StarStar script(util::derive_seed(seed, 5));

  double now = 0.0;
  const double step = 0.01;
  const double deadline = 120.0;  // virtual seconds — generous
  std::vector<OutPacket> out;
  std::vector<wire::Buffer> delivered;

  auto pump = [&](Endpoint& self, Endpoint& peer, LossyPipe& inbound,
                  LossyPipe& outbound) {
    (void)peer;
    for (const wire::Buffer& bytes : inbound.due(now)) {
      delivered.clear();
      EXPECT_TRUE(self.conn.on_packet(bytes, now, delivered));
      for (const wire::Buffer& payload : delivered) {
        self.received.push_back(index_of(payload));
      }
    }
    out.clear();
    self.conn.poll(now, out);
    for (const OutPacket& pkt : out) outbound.ship(pkt.bytes, now);
  };

  bool done = false;
  while (!done) {
    // Interleave fresh sends with the pumping so the window stays busy.
    while (a.sent < count && script.next_below(3) != 0) {
      a.conn.send(payload_for(a.sent++));
    }
    while (b.sent < count && script.next_below(3) != 0) {
      b.conn.send(payload_for(b.sent++));
    }
    pump(a, b, b_to_a, a_to_b);
    pump(b, a, a_to_b, b_to_a);
    now += step;
    ASSERT_LT(now, deadline)
        << "drain did not converge: seed=" << seed << " drop=" << drop
        << " a.received=" << a.received.size()
        << " b.received=" << b.received.size();
    done = a.sent == count && b.sent == count && a.conn.idle() &&
           b.conn.idle() && a_to_b.empty() && b_to_a.empty() &&
           a.received.size() >= count && b.received.size() >= count;
  }

  // Exactly once, in order, both directions.
  ASSERT_EQ(a.received.size(), count);
  ASSERT_EQ(b.received.size(), count);
  for (std::uint64_t i = 0; i < count; ++i) {
    EXPECT_EQ(a.received[i], i) << "a out of order at " << i;
    EXPECT_EQ(b.received[i], i) << "b out of order at " << i;
  }
  EXPECT_EQ(a.conn.stats().delivered, count);
  EXPECT_EQ(b.conn.stats().delivered, count);
  EXPECT_EQ(a.conn.stats().rejected, 0u);
  EXPECT_EQ(b.conn.stats().rejected, 0u);
  if (drop > 0.0) {
    // A lossy wire must have exercised the retransmit machinery. (The
    // reordering jitter makes some spurious fast-retransmits legal even
    // at drop = 0 — the FIFO-pipe test below pins the zero-overhead
    // case.)
    EXPECT_GT(a.conn.stats().retransmits + b.conn.stats().retransmits, 0u);
  }
}

class ConnProperty
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, double>> {};

TEST_P(ConnProperty, ExactlyOnceInOrderUnderLossReorderDuplication) {
  const auto [seed, drop] = GetParam();
  // Duplication rides along at the loss rate; delay jitter (built into
  // the pipe) reorders constantly.
  run_exchange(seed, drop, /*dup=*/drop, /*count=*/400);
}

INSTANTIATE_TEST_SUITE_P(
    SeedsByLoss, ConnProperty,
    ::testing::Combine(::testing::Values(11ULL, 22ULL, 33ULL),
                       ::testing::Values(0.0, 0.1, 0.3)),
    [](const auto& info) {
      return "seed" + std::to_string(std::get<0>(info.param)) + "_loss" +
             std::to_string(static_cast<int>(std::get<1>(info.param) * 100));
    });

TEST(Conn, LosslessFifoPipeHasZeroRetransmitOverhead) {
  // On a clean in-order pipe the reliability layer must be free: no
  // timeout retransmits, no spurious fast-retransmits, no duplicates.
  Endpoint a(/*initiator=*/true, 0, 1);
  Endpoint b(/*initiator=*/false, 1, 2);
  LossyPipe a_to_b(3, 0.0, 0.0, /*jitter=*/0.0);
  LossyPipe b_to_a(4, 0.0, 0.0, /*jitter=*/0.0);
  std::vector<OutPacket> out;
  std::vector<wire::Buffer> delivered;
  double now = 0.0;
  const std::uint64_t kCount = 300;
  std::uint64_t sent = 0;
  while (!(sent == kCount && a.conn.idle() && a.received.size() == 0 &&
           b.received.size() == kCount && a_to_b.empty() &&
           b_to_a.empty())) {
    if (sent < kCount) a.conn.send(payload_for(sent++));
    for (auto* side : {&a, &b}) {
      LossyPipe& inbound = side == &a ? b_to_a : a_to_b;
      LossyPipe& outbound = side == &a ? a_to_b : b_to_a;
      for (const wire::Buffer& bytes : inbound.due(now)) {
        delivered.clear();
        ASSERT_TRUE(side->conn.on_packet(bytes, now, delivered));
        for (const wire::Buffer& payload : delivered) {
          side->received.push_back(index_of(payload));
        }
      }
      out.clear();
      side->conn.poll(now, out);
      for (const OutPacket& pkt : out) outbound.ship(pkt.bytes, now);
    }
    now += 0.01;
    ASSERT_LT(now, 60.0) << "lossless drain did not converge";
  }
  EXPECT_EQ(a.conn.stats().retransmits, 0u);
  EXPECT_EQ(b.conn.stats().retransmits, 0u);
  EXPECT_EQ(b.conn.stats().duplicates, 0u);
  EXPECT_EQ(b.conn.stats().held_out_of_order, 0u);
  for (std::uint64_t i = 0; i < kCount; ++i) EXPECT_EQ(b.received[i], i);
}

TEST(Conn, HandshakeEstablishesAndEchoesCookie) {
  Endpoint a(true, 0, 0xC00C1EULL);
  Endpoint b(false, 1, 0xB0BULL);
  std::vector<OutPacket> out;
  std::vector<wire::Buffer> delivered;
  double now = 0.0;
  for (int round = 0; round < 4 && !(a.conn.established() &&
                                     b.conn.established());
       ++round) {
    out.clear();
    a.conn.poll(now, out);
    for (const OutPacket& pkt : out) b.conn.on_packet(pkt.bytes, now, delivered);
    out.clear();
    b.conn.poll(now, out);
    for (const OutPacket& pkt : out) a.conn.on_packet(pkt.bytes, now, delivered);
    now += 0.01;
  }
  EXPECT_TRUE(a.conn.established());
  EXPECT_TRUE(b.conn.established());
  EXPECT_EQ(a.conn.peer().node_id, 1u);
  EXPECT_EQ(b.conn.peer().node_id, 0u);
  EXPECT_TRUE(delivered.empty());  // handshake delivers no payloads
}

TEST(Conn, NackTriggersFastRetransmitBeforeTimeout) {
  // Drop exactly the first data packet; the following ones get through
  // and their ack bits reveal the hole. With nack_gap=3 the resend must
  // happen well before the 10-second timeout.
  ConnConfig config;
  config.rto = 10.0;  // so only the nack path can resend in time
  config.handshake_rto = 0.01;
  Connection a(true, wire::Hello{0, 2, 1, 1}, config);
  Connection b(false, wire::Hello{1, 2, 1, 2}, config);
  std::vector<OutPacket> out;
  std::vector<wire::Buffer> delivered;
  double now = 0.0;

  // Handshake.
  for (int round = 0; round < 4; ++round) {
    out.clear();
    a.poll(now, out);
    for (const OutPacket& pkt : out) b.on_packet(pkt.bytes, now, delivered);
    out.clear();
    b.poll(now, out);
    for (const OutPacket& pkt : out) a.on_packet(pkt.bytes, now, delivered);
    now += 0.01;
  }
  ASSERT_TRUE(a.established() && b.established());

  for (std::uint64_t i = 0; i < 8; ++i) a.send(payload_for(i));
  bool first_dropped = false;
  std::vector<std::uint64_t> received;
  for (int round = 0; round < 50 && received.size() < 8; ++round) {
    out.clear();
    a.poll(now, out);
    for (const OutPacket& pkt : out) {
      if (pkt.data && !pkt.retransmit && !first_dropped) {
        first_dropped = true;  // the adversary eats the first data packet
        continue;
      }
      delivered.clear();
      b.on_packet(pkt.bytes, now, delivered);
      for (const wire::Buffer& payload : delivered) {
        received.push_back(index_of(payload));
      }
    }
    out.clear();
    b.poll(now, out);
    for (const OutPacket& pkt : out) {
      delivered.clear();
      a.on_packet(pkt.bytes, now, delivered);
    }
    now += 0.01;
  }
  ASSERT_EQ(received.size(), 8u);
  for (std::uint64_t i = 0; i < 8; ++i) EXPECT_EQ(received[i], i);
  EXPECT_GE(a.stats().nack_retransmits, 1u);
  EXPECT_LT(now, 1.0);  // far inside the 10s timeout
  EXPECT_GT(b.stats().held_out_of_order, 0u);
}

TEST(Conn, SequenceNumbersSurviveSixteenBitWraparound) {
  // ~70k payloads over an instant lossless pipe crosses the u16 space —
  // delivery must stay exactly-once in-order through the wrap.
  Connection a(true, wire::Hello{0, 2, 1, 1});
  Connection b(false, wire::Hello{1, 2, 1, 2});
  std::vector<OutPacket> out;
  std::vector<wire::Buffer> delivered;
  double now = 0.0;

  const std::uint64_t kCount = 70000;
  std::uint64_t sent = 0;
  std::uint64_t expect = 0;
  while (expect < kCount) {
    while (sent < kCount && sent < expect + 2000) {
      a.send(payload_for(sent++));
    }
    out.clear();
    a.poll(now, out);
    for (const OutPacket& pkt : out) {
      delivered.clear();
      b.on_packet(pkt.bytes, now, delivered);
      for (const wire::Buffer& payload : delivered) {
        ASSERT_EQ(index_of(payload), expect);
        ++expect;
      }
    }
    out.clear();
    b.poll(now, out);
    for (const OutPacket& pkt : out) {
      delivered.clear();
      a.on_packet(pkt.bytes, now, delivered);
    }
    now += 0.001;
  }
  EXPECT_EQ(expect, kCount);
  EXPECT_EQ(b.stats().delivered, kCount);
  EXPECT_EQ(b.stats().duplicates, 0u);
  EXPECT_EQ(a.stats().retransmits, 0u);
  EXPECT_TRUE(a.idle());
}

TEST(Conn, ForeignPacketsAreRejectedNotDelivered) {
  Connection b(false, wire::Hello{1, 2, 1, 2});
  std::vector<wire::Buffer> delivered;
  const wire::Buffer junk{0x00, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07,
                          0x08, 0x09, 0x0A, 0x0B, 0x0C, 0x0D, 0x0E, 0x0F};
  EXPECT_FALSE(b.on_packet(junk, 0.0, delivered));
  const wire::Buffer empty;
  EXPECT_FALSE(b.on_packet(empty, 0.0, delivered));
  EXPECT_TRUE(delivered.empty());
  EXPECT_EQ(b.stats().rejected, 2u);
  EXPECT_EQ(b.stats().delivered, 0u);
}

}  // namespace
}  // namespace dds
