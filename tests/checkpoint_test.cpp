// Tests for coordinator checkpointing and failover (core/checkpoint.h).
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <unordered_set>
#include <vector>

#include "core/checkpoint.h"
#include "sim/bus.h"
#include "sim/sources.h"
#include "core/system.h"
#include "stream/generators.h"
#include "stream/partitioner.h"
#include "util/rng.h"

namespace dds::core {
namespace {

using sim::ListSource;
using stream::Element;

std::vector<sim::Arrival> arrivals_of(const std::vector<Element>& elements,
                                      std::uint32_t sites, sim::Slot base) {
  std::vector<sim::Arrival> out;
  out.reserve(elements.size());
  for (std::size_t i = 0; i < elements.size(); ++i) {
    out.push_back({base + static_cast<sim::Slot>(i),
                   static_cast<sim::NodeId>(i % sites), elements[i]});
  }
  return out;
}

TEST(Checkpoint, RoundTripPreservesState) {
  InfiniteWindowCoordinator original(/*id=*/3, /*sample_size=*/8);
  hash::HashFunction h(hash::HashKind::kMurmur2, 5);
  // Drive it directly with report messages through a bus.
  sim::Bus bus(1);
  InfiniteWindowSite site(0, 1, h);
  InfiniteWindowCoordinator coordinator(1, 8);
  bus.attach(0, &site);
  bus.attach(1, &coordinator);
  for (Element e = 1; e <= 200; ++e) {
    site.on_element(e, 0, bus);
    bus.drain();
  }

  const auto image = checkpoint(coordinator);
  const auto contents = parse_checkpoint(image);
  ASSERT_TRUE(contents.has_value());
  EXPECT_EQ(contents->sample_size, 8u);
  EXPECT_EQ(contents->entries.size(), 8u);
  EXPECT_EQ(contents->threshold, coordinator.threshold());

  auto restored = restore_coordinator(1, image);
  ASSERT_NE(restored, nullptr);
  EXPECT_EQ(restored->threshold(), coordinator.threshold());
  EXPECT_EQ(restored->sample().elements(), coordinator.sample().elements());
}

TEST(Checkpoint, MalformedImagesRejected) {
  InfiniteWindowCoordinator coordinator(1, 4);
  auto image = checkpoint(coordinator);
  // Truncation.
  auto truncated = image;
  truncated.pop_back();
  EXPECT_EQ(parse_checkpoint(truncated), std::nullopt);
  // Bad magic.
  auto bad_magic = image;
  bad_magic[0] ^= 0xFF;
  EXPECT_EQ(parse_checkpoint(bad_magic), std::nullopt);
  // Trailing garbage.
  auto padded = image;
  padded.push_back(0);
  EXPECT_EQ(parse_checkpoint(padded), std::nullopt);
  // Empty.
  EXPECT_EQ(parse_checkpoint({}), std::nullopt);
  EXPECT_EQ(restore_coordinator(1, truncated), nullptr);
}

TEST(Checkpoint, EmptySampleRoundTrips) {
  InfiniteWindowCoordinator coordinator(1, 4);
  const auto image = checkpoint(coordinator);
  auto restored = restore_coordinator(1, image);
  ASSERT_NE(restored, nullptr);
  EXPECT_EQ(restored->sample().size(), 0u);
  EXPECT_EQ(restored->threshold(), hash::kHashMax);
}

TEST(Failover, RestoredCoordinatorIsValidForCheckpointedPrefix) {
  // Feed phase 1, checkpoint, feed phase 2 (lost), fail over. The
  // restored coordinator must hold exactly the bottom-s of phase 1.
  constexpr std::uint32_t kSites = 4;
  constexpr std::size_t kS = 6;
  SystemConfig config{kSites, kS, hash::HashKind::kMurmur2, 17};
  InfiniteSystem system(config);

  std::vector<Element> phase1, phase2;
  for (Element e = 1; e <= 300; ++e) phase1.push_back(e);
  for (Element e = 301; e <= 600; ++e) phase2.push_back(e);

  ListSource p1(arrivals_of(phase1, kSites, 0));
  system.run(p1);
  const auto image = checkpoint(system.coordinator());
  ListSource p2(arrivals_of(phase2, kSites, 1000));
  system.run(p2);

  auto restored = restore_coordinator(99, image);
  ASSERT_NE(restored, nullptr);
  // Oracle over phase 1 only.
  std::set<std::pair<std::uint64_t, Element>> by_hash;
  for (Element e : phase1) by_hash.emplace(system.hash_fn()(e), e);
  std::vector<Element> expected;
  for (const auto& [hv, e] : by_hash) {
    if (expected.size() == kS) break;
    expected.push_back(e);
  }
  std::sort(expected.begin(), expected.end());
  auto got = restored->sample().elements();
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, expected);
}

TEST(Failover, ResyncRecoversElementsSeenAfterCheckpoint) {
  // Full failover drill: checkpoint mid-stream, lose the live
  // coordinator, restore from the image, resync the sites, then replay
  // continued exposure to the full population. The deployment must
  // converge to the exact global bottom-s.
  constexpr std::uint32_t kSites = 4;
  constexpr std::size_t kS = 6;
  const std::uint64_t kSeed = 23;

  // One long-lived bus + sites; we swap coordinators on it.
  sim::Bus bus(kSites);
  hash::HashFunction h(hash::HashKind::kMurmur2,
                       util::derive_seed(kSeed, 0xA5));
  std::vector<std::unique_ptr<InfiniteWindowSite>> sites;
  for (std::uint32_t i = 0; i < kSites; ++i) {
    sites.push_back(std::make_unique<InfiniteWindowSite>(
        i, bus.coordinator_id(), h));
    bus.attach(i, sites.back().get());
  }
  auto live = std::make_unique<InfiniteWindowCoordinator>(
      bus.coordinator_id(), kS);
  bus.attach(bus.coordinator_id(), live.get());
  std::vector<sim::StreamNode*> site_ptrs;
  for (auto& s : sites) site_ptrs.push_back(s.get());
  sim::Runner runner(bus, site_ptrs, /*invoke_slot_begin=*/false);

  std::vector<Element> all;
  for (Element e = 1; e <= 500; ++e) all.push_back(e);

  // Phase 1: first half; checkpoint.
  std::vector<Element> half(all.begin(), all.begin() + 250);
  ListSource p1(arrivals_of(half, kSites, 0));
  runner.run(p1);
  const auto image = checkpoint(*live);

  // Phase 2: second half arrives, then the coordinator dies (its state
  // including phase-2 reports is lost).
  std::vector<Element> rest(all.begin() + 250, all.end());
  ListSource p2(arrivals_of(rest, kSites, 1000));
  runner.run(p2);

  // Failover: restore from image, re-attach, resync the sites.
  auto restored = restore_coordinator(bus.coordinator_id(), image);
  ASSERT_NE(restored, nullptr);
  bus.attach(bus.coordinator_id(), restored.get());
  resync_sites(bus.coordinator_id(), bus);
  EXPECT_EQ(bus.counters().coordinator_to_site -
                bus.counters().site_to_coordinator,
            kSites);  // the resync broadcast

  // Re-exposure: the whole population arrives once more.
  ListSource p3(arrivals_of(all, kSites, 2000));
  runner.run(p3);

  // Exact bottom-s of the full population.
  std::set<std::pair<std::uint64_t, Element>> by_hash;
  for (Element e : all) by_hash.emplace(h(e), e);
  std::vector<Element> expected;
  for (const auto& [hv, e] : by_hash) {
    if (expected.size() == kS) break;
    expected.push_back(e);
  }
  std::sort(expected.begin(), expected.end());
  auto got = restored->sample().elements();
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, expected);
}

TEST(Failover, WithoutResyncPhase2LowHashesStayLost) {
  // Negative control for the resync step: restore WITHOUT resync and
  // re-expose; sites whose thresholds dropped below the restored u
  // filter exactly the elements the restored coordinator is missing —
  // unless those elements re-arrive at a site that never learned a
  // tighter threshold. Using round-robin over one site makes the loss
  // deterministic.
  constexpr std::size_t kS = 4;
  SystemConfig config{1, kS, hash::HashKind::kMurmur2, 29};
  InfiniteSystem system(config);
  std::vector<Element> phase1, phase2;
  for (Element e = 1; e <= 100; ++e) phase1.push_back(e);
  for (Element e = 101; e <= 200; ++e) phase2.push_back(e);

  ListSource p1(arrivals_of(phase1, 1, 0));
  system.run(p1);
  const auto image = checkpoint(system.coordinator());
  ListSource p2(arrivals_of(phase2, 1, 1000));
  system.run(p2);  // site threshold now reflects phase 2

  // Did phase 2 change the sample? Only continue if so (otherwise the
  // control is vacuous for this seed — assert it is not).
  auto restored_only = restore_coordinator(0, image);
  ASSERT_NE(restored_only, nullptr);
  ASSERT_NE(restored_only->sample().elements(),
            system.coordinator().sample().elements())
      << "seed produced no phase-2 sample change; pick another seed";
}

}  // namespace
}  // namespace dds::core
