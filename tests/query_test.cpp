// Tests for the query-time estimators over distinct samples.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/bottom_s_sample.h"
#include "core/system.h"
#include "query/estimators.h"
#include "stream/generators.h"
#include "stream/partitioner.h"
#include "util/stats.h"

namespace dds::query {
namespace {

using stream::Element;

core::BottomSSample filled_sample(std::uint64_t distinct, std::size_t s,
                                  std::uint64_t seed) {
  core::BottomSSample sample(s);
  hash::HashFunction h(hash::HashKind::kMurmur2, seed);
  for (Element e = 1; e <= distinct; ++e) sample.offer(e, h(e));
  return sample;
}

TEST(DistinctEstimate, ExactWhileNotFull) {
  core::BottomSSample sample(100);
  hash::HashFunction h(hash::HashKind::kMurmur2, 1);
  for (Element e = 1; e <= 40; ++e) sample.offer(e, h(e));
  EXPECT_DOUBLE_EQ(estimate_distinct(sample), 40.0);
}

TEST(DistinctEstimate, KmvAccuracyWithinTheory) {
  // Relative error of (s-1)/u_s is ~ 1/sqrt(s-2); average over seeds and
  // require 3 sigma.
  constexpr std::size_t kS = 64;
  constexpr std::uint64_t kD = 20000;
  util::RunningStat rel_err;
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    const auto sample = filled_sample(kD, kS, seed);
    const double est = estimate_distinct(sample);
    rel_err.add((est - static_cast<double>(kD)) / static_cast<double>(kD));
  }
  const double sigma = distinct_relative_error(kS);  // ~ 0.127
  EXPECT_LT(std::abs(rel_err.mean()), sigma);  // near-unbiased
  EXPECT_LT(rel_err.stddev(), 2.0 * sigma);
}

TEST(DistinctEstimate, GrowsWithTrueCardinality) {
  const double e1 = estimate_distinct(filled_sample(1000, 32, 7));
  const double e2 = estimate_distinct(filled_sample(50000, 32, 7));
  EXPECT_GT(e2, 10.0 * e1);
}

TEST(SubsetEstimate, ExactWhileNotFull) {
  core::BottomSSample sample(100);
  hash::HashFunction h(hash::HashKind::kMurmur2, 2);
  for (Element e = 1; e <= 30; ++e) sample.offer(e, h(e));
  const double evens =
      estimate_distinct_where(sample, [](Element e) { return e % 2 == 0; });
  EXPECT_DOUBLE_EQ(evens, 15.0);
}

TEST(SubsetEstimate, RecoversSubpopulationShare) {
  // 25% of the domain satisfies the predicate; the estimator should land
  // near 0.25 * d.
  constexpr std::size_t kS = 128;
  constexpr std::uint64_t kD = 40000;
  util::RunningStat ests;
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const auto sample = filled_sample(kD, kS, seed);
    ests.add(estimate_distinct_where(sample,
                                     [](Element e) { return e % 4 == 0; }));
  }
  EXPECT_NEAR(ests.mean(), 0.25 * kD, 0.25 * kD * 0.25);
}

TEST(FractionEstimate, MatchesPredicateDensity) {
  constexpr std::size_t kS = 256;
  util::RunningStat fracs;
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const auto sample = filled_sample(30000, kS, seed);
    fracs.add(
        estimate_fraction_where(sample, [](Element e) { return e % 10 == 0; }));
  }
  EXPECT_NEAR(fracs.mean(), 0.10, 0.03);
}

TEST(FractionEstimate, EmptySampleIsZero) {
  core::BottomSSample sample(8);
  EXPECT_DOUBLE_EQ(
      estimate_fraction_where(sample, [](Element) { return true; }), 0.0);
  EXPECT_DOUBLE_EQ(estimate_mean(sample, [](Element) { return 99.0; }), 0.0);
}

TEST(MeanEstimate, RecoversAttributeMean) {
  // Attribute value(e) = e % 100: true mean over a large distinct domain
  // is ~ 49.5.
  constexpr std::size_t kS = 256;
  util::RunningStat means;
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const auto sample = filled_sample(30000, kS, seed);
    means.add(estimate_mean(
        sample, [](Element e) { return static_cast<double>(e % 100); }));
  }
  EXPECT_NEAR(means.mean(), 49.5, 5.0);
}

TEST(RelativeError, Monotone) {
  EXPECT_GT(distinct_relative_error(16), distinct_relative_error(256));
  EXPECT_DOUBLE_EQ(distinct_relative_error(2), 1.0);
}

TEST(EndToEnd, EstimateFromDistributedRun) {
  // Run the actual protocol and estimate the distinct count of the
  // stream from the coordinator's sample.
  constexpr std::uint64_t kDomain = 5000;
  core::SystemConfig config{5, 128, hash::HashKind::kMurmur2, 5};
  core::InfiniteSystem system(config);
  stream::UniformStream input(60000, kDomain, 123);
  stream::RandomPartitioner source(input, 5, 124);
  system.run(source);
  // ~ every domain element appears at least once w.h.p. (60000 draws
  // over 5000 ids), so d ~ 5000.
  const double est = estimate_distinct(system.coordinator().sample());
  EXPECT_NEAR(est, static_cast<double>(kDomain), 0.3 * kDomain);
}

}  // namespace
}  // namespace dds::query
