// Loopback differential harness (ISSUE 9 tentpole 3 + satellites 3/4).
//
// The proof obligation of the real-socket runtime: the same seeded
// workload produces IDENTICAL results — samples, estimates, logical
// message counts, and the full logical send trace — whether it runs
// over the zero-delay Bus, the event-driven SimNetwork, real UDP
// datagrams, or real TCP streams. The socket transports buy this with
// their global send-order token queue (socket_transport.h), and this
// suite is what holds them to it, for the infinite-window,
// with-replacement, and exact-sliding protocols.
//
// Also here:
//   * the batched variant (batch_interval > 0): SimNetwork vs UDP vs
//     TCP, plus real-frame accounting against wire::batch_frame_bytes
//   * the drain-at-finish regression: a batch buffered against a far
//     deadline must be delivered by finish(), leaving the transport
//     quiescent() — a slow socket can never strand end-of-stream
//     messages
//   * the multi-process spawn smoke: fork/exec tools/dds_node
//     (coordinator + 2 sites over real sockets), compare its sample
//     with the in-process reference
#include <gtest/gtest.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <csignal>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "baseline/baseline_system.h"
#include "core/infinite_coordinator.h"
#include "core/infinite_site.h"
#include "core/system.h"
#include "net/sim_network.h"
#include "net/socket_transport.h"
#include "net/udp_transport.h"
#include "query/estimators.h"
#include "sim/bus.h"
#include "sim/sources.h"
#include "util/rng.h"

namespace dds {
namespace {

using net::TransportKind;
namespace wire = net::wire;

constexpr std::uint64_t kDomain = 400;
constexpr sim::Slot kSlots = 30;
constexpr int kArrivalsPerSlot = 6;

/// Everything a run exposes that must be transport-invariant.
struct Fingerprint {
  std::string sample;          ///< protocol-specific rendering
  std::uint64_t total = 0;     ///< logical transmissions
  std::uint64_t site_to_coordinator = 0;
  std::uint64_t coordinator_to_site = 0;
  std::uint64_t bytes = 0;     ///< logical (paper-model) bytes
  std::array<std::uint64_t, sim::kNumMsgTypes> by_type{};
  std::uint64_t trace_hash = 0;  ///< FNV over every logical send

  bool operator==(const Fingerprint&) const = default;
};

std::string describe(const Fingerprint& fp) {
  std::ostringstream out;
  out << "total=" << fp.total << " s2c=" << fp.site_to_coordinator
      << " c2s=" << fp.coordinator_to_site << " bytes=" << fp.bytes
      << " trace=" << fp.trace_hash << " sample=[" << fp.sample << "]";
  return out.str();
}

void hash_in(std::uint64_t& h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xFF;
    h *= 0x100000001B3ULL;
  }
}

/// The logical (per-send) counters of any transport kind. The Bus has
/// no batching, so its wire counters ARE its logical counters.
const net::BusCounters& logical_of(net::Transport& bus) {
  if (auto* sim_net = dynamic_cast<net::SimNetwork*>(&bus)) {
    return sim_net->logical_counters();
  }
  if (auto* socket = dynamic_cast<net::SocketTransport*>(&bus)) {
    return socket->logical_counters();
  }
  return bus.counters();
}

/// Runs `System` over the given transport kind with the shared seeded
/// workload; `sample_fn(system, last_slot)` renders the sample.
template <typename System, typename SampleFn>
Fingerprint run_one(TransportKind kind, std::uint64_t seed,
                    sim::Slot batch_interval, SampleFn sample_fn) {
  core::SystemConfig config;
  config.num_sites = 4;
  config.sample_size = 6;
  config.seed = seed;
  config.window = 12;
  config.network.kind = kind;
  config.network.batch_interval = batch_interval;
  System system(config);

  Fingerprint fp;
  fp.trace_hash = 0xCBF29CE484222325ULL;
  system.bus().set_tap([&fp](const sim::Message& msg) {
    hash_in(fp.trace_hash, msg.from);
    hash_in(fp.trace_hash, msg.to);
    hash_in(fp.trace_hash, static_cast<std::uint64_t>(msg.type));
    hash_in(fp.trace_hash, msg.instance);
    hash_in(fp.trace_hash, msg.a);
    hash_in(fp.trace_hash, msg.b);
    hash_in(fp.trace_hash, msg.c);
  });

  util::Xoshiro256StarStar workload(util::derive_seed(seed, 0x50CE7));
  for (sim::Slot t = 0; t < kSlots; ++t) {
    std::vector<std::pair<sim::NodeId, std::uint64_t>> arrivals;
    arrivals.reserve(kArrivalsPerSlot);
    for (int i = 0; i < kArrivalsPerSlot; ++i) {
      arrivals.emplace_back(
          static_cast<sim::NodeId>(workload.next_below(config.num_sites)),
          1 + workload.next_below(kDomain));
    }
    sim::SlotSource source(t, arrivals);
    system.run(source);
  }
  system.bus().finish();
  EXPECT_TRUE(system.bus().quiescent());

  fp.sample = sample_fn(system, kSlots - 1);
  const net::BusCounters& logical = logical_of(system.bus());
  fp.total = logical.total;
  fp.site_to_coordinator = logical.site_to_coordinator;
  fp.coordinator_to_site = logical.coordinator_to_site;
  fp.bytes = logical.bytes;
  fp.by_type = logical.by_type;
  return fp;
}

std::string infinite_sample(core::InfiniteSystem& system, sim::Slot) {
  std::ostringstream out;
  for (const auto& entry : system.sample().entries()) {
    out << entry.element << ":" << entry.hash << " ";
  }
  out << "| d^=" << query::estimate_distinct(system.sample());
  return out.str();
}

std::string wr_sample(core::WithReplacementSystem& system, sim::Slot) {
  std::ostringstream out;
  for (const stream::Element element : system.sample()) {
    out << element << " ";
  }
  return out.str();
}

std::string sliding_sample(baseline::BottomSSlidingSystem& system,
                           sim::Slot now) {
  std::ostringstream out;
  for (const auto& candidate : system.sample(now)) {
    out << candidate.element << ":" << candidate.hash << "@"
        << candidate.expiry << " ";
  }
  return out.str();
}

const std::vector<TransportKind> kAllKinds{
    TransportKind::kBus, TransportKind::kSimNetwork, TransportKind::kUdp,
    TransportKind::kTcp};

const char* kind_name(TransportKind kind) {
  switch (kind) {
    case TransportKind::kBus: return "bus";
    case TransportKind::kSimNetwork: return "simnet";
    case TransportKind::kUdp: return "udp";
    case TransportKind::kTcp: return "tcp";
    default: return "auto";
  }
}

template <typename System, typename SampleFn>
void expect_transport_invariant(std::uint64_t seed, SampleFn sample_fn) {
  const Fingerprint reference =
      run_one<System>(TransportKind::kBus, seed, 0, sample_fn);
  EXPECT_GT(reference.total, 0u);
  for (const TransportKind kind : kAllKinds) {
    if (kind == TransportKind::kBus) continue;
    const Fingerprint fp = run_one<System>(kind, seed, 0, sample_fn);
    EXPECT_EQ(fp, reference)
        << kind_name(kind) << " diverged from bus at seed " << seed
        << "\n  bus:    " << describe(reference)
        << "\n  " << kind_name(kind) << ": " << describe(fp);
  }
}

TEST(SocketDifferential, InfiniteWindowBitMatchesAcrossTransports) {
  for (const std::uint64_t seed : {7ULL, 1234ULL}) {
    expect_transport_invariant<core::InfiniteSystem>(seed, infinite_sample);
  }
}

TEST(SocketDifferential, WithReplacementBitMatchesAcrossTransports) {
  for (const std::uint64_t seed : {7ULL, 1234ULL}) {
    expect_transport_invariant<core::WithReplacementSystem>(seed, wr_sample);
  }
}

TEST(SocketDifferential, ExactSlidingBitMatchesAcrossTransports) {
  for (const std::uint64_t seed : {7ULL, 1234ULL}) {
    expect_transport_invariant<baseline::BottomSSlidingSystem>(
        seed, sliding_sample);
  }
}

TEST(SocketDifferential, BatchedRunsBitMatchSimNetwork) {
  // With batching on, the Bus is out (it cannot batch) — SimNetwork is
  // the reference. Logical counters and samples must still agree;
  // batching may only change the wire-level framing.
  for (const std::uint64_t seed : {7ULL, 1234ULL}) {
    const Fingerprint reference = run_one<core::InfiniteSystem>(
        TransportKind::kSimNetwork, seed, /*batch_interval=*/4,
        infinite_sample);
    for (const TransportKind kind :
         {TransportKind::kUdp, TransportKind::kTcp}) {
      const Fingerprint fp = run_one<core::InfiniteSystem>(
          kind, seed, /*batch_interval=*/4, infinite_sample);
      EXPECT_EQ(fp, reference)
          << kind_name(kind) << " batched run diverged at seed " << seed
          << "\n  simnet: " << describe(reference)
          << "\n  " << kind_name(kind) << ": " << describe(fp);
    }
    // Batching may change the message TRACE (delayed replies leave site
    // thresholds stale longer, so sites report differently) but never
    // the sample: the coordinator still hears every below-threshold
    // element.
    const Fingerprint unbatched = run_one<core::InfiniteSystem>(
        TransportKind::kSimNetwork, seed, 0, infinite_sample);
    EXPECT_EQ(reference.sample, unbatched.sample);
  }
}

TEST(SocketAccounting, RealFrameBytesFollowTheWireModel) {
  // A socket run's kernel-visible frame sizes are exactly the
  // wire::*_frame_bytes forms: per unbatched message message_frame_bytes,
  // per batch batch_frame_bytes(n). Check via the transport's own
  // accounting: wire bytes == sum of the frame-size formulas.
  core::SystemConfig config;
  config.num_sites = 4;
  config.sample_size = 6;
  config.seed = 99;
  config.network.kind = TransportKind::kUdp;
  config.network.batch_interval = 4;
  core::InfiniteSystem system(config);
  util::Xoshiro256StarStar workload(util::derive_seed(99, 0x50CE7));
  for (sim::Slot t = 0; t < kSlots; ++t) {
    std::vector<std::pair<sim::NodeId, std::uint64_t>> arrivals;
    for (int i = 0; i < kArrivalsPerSlot; ++i) {
      arrivals.emplace_back(
          static_cast<sim::NodeId>(workload.next_below(config.num_sites)),
          1 + workload.next_below(kDomain));
    }
    sim::SlotSource source(t, arrivals);
    system.run(source);
  }
  system.bus().finish();

  auto& socket = dynamic_cast<net::SocketTransport&>(system.bus());
  const net::SocketStats& stats = socket.socket_stats();
  EXPECT_GT(stats.batches_flushed, 0u);
  EXPECT_GT(stats.batched_messages, stats.batches_flushed);
  const std::uint64_t unbatched_frames =
      stats.frames_sent - stats.batches_flushed;
  const std::uint64_t expected_bytes =
      unbatched_frames * wire::message_frame_bytes() +
      stats.batches_flushed * wire::batch_frame_bytes(0) +
      stats.batched_messages * 29;
  EXPECT_EQ(socket.counters().bytes, expected_bytes);
  // And the kernel moved at least that much (packet headers add more).
  EXPECT_GE(stats.kernel_bytes_sent, expected_bytes);
}

// ---- the drain-at-finish contract (satellite 4) ----------------------

TEST(DrainAtFinish, BufferedBatchesCannotOutliveFinish) {
  // A report buffered by the Batcher against a deadline far in the
  // future is exactly the "slow socket strands the last message" shape:
  // nothing will flush it on its own. finish() must deliver it anyway
  // and leave the transport quiescent — on the event-driven simulator
  // and on both real-socket transports.
  for (const TransportKind kind :
       {TransportKind::kSimNetwork, TransportKind::kUdp,
        TransportKind::kTcp}) {
    core::SystemConfig config;
    config.num_sites = 3;
    config.sample_size = 4;
    config.seed = 5;
    config.network.kind = kind;
    config.network.batch_interval = 1000;  // deadline far beyond the run
    core::InfiniteSystem system(config);

    std::vector<std::pair<sim::NodeId, std::uint64_t>> arrivals{
        {0, 11}, {1, 22}, {2, 33}, {0, 44}};
    sim::SlotSource source(0, arrivals);
    system.run(source);
    // The reports are buffered, not delivered: without finish() the
    // coordinator would never hear of them.
    system.bus().finish();
    EXPECT_TRUE(system.bus().quiescent())
        << kind_name(kind) << ": finish() left traffic stranded";

    // The coordinator heard every report: its sample equals the Bus
    // run's sample of the same four elements.
    core::SystemConfig bus_config = config;
    bus_config.network = net::NetworkConfig{};
    core::InfiniteSystem reference(bus_config);
    sim::SlotSource replay(0, arrivals);
    reference.run(replay);
    EXPECT_EQ(system.sample().entries().size(),
              reference.sample().entries().size())
        << kind_name(kind);
    EXPECT_EQ(system.sample().elements(), reference.sample().elements())
        << kind_name(kind);
  }
}

/// Swallows deliveries without replying.
struct SinkNode final : sim::Node {
  std::uint64_t received = 0;
  void on_message(const sim::Message&, net::Transport&) override {
    ++received;
  }
};

TEST(DrainAtFinish, QuiescentReportsBufferedTraffic) {
  // quiescent() must be an honest indicator: false while a batch sits
  // buffered against a far-future deadline, true (with the message
  // actually delivered) after finish(). The engine finishes after every
  // run(), so this drives the transport directly to see the window.
  net::NetworkConfig config;
  config.batch_interval = 1000;
  config.seed = 5;
  net::UdpTransport transport(/*num_sites=*/2, config);
  SinkNode site0, site1, coordinator;
  transport.attach(0, &site0);
  transport.attach(1, &site1);
  transport.attach(transport.coordinator_id(), &coordinator);

  sim::Message report;
  report.from = 0;
  report.to = transport.coordinator_id();
  report.type = sim::MsgType::kReportElement;
  report.a = 11;
  report.b = 22;
  transport.send(report);

  EXPECT_FALSE(transport.quiescent());
  EXPECT_EQ(coordinator.received, 0u);  // genuinely stranded until finish
  transport.finish();
  EXPECT_TRUE(transport.quiescent());
  EXPECT_EQ(coordinator.received, 1u);
}

// ---- multi-process spawn smoke (satellite 3) -------------------------

struct SpawnConfig {
  std::string transport;
  std::uint32_t num_sites = 2;
  std::uint64_t seed = 7;
  std::size_t sample_size = 8;
  std::uint64_t elements = 300;
  std::uint64_t domain = 500;
};

/// The sample dds_node must produce, computed in-process: same hash
/// recipe, same per-site workload generator. The infinite-window sample
/// is a pure function of the element SET, so arrival order across
/// processes cannot change it.
std::vector<std::string> expected_sample_lines(const SpawnConfig& config) {
  sim::Bus bus(config.num_sites, 1);
  core::InfiniteWindowCoordinator coordinator(bus.coordinator_id(),
                                              config.sample_size);
  bus.attach(bus.coordinator_id(), &coordinator);
  const hash::HashFunction hash_fn(
      hash::HashKind::kMurmur2, util::derive_seed(config.seed, 0xA5));
  std::vector<std::unique_ptr<core::InfiniteWindowSite>> sites;
  for (std::uint32_t i = 0; i < config.num_sites; ++i) {
    sites.push_back(std::make_unique<core::InfiniteWindowSite>(
        i, bus.coordinator_id(), hash_fn));
    bus.attach(i, sites.back().get());
  }
  for (std::uint32_t i = 0; i < config.num_sites; ++i) {
    util::Xoshiro256StarStar rng(
        util::derive_seed(config.seed, 0xF00D + i));
    for (std::uint64_t n = 0; n < config.elements; ++n) {
      sites[i]->on_element(1 + rng.next_below(config.domain), 0, bus);
      bus.drain();
    }
  }
  std::vector<std::string> lines;
  for (const stream::Element element : coordinator.sample().elements()) {
    lines.push_back(std::to_string(element));
  }
  return lines;
}

pid_t spawn(const std::vector<std::string>& argv_strings) {
  std::vector<char*> argv;
  argv.reserve(argv_strings.size() + 1);
  for (const std::string& s : argv_strings) {
    argv.push_back(const_cast<char*>(s.c_str()));
  }
  argv.push_back(nullptr);
  const pid_t pid = ::fork();
  if (pid == 0) {
    ::execv(argv[0], argv.data());
    std::perror("execv dds_node");
    ::_exit(127);
  }
  return pid;
}

/// Waits for `pid` with a deadline; kills and fails on timeout.
int wait_with_timeout(pid_t pid, int seconds) {
  for (int waited_ms = 0; waited_ms < seconds * 1000; waited_ms += 20) {
    int status = 0;
    const pid_t done = ::waitpid(pid, &status, WNOHANG);
    if (done == pid) {
      return WIFEXITED(status) ? WEXITSTATUS(status) : 128;
    }
    ::usleep(20 * 1000);
  }
  ::kill(pid, SIGKILL);
  ::waitpid(pid, nullptr, 0);
  return -1;
}

void run_spawn_smoke(const SpawnConfig& config) {
  const std::string node_binary = std::string(DDS_BINARY_DIR) + "/dds_node";
  char dir_template[] = "/tmp/dds_socket_test_XXXXXX";
  ASSERT_NE(::mkdtemp(dir_template), nullptr);
  const std::string dir = dir_template;
  const std::string port_file = dir + "/coord.port";
  const std::string out_file = dir + "/sample";

  auto common = [&](std::vector<std::string> head) {
    head.insert(head.end(),
                {"--transport", config.transport, "--num-sites",
                 std::to_string(config.num_sites), "--seed",
                 std::to_string(config.seed), "--sample-size",
                 std::to_string(config.sample_size), "--elements",
                 std::to_string(config.elements), "--domain",
                 std::to_string(config.domain), "--port-file", port_file});
    return head;
  };

  std::vector<pid_t> pids;
  pids.push_back(spawn(
      common({node_binary, "--coordinator", "--out", out_file})));
  for (std::uint32_t i = 0; i < config.num_sites; ++i) {
    pids.push_back(spawn(common({node_binary, "--site", std::to_string(i)})));
  }
  for (const pid_t pid : pids) {
    EXPECT_EQ(wait_with_timeout(pid, 25), 0)
        << config.transport << " node " << pid << " failed";
  }

  std::vector<std::string> lines;
  std::ifstream in(out_file);
  ASSERT_TRUE(in.good()) << "coordinator wrote no sample";
  for (std::string line; std::getline(in, line);) {
    if (!line.empty()) lines.push_back(line);
  }
  EXPECT_EQ(lines, expected_sample_lines(config))
      << config.transport << " multi-process sample diverged";

  std::remove(port_file.c_str());
  std::remove(out_file.c_str());
  ::rmdir(dir.c_str());
}

TEST(SpawnSmoke, UdpThreeProcessRunMatchesInProcessSample) {
  SpawnConfig config;
  config.transport = "udp";
  run_spawn_smoke(config);
}

TEST(SpawnSmoke, TcpThreeProcessRunMatchesInProcessSample) {
  SpawnConfig config;
  config.transport = "tcp";
  run_spawn_smoke(config);
}

}  // namespace
}  // namespace dds
