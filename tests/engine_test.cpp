// The execution-engine determinism suite.
//
// The ShardedEngine's contract is bit-identical output to the
// SerialEngine for the same config and seed: the same samples, the same
// estimates, and the same logical message counters (total, direction,
// per type, per node, bytes). This file holds that contract across every
// protocol the sharded engine deploys, at several seeds, plus the
// ShardRouter partition/coverage properties and the sharded-coordinator
// query merge.
#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <set>
#include <vector>

#include "baseline/baseline_system.h"
#include "core/shard_router.h"
#include "core/system.h"
#include "net/sim_network.h"
#include "query/estimators.h"
#include "sim/sources.h"
#include "util/rng.h"

namespace dds {
namespace {

using sim::ListSource;

/// Infinite-window shaped stream: slot == arrival index (the
/// partitioner's convention), uniform sites, duplicate-heavy domain.
std::vector<sim::Arrival> infinite_stream(std::uint32_t sites, std::uint64_t n,
                                          std::uint64_t domain,
                                          std::uint64_t seed) {
  util::SplitMix64 gen(seed);
  std::vector<sim::Arrival> out;
  out.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    out.push_back(sim::Arrival{static_cast<sim::Slot>(i),
                               static_cast<sim::NodeId>(gen.next() % sites),
                               1 + gen.next() % domain});
  }
  return out;
}

/// Sliding-window shaped stream: `per_slot` arrivals in every slot.
std::vector<sim::Arrival> slotted_stream(std::uint32_t sites, sim::Slot slots,
                                         std::uint32_t per_slot,
                                         std::uint64_t domain,
                                         std::uint64_t seed) {
  util::SplitMix64 gen(seed);
  std::vector<sim::Arrival> out;
  out.reserve(static_cast<std::size_t>(slots) * per_slot);
  for (sim::Slot t = 0; t < slots; ++t) {
    for (std::uint32_t a = 0; a < per_slot; ++a) {
      out.push_back(sim::Arrival{t,
                                 static_cast<sim::NodeId>(gen.next() % sites),
                                 1 + gen.next() % domain});
    }
  }
  return out;
}

/// Everything the determinism contract covers, byte for byte.
struct Fingerprint {
  std::vector<std::pair<std::uint64_t, std::uint64_t>> sample;  // (elem, hash)
  double estimate = 0.0;
  std::uint64_t processed = 0;
  std::uint64_t total = 0;
  std::uint64_t site_to_coordinator = 0;
  std::uint64_t coordinator_to_site = 0;
  std::uint64_t bytes = 0;
  std::vector<std::uint64_t> by_type;
  std::vector<std::uint64_t> sent_by;

  bool operator==(const Fingerprint&) const = default;
};

template <typename System, typename SampleFn>
Fingerprint fingerprint_run(System& system,
                            const std::vector<sim::Arrival>& arrivals,
                            SampleFn sample_fn) {
  ListSource source(arrivals);
  Fingerprint fp;
  fp.processed = system.run(source);
  fp.sample = sample_fn(system);
  const net::BusCounters& c = system.bus().counters();
  fp.total = c.total;
  fp.site_to_coordinator = c.site_to_coordinator;
  fp.coordinator_to_site = c.coordinator_to_site;
  fp.bytes = c.bytes;
  fp.by_type.assign(c.by_type.begin(), c.by_type.end());
  for (sim::NodeId id = 0;
       id < system.bus().num_sites() + system.bus().num_coordinators(); ++id) {
    fp.sent_by.push_back(system.bus().sent_by(id));
  }
  return fp;
}

/// Builds the system twice — serial and 4-thread sharded-engine — and
/// expects identical fingerprints. Returns the serial fingerprint.
template <typename MakeSystem, typename SampleFn>
void expect_engine_identical(MakeSystem make_system, SampleFn sample_fn,
                             const std::vector<sim::Arrival>& arrivals) {
  auto serial = make_system(/*num_threads=*/1);
  ASSERT_STREQ(serial->runner().name(), "serial");
  const Fingerprint want = fingerprint_run(*serial, arrivals, sample_fn);

  auto sharded = make_system(/*num_threads=*/4);
  ASSERT_STREQ(sharded->runner().name(), "sharded");
  ASSERT_GT(sharded->runner().num_threads(), 1u);
  const Fingerprint got = fingerprint_run(*sharded, arrivals, sample_fn);

  EXPECT_EQ(want, got);
}

constexpr std::uint32_t kSites = 13;  // not a multiple of the thread count
constexpr std::uint64_t kSeeds[] = {1, 2, 3};

TEST(ShardedEngineDeterminism, InfiniteFaithful) {
  for (const std::uint64_t seed : kSeeds) {
    const auto arrivals = infinite_stream(kSites, 20000, 3000, seed * 77 + 5);
    expect_engine_identical(
        [&](std::uint32_t threads) {
          core::SystemConfig config{kSites, 16, hash::HashKind::kMurmur2,
                                    seed};
          config.num_threads = threads;
          return std::make_unique<core::InfiniteSystem>(config);
        },
        [](core::InfiniteSystem& s) {
          std::vector<std::pair<std::uint64_t, std::uint64_t>> out;
          for (const auto& e : s.coordinator().sample().entries()) {
            out.emplace_back(e.element, e.hash);
          }
          return out;
        },
        arrivals);
  }
}

TEST(ShardedEngineDeterminism, InfiniteSuppressDuplicatesAndEstimate) {
  for (const std::uint64_t seed : kSeeds) {
    const auto arrivals = infinite_stream(kSites, 20000, 800, seed * 31 + 1);
    // Also pins the estimator output byte-for-byte.
    expect_engine_identical(
        [&](std::uint32_t threads) {
          core::SystemConfig config{kSites, 12, hash::HashKind::kMurmur3,
                                    seed};
          config.num_threads = threads;
          return std::make_unique<core::InfiniteSystem>(
              config, /*eager_threshold=*/true, /*suppress_duplicates=*/true);
        },
        [](core::InfiniteSystem& s) {
          std::vector<std::pair<std::uint64_t, std::uint64_t>> out;
          out.emplace_back(
              0, static_cast<std::uint64_t>(
                     query::estimate_distinct(s.coordinator().sample()) * 1e6));
          for (const auto& e : s.coordinator().sample().entries()) {
            out.emplace_back(e.element, e.hash);
          }
          return out;
        },
        arrivals);
  }
}

TEST(ShardedEngineDeterminism, WithReplacement) {
  for (const std::uint64_t seed : kSeeds) {
    const auto arrivals = infinite_stream(kSites, 6000, 1500, seed * 13 + 7);
    expect_engine_identical(
        [&](std::uint32_t threads) {
          core::SystemConfig config{kSites, 8, hash::HashKind::kMurmur2, seed};
          config.num_threads = threads;
          return std::make_unique<core::WithReplacementSystem>(config);
        },
        [](core::WithReplacementSystem& s) {
          std::vector<std::pair<std::uint64_t, std::uint64_t>> out;
          for (const auto e : s.coordinator().sample()) out.emplace_back(e, 0);
          return out;
        },
        arrivals);
  }
}

TEST(ShardedEngineDeterminism, SlidingSingleAndMultiCopy) {
  for (const std::uint64_t seed : kSeeds) {
    for (const std::size_t s : {std::size_t{1}, std::size_t{3}}) {
      const auto arrivals =
          slotted_stream(kSites, /*slots=*/300, /*per_slot=*/6, 500,
                         seed * 101 + s);
      expect_engine_identical(
          [&](std::uint32_t threads) {
            core::SlidingSystemConfig config;
            config.num_sites = kSites;
            config.window = 40;
            config.sample_size = s;
            config.seed = seed;
            config.num_threads = threads;
            return std::make_unique<core::SlidingSystem>(config);
          },
          [](core::SlidingSystem& sys) {
            std::vector<std::pair<std::uint64_t, std::uint64_t>> out;
            const auto sample =
                sys.coordinator().sample(sys.runner().current_slot());
            for (const auto e : sample) out.emplace_back(e, 0);
            out.emplace_back(sys.total_site_state(), sys.max_site_state());
            return out;
          },
          arrivals);
    }
  }
}

TEST(ShardedEngineDeterminism, CentralizedAndDrsBaselines) {
  for (const std::uint64_t seed : kSeeds) {
    const auto arrivals = infinite_stream(kSites, 4000, 900, seed * 3 + 11);
    expect_engine_identical(
        [&](std::uint32_t threads) {
          core::SystemConfig config{kSites, 10, hash::HashKind::kMurmur2,
                                    seed};
          config.num_threads = threads;
          return std::make_unique<baseline::CentralizedSystem>(config);
        },
        [](baseline::CentralizedSystem& s) {
          std::vector<std::pair<std::uint64_t, std::uint64_t>> out;
          for (const auto& e : s.coordinator().sample().entries()) {
            out.emplace_back(e.element, e.hash);
          }
          return out;
        },
        arrivals);
    expect_engine_identical(
        [&](std::uint32_t threads) {
          core::SystemConfig config{kSites, 10, hash::HashKind::kMurmur2,
                                    seed};
          config.num_threads = threads;
          return std::make_unique<baseline::DrsSystem>(config);
        },
        [](baseline::DrsSystem& s) {
          std::vector<std::pair<std::uint64_t, std::uint64_t>> out;
          for (const auto e : s.coordinator().sample()) out.emplace_back(e, 0);
          return out;
        },
        arrivals);
  }
}

TEST(ShardedEngineDeterminism, ObserverSeesIdenticalCheckpoints) {
  const auto arrivals = infinite_stream(kSites, 5000, 700, 99);
  auto checkpoints = [&](std::uint32_t threads) {
    core::SystemConfig config{kSites, 8, hash::HashKind::kMurmur2, 4};
    config.num_threads = threads;
    core::InfiniteSystem system(config);
    std::vector<std::uint64_t> seen;
    system.runner().set_observer(777, [&](const sim::Progress& p) {
      seen.push_back(p.elements_processed);
      seen.push_back(system.bus().counters().total);
      seen.push_back(p.final_snapshot ? 1 : 0);
    });
    ListSource source(arrivals);
    system.run(source);
    return seen;
  };
  EXPECT_EQ(checkpoints(1), checkpoints(4));
}

TEST(ShardedEngine, BroadcastFallsBackToSerial) {
  core::SystemConfig config{8, 8, hash::HashKind::kMurmur2, 3};
  config.num_threads = 4;
  baseline::BroadcastSystem system(config);
  EXPECT_STREQ(system.runner().name(), "serial");
}

TEST(ShardedEngine, PositiveHorizonWireDeploysLockstep) {
  // A latency wire certifies a positive delivery horizon, so the
  // sharded engine's lockstep mode takes it — no serial fallback.
  core::SystemConfig config{8, 8, hash::HashKind::kMurmur2, 3};
  config.num_threads = 4;
  config.network.link.latency = 1.5;
  core::InfiniteSystem system(config);
  EXPECT_STREQ(system.runner().name(), "sharded");
  EXPECT_GT(system.bus().delivery_horizon(), 0.0);
}

TEST(ShardedEngine, ZeroHorizonWireFallsBackToSerial) {
  // Normal jitter clamps at zero delay — no positive bound exists, so
  // lockstep is ineligible and the deployment stays serial.
  core::SystemConfig config{8, 8, hash::HashKind::kMurmur2, 3};
  config.num_threads = 4;
  config.network.link.jitter_stddev = 0.5;
  core::InfiniteSystem system(config);
  EXPECT_STREQ(system.runner().name(), "serial");
  EXPECT_EQ(system.bus().delivery_horizon(), 0.0);
}

TEST(ShardedEngine, ThreadsClampToSiteCount) {
  core::SystemConfig config{3, 8, hash::HashKind::kMurmur2, 3};
  config.num_threads = 16;
  core::InfiniteSystem system(config);
  EXPECT_STREQ(system.runner().name(), "sharded");
  EXPECT_EQ(system.runner().num_threads(), 3u);
}

TEST(ShardedEngine, EmptyStreamAndAdvance) {
  core::SlidingSystemConfig config;
  config.num_sites = 4;
  config.num_threads = 4;
  core::SlidingSystem system(config);
  ListSource empty({});
  EXPECT_EQ(system.run(empty), 0u);
  system.runner().advance_to_slot(7);
  EXPECT_EQ(system.runner().current_slot(), 7);
}

// ------------------------------------------------------------ router --

TEST(ShardRouter, CoversAllShardsRoughlyEvenly) {
  const std::uint32_t shards = 8;
  core::ShardRouter router(shards, /*seed=*/5);
  std::vector<std::uint64_t> owned(shards, 0);
  util::SplitMix64 gen(123);
  const std::uint64_t probes = 200000;
  for (std::uint64_t i = 0; i < probes; ++i) ++owned[router.shard_of(gen.next())];
  for (std::uint32_t j = 0; j < shards; ++j) {
    // Every shard owns a nontrivial slice: within 3x either way of fair.
    EXPECT_GT(owned[j], probes / shards / 3) << "shard " << j;
    EXPECT_LT(owned[j], probes * 3 / shards) << "shard " << j;
  }
}

TEST(ShardRouter, DeterministicAndStableAcrossInstances) {
  core::ShardRouter a(6, 42), b(6, 42);
  util::SplitMix64 gen(7);
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t e = gen.next();
    EXPECT_EQ(a.shard_of(e), b.shard_of(e));
  }
}

TEST(ShardRouter, ResizeRemapsOnlyAFraction) {
  core::ShardRouter small(4, 9), big(5, 9);
  // Consistent hashing: going 4 -> 5 shards should move roughly 1/5 of
  // the space, and certainly far less than a modulo repartition (~4/5).
  const double moved = small.disagreement(big, 100000);
  EXPECT_GT(moved, 0.05);
  EXPECT_LT(moved, 0.45);
}

TEST(ShardRouter, RejectsZeroShards) {
  EXPECT_THROW(core::ShardRouter(0), std::invalid_argument);
}

// ------------------------------------------- sharded coordinator -----

TEST(ShardedCoordinator, InfiniteMergedSampleIsExact) {
  const auto arrivals = infinite_stream(10, 30000, 5000, 17);
  core::SystemConfig config{10, 24, hash::HashKind::kMurmur2, 6};
  core::InfiniteSystem reference(config);
  {
    ListSource source(arrivals);
    reference.run(source);
  }
  const auto want = reference.coordinator().sample().entries();
  ASSERT_FALSE(want.empty());

  for (const std::uint32_t shards : {2u, 4u}) {
    core::SystemConfig sharded_config = config;
    sharded_config.num_shards = shards;
    core::InfiniteSystem sharded(sharded_config);
    EXPECT_EQ(sharded.bus().num_coordinators(), shards);
    ListSource source(arrivals);
    sharded.run(source);
    // The query-time merge across shards is the exact global bottom-s.
    const auto got = sharded.sample().entries();
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t i = 0; i < want.size(); ++i) {
      EXPECT_EQ(got[i].element, want[i].element);
      EXPECT_EQ(got[i].hash, want[i].hash);
    }
    // The estimator sees the identical merged sketch.
    EXPECT_DOUBLE_EQ(query::estimate_distinct(sharded.sample()),
                     query::estimate_distinct(reference.coordinator().sample()));
  }
}

TEST(ShardedCoordinator, PerShardCountersPartitionTheTotal) {
  const auto arrivals = infinite_stream(8, 12000, 2500, 23);
  core::SystemConfig config{8, 16, hash::HashKind::kMurmur2, 9};
  config.num_shards = 4;
  core::InfiniteSystem system(config);
  ListSource source(arrivals);
  system.run(source);

  std::uint64_t total = 0, bytes = 0;
  for (std::uint32_t j = 0; j < 4; ++j) {
    const auto& c = system.bus().coordinator_counters(j);
    EXPECT_GT(c.total, 0u) << "shard " << j << " saw no traffic";
    total += c.total;
    bytes += c.bytes;
  }
  EXPECT_EQ(total, system.bus().counters().total);
  EXPECT_EQ(bytes, system.bus().counters().bytes);
  EXPECT_THROW(system.bus().coordinator_counters(4), std::out_of_range);
}

TEST(ShardedCoordinator, WithReplacementMergedSampleMatchesUnsharded) {
  const auto arrivals = infinite_stream(6, 8000, 2000, 29);
  core::SystemConfig config{6, 6, hash::HashKind::kMurmur2, 12};
  core::WithReplacementSystem reference(config);
  {
    ListSource source(arrivals);
    reference.run(source);
  }
  core::SystemConfig sharded_config = config;
  sharded_config.num_shards = 3;
  core::WithReplacementSystem sharded(sharded_config);
  {
    ListSource source(arrivals);
    sharded.run(source);
  }
  // Copy j's min-hash element is partition-independent, so the merged
  // with-replacement sample equals the single-coordinator one.
  EXPECT_EQ(sharded.sample(), reference.coordinator().sample());
}

TEST(ShardedCoordinator, ShardedPlusThreadedStaysDeterministic) {
  const auto arrivals = infinite_stream(kSites, 15000, 2600, 31);
  auto run_once = [&](std::uint32_t threads) {
    core::SystemConfig config{kSites, 16, hash::HashKind::kMurmur2, 21};
    config.num_shards = 3;
    config.num_threads = threads;
    core::InfiniteSystem system(config);
    ListSource source(arrivals);
    system.run(source);
    Fingerprint fp;
    fp.total = system.bus().counters().total;
    fp.bytes = system.bus().counters().bytes;
    for (const auto& e : system.sample().entries()) {
      fp.sample.emplace_back(e.element, e.hash);
    }
    return fp;
  };
  const Fingerprint serial = run_once(1);
  const Fingerprint sharded = run_once(4);
  EXPECT_EQ(serial, sharded);
}

TEST(ShardedCoordinator, UnshardableProtocolsRejectShards) {
  // Broadcast replies fan out to every site and DRS draws a fresh tag
  // per occurrence — neither has an element partition to shard over.
  // (The sliding protocols DO shard now; see sliding_shard_test.cpp.)
  core::SystemConfig config{8, 8, hash::HashKind::kMurmur2, 3};
  config.num_shards = 2;
  EXPECT_THROW(baseline::BroadcastSystem system(config),
               std::invalid_argument);
  EXPECT_THROW(baseline::DrsSystem system(config), std::invalid_argument);
}

// ---------------------------------------------- lockstep (real wires) --

/// Fingerprint of a run on a realistic wire: the full logical message
/// trace (every send, in order, via the tap), wire + logical counters,
/// and the network pathology statistics. Lockstep's contract is that
/// every entry matches the serial engine bit for bit.
struct WireFingerprint {
  std::vector<std::uint64_t> trace;
  std::uint64_t wire_total = 0;
  std::uint64_t wire_bytes = 0;
  std::uint64_t logical_total = 0;
  std::uint64_t drops = 0;
  std::uint64_t retransmissions = 0;
  std::uint64_t batches_flushed = 0;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> sample;

  bool operator==(const WireFingerprint&) const = default;
};

template <typename System, typename SampleFn>
WireFingerprint wire_fingerprint_run(System& system,
                                     const std::vector<sim::Arrival>& arrivals,
                                     SampleFn sample_fn) {
  WireFingerprint fp;
  system.bus().set_tap([&fp](const sim::Message& m) {
    fp.trace.push_back((static_cast<std::uint64_t>(m.from) << 40) |
                       (static_cast<std::uint64_t>(m.to) << 8) |
                       static_cast<std::uint64_t>(m.type));
    fp.trace.push_back(m.a ^ (m.b * 3) ^ (m.c * 7) ^ m.instance);
  });
  ListSource source(arrivals);
  system.run(source);
  fp.wire_total = system.bus().counters().total;
  fp.wire_bytes = system.bus().counters().bytes;
  auto* net = dynamic_cast<net::SimNetwork*>(&system.bus());
  fp.logical_total = net->logical_counters().total;
  fp.drops = net->stats().drops;
  fp.retransmissions = net->stats().retransmissions;
  fp.batches_flushed = net->stats().batches_flushed;
  fp.sample = sample_fn(system);
  return fp;
}

TEST(ShardedEngineLockstep, SlidingOverLossyWireMatchesSerial) {
  // The acceptance wire: latency + jitter + Bernoulli loss with
  // retransmission. Traces, counters, and samples must equal the
  // serial engine's, and the engine must actually be the sharded one.
  for (const std::uint64_t seed : kSeeds) {
    const auto arrivals =
        slotted_stream(kSites, /*slots=*/250, /*per_slot=*/5, 300, seed * 7);
    auto run_once = [&](std::uint32_t threads) {
      core::SlidingSystemConfig config;
      config.num_sites = kSites;
      config.window = 30;
      config.sample_size = 2;
      config.seed = seed;
      config.num_threads = threads;
      config.network.link.latency = 1.5;
      config.network.link.jitter = 0.75;
      config.network.link.drop_rate = 0.05;
      config.network.link.retransmit = true;
      core::SlidingSystem system(config);
      EXPECT_STREQ(system.runner().name(), threads > 1 ? "sharded" : "serial");
      return wire_fingerprint_run(
          system, arrivals, [](core::SlidingSystem& s) {
            std::vector<std::pair<std::uint64_t, std::uint64_t>> out;
            for (const auto e :
                 s.coordinator().sample(s.runner().current_slot())) {
              out.emplace_back(e, 0);
            }
            return out;
          });
    };
    const WireFingerprint want = run_once(1);
    const WireFingerprint got = run_once(4);
    EXPECT_GT(want.drops, 0u) << "wire not lossy enough to prove anything";
    EXPECT_EQ(want, got);
  }
}

TEST(ShardedEngineLockstep, InfiniteOverLatencyJitterWireMatchesSerial) {
  // The slot-per-arrival shape: lockstep waves span slots up to the
  // delivery horizon instead of one slot each.
  for (const std::uint64_t seed : kSeeds) {
    const auto arrivals = infinite_stream(kSites, 6000, 900, seed * 13 + 2);
    auto run_once = [&](std::uint32_t threads) {
      core::SystemConfig config{kSites, 8, hash::HashKind::kMurmur2, seed};
      config.num_threads = threads;
      config.network.link.latency = 2.0;
      config.network.link.jitter = 1.0;
      config.network.link.drop_rate = 0.03;
      core::InfiniteSystem system(config);
      EXPECT_STREQ(system.runner().name(), threads > 1 ? "sharded" : "serial");
      return wire_fingerprint_run(
          system, arrivals, [](core::InfiniteSystem& s) {
            std::vector<std::pair<std::uint64_t, std::uint64_t>> out;
            for (const auto& e : s.coordinator().sample().entries()) {
              out.emplace_back(e.element, e.hash);
            }
            return out;
          });
    };
    EXPECT_EQ(run_once(1), run_once(4));
  }
}

TEST(ShardedEngineLockstep, BatchedShardedSlidingOverWireMatchesSerial) {
  // Everything at once: report batching + coordinator sharding + the
  // lossy wire + worker threads — the end-to-end "sharded sliding over
  // a realistic wire" configuration abl12 measures.
  const auto arrivals = slotted_stream(kSites, 220, 5, 260, 77);
  auto run_once = [&](std::uint32_t threads) {
    core::SlidingSystemConfig config;
    config.num_sites = kSites;
    config.window = 25;
    config.sample_size = 2;
    config.seed = 5;
    config.num_threads = threads;
    config.num_shards = 2;
    config.network.link.latency = 1.25;
    config.network.link.drop_rate = 0.04;
    config.network.batch_interval = 3;
    config.network.batch_max_msgs = 8;
    core::SlidingSystem system(config);
    EXPECT_STREQ(system.runner().name(), threads > 1 ? "sharded" : "serial");
    return wire_fingerprint_run(system, arrivals, [](core::SlidingSystem& s) {
      std::vector<std::pair<std::uint64_t, std::uint64_t>> out;
      for (const auto e : s.sample(s.runner().current_slot())) {
        out.emplace_back(e, 0);
      }
      return out;
    });
  };
  const WireFingerprint want = run_once(1);
  const WireFingerprint got = run_once(4);
  EXPECT_GT(want.batches_flushed, 0u);
  EXPECT_EQ(want, got);
}

TEST(ShardedEngineLockstep, PerMessageWakeupsStayDeterministic) {
  // The wakeup-coalescing knob is a handoff optimization only; both
  // settings must produce the serial fingerprint (run-ahead mode).
  const auto arrivals = infinite_stream(kSites, 8000, 1200, 21);
  auto run_once = [&](std::uint32_t threads, bool coalesce) {
    core::SystemConfig config{kSites, 10, hash::HashKind::kMurmur2, 9};
    config.num_threads = threads;
    config.coalesce_wakeups = coalesce;
    core::InfiniteSystem system(config);
    return fingerprint_run(system, arrivals, [](core::InfiniteSystem& s) {
      std::vector<std::pair<std::uint64_t, std::uint64_t>> out;
      for (const auto& e : s.coordinator().sample().entries()) {
        out.emplace_back(e.element, e.hash);
      }
      return out;
    });
  };
  const Fingerprint want = run_once(1, true);
  EXPECT_EQ(want, run_once(4, true));
  EXPECT_EQ(want, run_once(4, false));
}

}  // namespace
}  // namespace dds
