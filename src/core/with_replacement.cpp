#include "core/with_replacement.h"

#include "util/bytes.h"

namespace dds::core {

WithReplacementSite::WithReplacementSite(sim::NodeId id,
                                         sim::NodeId coordinator,
                                         const hash::HashFamily& family,
                                         std::size_t sample_size) {
  copies_.reserve(sample_size);
  for (std::size_t j = 0; j < sample_size; ++j) {
    copies_.emplace_back(id, coordinator, family.at(j),
                         static_cast<std::uint32_t>(j));
  }
}

void WithReplacementSite::on_element(stream::Element element, sim::Slot t,
                                     net::Transport& bus) {
  for (auto& copy : copies_) copy.on_element(element, t, bus);
}

void WithReplacementSite::on_element_batch(
    std::span<const std::uint64_t> elements, sim::Slot /*t*/,
    net::Transport& bus) {
  const std::size_t n = elements.size();
  const std::size_t s = copies_.size();
  if (hash_scratch_.size() < n * s) hash_scratch_.resize(n * s);
  for (std::size_t j = 0; j < s; ++j) {
    copies_[j].hash_fn().hash_batch(elements.data(), n,
                                    hash_scratch_.data() + j * n);
  }
  for (std::size_t i = 0; i < n; ++i) {
    // Element-major like on_element, one drain per element (the batch
    // contract): every copy's report precedes any reply in the trace.
    for (std::size_t j = 0; j < s; ++j) {
      InfiniteWindowSite& copy = copies_[j];
      if (copy.admits(elements[i])) {
        copy.on_element_hashed(elements[i], hash_scratch_[j * n + i], bus);
      }
    }
    bus.drain();
  }
}

void WithReplacementSite::on_message(const sim::Message& msg, net::Transport& bus) {
  if (msg.instance < copies_.size()) copies_[msg.instance].on_message(msg, bus);
}

void WithReplacementSite::save_speculation_state(
    std::vector<std::uint8_t>& out) const {
  util::put_u64(out, copies_.size());
  std::vector<std::uint8_t> scratch;
  for (const auto& copy : copies_) {
    scratch.clear();
    copy.save_speculation_state(scratch);
    util::put_u64(out, scratch.size());  // length prefix per copy
    out.insert(out.end(), scratch.begin(), scratch.end());
  }
}

void WithReplacementSite::restore_speculation_state(
    std::span<const std::uint8_t> image) {
  std::size_t pos = 0;
  const std::uint64_t n = util::get_u64(image, pos);
  if (n != copies_.size()) {
    throw std::logic_error(
        "WithReplacementSite::restore_speculation_state: copy count mismatch");
  }
  for (auto& copy : copies_) {
    const std::uint64_t len = util::get_u64(image, pos);
    if (pos + len > image.size()) {
      throw std::out_of_range(
          "WithReplacementSite::restore_speculation_state: image truncated");
    }
    copy.restore_speculation_state(image.subspan(pos, len));
    pos += len;
  }
}

WithReplacementCoordinator::WithReplacementCoordinator(
    sim::NodeId id, const hash::HashFamily& /*family*/,
    std::size_t sample_size) {
  copies_.reserve(sample_size);
  for (std::size_t j = 0; j < sample_size; ++j) {
    copies_.emplace_back(id, /*sample_size=*/1,
                         static_cast<std::uint32_t>(j));
  }
}

void WithReplacementCoordinator::on_message(const sim::Message& msg,
                                            net::Transport& bus) {
  if (msg.instance < copies_.size()) copies_[msg.instance].on_message(msg, bus);
}

std::size_t WithReplacementCoordinator::state_size() const noexcept {
  std::size_t total = 0;
  for (const auto& copy : copies_) total += copy.state_size();
  return total;
}

std::vector<stream::Element> WithReplacementCoordinator::sample() const {
  std::vector<stream::Element> out;
  out.reserve(copies_.size());
  for (const auto& copy : copies_) {
    const auto elems = copy.sample().elements();
    if (!elems.empty()) out.push_back(elems.front());
  }
  return out;
}

}  // namespace dds::core
