#include "core/with_replacement.h"

namespace dds::core {

WithReplacementSite::WithReplacementSite(sim::NodeId id,
                                         sim::NodeId coordinator,
                                         const hash::HashFamily& family,
                                         std::size_t sample_size) {
  copies_.reserve(sample_size);
  for (std::size_t j = 0; j < sample_size; ++j) {
    copies_.emplace_back(id, coordinator, family.at(j),
                         static_cast<std::uint32_t>(j));
  }
}

void WithReplacementSite::on_element(stream::Element element, sim::Slot t,
                                     net::Transport& bus) {
  for (auto& copy : copies_) copy.on_element(element, t, bus);
}

void WithReplacementSite::on_message(const sim::Message& msg, net::Transport& bus) {
  if (msg.instance < copies_.size()) copies_[msg.instance].on_message(msg, bus);
}

WithReplacementCoordinator::WithReplacementCoordinator(
    sim::NodeId id, const hash::HashFamily& /*family*/,
    std::size_t sample_size) {
  copies_.reserve(sample_size);
  for (std::size_t j = 0; j < sample_size; ++j) {
    copies_.emplace_back(id, /*sample_size=*/1,
                         static_cast<std::uint32_t>(j));
  }
}

void WithReplacementCoordinator::on_message(const sim::Message& msg,
                                            net::Transport& bus) {
  if (msg.instance < copies_.size()) copies_[msg.instance].on_message(msg, bus);
}

std::size_t WithReplacementCoordinator::state_size() const noexcept {
  std::size_t total = 0;
  for (const auto& copy : copies_) total += copy.state_size();
  return total;
}

std::vector<stream::Element> WithReplacementCoordinator::sample() const {
  std::vector<stream::Element> out;
  out.reserve(copies_.size());
  for (const auto& copy : copies_) {
    const auto elems = copy.sample().elements();
    if (!elems.empty()) out.push_back(elems.front());
  }
  return out;
}

}  // namespace dds::core
