// Shard lifecycle supervision: cadenced checkpoints, dead-shard
// detection, and verified restore with retry/backoff.
//
// The Deployment exposes the mechanism (kill_shard / respawn_shard /
// resync_shard, core/checkpoint.h the images); the Supervisor is the
// policy loop a real control plane would run, condensed to the slot
// clock of the simulation:
//
//   on_slot(t) — call once per slot boundary —
//     1. every `checkpoint_cadence` slots, snapshots each LIVE shard's
//        coordinator into the per-shard latest-image store (dead shards
//        keep their last good image; snapshotting their fresh empty
//        replacement would destroy exactly the state a restore needs);
//     2. notices shards that died (polling shard_alive, or told exactly
//        via notify_killed) and, once a shard has been down for
//        `detect_after` slots, runs recover() on it.
//
//   recover(shard, t) — also the chaos layer's respawn hook — respawns
//   the shard and replays the restore protocol: transfer a copy of the
//   latest image (the image filter models the transfer — the chaos
//   controller's mangle() corrupts/truncates it in flight), gate it
//   through verify_checkpoint_image, then restore_into the fresh
//   coordinator. Each failed attempt is retried with exponential
//   backoff (base << attempt, capped), accounted in simulated slots so
//   the recovery-latency bench sees the cost without the lockstep sim
//   actually idling. After `max_restore_attempts` failures the
//   supervisor degrades gracefully: the shard comes back EMPTY and is
//   rebuilt from the sites' live state alone. Either way recovery ends
//   with resync_shard + a wire drain, which for the full-sync protocols
//   rebuilds the exact answer (every window minimum / bottom-s member
//   is in its own site's current local state) — so even a restore that
//   exhausted its retries converges, and the checkpoint image's role is
//   to bound the lazy protocols' staleness and preserve pre-window
//   history (infinite protocol) rather than to be a single point of
//   failure.
//
// Elastic topology rides the same image store: drain_and_remove_shard()
// checkpoints the departing (last) shard before Deployment::remove_shard
// re-derives its partition on the survivors, returning the drain image
// to the caller; add_shard() grows the store in step with the ring.
//
// Everything is deterministic: no wall clock, no randomness — recovery
// outcomes are a pure function of (plan, stream, network) seeds, which
// is what lets the chaos tests pin bit-identity across reruns.
#pragma once

#include <cstdint>
#include <functional>
#include <stdexcept>
#include <utility>
#include <vector>

#include "core/checkpoint.h"
#include "obs/metrics.h"
#include "sim/message.h"

namespace dds::core {

struct SupervisorConfig {
  /// Snapshot every live shard each time `slot % cadence == 0` (>= 1).
  sim::Slot checkpoint_cadence = 16;
  /// Slots a shard must be continuously dead before auto-recovery
  /// kicks in (the failure-detector timeout).
  sim::Slot detect_after = 2;
  /// Restore attempts per recovery before degrading to resync-only.
  std::uint32_t max_restore_attempts = 3;
  /// Exponential backoff between attempts: base << attempt, capped.
  sim::Slot backoff_base = 1;
  sim::Slot backoff_cap = 8;
  /// Drive recovery from on_slot() detection. Off, recover() only runs
  /// when called explicitly (scripted-respawn chaos plans).
  bool auto_recover = true;
};

/// Simulated backoff before retry `attempt` (0-based): base << attempt,
/// saturating at `cap`.
sim::Slot backoff_delay(const SupervisorConfig& config, std::uint32_t attempt);

struct RecoveryStats {
  std::uint64_t checkpoints = 0;        ///< per-shard snapshots taken
  std::uint64_t checkpoint_bytes = 0;   ///< cumulative image bytes
  std::uint64_t restores_attempted = 0; ///< image transfer+restore tries
  std::uint64_t restore_failures = 0;   ///< tries rejected (verify/parse)
  std::uint64_t recoveries = 0;         ///< recoveries restored from image
  std::uint64_t degraded_recoveries = 0; ///< recoveries resync-only
  std::uint64_t backoff_slots = 0;      ///< simulated retry wait, total
  /// Latency of the most recent recovery, in slots: detection wait +
  /// simulated backoff (0 until a recovery happened).
  std::uint64_t last_recovery_latency = 0;
  std::uint64_t total_recovery_latency = 0;
};

template <typename DeploymentT>
class Supervisor {
 public:
  using ImageFilter =
      std::function<void(std::uint32_t shard, CheckpointImage& image)>;

  explicit Supervisor(DeploymentT& deployment, SupervisorConfig config = {})
      : deployment_(deployment), config_(config) {
    if (config_.checkpoint_cadence == 0) {
      throw std::invalid_argument("Supervisor: checkpoint_cadence >= 1");
    }
    images_.resize(deployment_.num_shards());
    down_since_.assign(deployment_.num_shards(), kNotDown);
  }

  /// Models the image transfer of a restore: the filter sees (and may
  /// mutate) the copy of the latest image each restore attempt reads.
  /// Wire ChaosController::mangle here to exercise the retry path.
  void set_image_filter(ImageFilter filter) { filter_ = std::move(filter); }

  /// The supervision tick — call at every slot boundary, monotone `t`.
  void on_slot(sim::Slot t) {
    sync_topology();
    if (t % config_.checkpoint_cadence == 0) checkpoint_now(t);
    for (std::uint32_t j = 0; j < deployment_.num_shards(); ++j) {
      if (deployment_.shard_alive(j)) {
        down_since_[j] = kNotDown;
        continue;
      }
      if (down_since_[j] == kNotDown) down_since_[j] = t;  // just noticed
      if (config_.auto_recover && t >= down_since_[j] + config_.detect_after) {
        recover(j, t);
      }
    }
  }

  /// Exact down-slot bookkeeping for scripted kills (on_slot would
  /// otherwise date the outage from its next tick).
  void notify_killed(std::uint32_t shard, sim::Slot t) {
    sync_topology();
    if (shard < down_since_.size()) down_since_[shard] = t;
  }

  /// Snapshots every live shard's coordinator now (also runs on the
  /// cadence). Dead shards keep their previous image.
  void checkpoint_now(sim::Slot /*t*/) {
    sync_topology();
    for (std::uint32_t j = 0; j < deployment_.num_shards(); ++j) {
      if (!deployment_.shard_alive(j)) continue;
      images_[j] = checkpoint(deployment_.coordinator(j));
      ++stats_.checkpoints;
      stats_.checkpoint_bytes += images_[j].size();
    }
  }

  /// Respawns shard `shard` and runs the verified-restore protocol
  /// against its latest image; degrades to resync-only after
  /// max_restore_attempts failures. Returns true if the image restored
  /// (false covers both no-image-yet and degraded recoveries — the
  /// shard is back and resynced either way).
  bool recover(std::uint32_t shard, sim::Slot t) {
    sync_topology();
    if (shard >= deployment_.num_shards()) {
      throw std::out_of_range("Supervisor::recover");
    }
    const sim::Slot down = down_since_[shard] == kNotDown
                               ? t
                               : down_since_[shard];
    deployment_.respawn_shard(shard);
    bool restored = false;
    std::uint64_t waited = 0;
    if (!images_[shard].empty()) {
      for (std::uint32_t attempt = 0;
           attempt < config_.max_restore_attempts && !restored; ++attempt) {
        if (attempt > 0) {
          const sim::Slot delay = backoff_delay(config_, attempt - 1);
          waited += delay;
          stats_.backoff_slots += delay;
        }
        ++stats_.restores_attempted;
        CheckpointImage transfer = images_[shard];  // copy: one "send"
        if (filter_) filter_(shard, transfer);
        if (verify_checkpoint_image(transfer) &&
            restore_into(deployment_.coordinator_mut(shard), transfer)) {
          restored = true;
        } else {
          ++stats_.restore_failures;
        }
      }
    }
    if (restored) {
      ++stats_.recoveries;
    } else {
      ++stats_.degraded_recoveries;
    }
    // Exactness comes from the resync regardless of the image: every
    // site re-offers its current local state to the fresh coordinator.
    deployment_.resync_shard(shard);
    deployment_.bus().finish();
    down_since_[shard] = kNotDown;
    const std::uint64_t latency = (t >= down ? t - down : 0) + waited;
    stats_.last_recovery_latency = latency;
    stats_.total_recovery_latency += latency;
    return restored;
  }

  /// Checkpoints the departing (last) shard, shrinks the deployment,
  /// and returns the drain image — the survivors re-derive its
  /// partition via migration + resync; the image is the caller's
  /// lossless record of the shard's final coordinator state.
  CheckpointImage drain_and_remove_shard() {
    sync_topology();
    const std::uint32_t last = deployment_.num_shards() - 1;
    CheckpointImage drained = checkpoint(deployment_.coordinator(last));
    deployment_.remove_shard();
    sync_topology();
    return drained;
  }

  /// Grows the deployment and the image store together.
  void add_shard() {
    deployment_.add_shard();
    sync_topology();
  }

  const RecoveryStats& stats() const noexcept { return stats_; }
  const SupervisorConfig& config() const noexcept { return config_; }

  /// Latest stored image for `shard` (empty until the first cadence
  /// tick or checkpoint_now).
  const CheckpointImage& latest_image(std::uint32_t shard) const {
    return images_.at(shard);
  }

  void bind_observability(obs::MetricsRegistry* registry) {
    if (registry == nullptr) return;
    registry->counter("supervisor.checkpoints", &stats_.checkpoints);
    registry->counter("supervisor.checkpoint_bytes", &stats_.checkpoint_bytes);
    registry->counter("supervisor.restores_attempted",
                      &stats_.restores_attempted);
    registry->counter("supervisor.restore_failures", &stats_.restore_failures);
    registry->counter("supervisor.recoveries", &stats_.recoveries);
    registry->counter("supervisor.degraded_recoveries",
                      &stats_.degraded_recoveries);
    registry->counter("supervisor.backoff_slots", &stats_.backoff_slots);
  }

 private:
  static constexpr sim::Slot kNotDown = static_cast<sim::Slot>(-1);

  /// Follows elastic resizes: the image store and down-tracking stay
  /// parallel to the deployment's shard vector.
  void sync_topology() {
    images_.resize(deployment_.num_shards());
    down_since_.resize(deployment_.num_shards(), kNotDown);
  }

  DeploymentT& deployment_;
  SupervisorConfig config_;
  std::vector<CheckpointImage> images_;  ///< latest good image per shard
  std::vector<sim::Slot> down_since_;    ///< kNotDown while alive
  ImageFilter filter_;
  RecoveryStats stats_;
};

}  // namespace dds::core
