// Sliding-window sampling with sample size s > 1 — the extension the
// paper calls "straightforward" (Section 4.1): run s independent copies
// of the single-sample protocol, copy j using hash function j of an
// indexed family and tagging its bus traffic instance = j. The result is
// a with-replacement distinct sample of the window; distinct-union of a
// slightly larger s gives without-replacement (Chapter 3's reduction).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/sliding_coordinator.h"
#include "core/sliding_site.h"
#include "hash/hash_function.h"

namespace dds::core {

class MultiSlidingSite final : public sim::StreamNode {
 public:
  MultiSlidingSite(sim::NodeId id, sim::NodeId coordinator, sim::Slot window,
                   const hash::HashFamily& family, std::size_t sample_size,
                   std::uint64_t seed, treap::HybridConfig substrate = {});

  void on_slot_begin(sim::Slot t, net::Transport& bus) override;
  void on_element(stream::Element element, sim::Slot t, net::Transport& bus) override;
  void on_element_batch(std::span<const std::uint64_t> elements, sim::Slot t,
                        net::Transport& bus) override;
  void on_message(const sim::Message& msg, net::Transport& bus) override;

  /// Total candidate tuples across the s copies.
  std::size_t state_size() const noexcept override;

  const SlidingWindowSite& copy(std::size_t j) const { return copies_[j]; }
  std::size_t num_copies() const noexcept { return copies_.size(); }

 private:
  std::vector<SlidingWindowSite> copies_;
  /// Batched-hash buffer: copies x elements, copy-major (copy j's hash
  /// for element i at [j * n + i]) so each copy's family member hashes
  /// the whole batch in one kernel call.
  std::vector<std::uint64_t> hash_scratch_;
};

class MultiSlidingCoordinator final : public sim::Node {
 public:
  MultiSlidingCoordinator(sim::NodeId id, std::size_t sample_size);

  void on_message(const sim::Message& msg, net::Transport& bus) override;
  std::size_t state_size() const noexcept override;

  /// The with-replacement window sample at slot `now` (one element per
  /// copy holding a valid sample).
  std::vector<stream::Element> sample(sim::Slot now) const;

  const SlidingWindowCoordinator& copy(std::size_t j) const {
    return copies_[j];
  }
  std::size_t num_copies() const noexcept { return copies_.size(); }

  /// Overwrites copy `j`'s stored tuple from a checkpoint image (see
  /// core/checkpoint.h).
  void restore_copy(std::size_t j,
                    const std::optional<treap::Candidate>& stored) {
    copies_[j].restore(stored);
  }

 private:
  std::vector<SlidingWindowCoordinator> copies_;
};

}  // namespace dds::core
