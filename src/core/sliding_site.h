// Algorithm 3 — the sliding-window sampling algorithm at site i (s = 1).
//
// The site keeps:
//   * (e_i, u_i, t_i): its view of the current sample — element, hash,
//     and the slot at which that sample expires. Refreshed by every
//     coordinator reply; if it expires without news from the coordinator
//     the site falls back to its local view (the paper's lazy scheme).
//   * T_i: the dominance set of local candidates — every element that
//     could still become the minimum-hash element of some future window
//     (treap-backed; expected size H_{|D_i(t,w)|}, Lemma 10).
//
// Per slot t (before arrivals):
//   - expired tuples leave T_i;
//   - if (e_i, u_i, t_i) expired: re-select the minimum-hash candidate
//     from T_i and offer it to the coordinator (lines 21-25).
// Per arriving element e:
//   - refresh/insert e in T_i with expiry t + w, prune dominated tuples
//     (lines 4-11);
//   - if h(e) < u_i: offer (e, t+w) to the coordinator (lines 12-14).
// On coordinator reply (e, t): adopt it as the local sample view and
// insert it into T_i (lines 16-20).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "hash/hash_function.h"
#include "net/transport.h"
#include "sim/node.h"
#include "stream/element.h"
#include "treap/dominance_set.h"

namespace dds::core {

class SlidingWindowSite final : public sim::StreamNode {
 public:
  SlidingWindowSite(sim::NodeId id, sim::NodeId coordinator, sim::Slot window,
                    hash::HashFunction hash_fn, std::uint64_t seed,
                    std::uint32_t instance = 0,
                    treap::HybridConfig substrate = {});

  void on_slot_begin(sim::Slot t, net::Transport& bus) override;
  void on_element(stream::Element element, sim::Slot t, net::Transport& bus) override;
  void on_element_batch(std::span<const std::uint64_t> elements, sim::Slot t,
                        net::Transport& bus) override;
  void on_message(const sim::Message& msg, net::Transport& bus) override;

  /// on_element with the hash precomputed — the batched ingest entry
  /// (MultiSlidingSite hashes all copies x elements up front, then
  /// feeds each copy through here). Must drain like the batch contract:
  /// the caller drains after each ELEMENT (all copies), not each copy.
  void on_element_hashed(stream::Element element, std::uint64_t hv,
                         sim::Slot t, net::Transport& bus);

  const hash::HashFunction& hash_fn() const noexcept { return hash_fn_; }

  /// The paper's per-site memory metric: |T_i| (Figures 5.7 / 5.9).
  std::size_t state_size() const noexcept override {
    return candidates_.size();
  }

  const treap::DominanceSet& candidates() const noexcept {
    return candidates_;
  }
  std::uint64_t local_threshold() const noexcept { return u_local_; }

 private:
  void offer(stream::Element element, std::uint64_t hash, sim::Slot expiry,
             net::Transport& bus);

  sim::NodeId id_;
  sim::NodeId coordinator_;
  sim::Slot window_;
  hash::HashFunction hash_fn_;
  std::uint32_t instance_;
  treap::DominanceSet candidates_;
  std::vector<std::uint64_t> hash_scratch_;  ///< batched-hash buffer

  // Local sample view (e_i, u_i, t_i). `has_view_` false means no sample
  // yet (u_i = 1 in the paper's initialization).
  bool has_view_ = false;
  stream::Element view_element_ = 0;
  std::uint64_t u_local_ = hash::kHashMax;
  sim::Slot view_expiry_ = 0;
};

}  // namespace dds::core
