#include "core/infinite_coordinator.h"

namespace dds::core {

InfiniteWindowCoordinator::InfiniteWindowCoordinator(sim::NodeId id,
                                                     std::size_t sample_size,
                                                     std::uint32_t instance,
                                                     bool eager_threshold)
    : id_(id),
      instance_(instance),
      eager_threshold_(eager_threshold),
      sample_(sample_size) {}

void InfiniteWindowCoordinator::restore(
    const std::vector<BottomSSample::Entry>& entries,
    std::uint64_t threshold_value) {
  sample_ = BottomSSample(sample_.capacity());
  for (const auto& entry : entries) sample_.offer(entry.element, entry.hash);
  u_ = threshold_value;
}

void InfiniteWindowCoordinator::on_message(const sim::Message& msg,
                                           net::Transport& bus) {
  if (msg.type != sim::MsgType::kReportElement || msg.instance != instance_) {
    return;
  }
  if (msg.b < u_) {
    const auto outcome = sample_.offer(msg.a, msg.b);
    // Algorithm 2 lines 5-8 insert the element and then discard the
    // largest of the s+1, so u tightens to max(P) on EVERY accepted
    // report of a new element once the sample is full — including one
    // whose hash is the largest of the s+1 (our kRejected outcome,
    // where the "discarded" element is the incoming one itself).
    // Skipping the kRejected update would leave u at its initial 1
    // until some element beat the current maximum, and every site
    // would keep reporting everything in the meantime.
    if (outcome == BottomSSample::Outcome::kReplaced ||
        outcome == BottomSSample::Outcome::kRejected) {
      u_ = sample_.max_hash();
    } else if (eager_threshold_ && sample_.full()) {
      u_ = sample_.max_hash();
    }
  }
  // Algorithm 2 line 11: reply with the current u unconditionally. The
  // reply also piggy-backs whether the reported element now sits in the
  // sample (reply.a) — free information in a constant-size message that
  // the optional duplicate-suppression site extension uses.
  sim::Message reply;
  reply.from = id_;
  reply.to = msg.from;
  reply.type = sim::MsgType::kThresholdReply;
  reply.instance = instance_;
  reply.a = sample_.contains(msg.a) ? 1 : 0;
  reply.b = u_;
  bus.send(reply);
}

}  // namespace dds::core
