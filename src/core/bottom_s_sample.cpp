#include "core/bottom_s_sample.h"

#include <stdexcept>

namespace dds::core {

BottomSSample::BottomSSample(std::size_t capacity) : capacity_(capacity) {
  if (capacity == 0) {
    throw std::invalid_argument("BottomSSample: capacity must be positive");
  }
}

BottomSSample::Outcome BottomSSample::offer(stream::Element element,
                                            std::uint64_t hash) {
  if (members_.contains(element)) return Outcome::kDuplicate;
  if (by_hash_.size() < capacity_) {
    by_hash_.emplace(hash, element);
    members_.insert(element);
    return Outcome::kInserted;
  }
  auto last = std::prev(by_hash_.end());
  if (hash >= last->first) return Outcome::kRejected;
  members_.erase(last->second);
  by_hash_.erase(last);
  by_hash_.emplace(hash, element);
  members_.insert(element);
  return Outcome::kReplaced;
}

std::vector<BottomSSample::Entry> BottomSSample::entries() const {
  std::vector<Entry> out;
  out.reserve(by_hash_.size());
  for (const auto& [hash, element] : by_hash_) {
    out.push_back(Entry{element, hash});
  }
  return out;
}

std::vector<stream::Element> BottomSSample::elements() const {
  std::vector<stream::Element> out;
  out.reserve(by_hash_.size());
  for (const auto& [hash, element] : by_hash_) out.push_back(element);
  return out;
}

}  // namespace dds::core
