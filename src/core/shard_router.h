// Consistent-hash routing of the element space over N coordinator
// shards.
//
// The paper's protocols put one coordinator in front of k sites; the
// scale direction is to shard that coordinator so its per-report work
// and sample memory spread over N independent instances. Correctness
// rides on a partition of the ELEMENT space: every occurrence of element
// e — at any site, any time — routes to the same shard, so shard j runs
// the unmodified protocol over the substream h^-1(shard j) and its
// sample is the exact bottom-s of its partition. A query-time merge
// (take the bottom-s of the union of shard samples) then yields exactly
// the global bottom-s, because every global bottom-s member is in its
// own shard's bottom-s.
//
// The ring is classic consistent hashing (Karger et al. 1997):
// `replicas` virtual points per shard, placed by mixing (shard, replica)
// through mix64; an element routes to the first point clockwise of
// mix64(e ^ salt). Growing N to N+1 therefore remaps only ~1/(N+1) of
// the element space — existing shards keep most of their thresholds
// warm — which the partition tests quantify.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "stream/element.h"

namespace dds::core {

class ShardRouter {
 public:
  /// A ring for `num_shards` shards (>= 1). `seed` decorrelates the
  /// ring from the protocol hash functions; `replicas` virtual points
  /// per shard trade lookup table size for balance.
  explicit ShardRouter(std::uint32_t num_shards, std::uint64_t seed = 1,
                       std::uint32_t replicas = 64);

  /// Shard owning element `e`. O(1) for one shard, O(log(N*replicas))
  /// otherwise.
  std::uint32_t shard_of(stream::Element e) const noexcept;

  /// Alias of shard_of() — "who owns e" is how call sites read.
  std::uint32_t owner(stream::Element e) const noexcept {
    return shard_of(e);
  }

  std::uint32_t num_shards() const noexcept { return num_shards_; }

  /// Grows the ring to N+1 shards in place. Ring points depend only on
  /// (seed, shard, replica), so the grown ring is IDENTICAL to a fresh
  /// ShardRouter(N+1, seed, replicas) — and only the element regions
  /// claimed by the newcomer's points move (~1/(N+1) of the space; the
  /// elastic tests measure it via disagreement()).
  void add_shard();

  /// Shrinks the ring to N-1 shards in place (N >= 2, throws
  /// std::logic_error otherwise). Only elements owned by the departing
  /// LAST shard move (~1/N of the space); surviving shard indices are
  /// unchanged, which is why only the last shard may leave.
  void remove_last_shard();

  /// Fraction of `probes` sampled elements whose shard differs between
  /// this ring and `other` (the remap cost of a resize; test hook).
  double disagreement(const ShardRouter& other, std::uint64_t probes) const;

 private:
  struct Point {
    std::uint64_t position;
    std::uint32_t shard;
  };

  void rebuild();

  std::uint32_t num_shards_;
  std::uint32_t replicas_;
  std::uint64_t salt_;
  std::vector<Point> ring_;  // sorted by position
};

/// A small LRU cache over ShardRouter::owner(), for callers that route
/// every arrival (RoutedSite): real streams are heavy on repeated
/// elements, so most ring binary searches can be answered from a few
/// hundred cached (element -> shard) pairs. 2-way set-associative with
/// per-set LRU; the ring is immutable for the router's lifetime, so
/// entries never go stale. Hit statistics feed the bench tables
/// (abl11/abl12 "route hit%" column).
class ShardCache {
 public:
  /// `entries` is rounded up to a power of two (>= 2); memory is
  /// entries * 16 bytes.
  explicit ShardCache(std::size_t entries = 256);

  /// Cached router.owner(e).
  std::uint32_t owner(const ShardRouter& router, stream::Element e);

  /// Invalidates every entry (statistics survive). Required after the
  /// ring resizes — an elastic add/remove_shard makes cached owners
  /// stale, the one exception to the "ring is immutable" contract above.
  void clear();

  std::uint64_t hits() const noexcept { return hits_; }
  std::uint64_t lookups() const noexcept { return lookups_; }

  /// Full-state save/restore for speculation snapshots (RoutedSite).
  /// The whole cache — ways, MRU bits, and statistics — must round-trip:
  /// a rolled-back site that re-executed against a warmer cache would
  /// report different hit counts than a serial run. Geometry (entry
  /// count) is fixed per instance, so only contents are serialized.
  void save_state(std::vector<std::uint8_t>& out) const;
  void restore_state(std::span<const std::uint8_t> image);

 private:
  struct Entry {
    stream::Element element = 0;
    std::uint32_t shard = 0;
    bool valid = false;
  };

  std::size_t set_mask_;       // (num_sets - 1); each set holds 2 ways
  std::vector<Entry> ways_;    // 2 * num_sets, set i at [2i, 2i+1]
  std::vector<std::uint8_t> mru_;  // per set: which way was used last
  std::uint64_t hits_ = 0;
  std::uint64_t lookups_ = 0;
};

}  // namespace dds::core
