// Consistent-hash routing of the element space over N coordinator
// shards.
//
// The paper's protocols put one coordinator in front of k sites; the
// scale direction is to shard that coordinator so its per-report work
// and sample memory spread over N independent instances. Correctness
// rides on a partition of the ELEMENT space: every occurrence of element
// e — at any site, any time — routes to the same shard, so shard j runs
// the unmodified protocol over the substream h^-1(shard j) and its
// sample is the exact bottom-s of its partition. A query-time merge
// (take the bottom-s of the union of shard samples) then yields exactly
// the global bottom-s, because every global bottom-s member is in its
// own shard's bottom-s.
//
// The ring is classic consistent hashing (Karger et al. 1997):
// `replicas` virtual points per shard, placed by mixing (shard, replica)
// through mix64; an element routes to the first point clockwise of
// mix64(e ^ salt). Growing N to N+1 therefore remaps only ~1/(N+1) of
// the element space — existing shards keep most of their thresholds
// warm — which the partition tests quantify.
#pragma once

#include <cstdint>
#include <vector>

#include "stream/element.h"

namespace dds::core {

class ShardRouter {
 public:
  /// A ring for `num_shards` shards (>= 1). `seed` decorrelates the
  /// ring from the protocol hash functions; `replicas` virtual points
  /// per shard trade lookup table size for balance.
  explicit ShardRouter(std::uint32_t num_shards, std::uint64_t seed = 1,
                       std::uint32_t replicas = 64);

  /// Shard owning element `e`. O(1) for one shard, O(log(N*replicas))
  /// otherwise.
  std::uint32_t shard_of(stream::Element e) const noexcept;

  std::uint32_t num_shards() const noexcept { return num_shards_; }

  /// Fraction of `probes` sampled elements whose shard differs between
  /// this ring and `other` (the remap cost of a resize; test hook).
  double disagreement(const ShardRouter& other, std::uint64_t probes) const;

 private:
  struct Point {
    std::uint64_t position;
    std::uint32_t shard;
  };

  std::uint32_t num_shards_;
  std::uint64_t salt_;
  std::vector<Point> ring_;  // sorted by position
};

}  // namespace dds::core
