#include "core/supervisor.h"

namespace dds::core {

sim::Slot backoff_delay(const SupervisorConfig& config, std::uint32_t attempt) {
  // Saturate the shift before it can overflow: past ~63 doublings the
  // cap has long since won.
  if (attempt >= 63) return config.backoff_cap;
  const sim::Slot delay = config.backoff_base << attempt;
  return delay > config.backoff_cap ? config.backoff_cap : delay;
}

}  // namespace dds::core
