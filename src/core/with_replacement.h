// Distinct sampling WITH replacement (Chapter 3, "Sampling With
// Replacement"): run s parallel, independent copies of the
// single-element (s = 1) sampling algorithm, each with its own hash
// function from an indexed family. Copy j's traffic is tagged
// instance = j on the shared bus. Message cost is O(sk log d e) — close
// to the without-replacement cost O(ks log(de/s)) — and the union of a
// slightly larger with-replacement sample yields a without-replacement
// sample (the paper's reduction), so the lower bound covers both.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/infinite_coordinator.h"
#include "core/infinite_site.h"
#include "hash/hash_function.h"
#include "net/transport.h"
#include "sim/node.h"

namespace dds::core {

class WithReplacementSite final : public sim::StreamNode {
 public:
  WithReplacementSite(sim::NodeId id, sim::NodeId coordinator,
                      const hash::HashFamily& family, std::size_t sample_size);

  void on_element(stream::Element element, sim::Slot t, net::Transport& bus) override;
  void on_element_batch(std::span<const std::uint64_t> elements, sim::Slot t,
                        net::Transport& bus) override;
  void on_message(const sim::Message& msg, net::Transport& bus) override;
  std::size_t state_size() const noexcept override { return copies_.size(); }

  /// Speculation snapshots delegate to the s independent copies (each a
  /// capable InfiniteWindowSite); hash_scratch_ is per-batch scratch.
  bool speculation_capable() const noexcept override { return true; }
  void save_speculation_state(std::vector<std::uint8_t>& out) const override;
  void restore_speculation_state(
      std::span<const std::uint8_t> image) override;

 private:
  std::vector<InfiniteWindowSite> copies_;
  std::vector<std::uint64_t> hash_scratch_;  ///< copy-major, copies x batch
};

class WithReplacementCoordinator final : public sim::Node {
 public:
  WithReplacementCoordinator(sim::NodeId id, const hash::HashFamily& family,
                             std::size_t sample_size);

  void on_message(const sim::Message& msg, net::Transport& bus) override;
  std::size_t state_size() const noexcept override;

  /// The with-replacement sample: copy j's current element, for every
  /// copy that has observed at least one element. May contain repeats —
  /// that is the point of with-replacement sampling.
  std::vector<stream::Element> sample() const;

  /// Copy j's single-element sampler (shard-merge and tests read its
  /// sample entries, which carry the hash values).
  const InfiniteWindowCoordinator& copy(std::size_t j) const {
    return copies_[j];
  }
  std::size_t num_copies() const noexcept { return copies_.size(); }

 private:
  std::vector<InfiniteWindowCoordinator> copies_;
};

}  // namespace dds::core
