#include "core/sliding_site.h"

namespace dds::core {

SlidingWindowSite::SlidingWindowSite(sim::NodeId id, sim::NodeId coordinator,
                                     sim::Slot window,
                                     hash::HashFunction hash_fn,
                                     std::uint64_t seed,
                                     std::uint32_t instance,
                                     treap::HybridConfig substrate)
    : id_(id),
      coordinator_(coordinator),
      window_(window),
      hash_fn_(std::move(hash_fn)),
      instance_(instance),
      candidates_(seed, substrate) {}

void SlidingWindowSite::on_slot_begin(sim::Slot t, net::Transport& bus) {
  candidates_.expire(t);
  if (has_view_ && view_expiry_ <= t) {
    // Lines 21-25: the sample view expired; fall back to the local
    // minimum and offer it to the coordinator.
    if (auto c = candidates_.min_hash()) {
      view_element_ = c->element;
      u_local_ = c->hash;
      view_expiry_ = c->expiry;
      offer(c->element, c->hash, c->expiry, bus);
    } else {
      has_view_ = false;
      u_local_ = hash::kHashMax;
    }
  }
}

void SlidingWindowSite::on_element(stream::Element element, sim::Slot t,
                                   net::Transport& bus) {
  on_element_hashed(element, hash_fn_(element), t, bus);
}

void SlidingWindowSite::on_element_hashed(stream::Element element,
                                          std::uint64_t hv, sim::Slot t,
                                          net::Transport& bus) {
  const sim::Slot expiry = t + window_;
  candidates_.observe(element, hv, expiry);
  if (hv < u_local_) {
    offer(element, hv, expiry, bus);
  }
}

void SlidingWindowSite::on_element_batch(std::span<const std::uint64_t> elements,
                                         sim::Slot t, net::Transport& bus) {
  const std::size_t n = elements.size();
  if (hash_scratch_.size() < n) hash_scratch_.resize(n);
  hash_fn_.hash_batch(elements.data(), n, hash_scratch_.data());
  for (std::size_t i = 0; i < n; ++i) {
    if (i + 1 < n) candidates_.prefetch(elements[i + 1]);
    on_element_hashed(elements[i], hash_scratch_[i], t, bus);
    // Per-element drain boundary: a synchronous reply must update
    // u_local_ before the next element decides whether to offer.
    bus.drain();
  }
}

void SlidingWindowSite::on_message(const sim::Message& msg, net::Transport& /*bus*/) {
  if (msg.type != sim::MsgType::kSlidingReply || msg.instance != instance_) {
    return;
  }
  // Lines 16-20: adopt the coordinator's sample as the local view and
  // remember it as a candidate.
  has_view_ = true;
  view_element_ = msg.a;
  u_local_ = msg.b;
  view_expiry_ = static_cast<sim::Slot>(msg.c);
  candidates_.insert(msg.a, msg.b, static_cast<sim::Slot>(msg.c));
}

void SlidingWindowSite::offer(stream::Element element, std::uint64_t hash,
                              sim::Slot expiry, net::Transport& bus) {
  sim::Message msg;
  msg.from = id_;
  msg.to = coordinator_;
  msg.type = sim::MsgType::kSlidingReport;
  msg.instance = instance_;
  msg.a = element;
  msg.b = hash;
  msg.c = static_cast<std::uint64_t>(expiry);
  bus.send(msg);
}

}  // namespace dds::core
