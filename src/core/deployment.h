// The deployment builder — one templated assembly line for every
// protocol facade.
//
// Historically each protocol (and each baseline) hand-wired its own
// transport + sites + coordinator + runner plumbing in a copy-pasted
// facade class. Deployment<Traits> replaces all of them: a Traits
// struct declares the protocol's node types, how to construct them, and
// what execution features it supports (per-slot expiry callbacks,
// coordinator sharding, sharded-engine site batches), and the builder
// does the rest:
//
//   transport  <- net::make_transport(num_sites, num_shards, network)
//   coordinator shards  <- Traits::make_coordinator, one per shard
//   sites      <- Traits::make_site — wrapped in a RoutedSite when the
//                 coordinator is sharded, so every occurrence of an
//                 element talks to the shard that owns it
//   engine     <- sim::make_engine (SerialEngine, or ShardedEngine when
//                 config.num_threads > 1 and the protocol allows)
//
// One config serves every protocol: SystemConfig unifies the old
// SystemConfig / SlidingSystemConfig pair and adds the num_shards /
// num_threads scale knobs.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <type_traits>
#include <utility>
#include <vector>

#include "core/shard_router.h"
#include "hash/hash_function.h"
#include "net/config.h"
#include "net/factory.h"
#include "net/transport.h"
#include "obs/observability.h"
#include "sim/engine.h"
#include "treap/dominance_set.h"
#include "util/rng.h"

namespace dds::core {

/// Shared knobs for every deployment. The first four fields keep their
/// historical order — positional `{sites, s, hash, seed}` initializers
/// appear throughout the tests and benches.
struct SystemConfig {
  std::uint32_t num_sites = 5;
  std::size_t sample_size = 10;
  hash::HashKind hash_kind = hash::HashKind::kMurmur2;
  std::uint64_t seed = 1;
  /// Wire model. Defaults to the paper's idealized network, served by
  /// the legacy zero-delay sim::Bus; any nontrivial setting deploys on
  /// the event-driven net::SimNetwork.
  net::NetworkConfig network;
  /// Window length in slots (sliding-window protocols only).
  sim::Slot window = 100;
  /// Coordinator shards (consistent hashing over the element space).
  /// Protocols whose Traits do not support it reject num_shards > 1.
  std::uint32_t num_shards = 1;
  /// Site worker threads; >1 deploys on the ShardedEngine when the
  /// protocol and transport allow (see sim::make_engine), and falls
  /// back to the serial engine otherwise. Realistic wires with a
  /// positive delivery horizon run the engine's lockstep mode.
  std::uint32_t num_threads = 1;
  /// ShardedEngine replay->worker wakeup coalescing (see
  /// sim::EngineConfig::coalesce_wakeups; abl11 ablates it).
  bool coalesce_wakeups = true;
  /// Hybrid-substrate migration thresholds for the sliding-window
  /// per-site candidate sets (flat ring below, pooled treap above; see
  /// treap/dominance_set.h). The defaults fit the Lemma-10 steady
  /// state; benches override them to ablate the substrates.
  treap::HybridConfig substrate{};
  /// Observability switches (off by default: nothing is registered and
  /// no tracer exists — see obs/observability.h for the cost argument).
  obs::ObservabilityConfig observability{};
};

/// The sliding-window protocols share the unified config; this type
/// only flips the defaults their tests and benches have always assumed.
struct SlidingSystemConfig : SystemConfig {
  SlidingSystemConfig() {
    num_sites = 10;
    sample_size = 1;
  }
};

/// Site wrapper for sharded-coordinator deployments: one inner protocol
/// site per coordinator shard. Arrivals route by element through the
/// ShardRouter (so shard j sees exactly its partition's substream),
/// fronted by a per-site ShardCache — real streams repeat elements, so
/// most ring lookups come out of the cache (the bench tables surface
/// the hit rate). Coordinator replies route back by sender id. Per-slot
/// expiry runs on every copy. A RoutedSite is driven by exactly one
/// engine thread, so the cache needs no synchronization.
template <typename Site>
class RoutedSite final : public sim::StreamNode {
 public:
  RoutedSite(const ShardRouter& router, sim::NodeId first_coordinator)
      : router_(router), first_coordinator_(first_coordinator) {}

  void add_copy(std::unique_ptr<Site> copy) {
    copies_.push_back(std::move(copy));
  }

  void on_element(std::uint64_t element, sim::Slot t,
                  net::Transport& bus) override {
    copies_[route_cache_.owner(router_, element)]->on_element(element, t, bus);
  }

  void on_slot_begin(sim::Slot t, net::Transport& bus) override {
    for (auto& copy : copies_) copy->on_slot_begin(t, bus);
  }

  void on_message(const sim::Message& msg, net::Transport& bus) override {
    copies_[msg.from - first_coordinator_]->on_message(msg, bus);
  }

  std::size_t state_size() const noexcept override {
    std::size_t total = 0;
    for (const auto& copy : copies_) total += copy->state_size();
    return total;
  }

  Site& copy(std::size_t shard) { return *copies_[shard]; }
  const Site& copy(std::size_t shard) const { return *copies_[shard]; }

  const ShardCache& route_cache() const noexcept { return route_cache_; }

 private:
  const ShardRouter& router_;
  sim::NodeId first_coordinator_;
  std::vector<std::unique_ptr<Site>> copies_;
  ShardCache route_cache_;
};

/// Assembles one complete deployment — transport, coordinator shard(s),
/// sites (routed when sharded), and execution engine — from a
/// SystemConfig, for any protocol described by a Traits struct (node
/// types, constructor recipes, and capability flags). The protocol
/// facades (InfiniteSystem, SlidingSystem, ...) are aliases of this
/// template.
template <typename Traits>
class Deployment {
 public:
  using Site = typename Traits::Site;
  using Coordinator = typename Traits::Coordinator;
  using Options = typename Traits::Options;

  explicit Deployment(const SystemConfig& config)
      : Deployment(config, Options{}) {}

  Deployment(const SystemConfig& config, Options options)
      : config_(config),
        obs_(std::make_unique<obs::Observability>(config.observability)),
        shared_(Traits::make_shared(config)),
        router_(checked_shards(config),
                util::derive_seed(config.seed, 0x5168D5ULL)),
        transport_(net::make_transport(config.num_sites, config.network,
                                       router_.num_shards())) {
    const std::uint32_t shards = router_.num_shards();
    coordinators_.reserve(shards);
    for (std::uint32_t j = 0; j < shards; ++j) {
      coordinators_.push_back(Traits::make_coordinator(
          transport_->coordinator_id(j), j, config_, shared_, options));
      transport_->attach(transport_->coordinator_id(j),
                         coordinators_.back().get());
    }
    stream_nodes_.reserve(config_.num_sites);
    for (std::uint32_t i = 0; i < config_.num_sites; ++i) {
      if (shards == 1) {
        sites_.push_back(Traits::make_site(i, transport_->coordinator_id(0),
                                           config_, shared_, options));
        stream_nodes_.push_back(sites_.back().get());
      } else {
        auto routed = std::make_unique<RoutedSite<Site>>(
            router_, transport_->coordinator_id(0));
        for (std::uint32_t j = 0; j < shards; ++j) {
          routed->add_copy(Traits::make_site(i, transport_->coordinator_id(j),
                                             config_, shared_, options));
        }
        stream_nodes_.push_back(routed.get());
        routed_sites_.push_back(std::move(routed));
      }
      transport_->attach(i, stream_nodes_.back());
    }
    sim::EngineConfig engine_config;
    engine_config.num_threads =
        Traits::kShardableSites ? config_.num_threads : 1;
    engine_config.coalesce_wakeups = config_.coalesce_wakeups;
    engine_ = sim::make_engine(*transport_, stream_nodes_,
                               Traits::kInvokeSlotBegin, engine_config);
    if (obs_->config().enabled()) bind_observability();
  }

  /// Compat sugar: protocol options passed positionally, e.g.
  /// InfiniteSystem(config, /*eager_threshold=*/true).
  template <typename A0, typename... An,
            typename = std::enable_if_t<
                !std::is_same_v<std::remove_cvref_t<A0>, Options>>>
  Deployment(const SystemConfig& config, A0&& a0, An&&... an)
      : Deployment(config,
                   Options{std::forward<A0>(a0), std::forward<An>(an)...}) {}

  // ---- plumbing access ---------------------------------------------
  net::Transport& bus() noexcept { return *transport_; }
  const net::Transport& bus() const noexcept { return *transport_; }
  /// The execution engine ("runner" is the historical name).
  sim::Engine& runner() noexcept { return *engine_; }
  const sim::Engine& engine() const noexcept { return *engine_; }

  /// Feeds the whole source through the deployment; returns arrivals
  /// processed. Message counts accumulate in bus().counters().
  std::uint64_t run(sim::ArrivalSource& source) { return engine_->run(source); }

  std::uint32_t num_sites() const noexcept { return config_.num_sites; }
  std::uint32_t num_shards() const noexcept { return router_.num_shards(); }
  const ShardRouter& router() const noexcept { return router_; }
  const SystemConfig& config() const noexcept { return config_; }

  // ---- node access -------------------------------------------------
  const Coordinator& coordinator(std::size_t shard = 0) const {
    return *coordinators_[shard];
  }
  /// Mutable coordinator access — the checkpoint/restore path writes
  /// restored state straight into a fresh deployment's shards.
  Coordinator& coordinator_mut(std::size_t shard = 0) {
    return *coordinators_[shard];
  }

  /// Site i's protocol node (its shard-`shard` copy when the
  /// coordinator is sharded; there is exactly one copy otherwise).
  Site& site(std::size_t i, std::size_t shard = 0) {
    return routed_sites_.empty() ? *sites_[i] : routed_sites_[i]->copy(shard);
  }
  const Site& site(std::size_t i, std::size_t shard = 0) const {
    return routed_sites_.empty() ? *sites_[i] : routed_sites_[i]->copy(shard);
  }

  // ---- aggregate site state (paper's memory metric) ----------------
  /// Sum over sites of their state size — total candidate memory now.
  std::size_t total_site_state() const noexcept {
    std::size_t total = 0;
    for (const auto* node : stream_nodes_) total += node->state_size();
    return total;
  }
  /// Max over sites of their state size.
  std::size_t max_site_state() const noexcept {
    std::size_t mx = 0;
    for (const auto* node : stream_nodes_) {
      mx = std::max(mx, node->state_size());
    }
    return mx;
  }

  // ---- protocol-specific accessors ---------------------------------
  // Bodies instantiate lazily, so each is available exactly when the
  // protocol's Shared state (or merge support) provides it.
  const auto& hash_fn() const { return shared_.hash_fn; }
  const auto& family() const { return shared_.family; }

  /// Query-time merge across coordinator shards (equals the
  /// single-coordinator answer when num_shards == 1; see shard_router.h
  /// for why the merge is exact).
  auto sample() const { return Traits::merge_samples(coordinators_, config_); }

  /// Validity-window-aware merge at slot `now` (sliding protocols):
  /// per-shard window samples are merged through query::merge with
  /// every tuple's expiry checked against the query slot. Same answer
  /// shape as the protocol's unsharded coordinator query. `now` must
  /// be non-decreasing across queries: coordinators whose pools sweep
  /// expiry at query time (the bottom-s window protocol) drop tuples
  /// for good once a later slot has been queried, so asking about the
  /// past returns an under-full sample. Slot-clock-driven callers
  /// satisfy this by construction.
  auto sample(sim::Slot now) const {
    return Traits::merge_samples_at(coordinators_, config_, now);
  }

  // ---- routing-cache statistics (sharded deployments) --------------
  /// ShardCache hits across all routed sites (0 when num_shards == 1 —
  /// unsharded deployments route nothing).
  std::uint64_t route_cache_hits() const noexcept {
    std::uint64_t total = 0;
    for (const auto& site : routed_sites_) total += site->route_cache().hits();
    return total;
  }
  /// ShardCache lookups across all routed sites (== arrivals routed).
  std::uint64_t route_cache_lookups() const noexcept {
    std::uint64_t total = 0;
    for (const auto& site : routed_sites_) {
      total += site->route_cache().lookups();
    }
    return total;
  }

  // ---- observability -----------------------------------------------
  /// The deployment's metrics registry + tracer bundle. Always present;
  /// with SystemConfig::observability all-off it holds neither
  /// instrument and snapshot()/prometheus()/json() return empty.
  obs::Observability& observability() noexcept { return *obs_; }
  const obs::Observability& observability() const noexcept { return *obs_; }

 private:
  /// Registers every layer with the registry and hands the tracer down:
  /// transport (wire counters, delivery/flush/drop events), engine
  /// (waves/stalls, "engine." prefix), deployment (route cache, site
  /// state), and — when the protocol's node types expose them — the
  /// hybrid-substrate and pooled-sweep statistics.
  void bind_observability() {
    obs::MetricsRegistry* registry = obs_->registry();
    obs::Tracer* tracer = obs_->tracer();
    transport_->bind_observability(registry, tracer);
    engine_->bind_observability(registry, tracer);
    if (registry == nullptr) return;
    registry->counter_fn("deployment.route_cache.hits",
                         [this] { return route_cache_hits(); });
    registry->counter_fn("deployment.route_cache.lookups",
                         [this] { return route_cache_lookups(); });
    registry->gauge("site.state.total", [this] {
      return static_cast<double>(total_site_state());
    });
    registry->gauge("site.state.max", [this] {
      return static_cast<double>(max_site_state());
    });
    bind_substrate_metrics(*registry);
  }

  /// Applies `f` to every protocol-level Site object (each shard copy
  /// of every routed site; the site itself when unsharded).
  template <typename F>
  void for_each_protocol_site(F&& f) const {
    if (routed_sites_.empty()) {
      for (const auto& site : sites_) f(*site);
    } else {
      for (const auto& routed : routed_sites_) {
        for (std::uint32_t j = 0; j < router_.num_shards(); ++j) {
          f(routed->copy(j));
        }
      }
    }
  }

  /// Substrate metrics are polled gauges/counter_fns — never hooks in
  /// the substrates themselves (worker threads own them mid-wave, and
  /// the dominance sets should not know about metrics). The registry
  /// only reads at snapshot time, from quiesced points, so the reads
  /// are race-free. `if constexpr` + requires keeps this generic: only
  /// protocols whose node types expose the introspection surface get
  /// the metrics.
  void bind_substrate_metrics(obs::MetricsRegistry& registry) {
    constexpr bool kMultiHybrid = requires(const Site& site) {
      site.copy(std::size_t{0}).candidates().migrations();
      site.num_copies();
    };
    constexpr bool kDirectHybrid = requires(const Site& site) {
      site.candidates().migrations();
    };
    if constexpr (kMultiHybrid || kDirectHybrid) {
      // Sums a per-dominance-set statistic across every hybrid set in
      // the deployment (s copies per protocol site when multi-instance).
      const auto sum_sets = [this](auto stat) {
        std::uint64_t total = 0;
        for_each_protocol_site([&](const Site& site) {
          if constexpr (kMultiHybrid) {
            for (std::size_t j = 0; j < site.num_copies(); ++j) {
              total += static_cast<std::uint64_t>(stat(site.copy(j).candidates()));
            }
          } else {
            total += static_cast<std::uint64_t>(stat(site.candidates()));
          }
        });
        return total;
      };
      registry.counter_fn("substrate.migrations", [sum_sets] {
        return sum_sets([](const auto& set) { return set.migrations(); });
      });
      registry.gauge("substrate.occupancy", [sum_sets] {
        return static_cast<double>(
            sum_sets([](const auto& set) { return set.size(); }));
      });
      registry.gauge("substrate.ring.capacity", [sum_sets] {
        return static_cast<double>(
            sum_sets([](const auto& set) { return set.ring_capacity(); }));
      });
      registry.gauge("substrate.tree.pool_slots", [sum_sets] {
        return static_cast<double>(
            sum_sets([](const auto& set) { return set.tree_pool_slots(); }));
      });
      registry.gauge("substrate.flat_sets", [sum_sets] {
        return static_cast<double>(sum_sets(
            [](const auto& set) { return set.is_flat() ? 1 : 0; }));
      });
    }
    if constexpr (requires(const Coordinator& c) {
                    c.pool().swept_tuples();
                  }) {
      const auto sum_pools = [this](auto stat) {
        std::uint64_t total = 0;
        for (const auto& coordinator : coordinators_) {
          total += static_cast<std::uint64_t>(stat(coordinator->pool()));
        }
        return total;
      };
      registry.counter_fn("substrate.sweep.tuples", [sum_pools] {
        return sum_pools(
            [](const auto& pool) { return pool.swept_tuples(); });
      });
      registry.counter_fn("substrate.sweep.updates", [sum_pools] {
        return sum_pools([](const auto& pool) { return pool.updates(); });
      });
      registry.gauge("substrate.pool.size", [sum_pools] {
        return static_cast<double>(
            sum_pools([](const auto& pool) { return pool.size(); }));
      });
    }
  }
  static std::uint32_t checked_shards(const SystemConfig& config) {
    const std::uint32_t shards = config.num_shards == 0 ? 1 : config.num_shards;
    if (shards > 1 && !Traits::kShardableCoordinator) {
      throw std::invalid_argument(
          "Deployment: this protocol does not support a sharded coordinator");
    }
    return shards;
  }

  SystemConfig config_;
  /// Declared before every instrumented member: the registry holds
  /// pointers INTO those members, but only reads them at snapshot time,
  /// and being first-declared makes obs_ the last member destroyed.
  std::unique_ptr<obs::Observability> obs_;
  typename Traits::Shared shared_;
  ShardRouter router_;
  std::unique_ptr<net::Transport> transport_;
  std::vector<std::unique_ptr<Coordinator>> coordinators_;
  std::vector<std::unique_ptr<Site>> sites_;               // num_shards == 1
  std::vector<std::unique_ptr<RoutedSite<Site>>> routed_sites_;  // > 1
  std::vector<sim::StreamNode*> stream_nodes_;
  std::unique_ptr<sim::Engine> engine_;
};

}  // namespace dds::core
