// The deployment builder — one templated assembly line for every
// protocol facade.
//
// Historically each protocol (and each baseline) hand-wired its own
// transport + sites + coordinator + runner plumbing in a copy-pasted
// facade class. Deployment<Traits> replaces all of them: a Traits
// struct declares the protocol's node types, how to construct them, and
// what execution features it supports (per-slot expiry callbacks,
// coordinator sharding, sharded-engine site batches), and the builder
// does the rest:
//
//   transport  <- net::make_transport(num_sites, num_shards, network)
//   coordinator shards  <- Traits::make_coordinator, one per shard
//   sites      <- Traits::make_site — wrapped in a RoutedSite when the
//                 coordinator is sharded, so every occurrence of an
//                 element talks to the shard that owns it
//   engine     <- sim::make_engine (SerialEngine, or ShardedEngine when
//                 config.num_threads > 1 and the protocol allows)
//
// One config serves every protocol: SystemConfig unifies the old
// SystemConfig / SlidingSystemConfig pair and adds the num_shards /
// num_threads scale knobs.
#pragma once

#include <algorithm>
#include <concepts>
#include <cstdint>
#include <memory>
#include <span>
#include <stdexcept>
#include <type_traits>
#include <utility>
#include <vector>

#include "core/shard_router.h"
#include "hash/hash_function.h"
#include "net/config.h"
#include "net/factory.h"
#include "net/transport.h"
#include "obs/observability.h"
#include "sim/engine.h"
#include "sim/sources.h"
#include "treap/dominance_set.h"
#include "util/bytes.h"
#include "util/rng.h"

namespace dds::core {

/// Shared knobs for every deployment. The first four fields keep their
/// historical order — positional `{sites, s, hash, seed}` initializers
/// appear throughout the tests and benches.
struct SystemConfig {
  std::uint32_t num_sites = 5;
  std::size_t sample_size = 10;
  hash::HashKind hash_kind = hash::HashKind::kMurmur2;
  std::uint64_t seed = 1;
  /// Wire model. Defaults to the paper's idealized network, served by
  /// the legacy zero-delay sim::Bus; any nontrivial setting deploys on
  /// the event-driven net::SimNetwork.
  net::NetworkConfig network;
  /// Window length in slots (sliding-window protocols only).
  sim::Slot window = 100;
  /// Coordinator shards (consistent hashing over the element space).
  /// Protocols whose Traits do not support it reject num_shards > 1.
  std::uint32_t num_shards = 1;
  /// Site worker threads; >1 deploys on the ShardedEngine when the
  /// protocol and transport allow (see sim::make_engine), and falls
  /// back to the serial engine otherwise. Realistic wires with a
  /// positive delivery horizon run the engine's lockstep mode.
  std::uint32_t num_threads = 1;
  /// ShardedEngine replay->worker wakeup coalescing (see
  /// sim::EngineConfig::coalesce_wakeups; abl11 ablates it).
  bool coalesce_wakeups = true;
  /// Hybrid-substrate migration thresholds for the sliding-window
  /// per-site candidate sets (flat ring below, pooled treap above; see
  /// treap/dominance_set.h). The defaults fit the Lemma-10 steady
  /// state; benches override them to ablate the substrates.
  treap::HybridConfig substrate{};
  /// Observability switches (off by default: nothing is registered and
  /// no tracer exists — see obs/observability.h for the cost argument).
  obs::ObservabilityConfig observability{};
  /// Opt into live add_shard/remove_shard. Forces the RoutedSite
  /// wrapping even at num_shards == 1, so a later 1 -> 2 growth does
  /// not have to rip out the engine's site wiring (the engine holds
  /// stable RoutedSite pointers; only their inner copies are rebuilt).
  /// Requires a shardable-coordinator protocol. Declared last: every
  /// positional initializer in the repo predates it.
  bool elastic = false;
  /// Batched-ingest width: the serial engine gathers up to this many
  /// consecutive same-(slot, site) arrivals and hands them to the site
  /// in one on_element_batch call (hashes computed in one pass, next
  /// element's candidate lines prefetched). 1 keeps element-at-a-time
  /// dispatch. Outputs and wire traces are bit-identical either way —
  /// sites drain after every element (sim/node.h) — which the
  /// differential fuzz enforces. Appended after `elastic` for the same
  /// positional-initializer reason.
  std::uint32_t ingest_batch = 1;
  /// Speculative-lockstep window (slots a wave may run past the
  /// delivery-horizon certificate; see sim::EngineConfig). 0 keeps plain
  /// lockstep. Only consulted when num_threads > 1 deploys the sharded
  /// engine on a realistic wire; engine().mode_reason() reports what was
  /// actually selected. Appended last for positional initializers.
  std::uint32_t speculation_window = 0;
};

/// The sliding-window protocols share the unified config; this type
/// only flips the defaults their tests and benches have always assumed.
struct SlidingSystemConfig : SystemConfig {
  SlidingSystemConfig() {
    num_sites = 10;
    sample_size = 1;
  }
};

/// Site wrapper for sharded-coordinator deployments: one inner protocol
/// site per coordinator shard. Arrivals route by element through the
/// ShardRouter (so shard j sees exactly its partition's substream),
/// fronted by a per-site ShardCache — real streams repeat elements, so
/// most ring lookups come out of the cache (the bench tables surface
/// the hit rate). Coordinator replies route back by sender id. Per-slot
/// expiry runs on every copy. A RoutedSite is driven by exactly one
/// engine thread, so the cache needs no synchronization.
template <typename Site>
class RoutedSite final : public sim::StreamNode {
 public:
  RoutedSite(const ShardRouter& router, sim::NodeId first_coordinator)
      : router_(router), first_coordinator_(first_coordinator) {}

  void add_copy(std::unique_ptr<Site> copy) {
    copies_.push_back(std::move(copy));
  }

  void on_element(std::uint64_t element, sim::Slot t,
                  net::Transport& bus) override {
    copies_[route_cache_.owner(router_, element)]->on_element(element, t, bus);
  }

  void on_element_batch(std::span<const std::uint64_t> elements, sim::Slot t,
                        net::Transport& bus) override {
    // Split the batch into maximal consecutive same-owner runs and hand
    // each run to its shard copy's batch path. Order is preserved, and
    // every copy drains per element (the batch contract), so the routed
    // trace is identical to element-at-a-time routing.
    const std::size_t n = elements.size();
    std::size_t i = 0;
    while (i < n) {
      const auto owner = route_cache_.owner(router_, elements[i]);
      std::size_t j = i + 1;
      while (j < n && route_cache_.owner(router_, elements[j]) == owner) ++j;
      copies_[owner]->on_element_batch(elements.subspan(i, j - i), t, bus);
      i = j;
    }
  }

  void on_slot_begin(sim::Slot t, net::Transport& bus) override {
    for (auto& copy : copies_) copy->on_slot_begin(t, bus);
  }

  void on_message(const sim::Message& msg, net::Transport& bus) override {
    copies_[msg.from - first_coordinator_]->on_message(msg, bus);
  }

  std::size_t state_size() const noexcept override {
    std::size_t total = 0;
    for (const auto& copy : copies_) total += copy->state_size();
    return total;
  }

  Site& copy(std::size_t shard) { return *copies_[shard]; }
  const Site& copy(std::size_t shard) const { return *copies_[shard]; }

  std::size_t num_copies() const noexcept { return copies_.size(); }

  /// Drops every copy and invalidates the route cache (whose entries
  /// went stale with the ring) — the elastic-resize rebuild step. The
  /// RoutedSite object itself stays put: the engine and transport keep
  /// pointing at it.
  void reset_copies() {
    copies_.clear();
    route_cache_.clear();
  }

  const ShardCache& route_cache() const noexcept { return route_cache_; }

  /// Speculation snapshots: capable iff every shard copy is. The image
  /// is the length-prefixed concatenation of the copies' images plus the
  /// FULL route cache state — a rolled-back site re-executing against a
  /// warmer cache would diverge the deployment.route_cache.* metrics
  /// from the serial run.
  bool speculation_capable() const noexcept override {
    for (const auto& copy : copies_) {
      if (!copy->speculation_capable()) return false;
    }
    return true;
  }
  void save_speculation_state(std::vector<std::uint8_t>& out) const override {
    util::put_u64(out, copies_.size());
    std::vector<std::uint8_t> scratch;
    for (const auto& copy : copies_) {
      scratch.clear();
      copy->save_speculation_state(scratch);
      util::put_u64(out, scratch.size());
      out.insert(out.end(), scratch.begin(), scratch.end());
    }
    route_cache_.save_state(out);
  }
  void restore_speculation_state(
      std::span<const std::uint8_t> image) override {
    std::size_t pos = 0;
    const std::uint64_t n = util::get_u64(image, pos);
    if (n != copies_.size()) {
      throw std::logic_error(
          "RoutedSite::restore_speculation_state: copy count mismatch");
    }
    for (auto& copy : copies_) {
      const std::uint64_t len = util::get_u64(image, pos);
      if (pos + len > image.size()) {
        throw std::out_of_range(
            "RoutedSite::restore_speculation_state: image truncated");
      }
      copy->restore_speculation_state(image.subspan(pos, len));
      pos += len;
    }
    route_cache_.restore_state(image.subspan(pos));
  }

 private:
  const ShardRouter& router_;
  sim::NodeId first_coordinator_;
  std::vector<std::unique_ptr<Site>> copies_;
  ShardCache route_cache_;
};

/// Swallows messages addressed to a killed coordinator shard. The
/// transport throws on delivery to an unattached node (a bug trap), so
/// a chaos kill swaps this in instead: in-flight traffic to the dead
/// shard is absorbed and counted, never crashing the run. The counter
/// is the `chaos.dead_letters` metric.
class DeadLetterSink final : public sim::Node {
 public:
  void on_message(const sim::Message& /*msg*/,
                  net::Transport& /*bus*/) override {
    ++dead_letters_;
  }
  std::size_t state_size() const noexcept override { return 0; }
  std::uint64_t dead_letters() const noexcept { return dead_letters_; }
  const std::uint64_t* dead_letters_cell() const noexcept {
    return &dead_letters_;
  }

 private:
  std::uint64_t dead_letters_ = 0;
};

/// A merged query answer labelled with the fault state it was computed
/// under: `complete` is false while any shard is dead — the sample then
/// covers only the surviving shards' partitions (graceful degradation),
/// and the caller can tell a full answer from a best-effort one.
template <typename SampleT>
struct AnnotatedSample {
  SampleT sample{};
  std::uint32_t dead_shards = 0;
  bool complete = true;
};

/// Assembles one complete deployment — transport, coordinator shard(s),
/// sites (routed when sharded), and execution engine — from a
/// SystemConfig, for any protocol described by a Traits struct (node
/// types, constructor recipes, and capability flags). The protocol
/// facades (InfiniteSystem, SlidingSystem, ...) are aliases of this
/// template.
template <typename Traits>
class Deployment {
 public:
  using Site = typename Traits::Site;
  using Coordinator = typename Traits::Coordinator;
  using Options = typename Traits::Options;

  explicit Deployment(const SystemConfig& config)
      : Deployment(config, Options{}) {}

  Deployment(const SystemConfig& config, Options options)
      : config_(config),
        options_(options),
        obs_(std::make_unique<obs::Observability>(config.observability)),
        shared_(Traits::make_shared(config)),
        router_(checked_shards(config),
                util::derive_seed(config.seed, 0x5168D5ULL)),
        transport_(net::make_transport(config.num_sites, config.network,
                                       router_.num_shards())) {
    const std::uint32_t shards = router_.num_shards();
    coordinators_.reserve(shards);
    for (std::uint32_t j = 0; j < shards; ++j) {
      coordinators_.push_back(Traits::make_coordinator(
          transport_->coordinator_id(j), j, config_, shared_, options));
      transport_->attach(transport_->coordinator_id(j),
                         coordinators_.back().get());
    }
    alive_.assign(shards, 1);
    stream_nodes_.reserve(config_.num_sites);
    for (std::uint32_t i = 0; i < config_.num_sites; ++i) {
      if (shards == 1 && !config_.elastic) {
        sites_.push_back(Traits::make_site(i, transport_->coordinator_id(0),
                                           config_, shared_, options));
        stream_nodes_.push_back(sites_.back().get());
      } else {
        auto routed = std::make_unique<RoutedSite<Site>>(
            router_, transport_->coordinator_id(0));
        for (std::uint32_t j = 0; j < shards; ++j) {
          routed->add_copy(Traits::make_site(i, transport_->coordinator_id(j),
                                             config_, shared_, options));
        }
        stream_nodes_.push_back(routed.get());
        routed_sites_.push_back(std::move(routed));
      }
      transport_->attach(i, stream_nodes_.back());
    }
    sim::EngineConfig engine_config;
    engine_config.num_threads =
        Traits::kShardableSites ? config_.num_threads : 1;
    engine_config.coalesce_wakeups = config_.coalesce_wakeups;
    engine_config.speculation_window = config_.speculation_window;
    engine_ = sim::make_engine(*transport_, stream_nodes_,
                               Traits::kInvokeSlotBegin, engine_config);
    if (obs_->config().enabled()) bind_observability();
  }

  /// Compat sugar: protocol options passed positionally, e.g.
  /// InfiniteSystem(config, /*eager_threshold=*/true).
  template <typename A0, typename... An,
            typename = std::enable_if_t<
                !std::is_same_v<std::remove_cvref_t<A0>, Options>>>
  Deployment(const SystemConfig& config, A0&& a0, An&&... an)
      : Deployment(config,
                   Options{std::forward<A0>(a0), std::forward<An>(an)...}) {}

  // ---- plumbing access ---------------------------------------------
  net::Transport& bus() noexcept { return *transport_; }
  const net::Transport& bus() const noexcept { return *transport_; }
  /// The execution engine ("runner" is the historical name).
  sim::Engine& runner() noexcept { return *engine_; }
  const sim::Engine& engine() const noexcept { return *engine_; }

  /// Feeds the whole source through the deployment; returns arrivals
  /// processed. Message counts accumulate in bus().counters().
  /// config.ingest_batch > 1 routes through the engine's batched hot
  /// path (gathered on_element_batch calls — same outputs and traces).
  std::uint64_t run(sim::ArrivalSource& source) {
    return engine_->run_batched(source, config_.ingest_batch);
  }

  /// Push-style batched ingest: feeds `elements` (all arriving at site
  /// `site`, slot `t` — slots must be non-decreasing across calls)
  /// through the engine's batched path in one call. This is the
  /// multi-tenant serving loop's entry point; equivalent to running a
  /// source that yields the same arrivals one at a time.
  std::uint64_t update_batch(std::uint32_t site,
                             std::span<const std::uint64_t> elements,
                             sim::Slot t) {
    sim::SpanSource source(t, site, elements);
    const std::size_t width = std::max<std::size_t>(
        std::size_t{1}, std::max<std::size_t>(config_.ingest_batch,
                                              elements.size()));
    return engine_->run_batched(source, width);
  }

  std::uint32_t num_sites() const noexcept { return config_.num_sites; }
  std::uint32_t num_shards() const noexcept { return router_.num_shards(); }
  const ShardRouter& router() const noexcept { return router_; }
  const SystemConfig& config() const noexcept { return config_; }

  // ---- node access -------------------------------------------------
  const Coordinator& coordinator(std::size_t shard = 0) const {
    return *coordinators_[shard];
  }
  /// Mutable coordinator access — the checkpoint/restore path writes
  /// restored state straight into a fresh deployment's shards.
  Coordinator& coordinator_mut(std::size_t shard = 0) {
    return *coordinators_[shard];
  }

  /// Site i's protocol node (its shard-`shard` copy when the
  /// coordinator is sharded; there is exactly one copy otherwise).
  Site& site(std::size_t i, std::size_t shard = 0) {
    return routed_sites_.empty() ? *sites_[i] : routed_sites_[i]->copy(shard);
  }
  const Site& site(std::size_t i, std::size_t shard = 0) const {
    return routed_sites_.empty() ? *sites_[i] : routed_sites_[i]->copy(shard);
  }

  // ---- aggregate site state (paper's memory metric) ----------------
  /// Sum over sites of their state size — total candidate memory now.
  std::size_t total_site_state() const noexcept {
    std::size_t total = 0;
    for (const auto* node : stream_nodes_) total += node->state_size();
    return total;
  }
  /// Max over sites of their state size.
  std::size_t max_site_state() const noexcept {
    std::size_t mx = 0;
    for (const auto* node : stream_nodes_) {
      mx = std::max(mx, node->state_size());
    }
    return mx;
  }

  // ---- protocol-specific accessors ---------------------------------
  // Bodies instantiate lazily, so each is available exactly when the
  // protocol's Shared state (or merge support) provides it.
  const auto& hash_fn() const { return shared_.hash_fn; }
  const auto& family() const { return shared_.family; }

  /// Query-time merge across coordinator shards (equals the
  /// single-coordinator answer when num_shards == 1; see shard_router.h
  /// for why the merge is exact).
  auto sample() const { return Traits::merge_samples(coordinators_, config_); }

  /// Validity-window-aware merge at slot `now` (sliding protocols):
  /// per-shard window samples are merged through query::merge with
  /// every tuple's expiry checked against the query slot. Same answer
  /// shape as the protocol's unsharded coordinator query. `now` must
  /// be non-decreasing across queries: coordinators whose pools sweep
  /// expiry at query time (the bottom-s window protocol) drop tuples
  /// for good once a later slot has been queried, so asking about the
  /// past returns an under-full sample. Slot-clock-driven callers
  /// satisfy this by construction.
  auto sample(sim::Slot now) const {
    return Traits::merge_samples_at(coordinators_, config_, now);
  }

  // ---- fault injection / recovery ----------------------------------
  // The shard-lifecycle surface the chaos layer (sim/chaos.h) and the
  // Supervisor (core/supervisor.h) drive. Killing a shard detaches its
  // coordinator from the wire — in-flight traffic lands in a counting
  // dead-letter sink — and swaps in a FRESH empty coordinator object,
  // so merged queries degrade to the survivors' partitions instead of
  // serving a ghost's stale state. Respawn re-attaches that fresh
  // coordinator; the caller then restores a checkpoint image into it
  // (core/checkpoint.h restore_into) and/or triggers resync_shard() to
  // rebuild it exactly from the sites' live state.

  /// True while shard `shard`'s coordinator is attached to the wire.
  bool shard_alive(std::uint32_t shard) const {
    return alive_.at(shard) != 0;
  }
  /// Number of currently-dead shards.
  std::uint32_t dead_shards() const noexcept {
    std::uint32_t n = 0;
    for (const auto a : alive_) n += a == 0 ? 1 : 0;
    return n;
  }
  /// Messages absorbed by the dead-letter sink so far (chaos.dead_letters).
  std::uint64_t dead_letters() const noexcept {
    return dead_sink_.dead_letters();
  }

  /// Kills shard `shard`: detaches its coordinator (traffic hits the
  /// dead-letter sink) and replaces the object with a fresh empty one.
  /// Idempotent. The old coordinator's state is GONE — checkpoint it
  /// first (the Supervisor's cadence does) for a lossless restore.
  void kill_shard(std::uint32_t shard) {
    if (shard >= coordinators_.size()) {
      throw std::out_of_range("Deployment::kill_shard");
    }
    if (alive_[shard] == 0) return;
    alive_[shard] = 0;
    coordinators_[shard] = Traits::make_coordinator(
        transport_->coordinator_id(shard), shard, config_, shared_, options_);
    transport_->attach(transport_->coordinator_id(shard), &dead_sink_);
  }

  /// Re-attaches shard `shard`'s (fresh, empty) coordinator to the
  /// wire. Idempotent. Restore + resync are the caller's next moves.
  void respawn_shard(std::uint32_t shard) {
    if (shard >= coordinators_.size()) {
      throw std::out_of_range("Deployment::respawn_shard");
    }
    if (alive_[shard] != 0) return;
    alive_[shard] = 1;
    transport_->attach(transport_->coordinator_id(shard),
                       coordinators_[shard].get());
  }

  /// Makes every site re-offer its current local state to shard
  /// `shard`'s coordinator: sites with a resync() hook (the full-sync
  /// family) re-ship their local minima / bottom-s; sites with reset()
  /// (the infinite protocol) drop their thresholds so future arrivals
  /// re-report. Lazy sliding sites have neither — they self-heal within
  /// one window — so this is a documented no-op for them. The sends go
  /// through the wire; drive bus().finish() (or keep running slots) to
  /// land them.
  void resync_shard(std::uint32_t shard) {
    for (std::uint32_t i = 0; i < config_.num_sites; ++i) {
      Site& s = site(i, routed_sites_.empty() ? 0 : shard);
      if constexpr (requires(Site& x, net::Transport& b) { x.resync(b); }) {
        s.resync(*transport_);
      } else if constexpr (requires(Site& x) { x.reset(); }) {
        s.reset();
      } else {
        (void)s;
      }
    }
  }

  /// sample() with the fault state attached: `complete` is false while
  /// any shard is dead (the merge then covers survivors only).
  auto sample_annotated() const {
    using S = decltype(Traits::merge_samples(coordinators_, config_));
    const std::uint32_t dead = dead_shards();
    return AnnotatedSample<S>{Traits::merge_samples(coordinators_, config_),
                              dead, dead == 0};
  }
  /// sample(now) with the fault state attached.
  auto sample_annotated(sim::Slot now) const {
    using S = decltype(Traits::merge_samples_at(coordinators_, config_, now));
    const std::uint32_t dead = dead_shards();
    return AnnotatedSample<S>{
        Traits::merge_samples_at(coordinators_, config_, now), dead,
        dead == 0};
  }

  // ---- elastic topology --------------------------------------------

  /// Grows the deployment to N+1 shards, live. Requires construction
  /// with SystemConfig::elastic (or num_shards > 1) and a protocol
  /// whose sites expose snapshot_candidates/absorb/resync and whose
  /// coordinator exposes clear() — the full-sync family; the lazy
  /// sliding scheme has no migration hooks and throws. The sequence:
  /// quiesce the wire, snapshot every site copy's candidate tuples,
  /// grow the ring (only ~1/(N+1) of the element space moves — ring
  /// points are position-stable), resize the transport's coordinator
  /// table (batcher buffers rebind; surviving batches flush, none
  /// strand), rebuild fresh site copies with each tuple absorbed into
  /// its new owner copy, then clear + resync every coordinator so the
  /// merged answer is exact again before the next arrival. Serial /
  /// lockstep engines only (num_threads == 1).
  void add_shard() { resize_shards(router_.num_shards() + 1); }

  /// Shrinks the deployment by its LAST shard, live (surviving shard
  /// indices keep their meaning; see ShardRouter::remove_last_shard).
  /// The departing coordinator's state is re-derived on the survivors
  /// from the sites' migrated candidates — callers wanting a drain
  /// image additionally checkpoint it BEFORE calling this (the
  /// Supervisor's remove path does).
  void remove_shard() { resize_shards(router_.num_shards() - 1); }

  // ---- routing-cache statistics (sharded deployments) --------------
  /// ShardCache hits across all routed sites (0 when num_shards == 1 —
  /// unsharded deployments route nothing).
  std::uint64_t route_cache_hits() const noexcept {
    std::uint64_t total = 0;
    for (const auto& site : routed_sites_) total += site->route_cache().hits();
    return total;
  }
  /// ShardCache lookups across all routed sites (== arrivals routed).
  std::uint64_t route_cache_lookups() const noexcept {
    std::uint64_t total = 0;
    for (const auto& site : routed_sites_) {
      total += site->route_cache().lookups();
    }
    return total;
  }

  // ---- observability -----------------------------------------------
  /// The deployment's metrics registry + tracer bundle. Always present;
  /// with SystemConfig::observability all-off it holds neither
  /// instrument and snapshot()/prometheus()/json() return empty.
  obs::Observability& observability() noexcept { return *obs_; }
  const obs::Observability& observability() const noexcept { return *obs_; }

 private:
  /// Registers every layer with the registry and hands the tracer down:
  /// transport (wire counters, delivery/flush/drop events), engine
  /// (waves/stalls, "engine." prefix), deployment (route cache, site
  /// state), and — when the protocol's node types expose them — the
  /// hybrid-substrate and pooled-sweep statistics.
  void bind_observability() {
    obs::MetricsRegistry* registry = obs_->registry();
    obs::Tracer* tracer = obs_->tracer();
    transport_->bind_observability(registry, tracer);
    engine_->bind_observability(registry, tracer);
    if (registry == nullptr) return;
    registry->counter_fn("deployment.route_cache.hits",
                         [this] { return route_cache_hits(); });
    registry->counter_fn("deployment.route_cache.lookups",
                         [this] { return route_cache_lookups(); });
    registry->gauge("site.state.total", [this] {
      return static_cast<double>(total_site_state());
    });
    registry->gauge("site.state.max", [this] {
      return static_cast<double>(max_site_state());
    });
    registry->counter("chaos.dead_letters", dead_sink_.dead_letters_cell());
    registry->counter_fn("chaos.dead_shards",
                         [this] { return std::uint64_t{dead_shards()}; });
    bind_substrate_metrics(*registry);
  }

  /// Pushes every buffered batch onto the wire and runs the queue dry —
  /// the precondition for any topology surgery: nothing in flight,
  /// nothing buffered.
  void quiesce() {
    for (std::uint32_t j = 0; j < router_.num_shards(); ++j) {
      transport_->flush_shard(j);
    }
    transport_->finish();
  }

  /// The shared grow/shrink body (new_shards differs from the current
  /// count by exactly one). See add_shard() for the algorithm sketch;
  /// correctness of the resync step: after migration every site copy
  /// holds exactly the candidates of its (site, new-partition)
  /// substream, and every member of the global answer is in its own
  /// copy's local candidate set, so clear + full re-report rebuilds
  /// each coordinator's state exactly.
  void resize_shards(std::uint32_t new_shards) {
    constexpr bool kElasticSites =
        requires(Site& s, net::Transport& b, const treap::Candidate& c) {
          { s.snapshot_candidates() } -> std::same_as<std::vector<treap::Candidate>>;
          s.absorb(c);
          s.resync(b);
        };
    constexpr bool kClearableCoordinator =
        requires(Coordinator& c) { c.clear(); };
    if constexpr (!(kElasticSites && kClearableCoordinator)) {
      throw std::logic_error(
          "Deployment: this protocol has no elastic-migration hooks "
          "(snapshot_candidates/absorb/resync + coordinator clear)");
    } else {
      if (routed_sites_.empty()) {
        throw std::logic_error(
            "Deployment: construct with SystemConfig::elastic (or "
            "num_shards > 1) for live resize");
      }
      const std::uint32_t old_shards = router_.num_shards();
      if (new_shards == 0 ||
          (new_shards != old_shards + 1 && new_shards + 1 != old_shards)) {
        throw std::invalid_argument("Deployment: resize one shard at a time");
      }
      if (dead_shards() != 0) {
        throw std::logic_error(
            "Deployment: respawn dead shards before resizing");
      }
      quiesce();
      // Snapshot every copy's candidates; the tuples are re-absorbed
      // into their NEW owner copies below, so elements whose partition
      // moved carry their exact expiry state across, and copies they
      // left are rebuilt fresh (no duplicate answers in the merge).
      std::vector<std::vector<treap::Candidate>> saved(config_.num_sites);
      for (std::uint32_t i = 0; i < config_.num_sites; ++i) {
        for (std::uint32_t j = 0; j < old_shards; ++j) {
          auto tuples = routed_sites_[i]->copy(j).snapshot_candidates();
          saved[i].insert(saved[i].end(), tuples.begin(), tuples.end());
        }
      }
      if (new_shards > old_shards) {
        router_.add_shard();
        transport_->add_coordinator();
        coordinators_.push_back(Traits::make_coordinator(
            transport_->coordinator_id(new_shards - 1), new_shards - 1,
            config_, shared_, options_));
        transport_->attach(transport_->coordinator_id(new_shards - 1),
                           coordinators_.back().get());
        alive_.push_back(1);
      } else {
        // Quiesced above: the departing shard's batches flushed and its
        // in-flight deliveries landed, so shrinking the tables now
        // strands nothing (the chaos tests pin stranded() == 0).
        transport_->remove_last_coordinator();
        router_.remove_last_shard();
        coordinators_.pop_back();
        alive_.pop_back();
      }
      config_.num_shards = new_shards;
      for (std::uint32_t i = 0; i < config_.num_sites; ++i) {
        routed_sites_[i]->reset_copies();
        for (std::uint32_t j = 0; j < new_shards; ++j) {
          routed_sites_[i]->add_copy(
              Traits::make_site(i, transport_->coordinator_id(j), config_,
                                shared_, options_));
        }
        for (const treap::Candidate& c : saved[i]) {
          routed_sites_[i]->copy(router_.owner(c.element)).absorb(c);
        }
      }
      // Coordinator state cannot be split along the new partition from
      // the outside (thresholds and pools are partition-dependent), so
      // re-derive it: clear everything and have every copy re-report
      // its current local state. Exact — see the method comment.
      for (auto& coordinator : coordinators_) coordinator->clear();
      for (std::uint32_t i = 0; i < config_.num_sites; ++i) {
        for (std::uint32_t j = 0; j < new_shards; ++j) {
          routed_sites_[i]->copy(j).resync(*transport_);
        }
      }
      transport_->finish();
    }
  }

  /// Applies `f` to every protocol-level Site object (each shard copy
  /// of every routed site; the site itself when unsharded).
  template <typename F>
  void for_each_protocol_site(F&& f) const {
    if (routed_sites_.empty()) {
      for (const auto& site : sites_) f(*site);
    } else {
      for (const auto& routed : routed_sites_) {
        for (std::uint32_t j = 0; j < router_.num_shards(); ++j) {
          f(routed->copy(j));
        }
      }
    }
  }

  /// Substrate metrics are polled gauges/counter_fns — never hooks in
  /// the substrates themselves (worker threads own them mid-wave, and
  /// the dominance sets should not know about metrics). The registry
  /// only reads at snapshot time, from quiesced points, so the reads
  /// are race-free. `if constexpr` + requires keeps this generic: only
  /// protocols whose node types expose the introspection surface get
  /// the metrics.
  void bind_substrate_metrics(obs::MetricsRegistry& registry) {
    constexpr bool kMultiHybrid = requires(const Site& site) {
      site.copy(std::size_t{0}).candidates().migrations();
      site.num_copies();
    };
    constexpr bool kDirectHybrid = requires(const Site& site) {
      site.candidates().migrations();
    };
    if constexpr (kMultiHybrid || kDirectHybrid) {
      // Sums a per-dominance-set statistic across every hybrid set in
      // the deployment (s copies per protocol site when multi-instance).
      const auto sum_sets = [this](auto stat) {
        std::uint64_t total = 0;
        for_each_protocol_site([&](const Site& site) {
          if constexpr (kMultiHybrid) {
            for (std::size_t j = 0; j < site.num_copies(); ++j) {
              total += static_cast<std::uint64_t>(stat(site.copy(j).candidates()));
            }
          } else {
            total += static_cast<std::uint64_t>(stat(site.candidates()));
          }
        });
        return total;
      };
      registry.counter_fn("substrate.migrations", [sum_sets] {
        return sum_sets([](const auto& set) { return set.migrations(); });
      });
      registry.gauge("substrate.occupancy", [sum_sets] {
        return static_cast<double>(
            sum_sets([](const auto& set) { return set.size(); }));
      });
      registry.gauge("substrate.ring.capacity", [sum_sets] {
        return static_cast<double>(
            sum_sets([](const auto& set) { return set.ring_capacity(); }));
      });
      registry.gauge("substrate.tree.pool_slots", [sum_sets] {
        return static_cast<double>(
            sum_sets([](const auto& set) { return set.tree_pool_slots(); }));
      });
      registry.gauge("substrate.flat_sets", [sum_sets] {
        return static_cast<double>(sum_sets(
            [](const auto& set) { return set.is_flat() ? 1 : 0; }));
      });
    }
    if constexpr (requires(const Coordinator& c) {
                    c.pool().swept_tuples();
                  }) {
      const auto sum_pools = [this](auto stat) {
        std::uint64_t total = 0;
        for (const auto& coordinator : coordinators_) {
          total += static_cast<std::uint64_t>(stat(coordinator->pool()));
        }
        return total;
      };
      registry.counter_fn("substrate.sweep.tuples", [sum_pools] {
        return sum_pools(
            [](const auto& pool) { return pool.swept_tuples(); });
      });
      registry.counter_fn("substrate.sweep.updates", [sum_pools] {
        return sum_pools([](const auto& pool) { return pool.updates(); });
      });
      registry.gauge("substrate.pool.size", [sum_pools] {
        return static_cast<double>(
            sum_pools([](const auto& pool) { return pool.size(); }));
      });
    }
  }
  static std::uint32_t checked_shards(const SystemConfig& config) {
    const std::uint32_t shards = config.num_shards == 0 ? 1 : config.num_shards;
    if ((shards > 1 || config.elastic) && !Traits::kShardableCoordinator) {
      throw std::invalid_argument(
          "Deployment: this protocol does not support a sharded coordinator");
    }
    return shards;
  }

  SystemConfig config_;
  /// Kept for the lifecycle paths (kill_shard's fresh coordinator,
  /// resize_shards' fresh site copies) — they re-run the Traits recipes
  /// with the SAME protocol options construction used.
  Options options_;
  /// Declared before every instrumented member: the registry holds
  /// pointers INTO those members, but only reads them at snapshot time,
  /// and being first-declared makes obs_ the last member destroyed.
  std::unique_ptr<obs::Observability> obs_;
  typename Traits::Shared shared_;
  ShardRouter router_;
  std::unique_ptr<net::Transport> transport_;
  std::vector<std::unique_ptr<Coordinator>> coordinators_;
  std::vector<std::unique_ptr<Site>> sites_;               // num_shards == 1
  std::vector<std::unique_ptr<RoutedSite<Site>>> routed_sites_;  // > 1
  std::vector<sim::StreamNode*> stream_nodes_;
  std::unique_ptr<sim::Engine> engine_;
  /// Per-shard liveness (1 = coordinator attached); parallel to
  /// coordinators_.
  std::vector<std::uint8_t> alive_;
  /// Absorbs traffic to killed shards (see DeadLetterSink).
  DeadLetterSink dead_sink_;
};

}  // namespace dds::core
