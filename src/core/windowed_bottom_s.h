// Bottom-s distinct sampling over a sliding window — the
// without-replacement extension of Chapter 4 (the thesis implements
// s = 1 and calls larger s "straightforward"; this module and the
// full-sync distributed variant in baseline/fullsync_bottom_s.h make it
// concrete).
//
// WindowedBottomSSampler is the single-stream primitive: it wraps an
// SDominanceSet and answers "the s smallest-hash distinct elements of
// the last w slots" exactly, in O(s log(M/s)) expected space — the
// bottom-s analogue of priority sampling over sliding windows (Babcock,
// Datar & Motwani 2002).
#pragma once

#include <cstdint>
#include <vector>

#include "hash/hash_function.h"
#include "sim/message.h"
#include "stream/element.h"
#include "treap/s_dominance_set.h"

namespace dds::core {

class WindowedBottomSSampler {
 public:
  WindowedBottomSSampler(std::size_t sample_size, sim::Slot window,
                         hash::HashFunction hash_fn,
                         std::uint64_t seed = 0x77627353ULL);

  /// Observes an arrival at slot `t`. Slots must be non-decreasing.
  void observe(stream::Element element, sim::Slot t);

  /// The exact bottom-s distinct sample of the window ending at `now`
  /// (hash-ascending). `now` must be >= the latest observed slot.
  std::vector<treap::Candidate> sample(sim::Slot now);

  /// sample() into a reused buffer (cleared first) — the
  /// allocation-free variant for per-slot callers.
  void sample_into(sim::Slot now, std::vector<treap::Candidate>& out);

  /// Tuples currently retained (the memory metric).
  std::size_t state_size() const noexcept { return candidates_.size(); }

  std::size_t sample_size() const noexcept { return candidates_.sample_size(); }
  sim::Slot window() const noexcept { return window_; }
  const hash::HashFunction& hash_fn() const noexcept { return hash_fn_; }

  const treap::SDominanceSet& candidates() const noexcept {
    return candidates_;
  }

  /// Rebuilds the candidate set from a candidates().snapshot() image —
  /// the checkpoint/restore path (core/checkpoint.h).
  void load_candidates(const std::vector<treap::Candidate>& items) {
    candidates_.load_snapshot(items);
  }

  /// Adopts one tuple with an arbitrary expiry — the elastic-resize
  /// migration path routes tuples from old shard copies through here.
  void absorb(const treap::Candidate& c) {
    candidates_.insert(c.element, c.hash, c.expiry);
  }

 private:
  sim::Slot window_;
  hash::HashFunction hash_fn_;
  treap::SDominanceSet candidates_;
};

}  // namespace dds::core
