// Bottom-s distinct sampling over a sliding window — the
// without-replacement extension of Chapter 4 (the thesis implements
// s = 1 and calls larger s "straightforward"; this module and the
// full-sync distributed variant in baseline/fullsync_bottom_s.h make it
// concrete).
//
// WindowedBottomSSampler is the single-stream primitive: it wraps an
// SDominanceSet and answers "the s smallest-hash distinct elements of
// the last w slots" exactly, in O(s log(M/s)) expected space — the
// bottom-s analogue of priority sampling over sliding windows (Babcock,
// Datar & Motwani 2002).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "hash/hash_function.h"
#include "sim/message.h"
#include "stream/element.h"
#include "treap/s_dominance_set.h"

namespace dds::core {

class WindowedBottomSSampler {
 public:
  WindowedBottomSSampler(std::size_t sample_size, sim::Slot window,
                         hash::HashFunction hash_fn,
                         std::uint64_t seed = 0x77627353ULL);

  /// Observes an arrival at slot `t`. Slots must be non-decreasing.
  void observe(stream::Element element, sim::Slot t);

  /// observe() with the hash precomputed — the distributed batch path
  /// (sites hash a whole batch up front, then replay the exact
  /// expire-then-observe sequence per element).
  void observe_hashed(stream::Element element, std::uint64_t hv, sim::Slot t);

  /// Batched observe: one hash pass over the batch (the hash-kind
  /// dispatch is hoisted out of the loop), ONE expiry sweep for the
  /// whole batch instead of one per element (every arrival shares slot
  /// `t` and expires at t + w > t, so later sweeps at `t` would remove
  /// nothing), and ONE combined dominance sweep judging victims against
  /// all batch hashes at once (SDominanceSet::observe_group) instead of
  /// re-walking the candidate structure per element. The resulting
  /// candidate set is identical to element-at-a-time observe() calls —
  /// the survivor set is canonical in the live (hash, expiry) multiset
  /// — which the differential fuzz pins.
  void observe_batch(std::span<const stream::Element> elements, sim::Slot t);

  /// The exact bottom-s distinct sample of the window ending at `now`
  /// (hash-ascending). `now` must be >= the latest observed slot.
  std::vector<treap::Candidate> sample(sim::Slot now);

  /// sample() into a reused buffer (cleared first) — the
  /// allocation-free variant for per-slot callers.
  void sample_into(sim::Slot now, std::vector<treap::Candidate>& out);

  /// Exact bottom-s of the SUB-window of width `width` (0 < width <=
  /// window()) ending at `now`, into a reused buffer. A tuple observed
  /// at slot a expires at a + W, so it lies inside the width-w window
  /// iff a > now - w, i.e. expiry > now + (W - w): the query is an
  /// expiry-threshold walk of the shared candidate structure (expected
  /// O(log n + s) via the by-hash treap's max-expiry aggregate), and it
  /// is exact because any member of the w-window's bottom-s has fewer
  /// than s smaller-hash later-expiring tuples (those would be in the
  /// w-window too) and hence survives s-dominance pruning at W. This is
  /// what lets one sampler keyed at the WIDEST width serve every
  /// narrower tenant width (query/service.h).
  void sample_at_width_into(sim::Slot now, sim::Slot width,
                            std::vector<treap::Candidate>& out);

  /// Tuples currently retained (the memory metric).
  std::size_t state_size() const noexcept { return candidates_.size(); }

  /// Bytes reserved by the candidate structure and the batch scratch —
  /// footprint accounting for the shared-vs-separate tenant comparison.
  std::size_t footprint_bytes() const noexcept {
    return candidates_.footprint_bytes() +
           hash_scratch_.capacity() * sizeof(std::uint64_t);
  }

  std::size_t sample_size() const noexcept { return candidates_.sample_size(); }
  sim::Slot window() const noexcept { return window_; }
  const hash::HashFunction& hash_fn() const noexcept { return hash_fn_; }

  const treap::SDominanceSet& candidates() const noexcept {
    return candidates_;
  }

  /// Rebuilds the candidate set from a candidates().snapshot() image —
  /// the checkpoint/restore path (core/checkpoint.h).
  void load_candidates(const std::vector<treap::Candidate>& items) {
    candidates_.load_snapshot(items);
  }

  /// Adopts one tuple with an arbitrary expiry — the elastic-resize
  /// migration path routes tuples from old shard copies through here.
  void absorb(const treap::Candidate& c) {
    candidates_.insert(c.element, c.hash, c.expiry);
  }

 private:
  sim::Slot window_;
  hash::HashFunction hash_fn_;
  treap::SDominanceSet candidates_;
  std::vector<std::uint64_t> hash_scratch_;  ///< batched-hash buffer
};

}  // namespace dds::core
