// Algorithm 4 — the sliding-window algorithm at the coordinator (s = 1).
//
// State: (e*, u*, t*) — the sample, its hash, and its expiry slot. On a
// report (e', t') from site i at slot t:
//   adopt (e', h', t') if  u* > h'  or  the stored sample has expired;
//   reply with the (possibly updated) (e*, t*) — the reply doubles as
//   the lazy threshold refresh for site i.
//
// One extension beyond the pseudocode: a re-report of the *current*
// sample element with a later expiry refreshes t* (the element
// re-arrived somewhere, extending its window membership). Without this
// the refreshed tuple would only be re-adopted after a needless expiry
// round-trip.
//
// Note on exactness: the paper's lazy scheme allows a transient regime
// after the sample expires in which the coordinator may hold a valid but
// non-minimal element, until the site owning the true minimum next
// communicates (its local view expiry bounds the lag). The thesis proves
// space and message bounds for this scheme but no exactness lemma; our
// tests quantify the agreement rate and verify the s = 1, k = 1 case is
// exact. See also baseline::SlidingBroadcast* for the eager variant the
// paper sketches (broadcast on every u increase), which restores
// minimality at higher message cost.
#pragma once

#include <cstdint>
#include <optional>

#include "hash/hash_function.h"
#include "net/transport.h"
#include "sim/node.h"
#include "stream/element.h"
#include "treap/dominance_set.h"

namespace dds::core {

class SlidingWindowCoordinator final : public sim::Node {
 public:
  explicit SlidingWindowCoordinator(sim::NodeId id, std::uint32_t instance = 0);

  void on_message(const sim::Message& msg, net::Transport& bus) override;

  std::size_t state_size() const noexcept override { return has_ ? 1 : 0; }

  /// The query answer at slot `now`: the sample, or nullopt if no valid
  /// (unexpired) sample is held.
  std::optional<treap::Candidate> sample(sim::Slot now) const;

  /// Raw stored tuple regardless of expiry; test hook and the
  /// checkpoint image source.
  std::optional<treap::Candidate> raw_sample() const;

  /// Overwrites the stored tuple from a checkpoint image (nullopt
  /// restores the no-sample-yet state). See core/checkpoint.h for the
  /// failover semantics.
  void restore(const std::optional<treap::Candidate>& stored);

 private:
  sim::NodeId id_;
  std::uint32_t instance_;
  bool has_ = false;
  stream::Element element_ = 0;
  std::uint64_t u_ = hash::kHashMax;
  sim::Slot expiry_ = 0;
};

}  // namespace dds::core
