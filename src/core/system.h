// Facades that wire up a complete simulated deployment — bus, k sites,
// coordinator, runner — for each protocol. Examples, tests, and every
// bench binary build on these instead of repeating the plumbing.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/infinite_coordinator.h"
#include "core/infinite_site.h"
#include "core/multi_sliding.h"
#include "core/with_replacement.h"
#include "hash/hash_function.h"
#include "net/config.h"
#include "net/transport.h"
#include "sim/runner.h"

namespace dds::core {

/// Shared knobs for every deployment facade.
struct SystemConfig {
  std::uint32_t num_sites = 5;
  std::size_t sample_size = 10;
  hash::HashKind hash_kind = hash::HashKind::kMurmur2;
  std::uint64_t seed = 1;
  /// Wire model. Defaults to the paper's idealized network, served by
  /// the legacy zero-delay sim::Bus; any nontrivial setting deploys on
  /// the event-driven net::SimNetwork.
  net::NetworkConfig network;
};

/// Infinite-window deployment of Algorithms 1 & 2 (sampling without
/// replacement).
class InfiniteSystem {
 public:
  /// `eager_threshold` forwards to InfiniteWindowCoordinator;
  /// `suppress_duplicates` to InfiniteWindowSite.
  explicit InfiniteSystem(const SystemConfig& config,
                          bool eager_threshold = false,
                          bool suppress_duplicates = false);

  net::Transport& bus() noexcept { return *transport_; }
  sim::Runner& runner() noexcept { return *runner_; }
  const InfiniteWindowCoordinator& coordinator() const noexcept {
    return *coordinator_;
  }
  const hash::HashFunction& hash_fn() const noexcept { return hash_fn_; }
  InfiniteWindowSite& site(std::size_t i) { return *sites_[i]; }

  /// Feeds the whole source through the deployment; returns arrivals
  /// processed. Message counts accumulate in bus().counters().
  std::uint64_t run(sim::ArrivalSource& source) { return runner_->run(source); }

 private:
  std::unique_ptr<net::Transport> transport_;
  hash::HashFunction hash_fn_;
  std::vector<std::unique_ptr<InfiniteWindowSite>> sites_;
  std::unique_ptr<InfiniteWindowCoordinator> coordinator_;
  std::unique_ptr<sim::Runner> runner_;
};

/// Infinite-window deployment of the with-replacement sampler
/// (s parallel single-element copies).
class WithReplacementSystem {
 public:
  explicit WithReplacementSystem(const SystemConfig& config);

  net::Transport& bus() noexcept { return *transport_; }
  sim::Runner& runner() noexcept { return *runner_; }
  const WithReplacementCoordinator& coordinator() const noexcept {
    return *coordinator_;
  }
  const hash::HashFamily& family() const noexcept { return family_; }

  std::uint64_t run(sim::ArrivalSource& source) { return runner_->run(source); }

 private:
  std::unique_ptr<net::Transport> transport_;
  hash::HashFamily family_;
  std::vector<std::unique_ptr<WithReplacementSite>> sites_;
  std::unique_ptr<WithReplacementCoordinator> coordinator_;
  std::unique_ptr<sim::Runner> runner_;
};

/// Sliding-window deployment of Algorithms 3 & 4 (sample_size
/// independent copies; sample_size = 1 is the paper's base protocol).
struct SlidingSystemConfig {
  std::uint32_t num_sites = 10;
  sim::Slot window = 100;
  std::size_t sample_size = 1;
  hash::HashKind hash_kind = hash::HashKind::kMurmur2;
  std::uint64_t seed = 1;
  /// Wire model (see SystemConfig::network).
  net::NetworkConfig network;
};

class SlidingSystem {
 public:
  explicit SlidingSystem(const SlidingSystemConfig& config);

  net::Transport& bus() noexcept { return *transport_; }
  sim::Runner& runner() noexcept { return *runner_; }
  const MultiSlidingCoordinator& coordinator() const noexcept {
    return *coordinator_;
  }
  const MultiSlidingSite& site(std::size_t i) const { return *sites_[i]; }
  std::uint32_t num_sites() const noexcept { return transport_->num_sites(); }
  const hash::HashFamily& family() const noexcept { return family_; }

  std::uint64_t run(sim::ArrivalSource& source) { return runner_->run(source); }

  /// Sum over sites of |T_i| — the total candidate memory right now.
  std::size_t total_site_state() const noexcept;
  /// max over sites of |T_i|.
  std::size_t max_site_state() const noexcept;

 private:
  std::unique_ptr<net::Transport> transport_;
  hash::HashFamily family_;
  std::vector<std::unique_ptr<MultiSlidingSite>> sites_;
  std::unique_ptr<MultiSlidingCoordinator> coordinator_;
  std::unique_ptr<sim::Runner> runner_;
};

}  // namespace dds::core
