// Deployment facades for the paper's protocols — each is the templated
// core::Deployment builder instantiated with a small Traits struct that
// names the protocol's node types and constructor recipe. Examples,
// tests, and every bench binary build on these instead of repeating the
// plumbing. SystemConfig (including the num_shards / num_threads scale
// knobs) lives in core/deployment.h.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/bottom_s_sample.h"
#include "core/deployment.h"
#include "core/infinite_coordinator.h"
#include "core/infinite_site.h"
#include "core/multi_sliding.h"
#include "core/with_replacement.h"
#include "hash/hash_function.h"
#include "net/config.h"
#include "net/transport.h"
#include "sim/runner.h"

namespace dds::core {

/// Algorithms 1 & 2 (infinite window, sampling without replacement).
struct InfiniteTraits {
  using Site = InfiniteWindowSite;
  using Coordinator = InfiniteWindowCoordinator;
  /// `eager_threshold` forwards to InfiniteWindowCoordinator;
  /// `suppress_duplicates` to InfiniteWindowSite.
  struct Options {
    bool eager_threshold = false;
    bool suppress_duplicates = false;
  };
  struct Shared {
    hash::HashFunction hash_fn;
  };
  static constexpr bool kInvokeSlotBegin = false;
  static constexpr bool kShardableCoordinator = true;
  static constexpr bool kShardableSites = true;

  static Shared make_shared(const SystemConfig& config) {
    return Shared{
        hash::HashFunction(config.hash_kind,
                           util::derive_seed(config.seed, 0xA5))};
  }
  static std::unique_ptr<Coordinator> make_coordinator(
      sim::NodeId id, std::uint32_t /*shard*/, const SystemConfig& config,
      const Shared& /*shared*/, const Options& options) {
    return std::make_unique<Coordinator>(id, config.sample_size,
                                         /*instance=*/0,
                                         options.eager_threshold);
  }
  static std::unique_ptr<Site> make_site(sim::NodeId id,
                                         sim::NodeId coordinator,
                                         const SystemConfig& /*config*/,
                                         const Shared& shared,
                                         const Options& options) {
    return std::make_unique<Site>(id, coordinator, shared.hash_fn,
                                  /*instance=*/0, options.suppress_duplicates);
  }
  /// Exact global bottom-s: each shard's sample is the bottom-s of its
  /// element partition, so the bottom-s of their union is the bottom-s
  /// of everything.
  static BottomSSample merge_samples(
      const std::vector<std::unique_ptr<Coordinator>>& coordinators,
      const SystemConfig& config) {
    BottomSSample merged(config.sample_size);
    for (const auto& coordinator : coordinators) {
      for (const auto& entry : coordinator->sample().entries()) {
        merged.offer(entry.element, entry.hash);
      }
    }
    return merged;
  }
};

/// Chapter 3's with-replacement sampler (s parallel s=1 copies).
struct WithReplacementTraits {
  using Site = WithReplacementSite;
  using Coordinator = WithReplacementCoordinator;
  struct Options {};
  struct Shared {
    hash::HashFamily family;
  };
  static constexpr bool kInvokeSlotBegin = false;
  static constexpr bool kShardableCoordinator = true;
  static constexpr bool kShardableSites = true;

  static Shared make_shared(const SystemConfig& config) {
    return Shared{hash::HashFamily(config.hash_kind,
                                   util::derive_seed(config.seed, 0xB6))};
  }
  static std::unique_ptr<Coordinator> make_coordinator(
      sim::NodeId id, std::uint32_t /*shard*/, const SystemConfig& config,
      const Shared& shared, const Options& /*options*/) {
    return std::make_unique<Coordinator>(id, shared.family,
                                         config.sample_size);
  }
  static std::unique_ptr<Site> make_site(sim::NodeId id,
                                         sim::NodeId coordinator,
                                         const SystemConfig& config,
                                         const Shared& shared,
                                         const Options& /*options*/) {
    return std::make_unique<Site>(id, coordinator, shared.family,
                                  config.sample_size);
  }
  /// Copy j's global sample element is the min-hash element of copy j
  /// across shards (each shard holds the min over its own partition).
  static std::vector<stream::Element> merge_samples(
      const std::vector<std::unique_ptr<Coordinator>>& coordinators,
      const SystemConfig& config) {
    std::vector<stream::Element> out;
    out.reserve(config.sample_size);
    for (std::size_t j = 0; j < config.sample_size; ++j) {
      bool found = false;
      BottomSSample::Entry best{};
      for (const auto& coordinator : coordinators) {
        const auto entries = coordinator->copy(j).sample().entries();
        if (!entries.empty() && (!found || entries.front().hash < best.hash)) {
          found = true;
          best = entries.front();
        }
      }
      if (found) out.push_back(best.element);
    }
    return out;
  }
};

/// Algorithms 3 & 4 (sliding window; sample_size independent copies,
/// sample_size = 1 being the paper's base protocol).
struct SlidingTraits {
  using Site = MultiSlidingSite;
  using Coordinator = MultiSlidingCoordinator;
  struct Options {};
  struct Shared {
    hash::HashFamily family;
  };
  static constexpr bool kInvokeSlotBegin = true;
  /// Sharding the coordinator needs an element-partitioned expiry story
  /// at query time; not implemented — deploy one coordinator.
  static constexpr bool kShardableCoordinator = false;
  static constexpr bool kShardableSites = true;

  static Shared make_shared(const SystemConfig& config) {
    return Shared{hash::HashFamily(config.hash_kind,
                                   util::derive_seed(config.seed, 0xC7))};
  }
  static std::unique_ptr<Coordinator> make_coordinator(
      sim::NodeId id, std::uint32_t /*shard*/, const SystemConfig& config,
      const Shared& /*shared*/, const Options& /*options*/) {
    return std::make_unique<Coordinator>(id, config.sample_size);
  }
  static std::unique_ptr<Site> make_site(sim::NodeId id,
                                         sim::NodeId coordinator,
                                         const SystemConfig& config,
                                         const Shared& shared,
                                         const Options& /*options*/) {
    return std::make_unique<Site>(
        id, coordinator, config.window, shared.family, config.sample_size,
        util::derive_seed(config.seed, 0xD800ULL + id), config.substrate);
  }
};

using InfiniteSystem = Deployment<InfiniteTraits>;
using WithReplacementSystem = Deployment<WithReplacementTraits>;
using SlidingSystem = Deployment<SlidingTraits>;

}  // namespace dds::core
