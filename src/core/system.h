// Deployment facades for the paper's protocols — each is the templated
// core::Deployment builder instantiated with a small Traits struct that
// names the protocol's node types and constructor recipe. Examples,
// tests, and every bench binary build on these instead of repeating the
// plumbing. SystemConfig (including the num_shards / num_threads scale
// knobs) lives in core/deployment.h.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/bottom_s_sample.h"
#include "core/deployment.h"
#include "core/infinite_coordinator.h"
#include "core/infinite_site.h"
#include "core/multi_sliding.h"
#include "core/with_replacement.h"
#include "hash/hash_function.h"
#include "net/config.h"
#include "net/transport.h"
#include "query/merge.h"
#include "sim/runner.h"

namespace dds::core {

/// Algorithms 1 & 2 (infinite window, sampling without replacement).
struct InfiniteTraits {
  using Site = InfiniteWindowSite;
  using Coordinator = InfiniteWindowCoordinator;
  /// `eager_threshold` forwards to InfiniteWindowCoordinator;
  /// `suppress_duplicates` to InfiniteWindowSite.
  struct Options {
    bool eager_threshold = false;
    bool suppress_duplicates = false;
  };
  struct Shared {
    hash::HashFunction hash_fn;
  };
  static constexpr bool kInvokeSlotBegin = false;
  static constexpr bool kShardableCoordinator = true;
  static constexpr bool kShardableSites = true;

  static Shared make_shared(const SystemConfig& config) {
    return Shared{
        hash::HashFunction(config.hash_kind,
                           util::derive_seed(config.seed, 0xA5))};
  }
  static std::unique_ptr<Coordinator> make_coordinator(
      sim::NodeId id, std::uint32_t /*shard*/, const SystemConfig& config,
      const Shared& /*shared*/, const Options& options) {
    return std::make_unique<Coordinator>(id, config.sample_size,
                                         /*instance=*/0,
                                         options.eager_threshold);
  }
  static std::unique_ptr<Site> make_site(sim::NodeId id,
                                         sim::NodeId coordinator,
                                         const SystemConfig& /*config*/,
                                         const Shared& shared,
                                         const Options& options) {
    return std::make_unique<Site>(id, coordinator, shared.hash_fn,
                                  /*instance=*/0, options.suppress_duplicates);
  }
  /// Exact global bottom-s: each shard's sample is the bottom-s of its
  /// element partition, so the bottom-s of their union is the bottom-s
  /// of everything (query::BottomSMerger).
  static BottomSSample merge_samples(
      const std::vector<std::unique_ptr<Coordinator>>& coordinators,
      const SystemConfig& config) {
    query::BottomSMerger merger(config.sample_size);
    for (const auto& coordinator : coordinators) {
      merger.add(coordinator->sample());
    }
    return merger.result();
  }
};

/// Chapter 3's with-replacement sampler (s parallel s=1 copies).
struct WithReplacementTraits {
  using Site = WithReplacementSite;
  using Coordinator = WithReplacementCoordinator;
  struct Options {};
  struct Shared {
    hash::HashFamily family;
  };
  static constexpr bool kInvokeSlotBegin = false;
  static constexpr bool kShardableCoordinator = true;
  static constexpr bool kShardableSites = true;

  static Shared make_shared(const SystemConfig& config) {
    return Shared{hash::HashFamily(config.hash_kind,
                                   util::derive_seed(config.seed, 0xB6))};
  }
  static std::unique_ptr<Coordinator> make_coordinator(
      sim::NodeId id, std::uint32_t /*shard*/, const SystemConfig& config,
      const Shared& shared, const Options& /*options*/) {
    return std::make_unique<Coordinator>(id, shared.family,
                                         config.sample_size);
  }
  static std::unique_ptr<Site> make_site(sim::NodeId id,
                                         sim::NodeId coordinator,
                                         const SystemConfig& config,
                                         const Shared& shared,
                                         const Options& /*options*/) {
    return std::make_unique<Site>(id, coordinator, shared.family,
                                  config.sample_size);
  }
  /// Copy j's global sample element is the min-hash element of copy j
  /// across shards (each shard holds the min over its own partition;
  /// query::PerCopyMinMerger).
  static std::vector<stream::Element> merge_samples(
      const std::vector<std::unique_ptr<Coordinator>>& coordinators,
      const SystemConfig& config) {
    query::PerCopyMinMerger merger(config.sample_size);
    for (const auto& coordinator : coordinators) {
      for (std::size_t j = 0; j < config.sample_size; ++j) {
        const auto entries = coordinator->copy(j).sample().entries();
        if (!entries.empty()) {
          merger.offer(j, entries.front().element, entries.front().hash);
        }
      }
    }
    return merger.elements();
  }
};

/// Algorithms 3 & 4 (sliding window; sample_size independent copies,
/// sample_size = 1 being the paper's base protocol).
struct SlidingTraits {
  using Site = MultiSlidingSite;
  using Coordinator = MultiSlidingCoordinator;
  struct Options {};
  struct Shared {
    hash::HashFamily family;
  };
  static constexpr bool kInvokeSlotBegin = true;
  /// Sharded coordinator: shard j runs the unmodified lazy protocol
  /// over its element partition (per-shard site copies carry their own
  /// candidate sets and expiry); queries merge per copy through the
  /// validity-window-aware merger. Note the lazy protocol's documented
  /// transient (sliding_coordinator.h) applies per shard: each shard's
  /// answer is a valid element of its partition's window but may lag
  /// the partition minimum briefly after an expiry, so the merged
  /// answer carries the same guarantee per copy — exact whenever every
  /// shard is in its exact regime (always for k = 1, and in the common
  /// case otherwise; tests/sliding_shard_test.cpp quantifies it). The
  /// bottom-s window protocols (baseline_system.h) shard with full
  /// per-slot exactness.
  static constexpr bool kShardableCoordinator = true;
  static constexpr bool kShardableSites = true;

  static Shared make_shared(const SystemConfig& config) {
    return Shared{hash::HashFamily(config.hash_kind,
                                   util::derive_seed(config.seed, 0xC7))};
  }
  static std::unique_ptr<Coordinator> make_coordinator(
      sim::NodeId id, std::uint32_t /*shard*/, const SystemConfig& config,
      const Shared& /*shared*/, const Options& /*options*/) {
    return std::make_unique<Coordinator>(id, config.sample_size);
  }
  static std::unique_ptr<Site> make_site(sim::NodeId id,
                                         sim::NodeId coordinator,
                                         const SystemConfig& config,
                                         const Shared& shared,
                                         const Options& /*options*/) {
    return std::make_unique<Site>(
        id, coordinator, config.window, shared.family, config.sample_size,
        util::derive_seed(config.seed, 0xD800ULL + id), config.substrate);
  }
  /// Validity-aware per-copy merge at slot `now`: copy j's answer is
  /// the smallest copy-j hash among the shards' still-valid samples —
  /// each copy respects its own expiry independently. Same shape as
  /// MultiSlidingCoordinator::sample(now).
  static std::vector<stream::Element> merge_samples_at(
      const std::vector<std::unique_ptr<Coordinator>>& coordinators,
      const SystemConfig& config, sim::Slot now) {
    std::vector<stream::Element> out;
    out.reserve(config.sample_size);
    for (std::size_t j = 0; j < config.sample_size; ++j) {
      query::SlidingValidityMerger merger(/*sample_size=*/1, now);
      for (const auto& coordinator : coordinators) {
        merger.offer(coordinator->copy(j).sample(now));
      }
      if (const auto best = merger.min_hash()) out.push_back(best->element);
    }
    return out;
  }
};

using InfiniteSystem = Deployment<InfiniteTraits>;
using WithReplacementSystem = Deployment<WithReplacementTraits>;
using SlidingSystem = Deployment<SlidingTraits>;

}  // namespace dds::core
