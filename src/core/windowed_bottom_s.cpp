#include "core/windowed_bottom_s.h"

namespace dds::core {

WindowedBottomSSampler::WindowedBottomSSampler(std::size_t sample_size,
                                               sim::Slot window,
                                               hash::HashFunction hash_fn,
                                               std::uint64_t seed)
    : window_(window),
      hash_fn_(std::move(hash_fn)),
      candidates_(sample_size, seed) {}

void WindowedBottomSSampler::observe(stream::Element element, sim::Slot t) {
  candidates_.expire(t);
  candidates_.observe(element, hash_fn_(element), t + window_);
}

std::vector<treap::Candidate> WindowedBottomSSampler::sample(sim::Slot now) {
  candidates_.expire(now);
  return candidates_.bottom_s();
}

void WindowedBottomSSampler::sample_into(sim::Slot now,
                                         std::vector<treap::Candidate>& out) {
  candidates_.expire(now);
  candidates_.bottom_s_into(out);
}

}  // namespace dds::core
