#include "core/windowed_bottom_s.h"

namespace dds::core {

WindowedBottomSSampler::WindowedBottomSSampler(std::size_t sample_size,
                                               sim::Slot window,
                                               hash::HashFunction hash_fn,
                                               std::uint64_t seed)
    : window_(window),
      hash_fn_(std::move(hash_fn)),
      candidates_(sample_size, seed) {}

void WindowedBottomSSampler::observe(stream::Element element, sim::Slot t) {
  candidates_.expire(t);
  candidates_.observe(element, hash_fn_(element), t + window_);
}

void WindowedBottomSSampler::observe_hashed(stream::Element element,
                                            std::uint64_t hv, sim::Slot t) {
  candidates_.expire(t);
  candidates_.observe(element, hv, t + window_);
}

void WindowedBottomSSampler::observe_batch(
    std::span<const stream::Element> elements, sim::Slot t) {
  const std::size_t n = elements.size();
  if (n == 0) return;
  if (hash_scratch_.size() < n) hash_scratch_.resize(n);
  hash_fn_.hash_batch(elements.data(), n, hash_scratch_.data());
  candidates_.expire(t);  // once per batch; repeats at the same t are no-ops
  // One combined dominance sweep for the whole batch (all arrivals
  // share expiry t + W) — same final candidate set as per-element
  // observe(), at the sweep cost of one newcomer instead of n.
  candidates_.observe_group(elements.data(), hash_scratch_.data(), n,
                            t + window_);
}

std::vector<treap::Candidate> WindowedBottomSSampler::sample(sim::Slot now) {
  candidates_.expire(now);
  return candidates_.bottom_s();
}

void WindowedBottomSSampler::sample_into(sim::Slot now,
                                         std::vector<treap::Candidate>& out) {
  candidates_.expire(now);
  candidates_.bottom_s_into(out);
}

void WindowedBottomSSampler::sample_at_width_into(
    sim::Slot now, sim::Slot width, std::vector<treap::Candidate>& out) {
  candidates_.expire(now);
  candidates_.bottom_s_valid_after(now + (window_ - width), out);
}

}  // namespace dds::core
