#include "core/infinite_site.h"

namespace dds::core {

InfiniteWindowSite::InfiniteWindowSite(sim::NodeId id, sim::NodeId coordinator,
                                       hash::HashFunction hash_fn,
                                       std::uint32_t instance,
                                       bool suppress_duplicates)
    : id_(id),
      coordinator_(coordinator),
      hash_fn_(std::move(hash_fn)),
      instance_(instance),
      suppress_duplicates_(suppress_duplicates) {}

void InfiniteWindowSite::on_element(stream::Element element, sim::Slot /*t*/,
                                    net::Transport& bus) {
  if (suppress_duplicates_ && known_sampled_.contains(element)) return;
  const std::uint64_t hv = hash_fn_(element);
  if (hv < u_local_) {
    sim::Message msg;
    msg.from = id_;
    msg.to = coordinator_;
    msg.type = sim::MsgType::kReportElement;
    msg.instance = instance_;
    msg.a = element;
    msg.b = hv;
    bus.send(msg);
    pending_report_ = element;
  }
}

void InfiniteWindowSite::on_message(const sim::Message& msg, net::Transport& /*bus*/) {
  if (msg.type == sim::MsgType::kThresholdReply ||
      msg.type == sim::MsgType::kThresholdBroadcast) {
    if (msg.instance == instance_) {
      u_local_ = msg.b;
      // A threshold reset broadcast (u = 1, i.e. kHashMax) is the
      // post-failover resync (checkpoint.h): forget suppression state so
      // every element is re-offered on its next arrival.
      if (msg.type == sim::MsgType::kThresholdBroadcast &&
          msg.b == hash::kHashMax) {
        known_sampled_.clear();
      }
      // Reply flag: the element we just reported is in the sample. The
      // zero-delay model guarantees the reply for report j arrives
      // before report j+1 is issued, so pending_report_ is unambiguous.
      if (suppress_duplicates_ && msg.type == sim::MsgType::kThresholdReply &&
          msg.a == 1) {
        known_sampled_.insert(pending_report_);
      }
    }
  }
}

}  // namespace dds::core
