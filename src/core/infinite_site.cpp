#include "core/infinite_site.h"

#include "util/bytes.h"

namespace dds::core {

InfiniteWindowSite::InfiniteWindowSite(sim::NodeId id, sim::NodeId coordinator,
                                       hash::HashFunction hash_fn,
                                       std::uint32_t instance,
                                       bool suppress_duplicates)
    : id_(id),
      coordinator_(coordinator),
      hash_fn_(std::move(hash_fn)),
      instance_(instance),
      suppress_duplicates_(suppress_duplicates) {}

void InfiniteWindowSite::on_element(stream::Element element, sim::Slot /*t*/,
                                    net::Transport& bus) {
  if (!admits(element)) return;
  on_element_hashed(element, hash_fn_(element), bus);
}

void InfiniteWindowSite::on_element_hashed(stream::Element element,
                                           std::uint64_t hv,
                                           net::Transport& bus) {
  if (hv < u_local_) {
    sim::Message msg;
    msg.from = id_;
    msg.to = coordinator_;
    msg.type = sim::MsgType::kReportElement;
    msg.instance = instance_;
    msg.a = element;
    msg.b = hv;
    bus.send(msg);
    pending_report_ = element;
  }
}

void InfiniteWindowSite::on_element_batch(
    std::span<const std::uint64_t> elements, sim::Slot /*t*/,
    net::Transport& bus) {
  const std::size_t n = elements.size();
  if (hash_scratch_.size() < n) hash_scratch_.resize(n);
  hash_fn_.hash_batch(elements.data(), n, hash_scratch_.data());
  for (std::size_t i = 0; i < n; ++i) {
    if (admits(elements[i])) {
      on_element_hashed(elements[i], hash_scratch_[i], bus);
    }
    // Per-element drain boundary: the reply to a report must lower
    // u_local_ before the next element decides whether to report.
    bus.drain();
  }
}

void InfiniteWindowSite::on_message(const sim::Message& msg, net::Transport& /*bus*/) {
  if (msg.type == sim::MsgType::kThresholdReply ||
      msg.type == sim::MsgType::kThresholdBroadcast) {
    if (msg.instance == instance_) {
      u_local_ = msg.b;
      // A threshold reset broadcast (u = 1, i.e. kHashMax) is the
      // post-failover resync (checkpoint.h): forget suppression state so
      // every element is re-offered on its next arrival.
      if (msg.type == sim::MsgType::kThresholdBroadcast &&
          msg.b == hash::kHashMax) {
        known_sampled_.clear();
      }
      // Reply flag: the element we just reported is in the sample. The
      // zero-delay model guarantees the reply for report j arrives
      // before report j+1 is issued, so pending_report_ is unambiguous.
      if (suppress_duplicates_ && msg.type == sim::MsgType::kThresholdReply &&
          msg.a == 1) {
        known_sampled_.insert(pending_report_);
      }
    }
  }
}

void InfiniteWindowSite::save_speculation_state(
    std::vector<std::uint8_t>& out) const {
  util::put_u64(out, u_local_);
  util::put_u64(out, pending_report_);
  util::put_u64(out, known_sampled_.size());
  // Set order is unspecified, but the restored set is behaviorally
  // identical: only contains()/size() are consulted, never iteration.
  for (const stream::Element e : known_sampled_) util::put_u64(out, e);
}

void InfiniteWindowSite::restore_speculation_state(
    std::span<const std::uint8_t> image) {
  std::size_t pos = 0;
  u_local_ = util::get_u64(image, pos);
  pending_report_ = util::get_u64(image, pos);
  const std::uint64_t n = util::get_u64(image, pos);
  known_sampled_.clear();
  for (std::uint64_t i = 0; i < n; ++i) {
    known_sampled_.insert(util::get_u64(image, pos));
  }
}

}  // namespace dds::core
