#include "core/sliding_coordinator.h"

namespace dds::core {

SlidingWindowCoordinator::SlidingWindowCoordinator(sim::NodeId id,
                                                   std::uint32_t instance)
    : id_(id), instance_(instance) {}

void SlidingWindowCoordinator::on_message(const sim::Message& msg,
                                          net::Transport& bus) {
  if (msg.type != sim::MsgType::kSlidingReport || msg.instance != instance_) {
    return;
  }
  const sim::Slot now = bus.now();
  const auto incoming_expiry = static_cast<sim::Slot>(msg.c);
  const bool stored_expired = !has_ || expiry_ <= now;
  const bool smaller_hash = has_ && msg.b < u_;
  const bool refresh = has_ && msg.a == element_ && incoming_expiry > expiry_;
  if (stored_expired || smaller_hash || refresh) {
    has_ = true;
    element_ = msg.a;
    u_ = msg.b;
    expiry_ = incoming_expiry;
  }
  sim::Message reply;
  reply.from = id_;
  reply.to = msg.from;
  reply.type = sim::MsgType::kSlidingReply;
  reply.instance = instance_;
  reply.a = element_;
  reply.b = u_;
  reply.c = static_cast<std::uint64_t>(expiry_);
  bus.send(reply);
}

std::optional<treap::Candidate> SlidingWindowCoordinator::sample(
    sim::Slot now) const {
  if (!has_ || expiry_ <= now) return std::nullopt;
  return treap::Candidate{element_, u_, expiry_};
}

std::optional<treap::Candidate> SlidingWindowCoordinator::raw_sample() const {
  if (!has_) return std::nullopt;
  return treap::Candidate{element_, u_, expiry_};
}

void SlidingWindowCoordinator::restore(
    const std::optional<treap::Candidate>& stored) {
  has_ = stored.has_value();
  element_ = stored ? stored->element : 0;
  u_ = stored ? stored->hash : hash::kHashMax;
  expiry_ = stored ? stored->expiry : 0;
}

}  // namespace dds::core
