// BottomSSample — the coordinator's sample container P.
//
// Holds the (up to) s distinct elements with the smallest hash values
// offered so far. This is exactly the paper's sampling strategy
// (Chapter 3): "the distinct sample at time t is the set of elements
// from S(t) that yield the s smallest elements in h(S(t))" — a bottom-s
// (KMV) sketch, which is simultaneously a uniform random sample without
// replacement from the distinct elements.
#pragma once

#include <cassert>
#include <cstdint>
#include <set>
#include <unordered_set>
#include <vector>

#include "hash/hash_function.h"
#include "stream/element.h"

namespace dds::core {

class BottomSSample {
 public:
  /// What an offer() did.
  enum class Outcome : std::uint8_t {
    kDuplicate,  ///< element already sampled; no change
    kInserted,   ///< element added, capacity not yet exceeded
    kReplaced,   ///< element added, largest-hash element evicted
    kRejected,   ///< hash too large for a full sample; no change
  };

  struct Entry {
    stream::Element element = 0;
    std::uint64_t hash = 0;
  };

  explicit BottomSSample(std::size_t capacity);

  /// Offers (element, hash). The same element must always be offered
  /// with the same hash (h is a function).
  Outcome offer(stream::Element element, std::uint64_t hash);

  std::size_t capacity() const noexcept { return capacity_; }
  std::size_t size() const noexcept { return by_hash_.size(); }
  bool full() const noexcept { return size() == capacity_; }
  bool contains(stream::Element element) const {
    return members_.contains(element);
  }

  /// Largest hash in the sample; asserts non-empty.
  std::uint64_t max_hash() const {
    assert(!by_hash_.empty());
    return std::prev(by_hash_.end())->first;
  }

  /// The s-th smallest hash observed so far, or kHashMax while fewer
  /// than s distinct elements have been offered. This is u(t).
  std::uint64_t threshold() const noexcept {
    return full() && capacity_ > 0 ? std::prev(by_hash_.end())->first
                                   : hash::kHashMax;
  }

  /// Entries in hash-ascending order.
  std::vector<Entry> entries() const;

  /// Just the elements, hash-ascending.
  std::vector<stream::Element> elements() const;

 private:
  std::size_t capacity_;
  std::set<std::pair<std::uint64_t, stream::Element>> by_hash_;
  std::unordered_set<stream::Element> members_;
};

}  // namespace dds::core
