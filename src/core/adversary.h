// The lower-bound adversary (Section 3.1.0.2).
//
// Lemma 9 constructs the worst-case input for ANY algorithm: in every
// round, one previously-unseen element is delivered to every one of the
// k sites. Against this input every correct algorithm must send an
// expected >= (ks/2)(H_d - H_s + 1) ~ (ks/2) ln(de/s) messages.
//
// Operationally that input is exactly flooding an all-distinct stream,
// so the factory below composes AllDistinctStream + FloodingPartitioner.
// The abl1 bench runs our algorithm on it and checks the measured cost
// sits between the lower bound and the Lemma 4 upper bound
// 2ks(1 + ln(d/s)) — within the paper's claimed factor of four of
// optimal.
#pragma once

#include <cstdint>
#include <memory>

#include "sim/runner.h"
#include "stream/generators.h"
#include "stream/partitioner.h"

namespace dds::core {

/// Holds the stream alive for the partitioner that consumes it.
class AdversarialInput final : public sim::ArrivalSource {
 public:
  /// `rounds` = d, the number of distinct elements the adversary plays.
  AdversarialInput(std::uint64_t rounds, std::uint32_t num_sites,
                   std::uint64_t seed)
      : stream_(rounds, seed), partitioner_(stream_, num_sites) {}

  std::optional<sim::Arrival> next() override { return partitioner_.next(); }

 private:
  stream::AllDistinctStream stream_;
  stream::FloodingPartitioner partitioner_;
};

}  // namespace dds::core
