// Algorithm 1 — the infinite-window algorithm at site i.
//
//   Initialization: receive h from coordinator; u_i <- 1
//   when element e arrives: if h(e) < u_i:
//     send e to the coordinator; receive u' back; u_i <- u'
//
// The site keeps O(1) state: its hash function and the local threshold
// view u_i. u_i is only refreshed by coordinator replies, so it may lag
// the true u(t) — but never below it, which is what bounds messages
// (Lemma 2) without hurting correctness.
//
// Reproduction note. The thesis's Lemma 2 proof asserts that repeated
// occurrences of an element never trigger communication ("h(e) cannot be
// less than u_i for such repeat occurrences"). That is true for every
// element EXCEPT current sample members: an element strictly inside the
// bottom-s has h(e) < u <= u_i, so each re-arrival re-reports it (the
// coordinator ignores the duplicate and replies; 2 wasted messages).
// The expected extra cost is sum over arrivals of s/d(t) — small, and
// zero on the all-distinct adversarial inputs the bounds are proved on,
// so the Theta(ks ln(d/s)) result stands. The faithful pseudocode
// behaviour is the default; `suppress_duplicates` enables an O(s)-memory
// extension that makes repeats genuinely free: the coordinator's reply
// says whether the reported element entered the sample, and the site
// skips future reports of elements it knows are sampled (safe because an
// element evicted from the bottom-s can never re-enter it). The abl6
// bench quantifies the saving on duplicate-heavy traces.
#pragma once

#include <span>
#include <unordered_set>
#include <vector>

#include "hash/hash_function.h"
#include "net/transport.h"
#include "sim/node.h"
#include "stream/element.h"

namespace dds::core {

class InfiniteWindowSite final : public sim::StreamNode {
 public:
  /// `instance` tags this site's traffic when several independent
  /// samplers share the bus (with-replacement sampling).
  /// `suppress_duplicates` enables the extension described above.
  InfiniteWindowSite(sim::NodeId id, sim::NodeId coordinator,
                     hash::HashFunction hash_fn, std::uint32_t instance = 0,
                     bool suppress_duplicates = false);

  void on_element(stream::Element element, sim::Slot t, net::Transport& bus) override;
  void on_element_batch(std::span<const std::uint64_t> elements, sim::Slot t,
                        net::Transport& bus) override;
  void on_message(const sim::Message& msg, net::Transport& bus) override;

  /// on_element with the hash precomputed — the batched ingest entry
  /// (WithReplacementSite hashes all copies x elements up front). The
  /// caller owns the per-element drain boundary and must gate on
  /// admits() first, like on_element's early return.
  void on_element_hashed(stream::Element element, std::uint64_t hv,
                         net::Transport& bus);

  /// False iff the suppression extension knows `element` is already
  /// sampled (on_element's early return; batch paths check before
  /// spending a precomputed hash).
  bool admits(stream::Element element) const {
    return !(suppress_duplicates_ && known_sampled_.contains(element));
  }

  const hash::HashFunction& hash_fn() const noexcept { return hash_fn_; }

  /// O(1) state (plus the suppression set when enabled).
  std::size_t state_size() const noexcept override {
    return 1 + known_sampled_.size();
  }

  std::uint64_t local_threshold() const noexcept { return u_local_; }

  /// Simulates a crash-restart: all volatile state (threshold view and
  /// suppression memory) is lost, exactly as a rebooted site would come
  /// back with the Algorithm-1 initialization u_i <- 1. The protocol
  /// self-heals — a stale-free view only causes extra reports, never a
  /// wrong sample — which the crash-recovery tests verify.
  void reset() noexcept {
    u_local_ = hash::kHashMax;
    known_sampled_.clear();
    pending_report_ = 0;
  }

  /// Speculation snapshots: the behavioral state is the threshold view,
  /// the pending report, and the suppression set (order-independent —
  /// only contains()/size() are ever consulted). The hash function is
  /// immutable and hash_scratch_ is rebuilt per batch, so neither is
  /// captured.
  bool speculation_capable() const noexcept override { return true; }
  void save_speculation_state(std::vector<std::uint8_t>& out) const override;
  void restore_speculation_state(
      std::span<const std::uint8_t> image) override;

 private:
  sim::NodeId id_;
  sim::NodeId coordinator_;
  hash::HashFunction hash_fn_;
  std::uint32_t instance_;
  bool suppress_duplicates_;
  std::uint64_t u_local_ = hash::kHashMax;  // the paper's u_i <- 1
  /// Extension state: elements this site knows to be (or to have been)
  /// in the coordinator's sample; never worth re-reporting.
  std::unordered_set<stream::Element> known_sampled_;
  stream::Element pending_report_ = 0;  // element awaiting its reply
  std::vector<std::uint64_t> hash_scratch_;  // batched-hash buffer
};

}  // namespace dds::core
