#include "core/checkpoint.h"

#include <cstring>

namespace dds::core {

namespace ckpt {

void put_u64(CheckpointImage& out, std::uint64_t value) {
  for (int b = 0; b < 8; ++b) {
    out.push_back(static_cast<std::uint8_t>(value >> (8 * b)));
  }
}

std::optional<std::uint64_t> get_u64(const CheckpointImage& in,
                                     std::size_t& pos) {
  if (pos + 8 > in.size()) return std::nullopt;
  std::uint64_t value = 0;
  for (int b = 0; b < 8; ++b) {
    value |= static_cast<std::uint64_t>(in[pos + b]) << (8 * b);
  }
  pos += 8;
  return value;
}

std::uint64_t fnv1a(const CheckpointImage& in, std::size_t begin,
                    std::size_t end) {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (std::size_t i = begin; i < end; ++i) {
    h ^= in[i];
    h *= 0x100000001B3ULL;
  }
  return h;
}

void seal(CheckpointImage& out) {
  put_u64(out, fnv1a(out, 0, out.size()));
}

std::optional<std::size_t> body_end(const CheckpointImage& image,
                                    std::uint64_t version) {
  if (version == 1) return image.size();  // legacy: no checksum
  if (version != kVersion) return std::nullopt;
  // v2: the last word is the checksum over everything before it. The
  // smallest sealable image is [magic][version][checksum].
  if (image.size() < 24) return std::nullopt;
  const std::size_t end = image.size() - 8;
  std::size_t pos = end;
  const auto stored = get_u64(image, pos);
  if (!stored || *stored != fnv1a(image, 0, end)) return std::nullopt;
  return end;
}

}  // namespace ckpt

bool verify_checkpoint_image(const CheckpointImage& image) {
  std::size_t pos = 0;
  const auto magic = ckpt::get_u64(image, pos);
  const auto version = ckpt::get_u64(image, pos);
  if (!magic || !version) return false;
  if (*magic != ckpt::kInfiniteMagic && *magic != ckpt::kSlidingMagic &&
      *magic != ckpt::kCandidateMagic && *magic != ckpt::kFullSyncMagic &&
      *magic != ckpt::kBottomSMagic) {
    return false;
  }
  return ckpt::body_end(image, *version).has_value();
}

CheckpointImage checkpoint(const InfiniteWindowCoordinator& coordinator) {
  const auto entries = coordinator.sample().entries();
  CheckpointImage out;
  out.reserve(8 * (4 + 2 * entries.size() + 2));
  ckpt::put_u64(out, ckpt::kInfiniteMagic);
  ckpt::put_u64(out, ckpt::kVersion);
  ckpt::put_u64(out, coordinator.sample().capacity());
  ckpt::put_u64(out, entries.size());
  for (const auto& entry : entries) {
    ckpt::put_u64(out, entry.element);
    ckpt::put_u64(out, entry.hash);
  }
  ckpt::put_u64(out, coordinator.threshold());
  ckpt::seal(out);
  return out;
}

std::optional<CheckpointContents> parse_checkpoint(
    const CheckpointImage& image) {
  std::size_t pos = 0;
  const auto magic = ckpt::get_u64(image, pos);
  const auto version = ckpt::get_u64(image, pos);
  if (!magic || *magic != ckpt::kInfiniteMagic) return std::nullopt;
  if (!version) return std::nullopt;
  const auto end = ckpt::body_end(image, *version);
  if (!end) return std::nullopt;
  const auto capacity = ckpt::get_u64(image, pos);
  const auto count = ckpt::get_u64(image, pos);
  if (!capacity || *capacity == 0 || !count || *count > *capacity) {
    return std::nullopt;
  }
  // Bound the count by the bytes actually present BEFORE reserving by
  // it: a corrupted count must yield nullopt, not a length_error.
  if (*count > (*end - pos) / 16) return std::nullopt;
  CheckpointContents contents;
  contents.sample_size = static_cast<std::size_t>(*capacity);
  contents.entries.reserve(static_cast<std::size_t>(*count));
  for (std::uint64_t i = 0; i < *count; ++i) {
    const auto element = ckpt::get_u64(image, pos);
    const auto hash = ckpt::get_u64(image, pos);
    if (!element || !hash) return std::nullopt;
    contents.entries.push_back(BottomSSample::Entry{*element, *hash});
  }
  const auto threshold = ckpt::get_u64(image, pos);
  if (!threshold || pos != *end) return std::nullopt;
  contents.threshold = *threshold;
  return contents;
}

std::unique_ptr<InfiniteWindowCoordinator> restore_coordinator(
    sim::NodeId id, const CheckpointImage& image, std::uint32_t instance,
    bool eager_threshold) {
  const auto contents = parse_checkpoint(image);
  if (!contents) return nullptr;
  auto coordinator = std::make_unique<InfiniteWindowCoordinator>(
      id, contents->sample_size, instance, eager_threshold);
  coordinator->restore(contents->entries, contents->threshold);
  return coordinator;
}

bool restore_into(InfiniteWindowCoordinator& coordinator,
                  const CheckpointImage& image) {
  const auto contents = parse_checkpoint(image);
  if (!contents || contents->sample_size != coordinator.sample().capacity()) {
    return false;
  }
  coordinator.restore(contents->entries, contents->threshold);
  return true;
}

CheckpointImage checkpoint(const MultiSlidingCoordinator& coordinator) {
  CheckpointImage out;
  const std::size_t copies = coordinator.num_copies();
  out.reserve(8 * (3 + 4 * copies + 1));
  ckpt::put_u64(out, ckpt::kSlidingMagic);
  ckpt::put_u64(out, ckpt::kVersion);
  ckpt::put_u64(out, copies);
  for (std::size_t j = 0; j < copies; ++j) {
    const auto stored = coordinator.copy(j).raw_sample();
    ckpt::put_u64(out, stored ? 1 : 0);
    ckpt::put_u64(out, stored ? stored->element : 0);
    ckpt::put_u64(out, stored ? stored->hash : 0);
    ckpt::put_u64(out, stored ? static_cast<std::uint64_t>(stored->expiry) : 0);
  }
  ckpt::seal(out);
  return out;
}

std::optional<std::vector<std::optional<treap::Candidate>>>
parse_sliding_checkpoint(const CheckpointImage& image) {
  std::size_t pos = 0;
  const auto magic = ckpt::get_u64(image, pos);
  const auto version = ckpt::get_u64(image, pos);
  if (!magic || *magic != ckpt::kSlidingMagic) return std::nullopt;
  if (!version) return std::nullopt;
  const auto end = ckpt::body_end(image, *version);
  if (!end) return std::nullopt;
  // Validate the copy count against the image's actual size BEFORE
  // sizing anything by it: a corrupted count must yield nullopt, not a
  // length_error out of reserve(). The bound check comes first so the
  // exact-size formula cannot overflow on a huge count.
  const auto copies = ckpt::get_u64(image, pos);
  if (!copies || *copies == 0 || *copies > image.size() / 32 ||
      *end != 8 * (3 + 4 * *copies)) {
    return std::nullopt;
  }
  std::vector<std::optional<treap::Candidate>> out;
  out.reserve(static_cast<std::size_t>(*copies));
  for (std::uint64_t j = 0; j < *copies; ++j) {
    const auto has = ckpt::get_u64(image, pos);
    const auto element = ckpt::get_u64(image, pos);
    const auto hash = ckpt::get_u64(image, pos);
    const auto expiry = ckpt::get_u64(image, pos);
    if (!has || !element || !hash || !expiry || *has > 1) return std::nullopt;
    if (*has == 1) {
      out.push_back(treap::Candidate{*element, *hash,
                                     static_cast<sim::Slot>(*expiry)});
    } else {
      out.push_back(std::nullopt);
    }
  }
  if (pos != *end) return std::nullopt;
  return out;
}

std::unique_ptr<MultiSlidingCoordinator> restore_sliding_coordinator(
    sim::NodeId id, const CheckpointImage& image) {
  const auto contents = parse_sliding_checkpoint(image);
  if (!contents) return nullptr;
  auto coordinator =
      std::make_unique<MultiSlidingCoordinator>(id, contents->size());
  for (std::size_t j = 0; j < contents->size(); ++j) {
    coordinator->restore_copy(j, (*contents)[j]);
  }
  return coordinator;
}

bool restore_into(MultiSlidingCoordinator& coordinator,
                  const CheckpointImage& image) {
  const auto contents = parse_sliding_checkpoint(image);
  if (!contents || contents->size() != coordinator.num_copies()) return false;
  for (std::size_t j = 0; j < contents->size(); ++j) {
    coordinator.restore_copy(j, (*contents)[j]);
  }
  return true;
}

CheckpointImage checkpoint_candidates(
    const std::vector<treap::Candidate>& items) {
  CheckpointImage out;
  out.reserve(8 * (3 + 3 * items.size() + 1));
  ckpt::put_u64(out, ckpt::kCandidateMagic);
  ckpt::put_u64(out, ckpt::kVersion);
  ckpt::put_u64(out, items.size());
  for (const auto& c : items) {
    ckpt::put_u64(out, c.element);
    ckpt::put_u64(out, c.hash);
    ckpt::put_u64(out, static_cast<std::uint64_t>(c.expiry));
  }
  ckpt::seal(out);
  return out;
}

std::optional<std::vector<treap::Candidate>> parse_candidates(
    const CheckpointImage& image) {
  std::size_t pos = 0;
  const auto magic = ckpt::get_u64(image, pos);
  const auto version = ckpt::get_u64(image, pos);
  if (!magic || *magic != ckpt::kCandidateMagic) return std::nullopt;
  if (!version) return std::nullopt;
  const auto end = ckpt::body_end(image, *version);
  if (!end) return std::nullopt;
  // Size-bound first, so the exact-size formula cannot overflow on a
  // corrupted (huge) count.
  const auto count = ckpt::get_u64(image, pos);
  if (!count || *count > image.size() / 24 ||
      *end != 8 * (3 + 3 * *count)) {
    return std::nullopt;
  }
  std::vector<treap::Candidate> out;
  out.reserve(static_cast<std::size_t>(*count));
  for (std::uint64_t i = 0; i < *count; ++i) {
    const auto element = ckpt::get_u64(image, pos);
    const auto hash = ckpt::get_u64(image, pos);
    const auto expiry = ckpt::get_u64(image, pos);
    if (!element || !hash || !expiry) return std::nullopt;
    out.push_back(
        treap::Candidate{*element, *hash, static_cast<sim::Slot>(*expiry)});
  }
  if (pos != *end) return std::nullopt;
  return out;
}

void resync_sites(sim::NodeId coordinator_id, net::Transport& bus,
                  std::uint32_t instance) {
  for (std::uint32_t i = 0; i < bus.num_sites(); ++i) {
    sim::Message msg;
    msg.from = coordinator_id;
    msg.to = i;
    msg.type = sim::MsgType::kThresholdBroadcast;
    msg.instance = instance;
    msg.b = hash::kHashMax;  // u_i <- 1: report everything again
    bus.send(msg);
  }
  bus.drain();
}

}  // namespace dds::core
