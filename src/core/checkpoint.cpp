#include "core/checkpoint.h"

#include <cstring>

namespace dds::core {

namespace {

constexpr std::uint64_t kMagic = 0x4444535F434B5054ULL;  // "DDS_CKPT"
constexpr std::uint64_t kVersion = 1;
constexpr std::uint64_t kSlidingMagic = 0x4444535F53434B50ULL;  // "DDS_SCKP"
constexpr std::uint64_t kSlidingVersion = 1;

void put_u64(CheckpointImage& out, std::uint64_t value) {
  for (int b = 0; b < 8; ++b) {
    out.push_back(static_cast<std::uint8_t>(value >> (8 * b)));
  }
}

std::optional<std::uint64_t> get_u64(const CheckpointImage& in,
                                     std::size_t& pos) {
  if (pos + 8 > in.size()) return std::nullopt;
  std::uint64_t value = 0;
  for (int b = 0; b < 8; ++b) {
    value |= static_cast<std::uint64_t>(in[pos + b]) << (8 * b);
  }
  pos += 8;
  return value;
}

}  // namespace

CheckpointImage checkpoint(const InfiniteWindowCoordinator& coordinator) {
  const auto entries = coordinator.sample().entries();
  CheckpointImage out;
  out.reserve(8 * (4 + 2 * entries.size() + 1));
  put_u64(out, kMagic);
  put_u64(out, kVersion);
  put_u64(out, coordinator.sample().capacity());
  put_u64(out, entries.size());
  for (const auto& entry : entries) {
    put_u64(out, entry.element);
    put_u64(out, entry.hash);
  }
  put_u64(out, coordinator.threshold());
  return out;
}

std::optional<CheckpointContents> parse_checkpoint(
    const CheckpointImage& image) {
  std::size_t pos = 0;
  const auto magic = get_u64(image, pos);
  const auto version = get_u64(image, pos);
  const auto capacity = get_u64(image, pos);
  const auto count = get_u64(image, pos);
  if (!magic || *magic != kMagic) return std::nullopt;
  if (!version || *version != kVersion) return std::nullopt;
  if (!capacity || *capacity == 0 || !count || *count > *capacity) {
    return std::nullopt;
  }
  CheckpointContents contents;
  contents.sample_size = static_cast<std::size_t>(*capacity);
  contents.entries.reserve(static_cast<std::size_t>(*count));
  for (std::uint64_t i = 0; i < *count; ++i) {
    const auto element = get_u64(image, pos);
    const auto hash = get_u64(image, pos);
    if (!element || !hash) return std::nullopt;
    contents.entries.push_back(BottomSSample::Entry{*element, *hash});
  }
  const auto threshold = get_u64(image, pos);
  if (!threshold || pos != image.size()) return std::nullopt;
  contents.threshold = *threshold;
  return contents;
}

std::unique_ptr<InfiniteWindowCoordinator> restore_coordinator(
    sim::NodeId id, const CheckpointImage& image, std::uint32_t instance,
    bool eager_threshold) {
  const auto contents = parse_checkpoint(image);
  if (!contents) return nullptr;
  auto coordinator = std::make_unique<InfiniteWindowCoordinator>(
      id, contents->sample_size, instance, eager_threshold);
  coordinator->restore(contents->entries, contents->threshold);
  return coordinator;
}

CheckpointImage checkpoint(const MultiSlidingCoordinator& coordinator) {
  CheckpointImage out;
  const std::size_t copies = coordinator.num_copies();
  out.reserve(8 * (3 + 4 * copies));
  put_u64(out, kSlidingMagic);
  put_u64(out, kSlidingVersion);
  put_u64(out, copies);
  for (std::size_t j = 0; j < copies; ++j) {
    const auto stored = coordinator.copy(j).raw_sample();
    put_u64(out, stored ? 1 : 0);
    put_u64(out, stored ? stored->element : 0);
    put_u64(out, stored ? stored->hash : 0);
    put_u64(out, stored ? static_cast<std::uint64_t>(stored->expiry) : 0);
  }
  return out;
}

std::optional<std::vector<std::optional<treap::Candidate>>>
parse_sliding_checkpoint(const CheckpointImage& image) {
  std::size_t pos = 0;
  const auto magic = get_u64(image, pos);
  const auto version = get_u64(image, pos);
  const auto copies = get_u64(image, pos);
  if (!magic || *magic != kSlidingMagic) return std::nullopt;
  if (!version || *version != kSlidingVersion) return std::nullopt;
  // Validate the copy count against the image's actual size BEFORE
  // sizing anything by it: a corrupted count must yield nullopt, not a
  // length_error out of reserve(). The bound check comes first so the
  // exact-size formula cannot overflow on a huge count.
  if (!copies || *copies == 0 || *copies > image.size() / 32 ||
      image.size() != 8 * (3 + 4 * *copies)) {
    return std::nullopt;
  }
  std::vector<std::optional<treap::Candidate>> out;
  out.reserve(static_cast<std::size_t>(*copies));
  for (std::uint64_t j = 0; j < *copies; ++j) {
    const auto has = get_u64(image, pos);
    const auto element = get_u64(image, pos);
    const auto hash = get_u64(image, pos);
    const auto expiry = get_u64(image, pos);
    if (!has || !element || !hash || !expiry || *has > 1) return std::nullopt;
    if (*has == 1) {
      out.push_back(treap::Candidate{*element, *hash,
                                     static_cast<sim::Slot>(*expiry)});
    } else {
      out.push_back(std::nullopt);
    }
  }
  if (pos != image.size()) return std::nullopt;
  return out;
}

std::unique_ptr<MultiSlidingCoordinator> restore_sliding_coordinator(
    sim::NodeId id, const CheckpointImage& image) {
  const auto contents = parse_sliding_checkpoint(image);
  if (!contents) return nullptr;
  auto coordinator =
      std::make_unique<MultiSlidingCoordinator>(id, contents->size());
  for (std::size_t j = 0; j < contents->size(); ++j) {
    coordinator->restore_copy(j, (*contents)[j]);
  }
  return coordinator;
}

bool restore_into(MultiSlidingCoordinator& coordinator,
                  const CheckpointImage& image) {
  const auto contents = parse_sliding_checkpoint(image);
  if (!contents || contents->size() != coordinator.num_copies()) return false;
  for (std::size_t j = 0; j < contents->size(); ++j) {
    coordinator.restore_copy(j, (*contents)[j]);
  }
  return true;
}

void resync_sites(sim::NodeId coordinator_id, net::Transport& bus,
                  std::uint32_t instance) {
  for (std::uint32_t i = 0; i < bus.num_sites(); ++i) {
    sim::Message msg;
    msg.from = coordinator_id;
    msg.to = i;
    msg.type = sim::MsgType::kThresholdBroadcast;
    msg.instance = instance;
    msg.b = hash::kHashMax;  // u_i <- 1: report everything again
    bus.send(msg);
  }
  bus.drain();
}

}  // namespace dds::core
