// Coordinator checkpointing and failover.
//
// The coordinator is the single stateful hub of the protocol (sites are
// O(1)); in a real deployment it is the component one would replicate.
// This module serializes the infinite-window coordinator's state — the
// sample P and the threshold u — to a portable byte image, and restores
// it into a fresh coordinator.
//
// Failover semantics. Hashes only decrease u over time, so a restored
// checkpoint is a VALID uniform sample of the distinct elements seen up
// to checkpoint time; elements that arrived between the checkpoint and
// the crash may be missing and, because sites hold thresholds smaller
// than the restored u, would never be re-reported on their own. The
// `resync` helper closes that gap: it broadcasts a threshold reset
// (u_i <- 1) to every site — k messages — after which every element
// that belongs in the sample is re-offered on its next arrival. Tests
// verify the restored+resynced deployment converges to the exact
// bottom-s on re-exposure.
//
// The wire format is versioned and endian-stable (little-endian u64s):
//   [magic u64][version u64][sample_size u64][count u64]
//   [element u64, hash u64] * count   [u u64]
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/infinite_coordinator.h"
#include "net/transport.h"

namespace dds::core {

/// Serialized coordinator image.
using CheckpointImage = std::vector<std::uint8_t>;

/// Captures sample + threshold.
CheckpointImage checkpoint(const InfiniteWindowCoordinator& coordinator);

/// Parsed view of an image; nullopt if the image is malformed.
struct CheckpointContents {
  std::size_t sample_size = 0;
  std::vector<BottomSSample::Entry> entries;
  std::uint64_t threshold = 0;
};
std::optional<CheckpointContents> parse_checkpoint(const CheckpointImage& image);

/// Builds a fresh coordinator from an image. Returns nullptr if the
/// image is malformed. `instance` / `eager_threshold` as in the normal
/// constructor.
std::unique_ptr<InfiniteWindowCoordinator> restore_coordinator(
    sim::NodeId id, const CheckpointImage& image, std::uint32_t instance = 0,
    bool eager_threshold = false);

/// Broadcasts a threshold reset (u_i <- 1) from the coordinator to all
/// k sites — the post-failover resynchronization step. Costs exactly k
/// messages.
void resync_sites(sim::NodeId coordinator_id, net::Transport& bus,
                  std::uint32_t instance = 0);

}  // namespace dds::core
