// Coordinator checkpointing and failover.
//
// The coordinator is the single stateful hub of the protocol (sites are
// O(1)); in a real deployment it is the component one would replicate.
// This module serializes the infinite-window coordinator's state — the
// sample P and the threshold u — to a portable byte image, and restores
// it into a fresh coordinator.
//
// Failover semantics. Hashes only decrease u over time, so a restored
// checkpoint is a VALID uniform sample of the distinct elements seen up
// to checkpoint time; elements that arrived between the checkpoint and
// the crash may be missing and, because sites hold thresholds smaller
// than the restored u, would never be re-reported on their own. The
// `resync` helper closes that gap: it broadcasts a threshold reset
// (u_i <- 1) to every site — k messages — after which every element
// that belongs in the sample is re-offered on its next arrival. Tests
// verify the restored+resynced deployment converges to the exact
// bottom-s on re-exposure.
//
// The wire format is versioned and endian-stable (little-endian u64s).
// Version 2 — the current writer — appends a trailing FNV-1a checksum
// over every preceding byte, so in-flight corruption and truncation are
// detected before any state is touched; version-1 images (no checksum)
// still parse. Infinite-window layout:
//   [magic u64][version u64][sample_size u64][count u64]
//   [element u64, hash u64] * count   [u u64]   [checksum u64]
//
// Sliding-window coordinators checkpoint too (their own magic):
//   [magic u64][version u64][num_copies u64]
//   [has u64, element u64, hash u64, expiry u64] * num_copies
//   [checksum u64]
//
// Candidate-set images (lossless site failover) carry a DominanceSet /
// SDominanceSet snapshot() — the protocol-agnostic tuple list:
//   [magic u64][version u64][count u64]
//   [element u64, hash u64, expiry u64] * count   [checksum u64]
// The FullSync and bottom-s coordinator images (their own magics) live
// in baseline/baseline_checkpoint.h on the same helpers; the ensemble
// templates below find them by argument-dependent lookup.
// A sharded deployment's coordinator ensemble is simply one image per
// shard (checkpoint_ensemble / restore_ensemble below): shards are
// independent protocol instances, so per-shard images compose without
// any cross-shard coordination, and a restored ensemble answers merged
// queries at the checkpoint slot exactly as the original did.
//
// Sliding failover semantics: the restored coordinator serves queries
// for tuples that were valid at checkpoint time; anything adopted
// between checkpoint and crash is lost, but the lazy scheme self-heals
// without a resync broadcast — every site's sample view expires within
// one window, and an expired view makes the site re-offer its local
// minimum (Algorithm 3 lines 21-25), refilling the coordinator. So the
// answer is fully caught up after at most w slots of re-exposure,
// which the restore tests exercise.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/infinite_coordinator.h"
#include "core/multi_sliding.h"
#include "net/transport.h"
#include "obs/trace.h"
#include "treap/dominance_set.h"

namespace dds::core {

/// Serialized coordinator image.
using CheckpointImage = std::vector<std::uint8_t>;

// ---- shared byte-level helpers (protocol image writers build on these;
// ---- baseline/baseline_checkpoint.cpp is the other user) -------------
namespace ckpt {

/// Format version written by every checkpoint producer in this repo.
/// Version 2 added the trailing checksum; version-1 images still parse.
inline constexpr std::uint64_t kVersion = 2;

// Image magics (ASCII tags). All five live here — including the two
// used by baseline/baseline_checkpoint.cpp — so that
// verify_checkpoint_image() can recognize every image kind without a
// reverse dependency on the protocol modules.
inline constexpr std::uint64_t kInfiniteMagic = 0x4444535F434B5054ULL;   // "DDS_CKPT"
inline constexpr std::uint64_t kSlidingMagic = 0x4444535F53434B50ULL;    // "DDS_SCKP"
inline constexpr std::uint64_t kCandidateMagic = 0x4444535F43414E44ULL;  // "DDS_CAND"
inline constexpr std::uint64_t kFullSyncMagic = 0x4444535F4653594EULL;   // "DDS_FSYN"
inline constexpr std::uint64_t kBottomSMagic = 0x4444535F4253504CULL;    // "DDS_BSPL"

/// Appends one little-endian u64.
void put_u64(CheckpointImage& out, std::uint64_t value);

/// Reads one little-endian u64 at `pos` (advancing it), or nullopt if
/// fewer than 8 bytes remain.
std::optional<std::uint64_t> get_u64(const CheckpointImage& in,
                                     std::size_t& pos);

/// FNV-1a over image[begin, end).
std::uint64_t fnv1a(const CheckpointImage& in, std::size_t begin,
                    std::size_t end);

/// Seals a finished v2 body by appending the trailing checksum. Call
/// exactly once, after the last body word.
void seal(CheckpointImage& out);

/// Validates `version` (1 or 2) and, for v2, the trailing checksum.
/// Returns where the body ends — image.size() for v1, 8 bytes earlier
/// for v2 — or nullopt for an unknown version / checksum mismatch /
/// image too short to hold its checksum.
std::optional<std::size_t> body_end(const CheckpointImage& image,
                                    std::uint64_t version);

}  // namespace ckpt

/// Type-agnostic integrity check: the image leads with a known magic
/// and a parsable version, and its checksum (v2) verifies. This is the
/// supervisor's pre-restore gate — cheap enough to run on every
/// transferred image, catching bit-flips and truncation before any
/// protocol-specific parse is attempted.
bool verify_checkpoint_image(const CheckpointImage& image);

/// Captures sample + threshold.
CheckpointImage checkpoint(const InfiniteWindowCoordinator& coordinator);

/// Parsed view of an image; nullopt if the image is malformed.
struct CheckpointContents {
  std::size_t sample_size = 0;
  std::vector<BottomSSample::Entry> entries;
  std::uint64_t threshold = 0;
};
std::optional<CheckpointContents> parse_checkpoint(const CheckpointImage& image);

/// Builds a fresh coordinator from an image. Returns nullptr if the
/// image is malformed. `instance` / `eager_threshold` as in the normal
/// constructor.
std::unique_ptr<InfiniteWindowCoordinator> restore_coordinator(
    sim::NodeId id, const CheckpointImage& image, std::uint32_t instance = 0,
    bool eager_threshold = false);

/// Writes an image's sample + threshold into an existing coordinator (a
/// fresh deployment's shard). Returns false — leaving the coordinator
/// untouched — if the image is malformed or its sample size differs.
bool restore_into(InfiniteWindowCoordinator& coordinator,
                  const CheckpointImage& image);

/// Broadcasts a threshold reset (u_i <- 1) from the coordinator to all
/// k sites — the post-failover resynchronization step. Costs exactly k
/// messages.
void resync_sites(sim::NodeId coordinator_id, net::Transport& bus,
                  std::uint32_t instance = 0);

// ---- sliding-window coordinators ------------------------------------

/// Captures the s per-copy (e*, u*, t*) tuples of a (possibly sharded)
/// sliding coordinator.
CheckpointImage checkpoint(const MultiSlidingCoordinator& coordinator);

/// Parsed view of a sliding image; nullopt if malformed. One optional
/// tuple per protocol copy.
std::optional<std::vector<std::optional<treap::Candidate>>>
parse_sliding_checkpoint(const CheckpointImage& image);

/// Builds a fresh sliding coordinator from an image (nullptr if
/// malformed).
std::unique_ptr<MultiSlidingCoordinator> restore_sliding_coordinator(
    sim::NodeId id, const CheckpointImage& image);

/// Writes an image's tuples into an existing coordinator (a fresh
/// deployment's shard). Returns false — leaving the coordinator
/// untouched — if the image is malformed or its copy count differs.
bool restore_into(MultiSlidingCoordinator& coordinator,
                  const CheckpointImage& image);

// ---- candidate-set images (lossless site failover) -------------------

/// Serializes a DominanceSet / SDominanceSet snapshot() — the payload a
/// site needs to resume exactly where a lost replica stopped. Protocol-
/// agnostic: FullSync single-sample and bottom-s sites share the format
/// (the set's own parameters, s and seed, come from the deployment
/// recipe, not the image).
CheckpointImage checkpoint_candidates(const std::vector<treap::Candidate>& items);

/// Parses a candidate-set image; nullopt if malformed. Feed the result
/// to the site's restore_candidates() / load_snapshot().
std::optional<std::vector<treap::Candidate>> parse_candidates(
    const CheckpointImage& image);

/// Checkpoints every coordinator shard of a sliding deployment — the
/// sharded-ensemble image is one independent image per shard.
template <typename Deployment>
std::vector<CheckpointImage> checkpoint_ensemble(const Deployment& deployment) {
  std::vector<CheckpointImage> images;
  images.reserve(deployment.num_shards());
  std::size_t bytes = 0;
  for (std::uint32_t j = 0; j < deployment.num_shards(); ++j) {
    images.push_back(checkpoint(deployment.coordinator(j)));
    bytes += images.back().size();
  }
  if (obs::Tracer* tracer = deployment.observability().tracer()) {
    tracer->instant(
        "ckpt", "checkpoint",
        static_cast<double>(deployment.engine().current_slot()), 0,
        {{"shards", static_cast<double>(images.size())},
         {"bytes", static_cast<double>(bytes)}});
  }
  return images;
}

/// Restores a sharded ensemble image into a fresh deployment of the
/// same shape (same num_shards and sample_size). Returns false — with
/// no guarantee about partially restored shards — on a shape mismatch
/// or a malformed image.
template <typename Deployment>
bool restore_ensemble(Deployment& deployment,
                      const std::vector<CheckpointImage>& images) {
  if (images.size() != deployment.num_shards()) return false;
  for (std::uint32_t j = 0; j < deployment.num_shards(); ++j) {
    if (!restore_into(deployment.coordinator_mut(j), images[j])) return false;
  }
  if (obs::Tracer* tracer = deployment.observability().tracer()) {
    tracer->instant(
        "ckpt", "restore",
        static_cast<double>(deployment.engine().current_slot()), 0,
        {{"shards", static_cast<double>(images.size())}});
  }
  return true;
}

}  // namespace dds::core
