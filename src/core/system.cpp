#include "core/system.h"

#include <algorithm>

#include "net/factory.h"
#include "util/rng.h"

namespace dds::core {

namespace {

template <typename SiteT>
std::vector<sim::StreamNode*> as_stream_nodes(
    const std::vector<std::unique_ptr<SiteT>>& sites) {
  std::vector<sim::StreamNode*> out;
  out.reserve(sites.size());
  for (const auto& site : sites) out.push_back(site.get());
  return out;
}

}  // namespace

InfiniteSystem::InfiniteSystem(const SystemConfig& config, bool eager_threshold,
                               bool suppress_duplicates)
    : transport_(net::make_transport(config.num_sites, config.network)),
      hash_fn_(config.hash_kind, util::derive_seed(config.seed, 0xA5)) {
  coordinator_ = std::make_unique<InfiniteWindowCoordinator>(
      transport_->coordinator_id(), config.sample_size, /*instance=*/0,
      eager_threshold);
  transport_->attach(transport_->coordinator_id(), coordinator_.get());
  sites_.reserve(config.num_sites);
  for (std::uint32_t i = 0; i < config.num_sites; ++i) {
    sites_.push_back(std::make_unique<InfiniteWindowSite>(
        i, transport_->coordinator_id(), hash_fn_, /*instance=*/0,
        suppress_duplicates));
    transport_->attach(i, sites_.back().get());
  }
  runner_ = std::make_unique<sim::Runner>(*transport_, as_stream_nodes(sites_),
                                          /*invoke_slot_begin=*/false);
}

WithReplacementSystem::WithReplacementSystem(const SystemConfig& config)
    : transport_(net::make_transport(config.num_sites, config.network)),
      family_(config.hash_kind, util::derive_seed(config.seed, 0xB6)) {
  coordinator_ = std::make_unique<WithReplacementCoordinator>(
      transport_->coordinator_id(), family_, config.sample_size);
  transport_->attach(transport_->coordinator_id(), coordinator_.get());
  sites_.reserve(config.num_sites);
  for (std::uint32_t i = 0; i < config.num_sites; ++i) {
    sites_.push_back(std::make_unique<WithReplacementSite>(
        i, transport_->coordinator_id(), family_, config.sample_size));
    transport_->attach(i, sites_.back().get());
  }
  runner_ = std::make_unique<sim::Runner>(*transport_, as_stream_nodes(sites_),
                                          /*invoke_slot_begin=*/false);
}

SlidingSystem::SlidingSystem(const SlidingSystemConfig& config)
    : transport_(net::make_transport(config.num_sites, config.network)),
      family_(config.hash_kind, util::derive_seed(config.seed, 0xC7)) {
  coordinator_ = std::make_unique<MultiSlidingCoordinator>(
      transport_->coordinator_id(), config.sample_size);
  transport_->attach(transport_->coordinator_id(), coordinator_.get());
  sites_.reserve(config.num_sites);
  for (std::uint32_t i = 0; i < config.num_sites; ++i) {
    sites_.push_back(std::make_unique<MultiSlidingSite>(
        i, transport_->coordinator_id(), config.window, family_, config.sample_size,
        util::derive_seed(config.seed, 0xD800ULL + i)));
    transport_->attach(i, sites_.back().get());
  }
  runner_ = std::make_unique<sim::Runner>(*transport_, as_stream_nodes(sites_),
                                          /*invoke_slot_begin=*/true);
}

std::size_t SlidingSystem::total_site_state() const noexcept {
  std::size_t total = 0;
  for (const auto& site : sites_) total += site->state_size();
  return total;
}

std::size_t SlidingSystem::max_site_state() const noexcept {
  std::size_t mx = 0;
  for (const auto& site : sites_) mx = std::max(mx, site->state_size());
  return mx;
}

}  // namespace dds::core
