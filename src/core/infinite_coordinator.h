// Algorithm 2 — the infinite-window algorithm at the coordinator.
//
//   Initialization: P <- {}, u <- 1
//   on receiving e from site i:
//     if h(e) < u:
//       insert e into P if absent
//       if |P| > s: discard the largest-hash element; u <- max hash in P
//     send u back to site i
//   on query: return P
//
// We implement the pseudocode literally: u stays at 1 (kHashMax) while
// |P| < s, and tightens to max(P) on every accepted new-element report
// afterwards — note the insert-then-discard in lines 5-8 updates u even
// when the discarded element is the incoming one, i.e. even when the
// sample itself did not change. The `eager_threshold` option tightens u
// one report earlier (as soon as |P| == s); the abl6 bench quantifies
// the (tiny) difference.
#pragma once

#include <cstdint>

#include "core/bottom_s_sample.h"
#include "hash/hash_function.h"
#include "net/transport.h"
#include "sim/node.h"

namespace dds::core {

class InfiniteWindowCoordinator final : public sim::Node {
 public:
  InfiniteWindowCoordinator(sim::NodeId id, std::size_t sample_size,
                            std::uint32_t instance = 0,
                            bool eager_threshold = false);

  void on_message(const sim::Message& msg, net::Transport& bus) override;

  /// O(s) state: the sample.
  std::size_t state_size() const noexcept override { return sample_.size(); }

  /// The query answer: a uniform random sample without replacement of
  /// size min(s, d) from the distinct elements observed so far.
  const BottomSSample& sample() const noexcept { return sample_; }

  /// Current u(t).
  std::uint64_t threshold() const noexcept { return u_; }

  /// Failover hook (see checkpoint.h): replaces the sample contents and
  /// threshold with a checkpointed state. Entries beyond the sample
  /// capacity are ignored (bottom-s semantics).
  void restore(const std::vector<BottomSSample::Entry>& entries,
               std::uint64_t threshold_value);

 private:
  sim::NodeId id_;
  std::uint32_t instance_;
  bool eager_threshold_;
  BottomSSample sample_;
  std::uint64_t u_ = hash::kHashMax;  // the paper's u <- 1
};

}  // namespace dds::core
