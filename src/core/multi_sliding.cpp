#include "core/multi_sliding.h"

#include "util/rng.h"

namespace dds::core {

MultiSlidingSite::MultiSlidingSite(sim::NodeId id, sim::NodeId coordinator,
                                   sim::Slot window,
                                   const hash::HashFamily& family,
                                   std::size_t sample_size,
                                   std::uint64_t seed,
                                   treap::HybridConfig substrate) {
  copies_.reserve(sample_size);
  for (std::size_t j = 0; j < sample_size; ++j) {
    copies_.emplace_back(id, coordinator, window, family.at(j),
                         util::derive_seed(seed, j),
                         static_cast<std::uint32_t>(j), substrate);
  }
}

void MultiSlidingSite::on_slot_begin(sim::Slot t, net::Transport& bus) {
  for (auto& copy : copies_) copy.on_slot_begin(t, bus);
}

void MultiSlidingSite::on_element(stream::Element element, sim::Slot t,
                                  net::Transport& bus) {
  for (auto& copy : copies_) copy.on_element(element, t, bus);
}

void MultiSlidingSite::on_element_batch(std::span<const std::uint64_t> elements,
                                        sim::Slot t, net::Transport& bus) {
  const std::size_t n = elements.size();
  const std::size_t s = copies_.size();
  if (hash_scratch_.size() < n * s) hash_scratch_.resize(n * s);
  for (std::size_t j = 0; j < s; ++j) {
    copies_[j].hash_fn().hash_batch(elements.data(), n,
                                    hash_scratch_.data() + j * n);
  }
  for (std::size_t i = 0; i < n; ++i) {
    // Element-major like on_element: all copies see element i, THEN one
    // drain — the send order (copy 0's report, copy 1's report, replies)
    // must match the element-at-a-time trace exactly.
    for (std::size_t j = 0; j < s; ++j) {
      copies_[j].on_element_hashed(elements[i], hash_scratch_[j * n + i], t,
                                   bus);
    }
    bus.drain();
  }
}

void MultiSlidingSite::on_message(const sim::Message& msg, net::Transport& bus) {
  if (msg.instance < copies_.size()) copies_[msg.instance].on_message(msg, bus);
}

std::size_t MultiSlidingSite::state_size() const noexcept {
  std::size_t total = 0;
  for (const auto& copy : copies_) total += copy.state_size();
  return total;
}

MultiSlidingCoordinator::MultiSlidingCoordinator(sim::NodeId id,
                                                 std::size_t sample_size) {
  copies_.reserve(sample_size);
  for (std::size_t j = 0; j < sample_size; ++j) {
    copies_.emplace_back(id, static_cast<std::uint32_t>(j));
  }
}

void MultiSlidingCoordinator::on_message(const sim::Message& msg,
                                         net::Transport& bus) {
  if (msg.instance < copies_.size()) copies_[msg.instance].on_message(msg, bus);
}

std::size_t MultiSlidingCoordinator::state_size() const noexcept {
  std::size_t total = 0;
  for (const auto& copy : copies_) total += copy.state_size();
  return total;
}

std::vector<stream::Element> MultiSlidingCoordinator::sample(
    sim::Slot now) const {
  std::vector<stream::Element> out;
  out.reserve(copies_.size());
  for (const auto& copy : copies_) {
    if (auto c = copy.sample(now)) out.push_back(c->element);
  }
  return out;
}

}  // namespace dds::core
