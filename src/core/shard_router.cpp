#include "core/shard_router.h"

#include <algorithm>
#include <stdexcept>

#include "util/rng.h"

namespace dds::core {

ShardRouter::ShardRouter(std::uint32_t num_shards, std::uint64_t seed,
                         std::uint32_t replicas)
    : num_shards_(num_shards),
      salt_(util::derive_seed(seed, 0x52494E47ULL)) {  // "RING"
  if (num_shards == 0) {
    throw std::invalid_argument("ShardRouter: need at least one shard");
  }
  if (num_shards_ == 1) return;  // trivial ring; shard_of short-circuits
  ring_.reserve(static_cast<std::size_t>(num_shards_) * replicas);
  for (std::uint32_t shard = 0; shard < num_shards_; ++shard) {
    for (std::uint32_t r = 0; r < replicas; ++r) {
      const std::uint64_t position = util::mix64(
          salt_ ^ util::derive_seed(shard, r));
      ring_.push_back(Point{position, shard});
    }
  }
  std::sort(ring_.begin(), ring_.end(),
            [](const Point& a, const Point& b) {
              return a.position < b.position ||
                     (a.position == b.position && a.shard < b.shard);
            });
}

std::uint32_t ShardRouter::shard_of(stream::Element e) const noexcept {
  if (num_shards_ == 1) return 0;
  const std::uint64_t point = util::mix64(e ^ salt_);
  auto it = std::lower_bound(
      ring_.begin(), ring_.end(), point,
      [](const Point& p, std::uint64_t v) { return p.position < v; });
  if (it == ring_.end()) it = ring_.begin();  // wrap around the ring
  return it->shard;
}

double ShardRouter::disagreement(const ShardRouter& other,
                                 std::uint64_t probes) const {
  std::uint64_t moved = 0;
  util::SplitMix64 gen(salt_ ^ 0xD15A6EEULL);
  for (std::uint64_t i = 0; i < probes; ++i) {
    const stream::Element e = gen.next();
    if (shard_of(e) != other.shard_of(e)) ++moved;
  }
  return probes == 0 ? 0.0
                     : static_cast<double>(moved) / static_cast<double>(probes);
}

}  // namespace dds::core
