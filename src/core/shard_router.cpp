#include "core/shard_router.h"

#include <algorithm>
#include <stdexcept>

#include "util/bytes.h"
#include "util/rng.h"

namespace dds::core {

ShardRouter::ShardRouter(std::uint32_t num_shards, std::uint64_t seed,
                         std::uint32_t replicas)
    : num_shards_(num_shards),
      replicas_(replicas),
      salt_(util::derive_seed(seed, 0x52494E47ULL)) {  // "RING"
  if (num_shards == 0) {
    throw std::invalid_argument("ShardRouter: need at least one shard");
  }
  rebuild();
}

void ShardRouter::rebuild() {
  ring_.clear();
  if (num_shards_ == 1) return;  // trivial ring; shard_of short-circuits
  ring_.reserve(static_cast<std::size_t>(num_shards_) * replicas_);
  for (std::uint32_t shard = 0; shard < num_shards_; ++shard) {
    for (std::uint32_t r = 0; r < replicas_; ++r) {
      const std::uint64_t position = util::mix64(
          salt_ ^ util::derive_seed(shard, r));
      ring_.push_back(Point{position, shard});
    }
  }
  std::sort(ring_.begin(), ring_.end(),
            [](const Point& a, const Point& b) {
              return a.position < b.position ||
                     (a.position == b.position && a.shard < b.shard);
            });
}

void ShardRouter::add_shard() {
  ++num_shards_;
  rebuild();
}

void ShardRouter::remove_last_shard() {
  if (num_shards_ < 2) {
    throw std::logic_error("ShardRouter: cannot remove the only shard");
  }
  --num_shards_;
  rebuild();
}

std::uint32_t ShardRouter::shard_of(stream::Element e) const noexcept {
  if (num_shards_ == 1) return 0;
  const std::uint64_t point = util::mix64(e ^ salt_);
  auto it = std::lower_bound(
      ring_.begin(), ring_.end(), point,
      [](const Point& p, std::uint64_t v) { return p.position < v; });
  if (it == ring_.end()) it = ring_.begin();  // wrap around the ring
  return it->shard;
}

ShardCache::ShardCache(std::size_t entries) {
  std::size_t sets = 1;
  while (sets * 2 < std::max<std::size_t>(entries, 2)) sets *= 2;
  set_mask_ = sets - 1;
  ways_.resize(2 * sets);
  mru_.resize(sets, 0);
}

std::uint32_t ShardCache::owner(const ShardRouter& router, stream::Element e) {
  ++lookups_;
  // Mix so clustered element keys spread over the sets; cheap relative
  // to the ring's mix64 + binary search.
  const std::size_t set = (e ^ (e >> 17) ^ (e >> 41)) & set_mask_;
  Entry* const way0 = &ways_[2 * set];
  for (std::size_t w = 0; w < 2; ++w) {
    if (way0[w].valid && way0[w].element == e) {
      ++hits_;
      mru_[set] = static_cast<std::uint8_t>(w);
      return way0[w].shard;
    }
  }
  const std::uint32_t shard = router.owner(e);
  const std::size_t victim = mru_[set] ^ 1;  // evict the LRU way
  way0[victim] = Entry{e, shard, true};
  mru_[set] = static_cast<std::uint8_t>(victim);
  return shard;
}

void ShardCache::clear() {
  for (Entry& e : ways_) e.valid = false;
}

void ShardCache::save_state(std::vector<std::uint8_t>& out) const {
  util::put_u64(out, ways_.size());
  for (const Entry& e : ways_) {
    util::put_u64(out, e.element);
    util::put_u64(out, (std::uint64_t{e.shard} << 1) | (e.valid ? 1 : 0));
  }
  for (const std::uint8_t m : mru_) out.push_back(m);
  util::put_u64(out, hits_);
  util::put_u64(out, lookups_);
}

void ShardCache::restore_state(std::span<const std::uint8_t> image) {
  std::size_t pos = 0;
  const std::uint64_t n = util::get_u64(image, pos);
  if (n != ways_.size()) {
    throw std::logic_error("ShardCache::restore_state: geometry mismatch");
  }
  for (Entry& e : ways_) {
    e.element = util::get_u64(image, pos);
    const std::uint64_t packed = util::get_u64(image, pos);
    e.shard = static_cast<std::uint32_t>(packed >> 1);
    e.valid = (packed & 1) != 0;
  }
  if (pos + mru_.size() > image.size()) {
    throw std::out_of_range("ShardCache::restore_state: image truncated");
  }
  for (std::uint8_t& m : mru_) m = image[pos++];
  hits_ = util::get_u64(image, pos);
  lookups_ = util::get_u64(image, pos);
}

double ShardRouter::disagreement(const ShardRouter& other,
                                 std::uint64_t probes) const {
  std::uint64_t moved = 0;
  util::SplitMix64 gen(salt_ ^ 0xD15A6EEULL);
  for (std::uint64_t i = 0; i < probes; ++i) {
    const stream::Element e = gen.next();
    if (shard_of(e) != other.shard_of(e)) ++moved;
  }
  return probes == 0 ? 0.0
                     : static_cast<double>(moved) / static_cast<double>(probes);
}

}  // namespace dds::core
