#include "net/sim_network.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "obs/trace.h"

namespace dds::net {

namespace {

constexpr std::uint64_t link_key(sim::NodeId from, sim::NodeId to) noexcept {
  return (static_cast<std::uint64_t>(from) << 32) | to;
}

}  // namespace

SimNetwork::SimNetwork(std::uint32_t num_sites, const NetworkConfig& config,
                       std::uint32_t num_coordinators)
    : Transport(num_sites, num_coordinators),
      config_(config),
      rng_(util::derive_seed(config.seed, 0x4E455453ULL)),  // "NETS"
      default_link_(make_link_model(config.link)),
      batcher_(num_sites, num_coordinators, config.batch_interval,
               config.batch_max_msgs) {}

void SimNetwork::set_link_model(sim::NodeId from, sim::NodeId to,
                                std::unique_ptr<LinkModel> model) {
  link_overrides_[link_key(from, to)] = std::move(model);
}

double SimNetwork::delivery_horizon() const noexcept {
  double horizon = default_link_->min_delay();
  for (const auto& [key, model] : link_overrides_) {
    horizon = std::min(horizon, model->min_delay());
  }
  return horizon;
}

double SimNetwork::next_delivery_time() const noexcept {
  return queue_.empty() ? std::numeric_limits<double>::infinity()
                        : queue_.top().time;
}

void SimNetwork::clear_link_model(sim::NodeId from, sim::NodeId to) {
  link_overrides_.erase(link_key(from, to));
}

void SimNetwork::flush_shard(std::uint32_t shard) {
  if (config_.batch_interval > 0) flush_batches(batcher_.take_for_shard(shard));
}

void SimNetwork::on_coordinators_resized() {
  flush_batches(batcher_.rebind(num_coordinators()));
}

LinkModel& SimNetwork::link_for(sim::NodeId from, sim::NodeId to) {
  auto it = link_overrides_.find(link_key(from, to));
  return it == link_overrides_.end() ? *default_link_ : *it->second;
}

void SimNetwork::send(const sim::Message& msg) {
  check_endpoints(msg);
  note_send(msg);
  logical_.add_transmission(is_coordinator(msg.from),
                            sim::Message::wire_bytes());
  logical_.by_type[static_cast<std::size_t>(msg.type)] += 1;

  const bool batchable = config_.batch_interval > 0 &&
                         !is_coordinator(msg.from) && is_coordinator(msg.to);
  if (batchable) {
    net_stats_.batched_messages += 1;
    if (batcher_.add(msg, now())) {
      // Size-triggered flush: the batch leaves immediately.
      Batch full = batcher_.take_for(msg);
      net_stats_.batches_flushed += 1;
      if (tracer_ != nullptr) {
        tracer_->instant("net", "batch.flush", vtime_, full.msgs.front().to,
                         {{"msgs", static_cast<double>(full.msgs.size())},
                          {"size_triggered", 1.0}});
      }
      transmit(WireUnit{std::move(full.msgs), true}, vtime_, 1);
    }
    return;
  }
  transmit(WireUnit{{msg}, false}, vtime_, 1);
}

void SimNetwork::transmit(WireUnit unit, double at, int attempt) {
  const sim::Message& head = unit.msgs.front();
  const LinkFate fate = link_for(head.from, head.to).transmit(head, rng_);
  count_wire(head, batch_wire_bytes(unit.msgs.size()));
  net_stats_.transmissions += 1;
  if (metrics_bound_) {
    batch_size_hist_.observe(unit.msgs.size());
  }
  if (fate.dropped) {
    net_stats_.drops += 1;
    const bool retry =
        config_.link.retransmit && attempt < config_.link.max_attempts;
    if (tracer_ != nullptr) {
      tracer_->instant("net", retry ? "drop.retransmit" : "drop.lost", at,
                       head.to,
                       {{"from", static_cast<double>(head.from)},
                        {"msgs", static_cast<double>(unit.msgs.size())},
                        {"attempt", static_cast<double>(attempt)}});
    }
    if (retry) {
      net_stats_.retransmissions += 1;
      schedule(at + config_.link.retransmit_timeout, EventKind::kTransmit,
               std::move(unit), attempt + 1);
    } else {
      net_stats_.lost_messages += unit.msgs.size();
    }
    return;
  }
  if (metrics_bound_) {
    flight_us_hist_.observe(
        static_cast<std::uint64_t>(fate.delay * obs::Tracer::kUsPerSlot));
  }
  schedule(at + fate.delay, EventKind::kDeliver, std::move(unit), attempt);
}

void SimNetwork::schedule(double time, EventKind kind, WireUnit unit,
                          int attempt) {
  queue_.push(Event{time, next_seq_++, kind, attempt, std::move(unit)});
}

void SimNetwork::deliver_unit(const WireUnit& unit) {
  for (const sim::Message& msg : unit.msgs) deliver(msg);
}

void SimNetwork::flush_batches(std::vector<Batch> batches) {
  for (Batch& batch : batches) {
    net_stats_.batches_flushed += 1;
    if (tracer_ != nullptr) {
      tracer_->instant("net", "batch.flush", vtime_, batch.msgs.front().to,
                       {{"msgs", static_cast<double>(batch.msgs.size())},
                        {"size_triggered", 0.0}});
    }
    transmit(WireUnit{std::move(batch.msgs), true}, vtime_, 1);
  }
}

void SimNetwork::on_clock_advance(sim::Slot now_slot) {
  vtime_ = std::max(vtime_, static_cast<double>(now_slot));
  if (config_.batch_interval > 0) {
    flush_batches(batcher_.take_due(now_slot));
  }
}

void SimNetwork::run_due(double horizon) {
  if (draining_) return;  // re-entrant drain: outer loop finishes the queue
  draining_ = true;
  try {
    while (!queue_.empty() && queue_.top().time <= horizon) {
      // Standard move-out-of-priority_queue idiom: top() is const only
      // to protect the heap order, which pop() discards anyway.
      Event ev = std::move(const_cast<Event&>(queue_.top()));
      queue_.pop();
      vtime_ = std::max(vtime_, ev.time);
      if (ev.kind == EventKind::kTransmit) {
        transmit(std::move(ev.unit), ev.time, ev.attempt);
      } else {
        deliver_unit(ev.unit);
      }
    }
  } catch (...) {
    draining_ = false;
    throw;
  }
  draining_ = false;
}

void SimNetwork::drain() { run_due(static_cast<double>(now())); }

void SimNetwork::bind_observability(obs::MetricsRegistry* registry,
                                    obs::Tracer* tracer) {
  Transport::bind_observability(registry, tracer);
  if (registry == nullptr) return;
  registry->counter("net.transmissions", &net_stats_.transmissions);
  registry->counter("net.drops", &net_stats_.drops);
  registry->counter("net.retransmissions", &net_stats_.retransmissions);
  registry->counter("net.lost_messages", &net_stats_.lost_messages);
  registry->counter("net.batches_flushed", &net_stats_.batches_flushed);
  registry->counter("net.batched_messages", &net_stats_.batched_messages);
  registry->counter_fn("net.stranded_messages",
                       [this] { return batcher_.stranded(); });
  registry->counter("net.logical.msgs", &logical_.total);
  registry->counter("net.logical.bytes", &logical_.bytes);
  registry->gauge("net.in_flight", [this] {
    return static_cast<double>(queue_.size());
  });
  registry->histogram("net.batch.msgs", &batch_size_hist_);
  registry->histogram("net.flight.us", &flight_us_hist_);
  metrics_bound_ = true;
}

void SimNetwork::finish() {
  // Deliveries may send fresh batchable messages, so alternate flushing
  // and running the queue until both are empty.
  for (;;) {
    if (config_.batch_interval > 0) flush_batches(batcher_.take_all());
    if (queue_.empty()) break;
    run_due(std::numeric_limits<double>::infinity());
  }
}

}  // namespace dds::net
