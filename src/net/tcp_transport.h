// TCP transport: one stream per (site, coordinator) pair on 127.0.0.1.
//
// TCP already provides ordered reliable bytes, so there is no conn
// layer here — frames are written back-to-back onto the stream and
// sliced off the receive side with wire::decode_frame, using
// wire::incomplete_prefix to distinguish "wait for more bytes" from a
// corrupt stream (which throws; TCP does not corrupt silently, so a
// bad frame means a sender bug or a foreign client).
//
// Handshake: the site writes a kHello frame immediately after connect;
// the coordinator validates the topology and answers kWelcome. The
// constructor completes every handshake before returning. TCP_NODELAY
// is set on every stream — the transport batches at the frame level
// (net::Batcher), so Nagle would only add latency.
#pragma once

#include <cstdint>
#include <map>

#include "net/socket_transport.h"

namespace dds::net {

class TcpTransport final : public SocketTransport {
 public:
  TcpTransport(std::uint32_t num_sites, const NetworkConfig& config,
               std::uint32_t num_coordinators = 1,
               SocketTopology topology = {});
  ~TcpTransport() override;

  /// Listening port of a local coordinator shard.
  std::uint16_t listen_port_of(std::uint32_t shard) const;

 protected:
  void ship_frame(sim::NodeId from, sim::NodeId to,
                  wire::Buffer frame) override;
  bool pump_io(double now) override;
  bool links_idle() const override;

 private:
  struct Peer {
    int fd = -1;
    wire::Buffer inbuf;
    std::size_t inpos = 0;  ///< parse cursor into inbuf
    wire::Buffer outbuf;
    std::size_t outpos = 0;  ///< flush cursor into outbuf
  };

  struct Listener {
    int fd = -1;
    std::uint16_t port = 0;
  };

  /// Directed key: (local node, peer node).
  using PeerMap = std::map<std::pair<sim::NodeId, sim::NodeId>, Peer>;

  void open_listeners();
  void connect_sites();
  void accept_sites();
  void await_welcomes();
  int connect_with_retry(std::uint32_t ip, std::uint16_t port,
                         double deadline);
  void write_frame_blocking(int fd, const wire::Buffer& frame);
  wire::Frame read_frame_blocking(Peer& peer, double deadline);
  bool flush_out(Peer& peer);
  bool read_peer(sim::NodeId local, sim::NodeId remote, Peer& peer);
  void parse_frames(sim::NodeId local, sim::NodeId remote, Peer& peer);
  void adopt_peer(sim::NodeId local, sim::NodeId remote, Peer peer);
  /// Partial-topology accept path: drains pending accepts from the
  /// listeners and identifies each new stream by its Hello, all
  /// without blocking (the ctor cannot wait for processes that have
  /// not started yet).
  bool pump_accepts();

  std::map<std::uint32_t, Listener> listeners_;  ///< by coordinator shard
  PeerMap peers_;
  /// Accepted streams whose identifying Hello has not fully arrived.
  std::map<std::uint32_t, std::vector<Peer>> pending_accepts_;
  /// Frames addressed to a remote site whose stream has not been
  /// accepted yet (a threshold broadcast can race a slow connector);
  /// flushed the moment the stream is identified.
  std::map<std::pair<sim::NodeId, sim::NodeId>, wire::Buffer> pre_accept_out_;
};

}  // namespace dds::net
