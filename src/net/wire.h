// The binary wire format — what actually crosses a socket.
//
// Everything the simulated transports pass around as in-memory structs
// (protocol Messages, site->coordinator batches, checkpoint images, and
// the connection handshake) serializes to one self-delimiting frame
// shape, styled after the v2 checkpoint images (core/checkpoint.h):
//
//   [magic u32][version u8][kind u8][reserved u16]
//   [length u32 = payload bytes][payload ...][fnv1a u64 over all prior]
//
// All integers little-endian. The trailing FNV-1a checksum covers the
// header and payload, so truncation, bit-flips, and foreign traffic are
// rejected before any field is trusted. decode_frame() is the single
// entry point: it either returns a fully validated Frame and advances
// the cursor past it, or returns nullopt and leaves the cursor exactly
// where it was — a malformed frame can never partially apply (the fuzz
// suite pins this for every prefix length and every single-bit flip).
//
// Frame kinds:
//   kMessage   one protocol message (sim::Message, all MsgTypes)
//   kBatch     n same-(from,to) messages sharing one routing header —
//              the on-wire shape of a net::Batcher flush; its payload
//              cost model (12 + 29n) deliberately echoes
//              batch_wire_bytes (8 + 29n logical bytes) so abl16 can
//              compare real frame bytes to the paper-model prediction
//   kImage     one checkpoint image, any of the five kinds
//              (infinite / sliding / candidate-set / fullsync /
//              bottom-s; the inner image's own magic, version, and
//              checksum are re-verified at decode)
//   kHello     connection handshake: who I am, what topology I expect
//   kWelcome   handshake accept (echoes the coordinator's view)
//   kFin       end-of-stream marker a site sends when its arrivals are
//              exhausted and everything it sent has been acknowledged
//
// Versioning rules (docs/wire.md): kVersion bumps on any layout change;
// a decoder rejects versions it does not know (no silent best-effort
// parsing on the wire — unlike checkpoint images there is no on-disk
// archive to stay compatible with, both ends are always the same build
// after the handshake verifies the version).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "sim/message.h"

namespace dds::net::wire {

using Buffer = std::vector<std::uint8_t>;

inline constexpr std::uint32_t kMagic = 0x57534444;  // "DDSW" little-endian
inline constexpr std::uint8_t kVersion = 1;

/// Frame header bytes before the payload (magic 4 + version 1 + kind 1 +
/// reserved 2 + length 4) and the trailing checksum.
inline constexpr std::size_t kHeaderBytes = 12;
inline constexpr std::size_t kChecksumBytes = 8;

/// Hard upper bound on a frame's payload, enforced by the decoder
/// before it trusts the length field: a corrupted length can never make
/// a reader attempt a multi-gigabyte allocation. Checkpoint images are
/// the largest payloads and stay far below this.
inline constexpr std::uint32_t kMaxPayload = 1u << 24;

enum class FrameKind : std::uint8_t {
  kMessage = 1,
  kBatch = 2,
  kImage = 3,
  kHello = 4,
  kWelcome = 5,
  kFin = 6,
};

/// Handshake payload: the sender's identity and its view of the
/// topology. A receiver rejects a peer whose topology disagrees — a
/// mis-wired deployment fails at connect, not mid-protocol.
struct Hello {
  std::uint32_t node_id = 0;
  std::uint32_t num_sites = 0;
  std::uint32_t num_coordinators = 1;
  /// Random per-process value echoed in kWelcome, so a site talking to
  /// a stale coordinator incarnation notices.
  std::uint64_t cookie = 0;

  bool operator==(const Hello&) const = default;
};

/// End-of-stream marker: `messages_sent` is the sender's logical
/// site->coordinator send count, letting the receiver cross-check that
/// the reliability layer delivered everything.
struct Fin {
  std::uint32_t node_id = 0;
  std::uint64_t messages_sent = 0;

  bool operator==(const Fin&) const = default;
};

/// One decoded, fully validated frame. Exactly the fields for `kind`
/// are populated.
struct Frame {
  FrameKind kind = FrameKind::kMessage;
  /// kMessage (size 1) / kBatch (size >= 1, shared from/to).
  std::vector<sim::Message> msgs;
  /// kImage: the inner checkpoint image, already integrity-verified.
  Buffer image;
  Hello hello;  ///< kHello / kWelcome
  Fin fin;      ///< kFin
};

// ---- encoders (each appends one complete frame to `out`) -------------

void encode_message(const sim::Message& msg, Buffer& out);

/// `msgs` must be non-empty and share one (from, to) routing pair —
/// the Batcher's flush invariant; throws std::invalid_argument
/// otherwise.
void encode_batch(std::span<const sim::Message> msgs, Buffer& out);

/// `image` must be a valid checkpoint image of one of the five known
/// kinds (core::verify_checkpoint_image); throws std::invalid_argument
/// otherwise — a process never puts a corrupt image on the wire.
void encode_image(std::span<const std::uint8_t> image, Buffer& out);

void encode_hello(const Hello& hello, Buffer& out);
void encode_welcome(const Hello& hello, Buffer& out);
void encode_fin(const Fin& fin, Buffer& out);

/// Exact encoded size of a batch frame carrying n messages (used by the
/// byte-accounting tests and abl16's overhead table).
constexpr std::size_t batch_frame_bytes(std::size_t n) noexcept {
  return kHeaderBytes + 12 + 29 * n + kChecksumBytes;
}
/// Exact encoded size of a single-message frame.
constexpr std::size_t message_frame_bytes() noexcept {
  return kHeaderBytes + 37 + kChecksumBytes;
}

// ---- decoder ---------------------------------------------------------

/// Decodes the frame starting at `in[pos]`. On success advances `pos`
/// past the frame and returns it; on ANY malformation (short buffer,
/// wrong magic, unknown version or kind, oversized or inconsistent
/// length, checksum mismatch, invalid message type, batch with mixed
/// routing, payload bytes left over, corrupt inner image) returns
/// nullopt and leaves `pos` untouched.
std::optional<Frame> decode_frame(std::span<const std::uint8_t> in,
                                  std::size_t& pos);

/// True when `in[pos..]` cannot yet hold a complete frame but is a
/// plausible prefix of one (stream transports use this to distinguish
/// "wait for more bytes" from "corrupt stream"): the bytes present so
/// far match the header layout and the declared length is in range.
bool incomplete_prefix(std::span<const std::uint8_t> in, std::size_t pos);

}  // namespace dds::net::wire
