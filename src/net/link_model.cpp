#include "net/link_model.h"

#include <algorithm>
#include <cmath>

namespace dds::net {

LinkFate FixedLatencyLink::transmit(const sim::Message& /*msg*/,
                                    util::Xoshiro256StarStar& /*rng*/) {
  return {false, latency_};
}

LinkFate UniformJitterLink::transmit(const sim::Message& /*msg*/,
                                     util::Xoshiro256StarStar& rng) {
  return {false, latency_ + rng.next_double() * width_};
}

LinkFate NormalJitterLink::transmit(const sim::Message& /*msg*/,
                                    util::Xoshiro256StarStar& rng) {
  // Box-Muller; one variate per call keeps the RNG stream simple and
  // deterministic (no cached second variate across transports).
  const double u1 = std::max(rng.next_double(), 1e-12);
  const double u2 = rng.next_double();
  const double z =
      std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
  return {false, std::max(0.0, latency_ + stddev_ * z)};
}

LinkFate DropLink::transmit(const sim::Message& msg,
                            util::Xoshiro256StarStar& rng) {
  LinkFate fate = inner_->transmit(msg, rng);
  if (rng.next_bernoulli(drop_rate_)) fate.dropped = true;
  return fate;
}

LinkFate ReorderLink::transmit(const sim::Message& msg,
                               util::Xoshiro256StarStar& rng) {
  LinkFate fate = inner_->transmit(msg, rng);
  if (rng.next_bernoulli(rate_)) {
    fate.delay += rng.next_double() * extra_;
  }
  return fate;
}

std::unique_ptr<LinkModel> make_link_model(const LinkConfig& config) {
  std::unique_ptr<LinkModel> model;
  if (config.jitter_stddev > 0.0) {
    model = std::make_unique<NormalJitterLink>(config.latency,
                                               config.jitter_stddev);
  } else if (config.jitter > 0.0) {
    model = std::make_unique<UniformJitterLink>(config.latency, config.jitter);
  } else {
    model = std::make_unique<FixedLatencyLink>(config.latency);
  }
  if (config.reorder_rate > 0.0) {
    model = std::make_unique<ReorderLink>(config.reorder_rate,
                                          config.reorder_extra,
                                          std::move(model));
  }
  if (config.drop_rate > 0.0) {
    model = std::make_unique<DropLink>(config.drop_rate, std::move(model));
  }
  return model;
}

}  // namespace dds::net
