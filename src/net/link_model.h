// Pluggable per-link wire models for net::SimNetwork.
//
// A LinkModel decides, per transmission attempt, whether the packet is
// lost and how long it spends in flight. Models draw randomness from the
// network's single seeded generator, so a run is reproducible from
// (arrival sequence, seed). Retransmission policy lives in SimNetwork —
// a model only reports the fate of one attempt.
#pragma once

#include <memory>

#include "net/config.h"
#include "sim/message.h"
#include "util/rng.h"

namespace dds::net {

/// Outcome of one transmission attempt.
struct LinkFate {
  bool dropped = false;
  double delay = 0.0;  ///< one-way flight time in slots (>= 0)
};

class LinkModel {
 public:
  virtual ~LinkModel() = default;
  virtual LinkFate transmit(const sim::Message& msg,
                            util::Xoshiro256StarStar& rng) = 0;

  /// A lower bound on the delay any transmit() can report: no attempt is
  /// ever delivered less than min_delay() slots after it was put on the
  /// link. The ShardedEngine's lockstep mode uses this as its wave
  /// barrier (net::Transport::delivery_horizon()); a model whose delay
  /// can reach zero must return 0.0.
  virtual double min_delay() const noexcept = 0;
};

/// Constant one-way delay; never drops.
class FixedLatencyLink final : public LinkModel {
 public:
  explicit FixedLatencyLink(double latency) : latency_(latency) {}
  LinkFate transmit(const sim::Message& msg,
                    util::Xoshiro256StarStar& rng) override;
  double min_delay() const noexcept override { return latency_; }

 private:
  double latency_;
};

/// Base latency + uniform jitter in [0, width].
class UniformJitterLink final : public LinkModel {
 public:
  UniformJitterLink(double latency, double width)
      : latency_(latency), width_(width) {}
  LinkFate transmit(const sim::Message& msg,
                    util::Xoshiro256StarStar& rng) override;
  double min_delay() const noexcept override { return latency_; }

 private:
  double latency_;
  double width_;
};

/// Base latency + gaussian jitter (Box-Muller), clamped to >= 0 so time
/// never runs backwards.
class NormalJitterLink final : public LinkModel {
 public:
  NormalJitterLink(double latency, double stddev)
      : latency_(latency), stddev_(stddev) {}
  LinkFate transmit(const sim::Message& msg,
                    util::Xoshiro256StarStar& rng) override;
  /// The clamp lets a deep-negative variate land at zero delay, so no
  /// positive bound exists.
  double min_delay() const noexcept override { return 0.0; }

 private:
  double latency_;
  double stddev_;
};

/// Decorator: Bernoulli loss with probability `drop_rate` on top of an
/// inner delay model. A dropped attempt still reports the inner delay
/// (unused by the caller) so RNG consumption stays uniform across fates.
class DropLink final : public LinkModel {
 public:
  DropLink(double drop_rate, std::unique_ptr<LinkModel> inner)
      : drop_rate_(drop_rate), inner_(std::move(inner)) {}
  LinkFate transmit(const sim::Message& msg,
                    util::Xoshiro256StarStar& rng) override;
  /// Loss only delays delivery further (retransmission waits a strictly
  /// positive timeout), so the inner bound stands.
  double min_delay() const noexcept override { return inner_->min_delay(); }

 private:
  double drop_rate_;
  std::unique_ptr<LinkModel> inner_;
};

/// Decorator: with probability `rate`, holds the packet back an extra
/// uniform [0, extra] slots, letting later packets overtake it.
class ReorderLink final : public LinkModel {
 public:
  ReorderLink(double rate, double extra, std::unique_ptr<LinkModel> inner)
      : rate_(rate), extra_(extra), inner_(std::move(inner)) {}
  LinkFate transmit(const sim::Message& msg,
                    util::Xoshiro256StarStar& rng) override;
  double min_delay() const noexcept override { return inner_->min_delay(); }

 private:
  double rate_;
  double extra_;
  std::unique_ptr<LinkModel> inner_;
};

/// Builds the decorator chain a LinkConfig describes: fixed latency or
/// jittered latency, optionally wrapped in reorder and drop layers.
std::unique_ptr<LinkModel> make_link_model(const LinkConfig& config);

}  // namespace dds::net
