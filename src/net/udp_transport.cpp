#include "net/udp_transport.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/rng.h"

namespace dds::net {

namespace {

constexpr std::size_t kMaxDatagram = 65536;

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::runtime_error("UdpTransport: " + what + ": " +
                           std::strerror(errno));
}

std::uint64_t addr_key(std::uint32_t ip, std::uint16_t port) noexcept {
  return (static_cast<std::uint64_t>(ip) << 16) | port;
}

sockaddr_in make_addr(std::uint32_t ip, std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = ip;
  addr.sin_port = htons(port);
  return addr;
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    throw_errno("fcntl O_NONBLOCK");
  }
}

std::uint32_t resolve_host(const std::string& host) {
  const in_addr_t ip = ::inet_addr(host.empty() ? "127.0.0.1" : host.c_str());
  if (ip == INADDR_NONE) {
    throw std::runtime_error("UdpTransport: unresolvable host " + host);
  }
  return ip;
}

}  // namespace

UdpTransport::UdpTransport(std::uint32_t num_sites,
                           const NetworkConfig& config,
                           std::uint32_t num_coordinators,
                           SocketTopology topology, ConnConfig conn_config)
    : SocketTransport(num_sites, config, num_coordinators,
                      std::move(topology)),
      conn_config_(conn_config) {
  const std::uint32_t num_nodes = num_sites + num_coordinators;
  for (sim::NodeId id = 0; id < num_nodes; ++id) {
    if (is_local(id)) open_endpoint(id);
  }

  // Per-process cookie: incarnations must differ even at equal seeds,
  // so fold in the monotonic clock the transport already keeps.
  const std::uint64_t cookie_base =
      util::mix64(config.seed ^
                  static_cast<std::uint64_t>(now_seconds() * 1e9) ^
                  static_cast<std::uint64_t>(::getpid()));

  const std::uint32_t loopback = resolve_host("127.0.0.1");
  for (auto& [id, ep] : eps_) {
    const bool coord = is_coordinator(id);
    const std::uint32_t first_peer = coord ? 0 : num_sites;
    const std::uint32_t last_peer = coord ? num_sites : num_nodes;
    for (sim::NodeId peer_id = first_peer; peer_id < last_peer; ++peer_id) {
      Peer peer;
      if (is_local(peer_id)) {
        peer.ip = loopback;
        peer.port = eps_.at(peer_id).port;
        peer.addr_known = true;
      } else if (!coord) {
        // Remote coordinator: address comes from the topology. Remote
        // sites announce themselves via Hello.
        const std::uint32_t shard = peer_id - num_sites;
        if (shard >= this->topology().coordinator_addrs.size()) {
          throw std::runtime_error(
              "UdpTransport: no address for coordinator shard " +
              std::to_string(shard));
        }
        const auto& [host, port] = this->topology().coordinator_addrs[shard];
        peer.ip = resolve_host(host);
        peer.port = port;
        peer.addr_known = true;
      }
      wire::Hello hello{id, num_sites, num_coordinators,
                        util::derive_seed(cookie_base, id)};
      // Sites initiate; coordinators respond.
      peer.conn = std::make_unique<Connection>(!coord, hello, conn_config_);
      if (peer.addr_known) {
        ep.by_addr[addr_key(peer.ip, peer.port)] = peer_id;
      }
      ep.peers.emplace(peer_id, std::move(peer));
    }
  }

  run_handshake();
}

UdpTransport::~UdpTransport() {
  for (auto& [id, ep] : eps_) {
    if (ep.fd >= 0) ::close(ep.fd);
  }
}

void UdpTransport::open_endpoint(sim::NodeId id) {
  Endpoint ep;
  ep.fd = ::socket(AF_INET, SOCK_DGRAM, 0);
  if (ep.fd < 0) throw_errno("socket");
  // Generous kernel buffers: a loopback drop is survivable (the conn
  // layer retransmits) but needlessly slows the drain.
  const int buf = 1 << 20;
  ::setsockopt(ep.fd, SOL_SOCKET, SO_RCVBUF, &buf, sizeof(buf));
  ::setsockopt(ep.fd, SOL_SOCKET, SO_SNDBUF, &buf, sizeof(buf));
  std::uint16_t want_port = 0;
  if (!all_local() && is_coordinator(id) && topology().listen_port != 0) {
    want_port = static_cast<std::uint16_t>(topology().listen_port +
                                           (id - num_sites()));
  }
  sockaddr_in addr = make_addr(resolve_host("127.0.0.1"), want_port);
  if (::bind(ep.fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    throw_errno("bind");
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(ep.fd, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    throw_errno("getsockname");
  }
  ep.port = ntohs(addr.sin_port);
  set_nonblocking(ep.fd);
  eps_.emplace(id, std::move(ep));
}

std::uint16_t UdpTransport::port_of(sim::NodeId id) const {
  return eps_.at(id).port;
}

ConnStats UdpTransport::conn_totals() const {
  ConnStats total;
  for (const auto& [id, ep] : eps_) {
    for (const auto& [peer_id, peer] : ep.peers) {
      const ConnStats& s = peer.conn->stats();
      total.data_sent += s.data_sent;
      total.retransmits += s.retransmits;
      total.nack_retransmits += s.nack_retransmits;
      total.ack_only_sent += s.ack_only_sent;
      total.handshake_sent += s.handshake_sent;
      total.delivered += s.delivered;
      total.duplicates += s.duplicates;
      total.held_out_of_order += s.held_out_of_order;
      total.rejected += s.rejected;
    }
  }
  return total;
}

void UdpTransport::send_packet(Endpoint& ep, const Peer& peer,
                               const OutPacket& pkt) {
  const sockaddr_in addr = make_addr(peer.ip, peer.port);
  const ssize_t n =
      ::sendto(ep.fd, pkt.bytes.data(), pkt.bytes.size(), 0,
               reinterpret_cast<const sockaddr*>(&addr), sizeof(addr));
  if (n < 0) {
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == ENOBUFS) {
      // Treat as a wire drop; the reliability layer retransmits.
      return;
    }
    throw_errno("sendto");
  }
  stats().packets_sent += 1;
  stats().kernel_bytes_sent += static_cast<std::uint64_t>(n);
  if (pkt.retransmit) stats().retransmit_packets += 1;
  if (pkt.handshake) stats().handshake_packets += 1;
  if (!pkt.data && !pkt.handshake) stats().ack_only_packets += 1;
}

void UdpTransport::pump_out(sim::NodeId id, Endpoint& ep, double now) {
  (void)id;
  std::vector<OutPacket> out;
  for (auto& [peer_id, peer] : ep.peers) {
    if (!peer.addr_known) continue;  // nowhere to send yet
    out.clear();
    peer.conn->poll(now, out);
    for (const OutPacket& pkt : out) send_packet(ep, peer, pkt);
  }
}

void UdpTransport::ship_frame(sim::NodeId from, sim::NodeId to,
                              wire::Buffer frame) {
  Endpoint& ep = eps_.at(from);
  ep.peers.at(to).conn->send(std::move(frame));
  pump_out(from, ep, now_seconds());
}

bool UdpTransport::read_endpoint(sim::NodeId id, Endpoint& ep, double now) {
  bool moved = false;
  std::uint8_t buf[kMaxDatagram];
  std::vector<wire::Buffer> delivered;
  for (;;) {
    sockaddr_in src{};
    socklen_t src_len = sizeof(src);
    const ssize_t n = ::recvfrom(ep.fd, buf, sizeof(buf), 0,
                                 reinterpret_cast<sockaddr*>(&src), &src_len);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      throw_errno("recvfrom");
    }
    moved = true;
    stats().packets_received += 1;
    stats().kernel_bytes_received += static_cast<std::uint64_t>(n);
    const std::span<const std::uint8_t> packet{buf,
                                               static_cast<std::size_t>(n)};
    const std::uint64_t key =
        addr_key(src.sin_addr.s_addr, ntohs(src.sin_port));
    auto route = ep.by_addr.find(key);
    if (route == ep.by_addr.end()) {
      // Unknown source: only a Hello may introduce a peer (remote
      // sites announce themselves this way). Anything else is foreign
      // traffic and is dropped on the floor.
      if (packet.size() <= Connection::kPacketHeaderBytes) continue;
      std::size_t pos = Connection::kPacketHeaderBytes;
      const auto frame = wire::decode_frame(packet, pos);
      if (!frame || frame->kind != wire::FrameKind::kHello) continue;
      auto peer_it = ep.peers.find(frame->hello.node_id);
      if (peer_it == ep.peers.end()) continue;
      peer_it->second.ip = src.sin_addr.s_addr;
      peer_it->second.port = ntohs(src.sin_port);
      peer_it->second.addr_known = true;
      ep.by_addr[key] = frame->hello.node_id;
      route = ep.by_addr.find(key);
    }
    const sim::NodeId peer_id = route->second;
    Peer& peer = ep.peers.at(peer_id);
    delivered.clear();
    peer.conn->on_packet(packet, now, delivered);
    for (const wire::Buffer& payload : delivered) {
      on_frame_bytes(peer_id, id, payload);
    }
  }
  return moved;
}

bool UdpTransport::pump_io(double now) {
  bool moved = false;
  for (auto& [id, ep] : eps_) {
    if (read_endpoint(id, ep, now)) moved = true;
  }
  for (auto& [id, ep] : eps_) pump_out(id, ep, now);
  if (!moved) {
    // Idle: park on the fds briefly instead of spinning (retransmit
    // timers tick at rto granularity, so a couple of ms is plenty).
    std::vector<pollfd> fds;
    fds.reserve(eps_.size());
    for (const auto& [id, ep] : eps_) {
      fds.push_back(pollfd{ep.fd, POLLIN, 0});
    }
    ::poll(fds.data(), fds.size(), 2);
  }
  return moved;
}

bool UdpTransport::links_idle() const {
  for (const auto& [id, ep] : eps_) {
    for (const auto& [peer_id, peer] : ep.peers) {
      if (!peer.conn->idle()) return false;
    }
  }
  return true;
}

bool UdpTransport::all_established() const {
  for (const auto& [id, ep] : eps_) {
    for (const auto& [peer_id, peer] : ep.peers) {
      if (!peer.conn->established()) return false;
    }
  }
  return true;
}

void UdpTransport::run_handshake() {
  // All-local: every peer is already bound, so the handshake completes
  // in a few pump rounds — block until it does, making a mis-wired
  // deployment fail at construction. Partial topology: remote peers may
  // not exist yet (a coordinator process must publish its port before
  // sites can start), so return immediately — the Hello/Welcome
  // exchange completes during normal pumping, and the conn layer
  // queues data until its connection is established.
  if (!all_local()) return;
  const double deadline = now_seconds() + 10.0;
  while (!all_established()) {
    pump_io(now_seconds());
    if (now_seconds() > deadline) {
      throw std::runtime_error("UdpTransport: handshake timed out");
    }
  }
}

}  // namespace dds::net
