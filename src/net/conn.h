// Per-connection reliability: sequence numbers, redundant ack-bits,
// retransmit-on-nack — the layer that turns a lossy datagram pipe into
// in-order exactly-once delivery of wire frames.
//
// The scheme is the classic game-networking sliding window (see the
// networkedphysics SlidingWindow/GenerateAckBits snippets referenced in
// SNIPPETS.md): every packet carries
//
//   seq       the sender's 16-bit packet sequence number
//   ack       the highest sequence number received from the peer
//   ack_bits  one bit per preceding sequence (bit i => ack-1-i arrived)
//
// so every packet redundantly re-acknowledges the last 33 packets of
// the reverse direction — a single lost ack costs nothing. The sender
// keeps unacknowledged packets in flight and retransmits on either
// (a) a timeout, or (b) a NACK inferred from the ack bits: when three
// or more packets sent after seq s have been acknowledged and s has
// not, s is presumed lost and resent immediately (one fast resend per
// flight, then the timeout takes over). The receiver delivers payloads
// strictly in sequence order, holding out-of-order arrivals and
// dropping duplicates, so the layer above sees exactly the sender's
// frame sequence — which is what makes a real UDP run bit-comparable
// to the in-process transports.
//
// The class is deliberately pure: no sockets, no real clock. Time is a
// caller-supplied double (seconds), packets are byte buffers passed in
// and out, and all state transitions are deterministic functions of the
// input sequence — which is exactly what the scripted loss/reorder/
// duplication property tests need.
//
// Handshake: the initiating side emits kHello packets (carrying a
// wire::Hello with its identity, topology view, and a random cookie)
// until the responder's kWelcome — which echoes the cookie — arrives.
// The responder validates the topology and becomes established on the
// Hello. Data packets flow only once established.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <span>
#include <vector>

#include "net/wire.h"

namespace dds::net {

/// Reliability knobs. The defaults suit a loopback wire under test
/// load; real deployments would derive rto from measured RTT.
struct ConnConfig {
  double rto = 0.05;          ///< retransmit timeout, seconds
  double handshake_rto = 0.05;  ///< Hello re-send interval
  std::size_t window = 256;   ///< max packets in flight (< 32768)
  /// Packets acknowledged past an unacked one before it is presumed
  /// lost and fast-retransmitted (TCP's dup-ack idea on ack bits).
  std::uint64_t nack_gap = 3;
};

/// Counters for the reliability machinery (the socket transports
/// aggregate these into their observability surface).
struct ConnStats {
  std::uint64_t data_sent = 0;        ///< first transmissions
  std::uint64_t retransmits = 0;      ///< timeout + nack resends
  std::uint64_t nack_retransmits = 0; ///< subset triggered by ack bits
  std::uint64_t ack_only_sent = 0;
  std::uint64_t handshake_sent = 0;
  std::uint64_t delivered = 0;        ///< payloads handed up, in order
  std::uint64_t duplicates = 0;       ///< received and dropped
  std::uint64_t held_out_of_order = 0;
  std::uint64_t rejected = 0;         ///< unparsable / wrong-version packets
};

/// One packet the connection wants on the wire, with enough labeling
/// for the transport's byte accounting (first data transmissions count
/// as wire messages; retransmits count again; acks and handshakes are
/// pure overhead).
struct OutPacket {
  wire::Buffer bytes;
  bool data = false;        ///< carries a payload frame
  bool retransmit = false;  ///< data re-send (counted separately)
  bool handshake = false;
};

class Connection {
 public:
  /// `initiator` drives the Hello side of the handshake. `local` is
  /// this endpoint's identity/topology (and, for the initiator, the
  /// cookie the Welcome must echo).
  Connection(bool initiator, wire::Hello local, ConnConfig config = {});

  /// Queues one payload (a complete wire frame) for reliable in-order
  /// delivery. May be called before the handshake completes; delivery
  /// starts once established.
  void send(wire::Buffer payload);

  /// State machine pump: emits due packets (handshake, fresh data up
  /// to the window, timeout/nack retransmits, and a pure ack when one
  /// is owed) into `out`. Call whenever time advances or after
  /// on_packet().
  void poll(double now, std::vector<OutPacket>& out);

  /// Processes one received packet. In-order payloads (and any held
  /// successors they release) are appended to `delivered`. Returns
  /// false for packets that are not this protocol/version (counted in
  /// stats().rejected).
  bool on_packet(std::span<const std::uint8_t> packet, double now,
                 std::vector<wire::Buffer>& delivered);

  bool established() const noexcept { return established_; }
  /// Everything sent has been acknowledged and nothing is queued — the
  /// drain-at-finish condition: a process may only exit (or a stream
  /// declare itself complete) once its connections are idle, otherwise
  /// retransmission responsibility dies with it.
  bool idle() const noexcept {
    return established_ && pending_.empty() && in_flight_.empty();
  }
  std::size_t in_flight() const noexcept { return in_flight_.size(); }
  const ConnStats& stats() const noexcept { return stats_; }
  const wire::Hello& peer() const noexcept { return peer_; }

  /// Serialized packet-header size (the per-packet overhead abl16
  /// accounts for): magic 2 + version 1 + kind 1 + flags 1 + pad 1 +
  /// seq 2 + ack 2 + ack_bits 4.
  static constexpr std::size_t kPacketHeaderBytes = 14;

 private:
  enum class PacketKind : std::uint8_t {
    kData = 1,
    kAckOnly = 2,
    kHello = 3,
    kWelcome = 4,
  };

  struct InFlight {
    wire::Buffer payload;
    double sent_at = 0.0;
    bool fast_resent = false;  ///< one nack-triggered resend per flight
  };

  void emit(PacketKind kind, std::uint64_t seq, const wire::Buffer* payload,
            bool retransmit, std::vector<OutPacket>& out);
  void process_acks(std::uint16_t ack, std::uint32_t ack_bits, bool has_ack);
  void note_received(std::uint64_t seq_ext);
  /// Nearest 64-bit extension of a wrapped u16 sequence relative to
  /// `reference`.
  static std::uint64_t unwrap(std::uint64_t reference, std::uint16_t seq);

  bool initiator_;
  wire::Hello local_;
  ConnConfig config_;
  bool established_ = false;
  bool welcome_due_ = false;
  double last_hello_ = -1e18;
  wire::Hello peer_{};

  // Sender state (extended 64-bit sequences; the wire carries low 16).
  std::uint64_t next_seq_ = 1;  // 0 means "none" throughout
  std::uint64_t highest_acked_ = 0;
  std::deque<wire::Buffer> pending_;
  std::map<std::uint64_t, InFlight> in_flight_;

  // Receiver state.
  std::uint64_t delivered_through_ = 0;  ///< last in-order delivered seq
  std::uint64_t latest_recv_ = 0;        ///< highest seq seen (0 = none)
  std::uint64_t recv_mask_ = 0;  ///< bit i => latest_recv_-1-i received
  std::map<std::uint64_t, wire::Buffer> held_;
  bool ack_dirty_ = false;

  ConnStats stats_;
};

}  // namespace dds::net
