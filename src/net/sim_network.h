// Event-driven network simulator.
//
// Generalizes the zero-delay sim::Bus: every transmission is scheduled
// on a priority queue keyed by delivery time (ties broken by send order,
// so a zero-delay configuration reproduces the Bus's FIFO semantics
// bit-for-bit). Per-link LinkModels decide flight time and loss;
// dropped transmissions optionally retransmit after a timeout; outbound
// site->coordinator reports can be coalesced by a Batcher.
//
// Time: the Runner advances the integer slot clock (set_now); the
// network keeps a fractional virtual clock that tracks the slot clock
// and the timestamps of processed events, so cascaded replies are sent
// at the moment their trigger arrived. drain() delivers everything due
// at the current slot; finish() runs the queue dry at end of stream.
//
// Determinism: all randomness (jitter, loss, reordering) comes from one
// generator seeded by NetworkConfig::seed, so a run is a pure function
// of (arrival sequence, protocol seeds, network seed).
#pragma once

#include <cstdint>
#include <memory>
#include <queue>
#include <unordered_map>
#include <vector>

#include "net/batcher.h"
#include "net/config.h"
#include "net/link_model.h"
#include "net/transport.h"
#include "obs/metrics.h"
#include "util/rng.h"

namespace dds::net {

/// Wire-level pathology and batching statistics (beyond BusCounters).
struct NetStats {
  std::uint64_t transmissions = 0;     ///< wire units put on a link
  std::uint64_t drops = 0;             ///< transmissions lost in flight
  std::uint64_t retransmissions = 0;   ///< retries scheduled after a drop
  std::uint64_t lost_messages = 0;     ///< logical msgs abandoned for good
  std::uint64_t batches_flushed = 0;   ///< batcher flushes (any size)
  std::uint64_t batched_messages = 0;  ///< logical msgs that rode a batch
};

class SimNetwork final : public Transport {
 public:
  SimNetwork(std::uint32_t num_sites, const NetworkConfig& config,
             std::uint32_t num_coordinators = 1);

  void send(const sim::Message& msg) override;
  void drain() override;
  void finish() override;

  /// Minimum flight time across every link model in play (default +
  /// overrides): a positive value certifies no send can be delivered
  /// within that many slots, which is what the ShardedEngine's lockstep
  /// mode needs for its wave barrier. Zero-latency or normal-jitter
  /// links report 0 (no positive bound) and keep lockstep off.
  double delivery_horizon() const noexcept override;

  /// Earliest scheduled event (delivery or retransmission), or
  /// +infinity with an empty queue. Batched reports still buffering are
  /// excluded: they only become events at a flush, which happens at
  /// clock advances and always lands at least delivery_horizon() later.
  double next_delivery_time() const noexcept override;

  /// Overrides the wire model of the directed link from -> to. Links
  /// without an override use the model NetworkConfig::link describes.
  /// Retransmission policy (timeout, attempt cap) stays global.
  void set_link_model(sim::NodeId from, sim::NodeId to,
                      std::unique_ptr<LinkModel> model);

  /// Removes the from -> to override, restoring the default link — the
  /// partition-heal path of the chaos layer (set a lossy override to
  /// partition, clear it to heal).
  void clear_link_model(sim::NodeId from, sim::NodeId to);

  /// Force-flushes every pending batch destined to coordinator shard
  /// `shard` onto its link, regardless of deadline — the per-shard
  /// flush hook for query staleness control: flushed reports reach the
  /// coordinator one link flight later, so the NEXT slot's answer
  /// reflects them instead of waiting out the batch deadline
  /// (examples/sharded_sliding_lossy.cpp shows the pattern). This is
  /// an explicit opt-in: Deployment queries never touch the wire, so
  /// nothing flushes automatically — the batching-staleness trade
  /// stays visible in abl10/abl12 rather than being silently papered
  /// over at query time.
  void flush_shard(std::uint32_t shard) override;

  /// Batched messages discarded because their destination shard was
  /// removed before they flushed (see Batcher::stranded(); 0 under a
  /// correct quiesce-then-remove sequence).
  std::uint64_t stranded_messages() const noexcept {
    return batcher_.stranded();
  }

  /// Protocol-level counters: one count per send(), regardless of
  /// batching or retransmission. counters() is the wire-level view;
  /// (logical - wire) is the batching saving, (wire - logical) the
  /// retransmission overhead.
  const BusCounters& logical_counters() const noexcept { return logical_; }

  const NetStats& stats() const noexcept { return net_stats_; }

  const NetworkConfig& config() const noexcept { return config_; }

  /// Fractional virtual clock (== slot clock unless finish() ran past
  /// it or events carried fractional delays).
  double virtual_time() const noexcept { return vtime_; }

  /// Scheduled wire units not yet delivered (in flight or awaiting
  /// retransmission); excludes batched messages still buffering.
  std::size_t in_flight() const noexcept { return queue_.size(); }

  /// Event queue empty AND batcher empty — what finish() guarantees.
  bool quiescent() const noexcept override {
    return queue_.empty() && batcher_.buffered_total() == 0;
  }

  /// Base registrations plus the NetStats cells (net.drops, ...), the
  /// logical counters (net.logical.*), an in-flight gauge, and wire
  /// pathology histograms (batch sizes, flight times in trace us).
  void bind_observability(obs::MetricsRegistry* registry,
                          obs::Tracer* tracer) override;

 protected:
  void on_clock_advance(sim::Slot now) override;

  /// Re-layouts the batcher's per-(site, shard) buffers and immediately
  /// flushes every batch whose destination survived the resize, so no
  /// buffered report is silently dropped by a topology change.
  void on_coordinators_resized() override;

  /// Trace events ride the fractional event clock, not the slot clock.
  double trace_time() const noexcept override { return vtime_; }

 private:
  /// One wire unit: a single message or a coalesced batch.
  struct WireUnit {
    std::vector<sim::Message> msgs;  // non-empty; in send order
    bool batched = false;
  };

  enum class EventKind : std::uint8_t { kTransmit, kDeliver };

  struct Event {
    double time = 0.0;
    std::uint64_t seq = 0;  // FIFO tie-break at equal times
    EventKind kind = EventKind::kDeliver;
    int attempt = 1;
    WireUnit unit;
  };

  struct EventAfter {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  void schedule(double time, EventKind kind, WireUnit unit, int attempt);
  /// Puts a wire unit on its link at time `at`: rolls the link model,
  /// counts the attempt, and schedules delivery or a retry.
  void transmit(WireUnit unit, double at, int attempt);
  void deliver_unit(const WireUnit& unit);
  void flush_batches(std::vector<Batch> batches);
  void run_due(double horizon);
  LinkModel& link_for(sim::NodeId from, sim::NodeId to);

  NetworkConfig config_;
  util::Xoshiro256StarStar rng_;
  std::unique_ptr<LinkModel> default_link_;
  std::unordered_map<std::uint64_t, std::unique_ptr<LinkModel>> link_overrides_;
  Batcher batcher_;
  std::priority_queue<Event, std::vector<Event>, EventAfter> queue_;
  std::uint64_t next_seq_ = 0;
  double vtime_ = 0.0;
  bool draining_ = false;
  BusCounters logical_;
  NetStats net_stats_;
  /// True once a registry holds references into the histograms below;
  /// the hot paths only observe() when set, so disabled observability
  /// costs a single predictable branch per transmission.
  bool metrics_bound_ = false;
  obs::Histogram batch_size_hist_;  ///< logical msgs per wire unit
  obs::Histogram flight_us_hist_;   ///< delivery delay, trace us
};

}  // namespace dds::net
