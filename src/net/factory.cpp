#include "net/factory.h"

#include "net/sim_network.h"
#include "net/tcp_transport.h"
#include "net/udp_transport.h"
#include "sim/bus.h"

namespace dds::net {

std::unique_ptr<Transport> make_transport(std::uint32_t num_sites,
                                          const NetworkConfig& config,
                                          std::uint32_t num_coordinators) {
  // The real-socket kinds build all-local loopback deployments here;
  // multi-process topologies construct the transports directly with a
  // SocketTopology (tools/dds_node.cpp).
  if (config.kind == TransportKind::kUdp) {
    return std::make_unique<UdpTransport>(num_sites, config,
                                          num_coordinators);
  }
  if (config.kind == TransportKind::kTcp) {
    return std::make_unique<TcpTransport>(num_sites, config,
                                          num_coordinators);
  }
  const bool use_bus =
      config.kind == TransportKind::kBus ||
      (config.kind == TransportKind::kAuto && config.trivial());
  if (use_bus) return std::make_unique<sim::Bus>(num_sites, num_coordinators);
  return std::make_unique<SimNetwork>(num_sites, config, num_coordinators);
}

}  // namespace dds::net
