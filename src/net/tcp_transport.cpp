#include "net/tcp_transport.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

namespace dds::net {

namespace {

constexpr std::size_t kReadChunk = 65536;

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::runtime_error("TcpTransport: " + what + ": " +
                           std::strerror(errno));
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    throw_errno("fcntl O_NONBLOCK");
  }
}

void set_nodelay(int fd) {
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

sockaddr_in loopback_addr(std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = ::inet_addr("127.0.0.1");
  addr.sin_port = htons(port);
  return addr;
}

std::uint32_t resolve_host(const std::string& host) {
  const in_addr_t ip = ::inet_addr(host.empty() ? "127.0.0.1" : host.c_str());
  if (ip == INADDR_NONE) {
    throw std::runtime_error("TcpTransport: unresolvable host " + host);
  }
  return ip;
}

}  // namespace

TcpTransport::TcpTransport(std::uint32_t num_sites,
                           const NetworkConfig& config,
                           std::uint32_t num_coordinators,
                           SocketTopology topology)
    : SocketTransport(num_sites, config, num_coordinators,
                      std::move(topology)) {
  open_listeners();
  connect_sites();
  // All-local: this process is both ends, so the whole handshake can
  // (and must, for fail-at-construction) complete here. Partial: the
  // coordinator side accepts lazily in pump_io — peer processes may
  // not have started yet — while the site side still blocks for its
  // Welcomes (its coordinators are, by definition, already listening).
  if (all_local()) accept_sites();
  await_welcomes();
  for (auto& [key, peer] : peers_) {
    set_nonblocking(peer.fd);
    set_nodelay(peer.fd);
  }
}

TcpTransport::~TcpTransport() {
  for (auto& [key, peer] : peers_) {
    if (peer.fd >= 0) ::close(peer.fd);
  }
  for (auto& [shard, listener] : listeners_) {
    if (listener.fd >= 0) ::close(listener.fd);
  }
}

void TcpTransport::open_listeners() {
  for (std::uint32_t shard = 0; shard < num_coordinators(); ++shard) {
    if (!is_local(coordinator_id(shard))) continue;
    Listener listener;
    listener.fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listener.fd < 0) throw_errno("socket");
    const int one = 1;
    ::setsockopt(listener.fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    std::uint16_t want_port = 0;
    if (!all_local() && this->topology().listen_port != 0) {
      want_port =
          static_cast<std::uint16_t>(this->topology().listen_port + shard);
    }
    sockaddr_in addr = loopback_addr(want_port);
    if (::bind(listener.fd, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) < 0) {
      throw_errno("bind");
    }
    socklen_t len = sizeof(addr);
    if (::getsockname(listener.fd, reinterpret_cast<sockaddr*>(&addr),
                      &len) < 0) {
      throw_errno("getsockname");
    }
    listener.port = ntohs(addr.sin_port);
    if (::listen(listener.fd, 128) < 0) throw_errno("listen");
    set_nonblocking(listener.fd);  // accept loop honors its deadline
    listeners_.emplace(shard, listener);
  }
}

std::uint16_t TcpTransport::listen_port_of(std::uint32_t shard) const {
  return listeners_.at(shard).port;
}

int TcpTransport::connect_with_retry(std::uint32_t ip, std::uint16_t port,
                                     double deadline) {
  const sockaddr_in addr = [&] {
    sockaddr_in a = loopback_addr(port);
    a.sin_addr.s_addr = ip;
    return a;
  }();
  for (;;) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) throw_errno("socket");
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) == 0) {
      return fd;
    }
    ::close(fd);
    if (now_seconds() > deadline) {
      throw std::runtime_error("TcpTransport: connect timed out on port " +
                               std::to_string(port));
    }
    // The peer process may not be listening yet (multi-process spawn
    // order); back off briefly and retry.
    ::poll(nullptr, 0, 20);
  }
}

void TcpTransport::write_frame_blocking(int fd, const wire::Buffer& frame) {
  std::size_t off = 0;
  while (off < frame.size()) {
    const ssize_t n = ::send(fd, frame.data() + off, frame.size() - off, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        pollfd p{fd, POLLOUT, 0};
        ::poll(&p, 1, 100);
        continue;
      }
      throw_errno("send");
    }
    off += static_cast<std::size_t>(n);
  }
}

wire::Frame TcpTransport::read_frame_blocking(Peer& peer, double deadline) {
  std::uint8_t chunk[kReadChunk];
  for (;;) {
    std::size_t pos = peer.inpos;
    auto frame = wire::decode_frame(peer.inbuf, pos);
    if (frame) {
      peer.inpos = pos;
      return std::move(*frame);
    }
    if (!wire::incomplete_prefix(peer.inbuf, peer.inpos)) {
      throw std::runtime_error("TcpTransport: corrupt handshake stream");
    }
    if (now_seconds() > deadline) {
      throw std::runtime_error("TcpTransport: handshake timed out");
    }
    pollfd p{peer.fd, POLLIN, 0};
    ::poll(&p, 1, 100);
    const ssize_t n = ::recv(peer.fd, chunk, sizeof(chunk), MSG_DONTWAIT);
    if (n > 0) {
      stats().packets_received += 1;
      stats().kernel_bytes_received += static_cast<std::uint64_t>(n);
      peer.inbuf.insert(peer.inbuf.end(), chunk, chunk + n);
    } else if (n == 0) {
      throw std::runtime_error("TcpTransport: peer closed during handshake");
    } else if (errno != EAGAIN && errno != EWOULDBLOCK && errno != EINTR) {
      throw_errno("recv");
    }
  }
}

void TcpTransport::connect_sites() {
  // Site side of every (site, coordinator) stream: connect, introduce
  // ourselves with a Hello frame, wait for the Welcome.
  const double deadline = now_seconds() + (all_local() ? 10.0 : 60.0);
  for (sim::NodeId site = 0; site < num_sites(); ++site) {
    if (!is_local(site)) continue;
    for (std::uint32_t shard = 0; shard < num_coordinators(); ++shard) {
      std::uint32_t ip = 0;
      std::uint16_t port = 0;
      if (is_local(coordinator_id(shard))) {
        ip = resolve_host("127.0.0.1");
        port = listeners_.at(shard).port;
      } else {
        if (shard >= this->topology().coordinator_addrs.size()) {
          throw std::runtime_error(
              "TcpTransport: no address for coordinator shard " +
              std::to_string(shard));
        }
        const auto& [host, p] = this->topology().coordinator_addrs[shard];
        ip = resolve_host(host);
        port = p;
      }
      Peer peer;
      peer.fd = connect_with_retry(ip, port, deadline);
      set_nodelay(peer.fd);
      wire::Buffer hello;
      wire::encode_hello(
          wire::Hello{site, num_sites(), num_coordinators(), 0}, hello);
      write_frame_blocking(peer.fd, hello);
      stats().handshake_packets += 1;
      // The Welcome is read in await_welcomes(), AFTER accept_sites():
      // in all-local mode this same process must accept and answer the
      // Hello first, so waiting here would deadlock.
      peers_.emplace(std::make_pair(site, coordinator_id(shard)),
                     std::move(peer));
    }
  }
}

void TcpTransport::await_welcomes() {
  const double deadline = now_seconds() + (all_local() ? 10.0 : 60.0);
  for (auto& [key, peer] : peers_) {
    if (is_coordinator(key.first)) continue;  // coordinator-side stream
    const wire::Frame welcome = read_frame_blocking(peer, deadline);
    if (welcome.kind != wire::FrameKind::kWelcome ||
        welcome.hello.num_sites != num_sites() ||
        welcome.hello.num_coordinators != num_coordinators()) {
      throw std::runtime_error(
          "TcpTransport: bad welcome (topology mismatch?)");
    }
  }
}

void TcpTransport::accept_sites() {
  // Coordinator side: accept one stream per site, identify it by its
  // Hello, answer Welcome. Accept order is whatever the kernel gives
  // us; identity comes from the Hello, never from arrival order.
  const double deadline = now_seconds() + (all_local() ? 10.0 : 60.0);
  for (auto& [shard, listener] : listeners_) {
    const sim::NodeId coord = coordinator_id(shard);
    for (std::uint32_t accepted = 0; accepted < num_sites(); ++accepted) {
      int fd = -1;
      for (;;) {
        fd = ::accept(listener.fd, nullptr, nullptr);
        if (fd >= 0) break;
        if (errno != EAGAIN && errno != EWOULDBLOCK && errno != EINTR) {
          throw_errno("accept");
        }
        if (now_seconds() > deadline) {
          throw std::runtime_error("TcpTransport: accept timed out");
        }
        pollfd p{listener.fd, POLLIN, 0};
        ::poll(&p, 1, 100);
      }
      set_nodelay(fd);
      Peer peer;
      peer.fd = fd;
      const wire::Frame hello = read_frame_blocking(peer, deadline);
      if (hello.kind != wire::FrameKind::kHello ||
          hello.hello.num_sites != num_sites() ||
          hello.hello.num_coordinators != num_coordinators() ||
          hello.hello.node_id >= num_sites()) {
        ::close(fd);
        throw std::runtime_error("TcpTransport: bad hello from client");
      }
      wire::Buffer welcome;
      wire::encode_welcome(
          wire::Hello{coord, num_sites(), num_coordinators(),
                      hello.hello.cookie},
          welcome);
      write_frame_blocking(peer.fd, welcome);
      stats().handshake_packets += 1;
      peers_.emplace(std::make_pair(coord, hello.hello.node_id),
                     std::move(peer));
    }
  }
}

void TcpTransport::adopt_peer(sim::NodeId local, sim::NodeId remote,
                              Peer peer) {
  set_nonblocking(peer.fd);
  set_nodelay(peer.fd);
  auto [it, inserted] =
      peers_.emplace(std::make_pair(local, remote), std::move(peer));
  if (!inserted) {
    ::close(it->second.fd);
    throw std::runtime_error("TcpTransport: duplicate stream for node " +
                             std::to_string(remote));
  }
  // Release anything that raced the connector.
  auto waiting = pre_accept_out_.find({local, remote});
  if (waiting != pre_accept_out_.end()) {
    it->second.outbuf.insert(it->second.outbuf.end(),
                             waiting->second.begin(), waiting->second.end());
    pre_accept_out_.erase(waiting);
    flush_out(it->second);
  }
  // The Hello may have arrived glued to the first data frames.
  parse_frames(local, remote, it->second);
}

bool TcpTransport::pump_accepts() {
  bool moved = false;
  for (auto& [shard, listener] : listeners_) {
    const sim::NodeId coord = coordinator_id(shard);
    for (;;) {
      const int fd = ::accept(listener.fd, nullptr, nullptr);
      if (fd < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) break;
        throw_errno("accept");
      }
      moved = true;
      Peer peer;
      peer.fd = fd;
      pending_accepts_[shard].push_back(std::move(peer));
    }
    auto& pending = pending_accepts_[shard];
    for (auto it = pending.begin(); it != pending.end();) {
      Peer& peer = *it;
      std::uint8_t chunk[kReadChunk];
      const ssize_t n = ::recv(peer.fd, chunk, sizeof(chunk), MSG_DONTWAIT);
      if (n > 0) {
        moved = true;
        stats().packets_received += 1;
        stats().kernel_bytes_received += static_cast<std::uint64_t>(n);
        peer.inbuf.insert(peer.inbuf.end(), chunk, chunk + n);
      } else if (n == 0 ||
                 (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK &&
                  errno != EINTR)) {
        ::close(peer.fd);  // gave up before identifying itself
        it = pending.erase(it);
        continue;
      }
      std::size_t pos = peer.inpos;
      auto hello = wire::decode_frame(peer.inbuf, pos);
      if (!hello) {
        if (!wire::incomplete_prefix(peer.inbuf, peer.inpos)) {
          ::close(peer.fd);  // foreign client
          it = pending.erase(it);
          continue;
        }
        ++it;
        continue;
      }
      peer.inpos = pos;
      if (hello->kind != wire::FrameKind::kHello ||
          hello->hello.num_sites != num_sites() ||
          hello->hello.num_coordinators != num_coordinators() ||
          hello->hello.node_id >= num_sites()) {
        ::close(peer.fd);
        it = pending.erase(it);
        continue;
      }
      wire::Buffer welcome;
      wire::encode_welcome(
          wire::Hello{coord, num_sites(), num_coordinators(),
                      hello->hello.cookie},
          welcome);
      write_frame_blocking(peer.fd, welcome);
      stats().handshake_packets += 1;
      const sim::NodeId site = hello->hello.node_id;
      Peer adopted = std::move(peer);
      it = pending.erase(it);
      adopt_peer(coord, site, std::move(adopted));
      moved = true;
    }
  }
  return moved;
}

void TcpTransport::ship_frame(sim::NodeId from, sim::NodeId to,
                              wire::Buffer frame) {
  auto it = peers_.find({from, to});
  if (it == peers_.end()) {
    // Remote site not accepted yet (partial topology): park the bytes;
    // adopt_peer() flushes them the moment the stream is identified.
    wire::Buffer& waiting = pre_accept_out_[{from, to}];
    waiting.insert(waiting.end(), frame.begin(), frame.end());
    return;
  }
  Peer& peer = it->second;
  peer.outbuf.insert(peer.outbuf.end(), frame.begin(), frame.end());
  flush_out(peer);
}

bool TcpTransport::flush_out(Peer& peer) {
  bool moved = false;
  while (peer.outpos < peer.outbuf.size()) {
    const ssize_t n =
        ::send(peer.fd, peer.outbuf.data() + peer.outpos,
               peer.outbuf.size() - peer.outpos, MSG_DONTWAIT);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      throw_errno("send");
    }
    moved = true;
    stats().packets_sent += 1;
    stats().kernel_bytes_sent += static_cast<std::uint64_t>(n);
    peer.outpos += static_cast<std::size_t>(n);
  }
  if (peer.outpos == peer.outbuf.size() && peer.outpos > 0) {
    peer.outbuf.clear();
    peer.outpos = 0;
  }
  return moved;
}

void TcpTransport::parse_frames(sim::NodeId local, sim::NodeId remote,
                                Peer& peer) {
  for (;;) {
    std::size_t pos = peer.inpos;
    auto frame = wire::decode_frame(peer.inbuf, pos);
    if (!frame) {
      if (!wire::incomplete_prefix(peer.inbuf, peer.inpos)) {
        throw std::runtime_error("TcpTransport: corrupt stream from node " +
                                 std::to_string(remote));
      }
      break;
    }
    peer.inpos = pos;
    accept_frame(remote, local, std::move(*frame));
  }
  // Compact once the parsed prefix dominates the buffer.
  if (peer.inpos > 4096 && peer.inpos * 2 > peer.inbuf.size()) {
    peer.inbuf.erase(peer.inbuf.begin(),
                     peer.inbuf.begin() + static_cast<std::ptrdiff_t>(
                                              peer.inpos));
    peer.inpos = 0;
  }
}

bool TcpTransport::read_peer(sim::NodeId local, sim::NodeId remote,
                             Peer& peer) {
  bool moved = false;
  std::uint8_t chunk[kReadChunk];
  for (;;) {
    const ssize_t n = ::recv(peer.fd, chunk, sizeof(chunk), MSG_DONTWAIT);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      throw_errno("recv");
    }
    if (n == 0) break;  // peer closed; parsed frames already delivered
    moved = true;
    stats().packets_received += 1;
    stats().kernel_bytes_received += static_cast<std::uint64_t>(n);
    peer.inbuf.insert(peer.inbuf.end(), chunk, chunk + n);
  }
  if (moved) parse_frames(local, remote, peer);
  return moved;
}

bool TcpTransport::pump_io(double now) {
  (void)now;
  bool moved = false;
  if (!all_local()) moved = pump_accepts();
  for (auto& [key, peer] : peers_) {
    if (flush_out(peer)) moved = true;
    if (read_peer(key.first, key.second, peer)) moved = true;
  }
  if (!moved) {
    std::vector<pollfd> fds;
    fds.reserve(peers_.size());
    for (const auto& [key, peer] : peers_) {
      short events = POLLIN;
      if (peer.outpos < peer.outbuf.size()) events |= POLLOUT;
      fds.push_back(pollfd{peer.fd, events, 0});
    }
    ::poll(fds.data(), fds.size(), 2);
  }
  return moved;
}

bool TcpTransport::links_idle() const {
  if (!pre_accept_out_.empty()) return false;
  for (const auto& [key, peer] : peers_) {
    if (peer.outpos < peer.outbuf.size()) return false;
  }
  return true;
}

}  // namespace dds::net
