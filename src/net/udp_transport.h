// UDP transport: datagrams on 127.0.0.1 with the conn-layer reliability
// machinery (sequence numbers, redundant ack-bits, retransmit-on-nack)
// turning the lossy pipe into in-order exactly-once frame delivery.
//
// Topology: one UDP socket per local node; one Connection per directed
// (site, coordinator) pairing at each endpoint — the site side
// initiates the Hello/Welcome handshake, the coordinator side responds.
// The constructor runs the handshake to completion (every connection
// established) before returning, so a mis-wired deployment fails at
// construction, not mid-protocol.
//
// Each datagram is one conn-layer packet: a 14-byte reliability header
// followed by at most one wire frame. Batches keep frames far below the
// loopback MTU. Send-side EAGAIN/ENOBUFS is deliberately treated as a
// drop: the reliability layer retransmits, which is the point of having
// it.
#pragma once

#include <cstdint>
#include <map>
#include <memory>

#include "net/conn.h"
#include "net/socket_transport.h"

namespace dds::net {

class UdpTransport final : public SocketTransport {
 public:
  UdpTransport(std::uint32_t num_sites, const NetworkConfig& config,
               std::uint32_t num_coordinators = 1, SocketTopology topology = {},
               ConnConfig conn_config = {});
  ~UdpTransport() override;

  /// Bound UDP port of a local node (tests and dds_node's --port-file).
  std::uint16_t port_of(sim::NodeId id) const;

  /// Sum of every connection's reliability counters.
  ConnStats conn_totals() const;

 protected:
  void ship_frame(sim::NodeId from, sim::NodeId to,
                  wire::Buffer frame) override;
  bool pump_io(double now) override;
  bool links_idle() const override;

 private:
  struct Peer {
    std::uint32_t ip = 0;    ///< network byte order
    std::uint16_t port = 0;  ///< host byte order
    bool addr_known = false;
    std::unique_ptr<Connection> conn;
  };

  struct Endpoint {
    int fd = -1;
    std::uint16_t port = 0;
    std::map<sim::NodeId, Peer> peers;
    /// (ip << 16 | port) -> peer node, for routing received datagrams.
    std::map<std::uint64_t, sim::NodeId> by_addr;
  };

  void open_endpoint(sim::NodeId id);
  void pump_out(sim::NodeId id, Endpoint& ep, double now);
  void send_packet(Endpoint& ep, const Peer& peer, const OutPacket& pkt);
  bool read_endpoint(sim::NodeId id, Endpoint& ep, double now);
  void run_handshake();
  bool all_established() const;

  ConnConfig conn_config_;
  std::map<sim::NodeId, Endpoint> eps_;
};

}  // namespace dds::net
