#include "net/wire.h"

#include <cstring>
#include <stdexcept>

// For the five image magics and the integrity check the decoder re-runs
// on kImage payloads. The checkpoint module owns image formats; the
// wire layer only frames them. (Both live in the one dds library, so
// this cross-layer call is a plain function call, not a dependency
// cycle: checkpoint.h never includes wire.h.)
#include "core/checkpoint.h"

namespace dds::net::wire {

namespace {

void put_u8(Buffer& out, std::uint8_t v) { out.push_back(v); }

void put_u16(Buffer& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void put_u32(Buffer& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void put_u64(Buffer& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

/// Bounds-checked little-endian reads over the frame being decoded.
/// Every getter returns nullopt instead of reading past `end`.
struct Cursor {
  std::span<const std::uint8_t> in;
  std::size_t pos;
  std::size_t end;

  std::optional<std::uint8_t> u8() {
    if (pos + 1 > end) return std::nullopt;
    return in[pos++];
  }
  std::optional<std::uint16_t> u16() {
    if (pos + 2 > end) return std::nullopt;
    std::uint16_t v = static_cast<std::uint16_t>(in[pos]) |
                      static_cast<std::uint16_t>(in[pos + 1]) << 8;
    pos += 2;
    return v;
  }
  std::optional<std::uint32_t> u32() {
    if (pos + 4 > end) return std::nullopt;
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(in[pos + i]) << (8 * i);
    }
    pos += 4;
    return v;
  }
  std::optional<std::uint64_t> u64() {
    if (pos + 8 > end) return std::nullopt;
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(in[pos + i]) << (8 * i);
    }
    pos += 8;
    return v;
  }
};

std::uint64_t fnv1a(std::span<const std::uint8_t> bytes) {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (const std::uint8_t b : bytes) {
    h ^= b;
    h *= 0x100000001B3ULL;
  }
  return h;
}

/// Appends header + payload + checksum. `payload` writers run between
/// the two fixed parts via the callback so the length is known.
template <typename PayloadWriter>
void encode_frame(FrameKind kind, Buffer& out, PayloadWriter&& write) {
  const std::size_t start = out.size();
  put_u32(out, kMagic);
  put_u8(out, kVersion);
  put_u8(out, static_cast<std::uint8_t>(kind));
  put_u16(out, 0);  // reserved
  put_u32(out, 0);  // length patched below
  const std::size_t payload_start = out.size();
  write(out);
  const std::size_t payload = out.size() - payload_start;
  if (payload > kMaxPayload) {
    throw std::invalid_argument("wire: payload exceeds kMaxPayload");
  }
  for (int i = 0; i < 4; ++i) {
    out[start + 8 + i] = static_cast<std::uint8_t>(payload >> (8 * i));
  }
  put_u64(out, fnv1a({out.data() + start, out.size() - start}));
}

void put_message_body(Buffer& out, const sim::Message& msg) {
  put_u8(out, static_cast<std::uint8_t>(msg.type));
  put_u32(out, msg.instance);
  put_u64(out, msg.a);
  put_u64(out, msg.b);
  put_u64(out, msg.c);
}

std::optional<sim::Message> get_message_body(Cursor& c, sim::NodeId from,
                                             sim::NodeId to) {
  const auto type = c.u8();
  const auto instance = c.u32();
  const auto a = c.u64();
  const auto b = c.u64();
  const auto cc = c.u64();
  if (!type || !instance || !a || !b || !cc) return std::nullopt;
  if (*type >= sim::kNumMsgTypes) return std::nullopt;
  sim::Message msg;
  msg.from = from;
  msg.to = to;
  msg.type = static_cast<sim::MsgType>(*type);
  msg.instance = *instance;
  msg.a = *a;
  msg.b = *b;
  msg.c = *cc;
  return msg;
}

void put_hello_body(Buffer& out, const Hello& hello) {
  put_u32(out, hello.node_id);
  put_u32(out, hello.num_sites);
  put_u32(out, hello.num_coordinators);
  put_u64(out, hello.cookie);
}

std::optional<Hello> get_hello_body(Cursor& c) {
  const auto node = c.u32();
  const auto sites = c.u32();
  const auto coords = c.u32();
  const auto cookie = c.u64();
  if (!node || !sites || !coords || !cookie) return std::nullopt;
  return Hello{*node, *sites, *coords, *cookie};
}

}  // namespace

void encode_message(const sim::Message& msg, Buffer& out) {
  encode_frame(FrameKind::kMessage, out, [&](Buffer& b) {
    put_u32(b, msg.from);
    put_u32(b, msg.to);
    put_message_body(b, msg);
  });
}

void encode_batch(std::span<const sim::Message> msgs, Buffer& out) {
  if (msgs.empty()) {
    throw std::invalid_argument("wire: empty batch");
  }
  for (const sim::Message& msg : msgs) {
    if (msg.from != msgs.front().from || msg.to != msgs.front().to) {
      throw std::invalid_argument("wire: batch with mixed routing");
    }
  }
  encode_frame(FrameKind::kBatch, out, [&](Buffer& b) {
    put_u32(b, msgs.front().from);
    put_u32(b, msgs.front().to);
    put_u32(b, static_cast<std::uint32_t>(msgs.size()));
    for (const sim::Message& msg : msgs) put_message_body(b, msg);
  });
}

void encode_image(std::span<const std::uint8_t> image, Buffer& out) {
  const core::CheckpointImage copy(image.begin(), image.end());
  if (!core::verify_checkpoint_image(copy)) {
    throw std::invalid_argument("wire: refusing to frame a corrupt image");
  }
  encode_frame(FrameKind::kImage, out, [&](Buffer& b) {
    b.insert(b.end(), image.begin(), image.end());
  });
}

void encode_hello(const Hello& hello, Buffer& out) {
  encode_frame(FrameKind::kHello, out,
               [&](Buffer& b) { put_hello_body(b, hello); });
}

void encode_welcome(const Hello& hello, Buffer& out) {
  encode_frame(FrameKind::kWelcome, out,
               [&](Buffer& b) { put_hello_body(b, hello); });
}

void encode_fin(const Fin& fin, Buffer& out) {
  encode_frame(FrameKind::kFin, out, [&](Buffer& b) {
    put_u32(b, fin.node_id);
    put_u64(b, fin.messages_sent);
  });
}

std::optional<Frame> decode_frame(std::span<const std::uint8_t> in,
                                  std::size_t& pos) {
  Cursor c{in, pos, in.size()};
  const auto magic = c.u32();
  const auto version = c.u8();
  const auto kind_byte = c.u8();
  const auto reserved = c.u16();
  const auto length = c.u32();
  if (!magic || !version || !kind_byte || !reserved || !length) {
    return std::nullopt;
  }
  if (*magic != kMagic || *version != kVersion || *reserved != 0 ||
      *length > kMaxPayload) {
    return std::nullopt;
  }
  if (*kind_byte < static_cast<std::uint8_t>(FrameKind::kMessage) ||
      *kind_byte > static_cast<std::uint8_t>(FrameKind::kFin)) {
    return std::nullopt;
  }
  const std::size_t payload_start = c.pos;
  const std::size_t payload_end = payload_start + *length;
  if (payload_end + kChecksumBytes > in.size()) return std::nullopt;
  {
    Cursor sum{in, payload_end, in.size()};
    const auto stored = sum.u64();
    if (!stored ||
        *stored != fnv1a({in.data() + pos, payload_end - pos})) {
      return std::nullopt;
    }
  }
  // Payload parse: every getter is bounded by the declared payload, and
  // the whole payload must be consumed — no trailing bytes hide inside
  // a checksummed frame.
  c.end = payload_end;
  Frame frame;
  frame.kind = static_cast<FrameKind>(*kind_byte);
  switch (frame.kind) {
    case FrameKind::kMessage: {
      const auto from = c.u32();
      const auto to = c.u32();
      if (!from || !to) return std::nullopt;
      auto msg = get_message_body(c, *from, *to);
      if (!msg) return std::nullopt;
      frame.msgs.push_back(*msg);
      break;
    }
    case FrameKind::kBatch: {
      const auto from = c.u32();
      const auto to = c.u32();
      const auto count = c.u32();
      if (!from || !to || !count || *count == 0) return std::nullopt;
      // 29 payload bytes per entry: a count the payload cannot hold is
      // rejected before any allocation.
      if (*count > (payload_end - c.pos) / 29) return std::nullopt;
      frame.msgs.reserve(*count);
      for (std::uint32_t i = 0; i < *count; ++i) {
        auto msg = get_message_body(c, *from, *to);
        if (!msg) return std::nullopt;
        frame.msgs.push_back(*msg);
      }
      break;
    }
    case FrameKind::kImage: {
      frame.image.assign(in.begin() + static_cast<std::ptrdiff_t>(c.pos),
                         in.begin() + static_cast<std::ptrdiff_t>(payload_end));
      c.pos = payload_end;
      if (!core::verify_checkpoint_image(frame.image)) return std::nullopt;
      break;
    }
    case FrameKind::kHello:
    case FrameKind::kWelcome: {
      auto hello = get_hello_body(c);
      if (!hello) return std::nullopt;
      frame.hello = *hello;
      break;
    }
    case FrameKind::kFin: {
      const auto node = c.u32();
      const auto sent = c.u64();
      if (!node || !sent) return std::nullopt;
      frame.fin = Fin{*node, *sent};
      break;
    }
  }
  if (c.pos != payload_end) return std::nullopt;
  pos = payload_end + kChecksumBytes;
  return frame;
}

bool incomplete_prefix(std::span<const std::uint8_t> in, std::size_t pos) {
  // Byte-wise: validate exactly the header bytes that are present (a
  // partially arrived field must be checked byte by byte, not skipped —
  // otherwise a wrong first byte would read as "keep waiting").
  const std::size_t have = in.size() - pos;
  for (std::size_t i = 0; i < 4 && i < have; ++i) {
    if (in[pos + i] != static_cast<std::uint8_t>(kMagic >> (8 * i))) {
      return false;
    }
  }
  if (have >= 5 && in[pos + 4] != kVersion) return false;
  if (have >= 6) {
    const std::uint8_t kind = in[pos + 5];
    if (kind < static_cast<std::uint8_t>(FrameKind::kMessage) ||
        kind > static_cast<std::uint8_t>(FrameKind::kFin)) {
      return false;
    }
  }
  if (have >= 7 && in[pos + 6] != 0) return false;  // reserved
  if (have >= 8 && in[pos + 7] != 0) return false;
  if (have < kHeaderBytes) return true;  // plausible partial header
  std::uint32_t length = 0;
  for (int i = 0; i < 4; ++i) {
    length |= static_cast<std::uint32_t>(in[pos + 8 + i]) << (8 * i);
  }
  if (length > kMaxPayload) return false;
  return have < kHeaderBytes + length + kChecksumBytes;
}

}  // namespace dds::net::wire
