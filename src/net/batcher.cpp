#include "net/batcher.h"

#include <stdexcept>
#include <utility>

namespace dds::net {

Batcher::Batcher(std::uint32_t num_sites, sim::Slot interval,
                 std::size_t max_msgs)
    : interval_(interval),
      max_msgs_(max_msgs == 0 ? 1 : max_msgs),
      buffers_(num_sites) {}

bool Batcher::add(const sim::Message& msg, sim::Slot now) {
  if (msg.from >= buffers_.size()) {
    throw std::out_of_range("Batcher::add: not a site message");
  }
  Buffer& buf = buffers_[msg.from];
  if (buf.msgs.empty()) buf.first_slot = now;
  buf.msgs.push_back(msg);
  return buf.msgs.size() >= max_msgs_;
}

Batch Batcher::take_site(sim::NodeId site) {
  Buffer& buf = buffers_[site];
  Batch out{site, std::move(buf.msgs)};
  buf.msgs.clear();
  return out;
}

std::vector<Batch> Batcher::take_due(sim::Slot now) {
  std::vector<Batch> out;
  for (sim::NodeId site = 0; site < buffers_.size(); ++site) {
    const Buffer& buf = buffers_[site];
    if (!buf.msgs.empty() && buf.first_slot + interval_ <= now) {
      out.push_back(take_site(site));
    }
  }
  return out;
}

std::vector<Batch> Batcher::take_all() {
  std::vector<Batch> out;
  for (sim::NodeId site = 0; site < buffers_.size(); ++site) {
    if (!buffers_[site].msgs.empty()) out.push_back(take_site(site));
  }
  return out;
}

}  // namespace dds::net
