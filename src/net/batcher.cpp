#include "net/batcher.h"

#include <stdexcept>
#include <utility>

namespace dds::net {

Batcher::Batcher(std::uint32_t num_sites, std::uint32_t num_coordinators,
                 sim::Slot interval, std::size_t max_msgs)
    : num_sites_(num_sites),
      num_coordinators_(num_coordinators == 0 ? 1 : num_coordinators),
      interval_(interval),
      max_msgs_(max_msgs == 0 ? 1 : max_msgs),
      buffers_(static_cast<std::size_t>(num_sites) * num_coordinators_) {}

std::size_t Batcher::index_of(const sim::Message& msg) const {
  if (msg.from >= num_sites_ || msg.to < num_sites_ ||
      msg.to >= num_sites_ + num_coordinators_) {
    throw std::out_of_range("Batcher: not a site->coordinator message");
  }
  return static_cast<std::size_t>(msg.from) * num_coordinators_ +
         (msg.to - num_sites_);
}

bool Batcher::add(const sim::Message& msg, sim::Slot now) {
  Buffer& buf = buffers_[index_of(msg)];
  if (buf.msgs.empty()) buf.first_slot = now;
  buf.msgs.push_back(msg);
  return buf.msgs.size() >= max_msgs_;
}

Batch Batcher::take(std::size_t index) {
  Buffer& buf = buffers_[index];
  Batch out{static_cast<sim::NodeId>(index / num_coordinators_),
            std::move(buf.msgs)};
  buf.msgs.clear();
  return out;
}

Batch Batcher::take_for(const sim::Message& msg) {
  return take(index_of(msg));
}

std::vector<Batch> Batcher::take_due(sim::Slot now) {
  std::vector<Batch> out;
  for (std::size_t i = 0; i < buffers_.size(); ++i) {
    const Buffer& buf = buffers_[i];
    if (!buf.msgs.empty() && buf.first_slot + interval_ <= now) {
      out.push_back(take(i));
    }
  }
  return out;
}

std::vector<Batch> Batcher::take_all() {
  std::vector<Batch> out;
  for (std::size_t i = 0; i < buffers_.size(); ++i) {
    if (!buffers_[i].msgs.empty()) out.push_back(take(i));
  }
  return out;
}

std::vector<Batch> Batcher::take_for_shard(std::uint32_t shard) {
  if (shard >= num_coordinators_) {
    throw std::out_of_range("Batcher::take_for_shard");
  }
  std::vector<Batch> out;
  for (std::uint32_t site = 0; site < num_sites_; ++site) {
    const std::size_t i =
        static_cast<std::size_t>(site) * num_coordinators_ + shard;
    if (!buffers_[i].msgs.empty()) out.push_back(take(i));
  }
  return out;
}

std::vector<Batch> Batcher::rebind(std::uint32_t num_coordinators) {
  const std::uint32_t old_c = num_coordinators_;
  std::vector<Buffer> old = std::move(buffers_);
  num_coordinators_ = num_coordinators == 0 ? 1 : num_coordinators;
  buffers_.assign(static_cast<std::size_t>(num_sites_) * num_coordinators_,
                  Buffer{});
  std::vector<Batch> keep;
  for (std::uint32_t site = 0; site < num_sites_; ++site) {
    for (std::uint32_t c = 0; c < old_c; ++c) {
      Buffer& buf = old[static_cast<std::size_t>(site) * old_c + c];
      if (buf.msgs.empty()) continue;
      if (c < num_coordinators_) {
        keep.push_back(
            Batch{static_cast<sim::NodeId>(site), std::move(buf.msgs)});
      } else {
        stranded_ += buf.msgs.size();
      }
    }
  }
  return keep;
}

std::size_t Batcher::buffered_for_shard(std::uint32_t shard) const {
  if (shard >= num_coordinators_) {
    throw std::out_of_range("Batcher::buffered_for_shard");
  }
  std::size_t n = 0;
  for (std::uint32_t site = 0; site < num_sites_; ++site) {
    n += buffers_[static_cast<std::size_t>(site) * num_coordinators_ + shard]
             .msgs.size();
  }
  return n;
}

}  // namespace dds::net
