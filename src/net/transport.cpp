#include "net/transport.h"

#include <limits>
#include <stdexcept>
#include <string>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/node.h"

namespace dds::net {

double Transport::next_delivery_time() const noexcept {
  return std::numeric_limits<double>::infinity();
}

BusCounters BusCounters::operator-(const BusCounters& rhs) const noexcept {
  BusCounters out;
  out.total = total - rhs.total;
  out.site_to_coordinator = site_to_coordinator - rhs.site_to_coordinator;
  out.coordinator_to_site = coordinator_to_site - rhs.coordinator_to_site;
  out.bytes = bytes - rhs.bytes;
  for (std::size_t i = 0; i < by_type.size(); ++i) {
    out.by_type[i] = by_type[i] - rhs.by_type[i];
  }
  return out;
}

Transport::Transport(std::uint32_t num_sites, std::uint32_t num_coordinators)
    : num_sites_(num_sites),
      num_coordinators_(num_coordinators == 0 ? 1 : num_coordinators),
      nodes_(num_sites + num_coordinators_, nullptr),
      sent_by_(num_sites + num_coordinators_, 0),
      received_by_(num_sites + num_coordinators_, 0),
      per_coordinator_(num_coordinators_) {}

void Transport::attach(sim::NodeId id, sim::Node* node) {
  if (id >= nodes_.size()) {
    throw std::out_of_range("Transport::attach: node id out of range");
  }
  nodes_[id] = node;
}

void Transport::add_coordinator() {
  ++num_coordinators_;
  nodes_.push_back(nullptr);
  sent_by_.push_back(0);
  received_by_.push_back(0);
  per_coordinator_.emplace_back();
  register_shard_metrics();
  on_coordinators_resized();
}

void Transport::remove_last_coordinator() {
  if (num_coordinators_ < 2) {
    throw std::logic_error(
        "Transport::remove_last_coordinator: cannot remove the only shard");
  }
  --num_coordinators_;
  nodes_.pop_back();
  sent_by_.pop_back();
  received_by_.pop_back();
  per_coordinator_.pop_back();
  on_coordinators_resized();
}

void Transport::check_endpoints(const sim::Message& msg) const {
  if (msg.from >= nodes_.size() || msg.to >= nodes_.size()) {
    throw std::out_of_range("Transport::send: bad endpoint");
  }
}

void Transport::note_send(const sim::Message& msg) {
  ++sent_by_[msg.from];
  wire_.by_type[static_cast<std::size_t>(msg.type)] += 1;
  per_coordinator_[shard_of(msg)].by_type[static_cast<std::size_t>(msg.type)] +=
      1;
  if (tap_) tap_(msg);
}

void Transport::count_wire(const sim::Message& msg, std::uint64_t bytes) {
  const bool from_coordinator = is_coordinator(msg.from);
  wire_.add_transmission(from_coordinator, bytes);
  per_coordinator_[shard_of(msg)].add_transmission(from_coordinator, bytes);
}

const BusCounters& Transport::coordinator_counters(std::uint32_t shard) const {
  if (shard >= per_coordinator_.size()) {
    throw std::out_of_range("Transport::coordinator_counters");
  }
  return per_coordinator_[shard];
}

void Transport::deliver(const sim::Message& msg) {
  ++received_by_[msg.to];
  sim::Node* node = nodes_[msg.to];
  if (node == nullptr) {
    throw std::logic_error("Transport::deliver: message to unattached node");
  }
  delivering_at_ = trace_time();
  if (tracer_ != nullptr) {
    // Both engines call deliver() on the main/replay thread in the same
    // global order, so these instants are deterministic across engines.
    tracer_->instant("net", sim::msg_type_name(msg.type), delivering_at_,
                     msg.to,
                     {{"from", static_cast<double>(msg.from)},
                      {"instance", static_cast<double>(msg.instance)}});
  }
  // The sink interposes after accounting/tracing: the wire saw the
  // delivery; the sink only decides whether the node is dispatched now
  // (false) or the delivery is consumed elsewhere, e.g. deferred into
  // the speculative engine's playout queue (true).
  if (sink_ != nullptr && sink_->on_delivery(msg, delivering_at_)) return;
  node->on_message(msg, *this);
}

void Transport::bind_observability(obs::MetricsRegistry* registry,
                                   obs::Tracer* tracer) {
  tracer_ = tracer;
  if (registry == nullptr) return;
  registry->counter("net.wire.msgs", &wire_.total);
  registry->counter("net.wire.bytes", &wire_.bytes);
  registry->counter("net.wire.site_to_coordinator",
                    &wire_.site_to_coordinator);
  registry->counter("net.wire.coordinator_to_site",
                    &wire_.coordinator_to_site);
  for (std::size_t t = 0; t < sim::kNumMsgTypes; ++t) {
    registry->counter(
        std::string("proto.msgs.") +
            sim::msg_type_name(static_cast<sim::MsgType>(t)),
        &wire_.by_type[t]);
  }
  registry_ = registry;
  register_shard_metrics();
}

void Transport::register_shard_metrics() {
  if (registry_ == nullptr) return;
  // counter_fn closures, not cell pointers: per_coordinator_ resizes on
  // elastic topology changes, and a shard that later leaves must read 0
  // (its registration stays — the registry has no unregister), not a
  // dangling pointer.
  for (std::uint32_t j = shard_metrics_registered_; j < num_coordinators_;
       ++j) {
    const std::string prefix = "net.shard" + std::to_string(j);
    registry_->counter_fn(prefix + ".msgs", [this, j]() {
      return j < per_coordinator_.size() ? per_coordinator_[j].total : 0;
    });
    registry_->counter_fn(prefix + ".bytes", [this, j]() {
      return j < per_coordinator_.size() ? per_coordinator_[j].bytes : 0;
    });
  }
  if (num_coordinators_ > shard_metrics_registered_) {
    shard_metrics_registered_ = num_coordinators_;
  }
}

std::uint64_t Transport::sent_by(sim::NodeId id) const {
  if (id >= sent_by_.size()) throw std::out_of_range("Transport::sent_by");
  return sent_by_[id];
}

std::uint64_t Transport::received_by(sim::NodeId id) const {
  if (id >= received_by_.size()) {
    throw std::out_of_range("Transport::received_by");
  }
  return received_by_[id];
}

}  // namespace dds::net
