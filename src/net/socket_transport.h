// Shared machinery for the real-socket transports (UDP and TCP).
//
// Both concrete transports move every message through the kernel on
// 127.0.0.1 sockets — real sendto/recv, real file descriptors — while
// implementing the exact net::Transport contract the in-process wires
// satisfy, so make_engine/Deployment run over them with zero protocol
// changes. The shared base owns everything that is not socket-flavored:
//
//   * Batcher integration copied move-for-move from SimNetwork: send()
//     buffers batchable site->coordinator reports, a size-triggered
//     batch ships immediately, on_clock_advance() ships due batches,
//     flush_shard() ships one shard's buffers, finish() alternates
//     take_all() with socket pumping until everything is quiescent.
//   * The logical/wire counter split: logical_counters() counts one
//     per send() like SimNetwork; counters() (the base Transport wire
//     view) counts encoded frames with their true serialized size, so
//     (wire bytes - logical bytes) is the real framing overhead abl16
//     tabulates against the paper's 8 + 29n model.
//   * Bus-identical delivery order. All nodes of a loopback deployment
//     live in one process, so the transport records the global send
//     order of frames in a token queue; arriving frames wait in
//     per-link FIFOs (each link is in-order: the conn layer or TCP
//     guarantees it) and are delivered strictly in token order. That
//     makes delivery order — and therefore every sample, estimate, and
//     logical counter — bit-identical to the zero-delay Bus, which is
//     the differential harness's whole proof obligation.
//   * The drain-at-finish contract: drain() pumps the sockets until no
//     shipped frame is undelivered; finish() additionally requires the
//     batcher empty and every link idle (all data acknowledged). A
//     transport must never report finish() while a slow socket still
//     holds end-of-stream messages — quiescent() is the auditable form
//     of that promise (regression-tested in socket_test).
//
// Multi-process mode: a SocketTopology restricting local_nodes makes
// this process host a subset of the deployment (tools/dds_node). Sends
// to remote nodes go over the wire to peer addresses; frames arriving
// from remote nodes bypass the token queue (there is no global order
// across processes — per-link FIFO order still holds) and deliver on
// receipt. Only all-local transports claim synchronous().
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "net/batcher.h"
#include "net/config.h"
#include "net/transport.h"
#include "net/wire.h"

namespace dds::net {

/// Where the nodes of this deployment live. Default: everything local
/// (the loopback differential mode).
struct SocketTopology {
  /// Nodes hosted by this process; empty means all of them.
  std::vector<sim::NodeId> local_nodes;
  /// Fixed port a local coordinator listens on (0 = ephemeral; fine
  /// when every node is local and ports are exchanged in-process).
  /// Multi-coordinator partial deployments listen on listen_port + j.
  std::uint16_t listen_port = 0;
  /// Address of coordinator shard j for remote-coordinator processes,
  /// as (host, port). Sites initiate all connections.
  std::vector<std::pair<std::string, std::uint16_t>> coordinator_addrs;

  bool all_local(std::uint32_t num_nodes) const noexcept {
    return local_nodes.empty() || local_nodes.size() == num_nodes;
  }
};

/// Socket-level accounting beyond BusCounters (which counts frames):
/// what actually crossed the kernel boundary.
struct SocketStats {
  std::uint64_t frames_sent = 0;      ///< encoded wire frames shipped
  std::uint64_t frames_received = 0;  ///< frames decoded and dispatched
  std::uint64_t packets_sent = 0;     ///< datagrams / stream writes
  std::uint64_t packets_received = 0;
  std::uint64_t kernel_bytes_sent = 0;  ///< incl. packet-header overhead
  std::uint64_t kernel_bytes_received = 0;
  std::uint64_t retransmit_packets = 0;  ///< UDP reliability resends
  std::uint64_t ack_only_packets = 0;
  std::uint64_t handshake_packets = 0;
  std::uint64_t batches_flushed = 0;
  std::uint64_t batched_messages = 0;
};

class SocketTransport : public Transport {
 public:
  SocketTransport(std::uint32_t num_sites, const NetworkConfig& config,
                  std::uint32_t num_coordinators, SocketTopology topology);
  ~SocketTransport() override = default;

  void send(const sim::Message& msg) override;

  /// Pumps the sockets until every frame shipped between local nodes
  /// has been delivered (the Bus cascade: deliveries send, sends are
  /// delivered, until silent). Throws std::runtime_error if the wire
  /// makes no progress for the stall timeout — a hung socket must be a
  /// loud failure, never a silent partial drain.
  void drain() override;

  /// Drain + batcher empty + links idle: the end-of-stream barrier.
  /// Alternates flushing the batcher with pumping, exactly like
  /// SimNetwork::finish(), because deliveries can buffer fresh
  /// batchable reports.
  void finish() override;

  void flush_shard(std::uint32_t shard) override;

  bool synchronous() const noexcept override { return all_local_; }

  /// Nothing shipped is undelivered, nothing is buffered, every link
  /// has acknowledged all data: the transport may be abandoned without
  /// stranding a message. finish() leaves the transport quiescent.
  bool quiescent() const noexcept override {
    return tokens_.empty() && batcher_.buffered_total() == 0 && links_idle();
  }

  /// Protocol-level counters, one per send() (see SimNetwork): the
  /// differential harness compares THESE across transports; counters()
  /// carries real frame bytes and so legitimately differs from the
  /// simulated byte model.
  const BusCounters& logical_counters() const noexcept { return logical_; }

  const SocketStats& socket_stats() const noexcept { return stats_; }

  /// Ships a kFin end-of-stream frame from `from` to `to` (dds_node's
  /// completion barrier). Counted as a frame, not as a protocol
  /// message.
  void send_fin(sim::NodeId from, sim::NodeId to,
                std::uint64_t messages_sent);

  /// Fin frames received so far, in arrival order.
  const std::vector<wire::Fin>& fins() const noexcept { return fins_; }

  /// Pumps I/O once without blocking for long (dds_node's event loop;
  /// tests use drain()/finish()). Returns true if any byte moved.
  bool pump() { return pump_io(now_seconds()); }

  /// Seconds since transport construction (monotonic) — the clock the
  /// reliability layer runs on.
  double now_seconds() const;

  void bind_observability(obs::MetricsRegistry* registry,
                          obs::Tracer* tracer) override;

 protected:
  void on_clock_advance(sim::Slot now) override;

  // ---- the socket-flavored surface subclasses implement --------------

  /// Queues one encoded frame for reliable in-order delivery from
  /// `from` to `to` and pushes it toward the kernel.
  virtual void ship_frame(sim::NodeId from, sim::NodeId to,
                          wire::Buffer frame) = 0;

  /// Moves bytes: reads everything readable (feeding received frames
  /// back through on_frame_bytes), services retransmit/ack timers,
  /// flushes pending writes. May block briefly (a few ms) when idle.
  /// Returns true if anything moved.
  virtual bool pump_io(double now) = 0;

  /// Every link has acknowledged (UDP) or fully written (TCP) all data.
  virtual bool links_idle() const = 0;

  // ---- services for subclasses ---------------------------------------

  bool is_local(sim::NodeId id) const { return local_mask_[id]; }
  bool all_local() const noexcept { return all_local_; }
  const SocketTopology& topology() const noexcept { return topology_; }
  SocketStats& stats() noexcept { return stats_; }

  /// Subclasses hand every received frame's bytes here (payloads the
  /// reliability layer released, or frames sliced off a TCP stream).
  /// Decodes, validates, and either queues the frame behind its token
  /// (local sender) or delivers immediately (remote sender). Throws on
  /// a frame that does not decode — the link layers below guarantee
  /// integrity, so a bad frame here is a bug, not weather.
  void on_frame_bytes(sim::NodeId from, sim::NodeId to,
                      const wire::Buffer& bytes);

  /// Same entry point for a frame the subclass already decoded (the
  /// TCP stream parser slices and validates in place).
  void accept_frame(sim::NodeId from, sim::NodeId to, wire::Frame frame);

 private:
  void ship(std::vector<sim::Message> msgs, bool batched);
  void flush_batches(std::vector<Batch> batches);
  void deliver_frame(const wire::Frame& frame);
  /// Delivers every frame whose token is at the head of the global
  /// order and whose bytes have arrived. Returns true when the token
  /// queue is empty afterwards.
  bool deliver_due();
  /// Pump + deliver until the token queue empties; stall-guarded.
  void drain_tokens();

  NetworkConfig config_;
  SocketTopology topology_;
  bool all_local_;
  std::vector<char> local_mask_;
  Batcher batcher_;
  BusCounters logical_;
  SocketStats stats_;
  std::vector<wire::Fin> fins_;

  /// Global send order of local->local frames: front = next delivery.
  std::deque<std::pair<sim::NodeId, sim::NodeId>> tokens_;  // (from, to)
  /// Arrived-but-not-yet-due frames per directed link.
  std::map<std::pair<sim::NodeId, sim::NodeId>, std::deque<wire::Frame>>
      ready_;

  double clock_origin_ = 0.0;
  double stall_timeout_ = 10.0;  ///< seconds without progress -> throw
};

}  // namespace dds::net
