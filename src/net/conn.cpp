#include "net/conn.h"

namespace dds::net {

namespace {

constexpr std::uint16_t kPacketMagic = 0x5CDD;
constexpr std::uint8_t kPacketVersion = 1;
constexpr std::uint8_t kFlagHasAck = 0x01;

}  // namespace

Connection::Connection(bool initiator, wire::Hello local, ConnConfig config)
    : initiator_(initiator), local_(local), config_(config) {
  // The 32-bit ack field covers seqs [ack-32, ack]; with more than 32
  // packets in flight a straggler could fall out of every future ack
  // and retransmit forever. Clamp rather than trust the caller.
  if (config_.window > 32) config_.window = 32;
  if (config_.window == 0) config_.window = 1;
}

void Connection::send(wire::Buffer payload) {
  pending_.push_back(std::move(payload));
}

std::uint64_t Connection::unwrap(std::uint64_t reference, std::uint16_t seq) {
  // Candidate with the reference's epoch, then shift one epoch either
  // way if that lands closer. Sequences move forward in a window far
  // smaller than 2^15, so "closest to reference" is unambiguous.
  const std::uint64_t base = reference & ~0xFFFFULL;
  std::uint64_t best = base | seq;
  auto distance = [reference](std::uint64_t v) {
    return v > reference ? v - reference : reference - v;
  };
  if (base >= 0x10000ULL && distance((base - 0x10000ULL) | seq) < distance(best)) {
    best = (base - 0x10000ULL) | seq;
  }
  if (distance((base + 0x10000ULL) | seq) < distance(best)) {
    best = (base + 0x10000ULL) | seq;
  }
  return best;
}

void Connection::emit(PacketKind kind, std::uint64_t seq,
                      const wire::Buffer* payload, bool retransmit,
                      std::vector<OutPacket>& out) {
  OutPacket pkt;
  pkt.data = kind == PacketKind::kData;
  pkt.retransmit = retransmit;
  pkt.handshake =
      kind == PacketKind::kHello || kind == PacketKind::kWelcome;
  wire::Buffer& b = pkt.bytes;
  b.reserve(kPacketHeaderBytes + (payload != nullptr ? payload->size() : 0));
  b.push_back(static_cast<std::uint8_t>(kPacketMagic));
  b.push_back(static_cast<std::uint8_t>(kPacketMagic >> 8));
  b.push_back(kPacketVersion);
  b.push_back(static_cast<std::uint8_t>(kind));
  const bool has_ack = latest_recv_ != 0;
  b.push_back(has_ack ? kFlagHasAck : 0);
  b.push_back(0);  // pad
  const std::uint16_t seq16 = static_cast<std::uint16_t>(seq);
  b.push_back(static_cast<std::uint8_t>(seq16));
  b.push_back(static_cast<std::uint8_t>(seq16 >> 8));
  const std::uint16_t ack16 = static_cast<std::uint16_t>(latest_recv_);
  b.push_back(static_cast<std::uint8_t>(ack16));
  b.push_back(static_cast<std::uint8_t>(ack16 >> 8));
  const std::uint32_t bits = static_cast<std::uint32_t>(recv_mask_);
  for (int i = 0; i < 4; ++i) {
    b.push_back(static_cast<std::uint8_t>(bits >> (8 * i)));
  }
  if (payload != nullptr) b.insert(b.end(), payload->begin(), payload->end());
  if (has_ack) ack_dirty_ = false;
  out.push_back(std::move(pkt));
}

void Connection::poll(double now, std::vector<OutPacket>& out) {
  const std::size_t emitted_before = out.size();
  if (!established_ && initiator_ &&
      now - last_hello_ >= config_.handshake_rto) {
    wire::Buffer hello;
    wire::encode_hello(local_, hello);
    emit(PacketKind::kHello, 0, &hello, false, out);
    last_hello_ = now;
    ++stats_.handshake_sent;
  }
  if (welcome_due_) {
    // Echo the initiator's cookie so it can tell this Welcome answers
    // its own Hello and not a stale incarnation's.
    wire::Hello ours = local_;
    ours.cookie = peer_.cookie;
    wire::Buffer welcome;
    wire::encode_welcome(ours, welcome);
    emit(PacketKind::kWelcome, 0, &welcome, false, out);
    welcome_due_ = false;
    ++stats_.handshake_sent;
  }
  if (established_) {
    while (!pending_.empty() && in_flight_.size() < config_.window) {
      // Never open a sequence 32+ past the oldest unacked one: acked
      // holes ahead of it free window slots, but a flight spanning more
      // than the 32-bit ack coverage could neither be acked once the
      // peer's ack head moves past it nor recognized as fresh on a late
      // retransmit. The span cap keeps every flight ack-coverable.
      if (!in_flight_.empty() &&
          next_seq_ - in_flight_.begin()->first >= 32) {
        break;
      }
      const std::uint64_t seq = next_seq_++;
      InFlight& f = in_flight_[seq];
      f.payload = std::move(pending_.front());
      pending_.pop_front();
      f.sent_at = now;
      emit(PacketKind::kData, seq, &f.payload, false, out);
      ++stats_.data_sent;
    }
    for (auto& [seq, f] : in_flight_) {
      const bool fast = !f.fast_resent && highest_acked_ != 0 &&
                        highest_acked_ >= seq + config_.nack_gap;
      const bool timeout = now - f.sent_at >= config_.rto;
      if (!fast && !timeout) continue;
      emit(PacketKind::kData, seq, &f.payload, true, out);
      f.sent_at = now;
      ++stats_.retransmits;
      if (fast) {
        f.fast_resent = true;
        ++stats_.nack_retransmits;
      }
    }
  }
  if (ack_dirty_ && out.size() == emitted_before) {
    emit(PacketKind::kAckOnly, 0, nullptr, false, out);
    ++stats_.ack_only_sent;
  }
}

void Connection::process_acks(std::uint16_t ack, std::uint32_t ack_bits,
                              bool has_ack) {
  if (!has_ack || next_seq_ == 1) return;
  const std::uint64_t highest_sent = next_seq_ - 1;
  const std::uint64_t ack_ext = unwrap(highest_sent, ack);
  if (ack_ext == 0 || ack_ext > highest_sent) return;
  in_flight_.erase(ack_ext);
  for (std::uint64_t i = 0; i < 32; ++i) {
    if (ack_ext < i + 2) break;  // ack_ext - 1 - i would fall below seq 1
    if ((ack_bits >> i & 1U) != 0) in_flight_.erase(ack_ext - 1 - i);
  }
  if (ack_ext > highest_acked_) highest_acked_ = ack_ext;
}

void Connection::note_received(std::uint64_t seq_ext) {
  if (latest_recv_ == 0 || seq_ext > latest_recv_) {
    const std::uint64_t shift =
        latest_recv_ == 0 ? 64 : seq_ext - latest_recv_;
    if (shift >= 64) {
      recv_mask_ = 0;
    } else {
      recv_mask_ <<= shift;
      recv_mask_ |= 1ULL << (shift - 1);  // the old latest itself
    }
    latest_recv_ = seq_ext;
    return;
  }
  const std::uint64_t d = latest_recv_ - 1 - seq_ext;
  if (d < 64) recv_mask_ |= 1ULL << d;
}

bool Connection::on_packet(std::span<const std::uint8_t> packet, double now,
                           std::vector<wire::Buffer>& delivered) {
  (void)now;
  if (packet.size() < kPacketHeaderBytes) {
    ++stats_.rejected;
    return false;
  }
  const std::uint16_t magic =
      static_cast<std::uint16_t>(packet[0]) |
      static_cast<std::uint16_t>(packet[1]) << 8;
  const std::uint8_t version = packet[2];
  const std::uint8_t kind_byte = packet[3];
  const std::uint8_t flags = packet[4];
  if (magic != kPacketMagic || version != kPacketVersion ||
      kind_byte < static_cast<std::uint8_t>(PacketKind::kData) ||
      kind_byte > static_cast<std::uint8_t>(PacketKind::kWelcome)) {
    ++stats_.rejected;
    return false;
  }
  const std::uint16_t seq16 = static_cast<std::uint16_t>(packet[6]) |
                              static_cast<std::uint16_t>(packet[7]) << 8;
  const std::uint16_t ack16 = static_cast<std::uint16_t>(packet[8]) |
                              static_cast<std::uint16_t>(packet[9]) << 8;
  std::uint32_t ack_bits = 0;
  for (int i = 0; i < 4; ++i) {
    ack_bits |= static_cast<std::uint32_t>(packet[10 + i]) << (8 * i);
  }
  process_acks(ack16, ack_bits, (flags & kFlagHasAck) != 0);

  const auto kind = static_cast<PacketKind>(kind_byte);
  switch (kind) {
    case PacketKind::kHello: {
      std::size_t pos = kPacketHeaderBytes;
      const auto frame = wire::decode_frame(packet, pos);
      if (!frame || frame->kind != wire::FrameKind::kHello) {
        ++stats_.rejected;
        return false;
      }
      if (frame->hello.num_sites != local_.num_sites ||
          frame->hello.num_coordinators != local_.num_coordinators) {
        ++stats_.rejected;  // mis-wired peer: refuse at connect time
        return true;
      }
      peer_ = frame->hello;
      if (!initiator_) {
        established_ = true;
        welcome_due_ = true;  // (re-)answer every Hello; Welcomes can drop
      }
      return true;
    }
    case PacketKind::kWelcome: {
      std::size_t pos = kPacketHeaderBytes;
      const auto frame = wire::decode_frame(packet, pos);
      if (!frame || frame->kind != wire::FrameKind::kWelcome) {
        ++stats_.rejected;
        return false;
      }
      if (!initiator_ || frame->hello.cookie != local_.cookie ||
          frame->hello.num_sites != local_.num_sites ||
          frame->hello.num_coordinators != local_.num_coordinators) {
        ++stats_.rejected;  // stale incarnation or wrong topology
        return true;
      }
      peer_ = frame->hello;
      established_ = true;
      return true;
    }
    case PacketKind::kAckOnly:
      return true;
    case PacketKind::kData: {
      const std::uint64_t ext =
          latest_recv_ == 0 ? seq16 : unwrap(latest_recv_, seq16);
      ack_dirty_ = true;  // re-ack duplicates too: silences retransmits
      // Exact duplicate test: everything received is either delivered
      // (ext <= delivered_through_) or held. recv_mask_ only feeds the
      // outgoing ack bits; it is NOT a duplicate filter — a heuristic
      // based on its 64-seq span would misclassify a sufficiently late
      // retransmit as a duplicate and stall the stream forever.
      const bool duplicate =
          ext == 0 || ext <= delivered_through_ || held_.contains(ext);
      if (duplicate) {
        ++stats_.duplicates;
        return true;
      }
      note_received(ext);
      wire::Buffer payload(packet.begin() + kPacketHeaderBytes, packet.end());
      if (ext == delivered_through_ + 1) {
        delivered.push_back(std::move(payload));
        ++delivered_through_;
        ++stats_.delivered;
        for (auto it = held_.begin();
             it != held_.end() && it->first == delivered_through_ + 1;
             it = held_.erase(it)) {
          delivered.push_back(std::move(it->second));
          ++delivered_through_;
          ++stats_.delivered;
        }
      } else {
        held_.emplace(ext, std::move(payload));
        ++stats_.held_out_of_order;
      }
      return true;
    }
  }
  ++stats_.rejected;
  return false;
}

}  // namespace dds::net
