// Network condition knobs for a simulated deployment.
//
// The defaults describe the paper's idealized wire — zero delay, no
// loss, no batching — so every existing experiment keeps its exact
// semantics (and, via the transport factory, keeps running on the legacy
// zero-delay sim::Bus). Turning any knob switches the deployment onto
// the event-driven net::SimNetwork.
#pragma once

#include <cstddef>
#include <cstdint>

#include "sim/message.h"

namespace dds::net {

/// Per-link wire model parameters. Delays are measured in slots (the
/// simulation's time unit) and may be fractional.
struct LinkConfig {
  double latency = 0.0;        ///< fixed one-way delay
  double jitter = 0.0;         ///< + uniform in [0, jitter]
  double jitter_stddev = 0.0;  ///< + gaussian with this stddev (clamped >= 0)
  double drop_rate = 0.0;      ///< Bernoulli loss probability per transmission
  bool retransmit = true;      ///< reliable link: dropped messages retry
  double retransmit_timeout = 1.0;  ///< delay before a retry is attempted
  int max_attempts = 16;            ///< total transmissions before giving up
  double reorder_rate = 0.0;   ///< chance a message is held back extra
  double reorder_extra = 1.0;  ///< held-back messages wait + uniform [0, extra]

  bool delays_or_drops() const noexcept {
    return latency > 0.0 || jitter > 0.0 || jitter_stddev > 0.0 ||
           drop_rate > 0.0 || reorder_rate > 0.0;
  }
};

/// Which transport the factory should build.
enum class TransportKind : std::uint8_t {
  kAuto,        ///< legacy Bus when the config is trivial, else SimNetwork
  kBus,         ///< force the zero-delay synchronous bus
  kSimNetwork,  ///< force the event-driven simulator (any config)
  kUdp,         ///< real UDP datagrams on 127.0.0.1 (ack-bit reliability)
  kTcp,         ///< real TCP streams on 127.0.0.1
};

/// Deployment-level network configuration: the default link model, the
/// site->coordinator batching policy, and the scheduler seed.
struct NetworkConfig {
  TransportKind kind = TransportKind::kAuto;
  LinkConfig link;  ///< applied to every link unless overridden per-pair

  /// Batching of site->coordinator traffic: 0 disables; otherwise a
  /// site's reports are coalesced and flushed at most `batch_interval`
  /// slots after the first buffered message (or sooner on size).
  sim::Slot batch_interval = 0;
  std::size_t batch_max_msgs = 64;  ///< flush early at this batch size

  std::uint64_t seed = 1;  ///< scheduler/link randomness; protocols have own

  /// True when the config describes the paper's idealized wire, i.e. the
  /// zero-delay Bus implements it exactly.
  bool trivial() const noexcept {
    return !link.delays_or_drops() && batch_interval == 0;
  }
};

}  // namespace dds::net
