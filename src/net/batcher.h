// Site->coordinator message coalescing.
//
// Under the paper's cost model every report costs one message; real
// deployments amortize that by shipping reports in batches. The Batcher
// buffers each site's outbound reports and releases them as one wire
// unit when either (a) `interval` slots have passed since the batch's
// first message, or (b) the batch reaches `max_msgs`. The byte model
// shares the routing header across the batch, so the savings show up in
// BusCounters as both fewer wire messages and fewer bytes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/message.h"

namespace dds::net {

/// On-wire size of a batch of n constant-size protocol messages: one
/// shared routing header (from + to = 8 bytes) plus a per-entry record
/// (type 1 + instance 4 + three payload words 24 = 29 bytes). n = 1
/// matches Message::wire_bytes() exactly, so unbatched accounting is a
/// special case rather than a different formula.
constexpr std::uint64_t batch_wire_bytes(std::size_t n) noexcept {
  return 8 + static_cast<std::uint64_t>(n) * 29;
}

static_assert(batch_wire_bytes(1) == sim::Message::wire_bytes(),
              "single-entry batch must cost exactly one wire message");

/// A flushed batch: messages from one site, in send order.
struct Batch {
  sim::NodeId from = sim::kNoNode;
  std::vector<sim::Message> msgs;
};

class Batcher {
 public:
  /// Independent buffers per (site, destination coordinator shard) pair,
  /// so a sharded deployment never mixes destinations in one batch.
  Batcher(std::uint32_t num_sites, std::uint32_t num_coordinators,
          sim::Slot interval, std::size_t max_msgs);

  /// Buffers `msg` (which must be a site->coordinator message sent at
  /// slot `now`). Returns true if the buffer hit `max_msgs` and the
  /// caller should flush it immediately via take_for().
  bool add(const sim::Message& msg, sim::Slot now);

  /// Flushes the buffer msg belongs to (empty batch if nothing there).
  Batch take_for(const sim::Message& msg);

  /// Flushes every batch whose deadline (first-message slot + interval)
  /// has passed at slot `now`, in (site, shard) order.
  std::vector<Batch> take_due(sim::Slot now);

  /// Flushes everything, due or not (end of run).
  std::vector<Batch> take_all();

  /// Flushes every batch destined to coordinator shard `shard`, due or
  /// not, in site order — the per-shard flush hook behind
  /// SimNetwork::flush_shard(): a caller about to read shard `shard`'s
  /// answer can push that coordinator's pending reports onto the wire
  /// without disturbing the other shards' batches. Nothing calls it
  /// automatically — queries do NOT flush (see flush_shard()'s note).
  std::vector<Batch> take_for_shard(std::uint32_t shard);

  /// Reports buffered for coordinator shard `shard` across all sites.
  std::size_t buffered_for_shard(std::uint32_t shard) const;

  /// Re-layouts the per-(site, shard) buffers for a new coordinator
  /// count (elastic topology change). Returns every non-empty batch
  /// whose destination shard SURVIVES — the caller must flush them onto
  /// the wire, not drop them. Batches destined to a removed shard are
  /// counted into stranded() and discarded; a correct resize sequence
  /// quiesces the departing shard first (flush_shard + finish), so
  /// stranded() staying 0 across a topology change is the no-silent-
  /// message-loss assertion the elastic tests pin.
  std::vector<Batch> rebind(std::uint32_t num_coordinators);

  /// Messages discarded by rebind() because their destination shard was
  /// removed before they were flushed. Monotone; 0 in a correct resize.
  std::uint64_t stranded() const noexcept { return stranded_; }

  /// Reports buffered anywhere (all sites, all shards) — the batcher
  /// half of a transport's quiescent() check.
  std::size_t buffered_total() const {
    std::size_t n = 0;
    for (const Buffer& b : buffers_) n += b.msgs.size();
    return n;
  }

  /// Reports buffered at `site` across all destination shards.
  std::size_t buffered(sim::NodeId site) const {
    std::size_t n = 0;
    for (std::uint32_t c = 0; c < num_coordinators_; ++c) {
      n += buffers_[site * num_coordinators_ + c].msgs.size();
    }
    return n;
  }

 private:
  struct Buffer {
    std::vector<sim::Message> msgs;
    sim::Slot first_slot = 0;
  };

  std::size_t index_of(const sim::Message& msg) const;
  Batch take(std::size_t index);

  std::uint32_t num_sites_;
  std::uint32_t num_coordinators_;
  sim::Slot interval_;
  std::size_t max_msgs_;
  std::vector<Buffer> buffers_;
  std::uint64_t stranded_ = 0;
};

}  // namespace dds::net
