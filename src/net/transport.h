// The transport abstraction every site<->coordinator message crosses.
//
// Extracted from sim::Bus so the deployment facades can swap the wire
// model without the protocols noticing: the zero-delay synchronous Bus
// (the paper's cost model) and the event-driven net::SimNetwork (latency,
// jitter, loss, batching) both implement this interface.
//
// The transport is also the audit point: every message is counted here
// (total, per type, per direction, per node), so the paper's cost metric
// — message count — is measured at the wire rather than tallied inside
// the algorithms. Counter semantics: `counters()` reports *wire-level*
// cost (a coalesced batch counts once; a retransmission counts again),
// which for the zero-delay Bus coincides with one count per send().
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <vector>

#include "sim/message.h"

namespace dds::sim {
class Node;
}  // namespace dds::sim

namespace dds::obs {
class MetricsRegistry;
class Tracer;
}  // namespace dds::obs

namespace dds::net {

/// Counter snapshot; subtraction gives per-interval deltas.
///
/// `total`, the direction counters, and `bytes` count wire-level
/// transmissions; `by_type` counts logical protocol messages (so a batch
/// carrying three reports bumps total once and by_type three times).
/// On the zero-delay Bus the two views are identical.
struct BusCounters {
  std::uint64_t total = 0;
  std::uint64_t site_to_coordinator = 0;
  std::uint64_t coordinator_to_site = 0;
  std::uint64_t bytes = 0;
  std::array<std::uint64_t, sim::kNumMsgTypes> by_type{};

  /// Counts one transmission of `bytes`; `from_coordinator` gives the
  /// direction (by_type is the caller's business — batch carriers count
  /// their entries there).
  void add_transmission(bool from_coordinator, std::uint64_t bytes) noexcept {
    ++total;
    this->bytes += bytes;
    if (from_coordinator) {
      ++coordinator_to_site;
    } else {
      ++site_to_coordinator;
    }
  }

  BusCounters operator-(const BusCounters& rhs) const noexcept;
};

/// Interposes on deliveries before they reach the attached node. The
/// speculative lockstep engine installs one to defer mid-wave deliveries
/// into its playout queue instead of letting them interrupt a running
/// wave. The sink runs AFTER receive accounting and tracing (the wire
/// observed the delivery either way) and decides only who consumes it.
class DeliverySink {
 public:
  virtual ~DeliverySink() = default;

  /// Called for every delivery, with `at` the transport-time the message
  /// lands (the same timestamp stamped onto trace events). Return true
  /// to consume the message (the attached node is NOT dispatched);
  /// return false to let normal dispatch proceed.
  virtual bool on_delivery(const sim::Message& msg, double at) = 0;
};

/// Abstract wire. Owns the audit counters and the node attachment table;
/// concrete transports decide when (and whether) a sent message arrives.
class Transport {
 public:
  /// A transport for `num_sites` sites (ids 0..num_sites-1) plus
  /// `num_coordinators` coordinator shards (ids num_sites ..
  /// num_sites+num_coordinators-1). Nodes are attached afterwards. The
  /// single-coordinator deployment of the paper is num_coordinators = 1.
  explicit Transport(std::uint32_t num_sites,
                     std::uint32_t num_coordinators = 1);
  virtual ~Transport() = default;

  Transport(const Transport&) = delete;
  Transport& operator=(const Transport&) = delete;

  /// Node id of coordinator shard `shard`.
  sim::NodeId coordinator_id(std::uint32_t shard = 0) const noexcept {
    return num_sites_ + shard;
  }
  std::uint32_t num_sites() const noexcept { return num_sites_; }
  std::uint32_t num_coordinators() const noexcept { return num_coordinators_; }
  bool is_coordinator(sim::NodeId id) const noexcept {
    return id >= num_sites_ && id < num_sites_ + num_coordinators_;
  }

  /// True when a send's full cascade (delivery, replies, their
  /// deliveries) completes within the same drain() — the paper's
  /// zero-delay wire. The ShardedEngine's run-ahead fast path requires
  /// this; non-synchronous transports deploy its lockstep mode instead
  /// when delivery_horizon() is positive.
  virtual bool synchronous() const noexcept { return false; }

  /// A strictly positive lower bound, in slots, on the flight time of
  /// every message sent from now on: a send() at time t has delivery
  /// time >= t + delivery_horizon(), i.e. delivery strictly before the
  /// horizon is impossible (delivery exactly AT t + horizon can and
  /// does happen — fixed-latency links always deliver there). 0.0
  /// means "no positive bound exists" (zero-latency links, or a
  /// synchronous transport where the question is moot). The
  /// ShardedEngine's lockstep mode sizes its waves STRICTLY below the
  /// horizon, so all deliveries land at wave barriers and site work
  /// inside a wave cannot be interrupted.
  virtual double delivery_horizon() const noexcept { return 0.0; }

  /// Timestamp of the earliest already-scheduled delivery or
  /// retransmission event, or +infinity when nothing is in flight.
  /// Lockstep wave planning caps a wave just short of this.
  virtual double next_delivery_time() const noexcept;

  /// Current slot, maintained by the Runner. The paper's model has all
  /// nodes time-synchronized (Chapter 2), so the coordinator may read
  /// the clock directly (Algorithm 4 tests "t* < t").
  void set_now(sim::Slot now) {
    now_ = now;
    on_clock_advance(now);
  }
  sim::Slot now() const noexcept { return now_; }

  /// Attaches the handler for node `id`. The transport does not own
  /// nodes. Passing nullptr detaches (messages delivered to a detached
  /// node throw — kill a shard by swapping in a sink, not a null).
  void attach(sim::NodeId id, sim::Node* node);

  // ---- elastic topology ----------------------------------------------

  /// Grows the coordinator table by one shard. Coordinators sit at the
  /// END of the node-id table (ids num_sites .. num_sites+N-1), so
  /// every existing id — site or coordinator — is unchanged; the new
  /// shard's id is coordinator_id(N) and its counters start at zero.
  /// Subclasses re-layout per-shard buffers in on_coordinators_resized().
  void add_coordinator();

  /// Shrinks the coordinator table by the LAST shard (throws
  /// std::logic_error when only one remains). The caller must have
  /// quiesced traffic to it first — flush_shard() + finish() — or its
  /// in-flight messages will fail endpoint checks.
  void remove_last_coordinator();

  /// Pushes any transport-internal buffering (batches) destined to
  /// coordinator shard `shard` onto the wire. No-op on unbuffered
  /// transports; SimNetwork overrides. Virtual here so topology code
  /// (Deployment::remove_shard, the Supervisor) can quiesce a shard
  /// through the abstract interface.
  virtual void flush_shard(std::uint32_t shard) { (void)shard; }

  /// Accepts a message for (eventual) delivery and counts it.
  virtual void send(const sim::Message& msg) = 0;

  /// Delivers every message due at the current time, including messages
  /// sent during delivery that are themselves immediately due.
  virtual void drain() = 0;

  /// Delivers everything still in flight (flushing batches and advancing
  /// virtual time past the last scheduled event). The Runner calls this
  /// once the arrival stream ends. Zero-delay transports have nothing in
  /// flight beyond the current drain.
  virtual void finish() { drain(); }

  /// True when nothing is buffered or in flight anywhere in the
  /// transport: no scheduled event, no batched report awaiting a flush,
  /// no unacknowledged socket data. This is the drain-at-finish
  /// contract: finish() must leave the transport quiescent, so that
  /// tearing it down (or exiting the process) cannot strand an
  /// end-of-stream message. Zero-delay transports are always quiescent
  /// between drains.
  virtual bool quiescent() const noexcept { return true; }

  /// Wire-level cost counters (see BusCounters for semantics).
  const BusCounters& counters() const noexcept { return wire_; }

  /// Wire-level counters restricted to the traffic of coordinator shard
  /// `shard` (every protocol message has exactly one coordinator
  /// endpoint, so the per-shard counters partition counters() exactly —
  /// the paper's cost metric stays exact under sharding).
  const BusCounters& coordinator_counters(std::uint32_t shard) const;

  /// Messages sent by node `id` (either direction counts at the sender).
  std::uint64_t sent_by(sim::NodeId id) const;
  /// Messages delivered to node `id`.
  std::uint64_t received_by(sim::NodeId id) const;

  /// Optional tap invoked for every logical send (determinism tests
  /// record traces through this).
  void set_tap(std::function<void(const sim::Message&)> tap) {
    tap_ = std::move(tap);
  }

  /// Installs (or, with nullptr, removes) the delivery interposer. At
  /// most one sink exists at a time; the engine owns its lifetime.
  void set_delivery_sink(DeliverySink* sink) noexcept { sink_ = sink; }

  /// Transport-time of the delivery currently being dispatched (valid
  /// only inside deliver(), i.e. within on_message / sink callbacks).
  double delivering_at() const noexcept { return delivering_at_; }

  /// Registers the wire counters (net.wire.*, proto.msgs.*, per-shard
  /// net.shard<j>.*) with `registry` and stores `tracer` for delivery
  /// instants. Either pointer may be null ("that instrument is off");
  /// the registry only ever *reads* the counters at snapshot time, so
  /// this adds no hot-path cost. Subclasses extend with their own cells
  /// and must call the base.
  virtual void bind_observability(obs::MetricsRegistry* registry,
                                  obs::Tracer* tracer);

 protected:
  /// Hook invoked whenever the Runner advances the slot clock.
  virtual void on_clock_advance(sim::Slot now) { (void)now; }

  /// Hook invoked after add_coordinator / remove_last_coordinator has
  /// resized the tables — num_coordinators() already reports the new
  /// value. Subclasses re-layout per-shard state here.
  virtual void on_coordinators_resized() {}

  /// Validates endpoints; throws std::out_of_range like the legacy Bus.
  void check_endpoints(const sim::Message& msg) const;

  /// Sender-side bookkeeping for one logical send: sent_by, tap, and the
  /// per-type counter.
  void note_send(const sim::Message& msg);

  /// Counts one wire transmission of `bytes` on-wire size in msg's
  /// direction (`msg` may be a batch carrier; per-type counts are logical
  /// and happen in note_send).
  void count_wire(const sim::Message& msg, std::uint64_t bytes);

  /// Receiver-side bookkeeping + dispatch. Throws std::logic_error if the
  /// destination was never attached.
  void deliver(const sim::Message& msg);

  /// Timestamp (in slots) stamped onto trace events. The zero-delay Bus
  /// lives on the slot clock; SimNetwork overrides with its continuous
  /// virtual time.
  virtual double trace_time() const noexcept {
    return static_cast<double>(now_);
  }

  /// Index of msg's coordinator endpoint (its shard). Site<->site
  /// traffic does not exist in this model; a message with two
  /// coordinator endpoints is attributed to the sender.
  std::uint32_t shard_of(const sim::Message& msg) const noexcept {
    return is_coordinator(msg.from) ? msg.from - num_sites_
                                    : msg.to - num_sites_;
  }

  BusCounters wire_;
  /// Non-owning; null when tracing is off. Delivery instants are emitted
  /// in deliver(), which both engines invoke on the main/replay thread
  /// in the same global order — so traces are deterministic across
  /// serial and sharded-lockstep execution.
  obs::Tracer* tracer_ = nullptr;

 private:
  std::uint32_t num_sites_;
  std::uint32_t num_coordinators_;
  std::vector<sim::Node*> nodes_;
  std::vector<std::uint64_t> sent_by_;
  std::vector<std::uint64_t> received_by_;
  /// Indexed by shard. Grows/shrinks with the topology, so per-shard
  /// metrics are registered as counter_fn closures over (this, j) —
  /// never as raw pointers into this vector, which resizes.
  std::vector<BusCounters> per_coordinator_;
  /// Stored registry so shards added after bind_observability() get
  /// their net.shard<j>.* metrics registered too.
  obs::MetricsRegistry* registry_ = nullptr;
  std::uint32_t shard_metrics_registered_ = 0;
  std::function<void(const sim::Message&)> tap_;
  DeliverySink* sink_ = nullptr;
  double delivering_at_ = 0.0;
  sim::Slot now_ = 0;

  void register_shard_metrics();
};

}  // namespace dds::net
