// Transport factory used by the deployment facades.
#pragma once

#include <cstdint>
#include <memory>

#include "net/config.h"
#include "net/transport.h"

namespace dds::net {

/// Builds the transport a NetworkConfig asks for. With kind = kAuto a
/// trivial config (zero delay, lossless, unbatched) gets the legacy
/// zero-delay sim::Bus — the paper's wire, and the cheapest path — and
/// anything else gets a SimNetwork.
std::unique_ptr<Transport> make_transport(std::uint32_t num_sites,
                                          const NetworkConfig& config,
                                          std::uint32_t num_coordinators = 1);

}  // namespace dds::net
