#include "net/socket_transport.h"

#include <chrono>
#include <stdexcept>
#include <string>

#include "obs/metrics.h"

namespace dds::net {

namespace {

double monotonic_seconds() {
  using clock = std::chrono::steady_clock;
  return std::chrono::duration<double>(clock::now().time_since_epoch())
      .count();
}

}  // namespace

SocketTransport::SocketTransport(std::uint32_t num_sites,
                                 const NetworkConfig& config,
                                 std::uint32_t num_coordinators,
                                 SocketTopology topology)
    : Transport(num_sites, num_coordinators),
      config_(config),
      topology_(std::move(topology)),
      all_local_(topology_.all_local(num_sites + num_coordinators)),
      local_mask_(num_sites + num_coordinators, all_local_ ? 1 : 0),
      batcher_(num_sites, num_coordinators, config.batch_interval,
               config.batch_max_msgs),
      clock_origin_(monotonic_seconds()) {
  if (!all_local_) {
    for (const sim::NodeId id : topology_.local_nodes) {
      if (id >= local_mask_.size()) {
        throw std::out_of_range("SocketTransport: local node id " +
                                std::to_string(id) + " outside topology");
      }
      local_mask_[id] = 1;
    }
  }
}

double SocketTransport::now_seconds() const {
  return monotonic_seconds() - clock_origin_;
}

void SocketTransport::send(const sim::Message& msg) {
  check_endpoints(msg);
  note_send(msg);
  logical_.add_transmission(is_coordinator(msg.from),
                            sim::Message::wire_bytes());
  logical_.by_type[static_cast<std::size_t>(msg.type)] += 1;

  const bool batchable = config_.batch_interval > 0 &&
                         !is_coordinator(msg.from) && is_coordinator(msg.to);
  if (batchable) {
    stats_.batched_messages += 1;
    if (batcher_.add(msg, now())) {
      Batch full = batcher_.take_for(msg);
      stats_.batches_flushed += 1;
      ship(std::move(full.msgs), true);
    }
    return;
  }
  ship({msg}, false);
}

void SocketTransport::ship(std::vector<sim::Message> msgs, bool batched) {
  const sim::Message head = msgs.front();
  wire::Buffer frame;
  if (batched) {
    wire::encode_batch(msgs, frame);
  } else {
    wire::encode_message(head, frame);
  }
  // Wire counters carry the true serialized size — the framing overhead
  // over batch_wire_bytes() is exactly what abl16 measures.
  count_wire(head, frame.size());
  stats_.frames_sent += 1;
  if (is_local(head.from) && is_local(head.to)) {
    tokens_.emplace_back(head.from, head.to);
  }
  ship_frame(head.from, head.to, std::move(frame));
}

void SocketTransport::send_fin(sim::NodeId from, sim::NodeId to,
                               std::uint64_t messages_sent) {
  wire::Buffer frame;
  wire::encode_fin(wire::Fin{from, messages_sent}, frame);
  stats_.frames_sent += 1;
  if (is_local(from) && is_local(to)) tokens_.emplace_back(from, to);
  ship_frame(from, to, std::move(frame));
}

void SocketTransport::on_frame_bytes(sim::NodeId from, sim::NodeId to,
                                     const wire::Buffer& bytes) {
  std::size_t pos = 0;
  const auto frame = wire::decode_frame(bytes, pos);
  if (!frame || pos != bytes.size()) {
    // The reliability layer (or TCP) already guaranteed integrity and
    // framing; an undecodable frame here means a sender bug.
    throw std::runtime_error("SocketTransport: undecodable frame on link " +
                             std::to_string(from) + "->" +
                             std::to_string(to));
  }
  accept_frame(from, to, std::move(*frame));
}

void SocketTransport::accept_frame(sim::NodeId from, sim::NodeId to,
                                   wire::Frame frame) {
  if (is_local(from) && is_local(to)) {
    // Local sender: the frame waits for its global-order token, which
    // is what makes delivery order Bus-identical.
    ready_[{from, to}].push_back(std::move(frame));
    return;
  }
  deliver_frame(frame);
}

void SocketTransport::deliver_frame(const wire::Frame& frame) {
  stats_.frames_received += 1;
  switch (frame.kind) {
    case wire::FrameKind::kMessage:
    case wire::FrameKind::kBatch:
      for (const sim::Message& msg : frame.msgs) deliver(msg);
      return;
    case wire::FrameKind::kFin:
      fins_.push_back(frame.fin);
      return;
    case wire::FrameKind::kImage:
    case wire::FrameKind::kHello:
    case wire::FrameKind::kWelcome:
      // Handshake frames are consumed by the link layers; images never
      // ride the message transport today.
      throw std::runtime_error(
          "SocketTransport: unexpected frame kind on data path");
  }
}

bool SocketTransport::deliver_due() {
  while (!tokens_.empty()) {
    const auto link = tokens_.front();
    auto it = ready_.find(link);
    if (it == ready_.end() || it->second.empty()) return false;
    wire::Frame frame = std::move(it->second.front());
    it->second.pop_front();
    tokens_.pop_front();
    // deliver_frame can re-enter send() (nodes reply synchronously),
    // which appends fresh tokens — the loop keeps going until the
    // cascade is silent, exactly the Bus drain semantics.
    deliver_frame(frame);
  }
  return true;
}

void SocketTransport::drain_tokens() {
  double last_progress = now_seconds();
  std::size_t last_depth = tokens_.size();
  while (!deliver_due()) {
    const bool moved = pump_io(now_seconds());
    if (moved || tokens_.size() != last_depth) {
      last_progress = now_seconds();
      last_depth = tokens_.size();
      continue;
    }
    if (now_seconds() - last_progress > stall_timeout_) {
      throw std::runtime_error(
          "SocketTransport: drain stalled with " +
          std::to_string(tokens_.size()) + " undelivered frames");
    }
  }
}

void SocketTransport::drain() { drain_tokens(); }

void SocketTransport::finish() {
  // Deliveries may buffer fresh batchable reports, so alternate
  // flushing with draining until both sides are empty (the SimNetwork
  // finish loop), then wait for the links to acknowledge everything —
  // a process may only exit once retransmission duty is discharged.
  for (;;) {
    if (config_.batch_interval > 0) {
      std::vector<Batch> due = batcher_.take_all();
      if (!due.empty()) {
        flush_batches(std::move(due));
        continue;
      }
    }
    if (tokens_.empty()) break;
    drain_tokens();
  }
  double last_progress = now_seconds();
  while (!links_idle()) {
    if (pump_io(now_seconds())) {
      last_progress = now_seconds();
      continue;
    }
    if (now_seconds() - last_progress > stall_timeout_) {
      throw std::runtime_error(
          "SocketTransport: finish stalled waiting for link ack");
    }
  }
}

void SocketTransport::flush_shard(std::uint32_t shard) {
  if (config_.batch_interval > 0) {
    flush_batches(batcher_.take_for_shard(shard));
  }
}

void SocketTransport::flush_batches(std::vector<Batch> batches) {
  for (Batch& batch : batches) {
    stats_.batches_flushed += 1;
    ship(std::move(batch.msgs), true);
  }
}

void SocketTransport::on_clock_advance(sim::Slot now_slot) {
  if (config_.batch_interval > 0) {
    flush_batches(batcher_.take_due(now_slot));
  }
}

void SocketTransport::bind_observability(obs::MetricsRegistry* registry,
                                         obs::Tracer* tracer) {
  Transport::bind_observability(registry, tracer);
  if (registry == nullptr) return;
  registry->counter("socket.frames_sent", &stats_.frames_sent);
  registry->counter("socket.frames_received", &stats_.frames_received);
  registry->counter("socket.packets_sent", &stats_.packets_sent);
  registry->counter("socket.packets_received", &stats_.packets_received);
  registry->counter("socket.kernel_bytes_sent", &stats_.kernel_bytes_sent);
  registry->counter("socket.kernel_bytes_received",
                    &stats_.kernel_bytes_received);
  registry->counter("socket.retransmit_packets", &stats_.retransmit_packets);
  registry->counter("socket.ack_only_packets", &stats_.ack_only_packets);
  registry->counter("socket.handshake_packets", &stats_.handshake_packets);
  registry->counter("socket.batches_flushed", &stats_.batches_flushed);
  registry->counter("socket.batched_messages", &stats_.batched_messages);
  registry->counter("net.logical.msgs", &logical_.total);
  registry->counter("net.logical.bytes", &logical_.bytes);
}

}  // namespace dds::net
