#include "obs/trace.h"

#include <cmath>
#include <fstream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <utility>

namespace dds::obs {

namespace {

/// JSON string escaping for the small, controlled name/category/key set
/// (quotes, backslashes, control characters).
void write_escaped(std::ostream& os, const std::string& s) {
  os << '"';
  for (char c : s) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\t':
        os << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          os << "\\u00" << "0123456789abcdef"[(c >> 4) & 0xF]
             << "0123456789abcdef"[c & 0xF];
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

/// Doubles in trace output: integers print exactly (counter values,
/// slot-aligned timestamps), the rest with enough digits to round-trip.
void write_number(std::ostream& os, double v) {
  if (std::isfinite(v) && v == std::floor(v) && std::abs(v) < 1e15) {
    os << static_cast<long long>(v);
  } else {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    os << buf;
  }
}

}  // namespace

void Tracer::emit(TraceEvent event) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (events_.size() >= capacity_) {
    ++dropped_;
    return;
  }
  events_.push_back(std::move(event));
}

void Tracer::instant(std::string cat, std::string name, double slot,
                     std::uint32_t tid,
                     std::vector<std::pair<std::string, double>> args) {
  emit(TraceEvent{std::move(cat), std::move(name), 'i', slot * kUsPerSlot,
                  0.0, tid, std::move(args)});
}

void Tracer::complete(std::string cat, std::string name, double slot_begin,
                      double slot_end, std::uint32_t tid,
                      std::vector<std::pair<std::string, double>> args) {
  emit(TraceEvent{std::move(cat), std::move(name), 'X',
                  slot_begin * kUsPerSlot,
                  (slot_end - slot_begin) * kUsPerSlot, tid,
                  std::move(args)});
}

void Tracer::counter(std::string cat, std::string name, double slot,
                     double value) {
  emit(TraceEvent{std::move(cat), std::move(name), 'C', slot * kUsPerSlot,
                  0.0, 0, {{"value", value}}});
}

std::size_t Tracer::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_.size();
}

std::uint64_t Tracer::dropped_events() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return dropped_;
}

std::vector<TraceEvent> Tracer::events() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_;
}

void Tracer::write_chrome_json(std::ostream& os,
                               std::string_view filter_out_cat) const {
  std::lock_guard<std::mutex> lock(mutex_);
  os << "{\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& e : events_) {
    if (!filter_out_cat.empty() && e.cat == filter_out_cat) continue;
    if (!first) os << ",";
    first = false;
    os << "\n{\"cat\":";
    write_escaped(os, e.cat);
    os << ",\"name\":";
    write_escaped(os, e.name);
    os << ",\"ph\":\"" << e.phase << "\",\"pid\":1,\"tid\":" << e.tid
       << ",\"ts\":";
    write_number(os, e.ts_us);
    if (e.phase == 'X') {
      os << ",\"dur\":";
      write_number(os, e.dur_us);
    }
    // Instants render scoped to their thread lane.
    if (e.phase == 'i') os << ",\"s\":\"t\"";
    if (!e.args.empty()) {
      os << ",\"args\":{";
      for (std::size_t i = 0; i < e.args.size(); ++i) {
        if (i > 0) os << ",";
        write_escaped(os, e.args[i].first);
        os << ":";
        write_number(os, e.args[i].second);
      }
      os << "}";
    }
    os << "}";
  }
  os << "\n],\"displayTimeUnit\":\"ms\"}\n";
}

std::string Tracer::to_chrome_json(std::string_view filter_out_cat) const {
  std::ostringstream os;
  write_chrome_json(os, filter_out_cat);
  return os.str();
}

void Tracer::write_chrome_json_file(const std::filesystem::path& path,
                                    std::string_view filter_out_cat) const {
  if (path.has_parent_path()) {
    std::filesystem::create_directories(path.parent_path());
  }
  std::ofstream os(path);
  if (!os) {
    throw std::runtime_error("Tracer: cannot open " + path.string());
  }
  write_chrome_json(os, filter_out_cat);
}

}  // namespace dds::obs
