#include "obs/observability.h"

#include "obs/export.h"

namespace dds::obs {

Observability::Observability(const ObservabilityConfig& config)
    : config_(config) {
  if (config_.metrics) registry_ = std::make_unique<MetricsRegistry>();
  if (config_.tracing) {
    tracer_ = std::make_unique<Tracer>(config_.trace_capacity);
  }
}

MetricsSnapshot Observability::snapshot() const {
  return registry_ ? registry_->snapshot() : MetricsSnapshot{};
}

std::string Observability::prometheus() const {
  return to_prometheus(snapshot());
}

std::string Observability::json() const { return to_json(snapshot()); }

bool Observability::write_trace(const std::filesystem::path& path) const {
  if (!tracer_) return false;
  tracer_->write_chrome_json_file(path);
  return true;
}

void Observability::sample_counters(double slot) {
  if (!registry_ || !tracer_) return;
  // Engine-strategy metrics ride the "engine" category so that the
  // deterministic remainder of the trace stays comparable across
  // engines (write_chrome_json filters by category).
  const auto category = [](const std::string& name) {
    return name.rfind("engine.", 0) == 0 ? "engine" : "metrics";
  };
  const MetricsSnapshot snap = registry_->snapshot();
  for (const auto& [name, value] : snap.counters) {
    tracer_->counter(category(name), name, slot, static_cast<double>(value));
  }
  for (const auto& [name, value] : snap.gauges) {
    tracer_->counter(category(name), name, slot, value);
  }
}

}  // namespace dds::obs
