// The per-deployment observability bundle: one MetricsRegistry + one
// Tracer behind a pair of on/off switches (SystemConfig::observability).
//
// Both instruments are strictly opt-in. With everything off (the
// default) the deployment binds nothing: components keep their private
// counters exactly as before, no registry exists, and every tracing
// call site is a null-pointer check — the <2% overhead budget in
// bench/micro_substrates (BM_ObsOverhead) holds because the disabled
// path does no observability work at all.
#pragma once

#include <filesystem>
#include <memory>
#include <string>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace dds::obs {

/// Deployment-level observability switches (SystemConfig::observability).
struct ObservabilityConfig {
  /// Build a MetricsRegistry and bind every layer's counters/gauges/
  /// histograms to it (pull-based; hot paths unchanged).
  bool metrics = false;
  /// Build a Tracer and emit slot-timestamped events (transport
  /// deliveries, batch flushes, waves, checkpoints) in Chrome
  /// trace-event JSON.
  bool tracing = false;
  /// Tracer event cap; past it events are dropped and counted.
  std::size_t trace_capacity = 1 << 20;

  bool enabled() const noexcept { return metrics || tracing; }
};

/// Owns the (optional) registry and tracer of one deployment and offers
/// the snapshot/export surface. Components receive nullable pointers:
/// nullptr simply means "that instrument is off".
class Observability {
 public:
  explicit Observability(const ObservabilityConfig& config);

  const ObservabilityConfig& config() const noexcept { return config_; }
  bool metrics_enabled() const noexcept { return registry_ != nullptr; }
  bool tracing_enabled() const noexcept { return tracer_ != nullptr; }

  /// nullptr when metrics are off.
  MetricsRegistry* registry() noexcept { return registry_.get(); }
  /// nullptr when tracing is off. Const-qualified but returns a mutable
  /// tracer: emitting an event is not an observable mutation of the
  /// deployment, and const paths (checkpointing a const deployment)
  /// legitimately leave trace marks.
  Tracer* tracer() const noexcept { return tracer_.get(); }

  /// Aggregated snapshot (empty when metrics are off).
  MetricsSnapshot snapshot() const;
  /// Prometheus text exposition of snapshot().
  std::string prometheus() const;
  /// Structured-JSON rendering of snapshot().
  std::string json() const;

  /// Writes the Chrome trace; no-op (returns false) when tracing is off.
  bool write_trace(const std::filesystem::path& path) const;

  /// Samples every counter and gauge of the current snapshot into the
  /// tracer as 'C' (counter) events at `slot` — the polled bridge from
  /// metrics to the trace timeline. Call from quiesced points (between
  /// Engine::run calls, at query time): the registry reads component
  /// state, which is only stable when no wave is in flight. No-op
  /// unless both instruments are on.
  void sample_counters(double slot);

 private:
  ObservabilityConfig config_;
  std::unique_ptr<MetricsRegistry> registry_;
  std::unique_ptr<Tracer> tracer_;
};

}  // namespace dds::obs
