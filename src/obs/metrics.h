// The metrics substrate of the observability layer (docs/observability.md).
//
// Design: PULL, not push. Components keep counting in the plain integer
// cells they already own (BusCounters, NetStats, engine wave counters,
// substrate migration counters, ...) and the registry holds *named
// references* to those cells — registering a metric never changes a hot
// path, and with observability disabled nothing is registered at all.
// Aggregation happens at snapshot() time: every registration under the
// same name is summed, so per-shard instances (one cell per coordinator
// shard, one histogram per worker) stay contention-free while the
// exported view is the deployment total.
//
// Three instrument kinds:
//   * counter — a monotonically increasing uint64 cell (or a callback);
//   * gauge   — a double-valued callback evaluated at snapshot time
//               (pool occupancy, queue depth, cache hit counts);
//   * histogram — log2-bucketed value distribution (latencies, sizes):
//               bucket b counts values v with bit_width(v) == b, i.e.
//               v in [2^(b-1), 2^b - 1], bucket 0 counting v == 0.
//
// Snapshots are deterministic: names are sorted, values are exact
// integer sums (gauges are doubles but every producer in this repo
// computes them from integer state), so two runs that perform the same
// logical work produce bit-identical snapshots — the property the
// serial-vs-sharded observability tests pin down.
#pragma once

#include <array>
#include <bit>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace dds::obs {

/// Log2-bucketed histogram cell. Owned by the instrumented component
/// (like a counter cell) and registered by pointer; observe() is two
/// increments and an add, cheap enough for per-message paths.
struct Histogram {
  /// Bucket b holds values whose bit_width is b: bucket 0 is v == 0,
  /// bucket 64 is v >= 2^63.
  static constexpr std::size_t kBuckets = 65;

  std::array<std::uint64_t, kBuckets> buckets{};
  std::uint64_t count = 0;
  std::uint64_t sum = 0;

  void observe(std::uint64_t value) noexcept {
    ++buckets[static_cast<std::size_t>(std::bit_width(value))];
    ++count;
    sum += value;
  }
};

/// Aggregated histogram state inside a snapshot.
struct HistogramSnapshot {
  std::array<std::uint64_t, Histogram::kBuckets> buckets{};
  std::uint64_t count = 0;
  std::uint64_t sum = 0;

  /// Inclusive upper bound of bucket b (the Prometheus `le` value);
  /// the last bucket is unbounded.
  static constexpr std::uint64_t upper_bound(std::size_t b) noexcept {
    return b >= 64 ? ~0ULL : (1ULL << b) - 1;
  }

  double mean() const noexcept {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }

  friend bool operator==(const HistogramSnapshot&,
                         const HistogramSnapshot&) = default;
};

/// One coherent, name-sorted view of every registered metric.
struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSnapshot> histograms;

  std::uint64_t counter_or(std::string_view name,
                           std::uint64_t fallback = 0) const;
  double gauge_or(std::string_view name, double fallback = 0.0) const;

  /// Copy with every metric whose name starts with `prefix` removed —
  /// the determinism tests compare snapshots with the engine-internal
  /// metrics (which legitimately differ between serial and sharded
  /// execution) stripped.
  MetricsSnapshot without_prefix(std::string_view prefix) const;

  bool empty() const noexcept {
    return counters.empty() && gauges.empty() && histograms.empty();
  }

  friend bool operator==(const MetricsSnapshot&,
                         const MetricsSnapshot&) = default;
};

/// Name -> cell-reference table. Components register at bind time (once,
/// off the hot path); snapshot() reads every cell and sums duplicates.
/// Registered pointers/callbacks must outlive the registry's last
/// snapshot — in practice the Deployment owns both the registry and
/// every registered component, and only snapshots while alive.
class MetricsRegistry {
 public:
  /// Registers a counter backed by `cell`. Multiple registrations under
  /// one name sum at snapshot (the per-shard aggregation path).
  void counter(std::string name, const std::uint64_t* cell);
  /// Counter whose value is computed at snapshot time.
  void counter_fn(std::string name, std::function<std::uint64_t()> fn);
  /// Gauge evaluated at snapshot time; duplicates sum.
  void gauge(std::string name, std::function<double()> fn);
  /// Histogram backed by `cell`; duplicates merge bucket-wise.
  void histogram(std::string name, const Histogram* cell);

  /// Number of registrations (all kinds).
  std::size_t size() const noexcept {
    return counters_.size() + counter_fns_.size() + gauges_.size() +
           histograms_.size();
  }

  MetricsSnapshot snapshot() const;

 private:
  std::vector<std::pair<std::string, const std::uint64_t*>> counters_;
  std::vector<std::pair<std::string, std::function<std::uint64_t()>>>
      counter_fns_;
  std::vector<std::pair<std::string, std::function<double()>>> gauges_;
  std::vector<std::pair<std::string, const Histogram*>> histograms_;
};

}  // namespace dds::obs
