#include "obs/export.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <sstream>

namespace dds::obs {

namespace {

std::string format_double(double v) {
  if (std::isfinite(v) && v == std::floor(v) && std::abs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
    return buf;
  }
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

void json_escape(std::ostringstream& os, std::string_view s) {
  os << '"';
  for (char c : s) {
    if (c == '"' || c == '\\') os << '\\';
    os << c;
  }
  os << '"';
}

}  // namespace

std::string prometheus_name(std::string_view name) {
  std::string out = "dds_";
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  return out;
}

std::string to_prometheus(const MetricsSnapshot& snapshot) {
  std::ostringstream os;
  for (const auto& [name, value] : snapshot.counters) {
    const std::string prom = prometheus_name(name);
    os << "# TYPE " << prom << " counter\n"
       << prom << " " << value << "\n";
  }
  for (const auto& [name, value] : snapshot.gauges) {
    const std::string prom = prometheus_name(name);
    os << "# TYPE " << prom << " gauge\n"
       << prom << " " << format_double(value) << "\n";
  }
  for (const auto& [name, h] : snapshot.histograms) {
    const std::string prom = prometheus_name(name);
    os << "# TYPE " << prom << " histogram\n";
    std::uint64_t cumulative = 0;
    for (std::size_t b = 0; b < Histogram::kBuckets; ++b) {
      cumulative += h.buckets[b];
      // Only the buckets that separate values are emitted (plus +Inf):
      // empty tail buckets would repeat the same cumulative count.
      if (h.buckets[b] == 0 && b + 1 != Histogram::kBuckets) continue;
      if (b + 1 == Histogram::kBuckets) break;  // +Inf carries the total
      os << prom << "_bucket{le=\""
         << HistogramSnapshot::upper_bound(b) << "\"} " << cumulative
         << "\n";
    }
    os << prom << "_bucket{le=\"+Inf\"} " << h.count << "\n"
       << prom << "_sum " << h.sum << "\n"
       << prom << "_count " << h.count << "\n";
  }
  return os.str();
}

std::string to_json(const MetricsSnapshot& snapshot) {
  std::ostringstream os;
  os << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : snapshot.counters) {
    os << (first ? "" : ",") << "\n    ";
    json_escape(os, name);
    os << ": " << value;
    first = false;
  }
  os << (first ? "" : "\n  ") << "},\n  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : snapshot.gauges) {
    os << (first ? "" : ",") << "\n    ";
    json_escape(os, name);
    os << ": " << format_double(value);
    first = false;
  }
  os << (first ? "" : "\n  ") << "},\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : snapshot.histograms) {
    os << (first ? "" : ",") << "\n    ";
    json_escape(os, name);
    os << ": {\"count\": " << h.count << ", \"sum\": " << h.sum
       << ", \"buckets\": [";
    bool first_bucket = true;
    for (std::size_t b = 0; b < Histogram::kBuckets; ++b) {
      if (h.buckets[b] == 0) continue;
      os << (first_bucket ? "" : ", ") << "["
         << HistogramSnapshot::upper_bound(b) << ", " << h.buckets[b]
         << "]";
      first_bucket = false;
    }
    os << "]}";
    first = false;
  }
  os << (first ? "" : "\n  ") << "}\n}\n";
  return os.str();
}

std::optional<std::vector<PromSample>> parse_prometheus(
    std::string_view text) {
  std::vector<PromSample> samples;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string_view::npos) eol = text.size();
    std::string_view line = text.substr(pos, eol - pos);
    pos = eol + 1;
    // Trim trailing CR / surrounding spaces.
    while (!line.empty() && (line.back() == '\r' || line.back() == ' ')) {
      line.remove_suffix(1);
    }
    while (!line.empty() && line.front() == ' ') line.remove_prefix(1);
    if (line.empty() || line.front() == '#') continue;

    PromSample sample;
    std::size_t i = 0;
    // Metric name: [a-zA-Z_:][a-zA-Z0-9_:]*
    while (i < line.size() &&
           (std::isalnum(static_cast<unsigned char>(line[i])) ||
            line[i] == '_' || line[i] == ':')) {
      ++i;
    }
    if (i == 0) return std::nullopt;
    sample.name = std::string(line.substr(0, i));
    // Optional label set.
    if (i < line.size() && line[i] == '{') {
      const std::size_t close = line.find('}', i);
      if (close == std::string_view::npos) return std::nullopt;
      std::string_view labels = line.substr(i + 1, close - i - 1);
      while (!labels.empty()) {
        const std::size_t eq = labels.find('=');
        if (eq == std::string_view::npos ||
            eq + 1 >= labels.size() || labels[eq + 1] != '"') {
          return std::nullopt;
        }
        const std::size_t endq = labels.find('"', eq + 2);
        if (endq == std::string_view::npos) return std::nullopt;
        sample.labels.emplace(std::string(labels.substr(0, eq)),
                              std::string(labels.substr(eq + 2,
                                                        endq - eq - 2)));
        std::size_t next = endq + 1;
        if (next < labels.size() && labels[next] == ',') ++next;
        labels.remove_prefix(next);
      }
      i = close + 1;
    }
    while (i < line.size() && line[i] == ' ') ++i;
    if (i >= line.size()) return std::nullopt;
    const std::string value_str(line.substr(i));
    if (value_str == "+Inf") {
      sample.value = std::numeric_limits<double>::infinity();
    } else {
      char* end = nullptr;
      sample.value = std::strtod(value_str.c_str(), &end);
      if (end == value_str.c_str() || *end != '\0') return std::nullopt;
    }
    samples.push_back(std::move(sample));
  }
  return samples;
}

std::string prometheus_round_trip_error(const MetricsSnapshot& snapshot) {
  const auto parsed = parse_prometheus(to_prometheus(snapshot));
  if (!parsed) return "exposition does not parse";
  std::map<std::string, double> values;
  for (const PromSample& s : *parsed) {
    std::string key = s.name;
    if (!s.labels.empty()) {
      key += "{";
      for (const auto& [k, v] : s.labels) key += k + "=" + v + ",";
      key += "}";
    }
    values[key] = s.value;
  }
  const auto expect = [&](const std::string& key,
                          double want) -> std::string {
    auto it = values.find(key);
    if (it == values.end()) return "missing sample " + key;
    if (it->second != want) {
      return "value mismatch for " + key + ": " +
             format_double(it->second) + " != " + format_double(want);
    }
    return "";
  };
  std::string err;
  for (const auto& [name, v] : snapshot.counters) {
    err = expect(prometheus_name(name), static_cast<double>(v));
    if (!err.empty()) return err;
  }
  for (const auto& [name, v] : snapshot.gauges) {
    err = expect(prometheus_name(name), v);
    if (!err.empty()) return err;
  }
  for (const auto& [name, h] : snapshot.histograms) {
    err = expect(prometheus_name(name) + "_count",
                 static_cast<double>(h.count));
    if (!err.empty()) return err;
    err = expect(prometheus_name(name) + "_sum",
                 static_cast<double>(h.sum));
    if (!err.empty()) return err;
  }
  return "";
}

}  // namespace dds::obs
