// Slot-timestamped tracing in Chrome trace-event form (the tracing half
// of the observability layer; docs/observability.md has the schema).
//
// Timestamps are VIRTUAL: a slot maps to 1000 "microseconds" of trace
// time (fractional slots — SimNetwork's event clock — map to fractional
// milliseconds), so a trace is a pure function of the run's logical
// execution, never of wall-clock scheduling. That is what lets the
// observability tests demand bit-identical traces from the serial and
// sharded engines: both emit the same events at the same virtual times
// in the same order, because every traced code path (transport
// deliveries, batch flushes, slot boundaries, checkpoints) runs on the
// main/replay thread in the serial order. Engine-internal events (wave
// barriers, stalls) carry the "engine" category and are excluded from
// cross-engine comparisons — they describe the execution strategy, not
// the protocol.
//
// Capacity is bounded: past `capacity` events the tracer drops (and
// counts) instead of growing without bound; dropped_events() makes the
// truncation visible rather than silent.
//
// Emission is mutex-guarded so opt-in tracing from concurrent contexts
// is safe; the deterministic categories are nevertheless only ever
// emitted single-threaded (see above).
#pragma once

#include <cstdint>
#include <filesystem>
#include <iosfwd>
#include <mutex>
#include <string>
#include <vector>

namespace dds::obs {

/// One trace event. `phase` follows the Chrome trace-event format:
/// 'i' = instant, 'X' = complete (with duration), 'C' = counter sample.
struct TraceEvent {
  std::string cat;
  std::string name;
  char phase = 'i';
  double ts_us = 0.0;   ///< virtual time: slot * 1000
  double dur_us = 0.0;  ///< 'X' events only
  std::uint32_t tid = 0;  ///< logical lane: node id, shard, or 0
  /// Small argument list rendered into the event's "args" object.
  std::vector<std::pair<std::string, double>> args;

  friend bool operator==(const TraceEvent&, const TraceEvent&) = default;
};

class Tracer {
 public:
  explicit Tracer(std::size_t capacity = 1 << 20) : capacity_(capacity) {}

  /// Virtual-time scale: trace microseconds per slot.
  static constexpr double kUsPerSlot = 1000.0;

  void instant(std::string cat, std::string name, double slot,
               std::uint32_t tid,
               std::vector<std::pair<std::string, double>> args = {});
  /// A [slot_begin, slot_end] span.
  void complete(std::string cat, std::string name, double slot_begin,
                double slot_end, std::uint32_t tid,
                std::vector<std::pair<std::string, double>> args = {});
  /// A counter sample ('C'): chrome://tracing renders these as a value
  /// graph over time — the substrate/occupancy lanes use this.
  void counter(std::string cat, std::string name, double slot,
               double value);

  std::size_t size() const;
  std::uint64_t dropped_events() const;
  /// Copy of the event list (test introspection).
  std::vector<TraceEvent> events() const;

  /// Renders {"traceEvents": [...]} — loadable by chrome://tracing and
  /// Perfetto. `filter_out_cat` (optional) drops one category, which is
  /// how the determinism tests compare protocol-level traces across
  /// engines without the engine-strategy lane.
  void write_chrome_json(std::ostream& os,
                         std::string_view filter_out_cat = {}) const;
  std::string to_chrome_json(std::string_view filter_out_cat = {}) const;
  void write_chrome_json_file(const std::filesystem::path& path,
                              std::string_view filter_out_cat = {}) const;

 private:
  void emit(TraceEvent event);

  std::size_t capacity_;
  mutable std::mutex mutex_;
  std::vector<TraceEvent> events_;
  std::uint64_t dropped_ = 0;
};

}  // namespace dds::obs
