// Snapshot exporters: Prometheus text exposition format and structured
// JSON, plus a Prometheus parser used by the round-trip format check
// (tools/obs_report and the CI observability smoke).
//
// Metric names are dotted internally ("net.wire.msgs"); the Prometheus
// rendering sanitizes them to the [a-zA-Z0-9_:] charset and prefixes
// "dds_" ("dds_net_wire_msgs"). Histograms export the standard
// `_bucket{le="..."}` / `_sum` / `_count` triplet with cumulative
// bucket counts over the log2 bounds.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.h"

namespace dds::obs {

/// "net.wire.msgs" -> "dds_net_wire_msgs".
std::string prometheus_name(std::string_view name);

std::string to_prometheus(const MetricsSnapshot& snapshot);
std::string to_json(const MetricsSnapshot& snapshot);

/// One sample line of a Prometheus exposition.
struct PromSample {
  std::string name;  ///< metric name (labels stripped into `labels`)
  std::map<std::string, std::string> labels;
  double value = 0.0;
};

/// Parses Prometheus text format (the subset to_prometheus emits plus
/// arbitrary labels). Returns nullopt on any malformed line — the CI
/// round-trip check treats that as a format regression.
std::optional<std::vector<PromSample>> parse_prometheus(
    std::string_view text);

/// Round-trip check: renders the snapshot, parses it back, and verifies
/// every counter/gauge/histogram value survives. Returns an error
/// description, or an empty string on success.
std::string prometheus_round_trip_error(const MetricsSnapshot& snapshot);

}  // namespace dds::obs
