#include "obs/metrics.h"

#include <utility>

namespace dds::obs {

std::uint64_t MetricsSnapshot::counter_or(std::string_view name,
                                          std::uint64_t fallback) const {
  auto it = counters.find(std::string(name));
  return it == counters.end() ? fallback : it->second;
}

double MetricsSnapshot::gauge_or(std::string_view name,
                                 double fallback) const {
  auto it = gauges.find(std::string(name));
  return it == gauges.end() ? fallback : it->second;
}

MetricsSnapshot MetricsSnapshot::without_prefix(
    std::string_view prefix) const {
  MetricsSnapshot out;
  const auto keep = [&](const std::string& name) {
    return name.compare(0, prefix.size(), prefix) != 0;
  };
  for (const auto& [name, v] : counters) {
    if (keep(name)) out.counters.emplace(name, v);
  }
  for (const auto& [name, v] : gauges) {
    if (keep(name)) out.gauges.emplace(name, v);
  }
  for (const auto& [name, v] : histograms) {
    if (keep(name)) out.histograms.emplace(name, v);
  }
  return out;
}

void MetricsRegistry::counter(std::string name, const std::uint64_t* cell) {
  counters_.emplace_back(std::move(name), cell);
}

void MetricsRegistry::counter_fn(std::string name,
                                 std::function<std::uint64_t()> fn) {
  counter_fns_.emplace_back(std::move(name), std::move(fn));
}

void MetricsRegistry::gauge(std::string name, std::function<double()> fn) {
  gauges_.emplace_back(std::move(name), std::move(fn));
}

void MetricsRegistry::histogram(std::string name, const Histogram* cell) {
  histograms_.emplace_back(std::move(name), cell);
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot snap;
  for (const auto& [name, cell] : counters_) {
    snap.counters[name] += *cell;
  }
  for (const auto& [name, fn] : counter_fns_) {
    snap.counters[name] += fn();
  }
  for (const auto& [name, fn] : gauges_) {
    snap.gauges[name] += fn();
  }
  for (const auto& [name, cell] : histograms_) {
    HistogramSnapshot& h = snap.histograms[name];
    for (std::size_t b = 0; b < Histogram::kBuckets; ++b) {
      h.buckets[b] += cell->buckets[b];
    }
    h.count += cell->count;
    h.sum += cell->sum;
  }
  return snap;
}

}  // namespace dds::obs
