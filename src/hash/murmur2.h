// MurmurHash2, 64-bit variant (MurmurHash64A, Austin Appleby, public
// domain). This is the hash family the paper's Java implementation used
// ("MurmurHash 2.0", Holub's port); we implement the canonical 64-bit
// version for byte buffers and a fast fixed-width path for u64 keys.
#pragma once

#include <cstddef>
#include <cstdint>

namespace dds::hash {

/// MurmurHash64A over an arbitrary byte buffer.
std::uint64_t murmur2_64(const void* data, std::size_t len,
                         std::uint64_t seed) noexcept;

/// MurmurHash64A specialized to a single u64 key (8-byte message).
/// Identical output to murmur2_64(&key, 8, seed) on little-endian hosts.
std::uint64_t murmur2_64(std::uint64_t key, std::uint64_t seed) noexcept;

/// Batched fixed-width path: out[i] = murmur2_64(keys[i], seed). The loop
/// carries no cross-element state, so the compiler can keep the mixing
/// constants in registers and software-pipeline the multiplies.
void murmur2_64_batch(const std::uint64_t* keys, std::size_t n,
                      std::uint64_t seed, std::uint64_t* out) noexcept;

}  // namespace dds::hash
