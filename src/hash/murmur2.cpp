#include "hash/murmur2.h"

#include <cstring>

namespace dds::hash {

namespace {
constexpr std::uint64_t kM = 0xC6A4A7935BD1E995ULL;
constexpr int kR = 47;
}  // namespace

std::uint64_t murmur2_64(const void* data, std::size_t len,
                         std::uint64_t seed) noexcept {
  std::uint64_t h = seed ^ (static_cast<std::uint64_t>(len) * kM);

  const auto* bytes = static_cast<const unsigned char*>(data);
  const std::size_t n_blocks = len / 8;

  for (std::size_t i = 0; i < n_blocks; ++i) {
    std::uint64_t k;
    std::memcpy(&k, bytes + i * 8, 8);
    k *= kM;
    k ^= k >> kR;
    k *= kM;
    h ^= k;
    h *= kM;
  }

  const unsigned char* tail = bytes + n_blocks * 8;
  switch (len & 7U) {
    case 7: h ^= static_cast<std::uint64_t>(tail[6]) << 48; [[fallthrough]];
    case 6: h ^= static_cast<std::uint64_t>(tail[5]) << 40; [[fallthrough]];
    case 5: h ^= static_cast<std::uint64_t>(tail[4]) << 32; [[fallthrough]];
    case 4: h ^= static_cast<std::uint64_t>(tail[3]) << 24; [[fallthrough]];
    case 3: h ^= static_cast<std::uint64_t>(tail[2]) << 16; [[fallthrough]];
    case 2: h ^= static_cast<std::uint64_t>(tail[1]) << 8; [[fallthrough]];
    case 1: h ^= static_cast<std::uint64_t>(tail[0]); h *= kM; break;
    default: break;
  }

  h ^= h >> kR;
  h *= kM;
  h ^= h >> kR;
  return h;
}

std::uint64_t murmur2_64(std::uint64_t key, std::uint64_t seed) noexcept {
  // One 8-byte block, no tail.
  std::uint64_t h = seed ^ (8ULL * kM);
  std::uint64_t k = key;
  k *= kM;
  k ^= k >> kR;
  k *= kM;
  h ^= k;
  h *= kM;
  h ^= h >> kR;
  h *= kM;
  h ^= h >> kR;
  return h;
}

void murmur2_64_batch(const std::uint64_t* keys, std::size_t n,
                      std::uint64_t seed, std::uint64_t* out) noexcept {
  const std::uint64_t h0 = seed ^ (8ULL * kM);
  for (std::size_t i = 0; i < n; ++i) {
    std::uint64_t k = keys[i];
    k *= kM;
    k ^= k >> kR;
    k *= kM;
    std::uint64_t h = h0 ^ k;
    h *= kM;
    h ^= h >> kR;
    h *= kM;
    h ^= h >> kR;
    out[i] = h;
  }
}

}  // namespace dds::hash
