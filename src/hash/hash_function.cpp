#include "hash/hash_function.h"

#include <stdexcept>

namespace dds::hash {

HashKind parse_hash_kind(const std::string& name) {
  if (name == "murmur2") return HashKind::kMurmur2;
  if (name == "murmur3") return HashKind::kMurmur3;
  if (name == "splitmix") return HashKind::kSplitMix;
  if (name == "tabulation") return HashKind::kTabulation;
  throw std::invalid_argument("unknown hash kind: " + name);
}

std::string to_string(HashKind kind) {
  switch (kind) {
    case HashKind::kMurmur2: return "murmur2";
    case HashKind::kMurmur3: return "murmur3";
    case HashKind::kSplitMix: return "splitmix";
    case HashKind::kTabulation: return "tabulation";
  }
  return "?";
}

HashFunction::HashFunction(HashKind kind, std::uint64_t seed)
    : kind_(kind), seed_(seed) {
  if (kind_ == HashKind::kTabulation) {
    tabulation_ = std::make_shared<const TabulationHash>(seed);
  }
}

}  // namespace dds::hash
