// Simple tabulation hashing over 64-bit keys: 8 lookup tables of 256
// random 64-bit words, XORed per input byte. Only 3-independent, but
// known to behave like a fully random function for min-hash style
// applications (Patrascu & Thorup 2012). Included in the hash ablation
// as the "theoretically clean" alternative to the Murmur mixers.
#pragma once

#include <array>
#include <cstdint>

namespace dds::hash {

class TabulationHash {
 public:
  /// Fills the 8x256 tables from a SplitMix64 stream seeded with `seed`.
  explicit TabulationHash(std::uint64_t seed) noexcept;

  std::uint64_t operator()(std::uint64_t key) const noexcept {
    std::uint64_t h = 0;
    for (int b = 0; b < 8; ++b) {
      h ^= tables_[static_cast<std::size_t>(b)]
                  [static_cast<std::size_t>((key >> (8 * b)) & 0xFF)];
    }
    return h;
  }

 private:
  std::array<std::array<std::uint64_t, 256>, 8> tables_;
};

}  // namespace dds::hash
