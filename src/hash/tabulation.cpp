#include "hash/tabulation.h"

#include "util/rng.h"

namespace dds::hash {

TabulationHash::TabulationHash(std::uint64_t seed) noexcept {
  util::SplitMix64 sm(seed);
  for (auto& table : tables_) {
    for (auto& word : table) word = sm.next();
  }
}

}  // namespace dds::hash
