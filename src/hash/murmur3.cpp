#include "hash/murmur3.h"

#include <cstring>

namespace dds::hash {

namespace {

constexpr std::uint64_t rotl64(std::uint64_t x, int r) noexcept {
  return (x << r) | (x >> (64 - r));
}

constexpr std::uint64_t fmix64(std::uint64_t k) noexcept {
  k ^= k >> 33;
  k *= 0xFF51AFD7ED558CCDULL;
  k ^= k >> 33;
  k *= 0xC4CEB9FE1A85EC53ULL;
  k ^= k >> 33;
  return k;
}

constexpr std::uint64_t kC1 = 0x87C37B91114253D5ULL;
constexpr std::uint64_t kC2 = 0x4CF5AD432745937FULL;

}  // namespace

std::array<std::uint64_t, 2> murmur3_128(const void* data, std::size_t len,
                                         std::uint64_t seed) noexcept {
  const auto* bytes = static_cast<const unsigned char*>(data);
  const std::size_t n_blocks = len / 16;

  std::uint64_t h1 = seed;
  std::uint64_t h2 = seed;

  for (std::size_t i = 0; i < n_blocks; ++i) {
    std::uint64_t k1, k2;
    std::memcpy(&k1, bytes + i * 16, 8);
    std::memcpy(&k2, bytes + i * 16 + 8, 8);

    k1 *= kC1; k1 = rotl64(k1, 31); k1 *= kC2; h1 ^= k1;
    h1 = rotl64(h1, 27); h1 += h2; h1 = h1 * 5 + 0x52DCE729;
    k2 *= kC2; k2 = rotl64(k2, 33); k2 *= kC1; h2 ^= k2;
    h2 = rotl64(h2, 31); h2 += h1; h2 = h2 * 5 + 0x38495AB5;
  }

  const unsigned char* tail = bytes + n_blocks * 16;
  std::uint64_t k1 = 0, k2 = 0;
  switch (len & 15U) {
    case 15: k2 ^= static_cast<std::uint64_t>(tail[14]) << 48; [[fallthrough]];
    case 14: k2 ^= static_cast<std::uint64_t>(tail[13]) << 40; [[fallthrough]];
    case 13: k2 ^= static_cast<std::uint64_t>(tail[12]) << 32; [[fallthrough]];
    case 12: k2 ^= static_cast<std::uint64_t>(tail[11]) << 24; [[fallthrough]];
    case 11: k2 ^= static_cast<std::uint64_t>(tail[10]) << 16; [[fallthrough]];
    case 10: k2 ^= static_cast<std::uint64_t>(tail[9]) << 8; [[fallthrough]];
    case 9:
      k2 ^= static_cast<std::uint64_t>(tail[8]);
      k2 *= kC2; k2 = rotl64(k2, 33); k2 *= kC1; h2 ^= k2;
      [[fallthrough]];
    case 8: k1 ^= static_cast<std::uint64_t>(tail[7]) << 56; [[fallthrough]];
    case 7: k1 ^= static_cast<std::uint64_t>(tail[6]) << 48; [[fallthrough]];
    case 6: k1 ^= static_cast<std::uint64_t>(tail[5]) << 40; [[fallthrough]];
    case 5: k1 ^= static_cast<std::uint64_t>(tail[4]) << 32; [[fallthrough]];
    case 4: k1 ^= static_cast<std::uint64_t>(tail[3]) << 24; [[fallthrough]];
    case 3: k1 ^= static_cast<std::uint64_t>(tail[2]) << 16; [[fallthrough]];
    case 2: k1 ^= static_cast<std::uint64_t>(tail[1]) << 8; [[fallthrough]];
    case 1:
      k1 ^= static_cast<std::uint64_t>(tail[0]);
      k1 *= kC1; k1 = rotl64(k1, 31); k1 *= kC2; h1 ^= k1;
      break;
    default: break;
  }

  h1 ^= static_cast<std::uint64_t>(len);
  h2 ^= static_cast<std::uint64_t>(len);
  h1 += h2;
  h2 += h1;
  h1 = fmix64(h1);
  h2 = fmix64(h2);
  h1 += h2;
  h2 += h1;
  return {h1, h2};
}

std::uint64_t murmur3_64(const void* data, std::size_t len,
                         std::uint64_t seed) noexcept {
  return murmur3_128(data, len, seed)[0];
}

namespace {

// The x64-128 algorithm on an 8-byte little-endian message: zero full
// blocks, tail cases 8..1 reassemble exactly the key into k1, h2 is never
// touched before finalization. Shared by the single-key and batch paths.
constexpr std::uint64_t murmur3_64_u64(std::uint64_t key,
                                       std::uint64_t seed) noexcept {
  std::uint64_t k1 = key;
  k1 *= kC1;
  k1 = rotl64(k1, 31);
  k1 *= kC2;
  std::uint64_t h1 = seed ^ k1;
  std::uint64_t h2 = seed;
  h1 ^= 8ULL;
  h2 ^= 8ULL;
  h1 += h2;
  h2 += h1;
  h1 = fmix64(h1);
  h2 = fmix64(h2);
  return h1 + h2;
}

}  // namespace

std::uint64_t murmur3_64(std::uint64_t key, std::uint64_t seed) noexcept {
  return murmur3_64_u64(key, seed);
}

void murmur3_64_batch(const std::uint64_t* keys, std::size_t n,
                      std::uint64_t seed, std::uint64_t* out) noexcept {
  for (std::size_t i = 0; i < n; ++i) out[i] = murmur3_64_u64(keys[i], seed);
}

}  // namespace dds::hash
