// MurmurHash3 x64-128 (Austin Appleby, public domain), exposed as a
// 64-bit hash (first half of the 128-bit digest). Included as an
// alternative to MurmurHash2 for the hash-sensitivity ablation (A3).
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

namespace dds::hash {

/// Full 128-bit digest.
std::array<std::uint64_t, 2> murmur3_128(const void* data, std::size_t len,
                                         std::uint64_t seed) noexcept;

/// First 64 bits of the 128-bit digest over a byte buffer.
std::uint64_t murmur3_64(const void* data, std::size_t len,
                         std::uint64_t seed) noexcept;

/// Fixed-width path for a single u64 key.
std::uint64_t murmur3_64(std::uint64_t key, std::uint64_t seed) noexcept;

/// Batched fixed-width path: out[i] = murmur3_64(keys[i], seed). Uses a
/// dedicated u64 kernel (the 8-byte message reduces to the k1-only tail
/// of the x64-128 algorithm) so the buffer round-trip disappears from
/// the loop; bit-identical to the single-key path.
void murmur3_64_batch(const std::uint64_t* keys, std::size_t n,
                      std::uint64_t seed, std::uint64_t* out) noexcept;

}  // namespace dds::hash
