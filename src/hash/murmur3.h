// MurmurHash3 x64-128 (Austin Appleby, public domain), exposed as a
// 64-bit hash (first half of the 128-bit digest). Included as an
// alternative to MurmurHash2 for the hash-sensitivity ablation (A3).
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

namespace dds::hash {

/// Full 128-bit digest.
std::array<std::uint64_t, 2> murmur3_128(const void* data, std::size_t len,
                                         std::uint64_t seed) noexcept;

/// First 64 bits of the 128-bit digest over a byte buffer.
std::uint64_t murmur3_64(const void* data, std::size_t len,
                         std::uint64_t seed) noexcept;

/// Fixed-width path for a single u64 key.
std::uint64_t murmur3_64(std::uint64_t key, std::uint64_t seed) noexcept;

}  // namespace dds::hash
