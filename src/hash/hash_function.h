// The hash abstraction the samplers are built on.
//
// The paper models h : U -> [0,1] with mutually independent outputs. We
// realize h as a seeded 64-bit hash over 64-bit element keys and compare
// hash values as integers — a strictly monotone reparameterization of the
// unit interval that is exact (no floating-point ties). `unit_interval`
// exposes the [0,1) view needed by the distinct-count estimator.
//
// `HashFunction` is a small value type (cheap to copy except for the
// tabulation variant, which carries 16 KiB of tables behind a shared_ptr)
// so that `HashFamily` can hand out s independent functions for
// with-replacement sampling.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "hash/murmur2.h"
#include "hash/murmur3.h"
#include "hash/tabulation.h"
#include "util/rng.h"

namespace dds::hash {

enum class HashKind : std::uint8_t {
  kMurmur2,     // paper's choice (MurmurHash 2.0, 64-bit)
  kMurmur3,     // MurmurHash3 x64-128, first word
  kSplitMix,    // splitmix64 finalizer (fast, good avalanche)
  kTabulation,  // 3-independent simple tabulation
};

/// Parses "murmur2" / "murmur3" / "splitmix" / "tabulation".
HashKind parse_hash_kind(const std::string& name);
std::string to_string(HashKind kind);

/// Largest hash value; used as the identity for "no sample yet"
/// (the paper's u_i <- 1 initialization).
inline constexpr std::uint64_t kHashMax = ~0ULL;

/// Maps a 64-bit hash to the unit interval [0, 1).
constexpr double unit_interval(std::uint64_t h) noexcept {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

/// A seeded hash function over u64 keys.
class HashFunction {
 public:
  HashFunction() : HashFunction(HashKind::kMurmur2, 0) {}
  HashFunction(HashKind kind, std::uint64_t seed);

  std::uint64_t operator()(std::uint64_t key) const noexcept {
    switch (kind_) {
      case HashKind::kMurmur2:
        return murmur2_64(key, seed_);
      case HashKind::kMurmur3:
        return murmur3_64(key, seed_);
      case HashKind::kSplitMix:
        return util::mix64(key ^ seed_);
      case HashKind::kTabulation:
        return (*tabulation_)(key ^ seed_);
    }
    return 0;  // unreachable
  }

  /// Batched hashing: out[i] = (*this)(keys[i]) for i in [0, n). The kind
  /// dispatch is resolved once per call into a per-kind kernel, so the
  /// per-element switch above disappears from the hot loop and each
  /// kernel's mixing constants stay in registers. Bit-identical to the
  /// single-key operator().
  void hash_batch(const std::uint64_t* keys, std::size_t n,
                  std::uint64_t* out) const noexcept {
    switch (kind_) {
      case HashKind::kMurmur2:
        murmur2_64_batch(keys, n, seed_, out);
        return;
      case HashKind::kMurmur3:
        murmur3_64_batch(keys, n, seed_, out);
        return;
      case HashKind::kSplitMix: {
        const std::uint64_t seed = seed_;
        for (std::size_t i = 0; i < n; ++i) out[i] = util::mix64(keys[i] ^ seed);
        return;
      }
      case HashKind::kTabulation: {
        const TabulationHash& tab = *tabulation_;
        const std::uint64_t seed = seed_;
        for (std::size_t i = 0; i < n; ++i) out[i] = tab(keys[i] ^ seed);
        return;
      }
    }
  }

  /// h(key) mapped into [0,1), the paper's view of the hash.
  double unit(std::uint64_t key) const noexcept {
    return unit_interval((*this)(key));
  }

  HashKind kind() const noexcept { return kind_; }
  std::uint64_t seed() const noexcept { return seed_; }

 private:
  HashKind kind_;
  std::uint64_t seed_;
  std::shared_ptr<const TabulationHash> tabulation_;  // only for kTabulation
};

/// An indexed family of independent hash functions: member i is seeded
/// with derive_seed(master, i). With-replacement sampling runs s parallel
/// samplers over family members 0..s-1.
class HashFamily {
 public:
  HashFamily(HashKind kind, std::uint64_t master_seed)
      : kind_(kind), master_seed_(master_seed) {}

  HashFunction at(std::uint64_t index) const {
    return HashFunction(kind_, util::derive_seed(master_seed_, index));
  }

  HashKind kind() const noexcept { return kind_; }
  std::uint64_t master_seed() const noexcept { return master_seed_; }

 private:
  HashKind kind_;
  std::uint64_t master_seed_;
};

}  // namespace dds::hash
