#include "query/hyperloglog.h"

#include <bit>
#include <cmath>
#include <stdexcept>

namespace dds::query {

HyperLogLog::HyperLogLog(int precision, hash::HashFunction hash_fn)
    : precision_(precision), hash_fn_(std::move(hash_fn)) {
  if (precision < 4 || precision > 18) {
    throw std::invalid_argument("HyperLogLog: precision must be in [4, 18]");
  }
  registers_.assign(1ULL << precision, 0);
}

void HyperLogLog::add(stream::Element element) {
  const std::uint64_t h = hash_fn_(element);
  const std::size_t index = h >> (64 - precision_);
  // rho: position of the leftmost 1-bit in the remaining bits (1-based).
  const std::uint64_t rest = (h << precision_) | (1ULL << (precision_ - 1));
  const auto rho = static_cast<std::uint8_t>(std::countl_zero(rest) + 1);
  if (rho > registers_[index]) registers_[index] = rho;
}

double HyperLogLog::estimate() const {
  const double m = static_cast<double>(registers_.size());
  double alpha;
  switch (registers_.size()) {
    case 16: alpha = 0.673; break;
    case 32: alpha = 0.697; break;
    case 64: alpha = 0.709; break;
    default: alpha = 0.7213 / (1.0 + 1.079 / m); break;
  }
  double sum = 0.0;
  std::size_t zeros = 0;
  for (std::uint8_t r : registers_) {
    sum += std::ldexp(1.0, -static_cast<int>(r));
    zeros += (r == 0) ? 1 : 0;
  }
  const double raw = alpha * m * m / sum;
  if (raw <= 2.5 * m && zeros != 0) {
    // Small-range correction: linear counting.
    return m * std::log(m / static_cast<double>(zeros));
  }
  return raw;
}

void HyperLogLog::merge(const HyperLogLog& other) {
  if (other.precision_ != precision_) {
    throw std::invalid_argument("HyperLogLog::merge: precision mismatch");
  }
  for (std::size_t i = 0; i < registers_.size(); ++i) {
    registers_[i] = std::max(registers_[i], other.registers_[i]);
  }
}

double HyperLogLog::relative_error() const noexcept {
  return 1.04 / std::sqrt(static_cast<double>(registers_.size()));
}

}  // namespace dds::query
