// Set-operation estimators over two coordinators' bottom-s samples.
//
// A bottom-s distinct sample doubles as a KMV sketch, and two KMV
// sketches built with the SAME hash function compose: the bottom-s of
// the union of their entries is the KMV sketch of the set union, and
// the overlap inside that combined sketch estimates Jaccard similarity
// (Beyer et al. 2007; Cohen & Kaplan 2007). This turns the paper's
// coordinator state into a cross-stream analytics primitive: "how many
// distinct flows did link A and link B share last hour?" without any
// extra communication.
//
// Both samples MUST use the same hash function (same kind and seed);
// the functions throw otherwise when the mismatch is detectable.
#pragma once

#include <cstdint>

#include "core/bottom_s_sample.h"

namespace dds::query {

struct SetEstimates {
  double union_size = 0.0;
  double intersection_size = 0.0;
  double jaccard = 0.0;
};

/// Estimates |A u B|, |A n B| and J(A,B) from two bottom-s samples of
/// equal capacity built with a shared hash function.
SetEstimates estimate_set_operations(const core::BottomSSample& a,
                                     const core::BottomSSample& b);

/// Estimated |A u B| only.
double estimate_union(const core::BottomSSample& a,
                      const core::BottomSSample& b);

/// Estimated Jaccard similarity |A n B| / |A u B| in [0, 1].
double estimate_jaccard(const core::BottomSSample& a,
                        const core::BottomSSample& b);

}  // namespace dds::query
