#include "query/service.h"

#include <algorithm>

#include "query/merge.h"
#include "util/rng.h"

namespace dds::query {

TenantRegistry::TenantRegistry(std::size_t sample_size, sim::Slot max_width,
                               std::uint32_t num_streams,
                               hash::HashKind hash_kind, std::uint64_t seed)
    : sample_size_(sample_size), max_width_(max_width) {
  if (sample_size == 0) {
    throw std::invalid_argument("TenantRegistry: sample_size must be > 0");
  }
  if (max_width <= 0) {
    throw std::invalid_argument("TenantRegistry: max_width must be > 0");
  }
  if (num_streams == 0) {
    throw std::invalid_argument("TenantRegistry: num_streams must be > 0");
  }
  samplers_.reserve(num_streams);
  // One hash function SHARED across streams (same kind, same seed): the
  // cross-stream merge dedupes by element, which requires every stream
  // to agree on each element's hash. Treap priorities still differ per
  // stream (derived seeds) — they only shape the trees, not answers.
  const hash::HashFunction shared_hash(hash_kind, seed);
  for (std::uint32_t i = 0; i < num_streams; ++i) {
    samplers_.emplace_back(sample_size, max_width, shared_hash,
                           util::derive_seed(seed, 0x73747200ULL + i));
  }
}

std::size_t TenantRegistry::register_tenant(sim::Slot width) {
  if (width <= 0 || width > max_width_) {
    throw std::invalid_argument(
        "TenantRegistry: tenant width must be in (0, max_width]");
  }
  widths_.push_back(width);
  answers_.emplace_back();
  answers_.back().reserve(sample_size_);
  return widths_.size() - 1;
}

void TenantRegistry::update(std::uint32_t stream, stream::Element element,
                            sim::Slot t) {
  samplers_.at(stream).observe(element, t);
}

void TenantRegistry::update_batch(std::uint32_t stream,
                                  std::span<const stream::Element> elements,
                                  sim::Slot t) {
  samplers_.at(stream).observe_batch(elements, t);
}

void TenantRegistry::answer_into(std::size_t tenant, sim::Slot now,
                                 std::vector<treap::Candidate>& out) {
  const sim::Slot width = widths_.at(tenant);
  // Shared tuples expire at arrival + W; a width-w deployment's expire
  // at arrival + w. Rebasing by the constant W - w after the walk makes
  // tenant answers BIT-identical (element, hash, expiry) to independent
  // width-w samplers — the agreement contract the tests pin.
  const sim::Slot rebase = max_width_ - width;
  if (samplers_.size() == 1) {
    samplers_[0].sample_at_width_into(now, width, out);
    for (treap::Candidate& c : out) c.expiry -= rebase;
    return;
  }
  // Multi-stream: union the per-stream width-w answers, keep the
  // freshest expiry per element, take the s smallest hashes. Exact by
  // the partition argument in the header comment. All scratch persists
  // — no allocations once the buffers reached capacity.
  merge_scratch_.clear();
  for (auto& sampler : samplers_) {
    sampler.sample_at_width_into(now, width, stream_scratch_);
    merge_scratch_.insert(merge_scratch_.end(), stream_scratch_.begin(),
                          stream_scratch_.end());
  }
  // Same element => same hash (shared function), so duplicates sort
  // adjacent; break ties by descending expiry so the freshest copy
  // leads its run and unique-by-element keeps it.
  std::sort(merge_scratch_.begin(), merge_scratch_.end(),
            [](const treap::Candidate& a, const treap::Candidate& b) {
              if (a.hash != b.hash) return a.hash < b.hash;
              if (a.element != b.element) return a.element < b.element;
              return a.expiry > b.expiry;
            });
  out.clear();
  for (const treap::Candidate& c : merge_scratch_) {
    if (!out.empty() && out.back().element == c.element) continue;
    out.push_back(c);
    out.back().expiry -= rebase;
    if (out.size() == sample_size_) break;
  }
}

std::vector<treap::Candidate> TenantRegistry::answer(std::size_t tenant,
                                                     sim::Slot now) {
  std::vector<treap::Candidate> out;
  answer_into(tenant, now, out);
  return out;
}

double TenantRegistry::estimate(std::size_t tenant, sim::Slot now) {
  answer_into(tenant, now, answers_.at(tenant));
  return estimate_window_distinct(answers_[tenant], sample_size_);
}

const std::vector<std::vector<treap::Candidate>>& TenantRegistry::serve_all(
    sim::Slot now) {
  for (std::size_t tenant = 0; tenant < widths_.size(); ++tenant) {
    answer_into(tenant, now, answers_[tenant]);
  }
  return answers_;
}

std::size_t TenantRegistry::state_size() const noexcept {
  std::size_t total = 0;
  for (const auto& sampler : samplers_) total += sampler.state_size();
  return total;
}

std::size_t TenantRegistry::footprint_bytes() const noexcept {
  std::size_t total = 0;
  for (const auto& sampler : samplers_) total += sampler.footprint_bytes();
  for (const auto& buf : answers_) {
    total += buf.capacity() * sizeof(treap::Candidate);
  }
  total += merge_scratch_.capacity() * sizeof(treap::Candidate);
  total += stream_scratch_.capacity() * sizeof(treap::Candidate);
  return total;
}

}  // namespace dds::query
