#include "query/merge.h"

#include <algorithm>

namespace dds::query {

SlidingValidityMerger::SlidingValidityMerger(std::size_t sample_size,
                                            sim::Slot now)
    : s_(sample_size), now_(now) {
  best_.reserve(sample_size);
}

void SlidingValidityMerger::offer(const treap::Candidate& candidate) {
  if (candidate.expiry <= now_) return;  // left the window (expiry == now
                                         // means "not in the window at now")
  // Same element from two shards: refresh to the freshest expiry (the
  // hash is a function of the element, so the pair is otherwise equal).
  for (treap::Candidate& held : best_) {
    if (held.element == candidate.element) {
      held.expiry = std::max(held.expiry, candidate.expiry);
      return;
    }
  }
  const auto at = std::lower_bound(
      best_.begin(), best_.end(), candidate,
      [](const treap::Candidate& a, const treap::Candidate& b) {
        if (a.hash != b.hash) return a.hash < b.hash;
        return a.element < b.element;
      });
  if (best_.size() == s_) {
    if (at == best_.end()) return;  // larger than everything kept
    best_.pop_back();
  }
  best_.insert(at, candidate);
}

void SlidingValidityMerger::add(const std::vector<treap::Candidate>& shard_sample) {
  for (const treap::Candidate& candidate : shard_sample) offer(candidate);
}

double estimate_window_distinct(const std::vector<treap::Candidate>& bottom_s,
                                std::size_t sample_size) {
  if (bottom_s.size() < sample_size) {
    return static_cast<double>(bottom_s.size());
  }
  const double u = hash::unit_interval(bottom_s.back().hash);
  if (u <= 0.0) return static_cast<double>(bottom_s.size());
  return (static_cast<double>(bottom_s.size()) - 1.0) / u;
}

}  // namespace dds::query
