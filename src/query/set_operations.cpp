#include "query/set_operations.h"

#include <algorithm>
#include <stdexcept>
#include <unordered_set>
#include <vector>

#include "query/estimators.h"

namespace dds::query {

SetEstimates estimate_set_operations(const core::BottomSSample& a,
                                     const core::BottomSSample& b) {
  if (a.capacity() != b.capacity()) {
    throw std::invalid_argument(
        "set operations need samples of equal capacity");
  }
  const std::size_t s = a.capacity();

  // Merge the two entry lists into the bottom-s of the union. Entries
  // are (element, hash) with hashes consistent across sketches because
  // the hash function is shared.
  std::vector<core::BottomSSample::Entry> merged;
  {
    const auto ea = a.entries();
    const auto eb = b.entries();
    merged.reserve(ea.size() + eb.size());
    std::merge(ea.begin(), ea.end(), eb.begin(), eb.end(),
               std::back_inserter(merged),
               [](const auto& x, const auto& y) { return x.hash < y.hash; });
    // Deduplicate shared elements (same element => same hash).
    std::unordered_set<stream::Element> seen;
    std::erase_if(merged, [&seen](const auto& e) {
      return !seen.insert(e.element).second;
    });
    if (merged.size() > s) merged.resize(s);
  }

  SetEstimates out;
  // Union cardinality via the KMV estimator on the merged sketch.
  core::BottomSSample union_sketch(s);
  for (const auto& e : merged) union_sketch.offer(e.element, e.hash);
  out.union_size = estimate_distinct(union_sketch);

  // Jaccard: fraction of the merged bottom-s present in BOTH sketches.
  std::size_t in_both = 0;
  for (const auto& e : merged) {
    if (a.contains(e.element) && b.contains(e.element)) ++in_both;
  }
  out.jaccard = merged.empty()
                    ? 0.0
                    : static_cast<double>(in_both) /
                          static_cast<double>(merged.size());
  out.intersection_size = out.jaccard * out.union_size;
  return out;
}

double estimate_union(const core::BottomSSample& a,
                      const core::BottomSSample& b) {
  return estimate_set_operations(a, b).union_size;
}

double estimate_jaccard(const core::BottomSSample& a,
                        const core::BottomSSample& b) {
  return estimate_set_operations(a, b).jaccard;
}

}  // namespace dds::query
