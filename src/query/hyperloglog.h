// HyperLogLog distinct counter (Flajolet et al. 2007) — a substrate for
// cross-validating the KMV estimator that falls out of the coordinator's
// bottom-s sample.
//
// The paper motivates distinct sampling partly through distinct-count
// queries; this module provides the standard cardinality sketch the
// streaming community would reach for, so EXPERIMENTS.md can show the
// sample-based estimate agreeing with an independent counter on the
// same stream (ablation abl8). Dense representation, 2^p registers,
// with the standard small-range (linear counting) and bias corrections.
#pragma once

#include <cstdint>
#include <vector>

#include "hash/hash_function.h"
#include "stream/element.h"

namespace dds::query {

class HyperLogLog {
 public:
  /// `precision` p in [4, 18]: 2^p one-byte registers, relative error
  /// ~ 1.04 / sqrt(2^p).
  explicit HyperLogLog(int precision, hash::HashFunction hash_fn);

  void add(stream::Element element);

  /// Cardinality estimate with linear-counting small-range correction.
  double estimate() const;

  /// Merges another sketch built with the same precision and hash.
  void merge(const HyperLogLog& other);

  int precision() const noexcept { return precision_; }
  std::size_t register_count() const noexcept { return registers_.size(); }
  /// Standard error 1.04/sqrt(m).
  double relative_error() const noexcept;

 private:
  int precision_;
  hash::HashFunction hash_fn_;
  std::vector<std::uint8_t> registers_;
};

}  // namespace dds::query
