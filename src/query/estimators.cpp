#include "query/estimators.h"

#include <cmath>

namespace dds::query {

double estimate_distinct(const core::BottomSSample& sample) {
  if (!sample.full()) return static_cast<double>(sample.size());
  const double u = hash::unit_interval(sample.max_hash());
  if (u <= 0.0) return static_cast<double>(sample.size());
  return (static_cast<double>(sample.size()) - 1.0) / u;
}

double distinct_relative_error(std::size_t sample_size) {
  if (sample_size <= 2) return 1.0;
  return 1.0 / std::sqrt(static_cast<double>(sample_size - 2));
}

}  // namespace dds::query
