// Query-time estimators over the coordinator's distinct sample — the
// motivating queries of the paper's introduction: distinct counts,
// predicate-restricted distinct counts ("how many distinct visitors from
// country X?"), and predicate averages ("average age of distinct users").
//
// The bottom-s sample doubles as a KMV sketch: if u_s is the s-th
// smallest hash mapped to (0,1), then (s-1)/u_s is the classic unbiased
// distinct-count estimator (Bar-Yossef et al. 2002). Because inclusion
// in a distinct sample is frequency-independent, predicate estimators
// are simple sample fractions scaled by the distinct-count estimate.
#pragma once

#include <concepts>
#include <cstdint>

#include "core/bottom_s_sample.h"
#include "hash/hash_function.h"
#include "stream/element.h"

namespace dds::query {

template <typename P>
concept ElementPredicate = requires(P p, stream::Element e) {
  { p(e) } -> std::convertible_to<bool>;
};

template <typename F>
concept ElementValue = requires(F f, stream::Element e) {
  { f(e) } -> std::convertible_to<double>;
};

/// Estimated number of distinct elements observed. Exact (== sample
/// size) while the sample is not full; (s-1)/u_s once it is.
double estimate_distinct(const core::BottomSSample& sample);

/// Estimated number of distinct elements satisfying `pred`:
/// |{x in P : pred(x)}| / s * d-hat. Exact while the sample is not full.
template <ElementPredicate P>
double estimate_distinct_where(const core::BottomSSample& sample, P pred) {
  const auto entries = sample.entries();
  std::size_t matching = 0;
  for (const auto& e : entries) matching += pred(e.element) ? 1 : 0;
  if (!sample.full()) return static_cast<double>(matching);
  if (entries.empty()) return 0.0;
  const double fraction =
      static_cast<double>(matching) / static_cast<double>(entries.size());
  return fraction * estimate_distinct(sample);
}

/// Estimated fraction of distinct elements satisfying `pred` (in [0,1]).
template <ElementPredicate P>
double estimate_fraction_where(const core::BottomSSample& sample, P pred) {
  const auto entries = sample.entries();
  if (entries.empty()) return 0.0;
  std::size_t matching = 0;
  for (const auto& e : entries) matching += pred(e.element) ? 1 : 0;
  return static_cast<double>(matching) / static_cast<double>(entries.size());
}

/// Estimated mean of `value` over the distinct elements ("average age of
/// distinct users"). Returns 0 for an empty sample.
template <ElementValue F>
double estimate_mean(const core::BottomSSample& sample, F value) {
  const auto entries = sample.entries();
  if (entries.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& e : entries) sum += value(e.element);
  return sum / static_cast<double>(entries.size());
}

/// Standard error heuristics: the relative error of the KMV distinct
/// estimator is ~ 1/sqrt(s-2) (Beyer et al. 2007).
double distinct_relative_error(std::size_t sample_size);

}  // namespace dds::query
